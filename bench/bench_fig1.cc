// Paper Figure 1: SQL vs aggregate UDF computing the triangular
// n, L, Q as n grows, for d ∈ {8, 16, 32, 64}.
//
// Expected shape (paper): both linear in n; SQL is competitive (even
// faster) at low d, the UDF clearly wins at d = 64 where SQL pays for
// 1 + d + d(d+1)/2 interpreted SUM expressions per row.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace nlq;
constexpr uint64_t kPaperN[] = {200, 400, 800, 1600};
constexpr size_t kDims[] = {8, 16, 32, 64};

void RunOne(benchmark::State& state, stats::ComputeVia via) {
  const uint64_t rows = bench::ScaledRows(kPaperN[state.range(0)]);
  const size_t d = kDims[state.range(1)];
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, d);
  stats::WarehouseMiner miner(db.get());
  for (auto _ : state) {
    auto stats = miner.ComputeSufStats("X", stats::DimensionColumns(d),
                                       stats::MatrixKind::kLowerTriangular,
                                       via);
    bench::Require(stats.status(), state);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_Sql(benchmark::State& state) { RunOne(state, stats::ComputeVia::kSql); }
void BM_Udf(benchmark::State& state) {
  RunOne(state, stats::ComputeVia::kUdfList);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Paper Figure 1: SQL vs UDF (triangular), time vs n for each d, "
      "n scaled 1/%zu ===\n",
      nlq::bench::ScaleDivisor());
  for (size_t di = 0; di < 4; ++di) {
    for (size_t ni = 0; ni < 4; ++ni) {
      const std::string suffix = "/d=" + std::to_string(kDims[di]) +
                                 "/n=" + nlq::bench::PaperN(kPaperN[ni]);
      nlq::bench::RegisterReal(("Fig1/SQL" + suffix).c_str(), BM_Sql)
          ->Args({static_cast<int>(ni), static_cast<int>(di)})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
      nlq::bench::RegisterReal(("Fig1/UDF" + suffix).c_str(), BM_Udf)
          ->Args({static_cast<int>(ni), static_cast<int>(di)})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  return nlq::bench::RunSuite("bench_fig1", &argc, argv);
}
