// Paper Table 3: time to build each model once n, L, Q are available
// — independent of n, scaling only with d. The paper reports 1-4
// seconds on 2007 hardware for d up to 64; the point reproduced here
// is the *n-independence* (we run each build for two very different n
// and print both) and the mild growth with d (PCA grows fastest, with
// its O(d^3) eigendecomposition).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "stats/kmeans.h"
#include "stats/linreg.h"
#include "stats/pca.h"

namespace {

using namespace nlq;
constexpr size_t kDims[] = {4, 8, 16, 32, 64};
constexpr uint64_t kNValues[] = {20000, 200000};

/// Precomputes SufStats over synthetic points in memory (this bench
/// measures the client-side model math only, as Table 3 does).
stats::SufStats MakeStats(size_t d, uint64_t n, bool with_y) {
  gen::MixtureOptions options;
  options.n = n;
  options.d = with_y ? d + 1 : d;  // treat last dim as Y for regression
  options.seed = 7;
  stats::SufStats stats(options.d, stats::MatrixKind::kLowerTriangular);
  gen::MixtureGenerator generator(options);
  std::vector<double> x(options.d);
  for (uint64_t i = 0; i < n; ++i) {
    generator.NextPoint(x.data(), nullptr);
    stats.Update(x);
  }
  return stats;
}

void BM_Correlation(benchmark::State& state) {
  const size_t d = kDims[state.range(0)];
  const uint64_t n = kNValues[state.range(1)];
  const stats::SufStats stats = MakeStats(d, n, false);
  for (auto _ : state) {
    auto rho = stats.CorrelationMatrix();
    bench::Require(rho.status(), state);
    benchmark::DoNotOptimize(rho);
  }
}

void BM_LinearRegression(benchmark::State& state) {
  const size_t d = kDims[state.range(0)];
  const uint64_t n = kNValues[state.range(1)];
  const stats::SufStats stats = MakeStats(d, n, true);
  for (auto _ : state) {
    auto model = stats::FitLinearRegression(stats);
    bench::Require(model.status(), state);
    benchmark::DoNotOptimize(model);
  }
}

void BM_Pca(benchmark::State& state) {
  const size_t d = kDims[state.range(0)];
  const uint64_t n = kNValues[state.range(1)];
  const stats::SufStats stats = MakeStats(d, n, false);
  for (auto _ : state) {
    auto model = stats::FitPca(stats, d / 2 == 0 ? 1 : d / 2);
    bench::Require(model.status(), state);
    benchmark::DoNotOptimize(model);
  }
}

void BM_Clustering(benchmark::State& state) {
  // Clustering's model update from per-cluster (N_j, L_j, Q_j):
  // C = L/N, R = Q/N - C^2, W = N/n — O(dk).
  const size_t d = kDims[state.range(0)];
  const uint64_t n = kNValues[state.range(1)];
  constexpr size_t kK = 16;
  std::vector<stats::SufStats> per_cluster;
  for (size_t j = 0; j < kK; ++j) {
    per_cluster.push_back(MakeStats(d, n / kK + 1, false));
  }
  // Repack as diagonal stats of matching d.
  std::vector<stats::SufStats> diag;
  for (auto& s : per_cluster) {
    stats::SufStats ds(d, stats::MatrixKind::kDiagonal);
    ds.AddToN(s.n());
    for (size_t a = 0; a < d; ++a) {
      ds.AddToL(a, s.L(a));
      ds.AddToQ(a, a, s.Q(a, a));
    }
    diag.push_back(std::move(ds));
  }
  for (auto _ : state) {
    stats::KMeansModel model;
    model.d = d;
    model.k = kK;
    model.centroids = linalg::Matrix(kK, d);
    model.radii = linalg::Matrix(kK, d);
    model.weights.assign(kK, 0.0);
    model.counts.assign(kK, 0.0);
    for (size_t j = 0; j < kK; ++j) {
      bench::Require(
          stats::UpdateClusterFromStats(diag[j], static_cast<double>(n), j,
                                        &model),
          state);
    }
    benchmark::DoNotOptimize(model);
  }
}

template <typename Fn>
void RegisterGrid(const char* technique, Fn fn) {
  for (size_t di = 0; di < 5; ++di) {
    for (size_t ni = 0; ni < 2; ++ni) {
      const std::string label = std::string("Table3/") + technique +
                                "/d=" + std::to_string(kDims[di]) +
                                "/n=" + std::to_string(kNValues[ni]);
      nlq::bench::RegisterReal(label.c_str(), fn)
          ->Args({static_cast<int>(di), static_cast<int>(ni)})
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Paper Table 3: model build time from n, L, Q only — "
      "independent of n, growing only with d ===\n");
  RegisterGrid("correlation", BM_Correlation);
  RegisterGrid("linreg", BM_LinearRegression);
  RegisterGrid("pca", BM_Pca);
  RegisterGrid("clustering", BM_Clustering);
  return nlq::bench::RunSuite("bench_table3", &argc, argv);
}
