// Server front-end throughput (DESIGN.md section 14): statements/sec
// and p95 admission queue-wait through the full wire path — client
// encode → TCP loopback → admission → shared Database → reply — at
// client counts {1, 4, 16} against a server pinned to 4 concurrent
// statements. 1 client measures protocol overhead on an idle server,
// 4 clients saturate the slots without queueing, 16 clients run
// overloaded so the queue-wait histogram shows real waiting (the
// queue is deep enough that nothing is rejected; rejection behavior
// is the overload test's job, not a throughput number).
//
// Counters per client count:
//   statements_per_sec — completed statements over wall-clock
//   queue_wait_p95_ms  — p95 of server.queue_wait across this run
//   rejected           — retryable rejections (0 at these depths)

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/metrics.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using namespace nlq;

constexpr size_t kClientCounts[] = {1, 4, 16};
constexpr int kStatementsPerClientPerIter = 8;
constexpr char kSql[] = "SELECT COUNT(*), SUM(X1), SUM(X1*X1) FROM X";

struct ServerFixture {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<server::Server> server;
};

/// One shared server for the whole suite: 100k-scale mixture table,
/// 4 admission slots, queue deep enough that clients wait rather
/// than bounce.
ServerFixture& Fixture() {
  static ServerFixture* fixture = [] {
    auto* f = new ServerFixture();
    f->db = bench::MakeBenchDatabase();
    bench::LoadMixture(f->db.get(), "X", bench::ScaledRows(100), /*d=*/4);
    server::ServerOptions options;
    options.port = 0;
    options.admission.max_concurrent_statements = 4;
    options.admission.max_queue_depth = 64;
    options.admission.max_queue_wait_ms = 60'000;
    f->server = std::make_unique<server::Server>(f->db.get(), options);
    Status started = f->server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.ToString().c_str());
      std::abort();
    }
    return f;
  }();
  return *fixture;
}

/// p95 upper bound (ms) of the queue-wait histogram restricted to
/// observations made after `before` was captured.
double QueueWaitP95Ms(const Histogram& hist,
                      const std::vector<uint64_t>& before) {
  // Restrict to observations made after `before` was captured, then
  // reuse the registry's audited percentile walk.
  MetricsSnapshot::HistogramData delta;
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    const uint64_t d = hist.BucketCount(b) - before[b];
    if (d > 0) delta.buckets.emplace_back(Histogram::BucketUpperNanos(b), d);
    delta.count += d;
  }
  if (delta.count == 0) return 0.0;
  const uint64_t upper = delta.PercentileNanos(0.95);
  return upper == UINT64_MAX ? 1e9 : static_cast<double>(upper) / 1e6;
}

void BenchServerThroughput(benchmark::State& state, size_t num_clients) {
  ServerFixture& f = Fixture();

  // Persistent connections: each worker thread owns one client for
  // the whole benchmark, so the measured loop is statements, not
  // handshakes.
  std::vector<std::unique_ptr<server::NlqClient>> clients;
  for (size_t c = 0; c < num_clients; ++c) {
    auto client = std::make_unique<server::NlqClient>();
    Status connected =
        client->Connect("127.0.0.1", f.server->port(), /*timeout_ms=*/60'000);
    if (!connected.ok()) {
      state.SkipWithError(connected.ToString().c_str());
      return;
    }
    clients.push_back(std::move(client));
  }

  Histogram& queue_wait =
      MetricsRegistry::Global().histogram("server.queue_wait");
  std::vector<uint64_t> hist_before(Histogram::kNumBuckets);
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    hist_before[b] = queue_wait.BucketCount(b);
  }

  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> errors{0};
  const auto wall_start = std::chrono::steady_clock::now();

  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(num_clients);
    for (size_t c = 0; c < num_clients; ++c) {
      workers.emplace_back([&, c] {
        server::NlqClient& client = *clients[c];
        for (int s = 0; s < kStatementsPerClientPerIter; ++s) {
          auto result = client.Query(kSql);
          if (result.ok()) {
            completed.fetch_add(1, std::memory_order_relaxed);
          } else if (client.last_error_retryable()) {
            rejected.fetch_add(1, std::memory_order_relaxed);
          } else {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (errors.load() > 0) {
    state.SkipWithError("statements failed with non-retryable errors");
    return;
  }
  state.counters["statements_per_sec"] =
      wall_seconds > 0
          ? static_cast<double>(completed.load()) / wall_seconds
          : 0.0;
  state.counters["queue_wait_p95_ms"] = QueueWaitP95Ms(queue_wait, hist_before);
  state.counters["rejected"] = static_cast<double>(rejected.load());

  for (auto& client : clients) client->Goodbye();
}

}  // namespace

int main(int argc, char** argv) {
  Fixture();  // build the table + server before any timing
  for (const size_t clients : kClientCounts) {
    bench::RegisterReal(
        "server_throughput/clients:" + std::to_string(clients),
        [clients](benchmark::State& state) {
          BenchServerThroughput(state, clients);
        });
  }
  const int rc = nlq::bench::RunSuite("bench_server_throughput", &argc, argv);
  Fixture().server->Shutdown();
  return rc;
}
