// Paper Figure 5: time complexity of the aggregate UDF over the two
// matrix sizes that matter — n and d — for all three matrix kinds at
// d ∈ {32, 64} (left) and n ∈ {800k, 1600k} (right).
//
// Expected shape (paper): clearly linear in n for every kind; growth
// with d is almost flat for the diagonal kind and modest (close to
// linear despite the d^2 in-memory work) for triangular/full — the
// scan I/O, not the arithmetic, is the bottleneck.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace nlq;
constexpr uint64_t kNValues[] = {200, 400, 800, 1600};
constexpr size_t kLeftD[] = {32, 64};
constexpr size_t kRightD[] = {8, 16, 32, 48, 64};
constexpr uint64_t kRightN[] = {800, 1600};
constexpr stats::MatrixKind kKinds[] = {stats::MatrixKind::kDiagonal,
                                        stats::MatrixKind::kLowerTriangular,
                                        stats::MatrixKind::kFull};
constexpr const char* kKindNames[] = {"diag", "triang", "full"};

void RunOne(benchmark::State& state, uint64_t rows, size_t d,
            stats::MatrixKind kind) {
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, d);
  stats::WarehouseMiner miner(db.get());
  for (auto _ : state) {
    auto stats = miner.ComputeSufStats("X", stats::DimensionColumns(d), kind,
                                       stats::ComputeVia::kUdfList);
    bench::Require(stats.status(), state);
    benchmark::DoNotOptimize(stats);
  }
}

void BM_VaryN(benchmark::State& state) {
  RunOne(state, bench::ScaledRows(kNValues[state.range(0)]),
         kLeftD[state.range(1)], kKinds[state.range(2)]);
}

void BM_VaryD(benchmark::State& state) {
  RunOne(state, bench::ScaledRows(kRightN[state.range(1)]),
         kRightD[state.range(0)], kKinds[state.range(2)]);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Paper Figure 5: UDF time complexity in n and d for all matrix "
      "kinds, n scaled 1/%zu ===\n",
      nlq::bench::ScaleDivisor());
  for (size_t ni = 0; ni < 4; ++ni) {
    for (size_t di = 0; di < 2; ++di) {
      for (size_t kind = 0; kind < 3; ++kind) {
        const std::string label =
            std::string("Fig5/varyN/") + kKindNames[kind] +
            "/d=" + std::to_string(kLeftD[di]) +
            "/n=" + nlq::bench::PaperN(kNValues[ni]);
        nlq::bench::RegisterReal(label.c_str(), BM_VaryN)
            ->Args({static_cast<int>(ni), static_cast<int>(di),
                    static_cast<int>(kind)})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  for (size_t di = 0; di < 5; ++di) {
    for (size_t ni = 0; ni < 2; ++ni) {
      for (size_t kind = 0; kind < 3; ++kind) {
        const std::string label =
            std::string("Fig5/varyD/") + kKindNames[kind] +
            "/n=" + nlq::bench::PaperN(kRightN[ni]) +
            "/d=" + std::to_string(kRightD[di]);
        nlq::bench::RegisterReal(label.c_str(), BM_VaryD)
            ->Args({static_cast<int>(di), static_cast<int>(ni),
                    static_cast<int>(kind)})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  return nlq::bench::RunSuite("bench_fig5", &argc, argv);
}
