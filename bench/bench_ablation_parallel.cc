// Ablation (DESIGN.md #4/#8, beyond the paper's figures): where does
// the aggregate UDF's parallel speed come from?
//
// Altitude 1 — "partition": the paper's Teradata-style shared-nothing
// coupling. One worker per partition, partition-granular work units
// (morsel_rows = 0), swept over 1..16 partitions. Parallelism is
// whatever the storage layout happens to be.
//
// Altitude 2 — "morsel": partition count pinned at 8, worker threads
// and morsel size swept independently on (a) a uniform partitioning
// and (b) a skewed one with 90% of rows in partition 0. Under the
// partition-granular scheduler the skewed table degenerates to one
// busy worker; the morsel grid re-divides the hot partition into
// claimable units, so extra threads keep helping regardless of layout.
//
// Expected shape: near-linear scaling until the machine's cores are
// saturated; on skew, morsel rows > 0 beats morsel_rows = 0 at equal
// thread count. All numbers are wall-clock (RegisterReal).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "gen/datagen.h"
#include "stats/scoring.h"
#include "storage/schema.h"

namespace {

using namespace nlq;
constexpr size_t kPartitions[] = {1, 2, 4, 8, 16};
constexpr size_t kThreads[] = {1, 2, 4, 8};
// 0 = partition-granular work units (the pre-morsel scheduler),
// included as the baseline at every thread count.
constexpr uint64_t kMorselRows[] = {0, 4096, 16384, 65536};
constexpr size_t kD = 32;
constexpr size_t kMorselAltitudeParts = 8;

/// Loads the same mixture LoadMixture produces, but places 90% of the
/// rows in partition 0 (rest round-robin over the others) to model a
/// badly partitioned warehouse table.
void LoadSkewedMixture(engine::Database* db, const std::string& name,
                       uint64_t rows, size_t d) {
  auto created = db->catalog().CreateTable(name, storage::Schema::DataSet(d));
  if (!created.ok()) std::abort();
  storage::PartitionedTable* table = created.value();
  const size_t parts = table->num_partitions();
  gen::MixtureOptions options;
  options.n = rows;
  options.d = d;
  gen::MixtureGenerator generator(options);
  std::vector<double> x(d);
  storage::Row row(1 + d);
  for (uint64_t i = 1; i <= rows; ++i) {
    generator.NextPoint(x.data(), nullptr);
    row[0] = storage::Datum::Int64(static_cast<int64_t>(i));
    for (size_t a = 0; a < d; ++a) row[1 + a] = storage::Datum::Double(x[a]);
    const size_t p =
        (i % 10 != 0 || parts == 1) ? 0 : 1 + (i / 10) % (parts - 1);
    if (!table->AppendRowToPartition(p, row).ok()) std::abort();
  }
}

void RunUdfScan(engine::Database* db, benchmark::State& state) {
  stats::WarehouseMiner miner(db);
  for (auto _ : state) {
    auto stats = miner.ComputeSufStats("X", stats::DimensionColumns(kD),
                                       stats::MatrixKind::kLowerTriangular,
                                       stats::ComputeVia::kUdfList);
    bench::Require(stats.status(), state);
    benchmark::DoNotOptimize(stats);
  }
}

// Altitude 1: parallelism coupled to partition count (one worker per
// partition, partition-granular morsels).
void BM_PartitionCoupled(benchmark::State& state) {
  const size_t parts = kPartitions[state.range(0)];
  const uint64_t rows = bench::ScaledRows(1600);
  auto db = bench::MakeBenchDatabase(/*num_threads=*/parts,
                                     /*morsel_rows=*/0, parts);
  bench::LoadMixture(db.get(), "X", rows, kD);
  RunUdfScan(db.get(), state);
  state.counters["partitions"] = static_cast<double>(parts);
}

// Altitude 2: threads x morsel size at a fixed 8-way partitioning.
void BM_Morsel(benchmark::State& state) {
  const size_t threads = kThreads[state.range(0)];
  const uint64_t morsel = kMorselRows[state.range(1)];
  const bool skewed = state.range(2) != 0;
  const uint64_t rows = bench::ScaledRows(1600);
  auto db = bench::MakeBenchDatabase(threads, morsel, kMorselAltitudeParts);
  if (skewed) {
    LoadSkewedMixture(db.get(), "X", rows, kD);
  } else {
    bench::LoadMixture(db.get(), "X", rows, kD);
  }
  RunUdfScan(db.get(), state);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["morsel_rows"] = static_cast<double>(morsel);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Ablation: parallel execution — UDF scan at d=32, n=1600k "
      "scaled 1/%zu; partition-coupled 1..16, then threads x morsel "
      "size on uniform and skewed 8-way partitionings ===\n",
      nlq::bench::ScaleDivisor());
  for (size_t pi = 0; pi < 5; ++pi) {
    const std::string label =
        "Ablation/UDF/partitions=" + std::to_string(kPartitions[pi]);
    nlq::bench::RegisterReal(label, BM_PartitionCoupled)
        ->Arg(static_cast<int>(pi))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  for (int skewed = 0; skewed <= 1; ++skewed) {
    for (size_t ti = 0; ti < 4; ++ti) {
      for (size_t mi = 0; mi < 4; ++mi) {
        const std::string label =
            std::string("Ablation/Morsel/") +
            (skewed ? "skewed" : "uniform") +
            "/threads=" + std::to_string(kThreads[ti]) +
            "/morsel=" + std::to_string(kMorselRows[mi]);
        nlq::bench::RegisterReal(label, BM_Morsel)
            ->Args({static_cast<int>(ti), static_cast<int>(mi), skewed})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  return nlq::bench::RunSuite("bench_ablation_parallel", &argc, argv);
}
