// Ablation (DESIGN.md #4, beyond the paper's figures): how much of
// the aggregate UDF's speed comes from Teradata-style shared-nothing
// parallelism? The paper runs on 20 fixed AMP threads; here the same
// UDF scan is repeated with 1..16 partitions/worker threads.
//
// Expected shape: near-linear scaling until the machine's cores are
// saturated; the partial-merge cost (one NlqState per partition) is
// negligible.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "stats/scoring.h"

namespace {

using namespace nlq;
constexpr size_t kPartitions[] = {1, 2, 4, 8, 16};
constexpr size_t kD = 32;

void BM_UdfScan(benchmark::State& state) {
  const size_t parts = kPartitions[state.range(0)];
  const uint64_t rows = bench::ScaledRows(1600);
  engine::DatabaseOptions options;
  options.num_partitions = parts;
  engine::Database db(options);
  if (Status s = stats::RegisterAllStatsUdfs(&db.udfs()); !s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  bench::LoadMixture(&db, "X", rows, kD);
  stats::WarehouseMiner miner(&db);
  for (auto _ : state) {
    auto stats = miner.ComputeSufStats("X", stats::DimensionColumns(kD),
                                       stats::MatrixKind::kLowerTriangular,
                                       stats::ComputeVia::kUdfList);
    bench::Require(stats.status(), state);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["partitions"] = static_cast<double>(parts);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Ablation: shared-nothing parallelism — UDF scan at d=32, "
      "n=1600k scaled 1/%zu, 1..16 partitions ===\n",
      nlq::bench::ScaleDivisor());
  for (size_t pi = 0; pi < 5; ++pi) {
    const std::string label =
        "Ablation/UDF/partitions=" + std::to_string(kPartitions[pi]);
    benchmark::RegisterBenchmark(label.c_str(), BM_UdfScan)
        ->Arg(static_cast<int>(pi))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  return nlq::bench::RunSuite("bench_ablation_parallel", &argc, argv);
}
