// Ablation (DESIGN.md #5): where does the aggregate-UDF scan time go?
// The same (n, L, Q) computation is run at three altitudes:
//   raw    — tight loop over a contiguous double array (pure flops,
//            the lower bound the paper's "UDFs exploit C's speed"
//            refers to);
//   rows   — SufStats::Update over materialized Datum rows (adds the
//            value-model cost);
//   batched — SufStats::Update over the storage layer's batch scan
//            (page decode into reused 1024-row RowBatches, no
//            expression evaluation) — the raw cost of the morsel
//            scan feeding the operator pipeline;
//   columnar — the fused N,L,Q span kernel over the columnar scan
//            (pages decoded straight into double arrays, no Datum
//            boxing) — what the engine's columnar fast path runs
//            per partition;
//   engine — the full nlq_list query (the planner's columnar fast
//            path: decode + fused kernel + partitioned execution +
//            merge).
//
// The gap between `raw` and `engine` is the DBMS tax the paper's
// Figure 5 calls the I/O bottleneck ("no matter how much we optimize
// the aggregation step, I/O will remain a bottleneck").

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "stats/nlq_kernel.h"
#include "storage/partitioned_table.h"

namespace {

using namespace nlq;
constexpr size_t kDims[] = {8, 32, 64};

void BM_RawArray(benchmark::State& state) {
  const size_t d = kDims[state.range(0)];
  const uint64_t rows = bench::ScaledRows(1600);
  gen::MixtureOptions options;
  options.n = rows;
  options.d = d;
  std::vector<double> flat;
  flat.reserve(rows * d);
  for (const auto& p : gen::GeneratePoints(options)) {
    flat.insert(flat.end(), p.begin(), p.end());
  }
  for (auto _ : state) {
    stats::SufStats suf(d, stats::MatrixKind::kLowerTriangular);
    for (uint64_t r = 0; r < rows; ++r) suf.Update(&flat[r * d]);
    benchmark::DoNotOptimize(suf);
  }
}

void BM_DatumRows(benchmark::State& state) {
  const size_t d = kDims[state.range(0)];
  const uint64_t rows = bench::ScaledRows(1600);
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, d);
  auto table = db->catalog().GetTable("X");
  auto all_rows = (*table)->ReadAllRows();
  if (!all_rows.ok()) {
    state.SkipWithError("load failed");
    return;
  }
  std::vector<double> x(d);
  for (auto _ : state) {
    stats::SufStats suf(d, stats::MatrixKind::kLowerTriangular);
    for (const auto& row : *all_rows) {
      for (size_t a = 0; a < d; ++a) x[a] = row[1 + a].AsDouble();
      suf.Update(x.data());
    }
    benchmark::DoNotOptimize(suf);
  }
}

void BM_BatchedScan(benchmark::State& state) {
  const size_t d = kDims[state.range(0)];
  const uint64_t rows = bench::ScaledRows(1600);
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, d);
  auto table = db->catalog().GetTable("X");
  if (!table.ok()) {
    state.SkipWithError("load failed");
    return;
  }
  std::vector<double> x(d);
  for (auto _ : state) {
    stats::SufStats suf(d, stats::MatrixKind::kLowerTriangular);
    for (size_t p = 0; p < (*table)->num_partitions(); ++p) {
      storage::BatchScanner scanner = (*table)->ScanPartitionBatches(p);
      storage::RowBatch batch;
      while (scanner.Next(&batch)) {
        for (size_t i = 0; i < batch.size(); ++i) {
          const storage::Row& row = batch.row(i);
          for (size_t a = 0; a < d; ++a) x[a] = row[1 + a].AsDouble();
          suf.Update(x.data());
        }
      }
      bench::Require(scanner.status(), state);
    }
    benchmark::DoNotOptimize(suf);
  }
}

void BM_ColumnarScan(benchmark::State& state) {
  const size_t d = kDims[state.range(0)];
  const uint64_t rows = bench::ScaledRows(1600);
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, d);
  auto table = db->catalog().GetTable("X");
  if (!table.ok()) {
    state.SkipWithError("load failed");
    return;
  }
  std::vector<size_t> slots(d);
  for (size_t a = 0; a < d; ++a) slots[a] = 1 + a;
  std::vector<const double*> spans(d);
  for (auto _ : state) {
    stats::NlqState nlq;
    stats::ResetNlqState(&nlq);
    bench::Require(
        stats::SetNlqShape(&nlq, d, stats::MatrixKind::kLowerTriangular),
        state);
    for (size_t p = 0; p < (*table)->num_partitions(); ++p) {
      storage::ColumnBatchScanner scanner =
          (*table)->ScanPartitionColumnBatches(p, slots);
      storage::ColumnBatch batch;
      while (scanner.Next(&batch)) {
        for (size_t a = 0; a < d; ++a) {
          spans[a] = batch.column(a).double_data();
        }
        stats::NlqAccumulateSpans(&nlq, spans.data(), batch.size());
      }
      bench::Require(scanner.status(), state);
    }
    benchmark::DoNotOptimize(nlq);
  }
}

void BM_EngineScan(benchmark::State& state) {
  const size_t d = kDims[state.range(0)];
  const uint64_t rows = bench::ScaledRows(1600);
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, d);
  stats::WarehouseMiner miner(db.get());
  for (auto _ : state) {
    auto suf = miner.ComputeSufStats("X", stats::DimensionColumns(d),
                                     stats::MatrixKind::kLowerTriangular,
                                     stats::ComputeVia::kUdfList);
    bench::Require(suf.status(), state);
    benchmark::DoNotOptimize(suf);
  }
  bench::CaptureQueryBreakdown(db.get(), "engine/d=" + std::to_string(d));
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Ablation: row-path altitude (raw array vs Datum rows vs full "
      "engine scan), n=1600k scaled 1/%zu ===\n",
      nlq::bench::ScaleDivisor());
  for (size_t di = 0; di < 3; ++di) {
    const std::string suffix = "/d=" + std::to_string(kDims[di]);
    nlq::bench::RegisterReal(("Ablation/raw" + suffix).c_str(),
                                 BM_RawArray)
        ->Arg(static_cast<int>(di))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    nlq::bench::RegisterReal(("Ablation/rows" + suffix).c_str(),
                                 BM_DatumRows)
        ->Arg(static_cast<int>(di))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    nlq::bench::RegisterReal(("Ablation/batched" + suffix).c_str(),
                                 BM_BatchedScan)
        ->Arg(static_cast<int>(di))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    nlq::bench::RegisterReal(("Ablation/columnar" + suffix).c_str(),
                                 BM_ColumnarScan)
        ->Arg(static_cast<int>(di))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    nlq::bench::RegisterReal(("Ablation/engine" + suffix).c_str(),
                                 BM_EngineScan)
        ->Arg(static_cast<int>(di))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  return nlq::bench::RunSuite("bench_ablation_rowpath", &argc, argv);
}
