// Ablation (DESIGN.md #5): where does the aggregate-UDF scan time go?
// The same (n, L, Q) computation is run at three altitudes:
//   raw    — tight loop over a contiguous double array (pure flops,
//            the lower bound the paper's "UDFs exploit C's speed"
//            refers to);
//   rows   — SufStats::Update over materialized Datum rows (adds the
//            value-model cost);
//   batched — SufStats::Update over the storage layer's batch scan
//            (page decode into reused 1024-row RowBatches, no
//            expression evaluation) — the raw cost of the morsel
//            scan feeding the operator pipeline;
//   columnar — the fused N,L,Q span kernel over the columnar scan
//            (pages decoded straight into double arrays, no Datum
//            boxing) — what the engine's columnar fast path runs
//            per partition;
//   interpreted — the wide 1+d+|Q| SUM-of-products SQL query with the
//            expression bytecode disabled (force_interpreted): every
//            sum(Xa*Xb) argument walks the BoundExpr tree per row —
//            the paper's "SQL arithmetic expressions are interpreted
//            at run-time";
//   compiled — the same wide SQL query on the default path: arguments
//            compiled to register bytecode and evaluated over column
//            spans by VectorHashAggregate (engine/exec/bytecode.h);
//   engine — the full nlq_list query (the planner's columnar fast
//            path: decode + fused kernel + partitioned execution +
//            merge).
//
// The gap between `raw` and `engine` is the DBMS tax the paper's
// Figure 5 calls the I/O bottleneck ("no matter how much we optimize
// the aggregation step, I/O will remain a bottleneck").

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "engine/database.h"
#include "stats/nlq_kernel.h"
#include "stats/sqlgen.h"
#include "storage/partitioned_table.h"

namespace {

using namespace nlq;
constexpr size_t kDims[] = {8, 32, 64};

void BM_RawArray(benchmark::State& state) {
  const size_t d = kDims[state.range(0)];
  const uint64_t rows = bench::ScaledRows(1600);
  gen::MixtureOptions options;
  options.n = rows;
  options.d = d;
  std::vector<double> flat;
  flat.reserve(rows * d);
  for (const auto& p : gen::GeneratePoints(options)) {
    flat.insert(flat.end(), p.begin(), p.end());
  }
  for (auto _ : state) {
    stats::SufStats suf(d, stats::MatrixKind::kLowerTriangular);
    for (uint64_t r = 0; r < rows; ++r) suf.Update(&flat[r * d]);
    benchmark::DoNotOptimize(suf);
  }
}

void BM_DatumRows(benchmark::State& state) {
  const size_t d = kDims[state.range(0)];
  const uint64_t rows = bench::ScaledRows(1600);
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, d);
  auto table = db->catalog().GetTable("X");
  auto all_rows = (*table)->ReadAllRows();
  if (!all_rows.ok()) {
    state.SkipWithError("load failed");
    return;
  }
  std::vector<double> x(d);
  for (auto _ : state) {
    stats::SufStats suf(d, stats::MatrixKind::kLowerTriangular);
    for (const auto& row : *all_rows) {
      for (size_t a = 0; a < d; ++a) x[a] = row[1 + a].AsDouble();
      suf.Update(x.data());
    }
    benchmark::DoNotOptimize(suf);
  }
}

void BM_BatchedScan(benchmark::State& state) {
  const size_t d = kDims[state.range(0)];
  const uint64_t rows = bench::ScaledRows(1600);
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, d);
  auto table = db->catalog().GetTable("X");
  if (!table.ok()) {
    state.SkipWithError("load failed");
    return;
  }
  std::vector<double> x(d);
  for (auto _ : state) {
    stats::SufStats suf(d, stats::MatrixKind::kLowerTriangular);
    for (size_t p = 0; p < (*table)->num_partitions(); ++p) {
      storage::BatchScanner scanner = (*table)->ScanPartitionBatches(p);
      storage::RowBatch batch;
      while (scanner.Next(&batch)) {
        for (size_t i = 0; i < batch.size(); ++i) {
          const storage::Row& row = batch.row(i);
          for (size_t a = 0; a < d; ++a) x[a] = row[1 + a].AsDouble();
          suf.Update(x.data());
        }
      }
      bench::Require(scanner.status(), state);
    }
    benchmark::DoNotOptimize(suf);
  }
}

void BM_ColumnarScan(benchmark::State& state) {
  const size_t d = kDims[state.range(0)];
  const uint64_t rows = bench::ScaledRows(1600);
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, d);
  auto table = db->catalog().GetTable("X");
  if (!table.ok()) {
    state.SkipWithError("load failed");
    return;
  }
  std::vector<size_t> slots(d);
  for (size_t a = 0; a < d; ++a) slots[a] = 1 + a;
  std::vector<const double*> spans(d);
  for (auto _ : state) {
    stats::NlqState nlq;
    stats::ResetNlqState(&nlq);
    bench::Require(
        stats::SetNlqShape(&nlq, d, stats::MatrixKind::kLowerTriangular),
        state);
    for (size_t p = 0; p < (*table)->num_partitions(); ++p) {
      storage::ColumnBatchScanner scanner =
          (*table)->ScanPartitionColumnBatches(p, slots);
      storage::ColumnBatch batch;
      while (scanner.Next(&batch)) {
        for (size_t a = 0; a < d; ++a) {
          spans[a] = batch.column(a).double_data();
        }
        stats::NlqAccumulateSpans(&nlq, spans.data(), batch.size());
      }
      bench::Require(scanner.status(), state);
    }
    benchmark::DoNotOptimize(nlq);
  }
}

// Shared body for the interpreted/compiled altitudes: the wide
// 1 + d + |Q| SUM-of-products query through the full engine, with the
// expression bytecode forced off or left on. One untimed warmup run
// pays compilation and the column-decode cache fill so the timed
// delta is expression evaluation itself.
void RunWideSqlAltitude(benchmark::State& state, bool force_interpreted) {
  const size_t d = kDims[state.range(0)];
  const uint64_t rows = bench::ScaledRows(1600);
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, d);
  const std::string sql = stats::NlqSqlQuery("X", stats::DimensionColumns(d),
                                             stats::MatrixKind::kLowerTriangular);
  engine::QueryOptions qopts;
  qopts.force_interpreted = force_interpreted;
  bench::Require(db->Execute(sql, qopts).status(), state);  // warmup
  for (auto _ : state) {
    auto result = db->Execute(sql, qopts);
    bench::Require(result.status(), state);
    benchmark::DoNotOptimize(result);
  }
  bench::CaptureQueryBreakdown(
      db.get(), std::string(force_interpreted ? "interpreted" : "compiled") +
                    "/d=" + std::to_string(d));
}

void BM_InterpretedExprScan(benchmark::State& state) {
  RunWideSqlAltitude(state, /*force_interpreted=*/true);
}

void BM_CompiledExprScan(benchmark::State& state) {
  RunWideSqlAltitude(state, /*force_interpreted=*/false);
}

void BM_EngineScan(benchmark::State& state) {
  const size_t d = kDims[state.range(0)];
  const uint64_t rows = bench::ScaledRows(1600);
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, d);
  stats::WarehouseMiner miner(db.get());
  for (auto _ : state) {
    auto suf = miner.ComputeSufStats("X", stats::DimensionColumns(d),
                                     stats::MatrixKind::kLowerTriangular,
                                     stats::ComputeVia::kUdfList);
    bench::Require(suf.status(), state);
    benchmark::DoNotOptimize(suf);
  }
  bench::CaptureQueryBreakdown(db.get(), "engine/d=" + std::to_string(d));
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Ablation: row-path altitude (raw array vs Datum rows vs full "
      "engine scan), n=1600k scaled 1/%zu ===\n",
      nlq::bench::ScaleDivisor());
  for (size_t di = 0; di < 3; ++di) {
    const std::string suffix = "/d=" + std::to_string(kDims[di]);
    nlq::bench::RegisterReal(("Ablation/raw" + suffix).c_str(),
                                 BM_RawArray)
        ->Arg(static_cast<int>(di))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    nlq::bench::RegisterReal(("Ablation/rows" + suffix).c_str(),
                                 BM_DatumRows)
        ->Arg(static_cast<int>(di))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    nlq::bench::RegisterReal(("Ablation/batched" + suffix).c_str(),
                                 BM_BatchedScan)
        ->Arg(static_cast<int>(di))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    nlq::bench::RegisterReal(("Ablation/columnar" + suffix).c_str(),
                                 BM_ColumnarScan)
        ->Arg(static_cast<int>(di))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    nlq::bench::RegisterReal(("Ablation/interpreted" + suffix).c_str(),
                                 BM_InterpretedExprScan)
        ->Arg(static_cast<int>(di))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    nlq::bench::RegisterReal(("Ablation/compiled" + suffix).c_str(),
                                 BM_CompiledExprScan)
        ->Arg(static_cast<int>(di))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    nlq::bench::RegisterReal(("Ablation/engine" + suffix).c_str(),
                                 BM_EngineScan)
        ->Arg(static_cast<int>(di))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  return nlq::bench::RunSuite("bench_ablation_rowpath", &argc, argv);
}
