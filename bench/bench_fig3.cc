// Paper Figure 3: aggregate-UDF parameter passing — packed string vs
// parameter list. Left panel: time vs n at d = 8; right panel: time
// vs d at n = 1600k.
//
// Expected shape (paper): marginal difference at d <= 16; the string
// version grows clearly faster with d because every row pays a
// numbers->text cast (pack_point) plus a text->numbers parse inside
// the UDF. List-version growth with d is nearly flat.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace nlq;
constexpr uint64_t kPanelAN[] = {200, 400, 800, 1600};  // d = 8
constexpr size_t kPanelBD[] = {8, 16, 32, 48, 64};      // n = 1600k

void RunOne(benchmark::State& state, uint64_t rows, size_t d,
            bool use_string) {
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, d);
  stats::WarehouseMiner miner(db.get());
  for (auto _ : state) {
    auto stats = miner.ComputeSufStats(
        "X", stats::DimensionColumns(d), stats::MatrixKind::kLowerTriangular,
        use_string ? stats::ComputeVia::kUdfString
                   : stats::ComputeVia::kUdfList);
    bench::Require(stats.status(), state);
    benchmark::DoNotOptimize(stats);
  }
}

void BM_PanelA(benchmark::State& state) {
  RunOne(state, bench::ScaledRows(kPanelAN[state.range(0)]), 8,
         state.range(1) != 0);
}

void BM_PanelB(benchmark::State& state) {
  RunOne(state, bench::ScaledRows(1600), kPanelBD[state.range(0)],
         state.range(1) != 0);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Paper Figure 3: UDF parameter passing, string vs list, "
      "n scaled 1/%zu ===\n",
      nlq::bench::ScaleDivisor());
  for (size_t ni = 0; ni < 4; ++ni) {
    for (int str = 0; str <= 1; ++str) {
      const std::string label = std::string("Fig3/varyN/d=8/") +
                                (str ? "string" : "list") +
                                "/n=" + nlq::bench::PaperN(kPanelAN[ni]);
      nlq::bench::RegisterReal(label.c_str(), BM_PanelA)
          ->Args({static_cast<int>(ni), str})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  for (size_t di = 0; di < 5; ++di) {
    for (int str = 0; str <= 1; ++str) {
      const std::string label = std::string("Fig3/varyD/n=1600k/") +
                                (str ? "string" : "list") +
                                "/d=" + std::to_string(kPanelBD[di]);
      nlq::bench::RegisterReal(label.c_str(), BM_PanelB)
          ->Args({static_cast<int>(di), str})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  return nlq::bench::RunSuite("bench_fig3", &argc, argv);
}
