#ifndef NLQ_BENCH_BENCH_COMMON_H_
#define NLQ_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "engine/database.h"
#include "gen/datagen.h"
#include "stats/miner.h"

namespace nlq::bench {

/// Every bench binary reproduces one table/figure of the paper with
/// the same parameter grid, scaled down by a row divisor so the suite
/// finishes in minutes on a laptop (the paper's largest runs took
/// tens of minutes on a 2007 4-node Teradata system).
///
///   NLQ_BENCH_FULL=1   — paper-scale row counts (divisor 1)
///   NLQ_BENCH_SCALE=K  — divide the paper's n by K (default 50)
size_t ScaleDivisor();

/// paper_thousands is the paper's "n x 1000" value; returns the scaled
/// absolute row count (at least 500).
uint64_t ScaledRows(uint64_t paper_thousands);

/// Label helper: "100k" etc. for the paper's n.
std::string PaperN(uint64_t paper_thousands);

/// Fresh engine with 8 partitions and all stats UDFs registered.
std::unique_ptr<engine::Database> MakeBenchDatabase();

/// Generates the paper's mixture data set into `name`.
void LoadMixture(engine::Database* db, const std::string& name, uint64_t rows,
                 size_t d, bool with_y = false, uint64_t seed = 42);

/// Aborts the benchmark with a readable message on error.
void Require(const Status& status, benchmark::State& state);

/// Initializes google-benchmark, runs every registered benchmark, and
/// shuts the library down; returns the process exit code. All bench
/// mains end with `return RunSuite("bench_xyz", &argc, argv);`.
///
/// When `NLQ_BENCH_JSON` is set in the environment the measured runs
/// are additionally written as machine-readable JSON — one file per
/// suite — so perf trajectories can be tracked across commits:
///
///   NLQ_BENCH_JSON=out/dir         — writes out/dir/<suite>.json
///   NLQ_BENCH_JSON=results.json    — writes exactly that file
///
/// The file records the suite name, the row-scale divisor, and for
/// each benchmark its name, iteration count, and real/cpu time in the
/// benchmark's declared time unit.
int RunSuite(const char* suite, int* argc, char** argv);

}  // namespace nlq::bench

#endif  // NLQ_BENCH_BENCH_COMMON_H_
