#ifndef NLQ_BENCH_BENCH_COMMON_H_
#define NLQ_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "engine/database.h"
#include "gen/datagen.h"
#include "stats/miner.h"

namespace nlq::bench {

/// Every bench binary reproduces one table/figure of the paper with
/// the same parameter grid, scaled down by a row divisor so the suite
/// finishes in minutes on a laptop (the paper's largest runs took
/// tens of minutes on a 2007 4-node Teradata system).
///
///   NLQ_BENCH_FULL=1   — paper-scale row counts (divisor 1)
///   NLQ_BENCH_SCALE=K  — divide the paper's n by K (default 50)
size_t ScaleDivisor();

/// paper_thousands is the paper's "n x 1000" value; returns the scaled
/// absolute row count (at least 500).
uint64_t ScaledRows(uint64_t paper_thousands);

/// Label helper: "100k" etc. for the paper's n.
std::string PaperN(uint64_t paper_thousands);

/// Worker-thread count every bench database runs with: the
/// NLQ_BENCH_THREADS override if set, else the machine's hardware
/// concurrency. Recorded in the NLQ_BENCH_JSON header so results from
/// different machines are comparable.
size_t BenchThreads();

/// Morsel size (rows) every bench database runs with: the
/// NLQ_BENCH_MORSEL override if set (0 = partition-granular morsels,
/// the pre-morsel scheduler), else the engine default. Recorded in
/// the NLQ_BENCH_JSON header.
uint64_t BenchMorselRows();

/// Fresh engine with 8 partitions and all stats UDFs registered,
/// running BenchThreads() workers with BenchMorselRows()-row morsels.
/// Pass explicit values to sweep threads/morsel size in an ablation.
std::unique_ptr<engine::Database> MakeBenchDatabase(
    size_t num_threads, uint64_t morsel_rows, size_t num_partitions = 8);
std::unique_ptr<engine::Database> MakeBenchDatabase();

/// Registers a benchmark that measures and compares wall-clock time.
/// The engine's pool workers run outside the timed thread, so plain
/// cpu_time under-reports parallel scans; every suite registers
/// through this helper so the console and JSON numbers are real_time
/// first, with cpu_time widened to whole-process CPU (which *does*
/// include pool workers, making the real/cpu ratio a utilization
/// readout).
template <typename Fn>
benchmark::internal::Benchmark* RegisterReal(const std::string& name, Fn fn) {
  return benchmark::RegisterBenchmark(name.c_str(), std::move(fn))
      ->UseRealTime()
      ->MeasureProcessCPUTime();
}

/// Generates the paper's mixture data set into `name`.
void LoadMixture(engine::Database* db, const std::string& name, uint64_t rows,
                 size_t d, bool with_y = false, uint64_t seed = 42);

/// Records `db`'s last_query_stats() under `label` for the suite's
/// JSON output. Call once per benchmark after its measured loop: the
/// NLQ_BENCH_JSON file then carries a "query_breakdowns" array with
/// per-operator rows/batches/time for the final measured query — the
/// paper's SQL-vs-UDF time attribution at operator granularity.
void CaptureQueryBreakdown(engine::Database* db, const std::string& label);

/// Aborts the benchmark with a readable message on error.
void Require(const Status& status, benchmark::State& state);

/// Initializes google-benchmark, runs every registered benchmark, and
/// shuts the library down; returns the process exit code. All bench
/// mains end with `return RunSuite("bench_xyz", &argc, argv);`.
///
/// When `NLQ_BENCH_JSON` is set in the environment the measured runs
/// are additionally written as machine-readable JSON — one file per
/// suite — so perf trajectories can be tracked across commits:
///
///   NLQ_BENCH_JSON=out/dir         — writes out/dir/<suite>.json
///   NLQ_BENCH_JSON=results.json    — writes exactly that file
///
/// The file records the suite name, the row-scale divisor, the worker
/// thread count and morsel size the suite ran with, and for each
/// benchmark its name, iteration count, and real/cpu time in the
/// benchmark's declared time unit. real_time is the headline number
/// (see RegisterReal); cpu_time is whole-process CPU. Any user
/// counters a benchmark sets (state.counters["..."]) are emitted as
/// extra per-benchmark fields — the storage suite uses this to record
/// compression_ratio, scan_gb_per_s and pool_hit_rate next to the
/// timings. Set counters as plain values, not benchmark rate flags.
int RunSuite(const char* suite, int* argc, char** argv);

}  // namespace nlq::bench

#endif  // NLQ_BENCH_BENCH_COMMON_H_
