// Paper Table 1: total time to build models at d = 32 for
// n = 100k..1600k — C++ (external, on an exported file) vs SQL vs
// aggregate UDF. Each measurement covers the full model build: the
// (n, L, Q) pass plus the client-side correlation / linear-regression
// / PCA math (Table 3 shows the latter is negligible).
//
// Expected shape (paper): UDF < SQL for all n at d=32; external C++
// slowest at scale even BEFORE adding the ODBC export time, which is
// reported here as the odbc_modeled_s counter and dwarfs everything.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "connect/extern_analyzer.h"
#include "connect/odbc_sim.h"
#include "stats/linreg.h"
#include "stats/pca.h"

namespace {

using namespace nlq;
constexpr size_t kD = 32;
constexpr uint64_t kPaperN[] = {100, 200, 400, 800, 1600};

void BuildModelsFromStats(const stats::SufStats& xy_stats,
                          benchmark::State& state) {
  // Correlation + regression + PCA, exactly as TWM would client-side.
  auto rho = xy_stats.CorrelationMatrix();
  bench::Require(rho.status(), state);
  auto reg = stats::FitLinearRegression(xy_stats);
  bench::Require(reg.status(), state);
  auto pca = stats::FitPca(xy_stats, 8);
  bench::Require(pca.status(), state);
  benchmark::DoNotOptimize(rho);
}

void BM_Sql(benchmark::State& state) {
  const uint64_t rows = bench::ScaledRows(kPaperN[state.range(0)]);
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, kD + 1);  // X1..X32 + "Y"=X33
  stats::WarehouseMiner miner(db.get());
  for (auto _ : state) {
    auto stats = miner.ComputeSufStats("X", stats::DimensionColumns(kD + 1),
                                       stats::MatrixKind::kLowerTriangular,
                                       stats::ComputeVia::kSql);
    bench::Require(stats.status(), state);
    if (stats.ok()) BuildModelsFromStats(*stats, state);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_Udf(benchmark::State& state) {
  const uint64_t rows = bench::ScaledRows(kPaperN[state.range(0)]);
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, kD + 1);
  stats::WarehouseMiner miner(db.get());
  for (auto _ : state) {
    auto stats = miner.ComputeSufStats("X", stats::DimensionColumns(kD + 1),
                                       stats::MatrixKind::kLowerTriangular,
                                       stats::ComputeVia::kUdfList);
    bench::Require(stats.status(), state);
    if (stats.ok()) BuildModelsFromStats(*stats, state);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_ExternalCpp(benchmark::State& state) {
  const uint64_t rows = bench::ScaledRows(kPaperN[state.range(0)]);
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, kD + 1);
  auto table = db->catalog().GetTable("X");
  if (!table.ok()) {
    state.SkipWithError("missing table");
    return;
  }
  // Export once outside the timed loop (Table 1 excludes export time,
  // "an unfair advantage to C++"); report the modeled link cost.
  const std::string path = "/tmp/nlq_bench_table1.csv";
  connect::OdbcExporter exporter;
  auto exported = exporter.ExportTable(**table, path);
  if (!exported.ok()) {
    state.SkipWithError(exported.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    connect::ExternalAnalyzerOptions options;
    options.kind = stats::MatrixKind::kLowerTriangular;
    auto stats = connect::AnalyzeFlatFile(path, kD + 1, options);
    bench::Require(stats.status(), state);
    if (stats.ok()) BuildModelsFromStats(*stats, state);
  }
  std::remove(path.c_str());
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["odbc_modeled_s"] = exported->modeled_link_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Paper Table 1: total model-build time at d=32 (corr + linreg + "
      "PCA), n scaled 1/%zu ===\n",
      nlq::bench::ScaleDivisor());
  for (size_t i = 0; i < 5; ++i) {
    const std::string label = "/n=" + nlq::bench::PaperN(kPaperN[i]);
    nlq::bench::RegisterReal(("Table1/Cpp" + label).c_str(),
                                 BM_ExternalCpp)
        ->Arg(static_cast<int>(i))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    nlq::bench::RegisterReal(("Table1/SQL" + label).c_str(), BM_Sql)
        ->Arg(static_cast<int>(i))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    nlq::bench::RegisterReal(("Table1/UDF" + label).c_str(), BM_Udf)
        ->Arg(static_cast<int>(i))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  return nlq::bench::RunSuite("bench_table1", &argc, argv);
}
