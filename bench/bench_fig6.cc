// Paper Figure 6: scalar scoring UDF time vs n at d = 32 (k = 16 for
// PCA and clustering).
//
// Expected shape (paper): all three techniques scale linearly in n;
// linear regression is fastest (one dot product per row), clustering
// is the most demanding (k distance UDFs plus the argmin per row),
// closely followed by PCA (k fascore projections per row).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "stats/linreg.h"
#include "stats/pca.h"

namespace {

using namespace nlq;
constexpr size_t kD = 32;
constexpr size_t kK = 16;
constexpr uint64_t kPaperN[] = {100, 200, 400, 800, 1600};

struct Setup {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<stats::WarehouseMiner> miner;
  stats::LinearRegressionModel reg;
  stats::PcaModel pca;
  stats::KMeansModel km;
};

Setup MakeSetup(uint64_t rows) {
  Setup s;
  s.db = bench::MakeBenchDatabase();
  bench::LoadMixture(s.db.get(), "X", rows, kD, /*with_y=*/true);
  s.miner = std::make_unique<stats::WarehouseMiner>(s.db.get());
  auto reg = s.miner->BuildLinearRegression("X", stats::DimensionColumns(kD),
                                            "Y", stats::ComputeVia::kUdfList);
  auto pca = s.miner->BuildPca("X", kD, kK, stats::ComputeVia::kUdfList);
  stats::KMeansOptions km_options;
  km_options.k = kK;
  km_options.max_iterations = 2;
  auto km = s.miner->BuildKMeansInDbms("X", kD, km_options);
  if (!reg.ok() || !pca.ok() || !km.ok()) std::abort();
  s.reg = std::move(reg).value();
  s.pca = std::move(pca).value();
  s.km = std::move(km).value();
  return s;
}

void BM_LinReg(benchmark::State& state) {
  Setup s = MakeSetup(bench::ScaledRows(kPaperN[state.range(0)]));
  for (auto _ : state) {
    bench::Require(s.miner->ScoreLinearRegression("X", s.reg, "OUT", true),
                   state);
  }
}

void BM_Pca(benchmark::State& state) {
  Setup s = MakeSetup(bench::ScaledRows(kPaperN[state.range(0)]));
  for (auto _ : state) {
    bench::Require(s.miner->ScorePca("X", s.pca, "OUT", true), state);
  }
}

void BM_Clustering(benchmark::State& state) {
  Setup s = MakeSetup(bench::ScaledRows(kPaperN[state.range(0)]));
  for (auto _ : state) {
    bench::Require(s.miner->ScoreKMeans("X", s.km, "OUT", true), state);
  }
}

template <typename Fn>
void RegisterSeries(const char* technique, Fn fn) {
  for (size_t ni = 0; ni < 5; ++ni) {
    const std::string label = std::string("Fig6/") + technique +
                              "/n=" + nlq::bench::PaperN(kPaperN[ni]);
    nlq::bench::RegisterReal(label.c_str(), fn)
        ->Arg(static_cast<int>(ni))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Paper Figure 6: scalar-UDF scoring time vs n at d=32, k=16, "
      "n scaled 1/%zu ===\n",
      nlq::bench::ScaleDivisor());
  RegisterSeries("linreg", BM_LinReg);
  RegisterSeries("pca", BM_Pca);
  RegisterSeries("clustering", BM_Clustering);
  return nlq::bench::RunSuite("bench_fig6", &argc, argv);
}
