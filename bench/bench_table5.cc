// Paper Table 5: aggregate UDF with GROUP BY — k groups (1..32) at
// d = 32, n ∈ {800k, 1600k}, diagonal matrix, comparing the string
// and list parameter-passing styles.
//
// Expected shape (paper): list < string for every k; time grows slowly
// for k <= 8 and jumps as the number of per-group aggregation states
// grows (k=32 is markedly slower).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace nlq;
constexpr size_t kD = 32;
constexpr uint64_t kPaperN[] = {800, 1600};
constexpr int kGroups[] = {1, 2, 4, 8, 16, 32};

void BM_Grouped(benchmark::State& state) {
  const uint64_t rows = bench::ScaledRows(kPaperN[state.range(0)]);
  const int k = kGroups[state.range(1)];
  const bool use_string = state.range(2) != 0;
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, kD);
  stats::WarehouseMiner miner(db.get());
  const std::string group_expr = "i % " + std::to_string(k);
  for (auto _ : state) {
    auto groups = miner.ComputeGroupedSufStats(
        "X", stats::DimensionColumns(kD), stats::MatrixKind::kDiagonal,
        use_string ? stats::ComputeVia::kUdfString
                   : stats::ComputeVia::kUdfList,
        group_expr);
    bench::Require(groups.status(), state);
    if (groups.ok() && groups->size() != static_cast<size_t>(k)) {
      state.SkipWithError("unexpected group count");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Paper Table 5: GROUP BY aggregate UDF, d=32 diagonal, varying "
      "group count k, string vs list, n scaled 1/%zu ===\n",
      nlq::bench::ScaleDivisor());
  for (size_t ni = 0; ni < 2; ++ni) {
    for (size_t ki = 0; ki < 6; ++ki) {
      for (int str = 0; str <= 1; ++str) {
        const std::string label =
            std::string("Table5/") + (str ? "string" : "list") +
            "/n=" + nlq::bench::PaperN(kPaperN[ni]) +
            "/k=" + std::to_string(kGroups[ki]);
        nlq::bench::RegisterReal(label.c_str(), BM_Grouped)
            ->Args({static_cast<int>(ni), static_cast<int>(ki), str})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  return nlq::bench::RunSuite("bench_table5", &argc, argv);
}
