// Paper Figure 4: aggregate-UDF matrix optimization — diagonal vs
// lower-triangular vs full Q. Left panel: time vs n at d = 64; right
// panel: time vs d at n = 1600k.
//
// Expected shape (paper): diag <= triang <= full everywhere; the gap
// is marginal at low d and becomes important at d = 64 (d vs d(d+1)/2
// vs d^2 multiply-adds per row), while all three grow linearly in n.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace nlq;
constexpr uint64_t kPanelAN[] = {200, 400, 800, 1600};  // d = 64
constexpr size_t kPanelBD[] = {8, 16, 32, 48, 64};      // n = 1600k
constexpr stats::MatrixKind kKinds[] = {stats::MatrixKind::kDiagonal,
                                        stats::MatrixKind::kLowerTriangular,
                                        stats::MatrixKind::kFull};
constexpr const char* kKindNames[] = {"diag", "triang", "full"};

void RunOne(benchmark::State& state, uint64_t rows, size_t d,
            stats::MatrixKind kind) {
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, d);
  stats::WarehouseMiner miner(db.get());
  for (auto _ : state) {
    auto stats = miner.ComputeSufStats("X", stats::DimensionColumns(d), kind,
                                       stats::ComputeVia::kUdfList);
    bench::Require(stats.status(), state);
    benchmark::DoNotOptimize(stats);
  }
}

void BM_PanelA(benchmark::State& state) {
  RunOne(state, bench::ScaledRows(kPanelAN[state.range(0)]), 64,
         kKinds[state.range(1)]);
}

void BM_PanelB(benchmark::State& state) {
  RunOne(state, bench::ScaledRows(1600), kPanelBD[state.range(0)],
         kKinds[state.range(1)]);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Paper Figure 4: UDF matrix kinds diag/triang/full, "
      "n scaled 1/%zu ===\n",
      nlq::bench::ScaleDivisor());
  for (size_t ni = 0; ni < 4; ++ni) {
    for (size_t kind = 0; kind < 3; ++kind) {
      const std::string label = std::string("Fig4/varyN/d=64/") +
                                kKindNames[kind] +
                                "/n=" + nlq::bench::PaperN(kPanelAN[ni]);
      nlq::bench::RegisterReal(label.c_str(), BM_PanelA)
          ->Args({static_cast<int>(ni), static_cast<int>(kind)})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  for (size_t di = 0; di < 5; ++di) {
    for (size_t kind = 0; kind < 3; ++kind) {
      const std::string label = std::string("Fig4/varyD/n=1600k/") +
                                kKindNames[kind] +
                                "/d=" + std::to_string(kPanelBD[di]);
      nlq::bench::RegisterReal(label.c_str(), BM_PanelB)
          ->Args({static_cast<int>(di), static_cast<int>(kind)})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  return nlq::bench::RunSuite("bench_fig4", &argc, argv);
}
