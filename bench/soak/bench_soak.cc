// Mixed-workload soak runner (EXPERIMENTS.md "Soak & SLO"): N client
// threads over the wire protocol, six workload classes, per-class
// latency SLOs, a bit-exact build oracle, a retryable-flag invariant,
// and failpoint chaos phases. Prints the JSON report; exit status is
// nonzero unless the run was healthy (zero oracle mismatches, zero
// wrong retryable flags, zero unexplained errors).
//
// Usage:
//   bench_soak [--duration-ms N] [--clients N] [--seed N]
//              [--slots N] [--queue-depth N] [--queue-wait-ms N]
//              [--tables N] [--dims N] [--seed-batches N]
//              [--batch-rows N] [--chaos 0|1] [--chaos-phase-ms N]
//              [--verify 0|1] [--json PATH]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/soak/soak.h"

namespace {

int64_t ArgInt(int argc, char** argv, const char* flag, int64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

std::string ArgStr(int argc, char** argv, const char* flag,
                   const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  nlq::soak::SoakOptions options;
  options.duration_ms = ArgInt(argc, argv, "--duration-ms", 60'000);
  options.clients =
      static_cast<size_t>(ArgInt(argc, argv, "--clients", 16));
  options.rng_seed = static_cast<uint64_t>(ArgInt(argc, argv, "--seed", 42));
  options.max_concurrent_statements =
      static_cast<size_t>(ArgInt(argc, argv, "--slots", 4));
  options.max_queue_depth =
      static_cast<size_t>(ArgInt(argc, argv, "--queue-depth", 32));
  options.max_queue_wait_ms = ArgInt(argc, argv, "--queue-wait-ms", 5'000);
  options.tables = static_cast<size_t>(ArgInt(argc, argv, "--tables", 2));
  options.dims = static_cast<size_t>(ArgInt(argc, argv, "--dims", 3));
  options.seed_batches =
      static_cast<uint64_t>(ArgInt(argc, argv, "--seed-batches", 32));
  options.batch_rows =
      static_cast<uint64_t>(ArgInt(argc, argv, "--batch-rows", 64));
  options.chaos = ArgInt(argc, argv, "--chaos", 1) != 0;
  options.chaos_phase_ms = ArgInt(argc, argv, "--chaos-phase-ms", 3'000);
  options.verify_builds = ArgInt(argc, argv, "--verify", 1) != 0;
  const std::string json_path = ArgStr(argc, argv, "--json", "");

  nlq::soak::SoakDriver driver(options);
  nlq::Status run = driver.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "soak failed to run: %s\n", run.ToString().c_str());
    return 2;
  }

  const nlq::soak::SoakReport& report = driver.report();
  const std::string json = report.ToJson();
  std::fputs(json.c_str(), stdout);
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }

  if (!report.Healthy()) {
    for (const std::string& e : driver.errors()) {
      std::fprintf(stderr, "soak error: %s\n", e.c_str());
    }
    return 1;
  }
  return 0;
}
