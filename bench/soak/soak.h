#ifndef NLQ_BENCH_SOAK_SOAK_H_
#define NLQ_BENCH_SOAK_SOAK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/status.h"
#include "engine/database.h"
#include "engine/result_set.h"
#include "server/client.h"
#include "server/server.h"

namespace nlq::soak {

/// Mixed-workload soak harness: N client threads over the nlq_server
/// wire protocol executing a weighted mix of the six workload classes
/// the north star cares about, with per-class latency histograms, a
/// bit-exact correctness oracle for every build reply, a retryable-
/// flag invariant on every rejection, and failpoint-driven chaos
/// phases running inside the soak. See EXPERIMENTS.md "Soak & SLO".
///
/// Determinism contract the oracle rests on:
///  - Every row of every soak table is a pure function of
///    (table index, global row index); batch b of table t is always
///    the same INSERT statement text (BatchInsertSql), so the doubles
///    the server parses are bit-identical to the ones the oracle
///    parses.
///  - Appends to one table are serialized driver-side (per-table
///    mutex) and each INSERT holds the Database exclusive statement
///    gate, so every concurrent build observes the table at an exact
///    batch boundary: row count k * batch_rows for some k.
///  - A build's observed row count is recovered from the returned
///    sufficient statistics (n), which lets the oracle replay exactly
///    the logical table state that build saw — single-threaded, views
///    off, same partitions/morsels — and demand a bit-identical
///    result.

enum class WorkloadClass : size_t {
  kBuild = 0,     // ungrouped n,L,Q model build (aggregate UDF)
  kGroupedBuild,  // per-segment GROUP BY build
  kIterative,     // K-means/EM-style iterative rescans
  kScoring,       // linreg scoring bursts (UDF + SQL styles)
  kAppend,        // streaming INSERT batches (PR-8 view path)
  kCancel,        // random CANCELs aimed at other sessions
};
inline constexpr size_t kNumClasses = 6;

const char* ClassName(WorkloadClass c);

/// Per-class mix weight and declared latency SLO.
struct ClassConfig {
  double weight = 0.0;
  int64_t slo_ms = 0;
};

struct SoakOptions {
  size_t clients = 16;
  int64_t duration_ms = 60'000;
  uint64_t rng_seed = 42;

  /// Appendable model tables T0..T{tables-1}, plus (optionally) one
  /// read-only spilled table TS — the page_decompress chaos target —
  /// and one small static table TEXPORT for the odbc chaos phase.
  size_t tables = 2;
  size_t dims = 3;             // X1..Xd
  uint64_t seed_batches = 32;  // initial batches per table
  uint64_t batch_rows = 64;    // rows per append batch
  bool spilled_table = true;

  size_t iterations = 3;     // rescans per iterative statement chain
  size_t scoring_burst = 4;  // statements per scoring burst
  size_t groups = 4;         // GROUP BY segments (group key i % groups)
  size_t scoring_limit = 512;  // LIMIT on scoring result sets

  /// Failpoint chaos phases; silently skipped when the binary was not
  /// built with NLQ_FAILPOINTS.
  bool chaos = true;
  int64_t chaos_phase_ms = 3'000;

  // Server shape (soak intentionally oversubscribes the slots).
  size_t max_concurrent_statements = 4;
  size_t max_queue_depth = 32;
  int64_t max_queue_wait_ms = 5'000;
  size_t max_sessions = 64;

  /// Engine shape — the oracle mirrors partitions/morsels exactly.
  size_t num_partitions = 4;
  uint64_t morsel_rows = 16384;

  /// Oracle-check every build/grouped-build reply.
  bool verify_builds = true;

  /// Indexed by WorkloadClass.
  ClassConfig classes[kNumClasses] = {
      {0.22, 250},  // build
      {0.14, 400},  // grouped build
      {0.10, 800},  // iterative
      {0.18, 400},  // scoring
      {0.24, 250},  // append
      {0.12, 100},  // cancel
  };
};

/// Post-run numbers for one workload class.
struct ClassReport {
  std::string name;
  int64_t slo_ms = 0;
  uint64_t attempts = 0;
  uint64_t completed = 0;
  uint64_t within_slo = 0;
  uint64_t rejected = 0;        // retryable admission rejections
  uint64_t cancelled = 0;       // kCancelled replies (expected)
  uint64_t chaos_faults = 0;    // injected-fault error replies
  uint64_t transport_errors = 0;  // local stream death -> reconnect
  uint64_t other_errors = 0;    // anything else (soak failure)
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
};

struct SoakReport {
  double elapsed_sec = 0;
  uint64_t total_completed = 0;
  double stmts_per_sec = 0;
  /// Completed statements that met their class SLO, per second — the
  /// scoreboard number (queries/sec at fixed SLO).
  double stmts_per_sec_at_slo = 0;

  uint64_t oracle_checks = 0;
  uint64_t oracle_mismatches = 0;
  uint64_t retryable_flag_violations = 0;
  uint64_t internal_errors = 0;
  uint64_t reconnects = 0;
  uint64_t append_recoveries = 0;  // COUNT(*) resyncs after unknown outcome
  uint64_t chaos_phases = 0;
  uint64_t odbc_retry_exercises = 0;
  bool chaos_enabled = false;

  /// Server-side queue-wait percentiles (METRICS_HISTOGRAM reply).
  uint64_t queue_wait_count = 0;
  double queue_wait_p95_ms = 0;

  std::vector<ClassReport> classes;

  /// Zero mismatches, zero flag violations, zero unexplained errors.
  bool Healthy() const;
  std::string ToJson() const;
};

/// Reconstructs table states from the deterministic batch sequence and
/// replays build statements on embedded single-threaded databases for
/// bit-exact comparison against wire results. Thread-safe; one
/// replay database per table, created lazily, advanced in batch order.
class BuildOracle {
 public:
  explicit BuildOracle(const SoakOptions& options) : options_(options) {}

  /// Logical table names. Indexes 0..tables-1 are appendable;
  /// SpilledIndex() names the read-only spilled table.
  static std::string TableName(size_t t);
  static size_t SpilledIndex(const SoakOptions& options) {
    return options.tables;
  }

  static std::string CreateTableSql(const SoakOptions& options,
                                    const std::string& table);

  /// The INSERT statement for batch `batch` of table `t` — identical
  /// text on the live and replay sides, which is what makes the
  /// parsed doubles bit-identical.
  static std::string BatchInsertSql(const SoakOptions& options, size_t t,
                                    uint64_t batch);

  /// Verifies that `wire` — the reply to `sql` against table `t`
  /// claiming to observe `observed_rows` rows — is bit-identical to a
  /// single-threaded embedded replay of exactly that table state.
  /// Returns OK on a bit-exact match, an error describing the
  /// divergence otherwise.
  Status VerifyBuild(size_t t, uint64_t observed_rows, const std::string& sql,
                     const engine::ResultSet& wire);

 private:
  struct TableOracle {
    std::mutex mu;
    std::unique_ptr<engine::Database> db;
    uint64_t batches = 0;
  };

  SoakOptions options_;
  std::mutex map_mu_;
  std::vector<std::unique_ptr<TableOracle>> tables_;
};

/// Bit-exact result comparison (schema arity, row count, and every
/// datum — doubles by IEEE-754 bit pattern). OK when identical.
Status ExpectBitIdentical(const engine::ResultSet& expected,
                          const engine::ResultSet& actual);

/// The soak driver: owns the server-side database + in-process
/// nlq Server, the worker threads, the chaos controller and the
/// oracle. Run() blocks for the configured duration.
class SoakDriver {
 public:
  explicit SoakDriver(SoakOptions options);
  ~SoakDriver();

  SoakDriver(const SoakDriver&) = delete;
  SoakDriver& operator=(const SoakDriver&) = delete;

  /// Setup, soak for duration_ms, teardown, populate report().
  Status Run();

  const SoakReport& report() const { return report_; }

  /// First few oracle / flag-violation / internal-error descriptions,
  /// for diagnostics when report().Healthy() is false.
  std::vector<std::string> errors() {
    std::lock_guard<std::mutex> lock(error_log_mu_);
    return error_log_;
  }

 private:
  struct WorkerState {
    std::atomic<uint64_t> session_id{0};
    /// Whether a CANCEL aimed at this worker right now is harmless
    /// (builds/scoring yes; appends opt out so a pending cancel
    /// cannot land on an INSERT).
    std::atomic<bool> cancellable{false};
  };

  struct TableState {
    /// Serializes append batches so table state only ever advances
    /// through exact batch boundaries.
    std::mutex append_mu;
    uint64_t applied_batches = 0;  // guarded by append_mu
  };

  struct ClassStats {
    std::atomic<uint64_t> attempts{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> within_slo{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> cancelled{0};
    std::atomic<uint64_t> chaos_faults{0};
    std::atomic<uint64_t> transport_errors{0};
    std::atomic<uint64_t> other_errors{0};
    Histogram latency;
  };

  Status Setup();
  void Teardown();
  void WorkerMain(size_t w);
  void ChaosMain();

  /// Ensures `client` is connected, reconnecting (and counting) as
  /// long as the soak is running. False once stopped.
  bool EnsureConnected(server::NlqClient* client, size_t w,
                       WorkloadClass c);

  /// Sends one statement, classifies the outcome into `c`'s counters
  /// and observes latency on completion. Returns the rows on success.
  StatusOr<engine::ResultSet> RunStatement(server::NlqClient* client,
                                           size_t w, WorkloadClass c,
                                           const std::string& sql);

  void RunBuild(server::NlqClient* client, size_t w, Random* rng,
                bool grouped);
  void RunIterative(server::NlqClient* client, size_t w, Random* rng);
  void RunScoring(server::NlqClient* client, size_t w, Random* rng);
  void RunAppend(server::NlqClient* client, size_t w, Random* rng);
  void RunCancel(server::NlqClient* client, size_t w, Random* rng);

  /// Resyncs applied_batches from COUNT(*) after an append whose
  /// outcome is unknown (stream died mid-round-trip, or cancelled).
  /// When the stream died, `orphan_session` names the abandoned
  /// session; the count is taken only after CancelSession(orphan)
  /// reports kNotFound, proving the in-flight INSERT can no longer
  /// land after the count. Pass 0 when the reply arrived on a live
  /// stream (statement already settled). Caller holds the table's
  /// append_mu.
  void RecoverAppendCount(server::NlqClient* client, size_t w, size_t t,
                          TableState* table, uint64_t orphan_session);

  void FinalizeReport(double elapsed_sec);

  SoakOptions options_;
  SoakReport report_;

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<server::Server> server_;
  std::unique_ptr<BuildOracle> oracle_;

  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::unique_ptr<TableState>> tables_;
  std::vector<std::unique_ptr<ClassStats>> stats_;

  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> oracle_checks_{0};
  std::atomic<uint64_t> oracle_mismatches_{0};
  std::atomic<uint64_t> flag_violations_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> append_recoveries_{0};
  std::atomic<uint64_t> chaos_phases_{0};
  std::atomic<uint64_t> odbc_retry_exercises_{0};
  std::atomic<uint64_t> internal_errors_{0};

  std::mutex error_log_mu_;
  std::vector<std::string> error_log_;  // first few oracle/internal errors
};

}  // namespace nlq::soak

#endif  // NLQ_BENCH_SOAK_SOAK_H_
