#include "bench/soak/soak.h"

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/failpoint.h"
#include "common/strings.h"
#include "connect/odbc_sim.h"
#include "stats/scoring.h"
#include "stats/sqlgen.h"
#include "stats/sufstats.h"

namespace nlq::soak {
namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kChaosFaultMarker = "injected chaos fault";
constexpr const char* kSpilledTableName = "TS";
constexpr const char* kExportTableName = "TEXPORT";

double NanosToMs(uint64_t nanos) {
  return nanos == UINT64_MAX ? 1e9 : static_cast<double>(nanos) / 1e6;
}

/// Deterministic cell value for (table, global row, column): a dyadic
/// rational k/256 in [0, 16) whose decimal form round-trips exactly
/// through SQL text on both the live and replay sides.
double CellValue(size_t t, uint64_t row, size_t col) {
  const uint64_t k =
      (row * 131 + col * 17 + t * 59 + (row >> 3) * 7) % 4096;
  return static_cast<double>(k) / 256.0;
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StringPrintf("\\u%04x", c));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

const char* ClassName(WorkloadClass c) {
  switch (c) {
    case WorkloadClass::kBuild:
      return "build";
    case WorkloadClass::kGroupedBuild:
      return "grouped_build";
    case WorkloadClass::kIterative:
      return "iterative";
    case WorkloadClass::kScoring:
      return "scoring";
    case WorkloadClass::kAppend:
      return "append";
    case WorkloadClass::kCancel:
      return "cancel";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// BuildOracle

std::string BuildOracle::TableName(size_t t) {
  return "T" + std::to_string(t);
}

std::string BuildOracle::CreateTableSql(const SoakOptions& options,
                                        const std::string& table) {
  std::string sql = "CREATE TABLE " + table + " (i BIGINT";
  for (size_t c = 1; c <= options.dims; ++c) {
    sql += ", X" + std::to_string(c) + " DOUBLE";
  }
  sql += ")";
  return sql;
}

std::string BuildOracle::BatchInsertSql(const SoakOptions& options, size_t t,
                                        uint64_t batch) {
  std::string sql = "INSERT INTO " +
                    (t == SpilledIndex(options) ? std::string(kSpilledTableName)
                                                : TableName(t)) +
                    " VALUES ";
  for (uint64_t j = 0; j < options.batch_rows; ++j) {
    const uint64_t row = batch * options.batch_rows + j;
    if (j > 0) sql += ", ";
    sql += StringPrintf("(%llu", static_cast<unsigned long long>(row));
    for (size_t c = 1; c <= options.dims; ++c) {
      // %.8f prints n/256 exactly (8 fractional decimal digits).
      sql += StringPrintf(", %.8f", CellValue(t, row, c));
    }
    sql += ")";
  }
  return sql;
}

Status BuildOracle::VerifyBuild(size_t t, uint64_t observed_rows,
                                const std::string& sql,
                                const engine::ResultSet& wire) {
  if (observed_rows % options_.batch_rows != 0) {
    return Status::Internal(StringPrintf(
        "oracle: build on %s observed %llu rows, not a multiple of the "
        "batch size %llu — appends are not atomic w.r.t. builds",
        TableName(t).c_str(),
        static_cast<unsigned long long>(observed_rows),
        static_cast<unsigned long long>(options_.batch_rows)));
  }
  const uint64_t batches = observed_rows / options_.batch_rows;

  TableOracle* oracle;
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    while (tables_.size() <= t) {
      tables_.push_back(std::make_unique<TableOracle>());
    }
    oracle = tables_[t].get();
  }

  std::lock_guard<std::mutex> lock(oracle->mu);
  const std::string table =
      t == SpilledIndex(options_) ? kSpilledTableName : TableName(t);
  auto make_db = [&]() -> StatusOr<std::unique_ptr<engine::Database>> {
    engine::DatabaseOptions dbopts;
    dbopts.num_partitions = options_.num_partitions;
    dbopts.morsel_rows = options_.morsel_rows;
    dbopts.num_threads = 1;
    dbopts.enable_view_maintenance = false;
    auto db = std::make_unique<engine::Database>(dbopts);
    NLQ_RETURN_IF_ERROR(stats::RegisterAllStatsUdfs(&db->udfs()));
    NLQ_RETURN_IF_ERROR(db->ExecuteCommand(CreateTableSql(options_, table)));
    return db;
  };

  engine::Database* replay = nullptr;
  std::unique_ptr<engine::Database> throwaway;
  if (oracle->db == nullptr) {
    NLQ_ASSIGN_OR_RETURN(auto db, make_db());
    oracle->db = std::move(db);
    oracle->batches = 0;
  }
  if (batches < oracle->batches) {
    // Older table state than the cached replay: rebuild from scratch.
    NLQ_ASSIGN_OR_RETURN(throwaway, make_db());
    for (uint64_t b = 0; b < batches; ++b) {
      NLQ_RETURN_IF_ERROR(
          throwaway->ExecuteCommand(BatchInsertSql(options_, t, b)));
    }
    replay = throwaway.get();
  } else {
    while (oracle->batches < batches) {
      NLQ_RETURN_IF_ERROR(oracle->db->ExecuteCommand(
          BatchInsertSql(options_, t, oracle->batches)));
      ++oracle->batches;
    }
    replay = oracle->db.get();
  }

  NLQ_ASSIGN_OR_RETURN(engine::ResultSet expected, replay->Execute(sql));
  Status same = ExpectBitIdentical(expected, wire);
  if (!same.ok()) {
    return Status::Internal(StringPrintf(
        "oracle mismatch on %s at %llu rows for [%s]: %s",
        table.c_str(), static_cast<unsigned long long>(observed_rows),
        sql.c_str(), same.message().c_str()));
  }
  return Status::OK();
}

Status ExpectBitIdentical(const engine::ResultSet& expected,
                          const engine::ResultSet& actual) {
  if (expected.num_rows() != actual.num_rows() ||
      expected.num_columns() != actual.num_columns()) {
    return Status::Internal(StringPrintf(
        "shape differs: expected %zux%zu, got %zux%zu", expected.num_rows(),
        expected.num_columns(), actual.num_rows(), actual.num_columns()));
  }
  for (size_t r = 0; r < expected.num_rows(); ++r) {
    for (size_t c = 0; c < expected.num_columns(); ++c) {
      const storage::Datum& e = expected.At(r, c);
      const storage::Datum& a = actual.At(r, c);
      if (e.type() != a.type() || e.is_null() != a.is_null()) {
        return Status::Internal(
            StringPrintf("type/null differs at (%zu, %zu)", r, c));
      }
      if (e.is_null()) continue;
      bool equal = true;
      switch (e.type()) {
        case storage::DataType::kInt64:
          equal = e.int_value() == a.int_value();
          break;
        case storage::DataType::kDouble: {
          uint64_t be, ba;
          const double de = e.double_value(), da = a.double_value();
          std::memcpy(&be, &de, sizeof(de));
          std::memcpy(&ba, &da, sizeof(da));
          equal = be == ba;
          break;
        }
        case storage::DataType::kVarchar:
          equal = e.string_value() == a.string_value();
          break;
      }
      if (!equal) {
        return Status::Internal(
            StringPrintf("value differs at (%zu, %zu)", r, c));
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SoakReport

bool SoakReport::Healthy() const {
  if (oracle_mismatches != 0 || retryable_flag_violations != 0 ||
      internal_errors != 0) {
    return false;
  }
  return true;
}

std::string SoakReport::ToJson() const {
  std::string out = "{\n";
  out += StringPrintf(
      "  \"elapsed_sec\": %.3f,\n  \"total_completed\": %llu,\n"
      "  \"stmts_per_sec\": %.2f,\n  \"stmts_per_sec_at_slo\": %.2f,\n",
      elapsed_sec, static_cast<unsigned long long>(total_completed),
      stmts_per_sec, stmts_per_sec_at_slo);
  out += StringPrintf(
      "  \"oracle_checks\": %llu,\n  \"oracle_mismatches\": %llu,\n"
      "  \"retryable_flag_violations\": %llu,\n  \"internal_errors\": %llu,\n"
      "  \"reconnects\": %llu,\n  \"append_recoveries\": %llu,\n"
      "  \"chaos_enabled\": %s,\n  \"chaos_phases\": %llu,\n"
      "  \"odbc_retry_exercises\": %llu,\n",
      static_cast<unsigned long long>(oracle_checks),
      static_cast<unsigned long long>(oracle_mismatches),
      static_cast<unsigned long long>(retryable_flag_violations),
      static_cast<unsigned long long>(internal_errors),
      static_cast<unsigned long long>(reconnects),
      static_cast<unsigned long long>(append_recoveries),
      chaos_enabled ? "true" : "false",
      static_cast<unsigned long long>(chaos_phases),
      static_cast<unsigned long long>(odbc_retry_exercises));
  out += StringPrintf(
      "  \"queue_wait_count\": %llu,\n  \"queue_wait_p95_ms\": %.3f,\n",
      static_cast<unsigned long long>(queue_wait_count), queue_wait_p95_ms);
  out += "  \"classes\": {\n";
  bool first = true;
  for (const ClassReport& c : classes) {
    if (!first) out += ",\n";
    first = false;
    out += "    ";
    AppendJsonEscaped(c.name, &out);
    out += StringPrintf(
        ": {\"slo_ms\": %lld, \"attempts\": %llu, \"completed\": %llu, "
        "\"within_slo\": %llu, \"rejected\": %llu, \"cancelled\": %llu, "
        "\"chaos_faults\": %llu, \"transport_errors\": %llu, "
        "\"other_errors\": %llu, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"slo_met\": %s}",
        static_cast<long long>(c.slo_ms),
        static_cast<unsigned long long>(c.attempts),
        static_cast<unsigned long long>(c.completed),
        static_cast<unsigned long long>(c.within_slo),
        static_cast<unsigned long long>(c.rejected),
        static_cast<unsigned long long>(c.cancelled),
        static_cast<unsigned long long>(c.chaos_faults),
        static_cast<unsigned long long>(c.transport_errors),
        static_cast<unsigned long long>(c.other_errors), c.p50_ms, c.p95_ms,
        c.p99_ms,
        // SLO met = ≥95% of completions within the class SLO, from the
        // exact per-statement timings (the histogram p95 only bounds
        // the answer to a power-of-two bucket).
        (c.completed == 0 ||
         static_cast<double>(c.within_slo) >=
             0.95 * static_cast<double>(c.completed))
            ? "true"
            : "false");
  }
  out += "\n  },\n  \"healthy\": ";
  out += Healthy() ? "true" : "false";
  out += "\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// SoakDriver

SoakDriver::SoakDriver(SoakOptions options) : options_(std::move(options)) {}

SoakDriver::~SoakDriver() { Teardown(); }

Status SoakDriver::Setup() {
  engine::DatabaseOptions dbopts;
  dbopts.num_partitions = options_.num_partitions;
  dbopts.morsel_rows = options_.morsel_rows;
  dbopts.enable_view_maintenance = true;  // exercise the PR-8 view path
  db_ = std::make_unique<engine::Database>(dbopts);
  NLQ_RETURN_IF_ERROR(stats::RegisterAllStatsUdfs(&db_->udfs()));

  // Appendable model tables T0..T{n-1}, seeded batch by batch with the
  // same statements the oracle will replay.
  for (size_t t = 0; t < options_.tables; ++t) {
    NLQ_RETURN_IF_ERROR(db_->ExecuteCommand(
        BuildOracle::CreateTableSql(options_, BuildOracle::TableName(t))));
    for (uint64_t b = 0; b < options_.seed_batches; ++b) {
      NLQ_RETURN_IF_ERROR(
          db_->ExecuteCommand(BuildOracle::BatchInsertSql(options_, t, b)));
    }
    tables_.push_back(std::make_unique<TableState>());
    tables_.back()->applied_batches = options_.seed_batches;
  }

  // Read-only spilled table: builds/scoring on it run through the
  // buffer pool (page_decompress chaos target); its oracle replay
  // stays resident, which the spilled==resident guarantee covers.
  if (options_.spilled_table) {
    const size_t ts = BuildOracle::SpilledIndex(options_);
    NLQ_RETURN_IF_ERROR(db_->ExecuteCommand(
        BuildOracle::CreateTableSql(options_, kSpilledTableName)));
    for (uint64_t b = 0; b < options_.seed_batches; ++b) {
      NLQ_RETURN_IF_ERROR(
          db_->ExecuteCommand(BuildOracle::BatchInsertSql(options_, ts, b)));
    }
    NLQ_RETURN_IF_ERROR(db_->SpillTable(kSpilledTableName));
  }

  // Static model tables for scoring (BETA one row, C `groups` rows)
  // and the odbc chaos export source.
  {
    std::string create = "CREATE TABLE BETA (b0 DOUBLE";
    std::string insert = "INSERT INTO BETA VALUES (0.5";
    for (size_t c = 1; c <= options_.dims; ++c) {
      create += StringPrintf(", b%zu DOUBLE", c);
      insert += StringPrintf(", %.8f", static_cast<double>(c * 13 % 64) / 32.0);
    }
    NLQ_RETURN_IF_ERROR(db_->ExecuteCommand(create + ")"));
    NLQ_RETURN_IF_ERROR(db_->ExecuteCommand(insert + ")"));

    std::string ccreate = "CREATE TABLE C (j BIGINT";
    for (size_t c = 1; c <= options_.dims; ++c) {
      ccreate += StringPrintf(", X%zu DOUBLE", c);
    }
    NLQ_RETURN_IF_ERROR(db_->ExecuteCommand(ccreate + ")"));
    std::string cinsert = "INSERT INTO C VALUES ";
    for (size_t j = 1; j <= options_.groups; ++j) {
      if (j > 1) cinsert += ", ";
      cinsert += StringPrintf("(%zu", j);
      for (size_t c = 1; c <= options_.dims; ++c) {
        cinsert += StringPrintf(", %.8f",
                                static_cast<double>((j * 37 + c * 11) % 512) /
                                    32.0);
      }
      cinsert += ")";
    }
    NLQ_RETURN_IF_ERROR(db_->ExecuteCommand(cinsert));

    NLQ_RETURN_IF_ERROR(db_->ExecuteCommand(
        BuildOracle::CreateTableSql(options_, kExportTableName)));
    std::string einsert = std::string("INSERT INTO ") + kExportTableName +
                          " VALUES ";
    for (uint64_t r = 0; r < 256; ++r) {
      if (r > 0) einsert += ", ";
      einsert += StringPrintf("(%llu", static_cast<unsigned long long>(r));
      for (size_t c = 1; c <= options_.dims; ++c) {
        einsert += StringPrintf(", %.8f", CellValue(99, r, c));
      }
      einsert += ")";
    }
    NLQ_RETURN_IF_ERROR(db_->ExecuteCommand(einsert));
  }

  oracle_ = std::make_unique<BuildOracle>(options_);

  server::ServerOptions sopts;
  sopts.host = "127.0.0.1";
  sopts.port = 0;
  sopts.admission.max_concurrent_statements =
      options_.max_concurrent_statements;
  sopts.admission.max_queue_depth = options_.max_queue_depth;
  sopts.admission.max_queue_wait_ms = options_.max_queue_wait_ms;
  sopts.max_sessions = options_.max_sessions;
  // Idle timeouts off: the only kDeadlineExceeded the soak may legally
  // see is the (retryable) queue-wait deadline, which is what lets the
  // driver assert the retryable flag on every rejection.
  sopts.idle_timeout_ms = 0;
  server_ = std::make_unique<server::Server>(db_.get(), sopts);
  NLQ_RETURN_IF_ERROR(server_->Start());

  for (size_t w = 0; w < options_.clients; ++w) {
    workers_.push_back(std::make_unique<WorkerState>());
  }
  for (size_t c = 0; c < kNumClasses; ++c) {
    stats_.push_back(std::make_unique<ClassStats>());
  }
  return Status::OK();
}

void SoakDriver::Teardown() {
  if (options_.chaos) failpoint::DeactivateAll();
  if (server_ != nullptr) server_->Shutdown();
  server_.reset();
  oracle_.reset();
  db_.reset();
}

bool SoakDriver::EnsureConnected(server::NlqClient* client, size_t w,
                                 WorkloadClass /*c*/) {
  if (client->connected()) return true;
  while (!stop_.load(std::memory_order_acquire)) {
    client->Close();
    Status s = client->Connect("127.0.0.1", server_->port(),
                               /*timeout_ms=*/60'000);
    if (s.ok()) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      workers_[w]->session_id.store(client->session_id(),
                                    std::memory_order_release);
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

StatusOr<engine::ResultSet> SoakDriver::RunStatement(
    server::NlqClient* client, size_t w, WorkloadClass c,
    const std::string& sql) {
  ClassStats& stats = *stats_[static_cast<size_t>(c)];
  if (!EnsureConnected(client, w, c)) {
    return Status::Unavailable("soak stopping");
  }
  stats.attempts.fetch_add(1, std::memory_order_relaxed);
  const auto start = Clock::now();
  StatusOr<engine::ResultSet> result = client->Query(sql);
  const uint64_t nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
  if (result.ok()) {
    stats.completed.fetch_add(1, std::memory_order_relaxed);
    stats.latency.Observe(nanos);
    const int64_t slo = options_.classes[static_cast<size_t>(c)].slo_ms;
    if (nanos <= static_cast<uint64_t>(slo) * 1'000'000ull) {
      stats.within_slo.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
  }

  const Status& s = result.status();
  if (!client->connected()) {
    // Local stream death (server_read/server_write chaos, shutdown):
    // no server reply, so no flag to check. Reconnect and move on.
    stats.transport_errors.fetch_add(1, std::memory_order_relaxed);
    return result;
  }
  const bool retryable = client->last_error_retryable();
  const bool admission_code = s.code() == StatusCode::kResourceExhausted ||
                              s.code() == StatusCode::kDeadlineExceeded;
  // The invariant every rejection must honor: with no per-query
  // budgets or timeouts set by any soak session, kResourceExhausted /
  // kDeadlineExceeded can only come from admission (retryable), and
  // everything else must be flagged non-retryable.
  if (admission_code != retryable) {
    flag_violations_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(error_log_mu_);
    if (error_log_.size() < 32) {
      error_log_.push_back("wrong retryable flag (" +
                           std::string(retryable ? "true" : "false") +
                           ") on: " + s.ToString());
    }
  }
  if (admission_code) {
    stats.rejected.fetch_add(1, std::memory_order_relaxed);
  } else if (s.code() == StatusCode::kCancelled) {
    stats.cancelled.fetch_add(1, std::memory_order_relaxed);
  } else if (s.message().find(kChaosFaultMarker) != std::string::npos) {
    stats.chaos_faults.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats.other_errors.fetch_add(1, std::memory_order_relaxed);
    internal_errors_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(error_log_mu_);
    if (error_log_.size() < 32) {
      error_log_.push_back("unexpected error for [" + sql.substr(0, 80) +
                           "]: " + s.ToString());
    }
  }
  return result;
}

void SoakDriver::RunBuild(server::NlqClient* client, size_t w, Random* rng,
                          bool grouped) {
  // Spilled table gets ~1/4 of ungrouped builds; grouped builds stay
  // on appendable tables so that shape sees appends move underneath it.
  size_t t;
  if (!grouped && options_.spilled_table && rng->NextUint64(4) == 0) {
    t = BuildOracle::SpilledIndex(options_);
  } else {
    t = static_cast<size_t>(rng->NextUint64(options_.tables));
  }
  const std::string table = t == BuildOracle::SpilledIndex(options_)
                                ? kSpilledTableName
                                : BuildOracle::TableName(t);
  const std::vector<std::string> cols = stats::DimensionColumns(options_.dims);
  const std::string group_expr =
      "i % " + std::to_string(options_.groups);
  const std::string sql =
      grouped ? stats::NlqUdfQueryGrouped(table, cols,
                                          stats::MatrixKind::kLowerTriangular,
                                          stats::ParamStyle::kList, group_expr)
              : stats::NlqUdfQuery(table, cols,
                                   stats::MatrixKind::kLowerTriangular,
                                   stats::ParamStyle::kList);
  const WorkloadClass c =
      grouped ? WorkloadClass::kGroupedBuild : WorkloadClass::kBuild;
  StatusOr<engine::ResultSet> result = RunStatement(client, w, c, sql);
  if (!result.ok() || !options_.verify_builds) return;

  // Observed row count back out of the sufficient statistics: build
  // columns are NULL-free, so n counts every row the scan saw (for
  // grouped builds, summed across segments).
  uint64_t observed = 0;
  const size_t stats_col = grouped ? 1 : 0;
  for (size_t r = 0; r < result->num_rows(); ++r) {
    auto decoded = stats::SufStatsFromUdfResult(*result, r, stats_col);
    if (!decoded.ok()) {
      oracle_checks_.fetch_add(1, std::memory_order_relaxed);
      oracle_mismatches_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(error_log_mu_);
      if (error_log_.size() < 32) {
        error_log_.push_back("oracle: undecodable build payload: " +
                             decoded.status().ToString());
      }
      return;
    }
    observed += static_cast<uint64_t>(std::llround(decoded->n()));
  }
  oracle_checks_.fetch_add(1, std::memory_order_relaxed);
  Status verified = oracle_->VerifyBuild(t, observed, sql, *result);
  if (!verified.ok()) {
    oracle_mismatches_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(error_log_mu_);
    if (error_log_.size() < 32) error_log_.push_back(verified.ToString());
  }
}

void SoakDriver::RunIterative(server::NlqClient* client, size_t w,
                              Random* rng) {
  const size_t t = static_cast<size_t>(rng->NextUint64(options_.tables));
  const std::string table = BuildOracle::TableName(t);

  // EM-style chain: means first, then SSE rescans against literal
  // centroids derived from the previous reply — each iteration is a
  // fresh statement whose text depends on data the server returned.
  std::string sql = "SELECT COUNT(*)";
  for (size_t c = 1; c <= options_.dims; ++c) {
    sql += StringPrintf(", SUM(X%zu)", c);
  }
  sql += " FROM " + table;
  StatusOr<engine::ResultSet> means =
      RunStatement(client, w, WorkloadClass::kIterative, sql);
  if (!means.ok() || means->num_rows() != 1) return;
  const double n = means->At(0, 0).AsDouble();
  if (n <= 0) return;
  std::vector<double> center(options_.dims);
  for (size_t c = 0; c < options_.dims; ++c) {
    center[c] = means->At(0, c + 1).AsDouble() / n;
  }

  for (size_t it = 1; it < options_.iterations; ++it) {
    std::string dist = "(X1 - " + StringPrintf("%.17g", center[0]) + ") * " +
                       "(X1 - " + StringPrintf("%.17g", center[0]) + ")";
    for (size_t c = 2; c <= options_.dims; ++c) {
      const std::string lit = StringPrintf("%.17g", center[c - 1]);
      dist += StringPrintf(" + (X%zu - %s) * (X%zu - %s)", c, lit.c_str(), c,
                           lit.c_str());
    }
    const std::string rescan =
        "SELECT COUNT(*), SUM(" + dist + ") FROM " + table;
    StatusOr<engine::ResultSet> sse =
        RunStatement(client, w, WorkloadClass::kIterative, rescan);
    if (!sse.ok() || sse->num_rows() != 1) return;
    const double count = sse->At(0, 0).AsDouble();
    if (count <= 0) return;
    // Nudge the centroid so the next statement text differs (the
    // bytecode/plan caches still see a brand-new statement, as a real
    // EM loop would produce).
    const double spread = sse->At(0, 1).AsDouble() / count;
    for (size_t c = 0; c < options_.dims; ++c) {
      center[c] += spread / static_cast<double>((c + 2) * 100);
    }
  }
}

void SoakDriver::RunScoring(server::NlqClient* client, size_t w,
                            Random* rng) {
  // Rotate linreg UDF / linreg SQL / k-means UDF scoring shapes, each
  // LIMIT-bounded so the burst stresses statement rate, not result
  // transfer.
  for (size_t q = 0; q < options_.scoring_burst; ++q) {
    size_t t;
    if (options_.spilled_table && rng->NextUint64(4) == 0) {
      t = BuildOracle::SpilledIndex(options_);
    } else {
      t = static_cast<size_t>(rng->NextUint64(options_.tables));
    }
    const std::string table = t == BuildOracle::SpilledIndex(options_)
                                  ? kSpilledTableName
                                  : BuildOracle::TableName(t);
    std::string sql;
    switch (rng->NextUint64(3)) {
      case 0:
        sql = stats::LinRegScoreUdfQuery(table, "BETA", options_.dims);
        break;
      case 1:
        sql = stats::LinRegScoreSqlQuery(table, "BETA", options_.dims);
        break;
      default:
        sql = stats::KMeansScoreUdfQuery(table, "C", options_.dims,
                                         options_.groups);
        break;
    }
    sql += " LIMIT " + std::to_string(options_.scoring_limit);
    if (!RunStatement(client, w, WorkloadClass::kScoring, sql).ok()) return;
  }
}

void SoakDriver::RunAppend(server::NlqClient* client, size_t w, Random* rng) {
  const size_t t = static_cast<size_t>(rng->NextUint64(options_.tables));
  TableState& table = *tables_[t];
  // Appends opt out of cancellation: a pending cancel landing on an
  // INSERT would be indistinguishable from a lost batch.
  workers_[w]->cancellable.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(table.append_mu);
  const uint64_t batch = table.applied_batches;
  const std::string sql = BuildOracle::BatchInsertSql(options_, t, batch);
  StatusOr<engine::ResultSet> result =
      RunStatement(client, w, WorkloadClass::kAppend, sql);
  if (result.ok()) {
    table.applied_batches = batch + 1;
    return;
  }
  if (!client->connected()) {
    // Unknown outcome: the INSERT may or may not have executed before
    // the stream died — and it may STILL be in flight server-side
    // (queued in admission, or executing on the orphaned session).
    // Resync from COUNT(*) under the same mutex, but only after the
    // orphaned session is provably dead, or the count can miss an
    // INSERT that lands afterwards and the driver would re-send the
    // same batch, silently duplicating 64 rows.
    const uint64_t orphan =
        workers_[w]->session_id.load(std::memory_order_acquire);
    RecoverAppendCount(client, w, t, &table, orphan);
  }
  // A definite error reply (rejection, pre-execution cancel) means the
  // batch was not applied; applied_batches stays put. Defensively
  // resync on cancels too — if a cancel ever landed mid-INSERT, the
  // count would be torn and the oracle must know. The reply arrived on
  // a live stream, so the statement is settled: no orphan barrier.
  else if (result.status().code() == StatusCode::kCancelled) {
    RecoverAppendCount(client, w, t, &table, /*orphan_session=*/0);
  }
}

void SoakDriver::RecoverAppendCount(server::NlqClient* client, size_t w,
                                    size_t t, TableState* table,
                                    uint64_t orphan_session) {
  append_recoveries_.fetch_add(1, std::memory_order_relaxed);
  // Death barrier. The abandoned connection's session can still carry
  // the INSERT: queued in admission (up to max_queue_wait_ms) or
  // executing. COUNT(*) on a fresh connection is only authoritative
  // once that session can no longer mutate the table, i.e. once the
  // registry has deregistered it — CancelSession(orphan) returns
  // kNotFound exactly then. The cancel itself accelerates settlement:
  // a still-queued statement fails fast with its token flipped, and
  // the session dies writing any reply to the closed socket. Without
  // this barrier the count races the orphan, the driver re-sends a
  // batch the table already has, and every later build on the table
  // mismatches the oracle (observed in 65 s chaos soaks as persistent
  // duplicate-batch divergence).
  while (orphan_session != 0 && !stop_.load(std::memory_order_acquire)) {
    if (!EnsureConnected(client, w, WorkloadClass::kAppend)) return;
    Status cancel = client->Cancel(orphan_session);
    if (cancel.code() == StatusCode::kNotFound) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const std::string sql =
      "SELECT COUNT(*) FROM " + BuildOracle::TableName(t);
  while (!stop_.load(std::memory_order_acquire)) {
    if (!EnsureConnected(client, w, WorkloadClass::kAppend)) return;
    StatusOr<engine::ResultSet> rs = client->Query(sql);
    if (rs.ok() && rs->num_rows() == 1) {
      const uint64_t count =
          static_cast<uint64_t>(std::llround(rs->At(0, 0).AsDouble()));
      if (count % options_.batch_rows != 0) {
        oracle_mismatches_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_log_mu_);
        if (error_log_.size() < 32) {
          error_log_.push_back(StringPrintf(
              "oracle: torn append on %s — COUNT(*) = %llu is not a "
              "batch boundary",
              BuildOracle::TableName(t).c_str(),
              static_cast<unsigned long long>(count)));
        }
      }
      table->applied_batches = count / options_.batch_rows;
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void SoakDriver::RunCancel(server::NlqClient* client, size_t w, Random* rng) {
  // Aim at a random cancellable worker's session (possibly idle: the
  // pending-cancel path is part of the surface under test).
  uint64_t target = 0;
  for (int probe = 0; probe < 8 && target == 0; ++probe) {
    const size_t v = static_cast<size_t>(rng->NextUint64(options_.clients));
    if (v == w) continue;
    if (!workers_[v]->cancellable.load(std::memory_order_acquire)) continue;
    target = workers_[v]->session_id.load(std::memory_order_acquire);
  }
  if (target == 0) return;

  ClassStats& stats = *stats_[static_cast<size_t>(WorkloadClass::kCancel)];
  if (!EnsureConnected(client, w, WorkloadClass::kCancel)) return;
  stats.attempts.fetch_add(1, std::memory_order_relaxed);
  const auto start = Clock::now();
  Status s = client->Cancel(target);
  const uint64_t nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
  if (s.ok() || s.code() == StatusCode::kNotFound) {
    // kNotFound = the victim reconnected meanwhile; the round trip
    // itself is the measured operation.
    stats.completed.fetch_add(1, std::memory_order_relaxed);
    stats.latency.Observe(nanos);
    const int64_t slo =
        options_.classes[static_cast<size_t>(WorkloadClass::kCancel)].slo_ms;
    if (nanos <= static_cast<uint64_t>(slo) * 1'000'000ull) {
      stats.within_slo.fetch_add(1, std::memory_order_relaxed);
    }
    if (!s.ok() && client->last_error_retryable()) {
      flag_violations_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  if (!client->connected()) {
    stats.transport_errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  stats.other_errors.fetch_add(1, std::memory_order_relaxed);
  internal_errors_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(error_log_mu_);
  if (error_log_.size() < 32) {
    error_log_.push_back("unexpected CANCEL reply: " + s.ToString());
  }
}

void SoakDriver::WorkerMain(size_t w) {
  Random rng(options_.rng_seed * 1'000'003 + w * 7919 + 17);
  server::NlqClient client;
  if (!EnsureConnected(&client, w, WorkloadClass::kBuild)) return;

  double total_weight = 0;
  for (size_t c = 0; c < kNumClasses; ++c) {
    total_weight += options_.classes[c].weight;
  }

  while (!stop_.load(std::memory_order_acquire)) {
    double pick = rng.NextDouble() * total_weight;
    size_t ci = 0;
    for (; ci + 1 < kNumClasses; ++ci) {
      pick -= options_.classes[ci].weight;
      if (pick < 0) break;
    }
    const WorkloadClass c = static_cast<WorkloadClass>(ci);
    workers_[w]->cancellable.store(c != WorkloadClass::kAppend,
                                   std::memory_order_release);
    switch (c) {
      case WorkloadClass::kBuild:
        RunBuild(&client, w, &rng, /*grouped=*/false);
        break;
      case WorkloadClass::kGroupedBuild:
        RunBuild(&client, w, &rng, /*grouped=*/true);
        break;
      case WorkloadClass::kIterative:
        RunIterative(&client, w, &rng);
        break;
      case WorkloadClass::kScoring:
        RunScoring(&client, w, &rng);
        break;
      case WorkloadClass::kAppend:
        RunAppend(&client, w, &rng);
        break;
      case WorkloadClass::kCancel:
        RunCancel(&client, w, &rng);
        break;
    }
  }
  workers_[w]->cancellable.store(false, std::memory_order_release);
  workers_[w]->session_id.store(0, std::memory_order_release);
  if (client.connected()) client.Goodbye();
}

void SoakDriver::ChaosMain() {
  if (!options_.chaos || !failpoint::BuiltWithFailpoints()) return;
  const std::string export_path =
      StringPrintf("/tmp/nlq_soak_odbc_%d.csv", static_cast<int>(::getpid()));
  size_t phase = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    chaos_phases_.fetch_add(1, std::memory_order_relaxed);
    switch (phase % 5) {
      case 0:
        // Maintained-view refresh faults: statements must degrade to
        // a rescan with correct (oracle-checked) results, no errors.
        failpoint::Activate(
            "view_maintenance",
            Status::IOError("injected chaos fault: view_maintenance"),
            /*skip=*/0, /*fire_count=*/8);
        break;
      case 1:
        // Spilled-page decode faults: statements on TS fail cleanly
        // with the injected error; the engine stays usable.
        failpoint::Activate(
            "page_decompress",
            Status::IOError("injected chaos fault: page_decompress"),
            /*skip=*/0, /*fire_count=*/8);
        break;
      case 2:
        failpoint::Activate(
            "server_read",
            Status::IOError("injected chaos fault: server_read"),
            /*skip=*/0, /*fire_count=*/4);
        break;
      case 3:
        failpoint::Activate(
            "server_write",
            Status::IOError("injected chaos fault: server_write"),
            /*skip=*/0, /*fire_count=*/4);
        break;
      case 4: {
        // ODBC retry drill: two transient link drops; the default
        // policy (3 attempts) must ride them out mid-soak.
        failpoint::Activate("odbc_export",
                            Status::IOError("injected chaos fault: odbc"),
                            /*skip=*/0, /*fire_count=*/2);
        auto table = db_->catalog().GetTable(kExportTableName);
        if (table.ok()) {
          connect::OdbcExporter exporter;
          auto result = exporter.ExportTable(**table, export_path);
          if (result.ok() && result->attempts == 3) {
            odbc_retry_exercises_.fetch_add(1, std::memory_order_relaxed);
          } else if (!result.ok()) {
            internal_errors_.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(error_log_mu_);
            if (error_log_.size() < 32) {
              error_log_.push_back("odbc retry drill failed: " +
                                   result.status().ToString());
            }
          }
          std::remove(export_path.c_str());
        }
        failpoint::Deactivate("odbc_export");
        break;
      }
    }
    const auto until =
        Clock::now() + std::chrono::milliseconds(options_.chaos_phase_ms);
    while (!stop_.load(std::memory_order_acquire) && Clock::now() < until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    failpoint::Deactivate("view_maintenance");
    failpoint::Deactivate("page_decompress");
    failpoint::Deactivate("server_read");
    failpoint::Deactivate("server_write");
    ++phase;
  }
  failpoint::DeactivateAll();
}

Status SoakDriver::Run() {
  NLQ_RETURN_IF_ERROR(Setup());
  report_.chaos_enabled = options_.chaos && failpoint::BuiltWithFailpoints();

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(options_.clients + 1);
  for (size_t w = 0; w < options_.clients; ++w) {
    threads.emplace_back([this, w] { WorkerMain(w); });
  }
  std::thread chaos([this] { ChaosMain(); });

  const auto deadline =
      start + std::chrono::milliseconds(options_.duration_ms);
  while (Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  chaos.join();
  const double elapsed_sec =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Server-side queue-wait percentiles over the structured metrics
  // reply (the satellite API this harness depends on).
  {
    server::NlqClient client;
    if (client.Connect("127.0.0.1", server_->port()).ok()) {
      auto summary = client.MetricsHistogram("server.queue_wait");
      if (summary.ok()) {
        report_.queue_wait_count = summary->count;
        report_.queue_wait_p95_ms = NanosToMs(summary->p95_nanos);
      }
      client.Goodbye();
    }
  }

  FinalizeReport(elapsed_sec);
  Teardown();
  return Status::OK();
}

void SoakDriver::FinalizeReport(double elapsed_sec) {
  report_.elapsed_sec = elapsed_sec;
  report_.oracle_checks = oracle_checks_.load();
  report_.oracle_mismatches = oracle_mismatches_.load();
  report_.retryable_flag_violations = flag_violations_.load();
  report_.internal_errors = internal_errors_.load();
  report_.reconnects = reconnects_.load();
  report_.append_recoveries = append_recoveries_.load();
  report_.chaos_phases = chaos_phases_.load();
  report_.odbc_retry_exercises = odbc_retry_exercises_.load();

  uint64_t total_completed = 0, total_within_slo = 0;
  for (size_t c = 0; c < kNumClasses; ++c) {
    const ClassStats& s = *stats_[c];
    ClassReport r;
    r.name = ClassName(static_cast<WorkloadClass>(c));
    r.slo_ms = options_.classes[c].slo_ms;
    r.attempts = s.attempts.load();
    r.completed = s.completed.load();
    r.within_slo = s.within_slo.load();
    r.rejected = s.rejected.load();
    r.cancelled = s.cancelled.load();
    r.chaos_faults = s.chaos_faults.load();
    r.transport_errors = s.transport_errors.load();
    r.other_errors = s.other_errors.load();
    r.p50_ms = NanosToMs(s.latency.Percentile(0.50));
    r.p95_ms = NanosToMs(s.latency.Percentile(0.95));
    r.p99_ms = NanosToMs(s.latency.Percentile(0.99));
    total_completed += r.completed;
    total_within_slo += r.within_slo;
    report_.classes.push_back(std::move(r));
  }
  report_.total_completed = total_completed;
  if (elapsed_sec > 0) {
    report_.stmts_per_sec = static_cast<double>(total_completed) / elapsed_sec;
    report_.stmts_per_sec_at_slo =
        static_cast<double>(total_within_slo) / elapsed_sec;
  }
}

}  // namespace nlq::soak
