// Paper Table 4: time to score X at d = 32, k = 16 for
// n = 100k..800k — SQL arithmetic expressions vs scalar UDFs, for
// linear regression, PCA and clustering.
//
// Expected shape (paper): UDF ≈ SQL for linear regression and PCA;
// clustering is the clear UDF win because pure SQL needs TWO scans
// (materialize k distances, then CASE-argmin) while the UDF does one.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "stats/linreg.h"
#include "stats/pca.h"

namespace {

using namespace nlq;
constexpr size_t kD = 32;
constexpr size_t kK = 16;
constexpr uint64_t kPaperN[] = {100, 200, 400, 800};

struct Setup {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<stats::WarehouseMiner> miner;
  stats::LinearRegressionModel reg;
  stats::PcaModel pca;
  stats::KMeansModel km;
};

Setup MakeSetup(uint64_t rows) {
  Setup s;
  s.db = bench::MakeBenchDatabase();
  bench::LoadMixture(s.db.get(), "X", rows, kD, /*with_y=*/true);
  s.miner = std::make_unique<stats::WarehouseMiner>(s.db.get());
  auto reg = s.miner->BuildLinearRegression("X", stats::DimensionColumns(kD),
                                            "Y", stats::ComputeVia::kUdfList);
  auto pca = s.miner->BuildPca("X", kD, kK, stats::ComputeVia::kUdfList);
  stats::KMeansOptions km_options;
  km_options.k = kK;
  km_options.max_iterations = 2;
  auto km = s.miner->BuildKMeansInDbms("X", kD, km_options);
  if (!reg.ok() || !pca.ok() || !km.ok()) std::abort();
  s.reg = std::move(reg).value();
  s.pca = std::move(pca).value();
  s.km = std::move(km).value();
  return s;
}

void BM_LinReg(benchmark::State& state) {
  Setup s = MakeSetup(bench::ScaledRows(kPaperN[state.range(0)]));
  const bool use_udf = state.range(1) != 0;
  for (auto _ : state) {
    bench::Require(
        s.miner->ScoreLinearRegression("X", s.reg, "OUT", use_udf), state);
  }
}

void BM_Pca(benchmark::State& state) {
  Setup s = MakeSetup(bench::ScaledRows(kPaperN[state.range(0)]));
  const bool use_udf = state.range(1) != 0;
  for (auto _ : state) {
    bench::Require(s.miner->ScorePca("X", s.pca, "OUT", use_udf), state);
  }
}

void BM_Clustering(benchmark::State& state) {
  Setup s = MakeSetup(bench::ScaledRows(kPaperN[state.range(0)]));
  const bool use_udf = state.range(1) != 0;
  for (auto _ : state) {
    bench::Require(s.miner->ScoreKMeans("X", s.km, "OUT", use_udf), state);
  }
}

template <typename Fn>
void RegisterGrid(const char* technique, Fn fn) {
  for (size_t ni = 0; ni < 4; ++ni) {
    for (int udf = 0; udf <= 1; ++udf) {
      const std::string label = std::string("Table4/") + technique +
                                (udf ? "/UDF" : "/SQL") +
                                "/n=" + nlq::bench::PaperN(kPaperN[ni]);
      nlq::bench::RegisterReal(label.c_str(), fn)
          ->Args({static_cast<int>(ni), udf})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Paper Table 4: scoring time at d=32, k=16 (SQL vs UDF), "
      "n scaled 1/%zu ===\n",
      nlq::bench::ScaleDivisor());
  RegisterGrid("linreg", BM_LinReg);
  RegisterGrid("pca", BM_Pca);
  RegisterGrid("clustering", BM_Clustering);
  return nlq::bench::RunSuite("bench_table4", &argc, argv);
}
