// Paper Table 2: time to compute n, L, Q with the aggregate UDF vs
// SQL vs external C++, and the ODBC time to export X — for
// n ∈ {100k, 200k} and d ∈ {8, 16, 32, 64}.
//
// Expected shape (paper): UDF nearly flat in d (I/O bound); SQL grows
// superlinearly with d (1 + d + d(d+1)/2 interpreted SUM terms); C++
// grows linearly but is single-threaded; the ODBC export column is
// one to two orders of magnitude above everything else.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "connect/extern_analyzer.h"
#include "connect/odbc_sim.h"

namespace {

using namespace nlq;
constexpr uint64_t kPaperN[] = {100, 200};
constexpr size_t kDims[] = {8, 16, 32, 64};

struct Config {
  uint64_t rows;
  size_t d;
};

Config GetConfig(const benchmark::State& state) {
  return {bench::ScaledRows(kPaperN[state.range(0)]),
          kDims[static_cast<size_t>(state.range(1))]};
}

void BM_Sql(benchmark::State& state) {
  const Config cfg = GetConfig(state);
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", cfg.rows, cfg.d);
  stats::WarehouseMiner miner(db.get());
  for (auto _ : state) {
    auto stats = miner.ComputeSufStats("X", stats::DimensionColumns(cfg.d),
                                       stats::MatrixKind::kLowerTriangular,
                                       stats::ComputeVia::kSql);
    bench::Require(stats.status(), state);
    benchmark::DoNotOptimize(stats);
  }
}

void BM_Udf(benchmark::State& state) {
  const Config cfg = GetConfig(state);
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", cfg.rows, cfg.d);
  stats::WarehouseMiner miner(db.get());
  for (auto _ : state) {
    auto stats = miner.ComputeSufStats("X", stats::DimensionColumns(cfg.d),
                                       stats::MatrixKind::kLowerTriangular,
                                       stats::ComputeVia::kUdfList);
    bench::Require(stats.status(), state);
    benchmark::DoNotOptimize(stats);
  }
}

void BM_ExternalCpp(benchmark::State& state) {
  const Config cfg = GetConfig(state);
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", cfg.rows, cfg.d);
  auto table = db->catalog().GetTable("X");
  const std::string path = "/tmp/nlq_bench_table2.csv";
  connect::OdbcExporter exporter;
  auto exported = exporter.ExportTable(**table, path);
  if (!exported.ok()) {
    state.SkipWithError(exported.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    connect::ExternalAnalyzerOptions options;
    options.kind = stats::MatrixKind::kLowerTriangular;
    auto stats = connect::AnalyzeFlatFile(path, cfg.d, options);
    bench::Require(stats.status(), state);
    benchmark::DoNotOptimize(stats);
  }
  std::remove(path.c_str());
  // The paper's ODBC column (scaled data, modeled 100 Mbps link).
  state.counters["odbc_modeled_s"] = exported->modeled_link_seconds;
  state.counters["export_bytes"] = static_cast<double>(exported->bytes);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Paper Table 2: n,L,Q computation time and ODBC export cost, "
      "n scaled 1/%zu ===\n",
      nlq::bench::ScaleDivisor());
  for (size_t ni = 0; ni < 2; ++ni) {
    for (size_t di = 0; di < 4; ++di) {
      const std::string label = "/n=" + nlq::bench::PaperN(kPaperN[ni]) +
                                "/d=" + std::to_string(kDims[di]);
      nlq::bench::RegisterReal(("Table2/Cpp" + label).c_str(),
                                   BM_ExternalCpp)
          ->Args({static_cast<int>(ni), static_cast<int>(di)})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
      nlq::bench::RegisterReal(("Table2/SQL" + label).c_str(), BM_Sql)
          ->Args({static_cast<int>(ni), static_cast<int>(di)})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
      nlq::bench::RegisterReal(("Table2/UDF" + label).c_str(), BM_Udf)
          ->Args({static_cast<int>(ni), static_cast<int>(di)})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  return nlq::bench::RunSuite("bench_table2", &argc, argv);
}
