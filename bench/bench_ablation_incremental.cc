// Ablation (DESIGN.md #13): what does incremental n,L,Q view
// maintenance buy for streaming model refresh? Each benchmark loads
// the paper's mixture table at n=1M (scaled), seeds one model build,
// then repeats: append a burst of k rows, rebuild the model. Two
// variants of the same loop:
//
//   rescan — views disabled: every refresh replans the columnar
//            aggregate pipeline and rescans all n+ik rows;
//   view   — views enabled: every refresh accumulates only the k
//            appended rows into the maintained per-morsel partials
//            and folds them (O(k), bit-identical to the rescan).
//
// The view/rescan real_time ratio at the same (d, k) is the headline
// refresh speedup; the acceptance target is >= 5x at n=1M, k=10K,
// d=32 (NLQ_BENCH_FULL=1). Appends happen outside the timer (
// PauseTiming), so the measured number is refresh latency alone —
// the metric a streaming scorer waits on.
//
// Counters recorded into NLQ_BENCH_JSON next to the timings:
//   burst_rows      — k, the rows appended before each refresh (the
//                     scaled value actually used, not the paper's);
//   table_rows      — table size after the measured loop;
//   view_delta_rows — rows the last refresh accumulated through the
//                     maintained view (burst_rows for the view
//                     variant, 0 for rescan): the O(k) claim;
//   pages_decoded   — pages the last refresh touched: O(k/page) for
//                     the view variant, O(n/page) for rescan;
//   view_hits       — 1 for a served view refresh, 0 for rescan.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/metrics.h"
#include "engine/database.h"
#include "stats/scoring.h"
#include "storage/partitioned_table.h"
#include "storage/value.h"

namespace {

using namespace nlq;
using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// splitmix64 in [-1, 1): deterministic doubles for the appended
/// bursts, the same character as the loaded mixture data.
double MixDouble(uint64_t i) {
  uint64_t z = i + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) / 4503599627370496.0 - 1.0;
}

std::string FullGammaSql(size_t d) {
  std::string sql = "SELECT nlq_list('full'";
  for (size_t a = 1; a <= d; ++a) sql += ", X" + std::to_string(a);
  return sql + ") FROM X";
}

/// Paper-scale burst k, scaled by the same divisor as the table rows
/// (a burst is a fraction of the stream, so it shrinks with n), with
/// a floor so the delta path still has real work at small scale.
uint64_t ScaledBurst(uint64_t paper_k) {
  const uint64_t k = paper_k / bench::ScaleDivisor();
  return k < 64 ? 64 : k;
}

/// Appends `count` rows matching Schema::DataSet(d) via the normal
/// hash-routed insert path, ids continuing from `*next_id`.
void AppendBurst(storage::PartitionedTable* table, size_t d, uint64_t count,
                 uint64_t* next_id, benchmark::State& state) {
  storage::Row row(1 + d);
  for (uint64_t r = 0; r < count; ++r) {
    const uint64_t id = (*next_id)++;
    row[0] = storage::Datum::Int64(static_cast<int64_t>(id));
    for (size_t a = 0; a < d; ++a) {
      row[1 + a] = storage::Datum::Double(MixDouble(id * d + a));
    }
    bench::Require(table->AppendRow(row), state);
  }
}

// ---------------------------------------------------------------------------
// refresh: append k rows, rebuild the full-Gamma model; rescan vs view.
// ---------------------------------------------------------------------------

void BM_Refresh(benchmark::State& state, size_t d, uint64_t paper_k,
                bool views, const std::string& label) {
  const uint64_t rows = bench::ScaledRows(1000);  // paper n = 1M
  const uint64_t burst = ScaledBurst(paper_k);
  engine::DatabaseOptions options;
  options.num_partitions = 8;
  options.num_threads = bench::BenchThreads();
  options.morsel_rows = bench::BenchMorselRows();
  options.enable_view_maintenance = views;
  auto db = std::make_unique<engine::Database>(options);
  bench::Require(stats::RegisterAllStatsUdfs(&db->udfs()), state);
  bench::LoadMixture(db.get(), "X", rows, d);
  const std::string sql = FullGammaSql(d);

  auto table = db->catalog().GetTable("X");
  bench::Require(table.status(), state);
  uint64_t next_id = rows;

  // Seed pass: registers + fills the maintained view (view variant)
  // and warms the decoded-column cache (both variants), so the timed
  // loop measures steady-state refresh, not first-touch costs.
  bench::Require(db->Execute(sql).status(), state);

  const Clock::time_point t0 = Clock::now();
  for (auto _ : state) {
    state.PauseTiming();
    AppendBurst(*table, d, burst, &next_id, state);
    state.ResumeTiming();
    bench::Require(db->Execute(sql).status(), state);
  }
  const double secs = Seconds(t0);
  bench::CaptureQueryBreakdown(db.get(), label);

  state.counters["burst_rows"] = static_cast<double>(burst);
  state.counters["table_rows"] = static_cast<double>((*table)->num_rows());
  if (db->last_query_stats().has_value()) {
    const QueryStatsSnapshot& qs = *db->last_query_stats();
    state.counters["view_delta_rows"] =
        static_cast<double>(qs.view_delta_rows);
    state.counters["pages_decoded"] = static_cast<double>(qs.pages_decoded);
    state.counters["view_hits"] = static_cast<double>(qs.view_hits);
  }
  if (secs > 0) {
    state.counters["refreshes_per_s"] = state.iterations() / secs;
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Fixed iteration counts bound how far the appended bursts grow the
  // table (<= 10 * k extra rows), keeping the rescan baseline honest
  // and the view variant from ballooning the table at full scale.
  struct Point {
    size_t d;
    uint64_t paper_k;
  };
  const Point kGrid[] = {{8, 1000}, {8, 10000}, {32, 1000}, {32, 10000}};
  for (const Point& pt : kGrid) {
    for (const bool views : {false, true}) {
      const std::string variant = views ? "view" : "rescan";
      const std::string name =
          "Incremental/refresh/d=" + std::to_string(pt.d) + "/n=" +
          bench::PaperN(1000) + "/k=" + std::to_string(pt.paper_k) + "/" +
          variant;
      const std::string label = "refresh_d" + std::to_string(pt.d) + "_k" +
                                std::to_string(pt.paper_k) + "_" + variant;
      const size_t d = pt.d;
      const uint64_t paper_k = pt.paper_k;
      bench::RegisterReal(name,
                          [d, paper_k, views, label](benchmark::State& s) {
                            BM_Refresh(s, d, paper_k, views, label);
                          })
          ->Iterations(10)
          ->Unit(benchmark::kMillisecond);
    }
  }
  return bench::RunSuite("bench_ablation_incremental", &argc, argv);
}
