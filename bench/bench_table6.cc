// Paper Table 6: time growth for high-dimensional data sets
// (d = 64..1024) where L and Q are computed by partitioned nlq_block
// UDF calls over MAX_d-sized submatrices, all in one scan.
//
// Expected shape (paper): total time proportional to the number of
// UDF calls — 1, 4(paper counts full-matrix blocks; we compute the
// lower-triangular block set and mirror, so calls grow as
// b(b+1)/2 with b = d/64), 16, 64, 256.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "stats/nlq_udaf.h"
#include "stats/sqlgen.h"

namespace {

using namespace nlq;
constexpr size_t kDims[] = {64, 128, 256, 512, 1024};
constexpr uint64_t kPaperN = 100;  // the paper fixes n = 100k

void BM_Blocks(benchmark::State& state) {
  const size_t d = kDims[state.range(0)];
  // Scale rows down further for the widest tables: work per row grows
  // quadratically with d, exactly what the bench demonstrates.
  const uint64_t rows = bench::ScaledRows(kPaperN) / (d >= 512 ? 4 : 1);
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, d);
  stats::WarehouseMiner miner(db.get());
  for (auto _ : state) {
    auto stats = miner.ComputeSufStats("X", stats::DimensionColumns(d),
                                       stats::MatrixKind::kFull,
                                       stats::ComputeVia::kBlocks);
    bench::Require(stats.status(), state);
    benchmark::DoNotOptimize(stats);
  }
  const size_t blocks_per_side = (d + stats::kMaxUdfDims - 1) / stats::kMaxUdfDims;
  state.counters["udf_calls"] =
      static_cast<double>(blocks_per_side * (blocks_per_side + 1) / 2);
  state.counters["rows"] = static_cast<double>(rows);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Paper Table 6: high-d (64..1024) via partitioned nlq_block "
      "calls in one scan, n scaled 1/%zu ===\n",
      nlq::bench::ScaleDivisor());
  for (size_t di = 0; di < 5; ++di) {
    const std::string label = "Table6/blocks/d=" + std::to_string(kDims[di]);
    nlq::bench::RegisterReal(label.c_str(), BM_Blocks)
        ->Arg(static_cast<int>(di))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  return nlq::bench::RunSuite("bench_table6", &argc, argv);
}
