#include "bench/bench_common.h"

#include <cstdlib>

#include "stats/scoring.h"

namespace nlq::bench {

size_t ScaleDivisor() {
  if (const char* full = std::getenv("NLQ_BENCH_FULL");
      full != nullptr && full[0] == '1') {
    return 1;
  }
  if (const char* scale = std::getenv("NLQ_BENCH_SCALE")) {
    const long value = std::strtol(scale, nullptr, 10);
    if (value >= 1) return static_cast<size_t>(value);
  }
  return 50;
}

uint64_t ScaledRows(uint64_t paper_thousands) {
  const uint64_t rows = paper_thousands * 1000 / ScaleDivisor();
  return rows < 500 ? 500 : rows;
}

std::string PaperN(uint64_t paper_thousands) {
  return std::to_string(paper_thousands) + "k";
}

std::unique_ptr<engine::Database> MakeBenchDatabase() {
  engine::DatabaseOptions options;
  options.num_partitions = 8;
  auto db = std::make_unique<engine::Database>(options);
  const Status s = stats::RegisterAllStatsUdfs(&db->udfs());
  if (!s.ok()) std::abort();
  return db;
}

void LoadMixture(engine::Database* db, const std::string& name, uint64_t rows,
                 size_t d, bool with_y, uint64_t seed) {
  gen::MixtureOptions options;
  options.n = rows;
  options.d = d;
  options.with_y = with_y;
  options.seed = seed;
  const auto result = gen::GenerateDataSetTable(db, name, options);
  if (!result.ok()) std::abort();
}

void Require(const Status& status, benchmark::State& state) {
  if (!status.ok()) state.SkipWithError(status.ToString().c_str());
}

}  // namespace nlq::bench
