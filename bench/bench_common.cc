#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "stats/scoring.h"

namespace nlq::bench {

size_t ScaleDivisor() {
  if (const char* full = std::getenv("NLQ_BENCH_FULL");
      full != nullptr && full[0] == '1') {
    return 1;
  }
  if (const char* scale = std::getenv("NLQ_BENCH_SCALE")) {
    const long value = std::strtol(scale, nullptr, 10);
    if (value >= 1) return static_cast<size_t>(value);
  }
  return 50;
}

uint64_t ScaledRows(uint64_t paper_thousands) {
  const uint64_t rows = paper_thousands * 1000 / ScaleDivisor();
  return rows < 500 ? 500 : rows;
}

std::string PaperN(uint64_t paper_thousands) {
  return std::to_string(paper_thousands) + "k";
}

size_t BenchThreads() {
  if (const char* threads = std::getenv("NLQ_BENCH_THREADS")) {
    const long value = std::strtol(threads, nullptr, 10);
    if (value >= 1) return static_cast<size_t>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

uint64_t BenchMorselRows() {
  if (const char* morsel = std::getenv("NLQ_BENCH_MORSEL")) {
    const long long value = std::strtoll(morsel, nullptr, 10);
    if (value >= 0) return static_cast<uint64_t>(value);
  }
  return engine::DatabaseOptions().morsel_rows;
}

std::unique_ptr<engine::Database> MakeBenchDatabase(size_t num_threads,
                                                    uint64_t morsel_rows,
                                                    size_t num_partitions) {
  engine::DatabaseOptions options;
  options.num_partitions = num_partitions;
  options.num_threads = num_threads;
  options.morsel_rows = morsel_rows;
  auto db = std::make_unique<engine::Database>(options);
  const Status s = stats::RegisterAllStatsUdfs(&db->udfs());
  if (!s.ok()) std::abort();
  return db;
}

std::unique_ptr<engine::Database> MakeBenchDatabase() {
  return MakeBenchDatabase(BenchThreads(), BenchMorselRows());
}

void LoadMixture(engine::Database* db, const std::string& name, uint64_t rows,
                 size_t d, bool with_y, uint64_t seed) {
  gen::MixtureOptions options;
  options.n = rows;
  options.d = d;
  options.with_y = with_y;
  options.seed = seed;
  const auto result = gen::GenerateDataSetTable(db, name, options);
  if (!result.ok()) std::abort();
}

void Require(const Status& status, benchmark::State& state) {
  if (!status.ok()) state.SkipWithError(status.ToString().c_str());
}

namespace {

/// Labeled per-query stats captured by CaptureQueryBreakdown, emitted
/// into the suite JSON as "query_breakdowns".
struct LabeledBreakdown {
  std::string label;
  QueryStatsSnapshot stats;
};

std::vector<LabeledBreakdown>& Breakdowns() {
  static std::vector<LabeledBreakdown>* breakdowns =
      new std::vector<LabeledBreakdown>();
  return *breakdowns;
}

/// One measured run, flattened for JSON emission.
struct CapturedRun {
  std::string name;
  std::string time_unit;
  int64_t iterations = 0;
  double real_time = 0.0;
  double cpu_time = 0.0;
  bool skipped = false;
  /// User counters set via state.counters (insertion order lost — the
  /// map is sorted by name). Suites use these for derived metrics the
  /// timer cannot carry: compression ratios, effective scan GB/s, pool
  /// hit rates. Counters must be plain values (no rate/iteration
  /// flags); suites compute the final number themselves.
  std::vector<std::pair<std::string, double>> counters;
};

/// Console reporter that also captures every run so RunSuite can emit
/// the NLQ_BENCH_JSON file after the suite finishes.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      CapturedRun captured;
      captured.name = run.benchmark_name();
      captured.time_unit = benchmark::GetTimeUnitString(run.time_unit);
      captured.iterations = run.iterations;
      captured.real_time = run.GetAdjustedRealTime();
      captured.cpu_time = run.GetAdjustedCPUTime();
      captured.skipped = run.error_occurred;
      for (const auto& [counter_name, counter] : run.counters) {
        captured.counters.emplace_back(counter_name,
                                       static_cast<double>(counter.value));
      }
      runs_.push_back(std::move(captured));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<CapturedRun>& runs() const { return runs_; }

 private:
  std::vector<CapturedRun> runs_;
};

/// Resolves NLQ_BENCH_JSON to the output file for `suite`: a value
/// ending in ".json" is used verbatim, anything else is treated as a
/// directory (created if missing) receiving "<suite>.json".
std::string ResolveJsonPath(const std::string& env_value,
                            const std::string& suite) {
  if (env_value.size() > 5 &&
      env_value.compare(env_value.size() - 5, 5, ".json") == 0) {
    return env_value;
  }
  std::error_code ec;
  std::filesystem::create_directories(env_value, ec);
  return (std::filesystem::path(env_value) / (suite + ".json")).string();
}

void WriteJson(const std::string& path, const std::string& suite,
               const std::vector<CapturedRun>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "NLQ_BENCH_JSON: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"suite\": \"%s\",\n  \"scale_divisor\": %zu,\n",
               suite.c_str(), ScaleDivisor());
  std::fprintf(f, "  \"num_threads\": %zu,\n  \"morsel_rows\": %llu,\n",
               BenchThreads(),
               static_cast<unsigned long long>(BenchMorselRows()));
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const CapturedRun& r = runs[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"iterations\": %lld, "
                 "\"real_time\": %.6f, \"cpu_time\": %.6f, "
                 "\"time_unit\": \"%s\", \"skipped\": %s",
                 r.name.c_str(), static_cast<long long>(r.iterations),
                 r.real_time, r.cpu_time, r.time_unit.c_str(),
                 r.skipped ? "true" : "false");
    for (const auto& [counter_name, value] : r.counters) {
      std::fprintf(f, ", \"%s\": %.6f", counter_name.c_str(), value);
    }
    std::fprintf(f, "}%s\n", i + 1 < runs.size() ? "," : "");
  }
  if (Breakdowns().empty()) {
    std::fprintf(f, "  ]\n}\n");
  } else {
    std::fprintf(f, "  ],\n  \"query_breakdowns\": [\n");
    const std::vector<LabeledBreakdown>& breakdowns = Breakdowns();
    for (size_t i = 0; i < breakdowns.size(); ++i) {
      std::fprintf(f, "    {\"label\": \"%s\", \"stats\": %s}%s\n",
                   breakdowns[i].label.c_str(),
                   breakdowns[i].stats.ToJson().c_str(),
                   i + 1 < breakdowns.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
  }
  std::fclose(f);
}

/// Writes the process-wide metrics registry snapshot beside the suite
/// JSON so CI can archive outcome counters and the latency histogram.
void WriteMetricsSnapshot(const std::string& suite_json_path) {
  const std::string path =
      (std::filesystem::path(suite_json_path).parent_path() /
       "metrics_snapshot.json")
          .string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "NLQ_BENCH_JSON: cannot open %s\n", path.c_str());
    return;
  }
  const std::string json = MetricsRegistry::Global().GetSnapshot().ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("NLQ_BENCH_JSON: wrote %s\n", path.c_str());
}

}  // namespace

void CaptureQueryBreakdown(engine::Database* db, const std::string& label) {
  if (!db->last_query_stats().has_value()) return;
  // Re-captures under the same label overwrite: benchmarks run their
  // query many times, only the final iteration's stats matter.
  for (LabeledBreakdown& b : Breakdowns()) {
    if (b.label == label) {
      b.stats = *db->last_query_stats();
      return;
    }
  }
  Breakdowns().push_back(LabeledBreakdown{label, *db->last_query_stats()});
}

int RunSuite(const char* suite, int* argc, char** argv) {
  benchmark::Initialize(argc, argv);
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (const char* json = std::getenv("NLQ_BENCH_JSON");
      json != nullptr && json[0] != '\0') {
    const std::string path = ResolveJsonPath(json, suite);
    WriteJson(path, suite, reporter.runs());
    std::printf("NLQ_BENCH_JSON: wrote %s\n", path.c_str());
    WriteMetricsSnapshot(path);
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace nlq::bench
