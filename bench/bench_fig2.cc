// Paper Figure 2: SQL vs aggregate UDF computing the triangular
// n, L, Q as d grows, for fixed n ∈ {100k, 200k, 800k, 1600k}.
//
// Expected shape (paper): UDF time grows almost linearly in d (I/O
// dominated); SQL grows quadratically (interpreted term count is
// 1 + d + d(d+1)/2), so the curves cross around d = 32.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace nlq;
constexpr uint64_t kPaperN[] = {100, 200, 800, 1600};
constexpr size_t kDims[] = {8, 16, 32, 48, 64};

void RunOne(benchmark::State& state, stats::ComputeVia via) {
  const uint64_t rows = bench::ScaledRows(kPaperN[state.range(0)]);
  const size_t d = kDims[state.range(1)];
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, d);
  stats::WarehouseMiner miner(db.get());
  for (auto _ : state) {
    auto stats = miner.ComputeSufStats("X", stats::DimensionColumns(d),
                                       stats::MatrixKind::kLowerTriangular,
                                       via);
    bench::Require(stats.status(), state);
    benchmark::DoNotOptimize(stats);
  }
}

void BM_Sql(benchmark::State& state) { RunOne(state, stats::ComputeVia::kSql); }
void BM_Udf(benchmark::State& state) {
  RunOne(state, stats::ComputeVia::kUdfList);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Paper Figure 2: SQL vs UDF (triangular), time vs d for each n, "
      "n scaled 1/%zu ===\n",
      nlq::bench::ScaleDivisor());
  for (size_t ni = 0; ni < 4; ++ni) {
    for (size_t di = 0; di < 5; ++di) {
      const std::string suffix = "/n=" + nlq::bench::PaperN(kPaperN[ni]) +
                                 "/d=" + std::to_string(kDims[di]);
      nlq::bench::RegisterReal(("Fig2/SQL" + suffix).c_str(), BM_Sql)
          ->Args({static_cast<int>(ni), static_cast<int>(di)})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
      nlq::bench::RegisterReal(("Fig2/UDF" + suffix).c_str(), BM_Udf)
          ->Args({static_cast<int>(ni), static_cast<int>(di)})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  return nlq::bench::RunSuite("bench_fig2", &argc, argv);
}
