// Ablation (DESIGN.md #12): what does the compressed larger-than-RAM
// storage stack cost, and what does the SIMD span kernel buy back?
// Three axes, each isolated:
//
//   kernel_spans — NlqAccumulateSpans alone on resident d=32 spans,
//            scalar (blocked/tiled) vs simd (AVX2), bit-identical by
//            construction; the simd/scalar real_time ratio is the
//            headline kernel speedup;
//   gamma_query — the full nlq_list('full', X1..X32) query on a
//            resident cached table under each kernel mode: how much
//            of the kernel win survives planning, morsel dispatch and
//            merge;
//   scan — the same d=8 full-Gamma scan at three storage altitudes:
//            resident (uncompressed in-memory pages), spilled with a
//            pool large enough to hold the whole compressed image
//            (compressed-resident: decompress on every hit, no I/O
//            after warmup), and spilled through a minimum-size pool
//            (the larger-than-RAM case: eviction + readahead + chunk
//            decode every scan).
//
// Counters recorded into NLQ_BENCH_JSON next to the timings:
//   scan_gb_per_s     — logical bytes (rows * d * 8) per second of
//                       real time: the effective scan bandwidth, so
//                       storage variants compare on delivered data,
//                       not on bytes that hit the disk;
//   compression_ratio — raw/compressed over the table's spill
//                       segments (spill variants only);
//   pool_hit_rate     — (hits + readahead hits) / lookups across the
//                       measured loop (spill variants only);
//   pool_peak_bytes / pool_budget_bytes — the pool MemoryTracker's
//                       high-water mark against its frame budget:
//                       peak ≤ budget is the flat-RSS claim.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "engine/database.h"
#include "stats/nlq_kernel.h"
#include "stats/scoring.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/partitioned_table.h"

namespace {

using namespace nlq;
using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// splitmix64 in [-1, 1): deterministic, incompressible doubles, the
/// same character as the mixture generator's gaussians.
double MixDouble(uint64_t i) {
  uint64_t z = i + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) / 4503599627370496.0 - 1.0;
}

std::string FullGammaSql(size_t d) {
  std::string sql = "SELECT nlq_list('full'";
  for (size_t a = 1; a <= d; ++a) sql += ", X" + std::to_string(a);
  return sql + ") FROM X";
}

// ---------------------------------------------------------------------------
// kernel_spans: the fused n,L,Q kernel alone, scalar vs AVX2.
// ---------------------------------------------------------------------------

void BM_KernelSpans(benchmark::State& state, stats::NlqKernelMode mode) {
  constexpr size_t kD = 32;
  constexpr size_t kRows = 16384;
  std::vector<std::vector<double>> cols(kD, std::vector<double>(kRows));
  for (size_t a = 0; a < kD; ++a) {
    for (size_t r = 0; r < kRows; ++r) cols[a][r] = MixDouble(a * kRows + r);
  }
  std::vector<const double*> spans(kD);
  for (size_t a = 0; a < kD; ++a) spans[a] = cols[a].data();

  stats::SetNlqKernelMode(mode);
  state.SetLabel(stats::NlqKernelVariant());
  const Clock::time_point t0 = Clock::now();
  for (auto _ : state) {
    stats::NlqState s;
    stats::ResetNlqState(&s);
    bench::Require(stats::SetNlqShape(&s, kD, stats::MatrixKind::kFull),
                   state);
    stats::NlqAccumulateSpans(&s, spans.data(), kRows);
    benchmark::DoNotOptimize(s);
  }
  const double secs = Seconds(t0);
  stats::SetNlqKernelMode(stats::NlqKernelMode::kAuto);
  if (secs > 0) {
    const double bytes =
        static_cast<double>(kRows) * kD * 8 * state.iterations();
    state.counters["scan_gb_per_s"] = bytes / secs / 1e9;
  }
}

// ---------------------------------------------------------------------------
// gamma_query: the same contrast through the whole engine.
// ---------------------------------------------------------------------------

void BM_GammaQuery(benchmark::State& state, stats::NlqKernelMode mode,
                   const std::string& label) {
  constexpr size_t kD = 32;
  const uint64_t rows = bench::ScaledRows(1600);
  auto db = bench::MakeBenchDatabase();
  bench::LoadMixture(db.get(), "X", rows, kD);
  const std::string sql = FullGammaSql(kD);

  stats::SetNlqKernelMode(mode);
  // Warm the decoded-column cache so the timed loop isolates the
  // kernel + pipeline, not first-touch page decode.
  bench::Require(db->Execute(sql).status(), state);
  const Clock::time_point t0 = Clock::now();
  for (auto _ : state) {
    bench::Require(db->Execute(sql).status(), state);
  }
  const double secs = Seconds(t0);
  bench::CaptureQueryBreakdown(db.get(), label);
  stats::SetNlqKernelMode(stats::NlqKernelMode::kAuto);
  if (secs > 0) {
    const double bytes =
        static_cast<double>(rows) * kD * 8 * state.iterations();
    state.counters["scan_gb_per_s"] = bytes / secs / 1e9;
  }
}

// ---------------------------------------------------------------------------
// scan: resident vs compressed-resident vs larger-than-RAM.
// ---------------------------------------------------------------------------

void BM_ScanStorage(benchmark::State& state, bool spilled,
                    uint64_t pool_bytes, const std::string& label) {
  constexpr size_t kD = 8;
  const uint64_t rows = bench::ScaledRows(10000);
  engine::DatabaseOptions options;
  options.num_partitions = 8;
  options.num_threads = bench::BenchThreads();
  options.morsel_rows = bench::BenchMorselRows();
  options.buffer_pool_bytes = pool_bytes;
  auto db = std::make_unique<engine::Database>(options);
  bench::Require(stats::RegisterAllStatsUdfs(&db->udfs()), state);
  bench::LoadMixture(db.get(), "X", rows, kD);
  if (spilled) bench::Require(db->SpillTable("X"), state);
  const std::string sql = FullGammaSql(kD);

  bench::Require(db->Execute(sql).status(), state);  // warm pool/cache
  storage::BufferPoolStats before;
  if (db->buffer_pool() != nullptr) before = db->buffer_pool()->GetStats();
  const Clock::time_point t0 = Clock::now();
  for (auto _ : state) {
    bench::Require(db->Execute(sql).status(), state);
  }
  const double secs = Seconds(t0);
  bench::CaptureQueryBreakdown(db.get(), label);

  if (secs > 0) {
    const double bytes =
        static_cast<double>(rows) * kD * 8 * state.iterations();
    state.counters["scan_gb_per_s"] = bytes / secs / 1e9;
  }
  if (!spilled) return;
  auto table = db->catalog().GetTable("X");
  if (table.ok()) {
    uint64_t raw = 0, compressed = 0;
    for (size_t p = 0; p < (*table)->num_partitions(); ++p) {
      const storage::Table& part = (*table)->partition(p);
      if (!part.is_spilled()) continue;
      raw += part.spill()->raw_bytes();
      compressed += part.spill()->compressed_bytes();
    }
    if (compressed > 0) {
      state.counters["compression_ratio"] =
          static_cast<double>(raw) / static_cast<double>(compressed);
    }
  }
  if (db->buffer_pool() != nullptr) {
    const storage::BufferPoolStats after = db->buffer_pool()->GetStats();
    const double hits = static_cast<double>(
        (after.hits - before.hits) +
        (after.readahead_hits - before.readahead_hits));
    const double lookups =
        hits + static_cast<double>(after.misses - before.misses);
    if (lookups > 0) state.counters["pool_hit_rate"] = hits / lookups;
    // Peak ≤ budget is the flat-RSS claim in machine-checkable form
    // (bench-smoke gates on it): frame memory never outgrew the pool.
    state.counters["pool_peak_bytes"] =
        static_cast<double>(db->buffer_pool()->tracker().peak());
    state.counters["pool_budget_bytes"] =
        static_cast<double>(db->buffer_pool()->budget_bytes());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using stats::NlqKernelMode;
  bench::RegisterReal("Storage/kernel_spans/d=32/scalar",
                      [](benchmark::State& s) {
                        BM_KernelSpans(s, NlqKernelMode::kScalar);
                      })
      ->Unit(benchmark::kMicrosecond);
  bench::RegisterReal("Storage/kernel_spans/d=32/simd",
                      [](benchmark::State& s) {
                        BM_KernelSpans(s, NlqKernelMode::kSimd);
                      })
      ->Unit(benchmark::kMicrosecond);
  bench::RegisterReal("Storage/gamma_query/d=32/scalar",
                      [](benchmark::State& s) {
                        BM_GammaQuery(s, NlqKernelMode::kScalar,
                                      "gamma_query_scalar");
                      })
      ->Unit(benchmark::kMillisecond);
  bench::RegisterReal("Storage/gamma_query/d=32/simd",
                      [](benchmark::State& s) {
                        BM_GammaQuery(s, NlqKernelMode::kSimd,
                                      "gamma_query_simd");
                      })
      ->Unit(benchmark::kMillisecond);
  bench::RegisterReal("Storage/scan/resident",
                      [](benchmark::State& s) {
                        BM_ScanStorage(s, /*spilled=*/false, 64ull << 20,
                                       "scan_resident");
                      })
      ->Unit(benchmark::kMillisecond);
  bench::RegisterReal("Storage/scan/spill_pool=64MiB",
                      [](benchmark::State& s) {
                        BM_ScanStorage(s, /*spilled=*/true, 64ull << 20,
                                       "scan_spill_pool_64mib");
                      })
      ->Unit(benchmark::kMillisecond);
  bench::RegisterReal(
      "Storage/scan/spill_pool=min",
      [](benchmark::State& s) {
        BM_ScanStorage(
            s, /*spilled=*/true,
            storage::kPageSize * storage::BufferPool::kMinFrames,
            "scan_spill_pool_min");
      })
      ->Unit(benchmark::kMillisecond);
  return bench::RunSuite("bench_ablation_storage", &argc, argv);
}
