// Quickstart: the full in-DBMS analytics flow of the paper in ~100
// lines — generate a data set, compute the (n, L, Q) summary matrices
// in one table scan with the aggregate UDF, build all four statistical
// models from the summary matrices alone, and score the data set back
// inside the engine with the scalar UDFs.
//
//   ./quickstart [n] [d]

#include <cstdio>
#include <cstdlib>

#include "nlq.h"

namespace {

int Run(uint64_t n, size_t d) {
  using namespace nlq;

  // 1. Spin up the embedded engine (8 AMP-style partitions) and
  //    install the statistical UDFs.
  engine::Database db;
  if (Status s = stats::RegisterAllStatsUdfs(&db.udfs()); !s.ok()) {
    std::fprintf(stderr, "UDF registration failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  // 2. Generate the paper's synthetic mixture data set with a linear
  //    regression target Y.
  gen::MixtureOptions data;
  data.n = n;
  data.d = d;
  data.with_y = true;
  data.seed = 7;
  if (auto rows = gen::GenerateDataSetTable(&db, "X", data); !rows.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 rows.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded X(i, X1..X%zu, Y) with %llu rows\n", d,
              static_cast<unsigned long long>(n));

  stats::WarehouseMiner miner(&db);

  // 3. ONE table scan computes n, L, Q; every linear model below is
  //    built from these summary matrices without rereading X.
  Stopwatch watch;
  auto summary = miner.ComputeSufStats("X", stats::DimensionColumns(d),
                                       stats::MatrixKind::kLowerTriangular,
                                       stats::ComputeVia::kUdfList);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::printf("Aggregate UDF computed n, L, Q in %.1f ms (n=%.0f)\n",
              watch.ElapsedMillis(), summary->n());

  // 4a. Correlation analysis.
  auto rho = summary->CorrelationMatrix();
  if (rho.ok()) {
    std::printf("Correlation rho(1,2) = %.4f\n", (*rho)(0, 1));
  }

  // 4b. PCA: how many components cover 90%% of the variance?
  for (size_t k = 1; k <= d; ++k) {
    auto pca = stats::FitPca(*summary, k);
    if (pca.ok() && pca->ExplainedVarianceRatio() >= 0.9) {
      std::printf("PCA: %zu of %zu components explain %.1f%% of variance\n",
                  k, d, 100.0 * pca->ExplainedVarianceRatio());
      break;
    }
  }

  // 4c. Linear regression of Y on X1..Xd (needs stats over (x, y)).
  auto x_cols = stats::DimensionColumns(d);
  auto reg = miner.BuildLinearRegression("X", x_cols, "Y",
                                         stats::ComputeVia::kUdfList);
  if (!reg.ok()) {
    std::fprintf(stderr, "%s\n", reg.status().ToString().c_str());
    return 1;
  }
  std::printf("Linear regression: R^2 = %.4f, beta0 = %.3f\n", reg->r2,
              reg->beta[0]);

  // 4d. K-means with the in-DBMS iteration loop (one GROUP BY scan
  //     per iteration).
  stats::KMeansOptions km;
  km.k = 8;
  km.max_iterations = 5;
  auto clusters = miner.BuildKMeansInDbms("X", d, km);
  if (!clusters.ok()) {
    std::fprintf(stderr, "%s\n", clusters.status().ToString().c_str());
    return 1;
  }
  std::printf("K-means: %zu clusters, largest weight %.3f\n", km.k, [&] {
    double max_w = 0;
    for (double w : clusters->weights) max_w = std::max(max_w, w);
    return max_w;
  }());

  // 5. Score the data set inside the engine with scalar UDFs: one
  //    scan each, results land in regular tables.
  if (Status s = miner.ScoreLinearRegression("X", *reg, "X_YHAT", true);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = miner.ScoreKMeans("X", *clusters, "X_CLUSTER", true);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // 6. The scored tables are plain SQL citizens.
  auto preview = db.Execute(
      "SELECT j, count(*) AS points FROM X_CLUSTER GROUP BY j ORDER BY 1");
  if (preview.ok()) {
    std::printf("\nCluster assignment counts:\n%s",
                preview->ToString(10).c_str());
  }
  auto yhat = db.Execute(
      "SELECT min(yhat), avg(yhat), max(yhat) FROM X_YHAT");
  if (yhat.ok()) {
    std::printf("\nPredicted Y range:\n%s", yhat->ToString(3).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const size_t d = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  return Run(n, d);
}
