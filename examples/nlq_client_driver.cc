// Multi-threaded load driver for nlq_server: N worker threads each
// open a connection and fire statements back-to-back for a fixed
// duration (or statement count), then the driver prints a JSON
// summary. CI's server-smoke job asserts on these fields:
//
//   {"completed": .., "rejected": .., "internal_errors": ..,
//    "io_errors": .., "statements_per_sec": ..,
//    "queue_wait_p95_ms": .., "queue_wait_count": ..}
//
// "rejected" counts retryable admission rejections (the expected
// overload behavior); "internal_errors" counts everything else — a
// healthy overloaded server keeps it at 0.
//
// Usage:
//   nlq_client_driver --port N [--host A] [--threads N]
//                     [--statements N] [--duration-ms N] [--sql S]
//                     [--retry-rejected 0|1]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"

namespace {

int64_t ArgInt(int argc, char** argv, const char* flag, int64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

std::string ArgStr(int argc, char** argv, const char* flag,
                   const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

struct WorkerTotals {
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> internal_errors{0};
  std::atomic<uint64_t> io_errors{0};
};

}  // namespace

int main(int argc, char** argv) {
  const std::string host = ArgStr(argc, argv, "--host", "127.0.0.1");
  const uint16_t port =
      static_cast<uint16_t>(ArgInt(argc, argv, "--port", 7687));
  const size_t threads =
      static_cast<size_t>(ArgInt(argc, argv, "--threads", 8));
  const int64_t per_thread_statements =
      ArgInt(argc, argv, "--statements", 50);
  const int64_t duration_ms = ArgInt(argc, argv, "--duration-ms", 0);
  const bool retry_rejected = ArgInt(argc, argv, "--retry-rejected", 0) != 0;
  const std::string sql = ArgStr(
      argc, argv, "--sql",
      "SELECT COUNT(*), SUM(X1), SUM(X1*X1) FROM X");

  WorkerTotals totals;
  const auto start = std::chrono::steady_clock::now();
  const auto stop_at = start + std::chrono::milliseconds(duration_ms);

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      nlq::server::NlqClient client;
      if (!client.Connect(host, port).ok()) {
        totals.io_errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      int64_t sent = 0;
      while (duration_ms > 0
                 ? std::chrono::steady_clock::now() < stop_at
                 : sent < per_thread_statements) {
        ++sent;
        nlq::StatusOr<nlq::engine::ResultSet> result = client.Query(sql);
        if (result.ok()) {
          totals.completed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (client.last_error_retryable()) {
          totals.rejected.fetch_add(1, std::memory_order_relaxed);
          if (retry_rejected) {
            // Spread retries out instead of hammering in lockstep.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1 + (t % 7)));
            --sent;
          }
          continue;
        }
        if (!client.connected()) {
          // Stream died (server gone / write timeout): count and stop.
          totals.io_errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        totals.internal_errors.fetch_add(1, std::memory_order_relaxed);
      }
      client.Goodbye();
    });
  }
  for (std::thread& w : workers) w.join();
  const double elapsed_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Queue-wait p95 from the server's own histogram, summarized
  // server-side (METRICS_HISTOGRAM) — no JSON text parsing here.
  double queue_wait_p95_ms = -1.0;
  uint64_t queue_wait_count = 0;
  {
    nlq::server::NlqClient client;
    if (client.Connect(host, port).ok()) {
      nlq::StatusOr<nlq::server::HistogramSummary> summary =
          client.MetricsHistogram("server.queue_wait");
      if (summary.ok()) {
        queue_wait_count = summary->count;
        if (summary->count > 0) {
          queue_wait_p95_ms = summary->p95_nanos == UINT64_MAX
                                  ? 1e9
                                  : static_cast<double>(summary->p95_nanos) /
                                        1e6;
        }
      }
      client.Goodbye();
    }
  }

  const uint64_t completed = totals.completed.load();
  std::printf(
      "{\"completed\": %llu, \"rejected\": %llu, \"internal_errors\": %llu, "
      "\"io_errors\": %llu, \"statements_per_sec\": %.1f, "
      "\"queue_wait_p95_ms\": %.3f, \"queue_wait_count\": %llu}\n",
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(totals.rejected.load()),
      static_cast<unsigned long long>(totals.internal_errors.load()),
      static_cast<unsigned long long>(totals.io_errors.load()),
      elapsed_sec > 0 ? static_cast<double>(completed) / elapsed_sec : 0.0,
      queue_wait_p95_ms,
      static_cast<unsigned long long>(queue_wait_count));
  return totals.internal_errors.load() == 0 ? 0 : 1;
}
