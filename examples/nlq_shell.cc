// Minimal interactive SQL shell over the nlq engine. All statistical
// UDFs are pre-registered, so the paper's statements work directly:
//
//   $ ./nlq_shell
//   nlq> CREATE TABLE X (i BIGINT, X1 DOUBLE, X2 DOUBLE);
//   nlq> INSERT INTO X VALUES (1, 2, 3), (2, 4, 5);
//   nlq> SELECT nlq_list('triang', X1, X2) FROM X;
//   nlq> EXPLAIN SELECT sum(X1 * X2) FROM X GROUP BY i % 2;
//   nlq> \gen X 10000 8       -- synthetic mixture table helper
//   nlq> \save /tmp/snapshot  -- persist / \load to restore
//
// Also works non-interactively: echo "SELECT 1+1;" | ./nlq_shell

#include <cstdio>
#include <cstdlib>
#include <string>

#include "nlq.h"

namespace {

using namespace nlq;

void PrintHelp() {
  std::printf(
      "statements: SELECT / CREATE TABLE [AS] / INSERT / DROP TABLE;\n"
      "            EXPLAIN SELECT ... prints the plan;\n"
      "            EXPLAIN ANALYZE SELECT ... runs it and adds actuals\n"
      "commands:   \\gen NAME N D   generate a mixture data set\n"
      "            \\tables         list tables\n"
      "            \\save DIR       snapshot the catalog\n"
      "            \\load DIR       restore a snapshot\n"
      "            \\help           this text\n"
      "            \\quit           exit\n");
}

bool HandleCommand(engine::Database& db, const std::string& line) {
  if (line == "\\help") {
    PrintHelp();
    return true;
  }
  if (line == "\\tables") {
    for (const auto& name : db.catalog().TableNames()) {
      auto table = db.catalog().GetTable(name);
      if (table.ok()) {
        std::printf("%s (%llu rows): %s\n", name.c_str(),
                    static_cast<unsigned long long>((*table)->num_rows()),
                    (*table)->schema().ToString().c_str());
      }
    }
    return true;
  }
  if (line.rfind("\\gen ", 0) == 0) {
    std::string name;
    unsigned long long n = 0;
    unsigned long d = 0;
    char buf[128];
    if (std::sscanf(line.c_str(), "\\gen %127s %llu %lu", buf, &n, &d) == 3) {
      name = buf;
      gen::MixtureOptions options;
      options.n = n;
      options.d = d;
      options.with_y = true;
      auto rows = gen::GenerateDataSetTable(&db, name, options);
      if (rows.ok()) {
        std::printf("generated %s with %llu rows x %lu dims (+Y)\n",
                    name.c_str(), n, d);
      } else {
        std::printf("error: %s\n", rows.status().ToString().c_str());
      }
    } else {
      std::printf("usage: \\gen NAME N D\n");
    }
    return true;
  }
  if (line.rfind("\\save ", 0) == 0) {
    const Status s = engine::SaveDatabase(db, line.substr(6));
    std::printf("%s\n", s.ok() ? "saved" : s.ToString().c_str());
    return true;
  }
  if (line.rfind("\\load ", 0) == 0) {
    const Status s = engine::LoadDatabase(&db, line.substr(6));
    std::printf("%s\n", s.ok() ? "loaded" : s.ToString().c_str());
    return true;
  }
  return false;
}

}  // namespace

int main() {
  engine::DatabaseOptions options;
  // NLQ_SHELL_VIEWS=1 turns on maintained n,L,Q views (DESIGN.md §13)
  // so the incremental-refresh path can be driven interactively;
  // EXPLAIN then shows the view=fresh|stale|ineligible decision.
  const char* views_env = std::getenv("NLQ_SHELL_VIEWS");
  options.enable_view_maintenance =
      views_env != nullptr && views_env[0] == '1';
  engine::Database db(options);
  if (Status s = stats::RegisterAllStatsUdfs(&db.udfs()); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("nlq shell — \\help for commands, \\quit to exit\n");

  std::string line;
  char buffer[1 << 16];
  for (;;) {
    std::printf("nlq> ");
    std::fflush(stdout);
    if (std::fgets(buffer, sizeof(buffer), stdin) == nullptr) break;
    line = buffer;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r' ||
                             line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line[0] == '\\') {
      if (!HandleCommand(db, line)) std::printf("unknown command\n");
      continue;
    }

    // EXPLAIN [ANALYZE]: the engine handles both statement forms and
    // returns a one-column "plan" result — print it bare, one rendered
    // line per row, without the usual header/row-count decoration.
    if (line.size() > 8 && EqualsIgnoreCase(line.substr(0, 8), "EXPLAIN ")) {
      auto plan = db.Execute(line);
      if (plan.ok()) {
        for (const auto& row : plan->rows()) {
          std::printf("%s\n", row[0].string_value().c_str());
        }
      } else {
        std::printf("error: %s\n", plan.status().ToString().c_str());
      }
      continue;
    }

    Stopwatch watch;
    auto result = db.Execute(line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (result->num_columns() > 0) {
      std::printf("%s", result->ToString(40).c_str());
    }
    std::printf("(%zu rows, %.1f ms)\n", result->num_rows(),
                watch.ElapsedMillis());
  }
  return 0;
}
