// High-dimensional sensor compression — exercises the paper's
// Table 6 scheme: when d exceeds the UDF's MAX_d (64), the (n, L, Q)
// computation is partitioned into nlq_block calls over submatrix
// ranges, all evaluated in ONE synchronized table scan. The assembled
// full Q then drives PCA, and the d-dimensional readings are reduced
// to k principal components with the fascore scalar UDF.
//
//   ./sensor_pca [n] [d] [k]

#include <cstdio>
#include <cstdlib>

#include "nlq.h"

namespace {

using nlq::Status;

#define CHECK_OK(expr)                                             \
  do {                                                             \
    const Status _s = (expr);                                      \
    if (!_s.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _s.ToString().c_str()); \
      return 1;                                                    \
    }                                                              \
  } while (0)

int Run(uint64_t n, size_t d, size_t k) {
  using namespace nlq;
  engine::Database db;
  CHECK_OK(stats::RegisterAllStatsUdfs(&db.udfs()));

  // Sensor array: d channels driven by a handful of latent physical
  // processes (temperature fronts, vibration modes) plus noise — so a
  // low-dimensional representation exists for PCA to find.
  const size_t latent = 4;
  {
    Random rng(77);
    linalg::Matrix mixing(d, latent);
    for (size_t a = 0; a < d; ++a) {
      for (size_t f = 0; f < latent; ++f) {
        mixing(a, f) = rng.NextUniform(-1, 1);
      }
    }
    auto table = db.catalog().CreateTable("READINGS",
                                          storage::Schema::DataSet(d));
    if (!table.ok()) return 1;
    storage::Row row(1 + d);
    for (uint64_t i = 1; i <= n; ++i) {
      double factors[8];
      for (size_t f = 0; f < latent; ++f) factors[f] = rng.NextGaussian(0, 10);
      row[0] = storage::Datum::Int64(static_cast<int64_t>(i));
      for (size_t a = 0; a < d; ++a) {
        double v = 50.0;
        for (size_t f = 0; f < latent; ++f) v += mixing(a, f) * factors[f];
        row[1 + a] = storage::Datum::Double(v + rng.NextGaussian(0, 0.5));
      }
      CHECK_OK((*table)->AppendRow(row));
    }
  }
  std::printf("Loaded READINGS with %llu rows x %zu channels\n",
              static_cast<unsigned long long>(n), d);

  // One scan, ceil(d/64) diagonal + lower off-diagonal block calls.
  stats::WarehouseMiner miner(&db);
  Stopwatch watch;
  auto summary =
      miner.ComputeSufStats("READINGS", stats::DimensionColumns(d),
                            stats::MatrixKind::kFull,
                            stats::ComputeVia::kBlocks);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  const size_t blocks_per_side = (d + stats::kMaxUdfDims - 1) / stats::kMaxUdfDims;
  const size_t calls = blocks_per_side * (blocks_per_side + 1) / 2;
  std::printf(
      "Assembled full %zux%zu Q from %zu nlq_block calls in %.1f ms\n", d, d,
      calls, watch.ElapsedMillis());

  // Client-side model math: eigendecomposition of the covariance.
  watch.Restart();
  auto pca = stats::FitPca(*summary, k, stats::PcaInput::kCovariance);
  if (!pca.ok()) {
    std::fprintf(stderr, "%s\n", pca.status().ToString().c_str());
    return 1;
  }
  std::printf("PCA (%zu -> %zu) in %.1f ms; explained variance %.1f%%\n", d,
              k, watch.ElapsedMillis(),
              100.0 * pca->ExplainedVarianceRatio());

  // Score: reduce every reading to k coordinates in one scan.
  watch.Restart();
  CHECK_OK(miner.ScorePca("READINGS", *pca, "REDUCED", /*use_udf=*/true));
  std::printf("Reduced data set written to REDUCED in %.1f ms\n",
              watch.ElapsedMillis());

  auto preview = db.Execute("SELECT * FROM REDUCED ORDER BY i LIMIT 3");
  if (preview.ok()) {
    std::printf("\nFirst reduced rows:\n%s", preview->ToString(3).c_str());
  }

  // Compression summary.
  auto readings = db.catalog().GetTable("READINGS");
  auto reduced = db.catalog().GetTable("REDUCED");
  if (readings.ok() && reduced.ok()) {
    std::printf("\nStored bytes: %llu -> %llu (%.1fx smaller)\n",
                static_cast<unsigned long long>((*readings)->data_bytes()),
                static_cast<unsigned long long>((*reduced)->data_bytes()),
                static_cast<double>((*readings)->data_bytes()) /
                    static_cast<double>((*reduced)->data_bytes()));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
  const size_t d = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 96;
  const size_t k = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 4;
  return Run(n, d, k);
}
