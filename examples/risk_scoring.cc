// Risk scoring — the train/test workflow of Section 3.5 plus the
// paper's in-vs-out-of-DBMS comparison. A linear model predicting a
// risk score is trained inside the engine from one aggregate-UDF
// scan, a held-out data set is scored in one scan (UDF and SQL paths
// cross-checked), and the same summary computation is repeated the
// "export everything over ODBC to a workstation" way to show why the
// paper advises against it.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "nlq.h"

namespace {

using nlq::Status;

#define CHECK_OK(expr)                                             \
  do {                                                             \
    const Status _s = (expr);                                      \
    if (!_s.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _s.ToString().c_str()); \
      return 1;                                                    \
    }                                                              \
  } while (0)

int Run(uint64_t n, size_t d) {
  using namespace nlq;
  engine::Database db;
  CHECK_OK(stats::RegisterAllStatsUdfs(&db.udfs()));

  // Train and held-out sets from the same population.
  gen::MixtureOptions data;
  data.n = n;
  data.d = d;
  data.with_y = true;  // Y = the historical risk outcome
  data.seed = 11;
  if (!gen::GenerateDataSetTable(&db, "TRAIN", data).ok()) return 1;
  data.n = n / 4;
  data.structure_seed = data.seed;  // same population & true model...
  data.seed = 12;                   // ...different point stream
  if (!gen::GenerateDataSetTable(&db, "HOLDOUT", data).ok()) return 1;

  stats::WarehouseMiner miner(&db);

  // --- Train: one scan for n, L, Q over (x, y), solve client-side --
  Stopwatch watch;
  auto model = miner.BuildLinearRegression(
      "TRAIN", stats::DimensionColumns(d), "Y", stats::ComputeVia::kUdfList);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("Trained on %llu rows in %.1f ms: R^2 = %.4f\n",
              static_cast<unsigned long long>(n), watch.ElapsedMillis(),
              model->r2);
  std::printf("Coefficient std errors (first 3): %.4f %.4f %.4f\n",
              std::sqrt(model->var_beta(0, 0)),
              std::sqrt(model->var_beta(1, 1)),
              std::sqrt(model->var_beta(2, 2)));

  // --- Score the held-out set: compiled UDF vs interpreted SQL -----
  watch.Restart();
  CHECK_OK(miner.ScoreLinearRegression("HOLDOUT", *model, "SCORES_UDF",
                                       /*use_udf=*/true));
  const double udf_ms = watch.ElapsedMillis();
  watch.Restart();
  CHECK_OK(miner.ScoreLinearRegression("HOLDOUT", *model, "SCORES_SQL",
                                       /*use_udf=*/false));
  const double sql_ms = watch.ElapsedMillis();
  std::printf("Scored %llu held-out rows: UDF %.1f ms, SQL %.1f ms\n",
              static_cast<unsigned long long>(data.n), udf_ms, sql_ms);

  // Out-of-sample quality, computed in SQL over the scored table.
  // Evaluate on a sample (the engine's cross-join-plus-predicate
  // equi-join is quadratic, so cap the joined ids).
  CHECK_OK(db.ExecuteCommand(
      "CREATE TABLE EVAL AS SELECT HOLDOUT.i AS i, Y, yhat "
      "FROM HOLDOUT, SCORES_UDF WHERE HOLDOUT.i = SCORES_UDF.i "
      "AND SCORES_UDF.i <= 2000"));
  auto sse = db.QueryDouble("SELECT sum((Y - yhat) * (Y - yhat)) FROM EVAL");
  auto sst = db.QueryDouble(
      "SELECT sum(Y * Y) - sum(Y) * sum(Y) / count(*) FROM EVAL");
  if (sse.ok() && sst.ok() && *sst > 0) {
    std::printf("Held-out R^2 = %.4f\n", 1.0 - *sse / *sst);
  }

  // --- The alternative the paper warns about -----------------------
  // Export TRAIN over (simulated 100 Mbps) ODBC and analyze it with
  // the single-threaded workstation program.
  const std::string csv = "/tmp/nlq_risk_train_export.csv";
  connect::OdbcExporter exporter;
  auto table = db.catalog().GetTable("TRAIN");
  if (!table.ok()) return 1;
  watch.Restart();
  auto exported = exporter.ExportTable(**table, csv);
  if (!exported.ok()) {
    std::fprintf(stderr, "%s\n", exported.status().ToString().c_str());
    return 1;
  }
  watch.Restart();
  auto external = connect::AnalyzeFlatFile(csv, d);
  const double analyze_ms = watch.ElapsedMillis();
  if (!external.ok()) {
    std::fprintf(stderr, "%s\n", external.status().ToString().c_str());
    return 1;
  }
  std::remove(csv.c_str());
  std::printf(
      "\nExternal C++ alternative: %.2f MB of text, modeled ODBC transfer "
      "%.1f s, file analysis %.1f ms\n",
      static_cast<double>(exported->bytes) / 1e6,
      exported->modeled_link_seconds, analyze_ms);
  std::printf(
      "=> the export alone costs orders of magnitude more than the "
      "in-DBMS UDF scan — the paper's Table 2 conclusion.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const size_t d = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  return Run(n, d);
}
