// The nlq_server binary: serves one embedded Database over the wire
// protocol (src/server) until SIGTERM/SIGINT, then drains gracefully
// and exits 0.
//
// Usage:
//   nlq_server [--port N] [--host A] [--max-concurrent N]
//              [--max-queue N] [--queue-wait-ms N] [--global-memory-mb N]
//              [--max-sessions N] [--seed-rows N] [--seed-dims N]
//
// The server seeds a demo table X(i, X1..Xd, Y) so clients have
// something to query; --seed-rows 0 starts with an empty catalog.

#include <errno.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "engine/database.h"
#include "gen/datagen.h"
#include "server/server.h"

namespace {

// Self-pipe written by the signal handler; main blocks reading it.
int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int /*sig*/) {
  char byte = 1;
  ssize_t ignored = write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

int64_t ArgInt(int argc, char** argv, const char* flag, int64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

std::string ArgStr(int argc, char** argv, const char* flag,
                   const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  nlq::server::ServerOptions options;
  options.host = ArgStr(argc, argv, "--host", "127.0.0.1");
  options.port = static_cast<uint16_t>(ArgInt(argc, argv, "--port", 7687));
  options.max_sessions =
      static_cast<size_t>(ArgInt(argc, argv, "--max-sessions", 64));
  options.admission.max_concurrent_statements =
      static_cast<size_t>(ArgInt(argc, argv, "--max-concurrent", 4));
  options.admission.max_queue_depth =
      static_cast<size_t>(ArgInt(argc, argv, "--max-queue", 64));
  options.admission.max_queue_wait_ms =
      ArgInt(argc, argv, "--queue-wait-ms", 30'000);
  options.admission.global_memory_limit = static_cast<uint64_t>(
      ArgInt(argc, argv, "--global-memory-mb", 1024) * (1ll << 20));
  options.admission.per_statement_reserve_bytes = static_cast<uint64_t>(
      ArgInt(argc, argv, "--per-statement-reserve-mb", 64) * (1ll << 20));

  nlq::engine::Database db;
  const int64_t seed_rows = ArgInt(argc, argv, "--seed-rows", 20'000);
  const int64_t seed_dims = ArgInt(argc, argv, "--seed-dims", 4);
  if (seed_rows > 0) {
    nlq::gen::MixtureOptions gen;
    gen.n = static_cast<uint64_t>(seed_rows);
    gen.d = static_cast<size_t>(seed_dims);
    gen.with_y = true;
    nlq::StatusOr<uint64_t> seeded =
        nlq::gen::GenerateDataSetTable(&db, "X", gen);
    if (!seeded.ok()) {
      std::fprintf(stderr, "seeding demo table failed: %s\n",
                   seeded.status().ToString().c_str());
      return 1;
    }
  }

  if (pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);  // dead clients must not kill the server

  nlq::server::Server server(&db, options);
  if (nlq::Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("nlq_server listening on %s:%u (max_concurrent=%zu)\n",
              options.host.c_str(), server.port(),
              options.admission.max_concurrent_statements);
  std::fflush(stdout);

  // Wait for SIGTERM/SIGINT.
  char byte;
  while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  std::printf("draining...\n");
  std::fflush(stdout);
  server.Shutdown();
  std::printf("drained, exiting\n");
  return 0;
}
