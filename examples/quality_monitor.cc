// Data-quality monitoring — the follow-through the paper sketches for
// the aggregate UDF's min/max tracking ("can be used to detect
// outliers or build histograms") plus the future-work claim that
// other techniques benefit from the summary-matrix approach
// (demonstrated here with Gaussian Naive Bayes).
//
// Flow: ONE nlq scan profiles the table (Describe); its min/max drive
// an equi-width histogram UDF scan; z-score outliers are counted with
// a scalar UDF; and a labeled quality flag is learned with Naive
// Bayes from ONE grouped scan, then scored back in-engine.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "nlq.h"

namespace {

using nlq::Status;

#define CHECK_OK(expr)                                             \
  do {                                                             \
    const Status _s = (expr);                                      \
    if (!_s.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _s.ToString().c_str()); \
      return 1;                                                    \
    }                                                              \
  } while (0)

int Run(uint64_t n) {
  using namespace nlq;
  engine::Database db;
  CHECK_OK(stats::RegisterAllStatsUdfs(&db.udfs()));

  // Sensor-style readings; ~3% of rows are corrupted (gross errors)
  // and labeled bad (j = 2) — the quality flag Naive Bayes learns.
  CHECK_OK(db.ExecuteCommand(
      "CREATE TABLE READINGS (i BIGINT, j BIGINT, X1 DOUBLE, X2 DOUBLE)"));
  Random rng(99);
  for (uint64_t i = 1; i <= n; ++i) {
    const bool bad = rng.NextDouble() < 0.03;
    const double x1 = bad ? rng.NextUniform(300, 600)
                          : rng.NextGaussian(100, 8);
    const double x2 = bad ? rng.NextUniform(-50, 0)
                          : rng.NextGaussian(40, 3);
    CHECK_OK(db.ExecuteCommand(StringPrintf(
        "INSERT INTO READINGS VALUES (%llu, %d, %.17g, %.17g)",
        static_cast<unsigned long long>(i), bad ? 2 : 1, x1, x2)));
  }

  stats::WarehouseMiner miner(&db);

  // --- 1. Profile in one scan ---------------------------------------
  auto profile = miner.ComputeSufStats("READINGS",
                                       stats::DimensionColumns(2),
                                       stats::MatrixKind::kDiagonal,
                                       stats::ComputeVia::kUdfList);
  if (!profile.ok()) return 1;
  auto table = stats::DescribeTable(*profile, {"temperature", "pressure"});
  if (table.ok()) std::printf("%s\n", table->c_str());

  // --- 2. Histogram over the observed range -------------------------
  auto hist_result =
      db.Execute(stats::HistogramQuery("READINGS", "X1", *profile, 0, 12));
  if (!hist_result.ok()) return 1;
  auto hist = stats::Histogram::FromPackedString(
      hist_result->At(0, 0).string_value());
  if (!hist.ok()) return 1;
  std::printf("temperature histogram [%0.1f, %0.1f), %zu bins:\n", hist->lo,
              hist->hi, hist->bins);
  uint64_t peak = 1;
  for (uint64_t c : hist->counts) peak = std::max(peak, c);
  for (size_t b = 0; b < hist->bins; ++b) {
    const int bar =
        static_cast<int>(50.0 * static_cast<double>(hist->counts[b]) /
                         static_cast<double>(peak));
    std::printf("  %7.1f %s %llu\n", hist->lo + hist->BinWidth() * b,
                std::string(static_cast<size_t>(bar), '#').c_str(),
                static_cast<unsigned long long>(hist->counts[b]));
  }

  // --- 3. Outliers by z-score, counted in-engine --------------------
  const auto summary = stats::Describe(*profile);
  if (!summary.ok()) return 1;
  auto outliers = db.QueryDouble(StringPrintf(
      "SELECT count(*) FROM READINGS WHERE zscore(X1, %.17g, %.17g) > 3",
      (*summary)[0].mean, (*summary)[0].stddev));
  if (outliers.ok()) {
    std::printf("\n3-sigma temperature outliers: %.0f of %llu rows\n",
                *outliers, static_cast<unsigned long long>(n));
  }

  // --- 4. Learn the quality flag: ONE grouped scan ------------------
  auto per_class = miner.ComputeGroupedSufStats(
      "READINGS", stats::DimensionColumns(2), stats::MatrixKind::kDiagonal,
      stats::ComputeVia::kUdfList, "j");
  if (!per_class.ok()) return 1;
  auto nb = stats::FitNaiveBayes(*per_class);
  if (!nb.ok()) return 1;
  std::printf("\nNaive Bayes trained from grouped statistics: priors good=%.3f"
              " bad=%.3f\n", nb->priors[0], nb->priors[1]);

  // Score in-engine and confusion-check against the true flag.
  CHECK_OK(stats::StoreNaiveBayesTable(&db, "NBQ", *nb));
  CHECK_OK(db.ExecuteCommand(
      "CREATE TABLE FLAGGED AS " +
      stats::NaiveBayesScoreUdfQuery("READINGS", "NBQ", 2, nb->k)));
  auto agree = db.QueryDouble(
      "SELECT count(*) FROM READINGS, FLAGGED "
      "WHERE READINGS.i = FLAGGED.i AND READINGS.j = FLAGGED.j "
      "AND READINGS.i <= 1000");
  if (agree.ok()) {
    std::printf("in-engine classification agrees with truth on %.0f of the "
                "first 1000 rows\n", *agree);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;
  return Run(n);
}
