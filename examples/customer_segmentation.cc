// Customer segmentation — the database workload the paper's
// introduction motivates. A normalized schema (customers +
// transactions) is denormalized into the analysis data set X with
// plain SQL (aggregation features and CASE binary flags, exactly the
// Section 3.6 discussion of how X is derived), then segmented with
// the in-DBMS K-means loop, and finally per-segment statistics are
// computed with ONE GROUP BY aggregate-UDF scan.

#include <cstdio>
#include <cstdlib>

#include "nlq.h"

namespace {

using nlq::Status;

#define CHECK_OK(expr)                                            \
  do {                                                            \
    const Status _s = (expr);                                     \
    if (!_s.ok()) {                                               \
      std::fprintf(stderr, "FAILED: %s\n", _s.ToString().c_str()); \
      return 1;                                                   \
    }                                                             \
  } while (0)

int Run(uint64_t customers) {
  using namespace nlq;
  engine::Database db;
  CHECK_OK(stats::RegisterAllStatsUdfs(&db.udfs()));

  // --- 1. Normalized source tables ---------------------------------
  CHECK_OK(db.ExecuteCommand(
      "CREATE TABLE customers (i BIGINT, age DOUBLE, tenure DOUBLE, "
      "state VARCHAR(2))"));
  CHECK_OK(db.ExecuteCommand(
      "CREATE TABLE transactions (i BIGINT, amount DOUBLE, "
      "is_return DOUBLE)"));

  Random rng(2007);
  const char* states[] = {"TX", "CA", "NY"};
  for (uint64_t c = 1; c <= customers; ++c) {
    const double age = 20 + rng.NextDouble() * 60;
    const double tenure = rng.NextDouble() * 120;
    CHECK_OK(db.ExecuteCommand(StringPrintf(
        "INSERT INTO customers VALUES (%llu, %.2f, %.2f, '%s')",
        static_cast<unsigned long long>(c), age, tenure,
        states[rng.NextUint64(3)])));
    const uint64_t purchases = 1 + rng.NextUint64(12);
    for (uint64_t t = 0; t < purchases; ++t) {
      CHECK_OK(db.ExecuteCommand(StringPrintf(
          "INSERT INTO transactions VALUES (%llu, %.2f, %d)",
          static_cast<unsigned long long>(c), 5 + rng.NextDouble() * 200,
          rng.NextDouble() < 0.08 ? 1 : 0)));
    }
  }
  std::printf("Loaded %llu customers and their transactions\n",
              static_cast<unsigned long long>(customers));

  // --- 2. Derive the analysis data set X ---------------------------
  // Metrics via aggregation (group-by before join, Section 3.6
  // optimization 2), flags via CASE.
  CHECK_OK(db.ExecuteCommand(
      "CREATE TABLE tx_features AS SELECT i AS ti, count(*) AS num_tx, "
      "sum(amount) AS spend, sum(amount * is_return) AS returned "
      "FROM transactions GROUP BY i"));
  CHECK_OK(db.ExecuteCommand(
      "CREATE TABLE X AS SELECT customers.i AS i, "
      "age AS X1, tenure AS X2, num_tx AS X3, spend AS X4, "
      "CASE WHEN returned > 0 THEN 1.0 ELSE 0.0 END AS X5, "
      "CASE WHEN state = 'TX' THEN 1.0 ELSE 0.0 END AS X6 "
      "FROM customers, tx_features WHERE customers.i = ti"));
  auto n = db.QueryDouble("SELECT count(*) FROM X");
  if (!n.ok()) {
    std::fprintf(stderr, "%s\n", n.status().ToString().c_str());
    return 1;
  }
  std::printf("Derived X(i, X1..X6) with %.0f rows "
              "(age, tenure, #tx, spend, has_return, is_tx)\n", *n);

  // --- 3. Segment with in-DBMS K-means -----------------------------
  stats::WarehouseMiner miner(&db);
  stats::KMeansOptions km;
  km.k = 4;
  km.max_iterations = 8;
  auto model = miner.BuildKMeansInDbms("X", 6, km);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  CHECK_OK(miner.ScoreKMeans("X", *model, "SEGMENTS", /*use_udf=*/true));

  // --- 4. Per-segment statistics in ONE scan -----------------------
  // Join the assignments back and run the grouped aggregate UDF.
  CHECK_OK(db.ExecuteCommand(
      "CREATE TABLE XS AS SELECT X.i AS i, j, X1, X2, X3, X4, X5, X6 "
      "FROM X, SEGMENTS WHERE X.i = SEGMENTS.i"));
  auto groups = miner.ComputeGroupedSufStats(
      "XS", stats::DimensionColumns(6), stats::MatrixKind::kDiagonal,
      stats::ComputeVia::kUdfList, "j");
  if (!groups.ok()) {
    std::fprintf(stderr, "%s\n", groups.status().ToString().c_str());
    return 1;
  }

  std::printf("\nsegment | customers | avg age | avg tenure | avg spend\n");
  for (const auto& [segment, seg_stats] : *groups) {
    const auto mean = seg_stats.Mean();
    std::printf("%7lld | %9.0f | %7.1f | %10.1f | %9.1f\n",
                static_cast<long long>(segment), seg_stats.n(), mean[0],
                mean[1], mean[3]);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t customers =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 800;
  return Run(customers);
}
