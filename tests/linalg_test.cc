#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/cholesky.h"
#include "linalg/eigen.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "linalg/svd.h"
#include "tests/test_util.h"

namespace nlq::linalg {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Random rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng.NextUniform(-1.0, 1.0);
  }
  return m;
}

Matrix RandomSpd(size_t n, uint64_t seed) {
  // A Aᵀ + n·I is symmetric positive definite.
  const Matrix a = RandomMatrix(n, n, seed);
  Matrix spd = a * a.Transpose();
  for (size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

// ---------------------------------------------------------------------------
// Matrix basics
// ---------------------------------------------------------------------------

TEST(MatrixTest, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, IdentityAndFromRows) {
  const Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 2), 0.0);
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  const Matrix m = RandomMatrix(4, 7, 1);
  EXPECT_DOUBLE_EQ(m.Transpose().Transpose().MaxAbsDiff(m), 0.0);
}

TEST(MatrixTest, RowColumnBlock) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  EXPECT_EQ(m.Row(1), (Vector{4, 5, 6}));
  EXPECT_EQ(m.Column(2), (Vector{3, 6, 9}));
  const Matrix b = m.Block(1, 1, 2, 2);
  EXPECT_DOUBLE_EQ(b(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(b(1, 1), 9.0);
}

TEST(MatrixTest, ArithmeticOperators) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(1, 1), 4.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(MatrixTest, ProductMatchesHandComputation) {
  const Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix b = Matrix::FromRows({{7, 8}, {9, 10}, {11, 12}});
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(MatrixTest, ProductWithIdentity) {
  const Matrix a = RandomMatrix(5, 5, 3);
  EXPECT_LT((a * Matrix::Identity(5)).MaxAbsDiff(a), 1e-15);
}

TEST(MatrixTest, MatVecAndDot) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Vector v = MatVec(a, {1, 1});
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(Norm({3, 4}), 5.0);
}

TEST(MatrixTest, OuterProduct) {
  const Matrix o = Outer({1, 2}, {3, 4, 5});
  EXPECT_EQ(o.rows(), 2u);
  EXPECT_EQ(o.cols(), 3u);
  EXPECT_DOUBLE_EQ(o(1, 2), 10.0);
}

TEST(MatrixTest, SymmetryCheck) {
  Matrix m = RandomSpd(4, 5);
  EXPECT_TRUE(m.IsSymmetric());
  m(0, 1) += 1.0;
  EXPECT_FALSE(m.IsSymmetric());
}

// ---------------------------------------------------------------------------
// LU
// ---------------------------------------------------------------------------

TEST(LuTest, SolvesKnownSystem) {
  const Matrix a = Matrix::FromRows({{2, 1}, {1, 3}});
  NLQ_ASSERT_OK_AND_ASSIGN(LuDecomposition lu, LuDecomposition::Compute(a));
  NLQ_ASSERT_OK_AND_ASSIGN(Vector x, lu.Solve(Vector{3, 5}));
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(LuTest, DeterminantAndInverse) {
  const Matrix a = Matrix::FromRows({{4, 3}, {6, 3}});
  NLQ_ASSERT_OK_AND_ASSIGN(LuDecomposition lu, LuDecomposition::Compute(a));
  EXPECT_NEAR(lu.Determinant(), -6.0, 1e-12);
  NLQ_ASSERT_OK_AND_ASSIGN(Matrix inv, lu.Inverse());
  EXPECT_LT((a * inv).MaxAbsDiff(Matrix::Identity(2)), 1e-12);
}

TEST(LuTest, RejectsSingular) {
  const Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  EXPECT_FALSE(LuDecomposition::Compute(a).ok());
}

TEST(LuTest, RejectsNonSquare) {
  EXPECT_FALSE(LuDecomposition::Compute(Matrix(2, 3)).ok());
}

TEST(LuTest, NeedsPivoting) {
  // Zero on the leading diagonal forces a row swap.
  const Matrix a = Matrix::FromRows({{0, 1}, {1, 0}});
  NLQ_ASSERT_OK_AND_ASSIGN(LuDecomposition lu, LuDecomposition::Compute(a));
  NLQ_ASSERT_OK_AND_ASSIGN(Vector x, lu.Solve(Vector{2, 5}));
  EXPECT_NEAR(x[0], 5.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

class LuPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LuPropertyTest, InverseReconstructsIdentity) {
  const size_t n = GetParam();
  const Matrix a = RandomSpd(n, 100 + n);
  NLQ_ASSERT_OK_AND_ASSIGN(Matrix inv, Invert(a));
  EXPECT_LT((a * inv).MaxAbsDiff(Matrix::Identity(n)), 1e-8);
}

TEST_P(LuPropertyTest, SolveMatchesMultiply) {
  const size_t n = GetParam();
  const Matrix a = RandomSpd(n, 200 + n);
  Random rng(300 + n);
  Vector x_true(n);
  for (auto& v : x_true) v = rng.NextUniform(-5, 5);
  const Vector b = MatVec(a, x_true);
  NLQ_ASSERT_OK_AND_ASSIGN(Vector x, SolveLinearSystem(a, b));
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64));

// ---------------------------------------------------------------------------
// Cholesky
// ---------------------------------------------------------------------------

class CholeskyPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CholeskyPropertyTest, FactorReconstructs) {
  const size_t n = GetParam();
  const Matrix a = RandomSpd(n, 400 + n);
  NLQ_ASSERT_OK_AND_ASSIGN(CholeskyDecomposition chol,
                           CholeskyDecomposition::Compute(a));
  const Matrix l = chol.L();
  EXPECT_LT((l * l.Transpose()).MaxAbsDiff(a), 1e-8);
}

TEST_P(CholeskyPropertyTest, SolveAgreesWithLu) {
  const size_t n = GetParam();
  const Matrix a = RandomSpd(n, 500 + n);
  Random rng(600 + n);
  Vector b(n);
  for (auto& v : b) v = rng.NextUniform(-1, 1);
  NLQ_ASSERT_OK_AND_ASSIGN(CholeskyDecomposition chol,
                           CholeskyDecomposition::Compute(a));
  NLQ_ASSERT_OK_AND_ASSIGN(Vector x1, chol.Solve(b));
  NLQ_ASSERT_OK_AND_ASSIGN(Vector x2, SolveLinearSystem(a, b));
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyPropertyTest,
                         ::testing::Values(1, 2, 4, 9, 17, 32));

TEST(CholeskyTest, RejectsIndefinite) {
  const Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyDecomposition::Compute(a).ok());
}

TEST(CholeskyTest, RejectsAsymmetric) {
  const Matrix a = Matrix::FromRows({{1, 2}, {0, 1}});
  EXPECT_FALSE(CholeskyDecomposition::Compute(a).ok());
}

TEST(CholeskyTest, LogDeterminant) {
  const Matrix a = Matrix::FromRows({{4, 0}, {0, 9}});
  NLQ_ASSERT_OK_AND_ASSIGN(CholeskyDecomposition chol,
                           CholeskyDecomposition::Compute(a));
  EXPECT_NEAR(chol.LogDeterminant(), std::log(36.0), 1e-12);
}

// ---------------------------------------------------------------------------
// Symmetric eigendecomposition
// ---------------------------------------------------------------------------

TEST(EigenTest, DiagonalMatrix) {
  const Matrix a = Matrix::FromRows({{3, 0}, {0, 7}});
  NLQ_ASSERT_OK_AND_ASSIGN(EigenDecomposition eig, SymmetricEigen(a));
  EXPECT_NEAR(eig.eigenvalues[0], 7.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-10);
}

TEST(EigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  const Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  NLQ_ASSERT_OK_AND_ASSIGN(EigenDecomposition eig, SymmetricEigen(a));
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-10);
}

class EigenPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EigenPropertyTest, Reconstructs) {
  const size_t n = GetParam();
  Matrix a = RandomMatrix(n, n, 700 + n);
  a = 0.5 * (a + a.Transpose());  // symmetrize
  NLQ_ASSERT_OK_AND_ASSIGN(EigenDecomposition eig, SymmetricEigen(a));
  // Rebuild V diag(w) Vᵀ.
  Matrix vd = eig.eigenvectors;
  for (size_t c = 0; c < n; ++c) {
    for (size_t r = 0; r < n; ++r) vd(r, c) *= eig.eigenvalues[c];
  }
  EXPECT_LT((vd * eig.eigenvectors.Transpose()).MaxAbsDiff(a), 1e-8);
}

TEST_P(EigenPropertyTest, VectorsOrthonormal) {
  const size_t n = GetParam();
  Matrix a = RandomMatrix(n, n, 800 + n);
  a = 0.5 * (a + a.Transpose());
  NLQ_ASSERT_OK_AND_ASSIGN(EigenDecomposition eig, SymmetricEigen(a));
  const Matrix vtv = eig.eigenvectors.Transpose() * eig.eigenvectors;
  EXPECT_LT(vtv.MaxAbsDiff(Matrix::Identity(n)), 1e-9);
}

TEST_P(EigenPropertyTest, TraceEqualsEigenSum) {
  const size_t n = GetParam();
  Matrix a = RandomMatrix(n, n, 900 + n);
  a = 0.5 * (a + a.Transpose());
  NLQ_ASSERT_OK_AND_ASSIGN(EigenDecomposition eig, SymmetricEigen(a));
  double trace = 0, sum = 0;
  for (size_t i = 0; i < n; ++i) trace += a(i, i);
  for (double ev : eig.eigenvalues) sum += ev;
  EXPECT_NEAR(trace, sum, 1e-8 * (1.0 + std::fabs(trace)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenPropertyTest,
                         ::testing::Values(1, 2, 3, 6, 12, 24, 48));

TEST(EigenTest, RejectsAsymmetric) {
  EXPECT_FALSE(SymmetricEigen(Matrix::FromRows({{1, 2}, {0, 1}})).ok());
}

// ---------------------------------------------------------------------------
// SVD
// ---------------------------------------------------------------------------

class SvdPropertyTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(SvdPropertyTest, Reconstructs) {
  const auto [m, n] = GetParam();
  const Matrix a = RandomMatrix(m, n, 1000 + m * 13 + n);
  NLQ_ASSERT_OK_AND_ASSIGN(SvdDecomposition svd, ComputeSvd(a));
  // U diag(s) Vᵀ.
  Matrix us = svd.u;
  for (size_t c = 0; c < n; ++c) {
    for (size_t r = 0; r < m; ++r) us(r, c) *= svd.singular_values[c];
  }
  EXPECT_LT((us * svd.v.Transpose()).MaxAbsDiff(a), 1e-8);
}

TEST_P(SvdPropertyTest, SingularValuesDescendingNonNegative) {
  const auto [m, n] = GetParam();
  const Matrix a = RandomMatrix(m, n, 2000 + m * 13 + n);
  NLQ_ASSERT_OK_AND_ASSIGN(SvdDecomposition svd, ComputeSvd(a));
  for (size_t i = 0; i < svd.singular_values.size(); ++i) {
    EXPECT_GE(svd.singular_values[i], 0.0);
    if (i > 0) {
      EXPECT_LE(svd.singular_values[i], svd.singular_values[i - 1] + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdPropertyTest,
    ::testing::Values(std::pair<size_t, size_t>{3, 3},
                      std::pair<size_t, size_t>{5, 3},
                      std::pair<size_t, size_t>{8, 8},
                      std::pair<size_t, size_t>{16, 4},
                      std::pair<size_t, size_t>{32, 16}));

TEST(SvdTest, RankDeficientCompletesOrthonormalU) {
  // Rank-1 3x2 matrix.
  const Matrix a = Matrix::FromRows({{1, 2}, {2, 4}, {3, 6}});
  NLQ_ASSERT_OK_AND_ASSIGN(SvdDecomposition svd, ComputeSvd(a));
  EXPECT_GT(svd.singular_values[0], 0.0);
  EXPECT_DOUBLE_EQ(svd.singular_values[1], 0.0);
  const Matrix utu = svd.u.Transpose() * svd.u;
  EXPECT_LT(utu.MaxAbsDiff(Matrix::Identity(2)), 1e-8);
}

TEST(SvdTest, RejectsWideMatrix) {
  EXPECT_FALSE(ComputeSvd(Matrix(2, 5)).ok());
}

}  // namespace
}  // namespace nlq::linalg
