// Tests for Database::Explain — the physical plan-tree printout that
// exposes the engine's §3.6-style pushdown decisions without
// executing the query. Format (documented in DESIGN.md §6): one node
// per line, root first, children indented under "└─ ".

#include <gtest/gtest.h>

#include "engine/database.h"
#include "stats/scoring.h"
#include "stats/sqlgen.h"
#include "tests/test_util.h"

namespace nlq::engine {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Threads pinned: EXPLAIN prints worker counts, and the goldens
    // must not depend on the machine's core count.
    db_ = nlq::testing::MakeTestDatabase(/*num_partitions=*/4,
                                         /*num_threads=*/3);
    NLQ_ASSERT_OK(db_->ExecuteCommand(
        "CREATE TABLE X (i BIGINT, X1 DOUBLE, X2 DOUBLE)"));
    for (int i = 1; i <= 50; ++i) {
      NLQ_ASSERT_OK(db_->ExecuteCommand(
          "INSERT INTO X VALUES (" + std::to_string(i) + ", 1, 2)"));
    }
    NLQ_ASSERT_OK(db_->ExecuteCommand("CREATE TABLE M (j BIGINT, c DOUBLE)"));
    NLQ_ASSERT_OK(
        db_->ExecuteCommand("INSERT INTO M VALUES (1, 10), (2, 20), (3, 30)"));
  }

  std::string Plan(const std::string& sql) {
    auto plan = db_->Explain(sql);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? *plan : "";
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ExplainTest, SimpleScanIsFullTree) {
  // A bare column projection compiles and runs the columnar pipeline
  // (the scan skips the decoded-column cache: Gather drains streams in
  // parallel, so there is no single-threaded warm point).
  const std::string plan = Plan("SELECT X1 FROM X");
  EXPECT_EQ(plan,
            "Gather (4 stream(s), 4 worker(s))\n"
            "└─ VectorProject (1 column(s); compiled, 1 op(s))\n"
            "   └─ ColumnarScan (X: 50 rows, 4 partitions, 1 of 3 "
            "column(s), batch 1024, morsel 16384 (4 morsel(s)), cache off)\n");
}

TEST_F(ExplainTest, ForceInterpretedPlansTheRowPath) {
  QueryOptions interpreted;
  interpreted.force_interpreted = true;
  auto plan = db_->Explain("SELECT X1 FROM X", interpreted);
  NLQ_ASSERT_OK(plan.status());
  EXPECT_EQ(*plan,
            "Gather (4 stream(s), 4 worker(s))\n"
            "└─ Project (1 column(s))\n"
            "   └─ ParallelScan (X: 50 rows, 4 partitions, batch 1024, "
            "morsel 16384 (4 morsel(s)))\n");
}

TEST_F(ExplainTest, ShowsPushdownDecision) {
  const std::string plan = Plan(
      "SELECT X1, m1.c FROM X, M m1, M m2 "
      "WHERE m1.j = 1 AND m2.j = 2 AND X1 > 0");
  // Pushed predicates shrink the materialized sides to one row each.
  EXPECT_NE(plan.find("CrossJoin (M AS m1: materialized, 1 rows after "
                      "pushdown: (m1.j = 1))"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("CrossJoin (M AS m2: materialized, 1 rows after "
                      "pushdown: (m2.j = 2))"),
            std::string::npos);
  // The driver-only conjunct stays in the residual filter; the join
  // keeps the query on the row path, but the predicate still gets a
  // compiled program.
  EXPECT_NE(plan.find("Filter ((X1 > 0); compiled, "), std::string::npos)
      << plan;
}

TEST_F(ExplainTest, AggregatePlanCountsUdfCalls) {
  const std::string plan = Plan(
      "SELECT i % 2, nlq_list('diag', X1, X2), sum(X1) FROM X GROUP BY i % 2");
  EXPECT_NE(plan.find("HashAggregate (1 group key(s), 2 aggregate(s), "
                      "1 aggregate UDF call(s)"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("merge: 4 partial state(s) per group, 4 worker(s)"),
            std::string::npos);
  // The aggregate is a pipeline breaker: no separate Gather above it.
  EXPECT_EQ(plan.find("Gather"), std::string::npos);
}

TEST_F(ExplainTest, HavingAndSortAndLimitShown) {
  const std::string plan = Plan(
      "SELECT i % 2, count(*) FROM X GROUP BY i % 2 "
      "HAVING count(*) > 1 ORDER BY 1 DESC LIMIT 5");
  EXPECT_NE(plan.find("having: (count(*) > 1)"), std::string::npos) << plan;
  // The LIMIT hint turns the sort into a bounded partial sort.
  EXPECT_NE(plan.find("Sort (1 key(s), partial top 5)"), std::string::npos);
  EXPECT_NE(plan.find("Limit (5 rows)"), std::string::npos);
  // Root-first ordering: Limit above Sort above HashAggregate.
  EXPECT_LT(plan.find("Limit"), plan.find("Sort"));
  EXPECT_LT(plan.find("Sort"), plan.find("HashAggregate"));
}

TEST_F(ExplainTest, ConstantInput) {
  const std::string plan = Plan("SELECT 1 + 1");
  EXPECT_NE(plan.find("ConstantInput (no FROM)"), std::string::npos) << plan;
}

TEST_F(ExplainTest, ExplainDoesNotExecute) {
  // Explaining a query with a failing UDF argument must succeed —
  // nothing is evaluated.
  const std::string plan =
      Plan("SELECT sqrt(X1) FROM X WHERE X1 / 0 > 1");
  EXPECT_FALSE(plan.empty());
}

TEST_F(ExplainTest, RejectsNonSelect) {
  EXPECT_FALSE(db_->Explain("DROP TABLE X").ok());
  EXPECT_FALSE(db_->Explain("not sql at all").ok());
  EXPECT_FALSE(db_->Explain("SELECT z FROM missing").ok());
}

TEST_F(ExplainTest, NlqScoringPlanIsCompact) {
  // The paper's k-way aliased cross join stays k rows per side after
  // pushdown, never k^k.
  NLQ_ASSERT_OK(db_->ExecuteCommand(
      "CREATE TABLE C (j BIGINT, X1 DOUBLE, X2 DOUBLE)"));
  for (int j = 1; j <= 3; ++j) {
    NLQ_ASSERT_OK(db_->ExecuteCommand(
        "INSERT INTO C VALUES (" + std::to_string(j) + ", 0, 0)"));
  }
  const std::string sql = stats::KMeansScoreUdfQuery("X", "C", 2, 3);
  const std::string plan = Plan(sql);
  // Each aliased copy is pre-filtered to exactly one centroid row.
  for (int j = 1; j <= 3; ++j) {
    EXPECT_NE(plan.find("AS C" + std::to_string(j) +
                        ": materialized, 1 rows"),
              std::string::npos)
        << plan;
  }
}

}  // namespace
}  // namespace nlq::engine
