#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "connect/extern_analyzer.h"
#include "connect/odbc_sim.h"
#include "gen/datagen.h"
#include "stats/miner.h"
#include "tests/test_util.h"

namespace nlq::connect {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

class ConnectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = nlq::testing::MakeTestDatabase();
    gen::MixtureOptions options;
    options.n = 1500;
    options.d = 4;
    options.seed = 555;
    NLQ_ASSERT_OK(gen::GenerateDataSetTable(db_.get(), "X", options).status());
  }

  std::unique_ptr<nlq::engine::Database> db_;
};

TEST_F(ConnectTest, ExportWritesEveryRow) {
  const std::string path = TempPath("export_all.csv");
  OdbcExporter exporter;
  auto table = db_->catalog().GetTable("X");
  ASSERT_TRUE(table.ok());
  NLQ_ASSERT_OK_AND_ASSIGN(OdbcExportResult result,
                           exporter.ExportTable(**table, path));
  EXPECT_EQ(result.rows, 1500u);
  EXPECT_GT(result.bytes, 0u);
  EXPECT_GT(result.modeled_link_seconds, 0.0);

  // Count lines in the file.
  std::ifstream in(path);
  size_t lines = 0;
  std::string line;
  size_t commas = 0;
  while (std::getline(in, line)) {
    if (lines == 0) commas = std::count(line.begin(), line.end(), ',');
    ++lines;
  }
  EXPECT_EQ(lines, 1500u);
  EXPECT_EQ(commas, 4u);  // i + 4 dims -> 4 separators
  std::remove(path.c_str());
}

TEST_F(ConnectTest, ExternalAnalyzerMatchesInDbmsStats) {
  const std::string path = TempPath("export_analyze.csv");
  OdbcExporter exporter;
  auto table = db_->catalog().GetTable("X");
  ASSERT_TRUE(table.ok());
  NLQ_ASSERT_OK(exporter.ExportTable(**table, path).status());

  ExternalAnalyzerOptions options;
  options.kind = stats::MatrixKind::kFull;
  NLQ_ASSERT_OK_AND_ASSIGN(stats::SufStats external,
                           AnalyzeFlatFile(path, 4, options));

  stats::WarehouseMiner miner(db_.get());
  NLQ_ASSERT_OK_AND_ASSIGN(
      stats::SufStats internal,
      miner.ComputeSufStats("X", stats::DimensionColumns(4),
                            stats::MatrixKind::kFull,
                            stats::ComputeVia::kUdfList));
  EXPECT_EQ(external.n(), internal.n());
  // Text round trip is exact; the only difference is floating-point
  // summation order (parallel partitions vs. sequential file scan).
  EXPECT_LT(external.MaxAbsDiff(internal), 1e-5);
  std::remove(path.c_str());
}

TEST_F(ConnectTest, LinkModelCalibratedToPaper) {
  // Paper Table 2: n=100k d=8 -> 168 s; d=64 -> 1204 s; n=200k d=64 ->
  // 2407 s. Our defaults should land within ~15% of those anchors.
  LinkModel link;
  // 9 columns (i + 8 dims) at ~12 text bytes each.
  const double t1 = link.TransferSeconds(100000, 9, 100000 * 9 * 12);
  EXPECT_NEAR(t1, 168.0, 0.15 * 168.0);
  const double t2 = link.TransferSeconds(100000, 65, 100000 * 65 * 12);
  EXPECT_NEAR(t2, 1204.0, 0.15 * 1204.0);
  const double t3 = link.TransferSeconds(200000, 65, 200000 * 65 * 12);
  EXPECT_NEAR(t3, 2407.0, 0.15 * 2407.0);
}

TEST_F(ConnectTest, LinkModelMonotonicity) {
  LinkModel link;
  EXPECT_LT(link.TransferSeconds(1000, 8, 100000),
            link.TransferSeconds(2000, 8, 200000));
  EXPECT_LT(link.TransferSeconds(1000, 8, 100000),
            link.TransferSeconds(1000, 16, 100000));
  LinkModel fast = link;
  fast.bandwidth_mbps = 1000.0;
  EXPECT_LE(fast.TransferSeconds(1000, 8, 100000000),
            link.TransferSeconds(1000, 8, 100000000));
}

TEST_F(ConnectTest, TotalSecondsIsMaxOfPhases) {
  OdbcExportResult result;
  result.serialize_seconds = 2.0;
  result.modeled_link_seconds = 5.0;
  EXPECT_DOUBLE_EQ(result.TotalSeconds(), 5.0);
  result.serialize_seconds = 9.0;
  EXPECT_DOUBLE_EQ(result.TotalSeconds(), 9.0);
}

TEST_F(ConnectTest, AnalyzerRejectsMissingFile) {
  EXPECT_FALSE(AnalyzeFlatFile("/no/such/file.csv", 4).ok());
}

TEST_F(ConnectTest, AnalyzerRejectsMalformedRows) {
  const std::string path = TempPath("malformed.csv");
  {
    std::ofstream out(path);
    out << "1,1.0,2.0\n";
    out << "2,not_a_number,2.0\n";
  }
  EXPECT_FALSE(AnalyzeFlatFile(path, 2).ok());
  std::remove(path.c_str());
}

TEST_F(ConnectTest, AnalyzerRejectsWrongColumnCount) {
  const std::string path = TempPath("wrong_cols.csv");
  {
    std::ofstream out(path);
    out << "1,1.0\n";  // only one value column, d=2 expected
  }
  EXPECT_FALSE(AnalyzeFlatFile(path, 2).ok());
  std::remove(path.c_str());
}

TEST_F(ConnectTest, AnalyzerHandlesNoTrailingNewline) {
  const std::string path = TempPath("no_trailing.csv");
  {
    std::ofstream out(path);
    out << "1,1.0,2.0\n2,3.0,4.0";  // no final newline
  }
  NLQ_ASSERT_OK_AND_ASSIGN(stats::SufStats stats, AnalyzeFlatFile(path, 2));
  EXPECT_EQ(stats.n(), 2.0);
  EXPECT_DOUBLE_EQ(stats.L(0), 4.0);
  EXPECT_DOUBLE_EQ(stats.L(1), 6.0);
  std::remove(path.c_str());
}

TEST_F(ConnectTest, AnalyzerIgnoresExtraColumns) {
  // Extra Y column beyond d is ignored (regression exports).
  const std::string path = TempPath("extra_cols.csv");
  {
    std::ofstream out(path);
    out << "1,1.0,2.0,99.0\n";
  }
  NLQ_ASSERT_OK_AND_ASSIGN(stats::SufStats stats, AnalyzeFlatFile(path, 2));
  EXPECT_EQ(stats.n(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Q(0, 1), 2.0);
  std::remove(path.c_str());
}

TEST_F(ConnectTest, ExportFailsOnBadPath) {
  OdbcExporter exporter;
  auto table = db_->catalog().GetTable("X");
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(exporter.ExportTable(**table, "/no/such/dir/out.csv").ok());
}

// ---------------------------------------------------------------------------
// Full-jitter retry backoff (RetryPolicy::jitter). The sleep for
// retry k is uniform in [0, backoff_k] from a generator derived from
// (jitter_seed, k) alone, so tests can predict any retry in
// isolation.
// ---------------------------------------------------------------------------

TEST(RetryJitterTest, DeterministicForFixedSeedAndRetryIndex) {
  RetryPolicy policy;
  policy.jitter_seed = 42;
  const int64_t first = JitteredBackoffUs(policy, /*retry_index=*/0, 1000);
  const int64_t second = JitteredBackoffUs(policy, /*retry_index=*/0, 1000);
  EXPECT_EQ(first, second) << "same (seed, retry) must draw the same sleep";
  // A different retry index is an independent draw — with these
  // constants the two differ (a fixed property of the seeded stream,
  // not a probabilistic claim).
  EXPECT_NE(JitteredBackoffUs(policy, 0, 1'000'000),
            JitteredBackoffUs(policy, 1, 1'000'000));
  // And so is a different seed.
  RetryPolicy other = policy;
  other.jitter_seed = 43;
  EXPECT_NE(JitteredBackoffUs(policy, 0, 1'000'000),
            JitteredBackoffUs(other, 0, 1'000'000));
}

TEST(RetryJitterTest, SleepsStayWithinTheFullJitterBound) {
  RetryPolicy policy;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    policy.jitter_seed = seed;
    for (int retry = 0; retry < 4; ++retry) {
      const int64_t bound = 100 << retry;
      const int64_t sleep_us = JitteredBackoffUs(policy, retry, bound);
      EXPECT_GE(sleep_us, 0);
      EXPECT_LE(sleep_us, bound);
    }
  }
  // The draws actually use the range — across 50 seeds both halves of
  // [0, bound] show up (full jitter, not a constant fraction).
  int low = 0, high = 0;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    policy.jitter_seed = seed;
    (JitteredBackoffUs(policy, 0, 1000) <= 500 ? low : high)++;
  }
  EXPECT_GT(low, 0);
  EXPECT_GT(high, 0);
}

TEST(RetryJitterTest, DisabledJitterIsPassthroughAndZeroIsZero) {
  RetryPolicy policy;
  policy.jitter = false;
  EXPECT_EQ(JitteredBackoffUs(policy, 0, 12345), 12345);
  EXPECT_EQ(JitteredBackoffUs(policy, 3, 12345), 12345);
  policy.jitter = true;
  EXPECT_EQ(JitteredBackoffUs(policy, 0, 0), 0);
  EXPECT_EQ(JitteredBackoffUs(policy, 0, -5), 0);
}

}  // namespace
}  // namespace nlq::connect
