// Golden-text and decoding tests for the SQL generators — the exact
// statements the paper presents in Sections 3.4-3.5.

#include <gtest/gtest.h>

#include "engine/parser.h"
#include "stats/sqlgen.h"
#include "tests/test_util.h"

namespace nlq::stats {
namespace {

TEST(SqlGenTest, DimensionColumns) {
  const auto cols = DimensionColumns(3);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], "X1");
  EXPECT_EQ(cols[2], "X3");
}

TEST(SqlGenTest, TriangularSqlQueryGolden) {
  // The paper's "one long SQL query" for d=2: n, L1, L2, Q11, Q21, Q22.
  EXPECT_EQ(
      NlqSqlQuery("X", DimensionColumns(2), MatrixKind::kLowerTriangular),
      "SELECT sum(1.0) AS n, sum(X1) AS L1, sum(X2) AS L2, "
      "sum(X1 * X1) AS Q1_1, sum(X2 * X1) AS Q2_1, sum(X2 * X2) AS Q2_2 "
      "FROM X");
}

TEST(SqlGenTest, DiagonalSqlQueryGolden) {
  EXPECT_EQ(NlqSqlQuery("X", DimensionColumns(2), MatrixKind::kDiagonal),
            "SELECT sum(1.0) AS n, sum(X1) AS L1, sum(X2) AS L2, "
            "sum(X1 * X1) AS Q1_1, sum(X2 * X2) AS Q2_2 FROM X");
}

TEST(SqlGenTest, FullSqlQueryTermCount) {
  // 1 + d + d^2 SUM terms (paper Section 3.4).
  for (size_t d : {2, 4, 8, 16}) {
    const std::string sql =
        NlqSqlQuery("X", DimensionColumns(d), MatrixKind::kFull);
    size_t terms = 0;
    for (size_t pos = sql.find("sum("); pos != std::string::npos;
         pos = sql.find("sum(", pos + 1)) {
      ++terms;
    }
    EXPECT_EQ(terms, 1 + d + d * d) << "d=" << d;
  }
}

TEST(SqlGenTest, GeneratedSqlParses) {
  for (MatrixKind kind : {MatrixKind::kDiagonal,
                          MatrixKind::kLowerTriangular, MatrixKind::kFull}) {
    for (size_t d : {1, 3, 8}) {
      const std::string sql = NlqSqlQuery("X", DimensionColumns(d), kind);
      EXPECT_TRUE(engine::ParseStatement(sql).ok()) << sql;
      const std::string grouped =
          NlqSqlQueryGrouped("X", DimensionColumns(d), kind, "i % 4");
      EXPECT_TRUE(engine::ParseStatement(grouped).ok()) << grouped;
    }
  }
}

TEST(SqlGenTest, UdfQueryGolden) {
  EXPECT_EQ(NlqUdfQuery("X", DimensionColumns(2),
                        MatrixKind::kLowerTriangular, ParamStyle::kList),
            "SELECT nlq_list('triang', X1, X2) AS nlq FROM X");
  EXPECT_EQ(NlqUdfQuery("X", DimensionColumns(2), MatrixKind::kDiagonal,
                        ParamStyle::kString),
            "SELECT nlq_string('diag', pack_point(X1, X2)) AS nlq FROM X");
}

TEST(SqlGenTest, UdfGroupedQueryGolden) {
  EXPECT_EQ(
      NlqUdfQueryGrouped("X", DimensionColumns(1), MatrixKind::kFull,
                         ParamStyle::kList, "j"),
      "SELECT j AS grp, nlq_list('full', X1) AS nlq FROM X GROUP BY j "
      "ORDER BY 1");
}

TEST(SqlGenTest, BlockQueryCoversLowerTriangleOfBlocks) {
  // d=5, block side 2 -> per-side blocks at [1,2],[3,4],[5,5]; lower
  // triangular pairs: (1,1),(2,1),(2,2),(3,1),(3,2),(3,3) = 6 calls.
  const std::string sql = NlqBlockQuery("X", DimensionColumns(5), 2);
  size_t calls = 0;
  for (size_t pos = sql.find("nlq_block("); pos != std::string::npos;
       pos = sql.find("nlq_block(", pos + 1)) {
    ++calls;
  }
  EXPECT_EQ(calls, 6u);
  EXPECT_TRUE(engine::ParseStatement(sql).ok()) << sql;
  // First call: diagonal block over dims 1..2.
  EXPECT_NE(sql.find("nlq_block(1, 2, 1, 2, X1, X2, X1, X2)"),
            std::string::npos);
}

TEST(SqlGenTest, WideRowDecodingErrors) {
  // Build a tiny real result to exercise the decoder error paths.
  auto db = nlq::testing::MakeTestDatabase();
  NLQ_ASSERT_OK(db->ExecuteCommand("CREATE TABLE X (i BIGINT, X1 DOUBLE)"));
  NLQ_ASSERT_OK(db->ExecuteCommand("INSERT INTO X VALUES (1, 2.0)"));
  auto result = db->Execute(
      NlqSqlQuery("X", DimensionColumns(1), MatrixKind::kFull));
  ASSERT_TRUE(result.ok());

  // Correct decode: n=1, L1=2, Q11=4.
  NLQ_ASSERT_OK_AND_ASSIGN(
      SufStats stats, SufStatsFromWideRow(*result, 0, 1, MatrixKind::kFull));
  EXPECT_EQ(stats.n(), 1.0);
  EXPECT_DOUBLE_EQ(stats.L(0), 2.0);
  EXPECT_DOUBLE_EQ(stats.Q(0, 0), 4.0);

  // Row out of range.
  EXPECT_FALSE(SufStatsFromWideRow(*result, 5, 1, MatrixKind::kFull).ok());
  // Asking for more dimensions than the result has columns for.
  EXPECT_FALSE(SufStatsFromWideRow(*result, 0, 4, MatrixKind::kFull).ok());
}

TEST(SqlGenTest, UdfResultDecodingErrors) {
  auto db = nlq::testing::MakeTestDatabase();
  NLQ_ASSERT_OK(db->ExecuteCommand("CREATE TABLE X (i BIGINT, X1 DOUBLE)"));
  NLQ_ASSERT_OK(db->ExecuteCommand("INSERT INTO X VALUES (1, 2.0)"));
  auto result = db->Execute("SELECT sum(X1) FROM X");  // not a packed string
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(SufStatsFromUdfResult(*result).ok());
  EXPECT_FALSE(SufStatsFromUdfResult(*result, 3, 0).ok());
}

TEST(SqlGenTest, BlockResultsRequireOneRow) {
  auto db = nlq::testing::MakeTestDatabase();
  NLQ_ASSERT_OK(db->ExecuteCommand("CREATE TABLE X (i BIGINT, X1 DOUBLE)"));
  NLQ_ASSERT_OK(db->ExecuteCommand("INSERT INTO X VALUES (1, 2), (2, 3)"));
  auto two_rows = db->Execute("SELECT X1 FROM X");
  ASSERT_TRUE(two_rows.ok());
  EXPECT_FALSE(SufStatsFromBlockResults(*two_rows, 1).ok());
}

}  // namespace
}  // namespace nlq::stats
