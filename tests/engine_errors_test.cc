// Failure-injection and edge-case coverage for the engine: errors
// raised inside parallel partition scans, UDF failures mid-query,
// heap-segment exhaustion, NULL ordering, type quirks.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "tests/test_util.h"
#include "udf/heap_segment.h"
#include "udf/udf.h"

namespace nlq::engine {
namespace {

using storage::DataType;
using storage::Datum;

// A scalar UDF that fails whenever its argument exceeds a threshold —
// used to verify that errors raised deep inside a parallel partition
// scan abort the whole query and surface to the caller.
class FailAboveUdf : public udf::ScalarUdf {
 public:
  const std::string& name() const override {
    static const std::string kName = "fail_above";
    return kName;
  }
  DataType return_type() const override { return DataType::kDouble; }
  Status CheckArity(size_t num_args) const override {
    return num_args == 2
               ? Status::OK()
               : Status::InvalidArgument("fail_above(x, limit) needs 2 args");
  }
  StatusOr<Datum> Invoke(const std::vector<Datum>& args) const override {
    if (args[0].AsDouble() > args[1].AsDouble()) {
      return Status::Internal("injected failure");
    }
    return args[0];
  }
};

// An aggregate UDF whose state never fits the 64 KB heap segment.
class HugeStateUdaf : public udf::AggregateUdf {
 public:
  const std::string& name() const override {
    static const std::string kName = "huge_state";
    return kName;
  }
  DataType return_type() const override { return DataType::kDouble; }
  StatusOr<void*> Init(udf::HeapSegment* heap) const override {
    void* p = heap->Allocate(udf::kDefaultHeapCapacity + 1);
    if (p == nullptr) {
      return Status::ResourceExhausted("state exceeds the heap segment");
    }
    return p;
  }
  Status Accumulate(void*, const std::vector<Datum>&) const override {
    return Status::OK();
  }
  Status Merge(void*, const void*) const override { return Status::OK(); }
  StatusOr<Datum> Finalize(const void*) const override {
    return Datum::Double(0);
  }
};

// An aggregate UDF that fails during Accumulate after a few rows.
class FailingUdaf : public udf::AggregateUdf {
 public:
  const std::string& name() const override {
    static const std::string kName = "failing_agg";
    return kName;
  }
  DataType return_type() const override { return DataType::kDouble; }
  StatusOr<void*> Init(udf::HeapSegment* heap) const override {
    return heap->Allocate(8);
  }
  Status Accumulate(void* state,
                    const std::vector<Datum>& args) const override {
    auto* count = static_cast<int64_t*>(state);
    if (++(*count) > 3 && args[0].AsDouble() > 0) {
      return Status::Internal("aggregate blew up");
    }
    return Status::OK();
  }
  Status Merge(void*, const void*) const override { return Status::OK(); }
  StatusOr<Datum> Finalize(const void*) const override {
    return Datum::Double(0);
  }
};

class EngineErrorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = nlq::testing::MakeTestDatabase();
    NLQ_ASSERT_OK(db_->udfs().RegisterScalar(std::make_unique<FailAboveUdf>()));
    NLQ_ASSERT_OK(
        db_->udfs().RegisterAggregate(std::make_unique<HugeStateUdaf>()));
    NLQ_ASSERT_OK(
        db_->udfs().RegisterAggregate(std::make_unique<FailingUdaf>()));
    NLQ_ASSERT_OK(db_->ExecuteCommand("CREATE TABLE t (i BIGINT, v DOUBLE)"));
    for (int i = 1; i <= 200; ++i) {
      NLQ_ASSERT_OK(db_->ExecuteCommand(
          "INSERT INTO t VALUES (" + std::to_string(i) + ", " +
          std::to_string(i * 1.0) + ")"));
    }
  }

  std::unique_ptr<Database> db_;
};

TEST_F(EngineErrorsTest, ScalarUdfErrorInParallelScanSurfaces) {
  auto result = db_->Execute("SELECT fail_above(v, 150) FROM t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("injected failure"),
            std::string::npos);
}

TEST_F(EngineErrorsTest, ScalarUdfErrorInWhereSurfaces) {
  EXPECT_FALSE(
      db_->Execute("SELECT i FROM t WHERE fail_above(v, 10) > 0").ok());
}

TEST_F(EngineErrorsTest, ScalarUdfSucceedsBelowThreshold) {
  auto result = db_->Execute("SELECT fail_above(v, 1e9) FROM t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 200u);
}

TEST_F(EngineErrorsTest, AggregateHeapExhaustionSurfaces) {
  auto result = db_->Execute("SELECT huge_state(v) FROM t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(EngineErrorsTest, AggregateAccumulateErrorSurfaces) {
  auto result = db_->Execute("SELECT failing_agg(v) FROM t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST_F(EngineErrorsTest, ScalarUdfArityCheckedAtPlanTime) {
  EXPECT_FALSE(db_->Execute("SELECT fail_above(v) FROM t").ok());
}

// ---------------------------------------------------------------------------
// Edge cases
// ---------------------------------------------------------------------------

TEST_F(EngineErrorsTest, NullsSortFirstAscending) {
  NLQ_ASSERT_OK(db_->ExecuteCommand("CREATE TABLE s (v DOUBLE)"));
  NLQ_ASSERT_OK(
      db_->ExecuteCommand("INSERT INTO s VALUES (2), (NULL), (1)"));
  auto asc = db_->Execute("SELECT v FROM s ORDER BY v");
  ASSERT_TRUE(asc.ok());
  EXPECT_TRUE(asc->At(0, 0).is_null());
  EXPECT_DOUBLE_EQ(asc->GetDouble(1, 0), 1.0);
  auto desc = db_->Execute("SELECT v FROM s ORDER BY v DESC");
  ASSERT_TRUE(desc.ok());
  EXPECT_TRUE(desc->At(2, 0).is_null());
}

TEST_F(EngineErrorsTest, VarcharOrderingAndGroupKeys) {
  NLQ_ASSERT_OK(db_->ExecuteCommand("CREATE TABLE names (s VARCHAR(8))"));
  NLQ_ASSERT_OK(db_->ExecuteCommand(
      "INSERT INTO names VALUES ('b'), ('a'), ('b'), ('c')"));
  auto grouped = db_->Execute(
      "SELECT s, count(*) FROM names GROUP BY s ORDER BY s");
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ(grouped->num_rows(), 3u);
  EXPECT_EQ(grouped->At(0, 0).string_value(), "a");
  EXPECT_EQ(grouped->At(1, 0).string_value(), "b");
  EXPECT_EQ(grouped->At(1, 1).int_value(), 2);
}

TEST_F(EngineErrorsTest, VarcharComparisonInWhere) {
  NLQ_ASSERT_OK(db_->ExecuteCommand("CREATE TABLE w (s VARCHAR(8))"));
  NLQ_ASSERT_OK(
      db_->ExecuteCommand("INSERT INTO w VALUES ('tx'), ('ca'), ('ny')"));
  NLQ_ASSERT_OK_AND_ASSIGN(
      double hits, db_->QueryDouble("SELECT count(*) FROM w WHERE s = 'tx'"));
  EXPECT_DOUBLE_EQ(hits, 1.0);
  NLQ_ASSERT_OK_AND_ASSIGN(
      double range,
      db_->QueryDouble("SELECT count(*) FROM w WHERE s > 'ca'"));
  EXPECT_DOUBLE_EQ(range, 2.0);
}

TEST_F(EngineErrorsTest, CaseWithoutElseYieldsNull) {
  auto result =
      db_->Execute("SELECT CASE WHEN 1 = 2 THEN 5 END");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->At(0, 0).is_null());
}

TEST_F(EngineErrorsTest, LimitZero) {
  auto result = db_->Execute("SELECT i FROM t LIMIT 0");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0u);
}

TEST_F(EngineErrorsTest, MinMaxOnIntKeepsIntType) {
  auto result = db_->Execute("SELECT min(i), max(i) FROM t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->At(0, 0).type(), DataType::kInt64);
  EXPECT_EQ(result->At(0, 0).int_value(), 1);
  EXPECT_EQ(result->At(0, 1).int_value(), 200);
}

TEST_F(EngineErrorsTest, VarcharCoercionRejected) {
  NLQ_ASSERT_OK(db_->ExecuteCommand("CREATE TABLE c (v DOUBLE)"));
  EXPECT_FALSE(db_->Execute("INSERT INTO c VALUES ('abc')").ok());
}

TEST_F(EngineErrorsTest, OrPredicateNotPusheddown) {
  // OR across tables cannot be pushed to one side; result must still
  // be correct via the residual filter.
  NLQ_ASSERT_OK(db_->ExecuteCommand("CREATE TABLE m (j BIGINT)"));
  NLQ_ASSERT_OK(db_->ExecuteCommand("INSERT INTO m VALUES (1), (2)"));
  auto result = db_->Execute(
      "SELECT count(*) FROM t, m WHERE m.j = 1 OR i = 1");
  ASSERT_TRUE(result.ok());
  // j=1 matches all 200 t-rows; j=2 matches only i=1 -> 201.
  EXPECT_EQ(result->At(0, 0).int_value(), 201);
}

TEST_F(EngineErrorsTest, ThreeWayCrossJoin) {
  NLQ_ASSERT_OK(db_->ExecuteCommand("CREATE TABLE a (x BIGINT)"));
  NLQ_ASSERT_OK(db_->ExecuteCommand("CREATE TABLE b (y BIGINT)"));
  NLQ_ASSERT_OK(db_->ExecuteCommand("INSERT INTO a VALUES (1), (2)"));
  NLQ_ASSERT_OK(db_->ExecuteCommand("INSERT INTO b VALUES (10), (20), (30)"));
  NLQ_ASSERT_OK_AND_ASSIGN(
      double count,
      db_->QueryDouble("SELECT count(*) FROM t, a, b"));
  EXPECT_DOUBLE_EQ(count, 200.0 * 2 * 3);
}

TEST_F(EngineErrorsTest, SelectFromEmptyTable) {
  NLQ_ASSERT_OK(db_->ExecuteCommand("CREATE TABLE e (v DOUBLE)"));
  auto rows = db_->Execute("SELECT v, v * 2 FROM e");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->num_rows(), 0u);
  auto grouped = db_->Execute("SELECT v, count(*) FROM e GROUP BY v");
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->num_rows(), 0u);
}

TEST_F(EngineErrorsTest, OrderByAliasWorks) {
  auto result =
      db_->Execute("SELECT i, v * -1 AS neg FROM t ORDER BY neg LIMIT 1");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->At(0, 0).int_value(), 200);  // most negative neg
}

TEST_F(EngineErrorsTest, IntegerOverflowFreeModGrouping) {
  // Large ids with modulo grouping — exercises int64 arithmetic.
  NLQ_ASSERT_OK(db_->ExecuteCommand("CREATE TABLE big (i BIGINT)"));
  NLQ_ASSERT_OK(db_->ExecuteCommand(
      "INSERT INTO big VALUES (9000000000000), (9000000000001)"));
  auto result = db_->Execute("SELECT i % 2, count(*) FROM big GROUP BY i % 2 "
                             "ORDER BY 1");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST_F(EngineErrorsTest, DivisionByZeroInAggregateIsNullNotError) {
  // 1/(i-1) is NULL for i=1; sum skips NULLs instead of failing.
  auto result = db_->Execute("SELECT count(*), sum(1 / (i - 1)) FROM t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->At(0, 0).int_value(), 200);
  EXPECT_FALSE(result->At(0, 1).is_null());
}

}  // namespace
}  // namespace nlq::engine
