#include <gtest/gtest.h>

#include "engine/database.h"
#include "gen/datagen.h"
#include "stats/nlq_udaf.h"
#include "stats/sqlgen.h"
#include "stats/sufstats.h"
#include "tests/test_util.h"

namespace nlq::stats {
namespace {

class NlqUdafTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = nlq::testing::MakeTestDatabase();
    gen::MixtureOptions options;
    options.n = 2000;
    options.d = 5;
    options.seed = 99;
    NLQ_ASSERT_OK(gen::GenerateDataSetTable(db_.get(), "X", options).status());

    // Reference stats straight from the stored rows.
    auto table = db_->catalog().GetTable("X");
    ASSERT_TRUE(table.ok());
    auto rows = (*table)->ReadAllRows();
    ASSERT_TRUE(rows.ok());
    for (const auto& row : *rows) {
      std::vector<double> x(5);
      for (size_t a = 0; a < 5; ++a) x[a] = row[1 + a].AsDouble();
      points_.push_back(std::move(x));
    }
  }

  SufStats Reference(MatrixKind kind) {
    return nlq::testing::ReferenceStats(points_, kind);
  }

  SufStats RunUdf(const std::string& sql) {
    auto result = db_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
    auto stats = SufStatsFromUdfResult(*result);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return std::move(stats).value();
  }

  std::unique_ptr<engine::Database> db_;
  std::vector<std::vector<double>> points_;
};

class NlqUdafKindTest : public NlqUdafTest,
                        public ::testing::WithParamInterface<MatrixKind> {};

TEST_P(NlqUdafKindTest, ListStyleMatchesReference) {
  const SufStats udf = RunUdf(
      NlqUdfQuery("X", DimensionColumns(5), GetParam(), ParamStyle::kList));
  const SufStats ref = Reference(GetParam());
  EXPECT_EQ(udf.n(), ref.n());
  EXPECT_LT(udf.MaxAbsDiff(ref), 1e-5);
  for (size_t a = 0; a < 5; ++a) {
    EXPECT_DOUBLE_EQ(udf.Min(a), ref.Min(a));
    EXPECT_DOUBLE_EQ(udf.Max(a), ref.Max(a));
  }
}

TEST_P(NlqUdafKindTest, StringStyleMatchesList) {
  const SufStats list = RunUdf(
      NlqUdfQuery("X", DimensionColumns(5), GetParam(), ParamStyle::kList));
  const SufStats str = RunUdf(
      NlqUdfQuery("X", DimensionColumns(5), GetParam(), ParamStyle::kString));
  // pack_point prints shortest-round-trip doubles, so the string path
  // is numerically identical.
  EXPECT_EQ(list.MaxAbsDiff(str), 0.0);
}

TEST_P(NlqUdafKindTest, SqlWideQueryMatchesUdf) {
  auto result = db_->Execute(NlqSqlQuery("X", DimensionColumns(5), GetParam()));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  NLQ_ASSERT_OK_AND_ASSIGN(SufStats sql,
                           SufStatsFromWideRow(*result, 0, 5, GetParam()));
  const SufStats udf = RunUdf(
      NlqUdfQuery("X", DimensionColumns(5), GetParam(), ParamStyle::kList));
  EXPECT_LT(sql.MaxAbsDiff(udf), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Kinds, NlqUdafKindTest,
                         ::testing::Values(MatrixKind::kDiagonal,
                                           MatrixKind::kLowerTriangular,
                                           MatrixKind::kFull));

TEST_F(NlqUdafTest, GroupedUdfMatchesGroupedReference) {
  auto result = db_->Execute(NlqUdfQueryGrouped(
      "X", DimensionColumns(5), MatrixKind::kDiagonal, ParamStyle::kList,
      "i % 4"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 4u);
  double total_n = 0;
  for (size_t r = 0; r < 4; ++r) {
    NLQ_ASSERT_OK_AND_ASSIGN(SufStats group,
                             SufStatsFromUdfResult(*result, r, 1));
    total_n += group.n();
  }
  EXPECT_DOUBLE_EQ(total_n, 2000.0);
}

TEST_F(NlqUdafTest, GroupedSqlMatchesGroupedUdf) {
  auto sql_result = db_->Execute(NlqSqlQueryGrouped(
      "X", DimensionColumns(5), MatrixKind::kDiagonal, "i % 3"));
  ASSERT_TRUE(sql_result.ok()) << sql_result.status().ToString();
  auto udf_result = db_->Execute(NlqUdfQueryGrouped(
      "X", DimensionColumns(5), MatrixKind::kDiagonal, ParamStyle::kList,
      "i % 3"));
  ASSERT_TRUE(udf_result.ok());
  ASSERT_EQ(sql_result->num_rows(), udf_result->num_rows());
  for (size_t r = 0; r < sql_result->num_rows(); ++r) {
    NLQ_ASSERT_OK_AND_ASSIGN(
        SufStats sql_stats,
        SufStatsFromWideRow(*sql_result, r, 5, MatrixKind::kDiagonal, 1));
    NLQ_ASSERT_OK_AND_ASSIGN(SufStats udf_stats,
                             SufStatsFromUdfResult(*udf_result, r, 1));
    EXPECT_LT(sql_stats.MaxAbsDiff(udf_stats), 1e-6);
  }
}

TEST_F(NlqUdafTest, BlockQueryAssemblesFullMatrix) {
  // Cover d=5 with 2-wide blocks: exercises diagonal and off-diagonal
  // assembly plus mirroring.
  auto result = db_->Execute(NlqBlockQuery("X", DimensionColumns(5), 2));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  NLQ_ASSERT_OK_AND_ASSIGN(SufStats assembled,
                           SufStatsFromBlockResults(*result, 5));
  const SufStats ref = Reference(MatrixKind::kFull);
  EXPECT_EQ(assembled.n(), ref.n());
  EXPECT_LT(assembled.MaxAbsDiff(ref), 1e-5);
}

TEST_F(NlqUdafTest, EmptyTableYieldsEmptyStats) {
  NLQ_ASSERT_OK(db_->ExecuteCommand("CREATE TABLE E (i BIGINT, X1 DOUBLE)"));
  const SufStats stats = RunUdf(NlqUdfQuery(
      "E", {"X1"}, MatrixKind::kLowerTriangular, ParamStyle::kList));
  EXPECT_EQ(stats.n(), 0.0);
  EXPECT_EQ(stats.d(), 0u);
}

TEST_F(NlqUdafTest, RejectsTooManyDimensions) {
  // d = 65 exceeds MAX_d = 64 at plan time.
  std::string sql = "SELECT nlq_list('triang'";
  for (int a = 0; a < 65; ++a) sql += ", X1";
  sql += ") FROM X";
  EXPECT_FALSE(db_->Execute(sql).ok());
}

TEST_F(NlqUdafTest, RejectsBadKind) {
  EXPECT_FALSE(db_->Execute("SELECT nlq_list('banana', X1) FROM X").ok());
}

TEST_F(NlqUdafTest, RejectsTooFewArgs) {
  EXPECT_FALSE(db_->Execute("SELECT nlq_list('diag') FROM X").ok());
  EXPECT_FALSE(db_->Execute("SELECT nlq_string('diag') FROM X").ok());
  EXPECT_FALSE(db_->Execute("SELECT nlq_block(1, 2) FROM X").ok());
}

TEST_F(NlqUdafTest, BlockRejectsBadRanges) {
  EXPECT_FALSE(
      db_->Execute("SELECT nlq_block(2, 1, 1, 1, X1, X1) FROM X").ok());
  EXPECT_FALSE(
      db_->Execute("SELECT nlq_block(0, 1, 1, 1, X1, X2, X1) FROM X").ok());
}

TEST_F(NlqUdafTest, ParseNlqBlockRejectsGarbage) {
  EXPECT_FALSE(ParseNlqBlock("").ok());
  EXPECT_FALSE(ParseNlqBlock("1|2|3").ok());
  EXPECT_FALSE(ParseNlqBlock("1|2|1|2|10|1;2|1;2;3").ok());  // bad q count
}

TEST_F(NlqUdafTest, UdfIsPartitionInvariant) {
  // Same data loaded under different partition counts must produce
  // identical statistics (merge-phase correctness).
  SufStats reference = Reference(MatrixKind::kFull);
  for (size_t parts : {1u, 2u, 7u, 16u}) {
    auto db = nlq::testing::MakeTestDatabase(parts);
    gen::MixtureOptions options;
    options.n = 2000;
    options.d = 5;
    options.seed = 99;
    NLQ_ASSERT_OK(gen::GenerateDataSetTable(db.get(), "X", options).status());
    auto result = db->Execute(NlqUdfQuery("X", DimensionColumns(5),
                                          MatrixKind::kFull,
                                          ParamStyle::kList));
    ASSERT_TRUE(result.ok());
    NLQ_ASSERT_OK_AND_ASSIGN(SufStats stats, SufStatsFromUdfResult(*result));
    EXPECT_LT(stats.MaxAbsDiff(reference), 1e-5) << parts << " partitions";
  }
}


class BlockSizeSweepTest : public NlqUdafTest,
                           public ::testing::WithParamInterface<size_t> {};

TEST_P(BlockSizeSweepTest, AnyBlockPartitioningAssemblesTheSameMatrix) {
  const size_t block = GetParam();
  auto result = db_->Execute(NlqBlockQuery("X", DimensionColumns(5), block));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  NLQ_ASSERT_OK_AND_ASSIGN(SufStats assembled,
                           SufStatsFromBlockResults(*result, 5));
  EXPECT_LT(assembled.MaxAbsDiff(Reference(MatrixKind::kFull)), 1e-5)
      << "block side " << block;
}

INSTANTIATE_TEST_SUITE_P(BlockSides, BlockSizeSweepTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace nlq::stats
