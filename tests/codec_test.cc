// Property tests for the column codecs (storage/column_codec.h):
// every codec must round-trip bit-exactly across null densities,
// boundary row counts and adversarial value patterns, and every
// corruption of an encoded block must fail with kCorruption before
// any value is published — never UB (the suite runs under ASan in CI).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column_batch.h"
#include "storage/column_codec.h"
#include "tests/test_util.h"

namespace nlq::storage {
namespace {

/// Deterministic splitmix64 — the tests need reproducible "random"
/// values without <random> seeding subtleties.
uint64_t Mix(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

uint64_t DoubleToBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// Value patterns, chosen to steer codec selection: constant → RLE,
/// few-distinct → dict, monotone BIGINT → FOR, random → plain, plus
/// IEEE specials that any bit-pattern shortcut would mangle.
enum class Pattern {
  kConstant,
  kMonotone,
  kFewDistinct,   // 90% one value, rest from a 4-value set
  kRandom,
  kSpecials,      // NaN, ±inf, ±0, denormals interleaved
};

const char* PatternName(Pattern p) {
  switch (p) {
    case Pattern::kConstant: return "constant";
    case Pattern::kMonotone: return "monotone";
    case Pattern::kFewDistinct: return "few_distinct";
    case Pattern::kRandom: return "random";
    case Pattern::kSpecials: return "specials";
  }
  return "?";
}

/// Null densities: none, sparse, half (alternating), all.
enum class Nulls { kNone, kSparse, kAlternating, kAll };

const char* NullsName(Nulls n) {
  switch (n) {
    case Nulls::kNone: return "none";
    case Nulls::kSparse: return "sparse";
    case Nulls::kAlternating: return "alternating";
    case Nulls::kAll: return "all";
  }
  return "?";
}

bool RowIsNull(Nulls mode, size_t r) {
  switch (mode) {
    case Nulls::kNone: return false;
    case Nulls::kSparse: return r % 37 == 5;
    case Nulls::kAlternating: return r % 2 == 1;
    case Nulls::kAll: return true;
  }
  return false;
}

/// Builds a column of `rows` values following the pattern. NULL slots
/// get the canonical 0/0.0 the decoder also writes, so equality of the
/// value arrays is well-defined.
ColumnVector MakeColumn(DataType type, Pattern pattern, Nulls nulls,
                        size_t rows) {
  ColumnVector col;
  col.Reset(type, rows);
  uint64_t rng = 0x5eed0000 + rows;
  for (size_t r = 0; r < rows; ++r) {
    if (RowIsNull(nulls, r)) {
      NullBitSet(col.null_bits.data(), r);
      col.null_count++;
      continue;  // Reset already zeroed the value slot
    }
    if (type == DataType::kDouble) {
      double v = 0;
      switch (pattern) {
        case Pattern::kConstant: v = 42.5; break;
        case Pattern::kMonotone: v = static_cast<double>(r) * 0.25; break;
        case Pattern::kFewDistinct: {
          const uint64_t u = Mix(&rng);
          static const double kSet[4] = {1.5, -2.25, 1e300, 0.0};
          v = (u % 10 < 9) ? 7.75 : kSet[u % 4];
          break;
        }
        case Pattern::kRandom: v = BitsToDouble(Mix(&rng) | 1); break;
        case Pattern::kSpecials: {
          static const double kSpecials[] = {
              std::numeric_limits<double>::quiet_NaN(),
              std::numeric_limits<double>::infinity(),
              -std::numeric_limits<double>::infinity(),
              0.0,
              -0.0,
              std::numeric_limits<double>::denorm_min(),
              -std::numeric_limits<double>::denorm_min(),
              std::numeric_limits<double>::max(),
          };
          v = kSpecials[r % 8];
          break;
        }
      }
      col.doubles[r] = v;
    } else {
      int64_t v = 0;
      switch (pattern) {
        case Pattern::kConstant: v = -7; break;
        case Pattern::kMonotone:
          // Narrow range around a large base: the FOR sweet spot.
          v = 1'000'000'000'000LL + static_cast<int64_t>(r);
          break;
        case Pattern::kFewDistinct: {
          const uint64_t u = Mix(&rng);
          static const int64_t kSet[4] = {0, -1, INT64_MAX, INT64_MIN};
          v = (u % 10 < 9) ? 13 : kSet[u % 4];
          break;
        }
        case Pattern::kRandom:
          v = static_cast<int64_t>(Mix(&rng));
          break;
        case Pattern::kSpecials: {
          static const int64_t kEdge[] = {INT64_MIN, INT64_MAX, 0, -1, 1};
          v = kEdge[r % 5];
          break;
        }
      }
      col.ints[r] = v;
    }
  }
  return col;
}

/// Bit-exact column equality (doubles compared as bit patterns).
void ExpectColumnsBitEqual(const ColumnVector& a, const ColumnVector& b,
                           const std::string& what) {
  ASSERT_EQ(a.type, b.type) << what;
  ASSERT_EQ(a.null_count, b.null_count) << what;
  const size_t rows =
      a.type == DataType::kDouble ? a.doubles.size() : a.ints.size();
  const size_t rows_b =
      b.type == DataType::kDouble ? b.doubles.size() : b.ints.size();
  ASSERT_EQ(rows, rows_b) << what;
  for (size_t r = 0; r < rows; ++r) {
    const bool null_a =
        a.null_count > 0 && NullBitGet(a.null_bits.data(), r);
    const bool null_b =
        b.null_count > 0 && NullBitGet(b.null_bits.data(), r);
    ASSERT_EQ(null_a, null_b) << what << " row " << r;
    if (a.type == DataType::kDouble) {
      ASSERT_EQ(DoubleToBits(a.doubles[r]), DoubleToBits(b.doubles[r]))
          << what << " row " << r;
    } else {
      ASSERT_EQ(a.ints[r], b.ints[r]) << what << " row " << r;
    }
  }
}

// Boundary row counts: empty, single, and the pack-boundary trio
// around 1024 (bit-packed index words and RLE run splits all have
// word-boundary edges near powers of two).
const size_t kRowCounts[] = {0, 1, 1023, 1024, 1025};

TEST(ColumnCodecProperty, RoundTripsBitExactEverywhere) {
  for (const DataType type : {DataType::kDouble, DataType::kInt64}) {
    for (const Pattern pattern :
         {Pattern::kConstant, Pattern::kMonotone, Pattern::kFewDistinct,
          Pattern::kRandom, Pattern::kSpecials}) {
      for (const Nulls nulls : {Nulls::kNone, Nulls::kSparse,
                                Nulls::kAlternating, Nulls::kAll}) {
        for (const size_t rows : kRowCounts) {
          const std::string what =
              std::string(type == DataType::kDouble ? "double" : "int64") +
              "/" + PatternName(pattern) + "/nulls=" + NullsName(nulls) +
              "/rows=" + std::to_string(rows);
          const ColumnVector original = MakeColumn(type, pattern, nulls, rows);
          std::string encoded;
          const size_t bytes = EncodeColumnBlock(original, rows, &encoded);
          ASSERT_EQ(bytes, encoded.size()) << what;
          ASSERT_GE(bytes, ColumnBlockHeader::kEncodedSize) << what;
          // Plain is the ceiling: header + 8 bytes/row + bitmap.
          const size_t bitmap =
              original.null_count > 0
                  ? NullBitmapWords(rows) * sizeof(uint64_t)
                  : 0;
          ASSERT_LE(bytes,
                    ColumnBlockHeader::kEncodedSize + rows * 8 + bitmap)
              << what;

          ColumnVector decoded;
          size_t pos = 0;
          const Status s =
              DecodeColumnBlock(encoded.data(), encoded.size(), &pos, &decoded);
          ASSERT_TRUE(s.ok()) << what << ": " << s.ToString();
          ASSERT_EQ(pos, encoded.size()) << what;
          ExpectColumnsBitEqual(original, decoded, what);
        }
      }
    }
  }
}

TEST(ColumnCodecProperty, CompressiblePatternsActuallyCompress) {
  // Not just correctness: constant and monotone blocks must beat plain
  // by a wide margin, or the spill layer's compression ratio claim is
  // hollow.
  const size_t rows = 4096;
  const size_t plain_bytes = ColumnBlockHeader::kEncodedSize + rows * 8;

  ColumnVector constant =
      MakeColumn(DataType::kDouble, Pattern::kConstant, Nulls::kNone, rows);
  std::string enc;
  EncodeColumnBlock(constant, rows, &enc);
  EXPECT_LT(enc.size() * 20, plain_bytes) << "RLE on a constant column";

  ColumnVector monotone =
      MakeColumn(DataType::kInt64, Pattern::kMonotone, Nulls::kNone, rows);
  enc.clear();
  EncodeColumnBlock(monotone, rows, &enc);
  EXPECT_LT(enc.size() * 4, plain_bytes) << "FOR on a monotone BIGINT column";

  ColumnVector skewed = MakeColumn(DataType::kDouble, Pattern::kFewDistinct,
                                   Nulls::kNone, rows);
  enc.clear();
  EncodeColumnBlock(skewed, rows, &enc);
  EXPECT_LT(enc.size() * 4, plain_bytes) << "dict on a 5-distinct column";
}

// ---------------------------------------------------------------------------
// Corruption: every mutation/truncation must fail with kCorruption.
// ---------------------------------------------------------------------------

std::string EncodeSample(Pattern pattern, DataType type) {
  const ColumnVector col = MakeColumn(type, pattern, Nulls::kSparse, 257);
  std::string out;
  EncodeColumnBlock(col, 257, &out);
  return out;
}

void ExpectCorruption(const std::string& bytes, const std::string& what) {
  ColumnVector col;
  size_t pos = 0;
  const Status s = DecodeColumnBlock(bytes.data(), bytes.size(), &pos, &col);
  ASSERT_FALSE(s.ok()) << what;
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << what << ": " << s.ToString();
}

TEST(ColumnCodecCorruption, TruncationAtEveryBoundaryFailsCleanly) {
  for (const Pattern pattern :
       {Pattern::kConstant, Pattern::kMonotone, Pattern::kFewDistinct,
        Pattern::kRandom}) {
    const std::string full = EncodeSample(pattern, DataType::kDouble);
    // Cut at the header, inside the payload, and one byte short.
    for (const size_t cut :
         {size_t{0}, size_t{1}, ColumnBlockHeader::kEncodedSize - 1,
          ColumnBlockHeader::kEncodedSize, full.size() / 2,
          full.size() - 1}) {
      if (cut >= full.size()) continue;
      ExpectCorruption(full.substr(0, cut),
                       std::string(PatternName(pattern)) + " cut at " +
                           std::to_string(cut));
    }
  }
}

TEST(ColumnCodecCorruption, HeaderFieldMutationsFailCleanly) {
  const std::string full = EncodeSample(Pattern::kFewDistinct,
                                        DataType::kInt64);
  struct Mutation {
    size_t offset;
    char value;
    const char* what;
  };
  const Mutation mutations[] = {
      {0, 'X', "magic low byte"},
      {1, 'X', "magic high byte"},
      {2, 99, "version"},
      {4, 77, "codec id"},
      {5, 9, "type id"},
      {8, '\xff', "row count low byte"},
      {12, '\xff', "payload size low byte"},
      {16, '\x7f', "null bytes"},
  };
  for (const Mutation& m : mutations) {
    std::string bytes = full;
    ASSERT_LT(m.offset, bytes.size());
    bytes[m.offset] = m.value;
    ExpectCorruption(bytes, m.what);
  }
}

TEST(ColumnCodecCorruption, RlePayloadOverrunFailsCleanly) {
  // A constant column encodes as RLE; inflating the first run length
  // past the row count must be rejected, not write out of bounds.
  const ColumnVector col =
      MakeColumn(DataType::kDouble, Pattern::kConstant, Nulls::kNone, 100);
  std::string bytes;
  EncodeColumnBlock(col, 100, &bytes);
  ColumnBlockHeader h;
  {
    size_t pos = 0;
    auto peeked = PeekColumnBlockHeader(bytes.data(), bytes.size(), &pos);
    ASSERT_TRUE(peeked.ok());
    h = *peeked;
  }
  ASSERT_EQ(static_cast<ColumnCodec>(h.codec), ColumnCodec::kRle);
  // First payload field is the u32 run length; quadruple it.
  const size_t run_off = ColumnBlockHeader::kEncodedSize;
  uint32_t run = 0;
  std::memcpy(&run, bytes.data() + run_off, sizeof(run));
  run *= 4;
  std::memcpy(bytes.data() + run_off, &run, sizeof(run));
  ExpectCorruption(bytes, "inflated RLE run length");
}

TEST(ColumnCodecCorruption, DictIndexOutOfRangeFailsCleanly) {
  // A round-robin over 5 values has no runs, so the encoder lands on
  // the dictionary codec deterministically (width 3, indices 0..4).
  ColumnVector col;
  col.Reset(DataType::kDouble, 512);
  static const double kVals[5] = {1.5, -2.25, 3.75, 7.0, -0.5};
  for (size_t r = 0; r < 512; ++r) col.doubles[r] = kVals[r % 5];
  std::string bytes;
  EncodeColumnBlock(col, 512, &bytes);
  ColumnBlockHeader h;
  size_t payload = 0;
  {
    size_t pos = 0;
    auto peeked = PeekColumnBlockHeader(bytes.data(), bytes.size(), &pos);
    ASSERT_TRUE(peeked.ok());
    h = *peeked;
    payload = pos;
  }
  ASSERT_EQ(static_cast<ColumnCodec>(h.codec), ColumnCodec::kDict);
  uint32_t dict_size = 0;
  std::memcpy(&dict_size, bytes.data() + payload, sizeof(dict_size));
  ASSERT_EQ(dict_size, 5u);
  // Force the first packed index word to all-ones: index 7 >= 5 must
  // be rejected, not read past the dictionary.
  const size_t packed_off = payload + 4 + dict_size * 8;
  ASSERT_LT(packed_off, bytes.size());
  bytes[packed_off] = '\xff';
  ExpectCorruption(bytes, "dict index out of range");
}

TEST(ColumnCodecCorruption, GarbageBufferNeverDecodes) {
  // 64 deterministic garbage buffers of assorted sizes: none may
  // decode successfully, none may crash.
  uint64_t rng = 0xbadf00d;
  for (int i = 0; i < 64; ++i) {
    const size_t size = (Mix(&rng) % 4096) + 1;
    std::string bytes(size, '\0');
    for (char& c : bytes) c = static_cast<char>(Mix(&rng));
    ColumnVector col;
    size_t pos = 0;
    const Status s = DecodeColumnBlock(bytes.data(), bytes.size(), &pos, &col);
    // A garbage buffer virtually never carries the magic, but if it
    // does the structural checks behind it still apply; either way the
    // decode must return (not crash) and only OK when truly valid.
    if (s.ok()) {
      // Astronomically unlikely; if it ever happens, the decode must
      // at least have consumed a structurally complete block.
      EXPECT_LE(pos, bytes.size());
    }
  }
}

TEST(ColumnCodecPeek, SkipsBlocksWithoutDecoding) {
  // Peek must report the exact encoded extent so multi-column chunk
  // readers can skip non-projected columns.
  std::string stream;
  std::vector<size_t> sizes;
  for (const Pattern p : {Pattern::kConstant, Pattern::kRandom,
                          Pattern::kFewDistinct}) {
    const ColumnVector col = MakeColumn(DataType::kDouble, p,
                                        Nulls::kSparse, 300);
    sizes.push_back(EncodeColumnBlock(col, 300, &stream));
  }
  size_t pos = 0;
  for (const size_t expected : sizes) {
    size_t header_pos = pos;
    auto h = PeekColumnBlockHeader(stream.data(), stream.size(), &header_pos);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    EXPECT_EQ(ColumnBlockBytes(*h), expected);
    pos += ColumnBlockBytes(*h);
  }
  EXPECT_EQ(pos, stream.size());
}

}  // namespace
}  // namespace nlq::storage
