#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/strings.h"
#include "engine/database.h"
#include "stats/miner.h"
#include "stats/naive_bayes.h"
#include "stats/scoring.h"
#include "tests/test_util.h"

namespace nlq::stats {
namespace {

/// Two labeled Gaussian classes, loaded both in-memory and as a table
/// X(i, j, X1, X2) so the DB-driven path can be exercised.
class NaiveBayesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = nlq::testing::MakeTestDatabase();
    NLQ_ASSERT_OK(db_->ExecuteCommand(
        "CREATE TABLE X (i BIGINT, j BIGINT, X1 DOUBLE, X2 DOUBLE)"));
    Random rng(42);
    int64_t id = 0;
    for (int64_t label : {10, 20}) {  // non-contiguous labels on purpose
      const double center = label == 10 ? 0.0 : 8.0;
      for (int i = 0; i < 400; ++i) {
        const double x1 = rng.NextGaussian(center, 1.0);
        const double x2 = rng.NextGaussian(-center, 2.0);
        NLQ_ASSERT_OK(db_->ExecuteCommand(StringPrintf(
            "INSERT INTO X VALUES (%lld, %lld, %.17g, %.17g)",
            static_cast<long long>(++id), static_cast<long long>(label), x1,
            x2)));
        points_.push_back({x1, x2});
        labels_.push_back(label);
      }
    }
  }

  NaiveBayesModel Train() {
    WarehouseMiner miner(db_.get());
    auto groups = miner.ComputeGroupedSufStats(
        "X", DimensionColumns(2), MatrixKind::kDiagonal,
        ComputeVia::kUdfList, "j");
    EXPECT_TRUE(groups.ok()) << groups.status().ToString();
    auto model = FitNaiveBayes(*groups);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    return std::move(model).value();
  }

  std::unique_ptr<engine::Database> db_;
  std::vector<linalg::Vector> points_;
  std::vector<int64_t> labels_;
};

TEST_F(NaiveBayesTest, OneGroupedScanTrainsAccurateClassifier) {
  const NaiveBayesModel model = Train();
  EXPECT_EQ(model.k, 2u);
  EXPECT_EQ(model.d, 2u);
  EXPECT_EQ(model.class_labels[0], 10);
  EXPECT_EQ(model.class_labels[1], 20);
  EXPECT_NEAR(model.priors[0], 0.5, 1e-9);

  size_t correct = 0;
  for (size_t i = 0; i < points_.size(); ++i) {
    correct += model.PredictLabel(points_[i].data()) == labels_[i];
  }
  // 8-sigma separation: essentially perfect training accuracy.
  EXPECT_GT(static_cast<double>(correct) / points_.size(), 0.99);
}

TEST_F(NaiveBayesTest, RecoveredParametersMatchGenerator) {
  const NaiveBayesModel model = Train();
  EXPECT_NEAR(model.means(0, 0), 0.0, 0.2);
  EXPECT_NEAR(model.means(1, 0), 8.0, 0.2);
  EXPECT_NEAR(model.variances(0, 0), 1.0, 0.3);
  EXPECT_NEAR(model.variances(0, 1), 4.0, 0.8);
}

TEST_F(NaiveBayesTest, InEngineScoringMatchesClientSideModel) {
  // gaussnll is part of RegisterAllStatsUdfs, already installed.
  const NaiveBayesModel model = Train();
  NLQ_ASSERT_OK(StoreNaiveBayesTable(db_.get(), "NB", model));
  NLQ_ASSERT_OK(db_->ExecuteCommand(
      "CREATE TABLE SCORED AS " +
      NaiveBayesScoreUdfQuery("X", "NB", 2, model.k)));

  auto scored = db_->Execute("SELECT i, j FROM SCORED ORDER BY i");
  ASSERT_TRUE(scored.ok()) << scored.status().ToString();
  ASSERT_EQ(scored->num_rows(), points_.size());
  for (size_t r = 0; r < points_.size(); ++r) {
    const size_t predicted_index =
        static_cast<size_t>(scored->At(r, 1).int_value()) - 1;  // 1-based
    EXPECT_EQ(predicted_index, model.Classify(points_[r].data()))
        << "row " << r;
  }
}

TEST_F(NaiveBayesTest, PriorsReflectClassImbalance) {
  // Remove most of class 20 and retrain via SQL-grouped stats.
  NLQ_ASSERT_OK(db_->ExecuteCommand(
      "CREATE TABLE XS AS SELECT * FROM X WHERE j = 10 OR i % 10 = 0"));
  WarehouseMiner miner(db_.get());
  NLQ_ASSERT_OK_AND_ASSIGN(
      auto groups, miner.ComputeGroupedSufStats(
                       "XS", DimensionColumns(2), MatrixKind::kDiagonal,
                       ComputeVia::kSql, "j"));
  NLQ_ASSERT_OK_AND_ASSIGN(NaiveBayesModel model, FitNaiveBayes(groups));
  EXPECT_GT(model.priors[0], 0.8);
  EXPECT_NEAR(model.priors[0] + model.priors[1], 1.0, 1e-9);
}

TEST_F(NaiveBayesTest, ErrorCases) {
  EXPECT_FALSE(FitNaiveBayes({}).ok());
  std::map<int64_t, SufStats> mismatched;
  mismatched.emplace(1, SufStats(2, MatrixKind::kDiagonal));
  EXPECT_FALSE(FitNaiveBayes(mismatched).ok());  // class with no rows
  SufStats two(2, MatrixKind::kDiagonal);
  two.Update(std::vector<double>{1, 2});
  SufStats three(3, MatrixKind::kDiagonal);
  three.Update(std::vector<double>{1, 2, 3});
  std::map<int64_t, SufStats> wrong_d;
  wrong_d.emplace(1, two);
  wrong_d.emplace(2, three);
  EXPECT_FALSE(FitNaiveBayes(wrong_d).ok());
}

TEST_F(NaiveBayesTest, GaussNllUdfValidation) {
  // d=1: x=0, mu=0, var=1 -> 0.5*log(2*pi) ~ 0.9189.
  NLQ_ASSERT_OK_AND_ASSIGN(double nll,
                           db_->QueryDouble("SELECT gaussnll(0, 0, 1)"));
  EXPECT_NEAR(nll, 0.9189385332046727, 1e-12);
  EXPECT_FALSE(db_->Execute("SELECT gaussnll(0, 0)").ok());
  EXPECT_FALSE(db_->Execute("SELECT gaussnll(0, 0, 0)").ok());  // var <= 0
}

TEST_F(NaiveBayesTest, HavingFiltersSmallClasses) {
  // HAVING (new engine feature) composes with the grouped stats flow:
  // keep only classes with enough support.
  auto result = db_->Execute(
      "SELECT j, count(*) AS support FROM X GROUP BY j "
      "HAVING count(*) >= 100 ORDER BY j");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 2u);
  auto none = db_->Execute(
      "SELECT j FROM X GROUP BY j HAVING count(*) > 100000");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->num_rows(), 0u);
}


TEST_F(NaiveBayesTest, SqlScoringMatchesUdfScoring) {
  const NaiveBayesModel model = Train();
  NLQ_ASSERT_OK(StoreNaiveBayesTable(db_.get(), "NB", model));

  // UDF path: one scan.
  NLQ_ASSERT_OK(db_->ExecuteCommand(
      "CREATE TABLE S_UDF AS " +
      NaiveBayesScoreUdfQuery("X", "NB", 2, model.k)));
  // SQL path: two scans (log-joint arithmetic, then CASE argmin) —
  // the same structure as the paper's clustering SQL.
  NLQ_ASSERT_OK(db_->ExecuteCommand(
      "CREATE TABLE S_NLL AS " +
      NaiveBayesNllSqlQuery("X", "NB", 2, model.k)));
  NLQ_ASSERT_OK(db_->ExecuteCommand(
      "CREATE TABLE S_SQL AS " + KMeansAssignSqlQuery("S_NLL", model.k)));

  auto udf = db_->Execute("SELECT i, j FROM S_UDF ORDER BY i");
  auto sql = db_->Execute("SELECT i, j FROM S_SQL ORDER BY i");
  ASSERT_TRUE(udf.ok() && sql.ok());
  ASSERT_EQ(udf->num_rows(), sql->num_rows());
  for (size_t r = 0; r < udf->num_rows(); ++r) {
    EXPECT_EQ(udf->At(r, 1).int_value(), sql->At(r, 1).int_value())
        << "row " << r;
  }
}

}  // namespace
}  // namespace nlq::stats
