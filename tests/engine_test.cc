#include <gtest/gtest.h>

#include <set>

#include "engine/database.h"
#include "tests/test_util.h"

namespace nlq::engine {
namespace {

using storage::DataType;

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = nlq::testing::MakeTestDatabase(); }

  void Exec(const std::string& sql) {
    auto result = db_->Execute(sql);
    ASSERT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
  }

  ResultSet Query(const std::string& sql) {
    auto result = db_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
    return result.ok() ? std::move(result).value() : ResultSet();
  }

  void LoadSmallTable() {
    Exec("CREATE TABLE t (i BIGINT, a DOUBLE, b DOUBLE)");
    Exec("INSERT INTO t VALUES (1, 1.0, 10.0), (2, 2.0, 20.0), "
         "(3, 3.0, 30.0), (4, 4.0, 40.0)");
  }

  std::unique_ptr<Database> db_;
};

// ---------------------------------------------------------------------------
// Constants / no FROM
// ---------------------------------------------------------------------------

TEST_F(EngineTest, ConstantSelect) {
  const ResultSet r = Query("SELECT 1 + 2 * 3 AS v, 'abc', NULL");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.At(0, 0).int_value(), 7);
  EXPECT_EQ(r.At(0, 1).string_value(), "abc");
  EXPECT_TRUE(r.At(0, 2).is_null());
  EXPECT_EQ(r.schema().column(0).name, "v");
}

TEST_F(EngineTest, BuiltinScalarFunctions) {
  const ResultSet r = Query(
      "SELECT sqrt(16), abs(-3.5), power(2, 10), mod(10, 3), floor(2.7), "
      "ceil(2.1), round(2.5), least(3, 1, 2), greatest(3, 1, 2), "
      "coalesce(NULL, NULL, 9), exp(0), ln(1)");
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 1), 3.5);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 2), 1024.0);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 4), 2.0);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 5), 3.0);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 6), 3.0);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 7), 1.0);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 8), 3.0);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 9), 9.0);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 10), 1.0);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 11), 0.0);
}

TEST_F(EngineTest, NullSemantics) {
  const ResultSet r = Query(
      "SELECT 1 + NULL, NULL = NULL, 1 / 0, sqrt(-1), ln(0), "
      "NULL IS NULL, 1 IS NOT NULL");
  EXPECT_TRUE(r.At(0, 0).is_null());   // arithmetic with NULL
  EXPECT_TRUE(r.At(0, 1).is_null());   // comparison with NULL is unknown
  EXPECT_TRUE(r.At(0, 2).is_null());   // division by zero
  EXPECT_TRUE(r.At(0, 3).is_null());   // domain error
  EXPECT_TRUE(r.At(0, 4).is_null());
  EXPECT_EQ(r.At(0, 5).int_value(), 1);
  EXPECT_EQ(r.At(0, 6).int_value(), 1);
}

TEST_F(EngineTest, ThreeValuedLogic) {
  const ResultSet r = Query(
      "SELECT NULL AND 0, NULL AND 1, NULL OR 1, NULL OR 0, NOT NULL");
  EXPECT_EQ(r.At(0, 0).int_value(), 0);  // unknown AND false = false
  EXPECT_TRUE(r.At(0, 1).is_null());     // unknown AND true = unknown
  EXPECT_EQ(r.At(0, 2).int_value(), 1);  // unknown OR true = true
  EXPECT_TRUE(r.At(0, 3).is_null());
  EXPECT_TRUE(r.At(0, 4).is_null());  // NOT unknown = unknown
}

// ---------------------------------------------------------------------------
// Basic scans, WHERE, projections
// ---------------------------------------------------------------------------

TEST_F(EngineTest, ScanWithProjectionAndFilter) {
  LoadSmallTable();
  const ResultSet r =
      Query("SELECT i, a * b FROM t WHERE a >= 2 AND b < 40 ORDER BY i");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.At(0, 0).int_value(), 2);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 1), 40.0);
  EXPECT_DOUBLE_EQ(r.GetDouble(1, 1), 90.0);
}

TEST_F(EngineTest, SelectStar) {
  LoadSmallTable();
  const ResultSet r = Query("SELECT * FROM t ORDER BY i");
  ASSERT_EQ(r.num_rows(), 4u);
  ASSERT_EQ(r.num_columns(), 3u);
  EXPECT_DOUBLE_EQ(r.GetDouble(3, 2), 40.0);
}

TEST_F(EngineTest, CaseExpression) {
  LoadSmallTable();
  const ResultSet r = Query(
      "SELECT i, CASE WHEN a <= 2 THEN 'low' ELSE 'high' END FROM t "
      "ORDER BY i");
  EXPECT_EQ(r.At(0, 1).string_value(), "low");
  EXPECT_EQ(r.At(3, 1).string_value(), "high");
}

TEST_F(EngineTest, OrderByDescendingAndPositional) {
  LoadSmallTable();
  const ResultSet r = Query("SELECT i, a FROM t ORDER BY 2 DESC");
  EXPECT_EQ(r.At(0, 0).int_value(), 4);
  EXPECT_EQ(r.At(3, 0).int_value(), 1);
}

TEST_F(EngineTest, Limit) {
  LoadSmallTable();
  const ResultSet r = Query("SELECT i FROM t ORDER BY i LIMIT 2");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.At(1, 0).int_value(), 2);
}

TEST_F(EngineTest, ModuloInWhere) {
  LoadSmallTable();
  const ResultSet r = Query("SELECT i FROM t WHERE i % 2 = 0 ORDER BY i");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.At(0, 0).int_value(), 2);
  EXPECT_EQ(r.At(1, 0).int_value(), 4);
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

TEST_F(EngineTest, GlobalAggregates) {
  LoadSmallTable();
  const ResultSet r = Query(
      "SELECT count(*), count(a), sum(a), avg(a), min(a), max(b), "
      "sum(a * b) FROM t");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.At(0, 0).int_value(), 4);
  EXPECT_EQ(r.At(0, 1).int_value(), 4);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 2), 10.0);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 3), 2.5);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 4), 1.0);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 5), 40.0);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 6), 300.0);
}

TEST_F(EngineTest, AggregatesIgnoreNulls) {
  Exec("CREATE TABLE n (i BIGINT, v DOUBLE)");
  Exec("INSERT INTO n VALUES (1, 10), (2, NULL), (3, 20)");
  const ResultSet r = Query("SELECT count(*), count(v), sum(v), avg(v) FROM n");
  EXPECT_EQ(r.At(0, 0).int_value(), 3);
  EXPECT_EQ(r.At(0, 1).int_value(), 2);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 2), 30.0);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 3), 15.0);
}

TEST_F(EngineTest, EmptyInputAggregates) {
  Exec("CREATE TABLE e (v DOUBLE)");
  const ResultSet r = Query("SELECT count(*), sum(v), min(v) FROM e");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.At(0, 0).int_value(), 0);
  EXPECT_TRUE(r.At(0, 1).is_null());
  EXPECT_TRUE(r.At(0, 2).is_null());
}

TEST_F(EngineTest, GroupByWithExpressions) {
  LoadSmallTable();
  const ResultSet r = Query(
      "SELECT i % 2 AS parity, count(*) AS c, sum(a) AS s FROM t "
      "GROUP BY i % 2 ORDER BY parity");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.At(0, 0).int_value(), 0);
  EXPECT_EQ(r.At(0, 1).int_value(), 2);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 2), 6.0);  // 2 + 4
  EXPECT_DOUBLE_EQ(r.GetDouble(1, 2), 4.0);  // 1 + 3
}

TEST_F(EngineTest, MixedKeyAndAggregateExpression) {
  LoadSmallTable();
  const ResultSet r = Query(
      "SELECT i % 2, sum(a) / count(a) + (i % 2) AS blended FROM t "
      "GROUP BY i % 2 ORDER BY 1");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 1), 3.0);  // 6/2 + 0
  EXPECT_DOUBLE_EQ(r.GetDouble(1, 1), 3.0);  // 4/2 + 1
}

TEST_F(EngineTest, GroupByIsPartitionInvariant) {
  for (size_t parts : {1u, 3u, 8u}) {
    auto db = nlq::testing::MakeTestDatabase(parts);
    NLQ_ASSERT_OK(db->ExecuteCommand("CREATE TABLE g (i BIGINT, v DOUBLE)"));
    for (int i = 1; i <= 100; ++i) {
      NLQ_ASSERT_OK(db->ExecuteCommand(
          "INSERT INTO g VALUES (" + std::to_string(i) + ", " +
          std::to_string(i * 0.5) + ")"));
    }
    auto r = db->Execute("SELECT i % 7, sum(v), count(*) FROM g GROUP BY i % 7 ORDER BY 1");
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->num_rows(), 7u);
    double total = 0;
    int64_t count = 0;
    for (size_t row = 0; row < 7; ++row) {
      total += r->GetDouble(row, 1);
      count += r->At(row, 2).int_value();
    }
    EXPECT_DOUBLE_EQ(total, 2525.0);
    EXPECT_EQ(count, 100);
  }
}

TEST_F(EngineTest, NonGroupedColumnRejected) {
  LoadSmallTable();
  EXPECT_FALSE(db_->Execute("SELECT a, sum(b) FROM t").ok());
  EXPECT_FALSE(db_->Execute("SELECT i, sum(a) FROM t GROUP BY a").ok());
}

TEST_F(EngineTest, AggregateInWhereRejected) {
  LoadSmallTable();
  EXPECT_FALSE(db_->Execute("SELECT i FROM t WHERE sum(a) > 1").ok());
}

TEST_F(EngineTest, NestedAggregateRejected) {
  LoadSmallTable();
  EXPECT_FALSE(db_->Execute("SELECT sum(sum(a)) FROM t").ok());
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

TEST_F(EngineTest, CrossJoinWithSingleRowTable) {
  LoadSmallTable();
  Exec("CREATE TABLE scale (f DOUBLE)");
  Exec("INSERT INTO scale VALUES (10.0)");
  const ResultSet r = Query("SELECT i, a * f FROM t, scale ORDER BY i");
  ASSERT_EQ(r.num_rows(), 4u);
  EXPECT_DOUBLE_EQ(r.GetDouble(3, 1), 40.0);
}

TEST_F(EngineTest, CrossJoinCardinality) {
  LoadSmallTable();
  Exec("CREATE TABLE u (j BIGINT)");
  Exec("INSERT INTO u VALUES (1), (2), (3)");
  const ResultSet r = Query("SELECT i, j FROM t, u");
  EXPECT_EQ(r.num_rows(), 12u);
}

TEST_F(EngineTest, AliasedSelfJoinWithPushdown) {
  LoadSmallTable();
  Exec("CREATE TABLE m (j BIGINT, c DOUBLE)");
  Exec("INSERT INTO m VALUES (1, 100), (2, 200), (3, 300)");
  // The paper's scoring pattern: several aliased copies pinned by
  // j = const predicates (these must be pushed down, not exploded).
  const ResultSet r = Query(
      "SELECT i, m1.c + m2.c FROM t, m m1, m m2 "
      "WHERE m1.j = 1 AND m2.j = 3 ORDER BY i");
  ASSERT_EQ(r.num_rows(), 4u);
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 1), 400.0);
}

TEST_F(EngineTest, AmbiguousColumnRejected) {
  LoadSmallTable();
  Exec("CREATE TABLE t2 (i BIGINT, z DOUBLE)");
  Exec("INSERT INTO t2 VALUES (9, 1)");
  EXPECT_FALSE(db_->Execute("SELECT i FROM t, t2").ok());
  // Qualified access works.
  const ResultSet r = Query("SELECT t2.i FROM t, t2");
  EXPECT_EQ(r.num_rows(), 4u);
}

TEST_F(EngineTest, EmptySmallTableEmptiesCrossProduct) {
  LoadSmallTable();
  Exec("CREATE TABLE empty_m (j BIGINT)");
  const ResultSet r = Query("SELECT i FROM t, empty_m");
  EXPECT_EQ(r.num_rows(), 0u);
}

// ---------------------------------------------------------------------------
// DDL / DML
// ---------------------------------------------------------------------------

TEST_F(EngineTest, CreateTableAsSelect) {
  LoadSmallTable();
  Exec("CREATE TABLE squares AS SELECT i, a * a AS a2 FROM t");
  const ResultSet r = Query("SELECT sum(a2) FROM squares");
  EXPECT_DOUBLE_EQ(r.GetDouble(0, 0), 30.0);
}

TEST_F(EngineTest, InsertSelect) {
  LoadSmallTable();
  Exec("CREATE TABLE copy (i BIGINT, a DOUBLE, b DOUBLE)");
  Exec("INSERT INTO copy SELECT i, a, b FROM t WHERE a > 2");
  const ResultSet r = Query("SELECT count(*) FROM copy");
  EXPECT_EQ(r.At(0, 0).int_value(), 2);
}

TEST_F(EngineTest, InsertCoercesNumericTypes) {
  Exec("CREATE TABLE c (i BIGINT, v DOUBLE)");
  Exec("INSERT INTO c VALUES (1.0, 5)");  // double -> bigint, int -> double
  const ResultSet r = Query("SELECT i, v FROM c");
  EXPECT_EQ(r.At(0, 0).type(), DataType::kInt64);
  EXPECT_EQ(r.At(0, 1).type(), DataType::kDouble);
}

TEST_F(EngineTest, DropTableRemoves) {
  LoadSmallTable();
  Exec("DROP TABLE t");
  EXPECT_FALSE(db_->Execute("SELECT 1 FROM t").ok());
}

TEST_F(EngineTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(db_->Execute("SELECT 1 FROM missing").ok());
  LoadSmallTable();
  EXPECT_FALSE(db_->Execute("SELECT nope FROM t").ok());
  EXPECT_FALSE(db_->Execute("SELECT unknown_fn(a) FROM t").ok());
  EXPECT_FALSE(db_->Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(db_->Execute("CREATE TABLE t (x DOUBLE)").ok());
}

TEST_F(EngineTest, QueryDoubleHelper) {
  LoadSmallTable();
  NLQ_ASSERT_OK_AND_ASSIGN(double v, db_->QueryDouble("SELECT sum(a) FROM t"));
  EXPECT_DOUBLE_EQ(v, 10.0);
  EXPECT_FALSE(db_->QueryDouble("SELECT i FROM t").ok());
}

// ---------------------------------------------------------------------------
// Parallelism sanity: results identical across thread counts
// ---------------------------------------------------------------------------

class ParallelismTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelismTest, SameResultAnyPartitionCount) {
  auto db = nlq::testing::MakeTestDatabase(GetParam());
  NLQ_ASSERT_OK(db->ExecuteCommand("CREATE TABLE p (i BIGINT, v DOUBLE)"));
  for (int i = 1; i <= 500; ++i) {
    NLQ_ASSERT_OK(db->ExecuteCommand("INSERT INTO p VALUES (" +
                                     std::to_string(i) + ", " +
                                     std::to_string(i) + ")"));
  }
  NLQ_ASSERT_OK_AND_ASSIGN(double sum,
                           db->QueryDouble("SELECT sum(v) FROM p"));
  EXPECT_DOUBLE_EQ(sum, 125250.0);
  NLQ_ASSERT_OK_AND_ASSIGN(
      double filtered,
      db->QueryDouble("SELECT count(*) FROM p WHERE v > 250"));
  EXPECT_DOUBLE_EQ(filtered, 250.0);
}

INSTANTIATE_TEST_SUITE_P(Partitions, ParallelismTest,
                         ::testing::Values(1, 2, 4, 8, 16, 20));

}  // namespace
}  // namespace nlq::engine
