// Unit tests for the expression bytecode layer (engine/exec/bytecode.h):
// compilation and constant folding, NULL/3VL semantics, bit-exact parity
// between the compiled VM (rows and spans) and the interpreted evaluator,
// fallback rules, and the compile cache with its process counters.

#include "engine/exec/bytecode.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "engine/database.h"
#include "engine/exec/column_stream.h"
#include "engine/expr.h"
#include "engine/parser.h"
#include "storage/schema.h"
#include "storage/value.h"
#include "tests/test_util.h"

namespace nlq::engine::exec {
namespace {

using storage::DataType;
using storage::Datum;
using storage::Row;

// Test relation: x, y DOUBLE; i, j BIGINT; s VARCHAR (never compiles).
// Rows exercise every soft-error and NULL edge the ISA defines.
class BytecodeTest : public ::testing::Test {
 protected:
  BytecodeTest()
      : schema_({{"x", DataType::kDouble},
                 {"y", DataType::kDouble},
                 {"i", DataType::kInt64},
                 {"j", DataType::kInt64},
                 {"s", DataType::kVarchar}}) {
    db_ = nlq::testing::MakeTestDatabase(/*num_partitions=*/1);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    rows_ = {
        {Datum::Double(2.5), Datum::Double(4.0), Datum::Int64(7),
         Datum::Int64(3), Datum::Varchar("a")},
        {Datum::Double(-9.0), Datum::Double(0.0), Datum::Int64(-5),
         Datum::Int64(0), Datum::Varchar("b")},
        {Datum::Null(DataType::kDouble), Datum::Double(1.5), Datum::Int64(0),
         Datum::Null(DataType::kInt64), Datum::Varchar("c")},
        {Datum::Double(nan), Datum::Double(2.0), Datum::Int64(42),
         Datum::Int64(-4), Datum::Varchar("d")},
        {Datum::Double(0.0), Datum::Null(DataType::kDouble), Datum::Int64(1),
         Datum::Int64(1), Datum::Varchar("e")},
    };
  }

  BoundExprPtr Bind(const std::string& text) {
    auto parsed = ParseExpression(text);
    EXPECT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    if (!parsed.ok()) return nullptr;
    BindingScope scope;
    scope.AddTable("T", &schema_);
    auto bound = BindRowExpr(*parsed.value(), scope, &db_->udfs());
    EXPECT_TRUE(bound.ok()) << text << ": " << bound.status().ToString();
    return bound.ok() ? std::move(bound.value()) : nullptr;
  }

  CompiledExprPtr Compile(const std::string& text) {
    BoundExprPtr bound = Bind(text);
    return bound ? CompileExpr(*bound, /*cache=*/nullptr) : nullptr;
  }

  /// Asserts two Datums are indistinguishable, comparing doubles by bit
  /// pattern so -0.0 vs 0.0 or differing NaN payloads fail.
  static void ExpectSameDatum(const Datum& a, const Datum& b,
                              const std::string& what) {
    ASSERT_EQ(a.type(), b.type()) << what;
    ASSERT_EQ(a.is_null(), b.is_null()) << what;
    if (a.is_null()) return;
    if (a.type() == DataType::kDouble) {
      uint64_t abits = 0, bbits = 0;
      const double ad = a.double_value(), bd = b.double_value();
      std::memcpy(&abits, &ad, sizeof(abits));
      std::memcpy(&bbits, &bd, sizeof(bbits));
      EXPECT_EQ(abits, bbits) << what;
    } else if (a.type() == DataType::kInt64) {
      EXPECT_EQ(a.int_value(), b.int_value()) << what;
    } else {
      EXPECT_EQ(a.string_value(), b.string_value()) << what;
    }
  }

  /// The central check: interpreted Eval, compiled EvalRows, and
  /// compiled EvalSpans all produce identical Datums on every row.
  void ExpectParity(const std::string& text) {
    SCOPED_TRACE(text);
    BoundExprPtr bound = Bind(text);
    ASSERT_NE(bound, nullptr);
    CompiledExprPtr prog = CompileExpr(*bound, /*cache=*/nullptr);
    ASSERT_NE(prog, nullptr) << "expected \"" << text << "\" to compile";

    const size_t n = rows_.size();
    std::vector<Datum> interpreted(n);
    Status error;
    EvalContext ctx;
    ctx.error = &error;
    for (size_t r = 0; r < n; ++r) {
      ctx.input = &rows_[r];
      interpreted[r] = bound->Eval(ctx);
    }
    NLQ_ASSERT_OK(error);

    ExprVM vm;
    std::vector<Datum> via_rows(n);
    vm.EvalRows(*prog, rows_.data(), n);
    vm.BoxResult(*prog, n, via_rows.data());

    std::vector<Datum> via_spans(n);
    SpanData spans = BuildSpans(*prog, n);
    vm.EvalSpans(*prog, spans.batch, spans.slot_to_col, n);
    vm.BoxResult(*prog, n, via_spans.data());

    for (size_t r = 0; r < n; ++r) {
      const std::string at = text + " @row " + std::to_string(r);
      ExpectSameDatum(interpreted[r], via_rows[r], at + " (rows)");
      ExpectSameDatum(interpreted[r], via_spans[r], at + " (spans)");
    }
  }

  /// Columnar copy of rows_ holding exactly the program's referenced
  /// slots, with null bitmaps, as ColumnarScan would produce them.
  struct SpanData {
    ColumnSpanBatch batch;
    std::vector<int> slot_to_col;
    std::vector<std::vector<double>> dbufs;
    std::vector<std::vector<int64_t>> ibufs;
    std::vector<std::vector<uint64_t>> nbufs;
  };

  SpanData BuildSpans(const CompiledExpr& prog, size_t n) const {
    SpanData out;
    out.slot_to_col.assign(schema_.num_columns(), -1);
    out.batch.rows = n;
    for (const size_t slot : prog.referenced_slots()) {
      const DataType type = schema_.column(slot).type;
      out.slot_to_col[slot] = static_cast<int>(out.batch.doubles.size());
      auto& dbuf = out.dbufs.emplace_back(n, 0.0);
      auto& ibuf = out.ibufs.emplace_back(n, 0);
      auto& nbuf = out.nbufs.emplace_back((n + 63) / 64, 0);
      bool has_nulls = false;
      for (size_t r = 0; r < n; ++r) {
        const Datum& v = rows_[r][slot];
        if (v.is_null()) {
          nbuf[r / 64] |= uint64_t{1} << (r % 64);
          has_nulls = true;
        } else if (type == DataType::kDouble) {
          dbuf[r] = v.double_value();
        } else {
          ibuf[r] = v.int_value();
        }
      }
      out.batch.doubles.push_back(type == DataType::kDouble ? dbuf.data()
                                                            : nullptr);
      out.batch.ints.push_back(type == DataType::kInt64 ? ibuf.data()
                                                        : nullptr);
      out.batch.null_bits.push_back(has_nulls ? nbuf.data() : nullptr);
    }
    return out;
  }

  storage::Schema schema_;
  std::unique_ptr<Database> db_;
  std::vector<Row> rows_;
};

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

TEST_F(BytecodeTest, FoldsConstantSubtreeIntoOneLoad) {
  // x * (1 + 0.07) -> load x, load-const 1.07, mul: the constant
  // subtree never becomes instructions of its own.
  CompiledExprPtr prog = Compile("x * (1 + 0.07)");
  ASSERT_NE(prog, nullptr);
  ASSERT_EQ(prog->num_instructions(), 3u);
  const auto& in = prog->instructions();
  EXPECT_EQ(in[0].op, OpCode::kLoadCol);
  EXPECT_EQ(in[1].op, OpCode::kLoadConst);
  EXPECT_DOUBLE_EQ(in[1].const_d, 1.07);
  EXPECT_EQ(in[2].op, OpCode::kMulD);
  EXPECT_EQ(prog->result_type(), DataType::kDouble);
}

TEST_F(BytecodeTest, FoldsFullyConstantExpressionToSingleConst) {
  CompiledExprPtr prog = Compile("1 + 2 * 3");
  ASSERT_NE(prog, nullptr);
  ASSERT_EQ(prog->num_instructions(), 1u);
  EXPECT_EQ(prog->instructions()[0].op, OpCode::kLoadConst);
  EXPECT_EQ(prog->instructions()[0].const_i, 7);
  EXPECT_EQ(prog->result_type(), DataType::kInt64);
  EXPECT_TRUE(prog->referenced_slots().empty());
}

TEST_F(BytecodeTest, FoldingUsesVmSoftErrorSemantics) {
  // Folding evaluates the VM's own opcodes, so a constant division by
  // zero folds to a NULL constant instead of failing the compile.
  for (const char* text : {"1.0 / 0.0", "sqrt(0.0 - 4.0)", "5 % 0"}) {
    SCOPED_TRACE(text);
    CompiledExprPtr prog = Compile(text);
    ASSERT_NE(prog, nullptr);
    ASSERT_EQ(prog->num_instructions(), 1u);
    EXPECT_EQ(prog->instructions()[0].op, OpCode::kLoadConst);
    EXPECT_TRUE(prog->instructions()[0].const_null);
  }
}

// ---------------------------------------------------------------------------
// Compiled == interpreted, row path and span path, bit for bit
// ---------------------------------------------------------------------------

TEST_F(BytecodeTest, ArithmeticParity) {
  ExpectParity("x + y");
  ExpectParity("x - y * 2.0");
  ExpectParity("-x");
  ExpectParity("i + j");
  ExpectParity("i * j - 4");
  ExpectParity("-i");
  ExpectParity("x + i");  // int operand widens to double
}

TEST_F(BytecodeTest, SoftErrorsYieldNullParity) {
  ExpectParity("x / y");    // row 1 divides by zero
  ExpectParity("i % j");    // row 1 mods by zero
  ExpectParity("sqrt(x)");  // row 1 is negative
  ExpectParity("ln(x)");    // rows 1 and 4 are <= 0
  ExpectParity("mod(x, y)");
}

TEST_F(BytecodeTest, ComparisonParity) {
  ExpectParity("x = y");
  ExpectParity("x <> y");
  ExpectParity("x < y");
  ExpectParity("x <= y");
  ExpectParity("i > j");
  ExpectParity("i >= x");  // mixed int/double goes through double
}

TEST_F(BytecodeTest, ThreeValuedLogicParity) {
  ExpectParity("x > 0 AND y > 0");  // NULL AND false = false
  ExpectParity("x > 0 OR y > 0");   // NULL OR true = true
  ExpectParity("NOT (x > 0)");
  ExpectParity("x IS NULL");
  ExpectParity("x IS NOT NULL");
  ExpectParity("j IS NULL AND x IS NOT NULL");
}

TEST_F(BytecodeTest, ScalarFunctionParity) {
  ExpectParity("abs(x)");
  ExpectParity("exp(y)");
  ExpectParity("floor(x)");
  ExpectParity("ceil(x)");
  ExpectParity("round(x)");
  ExpectParity("power(x, 2)");
  ExpectParity("power(x, y)");
}

TEST_F(BytecodeTest, LeastGreatestCoalesceParity) {
  // Row 3 puts a NaN into x: least/greatest must pick exactly the
  // operand the interpreter picks.
  ExpectParity("least(x, y)");
  ExpectParity("greatest(x, y)");
  ExpectParity("least(x, y, 1.0)");
  ExpectParity("coalesce(x, y)");
  ExpectParity("coalesce(x, y, 0.0)");
}

TEST_F(BytecodeTest, CaseParity) {
  // Row 2's NULL condition takes the ELSE branch, like the interpreter.
  ExpectParity("CASE WHEN x > 0 THEN x ELSE y END");
  ExpectParity("CASE WHEN x > 0 THEN 1 WHEN y > 0 THEN 2 ELSE 3 END");
  ExpectParity("CASE WHEN i % 2 = 0 THEN x + y ELSE x - y END");
}

// ---------------------------------------------------------------------------
// Fallback: constructs the bytecode cannot express return nullptr
// ---------------------------------------------------------------------------

TEST_F(BytecodeTest, UncompilableConstructsFallBackToInterpreter) {
  EXPECT_EQ(Compile("s"), nullptr);                  // VARCHAR column
  EXPECT_EQ(Compile("s IS NULL"), nullptr);          // VARCHAR operand
  EXPECT_EQ(Compile("pack_point(x)"), nullptr);      // scalar UDF
  EXPECT_EQ(Compile("coalesce(i, x)"), nullptr);     // mixed-type coalesce
  // ...while the numeric twin compiles.
  EXPECT_NE(Compile("coalesce(x, y)"), nullptr);
}

// ---------------------------------------------------------------------------
// Compile cache: dedup by serialized program, process counters
// ---------------------------------------------------------------------------

TEST_F(BytecodeTest, CacheDeduplicatesIdenticalProgramsAndCounts) {
  auto& compiles = MetricsRegistry::Global().counter("bytecode.compiles");
  auto& hits = MetricsRegistry::Global().counter("bytecode.cache_hits");
  const uint64_t compiles_before = compiles.Value();
  const uint64_t hits_before = hits.Value();

  BytecodeCache cache;
  BoundExprPtr a = Bind("x + y * 2.0");
  BoundExprPtr b = Bind("x + y * 2.0");
  BoundExprPtr c = Bind("x - y");
  ASSERT_TRUE(a && b && c);

  CompiledExprPtr pa = CompileExpr(*a, &cache);
  CompiledExprPtr pb = CompileExpr(*b, &cache);
  ASSERT_NE(pa, nullptr);
  // Identical instruction streams share one cache entry (same object).
  EXPECT_EQ(pa.get(), pb.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(compiles.Value() - compiles_before, 1u);
  EXPECT_EQ(hits.Value() - hits_before, 1u);

  CompiledExprPtr pc = CompileExpr(*c, &cache);
  ASSERT_NE(pc, nullptr);
  EXPECT_NE(pc.get(), pa.get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(compiles.Value() - compiles_before, 2u);
  EXPECT_EQ(hits.Value() - hits_before, 1u);
}

TEST_F(BytecodeTest, CacheKeyDistinguishesConstants) {
  BytecodeCache cache;
  BoundExprPtr a = Bind("x * 2.0");
  BoundExprPtr b = Bind("x * 3.0");
  ASSERT_TRUE(a && b);
  CompiledExprPtr pa = CompileExpr(*a, &cache);
  CompiledExprPtr pb = CompileExpr(*b, &cache);
  ASSERT_TRUE(pa && pb);
  EXPECT_NE(pa->cache_key(), pb->cache_key());
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace nlq::engine::exec
