#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "stats/pca.h"
#include "stats/sufstats.h"
#include "tests/test_util.h"

namespace nlq::stats {
namespace {

/// Data with a dominant direction: x = t * dir + small noise.
SufStats MakeLowRankStats(size_t d, size_t n, uint64_t seed,
                          linalg::Vector* dominant_direction) {
  Random rng(seed);
  linalg::Vector dir(d);
  double norm = 0;
  for (auto& v : dir) {
    v = rng.NextUniform(-1, 1);
    norm += v * v;
  }
  norm = std::sqrt(norm);
  for (auto& v : dir) v /= norm;
  *dominant_direction = dir;

  SufStats stats(d, MatrixKind::kLowerTriangular);
  std::vector<double> x(d);
  for (size_t i = 0; i < n; ++i) {
    const double t = rng.NextGaussian(0, 20);
    for (size_t a = 0; a < d; ++a) {
      x[a] = 5.0 + t * dir[a] + rng.NextGaussian(0, 0.1);
    }
    stats.Update(x);
  }
  return stats;
}

SufStats MakeGaussianStats(size_t d, size_t n, uint64_t seed) {
  Random rng(seed);
  SufStats stats(d, MatrixKind::kLowerTriangular);
  std::vector<double> x(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < d; ++a) {
      x[a] = rng.NextGaussian(10.0 * static_cast<double>(a), 1.0 + static_cast<double>(a));
    }
    stats.Update(x);
  }
  return stats;
}

TEST(PcaTest, LambdaColumnsAreOrthonormal) {
  const SufStats stats = MakeGaussianStats(6, 2000, 5);
  NLQ_ASSERT_OK_AND_ASSIGN(PcaModel model, FitPca(stats, 4));
  const linalg::Matrix ltl = model.lambda.Transpose() * model.lambda;
  EXPECT_LT(ltl.MaxAbsDiff(linalg::Matrix::Identity(4)), 1e-9);
}

TEST(PcaTest, FindsDominantDirection) {
  linalg::Vector dir;
  const SufStats stats = MakeLowRankStats(5, 5000, 7, &dir);
  NLQ_ASSERT_OK_AND_ASSIGN(PcaModel model,
                           FitPca(stats, 1, PcaInput::kCovariance));
  // First component parallel (up to sign) to the planted direction.
  double dot = 0;
  for (size_t a = 0; a < 5; ++a) dot += model.lambda(a, 0) * dir[a];
  EXPECT_GT(std::fabs(dot), 0.999);
  // And it captures nearly all the variance.
  EXPECT_GT(model.ExplainedVarianceRatio(), 0.99);
}

TEST(PcaTest, EigenvaluesDescending) {
  const SufStats stats = MakeGaussianStats(8, 3000, 11);
  NLQ_ASSERT_OK_AND_ASSIGN(PcaModel model, FitPca(stats, 8));
  for (size_t j = 1; j < 8; ++j) {
    EXPECT_LE(model.eigenvalues[j], model.eigenvalues[j - 1] + 1e-12);
  }
}

TEST(PcaTest, CorrelationEigenvaluesSumToD) {
  const size_t d = 6;
  const SufStats stats = MakeGaussianStats(d, 4000, 13);
  NLQ_ASSERT_OK_AND_ASSIGN(PcaModel model,
                           FitPca(stats, d, PcaInput::kCorrelation));
  double sum = 0;
  for (double ev : model.eigenvalues) sum += ev;
  // trace(correlation matrix) = d.
  EXPECT_NEAR(sum, static_cast<double>(d), 1e-8);
  EXPECT_NEAR(model.total_variance, static_cast<double>(d), 1e-8);
}

TEST(PcaTest, FullRankScorePreservesDistances) {
  // With k = d, scoring is an isometry of the (scaled) centered data.
  const size_t d = 4;
  const SufStats stats = MakeGaussianStats(d, 1000, 17);
  NLQ_ASSERT_OK_AND_ASSIGN(PcaModel model,
                           FitPca(stats, d, PcaInput::kCovariance));
  Random rng(19);
  for (int trial = 0; trial < 10; ++trial) {
    linalg::Vector x(d), y(d);
    for (size_t a = 0; a < d; ++a) {
      x[a] = rng.NextUniform(0, 50);
      y[a] = rng.NextUniform(0, 50);
    }
    const double orig = linalg::SquaredDistance(x, y);
    const double reduced =
        linalg::SquaredDistance(model.Score(x), model.Score(y));
    EXPECT_NEAR(orig, reduced, 1e-6 * (1.0 + orig));
  }
}

TEST(PcaTest, ScoreCentersAtMean) {
  const SufStats stats = MakeGaussianStats(3, 500, 23);
  NLQ_ASSERT_OK_AND_ASSIGN(PcaModel model, FitPca(stats, 2));
  const linalg::Vector at_mean = model.Score(model.mu);
  for (double v : at_mean) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(PcaTest, RejectsBadK) {
  const SufStats stats = MakeGaussianStats(3, 100, 29);
  EXPECT_FALSE(FitPca(stats, 0).ok());
  EXPECT_FALSE(FitPca(stats, 4).ok());
}

TEST(PcaTest, RejectsDiagonalKind) {
  SufStats stats(3, MatrixKind::kDiagonal);
  stats.Update(std::vector<double>{1, 2, 3});
  stats.Update(std::vector<double>{2, 1, 0});
  EXPECT_FALSE(FitPca(stats, 2).ok());
}

class PcaDimsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PcaDimsTest, ReconstructionImprovesWithK) {
  const size_t d = GetParam();
  const SufStats stats = MakeGaussianStats(d, 200 * d, 31 + d);
  double prev_ratio = 0.0;
  for (size_t k = 1; k <= d; ++k) {
    NLQ_ASSERT_OK_AND_ASSIGN(PcaModel model, FitPca(stats, k));
    const double ratio = model.ExplainedVarianceRatio();
    EXPECT_GE(ratio, prev_ratio - 1e-12);
    prev_ratio = ratio;
  }
  EXPECT_NEAR(prev_ratio, 1.0, 1e-9);  // k = d explains everything
}

INSTANTIATE_TEST_SUITE_P(Dims, PcaDimsTest, ::testing::Values(2, 3, 5, 8, 16));

// ---------------------------------------------------------------------------
// Factor analysis
// ---------------------------------------------------------------------------

TEST(FactorAnalysisTest, CommunalitiesBounded) {
  const SufStats stats = MakeGaussianStats(6, 2000, 37);
  NLQ_ASSERT_OK_AND_ASSIGN(FactorAnalysisModel model,
                           FitFactorAnalysis(stats, 3));
  ASSERT_EQ(model.communalities.size(), 6u);
  for (size_t a = 0; a < 6; ++a) {
    EXPECT_GE(model.communalities[a], 0.0);
    EXPECT_LE(model.communalities[a], 1.0 + 1e-9);
    EXPECT_NEAR(model.communalities[a] + model.uniquenesses[a], 1.0, 1e-9);
  }
}

TEST(FactorAnalysisTest, FullModelExplainsEverything) {
  const SufStats stats = MakeGaussianStats(4, 1500, 41);
  NLQ_ASSERT_OK_AND_ASSIGN(FactorAnalysisModel model,
                           FitFactorAnalysis(stats, 4));
  for (size_t a = 0; a < 4; ++a) {
    EXPECT_NEAR(model.communalities[a], 1.0, 1e-8);
    EXPECT_NEAR(model.uniquenesses[a], 0.0, 1e-8);
  }
}

TEST(FactorAnalysisTest, LoadingsReproduceCorrelation) {
  // With k = d, L Lᵀ equals the correlation matrix.
  const size_t d = 5;
  const SufStats stats = MakeGaussianStats(d, 3000, 43);
  NLQ_ASSERT_OK_AND_ASSIGN(FactorAnalysisModel model,
                           FitFactorAnalysis(stats, d));
  NLQ_ASSERT_OK_AND_ASSIGN(linalg::Matrix rho, stats.CorrelationMatrix());
  const linalg::Matrix reconstructed =
      model.loadings * model.loadings.Transpose();
  EXPECT_LT(reconstructed.MaxAbsDiff(rho), 1e-8);
}

TEST(FactorAnalysisTest, StrongFactorStructureDetected) {
  // Two blocks of mutually correlated dimensions -> 2 factors explain
  // most communality.
  Random rng(47);
  SufStats stats(4, MatrixKind::kLowerTriangular);
  std::vector<double> x(4);
  for (int i = 0; i < 5000; ++i) {
    const double f1 = rng.NextGaussian(0, 1);
    const double f2 = rng.NextGaussian(0, 1);
    x[0] = f1 + rng.NextGaussian(0, 0.1);
    x[1] = f1 + rng.NextGaussian(0, 0.1);
    x[2] = f2 + rng.NextGaussian(0, 0.1);
    x[3] = f2 + rng.NextGaussian(0, 0.1);
    stats.Update(x);
  }
  NLQ_ASSERT_OK_AND_ASSIGN(FactorAnalysisModel model,
                           FitFactorAnalysis(stats, 2));
  for (size_t a = 0; a < 4; ++a) {
    EXPECT_GT(model.communalities[a], 0.95);
  }
}


// ---------------------------------------------------------------------------
// ML factor analysis (EM)
// ---------------------------------------------------------------------------

TEST(MlFactorAnalysisTest, ReconstructsFactorStructure) {
  // Two latent factors driving 4 observed dimensions: ML-FA should
  // model the correlation matrix as L L^T + Psi with small residual.
  Random rng(53);
  SufStats stats(4, MatrixKind::kLowerTriangular);
  std::vector<double> x(4);
  for (int i = 0; i < 8000; ++i) {
    const double f1 = rng.NextGaussian(0, 1);
    const double f2 = rng.NextGaussian(0, 1);
    x[0] = f1 + rng.NextGaussian(0, 0.3);
    x[1] = f1 + rng.NextGaussian(0, 0.3);
    x[2] = f2 + rng.NextGaussian(0, 0.3);
    x[3] = f2 + rng.NextGaussian(0, 0.3);
    stats.Update(x);
  }
  NLQ_ASSERT_OK_AND_ASSIGN(FactorAnalysisModel model,
                           FitFactorAnalysisML(stats, 2));
  NLQ_ASSERT_OK_AND_ASSIGN(linalg::Matrix rho, stats.CorrelationMatrix());
  linalg::Matrix implied = model.loadings * model.loadings.Transpose();
  for (size_t a = 0; a < 4; ++a) implied(a, a) += model.uniquenesses[a];
  EXPECT_LT(implied.MaxAbsDiff(rho), 0.05);
}

TEST(MlFactorAnalysisTest, UniquenessesPositive) {
  const SufStats stats = MakeGaussianStats(5, 3000, 59);
  NLQ_ASSERT_OK_AND_ASSIGN(FactorAnalysisModel model,
                           FitFactorAnalysisML(stats, 2));
  for (size_t a = 0; a < 5; ++a) {
    EXPECT_GT(model.uniquenesses[a], 0.0);
    EXPECT_GE(model.communalities[a], 0.0);
  }
}

TEST(MlFactorAnalysisTest, BetterFitThanPrincipalFactorStart) {
  // ML-EM refines the principal-factor initialization: the implied
  // correlation matrix residual must not get worse.
  Random rng(61);
  SufStats stats(5, MatrixKind::kLowerTriangular);
  std::vector<double> x(5);
  for (int i = 0; i < 5000; ++i) {
    const double f = rng.NextGaussian(0, 1);
    for (size_t a = 0; a < 5; ++a) {
      x[a] = (0.3 + 0.15 * static_cast<double>(a)) * f +
             rng.NextGaussian(0, 0.5 + 0.1 * static_cast<double>(a));
    }
    stats.Update(x);
  }
  NLQ_ASSERT_OK_AND_ASSIGN(linalg::Matrix rho, stats.CorrelationMatrix());
  NLQ_ASSERT_OK_AND_ASSIGN(FactorAnalysisModel pf, FitFactorAnalysis(stats, 1));
  NLQ_ASSERT_OK_AND_ASSIGN(FactorAnalysisModel ml,
                           FitFactorAnalysisML(stats, 1));

  auto residual = [&rho](const FactorAnalysisModel& m) {
    linalg::Matrix implied = m.loadings * m.loadings.Transpose();
    for (size_t a = 0; a < implied.rows(); ++a) {
      implied(a, a) += m.uniquenesses[a];
    }
    // Off-diagonal residual (diagonal is matched by construction).
    double worst = 0.0;
    for (size_t a = 0; a < implied.rows(); ++a) {
      for (size_t b = 0; b < a; ++b) {
        worst = std::max(worst, std::fabs(implied(a, b) - rho(a, b)));
      }
    }
    return worst;
  };
  EXPECT_LE(residual(ml), residual(pf) + 1e-6);
}

TEST(MlFactorAnalysisTest, RejectsBadK) {
  const SufStats stats = MakeGaussianStats(3, 500, 67);
  EXPECT_FALSE(FitFactorAnalysisML(stats, 0).ok());
  EXPECT_FALSE(FitFactorAnalysisML(stats, 3).ok());
}

}  // namespace
}  // namespace nlq::stats
