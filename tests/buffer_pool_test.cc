// Buffer pool (storage/buffer_pool.h): pin/unpin lifetime, clock
// eviction under a bounded frame budget, vectored range fetch,
// background readahead, counter accounting and the all-pinned
// kResourceExhausted edge. The pool is the RSS ceiling of spilled
// scans, so the MemoryTracker bound is asserted here too.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "tests/test_util.h"

namespace nlq::storage {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "buffer_pool_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".pages";
    NLQ_ASSERT_OK(disk_.Open(path_, /*truncate=*/true));
  }

  void TearDown() override {
    disk_.Close();
    std::remove(path_.c_str());
  }

  /// Writes `n` pages whose payloads are self-identifying (page id
  /// repeated), so any frame mix-up shows as a content mismatch.
  void FillPages(size_t n) {
    Page page;
    for (uint64_t p = 0; p < n; ++p) {
      char* raw = page.raw();
      std::memset(raw, 0, kPageSize);
      for (size_t off = 0; off + sizeof(uint64_t) <= kPageSize;
           off += sizeof(uint64_t)) {
        std::memcpy(raw + off, &p, sizeof(uint64_t));
      }
      NLQ_ASSERT_OK(disk_.WritePage(p, page));
    }
  }

  static uint64_t PageStamp(const char* data) {
    uint64_t v;
    std::memcpy(&v, data + kPageSize - sizeof(uint64_t), sizeof(v));
    return v;
  }

  std::string path_;
  DiskManager disk_;
};

TEST_F(BufferPoolTest, PinReadsThroughAndCaches) {
  FillPages(4);
  BufferPool pool(/*budget_bytes=*/kPageSize * 16);
  const uint32_t file = pool.RegisterFile(&disk_);

  NLQ_ASSERT_OK_AND_ASSIGN(PageHandle h0, pool.Pin(file, 0));
  NLQ_ASSERT_OK_AND_ASSIGN(PageHandle h3, pool.Pin(file, 3));
  EXPECT_EQ(PageStamp(h0.data()), 0u);
  EXPECT_EQ(PageStamp(h3.data()), 3u);
  BufferPoolStats s = pool.GetStats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 0u);

  // Second pin of a resident page is a hit, even after unpinning.
  h0.Reset();
  NLQ_ASSERT_OK_AND_ASSIGN(PageHandle again, pool.Pin(file, 0));
  EXPECT_EQ(PageStamp(again.data()), 0u);
  s = pool.GetStats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST_F(BufferPoolTest, EvictsUnpinnedFramesWithinBudget) {
  // kMinFrames is the floor, so build a working set larger than it.
  const size_t frames = BufferPool::kMinFrames;
  const size_t pages = frames * 3;
  FillPages(pages);
  BufferPool pool(/*budget_bytes=*/kPageSize);  // floor: kMinFrames frames
  ASSERT_EQ(pool.num_frames(), frames);
  const uint32_t file = pool.RegisterFile(&disk_);

  // Stream every page twice; the pool must serve all of them correctly
  // from a fixed frame count, evicting as it goes.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t p = 0; p < pages; ++p) {
      NLQ_ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Pin(file, p));
      ASSERT_EQ(PageStamp(h.data()), p) << "pass " << pass;
    }
  }
  const BufferPoolStats s = pool.GetStats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_GE(s.misses, pages);  // first pass all misses
  // Memory charged never exceeded the frame budget.
  EXPECT_LE(pool.tracker().peak(), frames * kPageSize);
  EXPECT_EQ(s.bytes_cached, frames * kPageSize);
}

TEST_F(BufferPoolTest, AllPinnedFailsResourceExhaustedNotDeadlock) {
  const size_t frames = BufferPool::kMinFrames;
  FillPages(frames + 1);
  BufferPool pool(/*budget_bytes=*/kPageSize);
  const uint32_t file = pool.RegisterFile(&disk_);

  std::vector<PageHandle> held;
  for (uint64_t p = 0; p < frames; ++p) {
    NLQ_ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Pin(file, p));
    held.push_back(std::move(h));
  }
  auto extra = pool.Pin(file, frames);
  ASSERT_FALSE(extra.ok());
  EXPECT_EQ(extra.status().code(), StatusCode::kResourceExhausted);

  // Releasing one pin unblocks the pool.
  held.pop_back();
  NLQ_ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Pin(file, frames));
  EXPECT_EQ(PageStamp(h.data()), frames);
}

TEST_F(BufferPoolTest, FetchRangeLoadsRunsVectored) {
  FillPages(12);
  BufferPool pool(kPageSize * 32);
  const uint32_t file = pool.RegisterFile(&disk_);

  NLQ_ASSERT_OK(pool.FetchRange(file, 2, 8));
  // Everything in range is now a hit.
  for (uint64_t p = 2; p < 10; ++p) {
    NLQ_ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Pin(file, p));
    EXPECT_EQ(PageStamp(h.data()), p);
  }
  const BufferPoolStats s = pool.GetStats();
  EXPECT_EQ(s.hits, 8u);
  EXPECT_EQ(s.misses, 8u);  // the range loads count as misses
}

TEST_F(BufferPoolTest, ReadaheadWarmsFramesInBackground) {
  FillPages(10);
  BufferPool pool(kPageSize * 32);
  const uint32_t file = pool.RegisterFile(&disk_);

  pool.ScheduleReadahead(file, 0, 10);
  pool.DrainReadaheadForTest();
  BufferPoolStats s = pool.GetStats();
  EXPECT_EQ(s.readahead_pages, 10u);
  EXPECT_EQ(s.misses, 0u);

  for (uint64_t p = 0; p < 10; ++p) {
    NLQ_ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Pin(file, p));
    EXPECT_EQ(PageStamp(h.data()), p);
  }
  s = pool.GetStats();
  EXPECT_EQ(s.hits, 10u);
  EXPECT_EQ(s.readahead_hits, 10u);  // first pin of each warm frame
  EXPECT_EQ(s.misses, 0u);
}

TEST_F(BufferPoolTest, ReadaheadPastEofIsHarmless) {
  FillPages(4);
  BufferPool pool(kPageSize * 16);
  const uint32_t file = pool.RegisterFile(&disk_);
  // Best-effort: the out-of-range part must not wedge the worker or
  // poison later pins.
  pool.ScheduleReadahead(file, 2, 10);
  pool.DrainReadaheadForTest();
  NLQ_ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Pin(file, 3));
  EXPECT_EQ(PageStamp(h.data()), 3u);
  auto past = pool.Pin(file, 7);
  EXPECT_FALSE(past.ok());
}

TEST_F(BufferPoolTest, PinPastEofFailsAndRetriesCleanly) {
  FillPages(2);
  BufferPool pool(kPageSize * 16);
  const uint32_t file = pool.RegisterFile(&disk_);
  auto bad = pool.Pin(file, 9);
  ASSERT_FALSE(bad.ok());
  // The failed load must not leave a poisoned mapping behind.
  auto again = pool.Pin(file, 9);
  ASSERT_FALSE(again.ok());
  NLQ_ASSERT_OK_AND_ASSIGN(PageHandle ok, pool.Pin(file, 1));
  EXPECT_EQ(PageStamp(ok.data()), 1u);
}

TEST_F(BufferPoolTest, UnregisterDropsCachedPages) {
  FillPages(4);
  BufferPool pool(kPageSize * 16);
  const uint32_t file = pool.RegisterFile(&disk_);
  { NLQ_ASSERT_OK(pool.Pin(file, 0).status()); }
  pool.UnregisterFile(file);

  // Re-registering the same DiskManager gets a fresh id and fresh
  // (miss) loads — no stale frames cross the unregister.
  const uint32_t file2 = pool.RegisterFile(&disk_);
  EXPECT_NE(file, file2);
  NLQ_ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Pin(file2, 0));
  EXPECT_EQ(PageStamp(h.data()), 0u);
  const BufferPoolStats s = pool.GetStats();
  EXPECT_EQ(s.misses, 2u);
}

TEST_F(BufferPoolTest, ConcurrentPinsOfOnePageLoadOnce) {
  FillPages(64);
  BufferPool pool(kPageSize * 128);
  const uint32_t file = pool.RegisterFile(&disk_);

  // Hammer the same small page set from several threads; every read
  // must see the right content and the pool must stay consistent.
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t rng = 7 + t;
      for (int i = 0; i < kIters; ++i) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        const uint64_t p = (rng >> 33) % 64;
        auto h = pool.Pin(file, p);
        if (!h.ok() || PageStamp(h->data()) != p) failures++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const BufferPoolStats s = pool.GetStats();
  // 64 distinct pages, frames for all of them: every page loads
  // exactly once, everything else hits.
  EXPECT_EQ(s.misses, 64u);
  EXPECT_EQ(s.hits, kThreads * kIters - 64u);
}

TEST_F(BufferPoolTest, MetricsRegistryMirrorsPoolCounters) {
  FillPages(4);
  const MetricsSnapshot before = MetricsRegistry::Global().GetSnapshot();
  BufferPool pool(kPageSize * 16);
  const uint32_t file = pool.RegisterFile(&disk_);
  { NLQ_ASSERT_OK(pool.Pin(file, 0).status()); }
  { NLQ_ASSERT_OK(pool.Pin(file, 0).status()); }
  const MetricsSnapshot after = MetricsRegistry::Global().GetSnapshot();
  auto counter = [](const MetricsSnapshot& s, const std::string& n) {
    auto it = s.counters.find(n);
    return it == s.counters.end() ? uint64_t{0} : it->second;
  };
  EXPECT_GE(counter(after, "pool.misses"), counter(before, "pool.misses") + 1);
  EXPECT_GE(counter(after, "pool.hits"), counter(before, "pool.hits") + 1);
  EXPECT_GE(counter(after, "disk.pages_read"),
            counter(before, "disk.pages_read") + 1);
}

}  // namespace
}  // namespace nlq::storage
