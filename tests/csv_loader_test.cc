#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "connect/odbc_sim.h"
#include "gen/csv_loader.h"
#include "gen/datagen.h"
#include "stats/miner.h"
#include "tests/test_util.h"

namespace nlq::gen {
namespace {

using storage::Column;
using storage::DataType;
using storage::Schema;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CsvLoaderTest, LoadsTypedFields) {
  auto db = nlq::testing::MakeTestDatabase();
  const std::string path = TempPath("typed.csv");
  {
    std::ofstream out(path);
    out << "1,2.5,hello\n";
    out << "2,-1e3,world\n";
  }
  const Schema schema{std::vector<Column>{{"i", DataType::kInt64},
                                          {"v", DataType::kDouble},
                                          {"s", DataType::kVarchar}}};
  NLQ_ASSERT_OK_AND_ASSIGN(uint64_t rows,
                           LoadCsvIntoTable(db.get(), "T", schema, path));
  EXPECT_EQ(rows, 2u);
  auto result = db->Execute("SELECT * FROM T ORDER BY i");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->At(0, 0).int_value(), 1);
  EXPECT_DOUBLE_EQ(result->GetDouble(1, 1), -1000.0);
  EXPECT_EQ(result->At(1, 2).string_value(), "world");
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, EmptyFieldsBecomeNull) {
  auto db = nlq::testing::MakeTestDatabase();
  const std::string path = TempPath("nulls.csv");
  {
    std::ofstream out(path);
    out << "1,,x\n";
  }
  const Schema schema{std::vector<Column>{{"i", DataType::kInt64},
                                          {"v", DataType::kDouble},
                                          {"s", DataType::kVarchar}}};
  NLQ_ASSERT_OK(LoadCsvIntoTable(db.get(), "T", schema, path).status());
  auto result = db->Execute("SELECT v FROM T");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->At(0, 0).is_null());
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, RejectsFieldCountMismatch) {
  auto db = nlq::testing::MakeTestDatabase();
  const std::string path = TempPath("mismatch.csv");
  {
    std::ofstream out(path);
    out << "1,2\n";
    out << "3\n";
  }
  const Schema schema{std::vector<Column>{{"a", DataType::kInt64},
                                          {"b", DataType::kInt64}}};
  EXPECT_FALSE(LoadCsvIntoTable(db.get(), "T", schema, path).ok());
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, RejectsBadNumbers) {
  auto db = nlq::testing::MakeTestDatabase();
  const std::string path = TempPath("badnum.csv");
  {
    std::ofstream out(path);
    out << "abc\n";
  }
  const Schema schema{std::vector<Column>{{"a", DataType::kDouble}}};
  EXPECT_FALSE(LoadCsvIntoTable(db.get(), "T", schema, path).ok());
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, MalformedRowErrorNamesRowAndColumn) {
  // A bad value three data rows in: the ParseError must carry the
  // 1-based row number and the offending column's name so the user
  // can find the row in a million-line file.
  auto db = nlq::testing::MakeTestDatabase();
  const std::string path = TempPath("badrow.csv");
  {
    std::ofstream out(path);
    out << "1,1.5\n";
    out << "2,2.5\n";
    out << "3,oops\n";
  }
  const Schema schema{std::vector<Column>{{"id", DataType::kInt64},
                                          {"score", DataType::kDouble}}};
  auto result = LoadCsvIntoTable(db.get(), "T", schema, path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("row 3"), std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("'score'"), std::string::npos)
      << result.status().ToString();
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, FieldCountErrorNamesRow) {
  auto db = nlq::testing::MakeTestDatabase();
  const std::string path = TempPath("badcount.csv");
  {
    std::ofstream out(path);
    out << "1,2\n";
    out << "3,4,5\n";
  }
  const Schema schema{std::vector<Column>{{"a", DataType::kInt64},
                                          {"b", DataType::kInt64}}};
  auto result = LoadCsvIntoTable(db.get(), "T", schema, path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("row 2"), std::string::npos)
      << result.status().ToString();
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, MissingFileFails) {
  auto db = nlq::testing::MakeTestDatabase();
  const Schema schema{std::vector<Column>{{"a", DataType::kDouble}}};
  EXPECT_FALSE(
      LoadCsvIntoTable(db.get(), "T", schema, "/no/such/file.csv").ok());
}

TEST(CsvLoaderTest, ReplacesExistingTable) {
  auto db = nlq::testing::MakeTestDatabase();
  const std::string path = TempPath("replace.csv");
  {
    std::ofstream out(path);
    out << "7\n";
  }
  const Schema schema{std::vector<Column>{{"a", DataType::kInt64}}};
  NLQ_ASSERT_OK(LoadCsvIntoTable(db.get(), "T", schema, path).status());
  NLQ_ASSERT_OK(LoadCsvIntoTable(db.get(), "T", schema, path).status());
  NLQ_ASSERT_OK_AND_ASSIGN(double count,
                           db->QueryDouble("SELECT count(*) FROM T"));
  EXPECT_DOUBLE_EQ(count, 1.0);
  std::remove(path.c_str());
}

// Round trip: export with the ODBC simulator, re-import with the CSV
// loader, verify the statistics are bit-identical (shortest
// round-trip double printing on both sides).
TEST(CsvLoaderTest, ExportImportRoundTripIsExact) {
  auto db = nlq::testing::MakeTestDatabase();
  MixtureOptions options;
  options.n = 1000;
  options.d = 4;
  options.seed = 2718;
  NLQ_ASSERT_OK(GenerateDataSetTable(db.get(), "X", options).status());

  const std::string path = TempPath("roundtrip.csv");
  connect::OdbcExporter exporter;
  auto table = db->catalog().GetTable("X");
  ASSERT_TRUE(table.ok());
  NLQ_ASSERT_OK(exporter.ExportTable(**table, path).status());
  NLQ_ASSERT_OK(
      LoadCsvIntoTable(db.get(), "X2", storage::Schema::DataSet(4), path)
          .status());

  stats::WarehouseMiner miner(db.get());
  NLQ_ASSERT_OK_AND_ASSIGN(
      stats::SufStats original,
      miner.ComputeSufStats("X", stats::DimensionColumns(4),
                            stats::MatrixKind::kFull,
                            stats::ComputeVia::kUdfList));
  NLQ_ASSERT_OK_AND_ASSIGN(
      stats::SufStats reloaded,
      miner.ComputeSufStats("X2", stats::DimensionColumns(4),
                            stats::MatrixKind::kFull,
                            stats::ComputeVia::kUdfList));
  EXPECT_EQ(original.n(), reloaded.n());
  EXPECT_LT(original.MaxAbsDiff(reloaded), 1e-7);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nlq::gen
