// Robustness: the lexer/parser must reject arbitrary garbage with a
// Status — never crash, hang, or accept nonsense — and the engine
// must survive executing anything the parser does accept.

#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/database.h"
#include "engine/parser.h"
#include "tests/test_util.h"

namespace nlq::engine {
namespace {

// Token soup drawn from SQL-ish fragments: many combinations parse,
// most do not; none may crash.
const char* kFragments[] = {
    "SELECT", "FROM",  "WHERE", "GROUP",  "BY",     "ORDER",   "HAVING",
    "CREATE", "TABLE", "X",     "X1",     "i",      "sum",     "(",
    ")",      ",",     "*",     "+",      "-",      "/",       "%",
    "1",      "2.5",   "'s'",   "CASE",   "WHEN",   "THEN",    "END",
    "ELSE",   "AND",   "OR",    "NOT",    "NULL",   "IS",      "AS",
    "=",      "<",     ">",     "<=",     ">=",     "<>",      ";",
    "LIMIT",  "DESC",  "VALUES", "INSERT", "INTO",  "DOUBLE",  ".",
};

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  Random rng(4242);
  size_t parsed_ok = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    std::string sql;
    const size_t len = 1 + rng.NextUint64(24);
    for (size_t t = 0; t < len; ++t) {
      sql += kFragments[rng.NextUint64(std::size(kFragments))];
      sql += ' ';
    }
    auto result = ParseStatement(sql);
    parsed_ok += result.ok();
  }
  // A few random sequences genuinely parse; most must not.
  EXPECT_LT(parsed_ok, 1500u);
}

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Random rng(777);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string sql;
    const size_t len = rng.NextUint64(64);
    for (size_t i = 0; i < len; ++i) {
      sql.push_back(static_cast<char>(32 + rng.NextUint64(95)));
    }
    (void)ParseStatement(sql);  // must simply return
  }
}

TEST(ParserFuzzTest, AcceptedStatementsExecuteOrFailCleanly) {
  // Anything the parser accepts must execute without crashing against
  // a real database (success or a clean error are both fine).
  auto db = nlq::testing::MakeTestDatabase();
  NLQ_ASSERT_OK(db->ExecuteCommand("CREATE TABLE X (i BIGINT, X1 DOUBLE)"));
  NLQ_ASSERT_OK(db->ExecuteCommand("INSERT INTO X VALUES (1, 2.0)"));

  Random rng(31337);
  size_t executed = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    std::string sql = "SELECT ";
    const size_t len = 1 + rng.NextUint64(12);
    for (size_t t = 0; t < len; ++t) {
      sql += kFragments[rng.NextUint64(std::size(kFragments))];
      sql += ' ';
    }
    if (!ParseStatement(sql).ok()) continue;
    auto result = db->Execute(sql);
    executed += result.ok();
  }
  // At least a handful of generated statements actually run.
  EXPECT_GT(executed, 0u);
}

TEST(ParserFuzzTest, DeeplyNestedExpressionsParse) {
  std::string sql = "SELECT ";
  for (int i = 0; i < 200; ++i) sql += "(1 + ";
  sql += "0";
  for (int i = 0; i < 200; ++i) sql += ")";
  NLQ_ASSERT_OK_AND_ASSIGN(Statement stmt, ParseStatement(sql));
  EXPECT_EQ(stmt.kind, StatementKind::kSelect);
}

TEST(ParserFuzzTest, PathologicallyLongIdentifiers) {
  const std::string long_name(10000, 'a');
  auto result = ParseStatement("SELECT " + long_name + " FROM t");
  EXPECT_TRUE(result.ok());  // parses; binding would reject later
}

}  // namespace
}  // namespace nlq::engine
