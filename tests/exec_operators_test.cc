// Unit tests for the physical operators in src/engine/exec, driven
// directly (no SQL) at the batch-boundary row counts n ∈ {0, 1, 1023,
// 1024, 1025} — empty input, single row, one row under / exactly /
// one row over the RowBatch capacity.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "engine/ast.h"
#include "engine/database.h"
#include "engine/exec/cross_join_node.h"
#include "engine/exec/executor.h"
#include "engine/exec/filter_node.h"
#include "engine/exec/gather_node.h"
#include "engine/exec/hash_aggregate_node.h"
#include "engine/exec/limit_node.h"
#include "engine/exec/plan.h"
#include "engine/exec/project_node.h"
#include "engine/exec/scan_node.h"
#include "engine/exec/sort_node.h"
#include "engine/expr.h"
#include "storage/partitioned_table.h"
#include "tests/test_util.h"

namespace nlq::engine::exec {
namespace {

using storage::Datum;
using storage::PartitionedTable;
using storage::Row;

class ExecOperatorsTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    db_ = nlq::testing::MakeTestDatabase(/*num_partitions=*/4);
    auto table = db_->catalog().CreateTable(
        "T", storage::Schema{{{"i", storage::DataType::kInt64},
                              {"v", storage::DataType::kDouble}}});
    NLQ_ASSERT_OK(table.status());
    table_ = table.value();
    const size_t n = GetParam();
    for (size_t i = 0; i < n; ++i) {
      NLQ_ASSERT_OK(table_->AppendRow(
          {Datum::Int64(static_cast<int64_t>(i)),
           Datum::Double(static_cast<double>(i) * 0.5)}));
    }
  }

  size_t n() const { return GetParam(); }

  PlanNodePtr Scan() const {
    return std::make_unique<ParallelScanNode>(table_, "T",
                                              RowBatch::kDefaultCapacity);
  }

  /// Binds an AST expression against T's schema.
  BoundExprPtr Bind(const ExprPtr& expr) const {
    BindingScope scope;
    scope.AddTable("T", &table_->schema());
    auto bound = BindRowExpr(*expr, scope, &db_->udfs());
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return bound.ok() ? std::move(bound.value()) : nullptr;
  }

  std::vector<Row> Drain(const PlanNode& node) const {
    auto rows = DrainAllStreams(node, &db_->pool(), RowBatch::kDefaultCapacity);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? std::move(rows.value()) : std::vector<Row>{};
  }

  /// Scan streams are morsels: one per non-empty partition at these
  /// row counts (all < kDefaultMorselRows), at least one overall.
  size_t ExpectedStreams() const {
    size_t streams = 0;
    for (size_t p = 0; p < table_->num_partitions(); ++p) {
      if (table_->partition(p).num_rows() > 0) ++streams;
    }
    return std::max<size_t>(streams, 1);
  }

  std::unique_ptr<Database> db_;
  PartitionedTable* table_ = nullptr;
};

int64_t SumFirstColumn(const std::vector<Row>& rows) {
  int64_t sum = 0;
  for (const Row& row : rows) sum += row[0].int_value();
  return sum;
}

TEST_P(ExecOperatorsTest, ScanProducesEveryRowInBoundedBatches) {
  const PlanNodePtr scan = Scan();
  ASSERT_EQ(scan->num_streams(), ExpectedStreams());

  size_t total = 0;
  int64_t sum = 0;
  for (size_t s = 0; s < scan->num_streams(); ++s) {
    auto stream = scan->OpenStream(s);
    NLQ_ASSERT_OK(stream.status());
    RowBatch batch;
    for (;;) {
      auto more = stream.value()->Next(&batch);
      NLQ_ASSERT_OK(more.status());
      if (!more.value()) break;
      ASSERT_GT(batch.size(), 0u);
      ASSERT_LE(batch.size(), RowBatch::kDefaultCapacity);
      total += batch.size();
      for (size_t i = 0; i < batch.size(); ++i) {
        ASSERT_EQ(batch.row(i).size(), 2u);
        sum += batch.row(i)[0].int_value();
      }
    }
  }
  EXPECT_EQ(total, n());
  // Every i in [0, n) seen exactly once: the sums match.
  EXPECT_EQ(sum, static_cast<int64_t>(n() * (n() - 1) / 2));
}

TEST_P(ExecOperatorsTest, FilterKeepsOnlyMatchingRows) {
  // i % 2 = 0
  ExprPtr pred = MakeBinary(
      BinaryOp::kEq,
      MakeBinary(BinaryOp::kMod, MakeColumnRef("", "i"),
                 MakeLiteral(Datum::Int64(2))),
      MakeLiteral(Datum::Int64(0)));
  FilterNode filter(Scan(), Bind(pred), {"(i % 2 = 0)"});
  const std::vector<Row> rows = Drain(filter);
  EXPECT_EQ(rows.size(), (n() + 1) / 2);
  for (const Row& row : rows) EXPECT_EQ(row[0].int_value() % 2, 0);
}

TEST_P(ExecOperatorsTest, FilterThatDropsEverythingYieldsEmpty) {
  ExprPtr pred = MakeBinary(BinaryOp::kLt, MakeColumnRef("", "i"),
                            MakeLiteral(Datum::Int64(0)));
  FilterNode filter(Scan(), Bind(pred), {"(i < 0)"});
  EXPECT_TRUE(Drain(filter).empty());
}

TEST_P(ExecOperatorsTest, ProjectComputesExpressions) {
  // SELECT i * 2 + 1, v
  std::vector<BoundExprPtr> projections;
  projections.push_back(Bind(MakeBinary(
      BinaryOp::kAdd,
      MakeBinary(BinaryOp::kMul, MakeColumnRef("", "i"),
                 MakeLiteral(Datum::Int64(2))),
      MakeLiteral(Datum::Int64(1)))));
  projections.push_back(Bind(MakeColumnRef("", "v")));
  ProjectNode project(Scan(), std::move(projections));
  EXPECT_EQ(project.output_width(), 2u);
  const std::vector<Row> rows = Drain(project);
  ASSERT_EQ(rows.size(), n());
  int64_t sum = 0;
  for (const Row& row : rows) {
    ASSERT_EQ(row.size(), 2u);
    sum += row[0].int_value();
  }
  EXPECT_EQ(sum, static_cast<int64_t>(2 * (n() * (n() - 1) / 2) + n()));
}

TEST_P(ExecOperatorsTest, PassThroughProjectForwardsChildStream) {
  ProjectNode project(Scan());
  EXPECT_EQ(project.output_width(), 2u);
  EXPECT_EQ(project.num_streams(), ExpectedStreams());
  EXPECT_EQ(Drain(project).size(), n());
}

TEST_P(ExecOperatorsTest, GatherPreservesPartitionOrder) {
  GatherNode gather(Scan(), &db_->pool(), RowBatch::kDefaultCapacity);
  ASSERT_EQ(gather.num_streams(), 1u);
  const std::vector<Row> gathered = Drain(gather);

  auto reference = table_->ReadAllRows();
  NLQ_ASSERT_OK(reference.status());
  ASSERT_EQ(gathered.size(), reference.value().size());
  for (size_t i = 0; i < gathered.size(); ++i) {
    EXPECT_EQ(gathered[i][0].int_value(),
              reference.value()[i][0].int_value());
  }
}

TEST_P(ExecOperatorsTest, CrossJoinEmitsFullProduct) {
  std::vector<Row> build;
  for (int64_t b = 100; b < 103; ++b) build.push_back({Datum::Int64(b)});
  CrossJoinNode join(Scan(), std::move(build), /*build_width=*/1, "B AS b",
                     {});
  EXPECT_EQ(join.output_width(), 3u);
  const std::vector<Row> rows = Drain(join);
  ASSERT_EQ(rows.size(), 3 * n());
  // Each probe row pairs with every build row, build side cycling
  // fastest.
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(rows[i].size(), 3u);
    EXPECT_EQ(rows[i][2].int_value(),
              static_cast<int64_t>(100 + i % 3));
  }
}

TEST_P(ExecOperatorsTest, CrossJoinWithEmptyBuildSideIsEmpty) {
  CrossJoinNode join(Scan(), {}, /*build_width=*/1, "B AS b", {});
  EXPECT_TRUE(Drain(join).empty());
}

TEST_P(ExecOperatorsTest, HashAggregateGroupsAndMerges) {
  // SELECT i % 3, count(*), sum(i) FROM T GROUP BY i % 3
  ExprPtr key = MakeBinary(BinaryOp::kMod, MakeColumnRef("", "i"),
                           MakeLiteral(Datum::Int64(3)));
  std::vector<ExprPtr> items;
  items.push_back(key->Clone());
  std::vector<ExprPtr> count_args;
  count_args.push_back(MakeStar());
  items.push_back(MakeFunction("count", std::move(count_args)));
  std::vector<ExprPtr> sum_args;
  sum_args.push_back(MakeColumnRef("", "i"));
  items.push_back(MakeFunction("sum", std::move(sum_args)));

  BindingScope scope;
  scope.AddTable("T", &table_->schema());
  std::vector<const Expr*> select_exprs;
  for (const auto& e : items) select_exprs.push_back(e.get());
  std::vector<const Expr*> group_by{key.get()};
  auto agg = BindAggregation(select_exprs, group_by, scope, &db_->udfs());
  NLQ_ASSERT_OK(agg.status());

  HashAggregateNode node(Scan(), std::move(agg.value()),
                         /*has_having=*/false, "", /*num_output=*/3,
                         &db_->pool(), RowBatch::kDefaultCapacity);
  std::vector<Row> rows = Drain(node);
  ASSERT_EQ(rows.size(), std::min<size_t>(n(), 3));

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a[0].int_value() < b[0].int_value();
  });
  for (const Row& row : rows) {
    const int64_t g = row[0].int_value();
    int64_t expect_count = 0;
    double expect_sum = 0.0;
    for (size_t i = 0; i < n(); ++i) {
      if (static_cast<int64_t>(i) % 3 != g) continue;
      ++expect_count;
      expect_sum += static_cast<double>(i);
    }
    EXPECT_EQ(row[1].int_value(), expect_count);
    EXPECT_DOUBLE_EQ(row[2].AsDouble(), expect_sum);
  }
}

TEST_P(ExecOperatorsTest, GlobalAggregateOverAnyInputYieldsOneRow) {
  // SELECT count(*) FROM T — one row even when T is empty.
  std::vector<ExprPtr> count_args;
  count_args.push_back(MakeStar());
  ExprPtr count = MakeFunction("count", std::move(count_args));

  BindingScope scope;
  scope.AddTable("T", &table_->schema());
  std::vector<const Expr*> select_exprs{count.get()};
  auto agg = BindAggregation(select_exprs, {}, scope, &db_->udfs());
  NLQ_ASSERT_OK(agg.status());

  HashAggregateNode node(Scan(), std::move(agg.value()),
                         /*has_having=*/false, "", /*num_output=*/1,
                         &db_->pool(), RowBatch::kDefaultCapacity);
  const std::vector<Row> rows = Drain(node);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int_value(), static_cast<int64_t>(n()));
}

TEST_P(ExecOperatorsTest, SortIsStableOnTiedKeys) {
  // Sort by i % 10: ties must keep their gathered (partition) order.
  auto gathered = DrainAllStreams(*Scan(), &db_->pool(),
                                  RowBatch::kDefaultCapacity);
  NLQ_ASSERT_OK(gathered.status());
  std::vector<Row> expected = gathered.value();
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Row& a, const Row& b) {
                     return a[0].int_value() % 10 < b[0].int_value() % 10;
                   });

  std::vector<BoundExprPtr> keys;
  keys.push_back(Bind(MakeBinary(BinaryOp::kMod, MakeColumnRef("", "i"),
                                 MakeLiteral(Datum::Int64(10)))));
  SortNode sort(std::make_unique<GatherNode>(Scan(), &db_->pool(),
                                             RowBatch::kDefaultCapacity),
                std::move(keys), {false}, /*limit=*/-1);
  const std::vector<Row> rows = Drain(sort);
  ASSERT_EQ(rows.size(), expected.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i][0].int_value(), expected[i][0].int_value()) << i;
  }
}

TEST_P(ExecOperatorsTest, PartialSortWithLimitMatchesFullSortPrefix) {
  const int64_t limit = 7;
  auto gathered = DrainAllStreams(*Scan(), &db_->pool(),
                                  RowBatch::kDefaultCapacity);
  NLQ_ASSERT_OK(gathered.status());
  std::vector<Row> expected = gathered.value();
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Row& a, const Row& b) {
                     return a[0].int_value() % 10 > b[0].int_value() % 10;
                   });
  if (expected.size() > static_cast<size_t>(limit)) {
    expected.resize(static_cast<size_t>(limit));
  }

  std::vector<BoundExprPtr> keys;
  keys.push_back(Bind(MakeBinary(BinaryOp::kMod, MakeColumnRef("", "i"),
                                 MakeLiteral(Datum::Int64(10)))));
  SortNode sort(std::make_unique<GatherNode>(Scan(), &db_->pool(),
                                             RowBatch::kDefaultCapacity),
                std::move(keys), {true}, limit);
  const std::vector<Row> rows = Drain(sort);
  ASSERT_EQ(rows.size(), expected.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i][0].int_value(), expected[i][0].int_value()) << i;
  }
}

TEST_P(ExecOperatorsTest, LimitTruncatesAndShortCircuits) {
  LimitNode limit(std::make_unique<GatherNode>(Scan(), &db_->pool(),
                                               RowBatch::kDefaultCapacity),
                  10);
  EXPECT_EQ(Drain(limit).size(), std::min<size_t>(n(), 10));

  LimitNode zero(std::make_unique<GatherNode>(Scan(), &db_->pool(),
                                              RowBatch::kDefaultCapacity),
                 0);
  EXPECT_TRUE(Drain(zero).empty());
}

TEST_P(ExecOperatorsTest, ExecutePlanMaterializesRootStream) {
  PhysicalPlan plan;
  plan.root = std::make_unique<GatherNode>(Scan(), &db_->pool(),
                                           RowBatch::kDefaultCapacity);
  plan.output_schema = table_->schema();
  auto result = ExecutePlan(plan);
  NLQ_ASSERT_OK(result.status());
  EXPECT_EQ(result->num_rows(), n());
  EXPECT_EQ(result->num_columns(), 2u);
}

INSTANTIATE_TEST_SUITE_P(BatchBoundaries, ExecOperatorsTest,
                         ::testing::Values(0, 1, 1023, 1024, 1025));

TEST(ConstantInputNodeTest, EmitsRequestedEmptyRows) {
  for (const size_t rows : {size_t{0}, size_t{1}}) {
    ConstantInputNode node(rows);
    auto drained = DrainAllStreams(node, nullptr, RowBatch::kDefaultCapacity);
    NLQ_ASSERT_OK(drained.status());
    EXPECT_EQ(drained->size(), rows);
  }
}

TEST(CompareDatumTest, Int64KeysCompareExactlyAbove2Pow53) {
  // 2^53 and 2^53 + 1 collapse to the same double; the int path must
  // still order them.
  const int64_t big = int64_t{1} << 53;
  EXPECT_EQ(static_cast<double>(big), static_cast<double>(big + 1));
  EXPECT_EQ(CompareDatum(Datum::Int64(big), Datum::Int64(big + 1)), -1);
  EXPECT_EQ(CompareDatum(Datum::Int64(big + 1), Datum::Int64(big)), 1);
  EXPECT_EQ(CompareDatum(Datum::Int64(big), Datum::Int64(big)), 0);
}

TEST(CompareDatumTest, NullsFirstAndMixedTypesViaDouble) {
  EXPECT_EQ(CompareDatum(Datum::Null(storage::DataType::kInt64),
                         Datum::Int64(-5)),
            -1);
  EXPECT_EQ(CompareDatum(Datum::Int64(-5),
                         Datum::Null(storage::DataType::kInt64)),
            1);
  EXPECT_EQ(CompareDatum(Datum::Int64(2), Datum::Double(2.5)), -1);
  EXPECT_EQ(CompareDatum(Datum::Double(3.5), Datum::Int64(3)), 1);
}

}  // namespace
}  // namespace nlq::engine::exec
