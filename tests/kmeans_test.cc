#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "stats/kmeans.h"
#include "tests/test_util.h"

namespace nlq::stats {
namespace {

/// Well-separated blobs: cluster j centered at (100j, 100j, ...).
std::vector<linalg::Vector> SeparatedBlobs(size_t k, size_t per_cluster,
                                           size_t d, uint64_t seed) {
  Random rng(seed);
  std::vector<linalg::Vector> points;
  for (size_t j = 0; j < k; ++j) {
    for (size_t i = 0; i < per_cluster; ++i) {
      linalg::Vector x(d);
      for (size_t a = 0; a < d; ++a) {
        x[a] = 100.0 * static_cast<double>(j) + rng.NextGaussian(0, 1.0);
      }
      points.push_back(std::move(x));
    }
  }
  return points;
}

TEST(KMeansTest, RecoversSeparatedClusters) {
  const auto points = SeparatedBlobs(4, 200, 3, 7);
  KMeansOptions options;
  options.k = 4;
  options.seed = 3;
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel model, FitKMeans(points, options));

  // Each recovered centroid should be near one blob center; all blobs
  // should be covered.
  std::vector<bool> covered(4, false);
  for (size_t j = 0; j < 4; ++j) {
    for (size_t blob = 0; blob < 4; ++blob) {
      bool near = true;
      for (size_t a = 0; a < 3; ++a) {
        if (std::fabs(model.centroids(j, a) - 100.0 * blob) > 5.0) {
          near = false;
          break;
        }
      }
      if (near) covered[blob] = true;
    }
  }
  EXPECT_TRUE(std::all_of(covered.begin(), covered.end(),
                          [](bool c) { return c; }));
}

TEST(KMeansTest, WeightsSumToOneAndCountsSumToN) {
  const auto points = SeparatedBlobs(3, 100, 2, 11);
  KMeansOptions options;
  options.k = 3;
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel model, FitKMeans(points, options));
  double weight_sum = 0, count_sum = 0;
  for (size_t j = 0; j < 3; ++j) {
    weight_sum += model.weights[j];
    count_sum += model.counts[j];
  }
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(count_sum, 300.0);
}

TEST(KMeansTest, RadiiApproximateClusterVariance) {
  // Blobs have per-dimension variance 1.
  const auto points = SeparatedBlobs(2, 5000, 2, 13);
  KMeansOptions options;
  options.k = 2;
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel model, FitKMeans(points, options));
  for (size_t j = 0; j < 2; ++j) {
    for (size_t a = 0; a < 2; ++a) {
      EXPECT_NEAR(model.radii(j, a), 1.0, 0.15);
    }
  }
}

TEST(KMeansTest, NearestCentroidConsistent) {
  const auto points = SeparatedBlobs(3, 50, 2, 17);
  KMeansOptions options;
  options.k = 3;
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel model, FitKMeans(points, options));
  for (const auto& p : points) {
    const size_t j = model.NearestCentroid(p);
    for (size_t other = 0; other < 3; ++other) {
      EXPECT_LE(model.SquaredDistanceTo(p.data(), j),
                model.SquaredDistanceTo(p.data(), other) + 1e-12);
    }
  }
}

TEST(KMeansTest, MoreIterationsNeverWorse) {
  Random rng(19);
  std::vector<linalg::Vector> points;
  for (int i = 0; i < 2000; ++i) {
    points.push_back({rng.NextUniform(0, 100), rng.NextUniform(0, 100)});
  }
  KMeansOptions one;
  one.k = 8;
  one.max_iterations = 1;
  one.tolerance = 0;
  KMeansOptions many = one;
  many.max_iterations = 25;
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel m1, FitKMeans(points, one));
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel m25, FitKMeans(points, many));
  EXPECT_LE(m25.SumSquaredError(points), m1.SumSquaredError(points) + 1e-6);
}

TEST(KMeansTest, IncrementalOnePassIsReasonable) {
  const auto points = SeparatedBlobs(3, 300, 2, 23);
  KMeansOptions options;
  options.k = 3;
  options.incremental = true;
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel model, FitKMeans(points, options));
  // The paper: incremental gets a "good, but probably suboptimal"
  // solution in one pass. Sanity: SSE within 5x of the full solution.
  KMeansOptions full = options;
  full.incremental = false;
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel reference, FitKMeans(points, full));
  EXPECT_LT(model.SumSquaredError(points),
            5.0 * reference.SumSquaredError(points) + 100.0);
  double weight_sum = 0;
  for (double w : model.weights) weight_sum += w;
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
}

TEST(KMeansTest, DeterministicForSeed) {
  const auto points = SeparatedBlobs(2, 100, 2, 29);
  KMeansOptions options;
  options.k = 2;
  options.seed = 77;
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel a, FitKMeans(points, options));
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel b, FitKMeans(points, options));
  EXPECT_EQ(a.centroids.MaxAbsDiff(b.centroids), 0.0);
}

TEST(KMeansTest, KEqualsOneGivesGlobalMean) {
  const auto points = SeparatedBlobs(2, 100, 2, 31);
  KMeansOptions options;
  options.k = 1;
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel model, FitKMeans(points, options));
  linalg::Vector mean(2, 0.0);
  for (const auto& p : points) {
    mean[0] += p[0];
    mean[1] += p[1];
  }
  mean[0] /= points.size();
  mean[1] /= points.size();
  EXPECT_NEAR(model.centroids(0, 0), mean[0], 1e-9);
  EXPECT_NEAR(model.centroids(0, 1), mean[1], 1e-9);
  EXPECT_DOUBLE_EQ(model.weights[0], 1.0);
}

TEST(KMeansTest, ErrorCases) {
  EXPECT_FALSE(FitKMeans({}, KMeansOptions{}).ok());
  KMeansOptions zero_k;
  zero_k.k = 0;
  EXPECT_FALSE(FitKMeans({{1.0, 2.0}}, zero_k).ok());
}

TEST(KMeansTest, UpdateClusterFromStatsValidation) {
  KMeansModel model;
  model.d = 2;
  model.k = 2;
  model.centroids = linalg::Matrix(2, 2);
  model.radii = linalg::Matrix(2, 2);
  model.weights.assign(2, 0.0);
  model.counts.assign(2, 0.0);

  SufStats wrong_d(3, MatrixKind::kDiagonal);
  EXPECT_FALSE(UpdateClusterFromStats(wrong_d, 10, 0, &model).ok());

  SufStats stats(2, MatrixKind::kDiagonal);
  EXPECT_FALSE(UpdateClusterFromStats(stats, 10, 5, &model).ok());

  stats.Update(std::vector<double>{2, 4});
  stats.Update(std::vector<double>{4, 8});
  NLQ_ASSERT_OK(UpdateClusterFromStats(stats, 10, 1, &model));
  EXPECT_DOUBLE_EQ(model.centroids(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(model.centroids(1, 1), 6.0);
  EXPECT_DOUBLE_EQ(model.weights[1], 0.2);
  EXPECT_DOUBLE_EQ(model.radii(1, 0), 1.0);  // var of {2,4}
}

class KMeansSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KMeansSweepTest, SseDecreasesWithK) {
  Random rng(37);
  std::vector<linalg::Vector> points;
  for (int i = 0; i < 3000; ++i) {
    points.push_back({rng.NextUniform(0, 100), rng.NextUniform(0, 100),
                      rng.NextUniform(0, 100)});
  }
  KMeansOptions small;
  small.k = GetParam();
  small.seed = 5;
  KMeansOptions bigger = small;
  bigger.k = GetParam() * 2;
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel m_small, FitKMeans(points, small));
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel m_big, FitKMeans(points, bigger));
  EXPECT_LT(m_big.SumSquaredError(points), m_small.SumSquaredError(points));
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansSweepTest, ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace nlq::stats
