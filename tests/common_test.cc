#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/memory_tracker.h"
#include "common/metrics.h"
#include "common/query_context.h"
#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "tests/test_util.h"

namespace nlq {
namespace {

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad d");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad d");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad d");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kDeadlineExceeded); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, LifecycleCodes) {
  Status cancelled = Status::Cancelled("stop");
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "Cancelled: stop");

  Status late = Status::DeadlineExceeded("too slow");
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late.ToString(), "DeadlineExceeded: too slow");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Double(StatusOr<int> in) {
  NLQ_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Double(21), 42);
  EXPECT_FALSE(Double(Status::Internal("x")).ok());
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a;;b;", ';');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingleField) {
  auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(AsciiToLower("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("BETA", "beta"));
  EXPECT_FALSE(EqualsIgnoreCase("BETA", "betas"));
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x1 \t\n"), "x1");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringsTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("  7 "), 7.0);
}

TEST(StringsTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(StringsTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("-42"), -42);
  EXPECT_FALSE(ParseInt64("4.2").ok());
}

TEST(StringsTest, StringPrintfFormats) {
  EXPECT_EQ(StringPrintf("Q%zu_%zu=%d", size_t{2}, size_t{1}, 7), "Q2_1=7");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

// Property: AppendDouble emits a shortest round-trip representation.
class DoubleRoundTripTest : public ::testing::TestWithParam<double> {};

TEST_P(DoubleRoundTripTest, RoundTrips) {
  std::string text;
  AppendDouble(&text, GetParam());
  auto parsed = ParseDouble(text);
  ASSERT_TRUE(parsed.ok()) << text;
  EXPECT_EQ(*parsed, GetParam()) << text;
}

INSTANTIATE_TEST_SUITE_P(
    Values, DoubleRoundTripTest,
    ::testing::Values(0.0, -0.0, 1.0, -1.5, 3.141592653589793, 1e-300, 1e300,
                      123456789.123456789, -2.2250738585072014e-308,
                      0.1, 1.0 / 3.0, 65504.0));

TEST(StringsTest, RandomDoubleRoundTripSweep) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = (rng.NextDouble() - 0.5) * std::pow(10.0, static_cast<double>(rng.NextUint64(60)) - 30.0);
    std::string text;
    AppendDouble(&text, v);
    auto parsed = ParseDouble(text);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, v);
  }
}

// ---------------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------------

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 2);
}

TEST(RandomTest, BoundedStaysInRange) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextUint64(17), 17u);
}

TEST(RandomTest, UniformRange) {
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextUniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RandomTest, GaussianMoments) {
  Random rng(11);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(RandomTest, GaussianMeanStddev) {
  Random rng(13);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(50.0, 10.0);
  EXPECT_NEAR(sum / n, 50.0, 0.2);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  NLQ_ASSERT_OK(pool.ParallelFor(100, [&](size_t i) {
    hits[i]++;
    return Status::OK();
  }));
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroTasksReturnsImmediately) {
  ThreadPool pool(2);
  NLQ_ASSERT_OK(pool.ParallelFor(0, [](size_t) {
    ADD_FAILURE();
    return Status::OK();
  }));
}

TEST(ThreadPoolTest, SequentialBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 10; ++batch) {
    NLQ_ASSERT_OK(pool.ParallelFor(10, [&](size_t) {
      counter++;
      return Status::OK();
    }));
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  NLQ_ASSERT_OK(pool.ParallelFor(5, [&](size_t) {
    counter++;
    return Status::OK();
  }));
  EXPECT_EQ(counter.load(), 5);
}

TEST(ThreadPoolTest, ActuallyParallel) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::set<std::thread::id> ids;
  std::mutex mu;
  NLQ_ASSERT_OK(pool.ParallelFor(64, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
    return Status::OK();
  }));
  EXPECT_GT(ids.size(), 1u);
}

// ---------------------------------------------------------------------------
// ThreadPool: error propagation and early exit
// ---------------------------------------------------------------------------

TEST(ThreadPoolErrorTest, FirstErrorWinsDeterministically) {
  // Two failing indices: the error for the LOWEST index must surface
  // no matter which thread hits which index first. Repeat to shake
  // out scheduling luck.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    Status s = pool.ParallelFor(100, [&](size_t i) -> Status {
      if (i == 17) return Status::Internal("boom at 17");
      if (i == 80) return Status::Internal("boom at 80");
      return Status::OK();
    });
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.message(), "boom at 17");
  }
}

TEST(ThreadPoolErrorTest, ErrorSkipsRemainingIndices) {
  // After index 0 fails, later indices are claimed-and-skipped; with a
  // single worker the drain order is sequential so none of them run.
  ThreadPool pool(0);
  std::atomic<int> ran{0};
  Status s = pool.ParallelFor(1000, [&](size_t i) -> Status {
    if (i == 0) return Status::Internal("early");
    ran++;
    return Status::OK();
  });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolErrorTest, SingleIndexErrorPropagates) {
  ThreadPool pool(2);
  Status s = pool.ParallelForMorsels(
      1, [](size_t, size_t) { return Status::NotFound("gone"); });
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(ThreadPoolErrorTest, PoolUsableAfterError) {
  ThreadPool pool(3);
  Status bad = pool.ParallelFor(
      10, [](size_t) { return Status::Internal("x"); });
  ASSERT_FALSE(bad.ok());
  std::atomic<int> counter{0};
  NLQ_ASSERT_OK(pool.ParallelFor(10, [&](size_t) {
    counter++;
    return Status::OK();
  }));
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolErrorTest, CancelledContextStopsClaims) {
  ThreadPool pool(4);
  QueryContext ctx;
  ctx.RequestCancel();
  std::atomic<int> ran{0};
  Status s = pool.ParallelForMorsels(
      100,
      [&](size_t, size_t) {
        ran++;
        return Status::OK();
      },
      &ctx);
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolErrorTest, MidFlightCancellationSurfaces) {
  ThreadPool pool(2);
  QueryContext ctx;
  std::atomic<int> seen{0};
  Status s = pool.ParallelForMorsels(
      1000,
      [&](size_t, size_t) {
        if (++seen == 3) ctx.RequestCancel();
        return Status::OK();
      },
      &ctx);
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_LT(seen.load(), 1000);
}

// ---------------------------------------------------------------------------
// MemoryTracker
// ---------------------------------------------------------------------------

TEST(MemoryTrackerTest, UnlimitedTracksUsage) {
  MemoryTracker tracker;
  NLQ_ASSERT_OK(tracker.Charge(1 << 20, "test"));
  EXPECT_EQ(tracker.used(), 1u << 20);
  EXPECT_EQ(tracker.peak(), 1u << 20);
  tracker.Release(1 << 20);
  EXPECT_EQ(tracker.used(), 0u);
  EXPECT_EQ(tracker.peak(), 1u << 20);  // peak is sticky
}

TEST(MemoryTrackerTest, OverBudgetChargeFailsAndRollsBack) {
  MemoryTracker tracker(1000);
  NLQ_ASSERT_OK(tracker.Charge(600, "first"));
  Status s = tracker.Charge(500, "second");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("second"), std::string::npos);
  EXPECT_EQ(tracker.used(), 600u);  // failed charge rolled back
  NLQ_ASSERT_OK(tracker.Charge(400, "fits"));
}

TEST(MemoryTrackerTest, TryChargeIsAllOrNothing) {
  MemoryTracker tracker(100);
  EXPECT_TRUE(tracker.TryCharge(80));
  EXPECT_FALSE(tracker.TryCharge(21));
  EXPECT_EQ(tracker.used(), 80u);
  EXPECT_TRUE(tracker.TryCharge(20));
  EXPECT_EQ(tracker.used(), 100u);
}

TEST(MemoryTrackerTest, ConcurrentChargesNeverExceedLimit) {
  MemoryTracker tracker(1000);
  ThreadPool pool(4);
  std::atomic<int> granted{0};
  NLQ_ASSERT_OK(pool.ParallelFor(100, [&](size_t) {
    if (tracker.TryCharge(10)) granted++;
    return Status::OK();
  }));
  EXPECT_EQ(granted.load(), 100);
  EXPECT_EQ(tracker.used(), 1000u);
  EXPECT_FALSE(tracker.TryCharge(1));
}

// ---------------------------------------------------------------------------
// QueryContext
// ---------------------------------------------------------------------------

TEST(QueryContextTest, FreshContextIsAlive) {
  QueryContext ctx;
  NLQ_EXPECT_OK(ctx.CheckAlive());
  EXPECT_FALSE(ctx.cancel_requested());
  EXPECT_FALSE(ctx.has_deadline());
}

TEST(QueryContextTest, CancelFlipsToCancelled) {
  QueryContext ctx;
  ctx.set_query_id(7);
  ctx.RequestCancel();
  Status s = ctx.CheckAlive();
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_NE(s.message().find('7'), std::string::npos);
}

TEST(QueryContextTest, ExpiredDeadlineIsDeadlineExceeded) {
  QueryContext ctx;
  ctx.SetTimeout(0);  // deadline == now: already expired
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(ctx.CheckAlive().code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryContextTest, FutureDeadlineStillAlive) {
  QueryContext ctx;
  ctx.SetTimeout(60'000);
  NLQ_EXPECT_OK(ctx.CheckAlive());
}

TEST(QueryContextTest, CancellationOutranksExpiredDeadline) {
  QueryContext ctx;
  ctx.SetTimeout(0);
  ctx.RequestCancel();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(ctx.CheckAlive().code(), StatusCode::kCancelled);
}

TEST(QueryContextTest, SharedTokenOutlivesContext) {
  std::shared_ptr<std::atomic<bool>> token;
  {
    QueryContext ctx;
    token = ctx.cancel_token();
  }
  token->store(true);  // must not crash: token is shared, not borrowed
  EXPECT_TRUE(token->load());
}


// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, ShardedCounterSumsConcurrentWriters) {
  ShardedCounter counter;
  constexpr size_t kWriters = 8;
  constexpr uint64_t kPerWriter = 20000;
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerWriter; ++i) counter.Increment();
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(counter.Value(), kWriters * kPerWriter);
}

TEST(MetricsTest, SnapshotDuringConcurrentWritesIsSane) {
  // Writers hammer a counter and a histogram while a reader snapshots
  // continuously: every observed total must be monotone and untorn
  // (TSan runs this too — the sharded relaxed atomics must be clean).
  MetricsRegistry registry;
  ShardedCounter& counter = registry.counter("test.writes");
  Histogram& latency = registry.histogram("test.latency");
  std::atomic<bool> done{false};
  constexpr size_t kWriters = 4;
  constexpr uint64_t kPerWriter = 10000;
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&counter, &latency, t] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        counter.Add(1);
        latency.Observe((t + 1) * 1000 * (i % 64 + 1));
      }
    });
  }
  uint64_t last_total = 0;
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const MetricsSnapshot snap = registry.GetSnapshot();
      const auto it = snap.counters.find("test.writes");
      ASSERT_NE(it, snap.counters.end());
      EXPECT_GE(it->second, last_total) << "counter went backwards";
      EXPECT_LE(it->second, kWriters * kPerWriter);
      last_total = it->second;
    }
  });
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  reader.join();
  const MetricsSnapshot final_snap = registry.GetSnapshot();
  EXPECT_EQ(final_snap.counters.at("test.writes"), kWriters * kPerWriter);
  const auto& hist = final_snap.histograms.at("test.latency");
  EXPECT_EQ(hist.count, kWriters * kPerWriter);
  uint64_t bucket_total = 0;
  for (const auto& [le, n] : hist.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, hist.count);
}

TEST(MetricsTest, HistogramBucketsArePowersOfTwoMicros) {
  Histogram h;
  h.Observe(500);         // < 1us -> first bucket
  h.Observe(1500);        // ~1.5us
  h.Observe(3 * 1000000); // 3ms
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.SumNanos(), 500u + 1500u + 3000000u);
  uint64_t total = 0;
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    total += h.BucketCount(b);
    if (b + 1 < Histogram::kNumBuckets) {
      EXPECT_EQ(Histogram::BucketUpperNanos(b), (1ull << b) * 1000ull);
    }
  }
  EXPECT_EQ(total, 3u);
  // Each observation landed in a bucket whose bound exceeds it.
  EXPECT_GE(Histogram::BucketUpperNanos(Histogram::kNumBuckets - 1),
            uint64_t{3000000});
}

TEST(MetricsTest, PercentileEmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Percentile(1.0), 0u);
  MetricsSnapshot::HistogramData empty;
  EXPECT_EQ(empty.PercentileNanos(0.95), 0u);
}

TEST(MetricsTest, PercentileBucketBoundaries) {
  Histogram h;
  // 10 observations in the ~1.5us bucket (upper bound 2us), then one
  // at ~3ms. Every quantile up to 10/11 must answer with the 2us
  // bucket's bound; anything above must land in the 3ms bucket.
  for (int i = 0; i < 10; ++i) h.Observe(1500);
  h.Observe(3 * 1000 * 1000);
  const uint64_t low = h.Percentile(0.5);
  EXPECT_EQ(low, 2000u);  // 2^1 us
  EXPECT_EQ(h.Percentile(0.9), 2000u);  // rank ceil(9.9) = 10th obs
  const uint64_t high = h.Percentile(0.99);
  EXPECT_EQ(high, 4 * 1024 * 1000u);  // 3ms rounds up to the 2^12-us bucket
  EXPECT_EQ(h.Percentile(1.0), high);
  // q == 0 selects the first observation, never "nothing".
  EXPECT_EQ(h.Percentile(0.0), 2000u);
  // Out-of-range q clamps instead of crashing.
  EXPECT_EQ(h.Percentile(-1.0), 2000u);
  EXPECT_EQ(h.Percentile(2.0), high);
}

TEST(MetricsTest, PercentileOverflowBucketIsMax) {
  Histogram h;
  h.Observe(UINT64_MAX / 2);  // far beyond the last bounded bucket
  EXPECT_EQ(h.Percentile(0.5), UINT64_MAX);
}

TEST(MetricsTest, SnapshotPercentileMatchesLiveHistogram) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test.p");
  for (int i = 0; i < 100; ++i) h.Observe(uint64_t(i) * 100 * 1000);
  const MetricsSnapshot snap = registry.GetSnapshot();
  const auto& data = snap.histograms.at("test.p");
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(data.PercentileNanos(q), h.Percentile(q)) << "q=" << q;
  }
}

TEST(MetricsTest, GaugeLastWriteWins) {
  MetricsRegistry registry;
  registry.gauge("test.depth").Set(42);
  registry.gauge("test.depth").Add(-2);
  EXPECT_EQ(registry.gauge("test.depth").Value(), 40);
  EXPECT_EQ(registry.GetSnapshot().gauges.at("test.depth"), 40);
}

TEST(MetricsTest, RegistryReturnsStableReferences) {
  MetricsRegistry registry;
  ShardedCounter& a = registry.counter("test.same");
  ShardedCounter& b = registry.counter("test.same");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.Value(), 3u);
}

TEST(MetricsTest, QueryStatsWorkerClaimsAndOperators) {
  QueryStats stats;
  stats.SetWorkerCount(3);
  OperatorStats* op = stats.AddOperator("Scan", "X: 10 rows", 1);
  ASSERT_NE(op, nullptr);
  std::vector<std::thread> workers;
  for (size_t w = 0; w < 3; ++w) {
    workers.emplace_back([&stats, op, w] {
      for (int i = 0; i < 1000; ++i) {
        stats.CountMorselClaim(w);
        op->rows_out.fetch_add(2, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : workers) t.join();
  stats.CountMorselClaim(99);  // unknown worker id: dropped, no crash
  const QueryStatsSnapshot snap = SnapshotQueryStats(stats);
  ASSERT_EQ(snap.worker_morsel_claims.size(), 3u);
  for (const uint64_t c : snap.worker_morsel_claims) EXPECT_EQ(c, 1000u);
  ASSERT_EQ(snap.operators.size(), 1u);
  EXPECT_EQ(snap.operators[0].name, "Scan");
  EXPECT_EQ(snap.operators[0].rows_out, 6000u);
  EXPECT_EQ(snap.operators[0].depth, 1u);
  // Snapshots serialize to JSON without touching the live tree.
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"Scan\""), std::string::npos);
  EXPECT_NE(json.find("worker_morsel_claims"), std::string::npos);
}

}  // namespace
}  // namespace nlq
