#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "tests/test_util.h"

namespace nlq {
namespace {

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad d");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad d");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad d");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kParseError); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Double(StatusOr<int> in) {
  NLQ_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Double(21), 42);
  EXPECT_FALSE(Double(Status::Internal("x")).ok());
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a;;b;", ';');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingleField) {
  auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(AsciiToLower("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("BETA", "beta"));
  EXPECT_FALSE(EqualsIgnoreCase("BETA", "betas"));
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x1 \t\n"), "x1");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringsTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("  7 "), 7.0);
}

TEST(StringsTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(StringsTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("-42"), -42);
  EXPECT_FALSE(ParseInt64("4.2").ok());
}

TEST(StringsTest, StringPrintfFormats) {
  EXPECT_EQ(StringPrintf("Q%zu_%zu=%d", size_t{2}, size_t{1}, 7), "Q2_1=7");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

// Property: AppendDouble emits a shortest round-trip representation.
class DoubleRoundTripTest : public ::testing::TestWithParam<double> {};

TEST_P(DoubleRoundTripTest, RoundTrips) {
  std::string text;
  AppendDouble(&text, GetParam());
  auto parsed = ParseDouble(text);
  ASSERT_TRUE(parsed.ok()) << text;
  EXPECT_EQ(*parsed, GetParam()) << text;
}

INSTANTIATE_TEST_SUITE_P(
    Values, DoubleRoundTripTest,
    ::testing::Values(0.0, -0.0, 1.0, -1.5, 3.141592653589793, 1e-300, 1e300,
                      123456789.123456789, -2.2250738585072014e-308,
                      0.1, 1.0 / 3.0, 65504.0));

TEST(StringsTest, RandomDoubleRoundTripSweep) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = (rng.NextDouble() - 0.5) * std::pow(10.0, static_cast<double>(rng.NextUint64(60)) - 30.0);
    std::string text;
    AppendDouble(&text, v);
    auto parsed = ParseDouble(text);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, v);
  }
}

// ---------------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------------

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 2);
}

TEST(RandomTest, BoundedStaysInRange) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextUint64(17), 17u);
}

TEST(RandomTest, UniformRange) {
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextUniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RandomTest, GaussianMoments) {
  Random rng(11);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(RandomTest, GaussianMeanStddev) {
  Random rng(13);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(50.0, 10.0);
  EXPECT_NEAR(sum / n, 50.0, 0.2);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, SequentialBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 10; ++batch) {
    pool.ParallelFor(10, [&](size_t) { counter++; });
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.ParallelFor(5, [&](size_t) { counter++; });
  EXPECT_EQ(counter.load(), 5);
}

TEST(ThreadPoolTest, ActuallyParallel) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::set<std::thread::id> ids;
  std::mutex mu;
  pool.ParallelFor(64, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GT(ids.size(), 1u);
}

}  // namespace
}  // namespace nlq
