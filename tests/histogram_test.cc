#include <gtest/gtest.h>

#include <cmath>

#include "common/strings.h"
#include "engine/database.h"
#include "gen/datagen.h"
#include "stats/histogram.h"
#include "stats/miner.h"
#include "tests/test_util.h"

namespace nlq::stats {
namespace {

class HistogramTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = nlq::testing::MakeTestDatabase();
    NLQ_ASSERT_OK(db_->ExecuteCommand("CREATE TABLE T (i BIGINT, v DOUBLE)"));
    // Values 0.5, 1.5, ..., 9.5 — one per unit bucket of [0, 10).
    for (int i = 0; i < 10; ++i) {
      NLQ_ASSERT_OK(db_->ExecuteCommand(
          "INSERT INTO T VALUES (" + std::to_string(i) + ", " +
          std::to_string(i + 0.5) + ")"));
    }
  }

  Histogram RunHist(const std::string& sql) {
    auto result = db_->Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    auto hist = Histogram::FromPackedString(result->At(0, 0).string_value());
    EXPECT_TRUE(hist.ok()) << hist.status().ToString();
    return std::move(hist).value();
  }

  std::unique_ptr<engine::Database> db_;
};

TEST_F(HistogramTest, UniformValuesOnePerBin) {
  const Histogram h = RunHist("SELECT hist(v, 0, 10, 10) FROM T");
  EXPECT_EQ(h.bins, 10u);
  EXPECT_DOUBLE_EQ(h.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.hi, 10.0);
  EXPECT_DOUBLE_EQ(h.BinWidth(), 1.0);
  for (uint64_t c : h.counts) EXPECT_EQ(c, 1u);
  EXPECT_EQ(h.below, 0u);
  EXPECT_EQ(h.above, 0u);
  EXPECT_EQ(h.TotalCount(), 10u);
}

TEST_F(HistogramTest, OutOfRangeGoesToTails) {
  const Histogram h = RunHist("SELECT hist(v, 2, 8, 3) FROM T");
  EXPECT_EQ(h.below, 2u);  // 0.5, 1.5
  EXPECT_EQ(h.above, 2u);  // 8.5, 9.5
  uint64_t in_range = 0;
  for (uint64_t c : h.counts) in_range += c;
  EXPECT_EQ(in_range, 6u);
}

TEST_F(HistogramTest, NullsAreSkipped) {
  NLQ_ASSERT_OK(db_->ExecuteCommand("INSERT INTO T VALUES (99, NULL)"));
  const Histogram h = RunHist("SELECT hist(v, 0, 10, 5) FROM T");
  EXPECT_EQ(h.TotalCount(), 10u);
}

TEST_F(HistogramTest, GroupedHistograms) {
  auto result =
      db_->Execute("SELECT i % 2, hist(v, 0, 10, 10) FROM T GROUP BY i % 2 "
                   "ORDER BY 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 2u);
  for (size_t r = 0; r < 2; ++r) {
    NLQ_ASSERT_OK_AND_ASSIGN(
        Histogram h,
        Histogram::FromPackedString(result->At(r, 1).string_value()));
    EXPECT_EQ(h.TotalCount(), 5u);
  }
}

TEST_F(HistogramTest, PartitionInvariant) {
  for (size_t parts : {1u, 3u, 8u}) {
    auto db = nlq::testing::MakeTestDatabase(parts);
    NLQ_ASSERT_OK(db->ExecuteCommand("CREATE TABLE U (i BIGINT, v DOUBLE)"));
    for (int i = 0; i < 100; ++i) {
      NLQ_ASSERT_OK(db->ExecuteCommand(
          "INSERT INTO U VALUES (" + std::to_string(i) + ", " +
          std::to_string(i % 10) + ")"));
    }
    auto result = db->Execute("SELECT hist(v, 0, 10, 10) FROM U");
    ASSERT_TRUE(result.ok());
    NLQ_ASSERT_OK_AND_ASSIGN(
        Histogram h,
        Histogram::FromPackedString(result->At(0, 0).string_value()));
    for (uint64_t c : h.counts) EXPECT_EQ(c, 10u);
  }
}

TEST_F(HistogramTest, ErrorCases) {
  EXPECT_FALSE(db_->Execute("SELECT hist(v) FROM T").ok());
  EXPECT_FALSE(db_->Execute("SELECT hist(v, 10, 0, 5) FROM T").ok());
  EXPECT_FALSE(db_->Execute("SELECT hist(v, 0, 10, 0) FROM T").ok());
  EXPECT_FALSE(db_->Execute("SELECT hist(v, 0, 10, 99999) FROM T").ok());
}

TEST_F(HistogramTest, PackedParsingRejectsGarbage) {
  EXPECT_FALSE(Histogram::FromPackedString("").ok());
  EXPECT_FALSE(Histogram::FromPackedString("0|10|3|1;2|0|0").ok());
  EXPECT_FALSE(Histogram::FromPackedString("0|10|3|1;2;-1|0|0").ok());
  EXPECT_FALSE(Histogram::FromPackedString("0|10|x|1;2;3|0|0").ok());
}

TEST_F(HistogramTest, EmptyInputYieldsEmptyHistogram) {
  NLQ_ASSERT_OK(db_->ExecuteCommand("CREATE TABLE E (v DOUBLE)"));
  auto result = db_->Execute("SELECT hist(v, 0, 1, 4) FROM E");
  ASSERT_TRUE(result.ok());
  NLQ_ASSERT_OK_AND_ASSIGN(
      Histogram h,
      Histogram::FromPackedString(result->At(0, 0).string_value()));
  EXPECT_EQ(h.bins, 0u);
  EXPECT_EQ(h.TotalCount(), 0u);
}

// The paper's use case: the nlq UDF's min/max drive histogram ranges
// and z-score outlier detection — all inside the engine.
TEST_F(HistogramTest, NlqMinMaxDrivesHistogramAndOutliers) {
  auto db = nlq::testing::MakeTestDatabase();
  gen::MixtureOptions options;
  options.n = 2000;
  options.d = 2;
  options.seed = 404;
  NLQ_ASSERT_OK(gen::GenerateDataSetTable(db.get(), "X", options).status());
  WarehouseMiner miner(db.get());
  NLQ_ASSERT_OK_AND_ASSIGN(
      SufStats stats,
      miner.ComputeSufStats("X", DimensionColumns(2),
                            MatrixKind::kLowerTriangular,
                            ComputeVia::kUdfList));

  // Histogram over the observed range of X1: nothing may fall outside.
  const std::string sql = HistogramQuery("X", "X1", stats, 0, 20);
  auto result = db->Execute(sql);
  ASSERT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
  NLQ_ASSERT_OK_AND_ASSIGN(
      Histogram h,
      Histogram::FromPackedString(result->At(0, 0).string_value()));
  EXPECT_EQ(h.below, 0u);
  EXPECT_EQ(h.above, 0u);
  EXPECT_EQ(h.TotalCount(), 2000u);

  // Z-score outliers against mu/sigma derived from the statistics.
  const auto mu = stats.Mean();
  NLQ_ASSERT_OK_AND_ASSIGN(linalg::Matrix cov, stats.CovarianceMatrix());
  const double sigma = std::sqrt(cov(0, 0));
  const std::string outlier_sql = nlq::StringPrintf(
      "SELECT count(*) FROM X WHERE zscore(X1, %f, %f) > 3", mu[0], sigma);
  NLQ_ASSERT_OK_AND_ASSIGN(double outliers, db->QueryDouble(outlier_sql));
  // A mixture over [0,100] has thin 3-sigma tails: a small fraction.
  EXPECT_LT(outliers, 2000 * 0.05);
}

TEST_F(HistogramTest, ZScoreScalar) {
  auto result = db_->Execute(
      "SELECT zscore(7, 5, 2), zscore(3, 5, 2), zscore(1, 1, 0), "
      "zscore(NULL, 0, 1)");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->GetDouble(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(result->GetDouble(0, 1), 1.0);
  EXPECT_TRUE(result->At(0, 2).is_null());  // sigma <= 0
  EXPECT_TRUE(result->At(0, 3).is_null());
}

}  // namespace
}  // namespace nlq::stats
