// The acceptance test from DESIGN.md section 14: a server pinned to
// max_concurrent_statements=2 under fire from 16 client threads must
// answer EVERY statement with either (a) a result bit-identical to
// embedded execution or (b) a retryable admission rejection — never
// an internal error, never a wrong answer, never a hang. Built to run
// under TSan (the CI matrix includes it): the interesting failures
// here are races between admission, the session registry, and the
// shared Database.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/datagen.h"
#include "server/client.h"
#include "server/server.h"
#include "tests/test_util.h"

namespace nlq::server {
namespace {

using ::nlq::testing::MakeTestDatabase;

constexpr size_t kClientThreads = 16;
constexpr int kStatementsPerThread = 6;
const char kSql[] =
    "SELECT COUNT(*), SUM(X1), SUM(X1*X1), SUM(X2), SUM(X1*X2) FROM X";

/// Bitwise equality of two result sets — doubles compared as their
/// IEEE-754 bit patterns, exactly as they travel on the wire.
bool BitIdentical(const engine::ResultSet& a, const engine::ResultSet& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      const double da = a.GetDouble(r, c);
      const double db = b.GetDouble(r, c);
      uint64_t ba, bb;
      std::memcpy(&ba, &da, sizeof(da));
      std::memcpy(&bb, &db, sizeof(db));
      if (ba != bb) return false;
    }
  }
  return true;
}

class ServerOverloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase(/*num_partitions=*/4);
    gen::MixtureOptions gen;
    gen.n = 4000;
    gen.d = 2;
    gen.seed = 9;
    NLQ_ASSERT_OK(gen::GenerateDataSetTable(db_.get(), "X", gen).status());
    NLQ_ASSERT_OK_AND_ASSIGN(expected_, db_->Execute(kSql));
  }

  std::unique_ptr<engine::Database> db_;
  engine::ResultSet expected_;
};

TEST_F(ServerOverloadTest, SixteenClientsAgainstTwoSlots) {
  ServerOptions options;
  options.port = 0;
  options.admission.max_concurrent_statements = 2;
  // A short queue and wait budget so overload actually surfaces as
  // rejections instead of everyone quietly queueing.
  options.admission.max_queue_depth = 4;
  options.admission.max_queue_wait_ms = 500;
  Server server(db_.get(), options);
  NLQ_ASSERT_OK(server.Start());

  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> wrong_bits{0};
  std::atomic<uint64_t> internal_errors{0};
  std::atomic<uint64_t> connect_failures{0};

  std::vector<std::thread> workers;
  workers.reserve(kClientThreads);
  for (size_t t = 0; t < kClientThreads; ++t) {
    workers.emplace_back([&] {
      NlqClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        connect_failures.fetch_add(1);
        return;
      }
      for (int s = 0; s < kStatementsPerThread; ++s) {
        StatusOr<engine::ResultSet> result = client.Query(kSql);
        if (result.ok()) {
          if (BitIdentical(*result, expected_)) {
            completed.fetch_add(1);
          } else {
            wrong_bits.fetch_add(1);
          }
          continue;
        }
        if (client.last_error_retryable() &&
            (result.status().code() == StatusCode::kResourceExhausted ||
             result.status().code() == StatusCode::kDeadlineExceeded)) {
          rejected.fetch_add(1);
          continue;
        }
        internal_errors.fetch_add(1);
      }
      client.Goodbye();
    });
  }
  for (std::thread& w : workers) w.join();

  // The contract: every statement completed bit-identically or was
  // rejected retryable. Nothing else.
  EXPECT_EQ(wrong_bits.load(), 0u);
  EXPECT_EQ(internal_errors.load(), 0u);
  EXPECT_EQ(connect_failures.load(), 0u);
  EXPECT_EQ(completed.load() + rejected.load(),
            kClientThreads * kStatementsPerThread);
  // Overload must be visible: some statements got through, and with
  // only a 4-deep queue for 16 clients some were turned away.
  EXPECT_GT(completed.load(), 0u);
  EXPECT_GT(rejected.load(), 0u);
  EXPECT_EQ(server.admission().in_flight(), 0u);

  server.Shutdown();
}

TEST_F(ServerOverloadTest, RetryingClientsAllEventuallyComplete) {
  ServerOptions options;
  options.port = 0;
  options.admission.max_concurrent_statements = 2;
  options.admission.max_queue_depth = 4;
  options.admission.max_queue_wait_ms = 200;
  Server server(db_.get(), options);
  NLQ_ASSERT_OK(server.Start());

  // Same overload, but clients honor the retryable flag — the whole
  // fleet must make progress to completion (no livelock, no starved
  // FIFO waiter).
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kClientThreads; ++t) {
    workers.emplace_back([&, t] {
      NlqClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int s = 0; s < 2; ++s) {
        bool done = false;
        for (int attempt = 0; attempt < 200 && !done; ++attempt) {
          StatusOr<engine::ResultSet> result = client.Query(kSql);
          if (result.ok()) {
            done = BitIdentical(*result, expected_);
            break;
          }
          if (!client.last_error_retryable()) break;
          std::this_thread::sleep_for(
              std::chrono::milliseconds(1 + (t % 5)));
        }
        if (done) {
          completed.fetch_add(1);
        } else {
          failures.fetch_add(1);
        }
      }
      client.Goodbye();
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(completed.load(), kClientThreads * 2);
  server.Shutdown();
}

TEST_F(ServerOverloadTest, ShutdownMidOverloadDrainsWithoutHanging) {
  ServerOptions options;
  options.port = 0;
  options.admission.max_concurrent_statements = 2;
  options.admission.max_queue_depth = 8;
  options.admission.max_queue_wait_ms = 5'000;
  auto server = std::make_unique<Server>(db_.get(), options);
  NLQ_ASSERT_OK(server->Start());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> surprises{0};
  std::vector<std::thread> workers;
  for (size_t t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      NlqClient client;
      if (!client.Connect("127.0.0.1", server->port()).ok()) return;
      while (!stop.load(std::memory_order_acquire)) {
        StatusOr<engine::ResultSet> result = client.Query(kSql);
        if (result.ok()) {
          if (!BitIdentical(*result, expected_)) surprises.fetch_add(1);
          continue;
        }
        // During a drain the acceptable answers are: a retryable
        // rejection, an explicit kUnavailable refusal, or the socket
        // dying under us as the server closes. A plain engine error
        // would be a bug.
        if (client.last_error_retryable()) continue;
        if (result.status().code() == StatusCode::kUnavailable) return;
        if (!client.connected()) return;
        surprises.fetch_add(1);
        return;
      }
    });
  }

  // Let the fleet get mid-flight, then pull the plug. Shutdown blocks
  // until every admitted statement's reply is written — if that
  // deadlocks, this test hangs and TSan/ctest's timeout flags it.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  server->Shutdown();
  stop.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(surprises.load(), 0u);
}

}  // namespace
}  // namespace nlq::server
