#include <gtest/gtest.h>

#include "engine/ast.h"
#include "engine/lexer.h"
#include "engine/parser.h"
#include "tests/test_util.h"

namespace nlq::engine {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  NLQ_ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens,
                           Tokenize("SELECT x1, 2.5 FROM t"));
  ASSERT_EQ(tokens.size(), 7u);  // incl. end-of-input
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "x1");
  EXPECT_TRUE(tokens[2].IsSymbol(","));
  EXPECT_EQ(tokens[3].type, TokenType::kNumber);
  EXPECT_TRUE(tokens[4].IsKeyword("FROM"));
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  NLQ_ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens, Tokenize("select"));
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  NLQ_ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens, Tokenize("'it''s'"));
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, TwoCharOperators) {
  NLQ_ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens, Tokenize("a <= b <> c"));
  EXPECT_TRUE(tokens[1].IsSymbol("<="));
  EXPECT_TRUE(tokens[3].IsSymbol("<>"));
}

TEST(LexerTest, BangEqualsNormalizedToDiamond) {
  NLQ_ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens, Tokenize("a != b"));
  EXPECT_TRUE(tokens[1].IsSymbol("<>"));
}

TEST(LexerTest, Comments) {
  NLQ_ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens,
                           Tokenize("SELECT 1 -- trailing\n/* block */ + 2"));
  // SELECT 1 + 2 <eoi>
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_TRUE(tokens[2].IsSymbol("+"));
}

TEST(LexerTest, UnterminatedBlockCommentFails) {
  EXPECT_FALSE(Tokenize("SELECT /* oops").ok());
}

TEST(LexerTest, ScientificNumbers) {
  NLQ_ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens, Tokenize("1.5e-3 2E6"));
  EXPECT_EQ(tokens[0].text, "1.5e-3");
  EXPECT_EQ(tokens[1].text, "2E6");
}

TEST(LexerTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(Tokenize("SELECT @").ok());
}

// ---------------------------------------------------------------------------
// Expression parsing (checked via canonical ToString)
// ---------------------------------------------------------------------------

std::string Canon(const std::string& expr) {
  auto parsed = ParseExpression(expr);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? parsed.value()->ToString() : "<error>";
}

TEST(ExprParseTest, PrecedenceMulOverAdd) {
  EXPECT_EQ(Canon("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(Canon("(1 + 2) * 3"), "((1 + 2) * 3)");
}

TEST(ExprParseTest, ComparisonBindsLooserThanArithmetic) {
  EXPECT_EQ(Canon("a + 1 < b * 2"), "((a + 1) < (b * 2))");
}

TEST(ExprParseTest, BooleanPrecedence) {
  EXPECT_EQ(Canon("a = 1 AND b = 2 OR c = 3"),
            "(((a = 1) AND (b = 2)) OR (c = 3))");
  EXPECT_EQ(Canon("NOT a = 1"), "NOT ((a = 1))");
}

TEST(ExprParseTest, UnaryMinus) {
  EXPECT_EQ(Canon("-x"), "-(x)");
  EXPECT_EQ(Canon("3 - -2"), "(3 - -(2))");
}

TEST(ExprParseTest, FunctionCalls) {
  EXPECT_EQ(Canon("SUM(x1 * x2)"), "sum((x1 * x2))");
  EXPECT_EQ(Canon("count(*)"), "count(*)");
  EXPECT_EQ(Canon("power(2, 10)"), "power(2, 10)");
}

TEST(ExprParseTest, QualifiedColumns) {
  EXPECT_EQ(Canon("t1.x2"), "t1.x2");
}

TEST(ExprParseTest, CaseExpression) {
  EXPECT_EQ(Canon("CASE WHEN a < b THEN 1 ELSE 2 END"),
            "CASE WHEN (a < b) THEN 1 ELSE 2 END");
}

TEST(ExprParseTest, IsNull) {
  EXPECT_EQ(Canon("x IS NULL"), "(x IS NULL)");
  EXPECT_EQ(Canon("x IS NOT NULL"), "(x IS NOT NULL)");
}

TEST(ExprParseTest, StringLiteral) {
  EXPECT_EQ(Canon("'diag'"), "'diag'");
}

TEST(ExprParseTest, ModuloOperator) {
  EXPECT_EQ(Canon("i % 16"), "(i % 16)");
}

TEST(ExprParseTest, CloneProducesIdenticalText) {
  NLQ_ASSERT_OK_AND_ASSIGN(
      ExprPtr e, ParseExpression("CASE WHEN a IS NULL THEN f(x, 1) ELSE "
                                 "-b * 2 END"));
  EXPECT_EQ(e->Clone()->ToString(), e->ToString());
}

TEST(ExprParseTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseExpression("1 + 2 extra junk ,").ok());
}

// ---------------------------------------------------------------------------
// Statement parsing
// ---------------------------------------------------------------------------

TEST(ParserTest, SelectStructure) {
  NLQ_ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      ParseStatement("SELECT a, sum(b) AS total FROM t WHERE a > 0 "
                     "GROUP BY a ORDER BY total DESC LIMIT 5;"));
  ASSERT_EQ(stmt.kind, StatementKind::kSelect);
  const SelectStatement& s = *stmt.select;
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[1].alias, "total");
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].table_name, "t");
  EXPECT_NE(s.where, nullptr);
  ASSERT_EQ(s.group_by.size(), 1u);
  ASSERT_EQ(s.order_by.size(), 1u);
  EXPECT_TRUE(s.order_by[0].descending);
  EXPECT_EQ(s.limit, 5);
}

TEST(ParserTest, SelectStar) {
  NLQ_ASSERT_OK_AND_ASSIGN(Statement stmt, ParseStatement("SELECT * FROM t"));
  EXPECT_EQ(stmt.select->items.size(), 1u);
  EXPECT_EQ(stmt.select->items[0].expr, nullptr);
}

TEST(ParserTest, CrossJoinAndCommaEquivalent) {
  NLQ_ASSERT_OK_AND_ASSIGN(Statement a,
                           ParseStatement("SELECT 1 FROM t CROSS JOIN u v"));
  NLQ_ASSERT_OK_AND_ASSIGN(Statement b, ParseStatement("SELECT 1 FROM t, u v"));
  ASSERT_EQ(a.select->from.size(), 2u);
  ASSERT_EQ(b.select->from.size(), 2u);
  EXPECT_EQ(a.select->from[1].alias, "v");
  EXPECT_EQ(b.select->from[1].alias, "v");
}

TEST(ParserTest, ImplicitAndExplicitAliases) {
  NLQ_ASSERT_OK_AND_ASSIGN(
      Statement stmt, ParseStatement("SELECT t.a x, b AS y FROM tbl AS t"));
  EXPECT_EQ(stmt.select->items[0].alias, "x");
  EXPECT_EQ(stmt.select->items[1].alias, "y");
  EXPECT_EQ(stmt.select->from[0].alias, "t");
}

TEST(ParserTest, CreateTableColumns) {
  NLQ_ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      ParseStatement(
          "CREATE TABLE m (j BIGINT, x1 DOUBLE, name VARCHAR(20))"));
  ASSERT_EQ(stmt.kind, StatementKind::kCreateTable);
  const auto& schema = stmt.create_table->schema;
  ASSERT_EQ(schema.num_columns(), 3u);
  EXPECT_EQ(schema.column(0).type, storage::DataType::kInt64);
  EXPECT_EQ(schema.column(1).type, storage::DataType::kDouble);
  EXPECT_EQ(schema.column(2).type, storage::DataType::kVarchar);
}

TEST(ParserTest, CreateTableAsSelect) {
  NLQ_ASSERT_OK_AND_ASSIGN(
      Statement stmt, ParseStatement("CREATE TABLE out AS SELECT a FROM t"));
  ASSERT_EQ(stmt.kind, StatementKind::kCreateTable);
  EXPECT_NE(stmt.create_table->as_select, nullptr);
}

TEST(ParserTest, InsertValuesMultipleRows) {
  NLQ_ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      ParseStatement("INSERT INTO t VALUES (1, 2.5), (2, -1e3)"));
  ASSERT_EQ(stmt.kind, StatementKind::kInsert);
  ASSERT_EQ(stmt.insert->value_rows.size(), 2u);
  EXPECT_EQ(stmt.insert->value_rows[0].size(), 2u);
}

TEST(ParserTest, InsertSelect) {
  NLQ_ASSERT_OK_AND_ASSIGN(
      Statement stmt, ParseStatement("INSERT INTO t SELECT a, b FROM u"));
  EXPECT_NE(stmt.insert->select, nullptr);
}

TEST(ParserTest, DropTable) {
  NLQ_ASSERT_OK_AND_ASSIGN(Statement stmt, ParseStatement("DROP TABLE x"));
  ASSERT_EQ(stmt.kind, StatementKind::kDropTable);
  EXPECT_EQ(stmt.drop_table->table_name, "x");
}

TEST(ParserTest, DoublePrecisionType) {
  NLQ_ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      ParseStatement("CREATE TABLE t (x DOUBLE PRECISION)"));
  EXPECT_EQ(stmt.create_table->schema.column(0).type,
            storage::DataType::kDouble);
}

TEST(ParserTest, ErrorCases) {
  EXPECT_FALSE(ParseStatement("SELECT").ok());
  EXPECT_FALSE(ParseStatement("SELECT 1 FROM").ok());
  EXPECT_FALSE(ParseStatement("CREATE t (x DOUBLE)").ok());
  EXPECT_FALSE(ParseStatement("INSERT t VALUES (1)").ok());
  EXPECT_FALSE(ParseStatement("SELECT 1; SELECT 2").ok());
  EXPECT_FALSE(ParseStatement("SELECT CASE END").ok());
  EXPECT_FALSE(ParseStatement("SELECT 1 LIMIT x").ok());
  EXPECT_FALSE(ParseStatement("").ok());
}

// The paper's wide query at d=64 has 1 + 64 + 2080 = 2145 SUM terms;
// the parser must handle very long SELECT lists.
TEST(ParserTest, HandlesVeryLongSelectList) {
  std::string sql = "SELECT sum(1.0)";
  for (int a = 1; a <= 64; ++a) {
    for (int b = 1; b <= a; ++b) {
      sql += ", sum(X" + std::to_string(a) + " * X" + std::to_string(b) + ")";
    }
  }
  sql += " FROM X";
  NLQ_ASSERT_OK_AND_ASSIGN(Statement stmt, ParseStatement(sql));
  EXPECT_EQ(stmt.select->items.size(), 1u + 2080u);
}

}  // namespace
}  // namespace nlq::engine
