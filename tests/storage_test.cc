#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/random.h"
#include "storage/catalog.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/partitioned_table.h"
#include "storage/row_codec.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"
#include "tests/test_util.h"

namespace nlq::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Datum
// ---------------------------------------------------------------------------

TEST(DatumTest, Constructors) {
  EXPECT_TRUE(Datum().is_null());
  EXPECT_DOUBLE_EQ(Datum::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Datum::Int64(-3).int_value(), -3);
  EXPECT_EQ(Datum::Varchar("hi").string_value(), "hi");
  EXPECT_TRUE(Datum::Null(DataType::kVarchar).is_null());
}

TEST(DatumTest, AsDoubleCoercion) {
  EXPECT_DOUBLE_EQ(Datum::Int64(7).AsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(Datum::Null(DataType::kDouble).AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(Datum::Varchar("x").AsDouble(), 0.0);
}

TEST(DatumTest, KeyEqualsAcrossNumericTypes) {
  EXPECT_TRUE(Datum::Int64(1).KeyEquals(Datum::Double(1.0)));
  EXPECT_FALSE(Datum::Int64(1).KeyEquals(Datum::Double(1.5)));
  EXPECT_TRUE(Datum::Null(DataType::kDouble)
                  .KeyEquals(Datum::Null(DataType::kInt64)));
  EXPECT_FALSE(Datum::Null(DataType::kDouble).KeyEquals(Datum::Int64(0)));
  EXPECT_TRUE(Datum::Varchar("a").KeyEquals(Datum::Varchar("a")));
  EXPECT_FALSE(Datum::Varchar("a").KeyEquals(Datum::Int64(0)));
}

TEST(DatumTest, KeyHashConsistentWithEquals) {
  EXPECT_EQ(Datum::Int64(5).KeyHash(), Datum::Double(5.0).KeyHash());
}

TEST(DatumTest, ToStringForms) {
  EXPECT_EQ(Datum::Null(DataType::kDouble).ToString(), "NULL");
  EXPECT_EQ(Datum::Int64(42).ToString(), "42");
  EXPECT_EQ(Datum::Varchar("abc").ToString(), "abc");
}

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

TEST(SchemaTest, DataSetLayout) {
  const Schema s = Schema::DataSet(3, /*with_y=*/true);
  ASSERT_EQ(s.num_columns(), 5u);
  EXPECT_EQ(s.column(0).name, "i");
  EXPECT_EQ(s.column(0).type, DataType::kInt64);
  EXPECT_EQ(s.column(3).name, "X3");
  EXPECT_EQ(s.column(4).name, "Y");
}

TEST(SchemaTest, CaseInsensitiveLookup) {
  const Schema s = Schema::DataSet(2);
  NLQ_ASSERT_OK_AND_ASSIGN(size_t idx, s.ColumnIndex("x2"));
  EXPECT_EQ(idx, 2u);
  EXPECT_FALSE(s.ColumnIndex("x9").ok());
  EXPECT_TRUE(s.HasColumn("I"));
}

TEST(SchemaTest, ValidateRow) {
  const Schema s = Schema::DataSet(1);
  NLQ_EXPECT_OK(s.ValidateRow({Datum::Int64(1), Datum::Double(2.0)}));
  NLQ_EXPECT_OK(s.ValidateRow({Datum::Int64(1), Datum::Null(DataType::kDouble)}));
  EXPECT_FALSE(s.ValidateRow({Datum::Int64(1)}).ok());
  EXPECT_FALSE(
      s.ValidateRow({Datum::Varchar("x"), Datum::Double(1.0)}).ok());
}

TEST(SchemaTest, Equality) {
  EXPECT_TRUE(Schema::DataSet(2) == Schema::DataSet(2));
  EXPECT_FALSE(Schema::DataSet(2) == Schema::DataSet(3));
}

// ---------------------------------------------------------------------------
// Row codec
// ---------------------------------------------------------------------------

struct CodecCase {
  Row row;
  std::string label;
};

class RowCodecTest : public ::testing::Test {
 protected:
  Schema schema_{std::vector<Column>{{"a", DataType::kInt64},
                                     {"b", DataType::kDouble},
                                     {"c", DataType::kVarchar}}};
};

TEST_F(RowCodecTest, RoundTripsAllTypes) {
  RowCodec codec(&schema_);
  const Row row{Datum::Int64(-5), Datum::Double(3.25), Datum::Varchar("hey")};
  std::string buf;
  codec.Encode(row, &buf);
  EXPECT_EQ(buf.size(), codec.EncodedSize(row));
  size_t offset = 0;
  Row decoded;
  NLQ_ASSERT_OK(codec.Decode(buf.data(), buf.size(), &offset, &decoded));
  EXPECT_EQ(offset, buf.size());
  EXPECT_EQ(decoded[0].int_value(), -5);
  EXPECT_DOUBLE_EQ(decoded[1].double_value(), 3.25);
  EXPECT_EQ(decoded[2].string_value(), "hey");
}

TEST_F(RowCodecTest, RoundTripsNulls) {
  RowCodec codec(&schema_);
  const Row row{Datum::Null(DataType::kInt64), Datum::Null(DataType::kDouble),
                Datum::Null(DataType::kVarchar)};
  std::string buf;
  codec.Encode(row, &buf);
  size_t offset = 0;
  Row decoded;
  NLQ_ASSERT_OK(codec.Decode(buf.data(), buf.size(), &offset, &decoded));
  for (const auto& d : decoded) EXPECT_TRUE(d.is_null());
}

TEST_F(RowCodecTest, SequentialDecodeOfMultipleRows) {
  RowCodec codec(&schema_);
  std::string buf;
  for (int i = 0; i < 10; ++i) {
    codec.Encode({Datum::Int64(i), Datum::Double(i * 0.5),
                  Datum::Varchar(std::string(i, 'x'))},
                 &buf);
  }
  size_t offset = 0;
  for (int i = 0; i < 10; ++i) {
    Row decoded;
    NLQ_ASSERT_OK(codec.Decode(buf.data(), buf.size(), &offset, &decoded));
    EXPECT_EQ(decoded[0].int_value(), i);
    EXPECT_EQ(decoded[2].string_value().size(), static_cast<size_t>(i));
  }
  EXPECT_EQ(offset, buf.size());
}

TEST_F(RowCodecTest, DetectsTruncation) {
  RowCodec codec(&schema_);
  std::string buf;
  codec.Encode({Datum::Int64(1), Datum::Double(2), Datum::Varchar("abc")},
               &buf);
  size_t offset = 0;
  Row decoded;
  EXPECT_FALSE(codec.Decode(buf.data(), buf.size() - 2, &offset, &decoded).ok());
}

// ---------------------------------------------------------------------------
// Page
// ---------------------------------------------------------------------------

TEST(PageTest, StartsEmpty) {
  Page page;
  EXPECT_EQ(page.row_count(), 0u);
  EXPECT_EQ(page.payload_size(), 0u);
  EXPECT_EQ(page.free_bytes(), kPageSize - Page::kHeaderSize);
}

TEST(PageTest, AppendTracksUsage) {
  Page page;
  const char data[16] = {0};
  page.AppendEncodedRow(data, sizeof(data));
  page.AppendEncodedRow(data, sizeof(data));
  EXPECT_EQ(page.row_count(), 2u);
  EXPECT_EQ(page.payload_size(), 32u);
}

TEST(PageTest, FitsRespectsCapacity) {
  Page page;
  EXPECT_TRUE(page.Fits(page.free_bytes()));
  EXPECT_FALSE(page.Fits(page.free_bytes() + 1));
}

// ---------------------------------------------------------------------------
// DiskManager
// ---------------------------------------------------------------------------

TEST(DiskManagerTest, PageRoundTrip) {
  const std::string path = TempPath("dm_roundtrip.pages");
  DiskManager dm;
  NLQ_ASSERT_OK(dm.Open(path, /*truncate=*/true));
  Page out;
  const char data[] = "hello page";
  out.AppendEncodedRow(data, sizeof(data));
  NLQ_ASSERT_OK(dm.WritePage(0, out));
  NLQ_ASSERT_OK(dm.WritePage(3, out));  // sparse write
  NLQ_ASSERT_OK_AND_ASSIGN(uint64_t count, dm.PageCount());
  EXPECT_EQ(count, 4u);
  Page in;
  NLQ_ASSERT_OK(dm.ReadPage(0, &in));
  EXPECT_EQ(in.row_count(), 1u);
  EXPECT_EQ(std::string(in.payload(), sizeof(data)), std::string(data, sizeof(data)));
  std::remove(path.c_str());
}

TEST(DiskManagerTest, ReadBeyondEofFails) {
  const std::string path = TempPath("dm_eof.pages");
  DiskManager dm;
  NLQ_ASSERT_OK(dm.Open(path, /*truncate=*/true));
  Page page;
  EXPECT_FALSE(dm.ReadPage(0, &page).ok());
  std::remove(path.c_str());
}

TEST(DiskManagerTest, NotOpenErrors) {
  DiskManager dm;
  Page page;
  EXPECT_FALSE(dm.WritePage(0, page).ok());
  EXPECT_FALSE(dm.ReadPage(0, &page).ok());
  EXPECT_FALSE(dm.PageCount().ok());
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

Row MakeDataRow(int64_t i, double x1, double x2) {
  return {Datum::Int64(i), Datum::Double(x1), Datum::Double(x2)};
}

TEST(TableTest, AppendAndScan) {
  Table table(Schema::DataSet(2));
  for (int i = 1; i <= 100; ++i) {
    NLQ_ASSERT_OK(table.AppendRow(MakeDataRow(i, i * 1.0, i * 2.0)));
  }
  EXPECT_EQ(table.num_rows(), 100u);
  TableScanner scanner = table.Scan();
  int count = 0;
  double sum_x1 = 0;
  while (scanner.Next()) {
    ++count;
    sum_x1 += scanner.row()[1].double_value();
  }
  NLQ_ASSERT_OK(scanner.status());
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(sum_x1, 5050.0);
}

TEST(TableTest, ValidatesSchema) {
  Table table(Schema::DataSet(2));
  EXPECT_FALSE(table.AppendRow({Datum::Int64(1)}).ok());
}

TEST(TableTest, SpillsAcrossPages) {
  // Rows of ~25 bytes; tens of thousands force multiple 64 KB pages.
  Table table(Schema::DataSet(2));
  for (int i = 0; i < 50000; ++i) {
    table.AppendRowUnchecked(MakeDataRow(i, 1.0, 2.0));
  }
  EXPECT_GT(table.num_pages(), 10u);
  NLQ_ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, table.ReadAllRows());
  EXPECT_EQ(rows.size(), 50000u);
  EXPECT_EQ(rows[49999][0].int_value(), 49999);
}

TEST(TableTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("table_roundtrip.pages");
  Table table(Schema::DataSet(2));
  for (int i = 0; i < 12345; ++i) {
    table.AppendRowUnchecked(MakeDataRow(i, i * 0.5, -i * 0.25));
  }
  NLQ_ASSERT_OK(table.SaveToFile(path));

  Table loaded(Schema::DataSet(2));
  NLQ_ASSERT_OK(loaded.LoadFromFile(path));
  EXPECT_EQ(loaded.num_rows(), table.num_rows());
  NLQ_ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, loaded.ReadAllRows());
  EXPECT_DOUBLE_EQ(rows[100][1].double_value(), 50.0);
  std::remove(path.c_str());
}

TEST(TableTest, ClearResets) {
  Table table(Schema::DataSet(1));
  table.AppendRowUnchecked({Datum::Int64(1), Datum::Double(1)});
  table.Clear();
  EXPECT_EQ(table.num_rows(), 0u);
  EXPECT_EQ(table.num_pages(), 0u);
  TableScanner scanner = table.Scan();
  EXPECT_FALSE(scanner.Next());
}


TEST(TableTest, RowExactlyFillingPageBoundary) {
  // A VARCHAR row sized so that two rows exactly fill a page payload:
  // the third append must open a new page and scans must see all rows.
  const Schema schema{std::vector<Column>{{"s", DataType::kVarchar}}};
  const size_t payload = kPageSize - Page::kHeaderSize;
  // Row cost = 1 null byte + 4 length bytes + string size.
  const size_t row_size = payload / 2;
  const size_t string_size = row_size - 5;
  Table table(schema);
  for (int i = 0; i < 5; ++i) {
    table.AppendRowUnchecked({Datum::Varchar(std::string(string_size, 'x'))});
  }
  EXPECT_EQ(table.num_rows(), 5u);
  EXPECT_EQ(table.num_pages(), 3u);  // 2 + 2 + 1
  NLQ_ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, table.ReadAllRows());
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[4][0].string_value().size(), string_size);
}

TEST(TableTest, MaximalSingleRowPerPage) {
  // One row just over half a page forces one page per row.
  const Schema schema{std::vector<Column>{{"s", DataType::kVarchar}}};
  const size_t payload = kPageSize - Page::kHeaderSize;
  const size_t string_size = payload / 2 + 100;
  Table table(schema);
  for (int i = 0; i < 4; ++i) {
    table.AppendRowUnchecked({Datum::Varchar(std::string(string_size, 'y'))});
  }
  EXPECT_EQ(table.num_pages(), 4u);
}

TEST(TableTest, MixedWidthRowsRoundTripThroughDisk) {
  const Schema schema{std::vector<Column>{{"i", DataType::kInt64},
                                          {"s", DataType::kVarchar}}};
  const std::string path = TempPath("mixed_rows.pages");
  Table table(schema);
  Random rng(5);
  std::vector<size_t> lengths;
  for (int i = 0; i < 2000; ++i) {
    const size_t len = rng.NextUint64(300);
    lengths.push_back(len);
    table.AppendRowUnchecked(
        {Datum::Int64(i), Datum::Varchar(std::string(len, 'z'))});
  }
  NLQ_ASSERT_OK(table.SaveToFile(path));
  Table loaded(schema);
  NLQ_ASSERT_OK(loaded.LoadFromFile(path));
  NLQ_ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, loaded.ReadAllRows());
  ASSERT_EQ(rows.size(), 2000u);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(rows[i][1].string_value().size(), lengths[i]);
  }
  std::remove(path.c_str());
}

TEST(TableTest, EmptyStringAndZeroValuesRoundTrip) {
  const Schema schema{std::vector<Column>{{"v", DataType::kDouble},
                                          {"s", DataType::kVarchar}}};
  Table table(schema);
  table.AppendRowUnchecked({Datum::Double(0.0), Datum::Varchar("")});
  table.AppendRowUnchecked({Datum::Double(-0.0), Datum::Varchar("")});
  NLQ_ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, table.ReadAllRows());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_FALSE(rows[0][1].is_null());  // empty string is not NULL
  EXPECT_EQ(rows[0][1].string_value(), "");
  EXPECT_EQ(rows[1][0].double_value(), 0.0);
}

// ---------------------------------------------------------------------------
// PartitionedTable
// ---------------------------------------------------------------------------

class PartitionedTableTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PartitionedTableTest, PreservesAllRows) {
  const size_t parts = GetParam();
  PartitionedTable table(Schema::DataSet(2), parts);
  EXPECT_EQ(table.num_partitions(), std::max<size_t>(parts, 1));
  for (int i = 1; i <= 1000; ++i) {
    table.AppendRowUnchecked(MakeDataRow(i, i * 1.0, 0.0));
  }
  EXPECT_EQ(table.num_rows(), 1000u);
  NLQ_ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, table.ReadAllRows());
  std::set<int64_t> ids;
  for (const auto& r : rows) ids.insert(r[0].int_value());
  EXPECT_EQ(ids.size(), 1000u);
  EXPECT_EQ(*ids.begin(), 1);
  EXPECT_EQ(*ids.rbegin(), 1000);
}

TEST_P(PartitionedTableTest, BalancedDistribution) {
  const size_t parts = GetParam();
  if (parts < 2) GTEST_SKIP();
  PartitionedTable table(Schema::DataSet(1), parts);
  const int n = 10000;
  for (int i = 1; i <= n; ++i) {
    table.AppendRowUnchecked({Datum::Int64(i), Datum::Double(0)});
  }
  const double expected = static_cast<double>(n) / parts;
  for (size_t p = 0; p < parts; ++p) {
    EXPECT_GT(table.partition(p).num_rows(), expected * 0.7);
    EXPECT_LT(table.partition(p).num_rows(), expected * 1.3);
  }
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, PartitionedTableTest,
                         ::testing::Values(1, 2, 4, 8, 20));

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog(4);
  NLQ_ASSERT_OK_AND_ASSIGN(PartitionedTable * t,
                           catalog.CreateTable("X", Schema::DataSet(2)));
  EXPECT_EQ(t->num_partitions(), 4u);
  NLQ_ASSERT_OK_AND_ASSIGN(PartitionedTable * same, catalog.GetTable("x"));
  EXPECT_EQ(t, same);
  EXPECT_FALSE(catalog.CreateTable("x", Schema::DataSet(2)).ok());
  NLQ_ASSERT_OK(catalog.DropTable("X"));
  EXPECT_FALSE(catalog.GetTable("X").ok());
  EXPECT_FALSE(catalog.DropTable("X").ok());
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog catalog;
  NLQ_ASSERT_OK(catalog.CreateTable("zeta", Schema::DataSet(1)).status());
  NLQ_ASSERT_OK(catalog.CreateTable("Alpha", Schema::DataSet(1)).status());
  const auto names = catalog.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

}  // namespace
}  // namespace nlq::storage
