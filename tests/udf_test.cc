#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/value.h"
#include "tests/test_util.h"
#include "udf/heap_segment.h"
#include "udf/packing.h"
#include "udf/udf.h"

namespace nlq::udf {
namespace {

using storage::DataType;
using storage::Datum;

// ---------------------------------------------------------------------------
// HeapSegment
// ---------------------------------------------------------------------------

TEST(HeapSegmentTest, DefaultCapacityIs64Kb) {
  HeapSegment heap;
  EXPECT_EQ(heap.capacity(), 64u * 1024u);
  EXPECT_EQ(heap.used(), 0u);
}

TEST(HeapSegmentTest, AllocationsAreAligned) {
  HeapSegment heap;
  void* a = heap.Allocate(3);
  void* b = heap.Allocate(5);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(heap.used(), 16u);  // two 8-byte aligned chunks
}

TEST(HeapSegmentTest, RefusesOverflow) {
  HeapSegment heap(64);
  EXPECT_NE(heap.Allocate(64), nullptr);
  EXPECT_EQ(heap.Allocate(1), nullptr);
}

TEST(HeapSegmentTest, ExactFitAfterAlignment) {
  HeapSegment heap(16);
  EXPECT_NE(heap.Allocate(9), nullptr);  // rounds to 16
  EXPECT_EQ(heap.remaining(), 0u);
  EXPECT_EQ(heap.Allocate(1), nullptr);
}

TEST(HeapSegmentTest, TypedAllocationZeroInitializes) {
  struct State {
    double values[8];
    int count;
  };
  HeapSegment heap;
  State* s = heap.AllocateObject<State>();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 0);
  for (double v : s->values) EXPECT_EQ(v, 0.0);
}

TEST(HeapSegmentTest, TypedAllocationRespectsCapacity) {
  struct Big {
    char data[100000];
  };
  HeapSegment heap;  // 64 KB
  EXPECT_EQ(heap.AllocateObject<Big>(), nullptr);
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

TEST(PackingTest, PackFormat) {
  EXPECT_EQ(PackDoubles({1.0, 2.5, -3.0}), "1;2.5;-3");
  EXPECT_EQ(PackDoubles({}), "");
  EXPECT_EQ(PackDoubles({42.0}), "42");
}

TEST(PackingTest, UnpackValid) {
  NLQ_ASSERT_OK_AND_ASSIGN(std::vector<double> v, UnpackDoubles("1;2.5;-3"));
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[1], 2.5);
}

TEST(PackingTest, UnpackEmpty) {
  NLQ_ASSERT_OK_AND_ASSIGN(std::vector<double> v, UnpackDoubles(""));
  EXPECT_TRUE(v.empty());
}

TEST(PackingTest, UnpackRejectsGarbage) {
  EXPECT_FALSE(UnpackDoubles("1;x;3").ok());
  EXPECT_FALSE(UnpackDoubles("1;;3").ok());
}

TEST(PackingTest, UnpackIntoBuffer) {
  double buf[4];
  NLQ_ASSERT_OK_AND_ASSIGN(size_t n, UnpackDoublesInto("5;6;7", buf, 4));
  EXPECT_EQ(n, 3u);
  EXPECT_DOUBLE_EQ(buf[2], 7.0);
}

TEST(PackingTest, UnpackIntoRejectsOverflow) {
  double buf[2];
  EXPECT_FALSE(UnpackDoublesInto("1;2;3", buf, 2).ok());
}

TEST(PackingTest, UnpackIntoRejectsTrailingSeparator) {
  double buf[4];
  EXPECT_FALSE(UnpackDoublesInto("1;2;", buf, 4).ok());
}

class PackRoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PackRoundTripTest, RoundTripsExactly) {
  Random rng(GetParam());
  std::vector<double> values(GetParam());
  for (auto& v : values) v = rng.NextGaussian(0, 1000);
  NLQ_ASSERT_OK_AND_ASSIGN(std::vector<double> back,
                           UnpackDoubles(PackDoubles(values)));
  ASSERT_EQ(back.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) EXPECT_EQ(back[i], values[i]);
}

INSTANTIATE_TEST_SUITE_P(Dims, PackRoundTripTest,
                         ::testing::Values(1, 2, 8, 16, 64, 256));

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

class FakeScalar : public ScalarUdf {
 public:
  explicit FakeScalar(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  DataType return_type() const override { return DataType::kDouble; }
  StatusOr<Datum> Invoke(const std::vector<Datum>&) const override {
    return Datum::Double(1.0);
  }

 private:
  std::string name_;
};

class FakeAggregate : public AggregateUdf {
 public:
  explicit FakeAggregate(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  DataType return_type() const override { return DataType::kDouble; }
  StatusOr<void*> Init(HeapSegment* heap) const override {
    return heap->Allocate(8);
  }
  Status Accumulate(void*, const std::vector<Datum>&) const override {
    return Status::OK();
  }
  Status Merge(void*, const void*) const override { return Status::OK(); }
  StatusOr<Datum> Finalize(const void*) const override {
    return Datum::Double(0.0);
  }

 private:
  std::string name_;
};

TEST(UdfRegistryTest, RegisterAndLookupCaseInsensitive) {
  UdfRegistry registry;
  NLQ_ASSERT_OK(registry.RegisterScalar(std::make_unique<FakeScalar>("MyFn")));
  EXPECT_NE(registry.FindScalar("myfn"), nullptr);
  EXPECT_NE(registry.FindScalar("MYFN"), nullptr);
  EXPECT_EQ(registry.FindScalar("other"), nullptr);
}

TEST(UdfRegistryTest, RejectsDuplicates) {
  UdfRegistry registry;
  NLQ_ASSERT_OK(registry.RegisterScalar(std::make_unique<FakeScalar>("f")));
  EXPECT_FALSE(registry.RegisterScalar(std::make_unique<FakeScalar>("F")).ok());
  NLQ_ASSERT_OK(
      registry.RegisterAggregate(std::make_unique<FakeAggregate>("g")));
  EXPECT_FALSE(
      registry.RegisterAggregate(std::make_unique<FakeAggregate>("g")).ok());
}

TEST(UdfRegistryTest, ScalarAndAggregateNamespacesAreSeparate) {
  UdfRegistry registry;
  NLQ_ASSERT_OK(registry.RegisterScalar(std::make_unique<FakeScalar>("f")));
  NLQ_ASSERT_OK(
      registry.RegisterAggregate(std::make_unique<FakeAggregate>("f")));
  EXPECT_NE(registry.FindScalar("f"), nullptr);
  EXPECT_NE(registry.FindAggregate("f"), nullptr);
}

TEST(UdfRegistryTest, NameLists) {
  UdfRegistry registry;
  NLQ_ASSERT_OK(registry.RegisterScalar(std::make_unique<FakeScalar>("b")));
  NLQ_ASSERT_OK(registry.RegisterScalar(std::make_unique<FakeScalar>("a")));
  const auto names = registry.ScalarNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
}

}  // namespace
}  // namespace nlq::udf
