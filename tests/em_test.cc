#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/strings.h"
#include "stats/em.h"
#include "stats/miner.h"
#include "tests/test_util.h"

namespace nlq::stats {
namespace {

std::vector<linalg::Vector> TwoBlobs(size_t per_cluster, uint64_t seed,
                                     double separation = 50.0) {
  Random rng(seed);
  std::vector<linalg::Vector> points;
  for (size_t j = 0; j < 2; ++j) {
    for (size_t i = 0; i < per_cluster; ++i) {
      points.push_back({separation * j + rng.NextGaussian(0, 2.0),
                        separation * j + rng.NextGaussian(0, 3.0)});
    }
  }
  return points;
}

TEST(EmTest, RecoversTwoGaussians) {
  const auto points = TwoBlobs(1000, 5);
  EmOptions options;
  options.k = 2;
  NLQ_ASSERT_OK_AND_ASSIGN(GaussianMixtureModel model,
                           FitGaussianMixture(points, options));
  // One component near (0,0), one near (50,50); weights about even.
  std::vector<bool> covered(2, false);
  for (size_t j = 0; j < 2; ++j) {
    for (int blob = 0; blob < 2; ++blob) {
      if (std::fabs(model.means(j, 0) - 50.0 * blob) < 2.0 &&
          std::fabs(model.means(j, 1) - 50.0 * blob) < 2.0) {
        covered[blob] = true;
        EXPECT_NEAR(model.weights[j], 0.5, 0.05);
        EXPECT_NEAR(model.variances(j, 0), 4.0, 1.0);
        EXPECT_NEAR(model.variances(j, 1), 9.0, 2.0);
      }
    }
  }
  EXPECT_TRUE(covered[0] && covered[1]);
}

TEST(EmTest, WeightsFormDistribution) {
  const auto points = TwoBlobs(200, 7);
  EmOptions options;
  options.k = 4;
  NLQ_ASSERT_OK_AND_ASSIGN(GaussianMixtureModel model,
                           FitGaussianMixture(points, options));
  double sum = 0.0;
  for (double w : model.weights) {
    EXPECT_GE(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(EmTest, ResponsibilitiesSumToOne) {
  const auto points = TwoBlobs(100, 11);
  EmOptions options;
  options.k = 3;
  NLQ_ASSERT_OK_AND_ASSIGN(GaussianMixtureModel model,
                           FitGaussianMixture(points, options));
  for (size_t i = 0; i < 10; ++i) {
    const auto resp = model.Responsibilities(points[i].data());
    double sum = 0.0;
    for (double r : resp) {
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0 + 1e-12);
      sum += r;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(EmTest, LogLikelihoodImprovesOverSingleIteration) {
  const auto points = TwoBlobs(500, 13);
  EmOptions one;
  one.k = 2;
  one.max_iterations = 1;
  one.tolerance = 0.0;
  EmOptions many = one;
  many.max_iterations = 30;
  NLQ_ASSERT_OK_AND_ASSIGN(GaussianMixtureModel m1,
                           FitGaussianMixture(points, one));
  NLQ_ASSERT_OK_AND_ASSIGN(GaussianMixtureModel m30,
                           FitGaussianMixture(points, many));
  EXPECT_GE(m30.log_likelihood, m1.log_likelihood - 1e-6);
  EXPECT_GE(m30.iterations_run, m1.iterations_run);
}

TEST(EmTest, HardAssignmentSeparatesBlobs) {
  const auto points = TwoBlobs(300, 17);
  EmOptions options;
  options.k = 2;
  NLQ_ASSERT_OK_AND_ASSIGN(GaussianMixtureModel model,
                           FitGaussianMixture(points, options));
  // Points from the same blob should map to the same component.
  const size_t first_blob = model.MostLikelyCluster(points[0].data());
  const size_t second_blob = model.MostLikelyCluster(points[599].data());
  EXPECT_NE(first_blob, second_blob);
  size_t agree = 0;
  for (size_t i = 0; i < 300; ++i) {
    agree += model.MostLikelyCluster(points[i].data()) == first_blob;
  }
  EXPECT_GT(agree, 295u);
}

TEST(EmTest, MixtureFromKMeansSharesLayout) {
  const auto points = TwoBlobs(200, 19);
  KMeansOptions km;
  km.k = 2;
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel kmeans, FitKMeans(points, km));
  const GaussianMixtureModel model = MixtureFromKMeans(kmeans);
  EXPECT_EQ(model.d, kmeans.d);
  EXPECT_EQ(model.k, kmeans.k);
  EXPECT_EQ(model.means.MaxAbsDiff(kmeans.centroids), 0.0);
  double sum = 0.0;
  for (double w : model.weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (size_t j = 0; j < model.k; ++j) {
    for (size_t a = 0; a < model.d; ++a) {
      EXPECT_GT(model.variances(j, a), 0.0);
    }
  }
}

TEST(EmTest, DensityIntegratesConsistently) {
  // Sanity: the density at a component mean is higher than far away.
  const auto points = TwoBlobs(500, 23);
  EmOptions options;
  options.k = 2;
  NLQ_ASSERT_OK_AND_ASSIGN(GaussianMixtureModel model,
                           FitGaussianMixture(points, options));
  const linalg::Vector at_mean{model.means(0, 0), model.means(0, 1)};
  const linalg::Vector far{model.means(0, 0) + 500, model.means(0, 1) + 500};
  EXPECT_GT(model.LogDensity(at_mean.data()), model.LogDensity(far.data()));
}

TEST(EmTest, ErrorCases) {
  EXPECT_FALSE(FitGaussianMixture({}, EmOptions{}).ok());
  EmOptions zero_k;
  zero_k.k = 0;
  EXPECT_FALSE(FitGaussianMixture({{1.0, 2.0}}, zero_k).ok());
}

class EmKSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EmKSweepTest, MoreComponentsNeverHurtLikelihood) {
  const auto points = TwoBlobs(400, 29);
  EmOptions small;
  small.k = 1;
  small.max_iterations = 25;
  EmOptions big = small;
  big.k = GetParam();
  NLQ_ASSERT_OK_AND_ASSIGN(GaussianMixtureModel m1,
                           FitGaussianMixture(points, small));
  NLQ_ASSERT_OK_AND_ASSIGN(GaussianMixtureModel mk,
                           FitGaussianMixture(points, big));
  EXPECT_GE(mk.log_likelihood, m1.log_likelihood - 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Ks, EmKSweepTest, ::testing::Values(2, 3, 4, 8));


// ---------------------------------------------------------------------------
// In-DBMS classification EM
// ---------------------------------------------------------------------------

TEST(EmInDbmsTest, RecoversComponentsInOneScanPerIteration) {
  auto db = nlq::testing::MakeTestDatabase();
  NLQ_ASSERT_OK(db->ExecuteCommand(
      "CREATE TABLE X (i BIGINT, X1 DOUBLE, X2 DOUBLE)"));
  Random rng(33);
  int64_t id = 0;
  for (int blob = 0; blob < 2; ++blob) {
    for (int i = 0; i < 400; ++i) {
      NLQ_ASSERT_OK(db->ExecuteCommand(StringPrintf(
          "INSERT INTO X VALUES (%lld, %.17g, %.17g)",
          static_cast<long long>(++id),
          rng.NextGaussian(60.0 * blob, 2.0),
          rng.NextGaussian(60.0 * blob, 3.0))));
    }
  }
  stats::WarehouseMiner miner(db.get());
  EmOptions options;
  options.k = 2;
  options.max_iterations = 10;
  NLQ_ASSERT_OK_AND_ASSIGN(GaussianMixtureModel model,
                           miner.BuildGaussianMixtureInDbms("X", 2, options));
  // Both blob centers covered; weights about even; variances sane.
  std::vector<bool> covered(2, false);
  for (size_t j = 0; j < 2; ++j) {
    for (int blob = 0; blob < 2; ++blob) {
      if (std::fabs(model.means(j, 0) - 60.0 * blob) < 3.0) {
        covered[blob] = true;
        EXPECT_NEAR(model.weights[j], 0.5, 0.05);
        EXPECT_GT(model.variances(j, 0), 1.0);
        EXPECT_LT(model.variances(j, 0), 10.0);
      }
    }
  }
  EXPECT_TRUE(covered[0] && covered[1]);
  // The parameter table for scoring is left behind.
  EXPECT_TRUE(db->catalog().HasTable("X_EMP"));
}

TEST(EmInDbmsTest, RejectsZeroK) {
  auto db = nlq::testing::MakeTestDatabase();
  NLQ_ASSERT_OK(db->ExecuteCommand("CREATE TABLE X (i BIGINT, X1 DOUBLE)"));
  NLQ_ASSERT_OK(db->ExecuteCommand("INSERT INTO X VALUES (1, 1)"));
  stats::WarehouseMiner miner(db.get());
  EmOptions options;
  options.k = 0;
  EXPECT_FALSE(miner.BuildGaussianMixtureInDbms("X", 1, options).ok());
}

}  // namespace
}  // namespace nlq::stats
