// Server front-end tests: wire codec round trips, AdmissionController
// semantics, and end-to-end client/server behavior over loopback TCP
// (bind 127.0.0.1 port 0, read the port back). Chaos/fuzz/overload
// coverage lives in server_chaos_test.cc, server_fuzz_test.cc and
// server_overload_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "server/admission.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "tests/test_util.h"

namespace nlq::server {
namespace {

using ::nlq::testing::MakeTestDatabase;

// ---------------------------------------------------------------------------
// Wire codec

TEST(WireCodecTest, ScalarRoundTrip) {
  WireWriter w;
  w.PutU8(0x7f);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefull);
  w.PutI64(-42);
  w.PutDouble(3.141592653589793);
  w.PutString("hello");

  WireReader r(w.buffer());
  NLQ_ASSERT_OK_AND_ASSIGN(uint8_t u8, r.GetU8());
  EXPECT_EQ(u8, 0x7f);
  NLQ_ASSERT_OK_AND_ASSIGN(uint32_t u32, r.GetU32());
  EXPECT_EQ(u32, 0xdeadbeefu);
  NLQ_ASSERT_OK_AND_ASSIGN(uint64_t u64, r.GetU64());
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  NLQ_ASSERT_OK_AND_ASSIGN(int64_t i64, r.GetI64());
  EXPECT_EQ(i64, -42);
  NLQ_ASSERT_OK_AND_ASSIGN(double d, r.GetDouble());
  EXPECT_EQ(d, 3.141592653589793);
  NLQ_ASSERT_OK_AND_ASSIGN(std::string s, r.GetString());
  EXPECT_EQ(s, "hello");
  NLQ_ASSERT_OK(r.ExpectEnd());
}

TEST(WireCodecTest, TruncatedReadsFailCleanly) {
  WireWriter w;
  w.PutU32(7);
  WireReader r(w.buffer());
  EXPECT_TRUE(r.GetU64().status().code() == StatusCode::kParseError);

  // A string whose announced length exceeds the body.
  WireWriter w2;
  w2.PutU32(1000);  // length field only
  WireReader r2(w2.buffer());
  EXPECT_EQ(r2.GetString().status().code(), StatusCode::kParseError);
}

TEST(WireCodecTest, ResultSetRoundTripBitExact) {
  std::vector<storage::Column> cols = {
      {"i", storage::DataType::kInt64},
      {"x", storage::DataType::kDouble},
      {"name", storage::DataType::kVarchar},
  };
  std::vector<storage::Row> rows;
  // Values chosen to catch any non-bit-exact double path: denormal,
  // negative zero, an irrational fraction, infinity, NaN.
  const double doubles[] = {5e-324, -0.0, 1.0 / 3.0,
                            std::numeric_limits<double>::infinity(),
                            std::nan("")};
  for (int i = 0; i < 5; ++i) {
    storage::Row row;
    row.push_back(storage::Datum::Int64(i * 1000003));
    row.push_back(storage::Datum::Double(doubles[i]));
    row.push_back(i == 2 ? storage::Datum::Null(storage::DataType::kVarchar)
                         : storage::Datum::Varchar("row" + std::to_string(i)));
    rows.push_back(std::move(row));
  }
  engine::ResultSet original(storage::Schema(cols), rows);

  WireWriter w;
  EncodeResultSet(original, &w);
  WireReader r(w.buffer());
  NLQ_ASSERT_OK_AND_ASSIGN(engine::ResultSet decoded, DecodeResultSet(&r));

  ASSERT_EQ(decoded.num_rows(), original.num_rows());
  ASSERT_EQ(decoded.num_columns(), original.num_columns());
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(decoded.schema().column(c).name, cols[c].name);
    EXPECT_EQ(decoded.schema().column(c).type, cols[c].type);
  }
  for (size_t i = 0; i < original.num_rows(); ++i) {
    for (size_t c = 0; c < 3; ++c) {
      const storage::Datum& a = original.At(i, c);
      const storage::Datum& b = decoded.At(i, c);
      ASSERT_EQ(a.type(), b.type());
      ASSERT_EQ(a.is_null(), b.is_null());
      if (a.is_null()) continue;
      switch (a.type()) {
        case storage::DataType::kDouble: {
          // Bit-exact, including NaN payloads and -0.0.
          uint64_t ba, bb;
          double da = a.double_value(), db = b.double_value();
          std::memcpy(&ba, &da, sizeof(da));
          std::memcpy(&bb, &db, sizeof(db));
          EXPECT_EQ(ba, bb);
          break;
        }
        case storage::DataType::kInt64:
          EXPECT_EQ(a.int_value(), b.int_value());
          break;
        case storage::DataType::kVarchar:
          EXPECT_EQ(a.string_value(), b.string_value());
          break;
      }
    }
  }
}

TEST(WireCodecTest, ResultSetDecodeRejectsLengthLies) {
  // A column count far beyond what the body holds must fail before
  // allocating.
  WireWriter w;
  w.PutU32(0x40000000);
  WireReader r(w.buffer());
  EXPECT_EQ(DecodeResultSet(&r).status().code(), StatusCode::kParseError);

  // Row count lie.
  WireWriter w2;
  w2.PutU32(1);
  w2.PutString("x");
  w2.PutU8(0);  // kDouble
  w2.PutU64(0x1000000000ull);
  WireReader r2(w2.buffer());
  EXPECT_EQ(DecodeResultSet(&r2).status().code(), StatusCode::kParseError);
}

TEST(WireCodecTest, ErrorRoundTripCarriesRetryable) {
  WireWriter w;
  EncodeError(Status::ResourceExhausted("queue full"), /*retryable=*/true,
              &w);
  WireReader r(w.buffer());
  NLQ_ASSERT_OK_AND_ASSIGN(WireError err, DecodeError(&r));
  EXPECT_EQ(err.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(err.status.message(), "queue full");
  EXPECT_TRUE(err.retryable);

  WireWriter w2;
  EncodeError(Status::ResourceExhausted("query memory budget"), false, &w2);
  WireReader r2(w2.buffer());
  NLQ_ASSERT_OK_AND_ASSIGN(WireError err2, DecodeError(&r2));
  EXPECT_FALSE(err2.retryable);  // same code, distinct retryability
}

// ---------------------------------------------------------------------------
// AdmissionController

TEST(AdmissionTest, FastPathAdmitsUpToLimit) {
  AdmissionOptions options;
  options.max_concurrent_statements = 2;
  options.per_statement_reserve_bytes = 0;
  AdmissionController admission(options);

  NLQ_ASSERT_OK_AND_ASSIGN(auto t1, admission.Admit(1, nullptr));
  NLQ_ASSERT_OK_AND_ASSIGN(auto t2, admission.Admit(1, nullptr));
  EXPECT_EQ(admission.in_flight(), 2u);
  t1.Release();
  EXPECT_EQ(admission.in_flight(), 1u);
  t2.Release();
  EXPECT_EQ(admission.in_flight(), 0u);
}

TEST(AdmissionTest, QueueOverflowRejectsResourceExhausted) {
  AdmissionOptions options;
  options.max_concurrent_statements = 1;
  options.max_queue_depth = 0;  // no queueing at all
  options.per_statement_reserve_bytes = 0;
  AdmissionController admission(options);

  NLQ_ASSERT_OK_AND_ASSIGN(auto ticket, admission.Admit(1, nullptr));
  auto rejected = admission.Admit(2, nullptr);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  ticket.Release();
}

TEST(AdmissionTest, QueueWaitDeadlineRejectsDeadlineExceeded) {
  AdmissionOptions options;
  options.max_concurrent_statements = 1;
  options.max_queue_wait_ms = 50;
  options.per_statement_reserve_bytes = 0;
  AdmissionController admission(options);

  NLQ_ASSERT_OK_AND_ASSIGN(auto ticket, admission.Admit(1, nullptr));
  const auto start = std::chrono::steady_clock::now();
  auto waited = admission.Admit(2, nullptr);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(waited.ok());
  EXPECT_EQ(waited.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            45);
  ticket.Release();
}

TEST(AdmissionTest, QueuedWaiterGetsSlotOnRelease) {
  AdmissionOptions options;
  options.max_concurrent_statements = 1;
  options.per_statement_reserve_bytes = 0;
  AdmissionController admission(options);

  NLQ_ASSERT_OK_AND_ASSIGN(auto ticket, admission.Admit(1, nullptr));
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    auto t = admission.Admit(2, nullptr);
    if (t.ok()) {
      admitted.store(true);
      t->Release();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());
  ticket.Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
}

TEST(AdmissionTest, FifoOrderAcrossWaiters) {
  AdmissionOptions options;
  options.max_concurrent_statements = 1;
  options.per_statement_reserve_bytes = 0;
  AdmissionController admission(options);

  NLQ_ASSERT_OK_AND_ASSIGN(auto gate, admission.Admit(0, nullptr));
  std::vector<int> order;
  std::mutex order_mu;
  std::vector<std::thread> waiters;
  for (int i = 1; i <= 4; ++i) {
    waiters.emplace_back([&, i] {
      auto t = admission.Admit(static_cast<uint64_t>(i), nullptr);
      ASSERT_TRUE(t.ok());
      {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(i);
      }
      // Hold briefly so release order is deterministic enough.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      t->Release();
    });
    // Stagger arrivals so queue order is deterministic.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  gate.Release();
  for (auto& w : waiters) w.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(AdmissionTest, CancelTokenAbortsQueuedWaiter) {
  AdmissionOptions options;
  options.max_concurrent_statements = 1;
  options.per_statement_reserve_bytes = 0;
  AdmissionController admission(options);

  NLQ_ASSERT_OK_AND_ASSIGN(auto ticket, admission.Admit(1, nullptr));
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  std::atomic<bool> done{false};
  Status result;
  std::thread waiter([&] {
    auto t = admission.Admit(2, cancel);
    result = t.status();
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load());
  cancel->store(true);
  admission.Kick();
  waiter.join();
  EXPECT_EQ(result.code(), StatusCode::kCancelled);
  ticket.Release();
}

TEST(AdmissionTest, MemoryReservationGatesAdmission) {
  AdmissionOptions options;
  options.max_concurrent_statements = 8;
  options.global_memory_limit = 100;
  options.per_statement_reserve_bytes = 40;
  options.max_queue_wait_ms = 50;
  AdmissionController admission(options);

  // Two reservations fit (80 <= 100); the third must wait and times
  // out even though concurrency slots are free.
  NLQ_ASSERT_OK_AND_ASSIGN(auto t1, admission.Admit(1, nullptr));
  NLQ_ASSERT_OK_AND_ASSIGN(auto t2, admission.Admit(1, nullptr));
  auto t3 = admission.Admit(1, nullptr);
  ASSERT_FALSE(t3.ok());
  EXPECT_EQ(t3.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(admission.global_memory().used(), 80u);

  t1.Release();
  EXPECT_EQ(admission.global_memory().used(), 40u);
  NLQ_ASSERT_OK_AND_ASSIGN(auto t4, admission.Admit(2, nullptr));
  t2.Release();
  t4.Release();
  EXPECT_EQ(admission.global_memory().used(), 0u);
}

TEST(AdmissionTest, ShutdownAbortsWaitersAndDrains) {
  AdmissionOptions options;
  options.max_concurrent_statements = 1;
  options.per_statement_reserve_bytes = 0;
  AdmissionController admission(options);

  NLQ_ASSERT_OK_AND_ASSIGN(auto ticket, admission.Admit(1, nullptr));
  Status queued_result;
  std::thread waiter([&] {
    queued_result = admission.Admit(2, nullptr).status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  admission.BeginShutdown();
  waiter.join();
  EXPECT_EQ(queued_result.code(), StatusCode::kUnavailable);

  // New admissions refused; in-flight ticket still valid.
  EXPECT_EQ(admission.Admit(3, nullptr).status().code(),
            StatusCode::kUnavailable);
  std::atomic<bool> idle{false};
  std::thread drainer([&] {
    admission.WaitIdle();
    idle.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(idle.load());
  ticket.Release();
  drainer.join();
  EXPECT_TRUE(idle.load());
}

// ---------------------------------------------------------------------------
// End-to-end server

struct TestServer {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<Server> server;
};

TestServer StartTestServer(ServerOptions options = {}) {
  TestServer ts;
  ts.db = MakeTestDatabase();
  options.host = "127.0.0.1";
  options.port = 0;
  ts.server = std::make_unique<Server>(ts.db.get(), options);
  EXPECT_TRUE(ts.server->Start().ok());
  return ts;
}

TEST(ServerTest, HandshakeQueryAndGoodbye) {
  TestServer ts = StartTestServer();
  NLQ_ASSERT_OK(ts.db->ExecuteCommand("CREATE TABLE t (i BIGINT, x DOUBLE)"));
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(
      "INSERT INTO t VALUES (1, 1.5), (2, 2.5), (3, NULL)"));

  NlqClient client;
  NLQ_ASSERT_OK(client.Connect("127.0.0.1", ts.server->port()));
  EXPECT_GT(client.session_id(), 0u);
  NLQ_ASSERT_OK(client.Ping());

  NLQ_ASSERT_OK_AND_ASSIGN(
      engine::ResultSet rs,
      client.Query("SELECT i, x FROM t ORDER BY i"));
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.At(0, 0).int_value(), 1);
  EXPECT_EQ(rs.At(1, 1).double_value(), 2.5);
  EXPECT_TRUE(rs.At(2, 1).is_null());
  NLQ_ASSERT_OK(client.Goodbye());
}

TEST(ServerTest, RemoteResultsBitIdenticalToEmbedded) {
  TestServer ts = StartTestServer();
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(
      "CREATE TABLE pts (i BIGINT, x1 DOUBLE, x2 DOUBLE)"));
  // Values with non-terminating binary expansions: any text round
  // trip or double mangling shows up as a bit difference.
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(
      "INSERT INTO pts VALUES (1, 0.1, 0.3), (2, 0.2, 0.7), "
      "(3, 1e-300, 3.3333333333333335)"));
  const std::string sql =
      "SELECT COUNT(*), SUM(x1), SUM(x1*x2), SUM(x2*x2) FROM pts";

  engine::QueryOptions qopts;
  NLQ_ASSERT_OK_AND_ASSIGN(engine::ResultSet embedded,
                           ts.db->Execute(sql, qopts));

  NlqClient client;
  NLQ_ASSERT_OK(client.Connect("127.0.0.1", ts.server->port()));
  NLQ_ASSERT_OK_AND_ASSIGN(engine::ResultSet remote, client.Query(sql));

  ASSERT_EQ(remote.num_rows(), embedded.num_rows());
  ASSERT_EQ(remote.num_columns(), embedded.num_columns());
  for (size_t c = 0; c < embedded.num_columns(); ++c) {
    const double de = embedded.GetDouble(0, c);
    const double dr = remote.GetDouble(0, c);
    uint64_t be, br;
    std::memcpy(&be, &de, sizeof(de));
    std::memcpy(&br, &dr, sizeof(dr));
    EXPECT_EQ(be, br) << "column " << c;
  }
}

TEST(ServerTest, ConcurrentSessionsAllComplete) {
  ServerOptions options;
  options.admission.max_concurrent_statements = 3;
  TestServer ts = StartTestServer(options);
  NLQ_ASSERT_OK(ts.db->ExecuteCommand("CREATE TABLE t (i BIGINT, x DOUBLE)"));
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(
      "INSERT INTO t VALUES (1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)"));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10;
  std::atomic<int> completed{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      NlqClient client;
      if (!client.Connect("127.0.0.1", ts.server->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int q = 0; q < kPerThread; ++q) {
        auto rs = client.Query("SELECT SUM(x), COUNT(*) FROM t");
        if (rs.ok() && rs->num_rows() == 1 &&
            rs->GetDouble(0, 0) == 10.0) {
          completed.fetch_add(1);
        } else {
          failures.fetch_add(1);
        }
      }
      client.Goodbye();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(completed.load(), kThreads * kPerThread);
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServerTest, EngineErrorsArriveAsNonRetryable) {
  TestServer ts = StartTestServer();
  NlqClient client;
  NLQ_ASSERT_OK(client.Connect("127.0.0.1", ts.server->port()));
  auto rs = client.Query("SELECT * FROM nonexistent_table");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(client.last_error_retryable());
  // The connection survives an engine error.
  NLQ_ASSERT_OK(client.Ping());
}

TEST(ServerTest, PerQueryBudgetExhaustionIsNotRetryable) {
  TestServer ts = StartTestServer();
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(
      "CREATE TABLE big (i BIGINT, x DOUBLE)"));
  std::string insert = "INSERT INTO big VALUES (0, 0.5)";
  for (int i = 1; i < 512; ++i) {
    insert += ", (" + std::to_string(i) + ", 0.5)";
  }
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(insert));

  NlqClient client;
  NLQ_ASSERT_OK(client.Connect("127.0.0.1", ts.server->port()));
  // A 1-byte per-query budget: the statement's own tracker rejects.
  NLQ_ASSERT_OK(client.SetOptions(/*timeout_ms=*/-1, /*memory_limit=*/1,
                                  /*force_interpreted=*/false));
  auto rs = client.Query(
      "SELECT i, COUNT(*), SUM(x) FROM big GROUP BY i ORDER BY i");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kResourceExhausted);
  // Distinct from admission rejection: NOT retryable.
  EXPECT_FALSE(client.last_error_retryable());
}

TEST(ServerTest, AdmissionRejectionIsRetryable) {
  ServerOptions options;
  options.admission.max_concurrent_statements = 1;
  options.admission.max_queue_depth = 0;  // second statement rejects
  TestServer ts = StartTestServer(options);
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(
      "CREATE TABLE t (i BIGINT, x DOUBLE)"));
  std::string insert = "INSERT INTO t VALUES (0, 0.5)";
  for (int i = 1; i < 1500; ++i) {
    insert += ", (" + std::to_string(i) + ", 0.5)";
  }
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(insert));

  // Session A occupies the only slot with a multi-ms cross join;
  // session B probes until it catches the overload.
  // The cross join can run for tens of seconds under TSan on a loaded
  // machine — the slow session must not trip the client I/O timeout
  // while its own statement is executing.
  NlqClient slow, probe;
  NLQ_ASSERT_OK(
      slow.Connect("127.0.0.1", ts.server->port(), /*timeout_ms=*/180'000));
  NLQ_ASSERT_OK(probe.Connect("127.0.0.1", ts.server->port()));

  std::atomic<bool> saw_retryable{false};
  std::atomic<int> rejections{0};
  std::atomic<bool> slow_done{false};
  std::thread prober([&] {
    while (!slow_done.load() && rejections.load() == 0) {
      auto rs = probe.Query("SELECT COUNT(*) FROM t");
      if (!rs.ok() &&
          rs.status().code() == StatusCode::kResourceExhausted) {
        rejections.fetch_add(1);
        if (probe.last_error_retryable()) saw_retryable.store(true);
      }
    }
  });
  // Keep the slot occupied until the prober has actually overlapped a
  // running statement — a fixed iteration count can starve the prober
  // on a loaded single-core CI machine.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (rejections.load() == 0 &&
         std::chrono::steady_clock::now() < give_up) {
    auto ignored = slow.Query(
        "SELECT COUNT(*), SUM(a.x * b.x) FROM t a, t b "
        "WHERE a.x + b.x > 0");
    // The prober's own statement can hold the single slot when this
    // one arrives, in which case *this* side is the one rejected —
    // equally fine, just retry.
    ASSERT_TRUE(ignored.ok() ||
                ignored.status().code() == StatusCode::kResourceExhausted)
        << ignored.status().ToString();
  }
  slow_done.store(true);
  prober.join();
  ASSERT_GT(rejections.load(), 0)
      << "probe never caught the occupied slot";
  EXPECT_TRUE(saw_retryable.load());
}

TEST(ServerTest, CancelBySessionStopsRunningStatement) {
  TestServer ts = StartTestServer();
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(
      "CREATE TABLE t (i BIGINT, x DOUBLE)"));
  std::string insert = "INSERT INTO t VALUES (0, 0.5)";
  for (int i = 1; i < 2000; ++i) {
    insert += ", (" + std::to_string(i) + ", 0.5)";
  }
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(insert));

  NlqClient victim, canceller;
  NLQ_ASSERT_OK(victim.Connect("127.0.0.1", ts.server->port()));
  NLQ_ASSERT_OK(canceller.Connect("127.0.0.1", ts.server->port()));
  const uint64_t victim_id = victim.session_id();

  std::thread cancel_thread([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    Status cancelled = canceller.Cancel(victim_id);
    EXPECT_TRUE(cancelled.ok()) << cancelled.ToString();
  });
  // A long cross-join aggregation (2000^2 pairs): runs well past the
  // cancel unless the token lands.
  auto rs = victim.Query(
      "SELECT COUNT(*), SUM(a.x * b.x) FROM t a, t b WHERE a.x + b.x > 0");
  cancel_thread.join();
  // Either the cancel landed mid-statement (kCancelled) or the
  // statement won the race; both leave the session healthy.
  if (!rs.ok()) {
    EXPECT_EQ(rs.status().code(), StatusCode::kCancelled);
    EXPECT_FALSE(victim.last_error_retryable());
  }
  NLQ_ASSERT_OK(victim.Ping());
}

TEST(ServerTest, CancelBetweenStatementsHitsNextStatement) {
  TestServer ts = StartTestServer();
  NLQ_ASSERT_OK(ts.db->ExecuteCommand("CREATE TABLE t (i BIGINT)"));
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(
      "INSERT INTO t VALUES (1)"));

  NlqClient victim, canceller;
  NLQ_ASSERT_OK(victim.Connect("127.0.0.1", ts.server->port()));
  NLQ_ASSERT_OK(canceller.Connect("127.0.0.1", ts.server->port()));

  // Victim is idle: the cancel arms pending_cancel.
  NLQ_ASSERT_OK(canceller.Cancel(victim.session_id()));
  auto rs = victim.Query("SELECT COUNT(*) FROM t");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kCancelled);
  // One-shot: the statement after that runs normally.
  NLQ_ASSERT_OK(victim.Query("SELECT COUNT(*) FROM t").status());
}

TEST(ServerTest, CancelUnknownSessionIsNotFound) {
  TestServer ts = StartTestServer();
  NlqClient client;
  NLQ_ASSERT_OK(client.Connect("127.0.0.1", ts.server->port()));
  Status s = client.Cancel(999999);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  NLQ_ASSERT_OK(client.Ping());
}

TEST(ServerTest, MetricsCommandReturnsServerMetrics) {
  TestServer ts = StartTestServer();
  NLQ_ASSERT_OK(ts.db->ExecuteCommand("CREATE TABLE t (i BIGINT)"));
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(
      "INSERT INTO t VALUES (1)"));
  NlqClient client;
  NLQ_ASSERT_OK(client.Connect("127.0.0.1", ts.server->port()));
  NLQ_ASSERT_OK(client.Query("SELECT COUNT(*) FROM t").status());
  NLQ_ASSERT_OK_AND_ASSIGN(std::string json, client.Metrics());
  EXPECT_NE(json.find("server.admission.admitted"), std::string::npos);
  EXPECT_NE(json.find("server.sessions"), std::string::npos);
  EXPECT_NE(json.find("server.queue_wait"), std::string::npos);
}

TEST(ServerTest, SessionCapRefusesExtraConnections) {
  ServerOptions options;
  options.max_sessions = 2;
  TestServer ts = StartTestServer(options);

  NlqClient a, b, c;
  NLQ_ASSERT_OK(a.Connect("127.0.0.1", ts.server->port()));
  NLQ_ASSERT_OK(b.Connect("127.0.0.1", ts.server->port()));
  Status third = c.Connect("127.0.0.1", ts.server->port());
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.code(), StatusCode::kResourceExhausted);

  // Closing one frees a slot.
  NLQ_ASSERT_OK(a.Goodbye());
  for (int i = 0; i < 100; ++i) {  // Close is processed asynchronously
    if (c.Connect("127.0.0.1", ts.server->port()).ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(c.connected());
}

TEST(ServerTest, IdleTimeoutClosesSession) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  TestServer ts = StartTestServer(options);

  NlqClient client;
  NLQ_ASSERT_OK(client.Connect("127.0.0.1", ts.server->port()));
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  // The server has sent an idle-timeout error and closed; the next
  // request fails rather than hanging.
  Status s = client.Ping();
  EXPECT_FALSE(s.ok());
}

TEST(ServerTest, GracefulShutdownDrainsInFlightStatement) {
  TestServer ts = StartTestServer();
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(
      "CREATE TABLE t (i BIGINT, x DOUBLE)"));
  std::string insert = "INSERT INTO t VALUES (0, 0.5)";
  for (int i = 1; i < 500; ++i) {
    insert += ", (" + std::to_string(i) + ", 0.5)";
  }
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(insert));

  NlqClient client;
  NLQ_ASSERT_OK(client.Connect("127.0.0.1", ts.server->port()));

  std::atomic<bool> query_done{false};
  StatusOr<engine::ResultSet> result = Status::Internal("not run");
  std::thread querier([&] {
    result = client.Query(
        "SELECT COUNT(*), SUM(a.x * b.x) FROM t a, t b");
    query_done.store(true);
  });
  // Let the statement get admitted, then shut down mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ts.server->Shutdown();
  querier.join();
  // The drain must have delivered the reply: either the full result
  // or (if the statement had not been admitted yet) a clean
  // unavailable rejection — never a torn stream.
  if (result.ok()) {
    EXPECT_EQ(result->num_rows(), 1u);
    EXPECT_EQ(result->GetDouble(0, 0), 250000.0);
  } else {
    EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_TRUE(query_done.load());

  // New connections are refused after shutdown.
  NlqClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", ts.server->port()).ok());
}

TEST(ServerTest, SetOptionsAppliesStatementTimeout) {
  TestServer ts = StartTestServer();
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(
      "CREATE TABLE t (i BIGINT, x DOUBLE)"));
  std::string insert = "INSERT INTO t VALUES (0, 0.5)";
  for (int i = 1; i < 2000; ++i) {
    insert += ", (" + std::to_string(i) + ", 0.5)";
  }
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(insert));

  NlqClient client;
  NLQ_ASSERT_OK(client.Connect("127.0.0.1", ts.server->port()));
  NLQ_ASSERT_OK(client.SetOptions(/*timeout_ms=*/20, /*memory_limit=*/-1,
                                  /*force_interpreted=*/false));
  auto rs = client.Query(
      "SELECT COUNT(*), SUM(a.x * b.x) FROM t a, t b WHERE a.x + b.x > 0");
  if (!rs.ok()) {
    EXPECT_EQ(rs.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_FALSE(client.last_error_retryable());
  }
  NLQ_ASSERT_OK(client.Ping());
}

TEST(ServerTest, SetOptionsMidSessionScopesToSubsequentStatements) {
  TestServer ts = StartTestServer();
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(
      "CREATE TABLE t (i BIGINT, x DOUBLE)"));
  std::string insert = "INSERT INTO t VALUES (0, 0.5)";
  for (int i = 1; i < 2000; ++i) {
    insert += ", (" + std::to_string(i) + ", 0.5)";
  }
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(insert));
  const std::string long_sql =
      "SELECT COUNT(*), SUM(a.x * b.x) FROM t a, t b WHERE a.x + b.x > 0";

  NlqClient tight, other;
  NLQ_ASSERT_OK(tight.Connect("127.0.0.1", ts.server->port()));
  NLQ_ASSERT_OK(other.Connect("127.0.0.1", ts.server->port()));

  // Before any SET_OPTIONS the statement runs to completion.
  NLQ_ASSERT_OK(tight.Query(long_sql).status());

  // A 1ms budget applies to the statements that follow on THIS
  // session only: the same statement now times out here while the
  // untouched session still completes it.
  NLQ_ASSERT_OK(tight.SetOptions(/*timeout_ms=*/1, /*memory_limit=*/-1,
                                 /*force_interpreted=*/false));
  auto rs = tight.Query(long_sql);
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(tight.last_error_retryable());
  NLQ_ASSERT_OK(other.Query(long_sql).status());

  // Resetting the option un-applies it for later statements; the
  // session itself stayed healthy throughout.
  NLQ_ASSERT_OK(tight.SetOptions(/*timeout_ms=*/-1, /*memory_limit=*/-1,
                                 /*force_interpreted=*/false));
  NLQ_ASSERT_OK(tight.Query(long_sql).status());
}

TEST(ServerTest, IdleTimeoutSparesInFlightStatement) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  TestServer ts = StartTestServer(options);
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(
      "CREATE TABLE t (i BIGINT, x DOUBLE)"));
  std::string insert = "INSERT INTO t VALUES (0, 0.5)";
  for (int i = 1; i < 2000; ++i) {
    insert += ", (" + std::to_string(i) + ", 0.5)";
  }
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(insert));

  NlqClient client;
  NLQ_ASSERT_OK(client.Connect("127.0.0.1", ts.server->port()));

  // A statement that (on any non-heroic build) runs well past the
  // idle timeout: executing is not idling, so the session must not be
  // reaped mid-statement. No hard timing assertion — on a fast enough
  // machine the in-flight case is simply exercised less deeply.
  NLQ_ASSERT_OK(client.Query(
      "SELECT COUNT(*), SUM(a.x * b.x) FROM t a, t b WHERE a.x + b.x > 0")
          .status());

  // Actually idling past the timeout still closes the session.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_FALSE(client.Ping().ok());
}

TEST(ServerTest, CancelBySessionAbortsQueuedStatement) {
  ServerOptions options;
  options.admission.max_concurrent_statements = 1;
  options.admission.max_queue_depth = 8;
  options.admission.max_queue_wait_ms = 60'000;
  TestServer ts = StartTestServer(options);
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(
      "CREATE TABLE t (i BIGINT, x DOUBLE)"));
  std::string insert = "INSERT INTO t VALUES (0, 0.5)";
  for (int i = 1; i < 2000; ++i) {
    insert += ", (" + std::to_string(i) + ", 0.5)";
  }
  NLQ_ASSERT_OK(ts.db->ExecuteCommand(insert));
  const std::string long_sql =
      "SELECT COUNT(*), SUM(a.x * b.x) FROM t a, t b WHERE a.x + b.x > 0";

  NlqClient holder, queued, canceller;
  NLQ_ASSERT_OK(holder.Connect("127.0.0.1", ts.server->port()));
  NLQ_ASSERT_OK(queued.Connect("127.0.0.1", ts.server->port()));
  NLQ_ASSERT_OK(canceller.Connect("127.0.0.1", ts.server->port()));
  const uint64_t queued_id = queued.session_id();

  StatusOr<engine::ResultSet> holder_rs = Status::Internal("not run");
  StatusOr<engine::ResultSet> queued_rs = Status::Internal("not run");
  std::thread holder_thread([&] { holder_rs = holder.Query(long_sql); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread queued_thread([&] {
    queued_rs = queued.Query("SELECT COUNT(*) FROM t");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // The victim is sitting in the admission wait queue (one slot, held
  // by the cross join). Cancelling its session must abort the WAIT —
  // a definitive kCancelled, not retryable — without touching the
  // statement that holds the slot.
  NLQ_ASSERT_OK(canceller.Cancel(queued_id));
  queued_thread.join();
  holder_thread.join();

  NLQ_ASSERT_OK(holder_rs.status());
  if (!queued_rs.ok()) {
    EXPECT_EQ(queued_rs.status().code(), StatusCode::kCancelled);
    EXPECT_FALSE(queued.last_error_retryable());
  }
  // Cancel is one-shot; both sessions stay usable.
  NLQ_ASSERT_OK(queued.Ping());
  NLQ_ASSERT_OK(holder.Ping());
}

TEST(ServerTest, MetricsHistogramSummaryOverTheWire) {
  TestServer ts = StartTestServer();
  NLQ_ASSERT_OK(ts.db->ExecuteCommand("CREATE TABLE t (i BIGINT)"));
  NLQ_ASSERT_OK(ts.db->ExecuteCommand("INSERT INTO t VALUES (1), (2)"));

  NlqClient client;
  NLQ_ASSERT_OK(client.Connect("127.0.0.1", ts.server->port()));
  for (int i = 0; i < 5; ++i) {
    NLQ_ASSERT_OK(client.Query("SELECT COUNT(*) FROM t").status());
  }

  NLQ_ASSERT_OK_AND_ASSIGN(HistogramSummary summary,
                           client.MetricsHistogram("server.queue_wait"));
  EXPECT_GE(summary.count, 5u);
  EXPECT_GT(summary.sum_nanos, 0u);
  EXPECT_LE(summary.p50_nanos, summary.p95_nanos);
  EXPECT_LE(summary.p95_nanos, summary.p99_nanos);

  Status missing = client.MetricsHistogram("no.such.histogram").status();
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  EXPECT_FALSE(client.last_error_retryable());
  NLQ_ASSERT_OK(client.Ping());
}

}  // namespace
}  // namespace nlq::server
