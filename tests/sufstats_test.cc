#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "stats/sufstats.h"
#include "tests/test_util.h"

namespace nlq::stats {
namespace {

std::vector<std::vector<double>> RandomPoints(size_t n, size_t d,
                                              uint64_t seed) {
  Random rng(seed);
  std::vector<std::vector<double>> points(n, std::vector<double>(d));
  for (auto& p : points) {
    for (auto& v : p) v = rng.NextUniform(-50, 150);
  }
  return points;
}

TEST(MatrixKindTest, ParseAndName) {
  EXPECT_EQ(*MatrixKindFromString("diag"), MatrixKind::kDiagonal);
  EXPECT_EQ(*MatrixKindFromString("TRIANG"), MatrixKind::kLowerTriangular);
  EXPECT_EQ(*MatrixKindFromString("Full"), MatrixKind::kFull);
  EXPECT_FALSE(MatrixKindFromString("bogus").ok());
  EXPECT_STREQ(MatrixKindName(MatrixKind::kDiagonal), "diag");
}

TEST(SufStatsTest, EmptyStats) {
  SufStats stats(3, MatrixKind::kFull);
  EXPECT_EQ(stats.n(), 0.0);
  EXPECT_EQ(stats.d(), 3u);
  EXPECT_EQ(stats.L(0), 0.0);
  EXPECT_EQ(stats.Q(1, 2), 0.0);
}

TEST(SufStatsTest, SinglePoint) {
  SufStats stats(2, MatrixKind::kFull);
  const std::vector<double> x{3.0, -4.0};
  stats.Update(x);
  EXPECT_EQ(stats.n(), 1.0);
  EXPECT_DOUBLE_EQ(stats.L(0), 3.0);
  EXPECT_DOUBLE_EQ(stats.L(1), -4.0);
  EXPECT_DOUBLE_EQ(stats.Q(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(stats.Q(0, 1), -12.0);
  EXPECT_DOUBLE_EQ(stats.Q(1, 1), 16.0);
  EXPECT_DOUBLE_EQ(stats.Min(1), -4.0);
  EXPECT_DOUBLE_EQ(stats.Max(0), 3.0);
}

TEST(SufStatsTest, TriangularGivesSymmetricAccess) {
  SufStats stats(3, MatrixKind::kLowerTriangular);
  stats.Update(std::vector<double>{1, 2, 3});
  stats.Update(std::vector<double>{4, 5, 6});
  EXPECT_DOUBLE_EQ(stats.Q(0, 2), stats.Q(2, 0));
  EXPECT_DOUBLE_EQ(stats.Q(0, 2), 1.0 * 3 + 4.0 * 6);
}

TEST(SufStatsTest, DiagonalSkipsOffDiagonal) {
  SufStats stats(2, MatrixKind::kDiagonal);
  stats.Update(std::vector<double>{2, 3});
  EXPECT_DOUBLE_EQ(stats.Q(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(stats.Q(1, 1), 9.0);
  EXPECT_DOUBLE_EQ(stats.Q(0, 1), 0.0);  // never computed
}

TEST(SufStatsTest, NumQEntries) {
  EXPECT_EQ(SufStats(5, MatrixKind::kDiagonal).NumQEntries(), 5u);
  EXPECT_EQ(SufStats(5, MatrixKind::kLowerTriangular).NumQEntries(), 15u);
  EXPECT_EQ(SufStats(5, MatrixKind::kFull).NumQEntries(), 25u);
}

// Property sweep: every kind agrees with the full kind on the entries
// it maintains, and triangular == full everywhere.
class SufStatsKindTest : public ::testing::TestWithParam<MatrixKind> {};

TEST_P(SufStatsKindTest, MatchesNaiveComputation) {
  const size_t d = 6, n = 200;
  const auto points = RandomPoints(n, d, 17);
  SufStats stats(d, GetParam());
  for (const auto& p : points) stats.Update(p);

  // Naive reference.
  EXPECT_EQ(stats.n(), static_cast<double>(n));
  for (size_t a = 0; a < d; ++a) {
    double l = 0, q_aa = 0, mn = 1e300, mx = -1e300;
    for (const auto& p : points) {
      l += p[a];
      q_aa += p[a] * p[a];
      mn = std::min(mn, p[a]);
      mx = std::max(mx, p[a]);
    }
    EXPECT_NEAR(stats.L(a), l, 1e-9 * std::fabs(l));
    EXPECT_NEAR(stats.Q(a, a), q_aa, 1e-9 * q_aa);
    EXPECT_DOUBLE_EQ(stats.Min(a), mn);
    EXPECT_DOUBLE_EQ(stats.Max(a), mx);
  }
  if (GetParam() != MatrixKind::kDiagonal) {
    for (size_t a = 0; a < d; ++a) {
      for (size_t b = 0; b < d; ++b) {
        double q_ab = 0;
        for (const auto& p : points) q_ab += p[a] * p[b];
        EXPECT_NEAR(stats.Q(a, b), q_ab, 1e-9 * std::fabs(q_ab) + 1e-9);
      }
    }
  }
}

TEST_P(SufStatsKindTest, MergeEqualsSequential) {
  const size_t d = 4;
  const auto points = RandomPoints(300, d, 23);
  SufStats whole(d, GetParam());
  for (const auto& p : points) whole.Update(p);

  // Split into 3 partials, merge.
  SufStats merged(d, GetParam());
  for (size_t part = 0; part < 3; ++part) {
    SufStats partial(d, GetParam());
    for (size_t i = part; i < points.size(); i += 3) partial.Update(points[i]);
    NLQ_ASSERT_OK(merged.Merge(partial));
  }
  EXPECT_LT(whole.MaxAbsDiff(merged), 1e-6);
  for (size_t a = 0; a < d; ++a) {
    EXPECT_DOUBLE_EQ(whole.Min(a), merged.Min(a));
    EXPECT_DOUBLE_EQ(whole.Max(a), merged.Max(a));
  }
}

TEST_P(SufStatsKindTest, PackedRoundTrip) {
  const size_t d = 5;
  const auto points = RandomPoints(50, d, 29);
  SufStats stats(d, GetParam());
  for (const auto& p : points) stats.Update(p);

  NLQ_ASSERT_OK_AND_ASSIGN(SufStats back,
                           SufStats::FromPackedString(stats.ToPackedString()));
  EXPECT_EQ(back.d(), d);
  EXPECT_EQ(back.kind(), GetParam());
  EXPECT_EQ(back.n(), stats.n());
  EXPECT_EQ(stats.MaxAbsDiff(back), 0.0);  // exact round trip
  for (size_t a = 0; a < d; ++a) {
    EXPECT_EQ(back.Min(a), stats.Min(a));
    EXPECT_EQ(back.Max(a), stats.Max(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, SufStatsKindTest,
                         ::testing::Values(MatrixKind::kDiagonal,
                                           MatrixKind::kLowerTriangular,
                                           MatrixKind::kFull));


// ---------------------------------------------------------------------------
// Decremental maintenance (sufficient statistics are decomposable)
// ---------------------------------------------------------------------------

TEST_P(SufStatsKindTest, DowndateInvertsUpdate) {
  const size_t d = 4;
  const auto points = RandomPoints(100, d, 41);
  SufStats with_all(d, GetParam());
  for (const auto& p : points) with_all.Update(p);
  // Remove the last 30 points one by one.
  for (size_t i = 70; i < 100; ++i) with_all.Downdate(points[i]);

  SufStats only_first(d, GetParam());
  for (size_t i = 0; i < 70; ++i) only_first.Update(points[i]);
  EXPECT_EQ(with_all.n(), 70.0);
  EXPECT_LT(with_all.MaxAbsDiff(only_first), 1e-6);
}

TEST_P(SufStatsKindTest, SubtractInvertsMerge) {
  const size_t d = 3;
  const auto points = RandomPoints(200, d, 43);
  SufStats base(d, GetParam());
  SufStats extra(d, GetParam());
  for (size_t i = 0; i < 120; ++i) base.Update(points[i]);
  for (size_t i = 120; i < 200; ++i) extra.Update(points[i]);

  SufStats combined = base;
  NLQ_ASSERT_OK(combined.Merge(extra));
  NLQ_ASSERT_OK(combined.Subtract(extra));
  EXPECT_EQ(combined.n(), base.n());
  EXPECT_LT(combined.MaxAbsDiff(base), 1e-6);
}

TEST(SufStatsTest, ModelRefreshAfterDeletesMatchesRecompute) {
  // The point of decomposability: drop a batch of rows, rebuild the
  // regression from the adjusted statistics, and match a from-scratch
  // recompute — no rescan of the retained rows.
  const size_t d = 3;
  Random rng(47);
  std::vector<std::vector<double>> rows;
  SufStats live(d + 1, MatrixKind::kLowerTriangular);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> z(d + 1);
    for (size_t a = 0; a < d; ++a) z[a] = rng.NextUniform(-3, 3);
    z[d] = 1.0 + 2.0 * z[0] - z[1] + rng.NextGaussian(0, 0.5);
    live.Update(z);
    rows.push_back(std::move(z));
  }
  // Delete every 5th row incrementally.
  SufStats recomputed(d + 1, MatrixKind::kLowerTriangular);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i % 5 == 0) {
      live.Downdate(rows[i]);
    } else {
      recomputed.Update(rows[i]);
    }
  }
  EXPECT_LT(live.MaxAbsDiff(recomputed), 1e-6);
}

TEST(SufStatsTest, SubtractRejectsMismatch) {
  SufStats a(3, MatrixKind::kFull);
  SufStats b(2, MatrixKind::kFull);
  EXPECT_FALSE(a.Subtract(b).ok());
}

TEST(SufStatsTest, MergeRejectsMismatch) {
  SufStats a(3, MatrixKind::kFull);
  SufStats b(2, MatrixKind::kFull);
  SufStats c(3, MatrixKind::kDiagonal);
  EXPECT_FALSE(a.Merge(b).ok());
  EXPECT_FALSE(a.Merge(c).ok());
}

TEST(SufStatsTest, EmptyPackedRoundTrip) {
  SufStats empty(0, MatrixKind::kLowerTriangular);
  NLQ_ASSERT_OK_AND_ASSIGN(SufStats back,
                           SufStats::FromPackedString(empty.ToPackedString()));
  EXPECT_EQ(back.d(), 0u);
  EXPECT_EQ(back.n(), 0.0);
}

TEST(SufStatsTest, FromPackedStringRejectsGarbage) {
  EXPECT_FALSE(SufStats::FromPackedString("").ok());
  EXPECT_FALSE(SufStats::FromPackedString("1|2").ok());
  EXPECT_FALSE(SufStats::FromPackedString("2|1|x|1;2|0;0|0;0|1;2;3").ok());
  EXPECT_FALSE(SufStats::FromPackedString("2|9|5|1;2|0;0|0;0|1;2;3").ok());
  // Wrong Q count for the kind.
  EXPECT_FALSE(SufStats::FromPackedString("2|0|5|1;2|0;0|0;0|1;2;3").ok());
}

// ---------------------------------------------------------------------------
// Derived matrices (Section 3.2 identities)
// ---------------------------------------------------------------------------

TEST(SufStatsTest, MeanMatchesDefinition) {
  SufStats stats(2, MatrixKind::kFull);
  stats.Update(std::vector<double>{1, 10});
  stats.Update(std::vector<double>{3, 30});
  const auto mu = stats.Mean();
  EXPECT_DOUBLE_EQ(mu[0], 2.0);
  EXPECT_DOUBLE_EQ(mu[1], 20.0);
}

TEST(SufStatsTest, CovarianceMatchesNaive) {
  const size_t d = 4, n = 500;
  const auto points = RandomPoints(n, d, 31);
  SufStats stats(d, MatrixKind::kLowerTriangular);
  for (const auto& p : points) stats.Update(p);
  NLQ_ASSERT_OK_AND_ASSIGN(linalg::Matrix v, stats.CovarianceMatrix());

  // Naive two-pass covariance.
  std::vector<double> mean(d, 0);
  for (const auto& p : points) {
    for (size_t a = 0; a < d; ++a) mean[a] += p[a];
  }
  for (auto& m : mean) m /= n;
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = 0; b < d; ++b) {
      double cov = 0;
      for (const auto& p : points) cov += (p[a] - mean[a]) * (p[b] - mean[b]);
      cov /= n;
      EXPECT_NEAR(v(a, b), cov, 1e-6 * (1.0 + std::fabs(cov)));
    }
  }
}

TEST(SufStatsTest, CorrelationProperties) {
  const size_t d = 5;
  const auto points = RandomPoints(1000, d, 37);
  SufStats stats(d, MatrixKind::kLowerTriangular);
  for (const auto& p : points) stats.Update(p);
  NLQ_ASSERT_OK_AND_ASSIGN(linalg::Matrix rho, stats.CorrelationMatrix());
  for (size_t a = 0; a < d; ++a) {
    EXPECT_DOUBLE_EQ(rho(a, a), 1.0);
    for (size_t b = 0; b < d; ++b) {
      EXPECT_GE(rho(a, b), -1.0 - 1e-12);
      EXPECT_LE(rho(a, b), 1.0 + 1e-12);
      EXPECT_DOUBLE_EQ(rho(a, b), rho(b, a));
    }
  }
}

TEST(SufStatsTest, PerfectlyCorrelatedDimensions) {
  SufStats stats(2, MatrixKind::kFull);
  Random rng(3);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.NextGaussian(0, 1);
    stats.Update(std::vector<double>{v, 3.0 * v + 1.0});
  }
  NLQ_ASSERT_OK_AND_ASSIGN(linalg::Matrix rho, stats.CorrelationMatrix());
  EXPECT_NEAR(rho(0, 1), 1.0, 1e-9);
}

TEST(SufStatsTest, AnticorrelatedDimensions) {
  SufStats stats(2, MatrixKind::kFull);
  Random rng(4);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.NextGaussian(0, 1);
    stats.Update(std::vector<double>{v, -2.0 * v});
  }
  NLQ_ASSERT_OK_AND_ASSIGN(linalg::Matrix rho, stats.CorrelationMatrix());
  EXPECT_NEAR(rho(0, 1), -1.0, 1e-9);
}

TEST(SufStatsTest, DerivedMatricesRejectDiagonalKind) {
  SufStats stats(2, MatrixKind::kDiagonal);
  stats.Update(std::vector<double>{1, 2});
  stats.Update(std::vector<double>{2, 4});
  EXPECT_FALSE(stats.CovarianceMatrix().ok());
  EXPECT_FALSE(stats.CorrelationMatrix().ok());
}

TEST(SufStatsTest, CorrelationRejectsConstantDimension) {
  SufStats stats(2, MatrixKind::kFull);
  stats.Update(std::vector<double>{1, 5});
  stats.Update(std::vector<double>{2, 5});
  EXPECT_FALSE(stats.CorrelationMatrix().ok());
}

TEST(SufStatsTest, QMatrixSymmetrizes) {
  SufStats stats(3, MatrixKind::kLowerTriangular);
  stats.Update(std::vector<double>{1, 2, 3});
  const linalg::Matrix q = stats.QMatrix();
  EXPECT_TRUE(q.IsSymmetric());
  EXPECT_DOUBLE_EQ(q(2, 1), 6.0);
}

}  // namespace
}  // namespace nlq::stats
