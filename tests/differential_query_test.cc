// Differential/property suite (DESIGN.md #10): the same statistical
// query must produce *bit-identical* sufficient statistics on every
// execution path the engine has — the paper's "long" SQL query
// (Section 3.4), the aggregate-UDF row path (Figure 3) and the fused
// columnar fast path — and match an external C++ oracle that
// recomputes (n, L, Q) straight from the storage layer, mirroring the
// engine's morsel grid and morsel-index merge order. Every case is
// additionally swept across worker-thread counts {1, 2, 4}; the
// thread count must never change a single output bit, because the
// morsel grid (and therefore the merge order) depends only on the
// partition layout and morsel size, never on scheduling.
//
// Tables are generated from a seeded PRNG with dyadic-rational cell
// values (exact through SQL text round-trips), mixed NULL densities,
// row counts straddling the 1024-row decode batch, 1–8 partitions and
// morsel sizes that split partitions mid-stream. NULL placement picks
// the comparison set:
//   - NULLs confined to an unused padding column: all four paths are
//     comparable (the SQL query's sum(1.0) n-term counts every
//     surviving row, which equals the UDF count when no dimension is
//     NULL);
//   - NULLs inside the dimensions: the wide SQL query's per-column /
//     per-product NULL skipping diverges from the UDFs' documented
//     skip-row policy by design, so those cases compare the three
//     skip-row paths (UDF row, UDF columnar, oracle) only.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/strings.h"
#include "engine/database.h"
#include "engine/exec/morsel.h"
#include "stats/scoring.h"
#include "stats/sqlgen.h"
#include "stats/sufstats.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/partitioned_table.h"
#include "tests/test_util.h"

namespace nlq::engine {
namespace {

using stats::MatrixKind;
using stats::SufStats;
using storage::Datum;
using storage::Row;

// ---------------------------------------------------------------------------
// Bit-exact signatures
// ---------------------------------------------------------------------------

std::string Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return StringPrintf("%016llx", static_cast<unsigned long long>(bits));
}

/// Renders a result set so "equal" means byte-identical, not close.
std::string ResultSignature(const ResultSet& result) {
  std::string out;
  for (const auto& row : result.rows()) {
    for (const Datum& v : row) {
      if (v.is_null()) {
        out += "NULL,";
        continue;
      }
      switch (v.type()) {
        case storage::DataType::kDouble:
          out += "d:" + Bits(v.double_value()) + ",";
          break;
        case storage::DataType::kInt64:
          out += StringPrintf("i:%lld,", static_cast<long long>(v.int_value()));
          break;
        case storage::DataType::kVarchar:
          out += "s:" + v.string_value() + ",";
          break;
      }
    }
    out += "\n";
  }
  return out;
}

/// Bit pattern of every statistic a SufStats carries. Min/max are
/// optional because the wide SQL query does not compute them.
std::string SufSignature(const SufStats& s, bool with_minmax) {
  std::string out = "n:" + Bits(s.n()) + "\n";
  const size_t d = s.d();
  for (size_t a = 0; a < d; ++a) {
    out += StringPrintf("L%zu:", a) + Bits(s.L(a)) + "\n";
  }
  for (size_t a = 0; a < d; ++a) {
    const size_t b_end = s.kind() == MatrixKind::kFull ? d : a + 1;
    for (size_t b = 0; b < b_end; ++b) {
      if (s.kind() == MatrixKind::kDiagonal && b != a) continue;
      out += StringPrintf("Q%zu_%zu:", a, b) + Bits(s.Q(a, b)) + "\n";
    }
  }
  if (with_minmax) {
    for (size_t a = 0; a < d; ++a) {
      out += StringPrintf("m%zu:", a) + Bits(s.Min(a)) + "," + Bits(s.Max(a)) +
             "\n";
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Case generation
// ---------------------------------------------------------------------------

struct TableConfig {
  size_t partitions;
  size_t rows;
  size_t d;
  MatrixKind kind;
  uint64_t morsel_rows;   // 0 = partition-granular morsels
  unsigned null_pct;      // per-cell NULL probability in percent
  bool nulls_in_dims;     // false: NULLs only in the padding column
  uint64_t seed;
};

// Row counts straddle the 1024-row decode batch; morsel sizes split
// partitions into several streams (the pre-existing equivalence tests
// only ever ran one morsel per partition); partition counts include
// layouts that divide the rows unevenly.
const TableConfig kConfigs[] = {
    // Four-path cases: dimensions stay NULL-free.
    {1, 0, 2, MatrixKind::kLowerTriangular, 16384, 0, false, 101},
    {1, 1, 1, MatrixKind::kDiagonal, 16384, 0, false, 102},
    {2, 1, 3, MatrixKind::kFull, 0, 0, false, 103},
    {2, 7, 2, MatrixKind::kLowerTriangular, 64, 0, false, 104},
    {3, 100, 4, MatrixKind::kFull, 256, 0, false, 105},
    {4, 100, 1, MatrixKind::kDiagonal, 64, 25, false, 106},
    {4, 1023, 2, MatrixKind::kLowerTriangular, 16384, 0, false, 107},
    {4, 1024, 2, MatrixKind::kFull, 1024, 0, false, 108},
    {4, 1025, 3, MatrixKind::kLowerTriangular, 256, 10, false, 109},
    {5, 511, 4, MatrixKind::kDiagonal, 128, 0, false, 110},
    {7, 777, 3, MatrixKind::kFull, 0, 20, false, 111},
    {8, 1200, 4, MatrixKind::kLowerTriangular, 1024, 0, false, 112},
    {8, 64, 2, MatrixKind::kDiagonal, 64, 0, false, 113},
    {6, 300, 3, MatrixKind::kLowerTriangular, 96, 15, false, 114},
    {3, 1024, 1, MatrixKind::kFull, 0, 0, false, 115},
    {2, 1025, 4, MatrixKind::kFull, 512, 0, false, 116},
    // Three-path cases: NULLs land inside the dimensions, exercising
    // the skip-row policy (and its columnar compaction) under WHERE.
    {1, 50, 2, MatrixKind::kLowerTriangular, 16384, 30, true, 201},
    {2, 100, 3, MatrixKind::kFull, 64, 20, true, 202},
    {4, 1023, 2, MatrixKind::kDiagonal, 256, 10, true, 203},
    {4, 1024, 3, MatrixKind::kLowerTriangular, 1024, 35, true, 204},
    {5, 1025, 4, MatrixKind::kFull, 0, 15, true, 205},
    {7, 777, 1, MatrixKind::kLowerTriangular, 128, 50, true, 206},
    {8, 1200, 2, MatrixKind::kDiagonal, 16384, 5, true, 207},
    {3, 7, 4, MatrixKind::kLowerTriangular, 64, 80, true, 208},
};

const char* KindName(MatrixKind kind) {
  switch (kind) {
    case MatrixKind::kDiagonal:
      return "diag";
    case MatrixKind::kLowerTriangular:
      return "triang";
    case MatrixKind::kFull:
      return "full";
  }
  return "?";
}

/// Cell values are dyadic rationals k/256 with |k| < 2^15: at most 8
/// fractional decimal digits, so "%.8f" round-trips them exactly
/// through SQL text and back into the same double.
double NextCell(Random* rng) {
  const int64_t k =
      static_cast<int64_t>(rng->NextUint64(1u << 16)) - (1 << 15);
  return static_cast<double>(k) / 256.0;
}

/// Builds the batched INSERT statements for `cfg` — regenerated
/// identically for every thread-count variant so all databases hold
/// the same rows in the same partition layout.
std::vector<std::string> BuildInserts(const TableConfig& cfg) {
  Random rng(cfg.seed);
  std::vector<std::string> statements;
  std::string insert;
  for (size_t r = 0; r < cfg.rows; ++r) {
    if (insert.empty()) insert = "INSERT INTO T VALUES ";
    insert += StringPrintf("(%zu", r);
    for (size_t c = 0; c < cfg.d + 1; ++c) {  // d dimensions + padding
      const bool dim = c < cfg.d;
      const double v = NextCell(&rng);  // always drawn: keeps streams aligned
      const bool null_here = cfg.null_pct > 0 &&
                             (dim ? cfg.nulls_in_dims : !cfg.nulls_in_dims) &&
                             rng.NextUint64(100) < cfg.null_pct;
      if (null_here) {
        insert += ", NULL";
      } else {
        insert += StringPrintf(", %.8f", v);
      }
    }
    insert += ")";
    if ((r + 1) % 128 == 0 || r + 1 == cfg.rows) {
      statements.push_back(insert);
      insert.clear();
    } else {
      insert += ", ";
    }
  }
  return statements;
}

/// NLQ_TEST_SPILL=1 (the CI spill-smoke job) runs the entire suite
/// against spilled tables behind a minimum-size buffer pool: every
/// query streams compressed chunks through eviction + readahead, and
/// the suite's cross-path bit-equality checks double as the
/// spilled-vs-resident differential — the oracle reads the same
/// spilled table through BatchScanner, so a single flipped bit
/// anywhere in the codec/pool/readahead stack fails the run.
bool SpillSmoke() {
  const char* v = std::getenv("NLQ_TEST_SPILL");
  return v != nullptr && v[0] == '1';
}

/// NLQ_TEST_VIEWS=1 (the CI views-smoke job) re-runs the suite with
/// maintained-view registration enabled: every eligible aggregate is
/// executed twice — the first statement seeds the view's per-morsel
/// partials, the second serves the registered entry — and both must be
/// bit-identical to the views-off columnar result, which the row path
/// and the external oracle already pin. Under NLQ_TEST_SPILL the
/// tables are spilled, so views are ineligible and the mode degrades
/// to the plain suite.
bool ViewsSmoke() {
  const char* v = std::getenv("NLQ_TEST_VIEWS");
  return v != nullptr && v[0] == '1';
}

void CreateAndFill(Database* db, const TableConfig& cfg,
                   const std::vector<std::string>& inserts) {
  std::string create = "CREATE TABLE T (i BIGINT";
  for (size_t a = 0; a < cfg.d; ++a) {
    create += StringPrintf(", X%zu DOUBLE", a + 1);
  }
  create += ", PAD DOUBLE)";
  NLQ_ASSERT_OK(db->ExecuteCommand(create));
  for (const std::string& insert : inserts) {
    NLQ_ASSERT_OK(db->ExecuteCommand(insert));
  }
  if (SpillSmoke()) NLQ_ASSERT_OK(db->SpillTable("T"));
}

std::unique_ptr<Database> MakeDiffDatabase(const TableConfig& cfg,
                                           size_t num_threads) {
  DatabaseOptions options;
  options.num_partitions = cfg.partitions;
  options.num_threads = num_threads;
  options.morsel_rows = cfg.morsel_rows;
  if (SpillSmoke()) {
    // Smallest legal pool: every config's table is then larger than
    // the frame set, so scans must evict and re-read continuously.
    options.buffer_pool_bytes =
        storage::kPageSize * storage::BufferPool::kMinFrames;
  }
  options.enable_view_maintenance = ViewsSmoke();
  auto db = std::make_unique<Database>(options);
  EXPECT_TRUE(stats::RegisterAllStatsUdfs(&db->udfs()).ok());
  return db;
}

/// One WHERE clause plus the oracle's row-level rendering of it. A
/// NULL operand makes the SQL comparison UNKNOWN, which drops the row
/// on every engine path; the predicates mirror that with an explicit
/// is_null() check.
struct WhereVariant {
  std::string suffix;  // "" or " WHERE ..."
  std::function<bool(const Row&)> pred;
};

std::vector<WhereVariant> BuildWheres(const TableConfig& cfg) {
  std::vector<WhereVariant> wheres;
  wheres.push_back({"", [](const Row&) { return true; }});
  wheres.push_back({" WHERE X1 > -8.0", [](const Row& row) {
                      return !row[1].is_null() && row[1].AsDouble() > -8.0;
                    }});
  const int64_t cutoff =
      cfg.rows == 0 ? 1 : static_cast<int64_t>(cfg.rows * 3 / 4);
  wheres.push_back(
      {StringPrintf(" WHERE i < %lld", static_cast<long long>(cutoff)),
       [cutoff](const Row& row) { return row[0].int_value() < cutoff; }});
  return wheres;
}

/// Per-statement override planning the pure interpreted row path: no
/// fused fast path, no vector pipeline, no compiled programs. This is
/// the suite's oracle-side execution mode.
QueryOptions Interpreted() {
  QueryOptions options;
  options.force_interpreted = true;
  return options;
}

// ---------------------------------------------------------------------------
// External oracle: recomputes SufStats straight from the storage
// layer, outside the exec layer entirely, mirroring the engine's
// accumulation structure — one partial per morsel of the same grid
// BuildMorselGrid hands the scan nodes, merged in morsel-index order
// (how both aggregate nodes fold their per-stream partials).
// ---------------------------------------------------------------------------

void ComputeOracle(const storage::PartitionedTable& table,
                   const TableConfig& cfg, const WhereVariant& where,
                   SufStats* out, uint64_t* surviving) {
  const std::vector<exec::Morsel> grid =
      exec::BuildMorselGrid(table, cfg.morsel_rows);
  SufStats total(cfg.d, cfg.kind);
  bool first = true;
  uint64_t n_survive = 0;
  std::vector<double> x(cfg.d);
  for (const exec::Morsel& m : grid) {
    SufStats part(cfg.d, cfg.kind);
    storage::BatchScanner scanner =
        table.ScanPartitionBatches(m.partition, m.begin, m.end);
    storage::RowBatch batch;
    while (scanner.Next(&batch)) {
      for (size_t r = 0; r < batch.size(); ++r) {
        const Row& row = batch.row(r);
        if (!where.pred(row)) continue;
        bool null_dim = false;
        for (size_t a = 0; a < cfg.d; ++a) null_dim |= row[1 + a].is_null();
        if (null_dim) continue;  // the UDFs' skip-row policy
        for (size_t a = 0; a < cfg.d; ++a) x[a] = row[1 + a].double_value();
        part.Update(x.data());
        ++n_survive;
      }
    }
    NLQ_ASSERT_OK(scanner.status());
    if (first) {
      total = part;
      first = false;
    } else {
      NLQ_ASSERT_OK(total.Merge(part));
    }
  }
  *out = total;
  *surviving = n_survive;
}

// ---------------------------------------------------------------------------
// One differential case
// ---------------------------------------------------------------------------

struct CaseSigs {
  std::string row;  // UDF, forced interpreted row path
  std::string col;  // UDF, columnar fast path
  std::string sql;  // wide SQL query (empty when not comparable)
};

void RunCase(Database* db, const TableConfig& cfg, const WhereVariant& where,
             const SufStats& oracle, uint64_t surviving, CaseSigs* sigs) {
  const std::vector<std::string> cols = stats::DimensionColumns(cfg.d);
  const std::string udf_sql =
      stats::NlqUdfQuery("T", cols, cfg.kind, stats::ParamStyle::kList) +
      where.suffix;

  auto columnar = db->Execute(udf_sql);
  auto rowpath = db->Execute(udf_sql, Interpreted());
  NLQ_ASSERT_OK(columnar.status());
  NLQ_ASSERT_OK(rowpath.status());

  // The two executions must really take different paths, or this test
  // degenerates into comparing a path with itself.
  auto col_plan = db->Explain(udf_sql);
  auto row_plan = db->Explain(udf_sql, Interpreted());
  NLQ_ASSERT_OK(col_plan.status());
  NLQ_ASSERT_OK(row_plan.status());
  if (ViewsSmoke() && !SpillSmoke()) {
    // The execution above seeded the view; the plan now serves it.
    EXPECT_NE(col_plan->find("MaintainedViewScan"), std::string::npos)
        << udf_sql << "\n"
        << *col_plan;
    EXPECT_NE(col_plan->find("view=fresh"), std::string::npos)
        << udf_sql << "\n"
        << *col_plan;
  } else {
    EXPECT_NE(col_plan->find("ColumnarAggregate"), std::string::npos)
        << udf_sql << "\n"
        << *col_plan;
  }
  EXPECT_EQ(row_plan->find("Columnar"), std::string::npos)
      << udf_sql << "\n"
      << *row_plan;

  sigs->col = ResultSignature(*columnar);
  sigs->row = ResultSignature(*rowpath);
  EXPECT_EQ(sigs->col, sigs->row) << udf_sql;

  if (ViewsSmoke()) {
    // Fresh-hit pass: the registered view (zero delta) must reproduce
    // the seeding statement's bytes exactly.
    auto again = db->Execute(udf_sql);
    NLQ_ASSERT_OK(again.status());
    EXPECT_EQ(ResultSignature(*again), sigs->col) << udf_sql;
  }

  // Decoded UDF result vs the external oracle, bit for bit. Skipped
  // when no row survived: a never-accumulated UDF state finalizes as
  // the documented d=0 empty statistics, which carries no shape to
  // compare (the cross-path and cross-thread equalities above still
  // pin its exact bytes).
  if (surviving > 0) {
    NLQ_ASSERT_OK_AND_ASSIGN(
        SufStats decoded,
        SufStats::FromPackedString(rowpath->At(0, 0).string_value()));
    EXPECT_EQ(SufSignature(decoded, /*with_minmax=*/true),
              SufSignature(oracle, /*with_minmax=*/true))
        << udf_sql;
  }

  // The paper's wide SQL query, decoded back into SufStats. Only when
  // the dimensions are NULL-free (otherwise its per-column NULL
  // skipping legitimately diverges from skip-row) and at least one
  // row survived (SUM over nothing is NULL, which has no bit pattern
  // to compare).
  if (!cfg.nulls_in_dims && surviving > 0) {
    const std::string wide_sql =
        stats::NlqSqlQuery("T", cols, cfg.kind) + where.suffix;
    auto wide = db->Execute(wide_sql);
    NLQ_ASSERT_OK(wide.status());
    sigs->sql = ResultSignature(*wide);
    NLQ_ASSERT_OK_AND_ASSIGN(
        SufStats from_sql,
        stats::SufStatsFromWideRow(*wide, 0, cfg.d, cfg.kind));
    EXPECT_EQ(SufSignature(from_sql, /*with_minmax=*/false),
              SufSignature(oracle, /*with_minmax=*/false))
        << wide_sql;
  }
}

TEST(DifferentialQueryTest, AllPathsBitIdenticalAcrossThreads) {
  const size_t kThreads[] = {1, 2, 4};
  size_t cases = 0;
  for (const TableConfig& cfg : kConfigs) {
    const std::vector<std::string> inserts = BuildInserts(cfg);
    const std::vector<WhereVariant> wheres = BuildWheres(cfg);
    std::vector<CaseSigs> baseline(wheres.size());
    for (size_t t = 0; t < 3; ++t) {
      auto db = MakeDiffDatabase(cfg, kThreads[t]);
      CreateAndFill(db.get(), cfg, inserts);
      auto table = db->catalog().GetTable("T");
      NLQ_ASSERT_OK(table.status());
      for (size_t w = 0; w < wheres.size(); ++w) {
        SCOPED_TRACE(StringPrintf(
            "seed=%llu threads=%zu kind=%s where=[%s]",
            static_cast<unsigned long long>(cfg.seed), kThreads[t],
            KindName(cfg.kind), wheres[w].suffix.c_str()));
        SufStats oracle;
        uint64_t surviving = 0;
        ComputeOracle(**table, cfg, wheres[w], &oracle, &surviving);
        CaseSigs sigs;
        RunCase(db.get(), cfg, wheres[w], oracle, surviving, &sigs);
        if (t == 0) {
          baseline[w] = sigs;
        } else {
          // Thread count must not change one bit of any path.
          EXPECT_EQ(sigs.row, baseline[w].row);
          EXPECT_EQ(sigs.col, baseline[w].col);
          EXPECT_EQ(sigs.sql, baseline[w].sql);
        }
        ++cases;
      }
    }
  }
  // The issue's floor: this suite is only meaningful at volume.
  EXPECT_GE(cases, 200u);
}

// The paper's second parameter-passing style (Figure 3's packed
// string) runs through pack_point + nlq_string instead of nlq_list;
// both must produce the identical packed statistics.
TEST(DifferentialQueryTest, StringStyleMatchesListStyle) {
  const size_t kPick[] = {4, 8, 18, 21};  // indexes into kConfigs
  for (const size_t idx : kPick) {
    const TableConfig& cfg = kConfigs[idx];
    SCOPED_TRACE(StringPrintf("seed=%llu",
                              static_cast<unsigned long long>(cfg.seed)));
    auto db = MakeDiffDatabase(cfg, /*num_threads=*/2);
    CreateAndFill(db.get(), cfg, BuildInserts(cfg));
    const std::vector<std::string> cols = stats::DimensionColumns(cfg.d);
    const std::string list_sql =
        stats::NlqUdfQuery("T", cols, cfg.kind, stats::ParamStyle::kList);
    const std::string string_sql =
        stats::NlqUdfQuery("T", cols, cfg.kind, stats::ParamStyle::kString);
    auto list_result = db->Execute(list_sql, Interpreted());
    auto string_result = db->Execute(string_sql, Interpreted());
    NLQ_ASSERT_OK(list_result.status());
    NLQ_ASSERT_OK(string_result.status());
    EXPECT_EQ(ResultSignature(*list_result), ResultSignature(*string_result));
  }
}

// Builtin SQL aggregates against the same oracle: COUNT is the
// surviving-row count, SUM/MIN/MAX over X1 are the oracle's L(0),
// Min(0), Max(0) — bit for bit, on both paths.
TEST(DifferentialQueryTest, BuiltinAggregatesMatchOracle) {
  for (const TableConfig& cfg : kConfigs) {
    if (cfg.nulls_in_dims || cfg.rows == 0) continue;
    SCOPED_TRACE(StringPrintf("seed=%llu",
                              static_cast<unsigned long long>(cfg.seed)));
    auto db = MakeDiffDatabase(cfg, /*num_threads=*/4);
    CreateAndFill(db.get(), cfg, BuildInserts(cfg));
    auto table = db->catalog().GetTable("T");
    NLQ_ASSERT_OK(table.status());
    const std::vector<WhereVariant> wheres = BuildWheres(cfg);
    for (const WhereVariant& where : wheres) {
      SufStats oracle;
      uint64_t surviving = 0;
      ComputeOracle(**table, cfg, where, &oracle, &surviving);
      if (surviving == 0) continue;
      const std::string sql =
          "SELECT count(*), sum(X1), min(X1), max(X1) FROM T" + where.suffix;
      auto columnar = db->Execute(sql);
      auto rowpath = db->Execute(sql, Interpreted());
      NLQ_ASSERT_OK(columnar.status());
      NLQ_ASSERT_OK(rowpath.status());
      EXPECT_EQ(ResultSignature(*columnar), ResultSignature(*rowpath)) << sql;
      EXPECT_EQ(columnar->At(0, 0).int_value(),
                static_cast<int64_t>(surviving));
      EXPECT_EQ(Bits(columnar->At(0, 1).double_value()), Bits(oracle.L(0)));
      EXPECT_EQ(Bits(columnar->At(0, 2).double_value()), Bits(oracle.Min(0)));
      EXPECT_EQ(Bits(columnar->At(0, 3).double_value()), Bits(oracle.Max(0)));
    }
  }
}

// ---------------------------------------------------------------------------
// Segment models (GROUP BY) and scoring projections through the
// compiled pipeline: the vectorized plans (VectorHashAggregate, and
// compiled Project programs under a cross join) must match the forced
// interpreted row path and the external oracle bit for bit, across
// worker-thread counts {1, 2, 4}.
// ---------------------------------------------------------------------------

/// Per-group oracle mirroring the engine's structure exactly: one
/// partial map per morsel of the same grid, folded into the total in
/// morsel-index order (how both aggregate nodes merge their streams).
void ComputeGroupedOracle(const storage::PartitionedTable& table,
                          const TableConfig& cfg, int64_t modulus,
                          std::map<int64_t, SufStats>* out) {
  const std::vector<exec::Morsel> grid =
      exec::BuildMorselGrid(table, cfg.morsel_rows);
  std::map<int64_t, SufStats> total;
  std::vector<double> x(cfg.d);
  for (const exec::Morsel& m : grid) {
    std::map<int64_t, SufStats> part;
    storage::BatchScanner scanner =
        table.ScanPartitionBatches(m.partition, m.begin, m.end);
    storage::RowBatch batch;
    while (scanner.Next(&batch)) {
      for (size_t r = 0; r < batch.size(); ++r) {
        const Row& row = batch.row(r);
        bool null_dim = false;
        for (size_t a = 0; a < cfg.d; ++a) null_dim |= row[1 + a].is_null();
        if (null_dim) continue;
        for (size_t a = 0; a < cfg.d; ++a) x[a] = row[1 + a].double_value();
        const int64_t g = row[0].int_value() % modulus;
        auto it = part.find(g);
        if (it == part.end()) {
          it = part.emplace(g, SufStats(cfg.d, cfg.kind)).first;
        }
        it->second.Update(x.data());
      }
    }
    NLQ_ASSERT_OK(scanner.status());
    for (auto& [g, stats] : part) {
      auto it = total.find(g);
      if (it == total.end()) {
        total.emplace(g, stats);
      } else {
        NLQ_ASSERT_OK(it->second.Merge(stats));
      }
    }
  }
  *out = std::move(total);
}

TEST(DifferentialQueryTest, GroupedBuildsMatchOracleAcrossThreads) {
  const size_t kThreads[] = {1, 2, 4};
  const int64_t kModulus = 3;
  // NULL-free dimensions, layouts straddling batch/morsel boundaries.
  const size_t kPick[] = {4, 7, 11, 15};
  for (const size_t idx : kPick) {
    const TableConfig& cfg = kConfigs[idx];
    ASSERT_FALSE(cfg.nulls_in_dims);
    const std::vector<std::string> inserts = BuildInserts(cfg);
    const std::vector<std::string> cols = stats::DimensionColumns(cfg.d);
    const std::string udf_sql = stats::NlqUdfQueryGrouped(
        "T", cols, cfg.kind, stats::ParamStyle::kList, "i % 3");
    const std::string wide_sql =
        stats::NlqSqlQueryGrouped("T", cols, cfg.kind, "i % 3");
    std::string baseline;
    for (const size_t threads : kThreads) {
      SCOPED_TRACE(StringPrintf(
          "seed=%llu threads=%zu",
          static_cast<unsigned long long>(cfg.seed), threads));
      auto db = MakeDiffDatabase(cfg, threads);
      CreateAndFill(db.get(), cfg, inserts);

      // The default plan is the compiled pipeline; forced interpreted
      // is the row-path oracle. Identical output, including group
      // order.
      auto compiled = db->Execute(udf_sql);
      auto interpreted = db->Execute(udf_sql, Interpreted());
      NLQ_ASSERT_OK(compiled.status());
      NLQ_ASSERT_OK(interpreted.status());
      EXPECT_EQ(ResultSignature(*compiled), ResultSignature(*interpreted))
          << udf_sql;
      auto wide_compiled = db->Execute(wide_sql);
      auto wide_interpreted = db->Execute(wide_sql, Interpreted());
      NLQ_ASSERT_OK(wide_compiled.status());
      NLQ_ASSERT_OK(wide_interpreted.status());
      EXPECT_EQ(ResultSignature(*wide_compiled),
                ResultSignature(*wide_interpreted))
          << wide_sql;

      // Both statements really vectorize (and the oracle run doesn't).
      NLQ_ASSERT_OK_AND_ASSIGN(std::string plan, db->Explain(udf_sql));
      EXPECT_NE(plan.find("VectorHashAggregate"), std::string::npos) << plan;
      NLQ_ASSERT_OK_AND_ASSIGN(std::string row_plan,
                               db->Explain(udf_sql, Interpreted()));
      EXPECT_EQ(row_plan.find("Vector"), std::string::npos) << row_plan;

      // Against the external per-group oracle, bit for bit.
      auto table = db->catalog().GetTable("T");
      NLQ_ASSERT_OK(table.status());
      std::map<int64_t, SufStats> oracle;
      ComputeGroupedOracle(**table, cfg, kModulus, &oracle);
      ASSERT_EQ(compiled->num_rows(), oracle.size());
      for (size_t r = 0; r < compiled->num_rows(); ++r) {
        const int64_t g = compiled->At(r, 0).int_value();
        ASSERT_TRUE(oracle.count(g)) << "unexpected group " << g;
        NLQ_ASSERT_OK_AND_ASSIGN(
            SufStats decoded,
            SufStats::FromPackedString(compiled->At(r, 1).string_value()));
        EXPECT_EQ(SufSignature(decoded, /*with_minmax=*/true),
                  SufSignature(oracle.at(g), /*with_minmax=*/true))
            << "group " << g;
      }
      for (size_t r = 0; r < wide_compiled->num_rows(); ++r) {
        const int64_t g = wide_compiled->At(r, 0).int_value();
        NLQ_ASSERT_OK_AND_ASSIGN(
            SufStats from_sql,
            stats::SufStatsFromWideRow(*wide_compiled, r, cfg.d, cfg.kind,
                                       /*first_col=*/1));
        EXPECT_EQ(SufSignature(from_sql, /*with_minmax=*/false),
                  SufSignature(oracle.at(g), /*with_minmax=*/false))
            << "group " << g;
      }

      // Thread count must not change one bit of either path.
      const std::string sig =
          ResultSignature(*compiled) + ResultSignature(*wide_compiled);
      if (baseline.empty()) {
        baseline = sig;
      } else {
        EXPECT_EQ(sig, baseline);
      }
    }
  }
}

TEST(DifferentialQueryTest, ScoringProjectionsMatchAcrossThreads) {
  const size_t kThreads[] = {1, 2, 4};
  const size_t kPick[] = {4, 8, 15};
  for (const size_t idx : kPick) {
    const TableConfig& cfg = kConfigs[idx];
    const std::vector<std::string> inserts = BuildInserts(cfg);
    // One-row BETA(b0, b1..bd) with exact dyadic coefficients.
    std::string create_beta = "CREATE TABLE BETA (b0 DOUBLE";
    std::string insert_beta = "INSERT INTO BETA VALUES (0.5";
    for (size_t a = 1; a <= cfg.d; ++a) {
      create_beta += StringPrintf(", b%zu DOUBLE", a);
      insert_beta += StringPrintf(", %.8f", 0.25 * static_cast<double>(a));
    }
    create_beta += ")";
    insert_beta += ")";
    const std::string score_sql =
        stats::LinRegScoreSqlQuery("T", "BETA", cfg.d);
    // The pure-projection flavor (no join) runs the vector pipeline.
    std::string proj_sql = "SELECT i, X1 * X1 + 0.5 FROM T";
    std::string baseline;
    for (const size_t threads : kThreads) {
      SCOPED_TRACE(StringPrintf(
          "seed=%llu threads=%zu",
          static_cast<unsigned long long>(cfg.seed), threads));
      auto db = MakeDiffDatabase(cfg, threads);
      CreateAndFill(db.get(), cfg, inserts);
      NLQ_ASSERT_OK(db->ExecuteCommand(create_beta));
      NLQ_ASSERT_OK(db->ExecuteCommand(insert_beta));

      // Cross-join scoring stays on the row path but its projection
      // gets a compiled program; the join-free projection runs the
      // full vector pipeline.
      NLQ_ASSERT_OK_AND_ASSIGN(std::string score_plan,
                               db->Explain(score_sql));
      EXPECT_NE(score_plan.find("; compiled "), std::string::npos)
          << score_plan;
      NLQ_ASSERT_OK_AND_ASSIGN(std::string proj_plan, db->Explain(proj_sql));
      EXPECT_NE(proj_plan.find("VectorProject"), std::string::npos)
          << proj_plan;

      std::string sig;
      for (const std::string& sql : {score_sql, proj_sql}) {
        auto compiled = db->Execute(sql);
        auto interpreted = db->Execute(sql, Interpreted());
        NLQ_ASSERT_OK(compiled.status());
        NLQ_ASSERT_OK(interpreted.status());
        EXPECT_EQ(ResultSignature(*compiled), ResultSignature(*interpreted))
            << sql;
        sig += ResultSignature(*compiled);
      }
      if (baseline.empty()) {
        baseline = sig;
      } else {
        EXPECT_EQ(sig, baseline);
      }
    }
  }
}

}  // namespace
}  // namespace nlq::engine
