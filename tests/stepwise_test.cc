#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "stats/stepwise.h"
#include "tests/test_util.h"

namespace nlq::stats {
namespace {

/// Builds stats over (X1..Xd, Y) where Y depends only on the
/// predictors listed in `informative` with the given coefficients.
SufStats MakeSparseRegressionStats(size_t d, size_t n,
                                   const std::vector<size_t>& informative,
                                   const std::vector<double>& coefs,
                                   double noise, uint64_t seed) {
  Random rng(seed);
  SufStats stats(d + 1, MatrixKind::kLowerTriangular);
  std::vector<double> z(d + 1);
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < d; ++a) z[a] = rng.NextUniform(-5, 5);
    double y = 1.0;  // intercept
    for (size_t j = 0; j < informative.size(); ++j) {
      y += coefs[j] * z[informative[j]];
    }
    z[d] = y + (noise > 0 ? rng.NextGaussian(0, noise) : 0.0);
    stats.Update(z);
  }
  return stats;
}

TEST(SubsetRegressionTest, MatchesFullFitWhenSubsetIsEverything) {
  const SufStats stats =
      MakeSparseRegressionStats(3, 2000, {0, 1, 2}, {2, -1, 0.5}, 0.5, 7);
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel full,
                           FitLinearRegression(stats));
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel subset,
                           FitLinearRegressionSubset(stats, {0, 1, 2}));
  ASSERT_EQ(subset.beta.size(), full.beta.size());
  for (size_t i = 0; i < full.beta.size(); ++i) {
    EXPECT_NEAR(subset.beta[i], full.beta[i], 1e-10);
  }
  EXPECT_NEAR(subset.r2, full.r2, 1e-12);
}

TEST(SubsetRegressionTest, SubsetOrderingPermutesCoefficients) {
  const SufStats stats =
      MakeSparseRegressionStats(3, 2000, {0, 1, 2}, {2, -1, 0.5}, 0.0, 11);
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel forward,
                           FitLinearRegressionSubset(stats, {0, 2}));
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel reversed,
                           FitLinearRegressionSubset(stats, {2, 0}));
  EXPECT_NEAR(forward.beta[1], reversed.beta[2], 1e-10);
  EXPECT_NEAR(forward.beta[2], reversed.beta[1], 1e-10);
  EXPECT_NEAR(forward.r2, reversed.r2, 1e-12);
}

TEST(SubsetRegressionTest, DroppingInformativeVariableLowersR2) {
  const SufStats stats =
      MakeSparseRegressionStats(4, 5000, {0, 1}, {3, 2}, 0.5, 13);
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel both,
                           FitLinearRegressionSubset(stats, {0, 1}));
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel one,
                           FitLinearRegressionSubset(stats, {0}));
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel noise_only,
                           FitLinearRegressionSubset(stats, {2, 3}));
  EXPECT_GT(both.r2, 0.98);
  EXPECT_LT(one.r2, both.r2);
  EXPECT_LT(noise_only.r2, 0.05);
}

TEST(SubsetRegressionTest, InputValidation) {
  const SufStats stats =
      MakeSparseRegressionStats(3, 100, {0}, {1}, 0.1, 17);
  EXPECT_FALSE(FitLinearRegressionSubset(stats, {}).ok());
  EXPECT_FALSE(FitLinearRegressionSubset(stats, {0, 0}).ok());
  EXPECT_FALSE(FitLinearRegressionSubset(stats, {3}).ok());  // Y itself
  EXPECT_FALSE(FitLinearRegressionSubset(stats, {9}).ok());
  SufStats diag(3, MatrixKind::kDiagonal);
  EXPECT_FALSE(FitLinearRegressionSubset(diag, {0}).ok());
}

TEST(ForwardStepwiseTest, SelectsTheInformativeVariables) {
  // d = 8, only X3 and X6 (0-based 2, 5) drive Y.
  const SufStats stats =
      MakeSparseRegressionStats(8, 10000, {2, 5}, {4, -3}, 0.5, 19);
  NLQ_ASSERT_OK_AND_ASSIGN(StepwiseResult result,
                           ForwardStepwiseRegression(stats));
  ASSERT_GE(result.selected.size(), 2u);
  // The first two picks are exactly the informative pair (strongest
  // first: |4| > |-3| on the same input scale).
  EXPECT_EQ(result.selected[0], 2u);
  EXPECT_EQ(result.selected[1], 5u);
  EXPECT_GT(result.model.r2, 0.98);
  // The gain threshold stops it well before using all 8 predictors.
  EXPECT_LE(result.selected.size(), 4u);
}

TEST(ForwardStepwiseTest, R2PathMonotonic) {
  const SufStats stats =
      MakeSparseRegressionStats(6, 5000, {0, 1, 2}, {1, 1, 1}, 1.0, 23);
  StepwiseOptions options;
  options.min_r2_gain = 0.0;
  options.max_predictors = 6;
  NLQ_ASSERT_OK_AND_ASSIGN(StepwiseResult result,
                           ForwardStepwiseRegression(stats, options));
  for (size_t i = 1; i < result.r2_path.size(); ++i) {
    EXPECT_GE(result.r2_path[i], result.r2_path[i - 1] - 1e-12);
  }
}

TEST(ForwardStepwiseTest, MaxPredictorsRespected) {
  const SufStats stats = MakeSparseRegressionStats(
      6, 3000, {0, 1, 2, 3}, {1, 1, 1, 1}, 0.5, 29);
  StepwiseOptions options;
  options.max_predictors = 2;
  NLQ_ASSERT_OK_AND_ASSIGN(StepwiseResult result,
                           ForwardStepwiseRegression(stats, options));
  EXPECT_EQ(result.selected.size(), 2u);
  EXPECT_EQ(result.model.beta.size(), 3u);
}

TEST(ForwardStepwiseTest, SkipsCollinearCandidates) {
  // X2 duplicates X1; after picking one, the duplicate must be
  // skipped (singular) and selection must still finish cleanly.
  Random rng(31);
  SufStats stats(4, MatrixKind::kLowerTriangular);
  std::vector<double> z(4);
  for (int i = 0; i < 3000; ++i) {
    z[0] = rng.NextUniform(-5, 5);
    z[1] = z[0];  // exact copy
    z[2] = rng.NextUniform(-5, 5);
    z[3] = 2 * z[0] + z[2] + rng.NextGaussian(0, 0.2);
    stats.Update(z);
  }
  NLQ_ASSERT_OK_AND_ASSIGN(StepwiseResult result,
                           ForwardStepwiseRegression(stats));
  EXPECT_GT(result.model.r2, 0.98);
  // Never both of the identical pair.
  const bool has0 = std::count(result.selected.begin(),
                               result.selected.end(), 0u) > 0;
  const bool has1 = std::count(result.selected.begin(),
                               result.selected.end(), 1u) > 0;
  EXPECT_FALSE(has0 && has1);
}


TEST(CorrelationRankingTest, OrdersByAssociationStrength) {
  // Y driven strongly by X3 (idx 2), weakly by X1 (idx 0), not at all
  // by the others.
  Random rng(83);
  SufStats stats(5, MatrixKind::kLowerTriangular);
  std::vector<double> z(5);
  for (int i = 0; i < 20000; ++i) {
    for (size_t a = 0; a < 4; ++a) z[a] = rng.NextUniform(-5, 5);
    z[4] = 5.0 * z[2] + 0.5 * z[0] + rng.NextGaussian(0, 1.0);
    stats.Update(z);
  }
  NLQ_ASSERT_OK_AND_ASSIGN(auto ranking, RankPredictorsByCorrelation(stats));
  ASSERT_EQ(ranking.size(), 4u);
  EXPECT_EQ(ranking[0].first, 2u);
  EXPECT_EQ(ranking[1].first, 0u);
  EXPECT_GT(ranking[0].second, 0.95);
  EXPECT_LT(ranking[3].second, 0.1);
  // Descending invariant.
  for (size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_LE(ranking[i].second, ranking[i - 1].second);
  }
}

TEST(RidgeRegressionTest, ZeroLambdaMatchesOls) {
  const SufStats stats =
      MakeSparseRegressionStats(3, 2000, {0, 1, 2}, {2, -1, 0.5}, 0.5, 89);
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel ols,
                           FitLinearRegression(stats));
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel ridge,
                           FitRidgeRegression(stats, 0.0));
  for (size_t i = 0; i < ols.beta.size(); ++i) {
    EXPECT_DOUBLE_EQ(ridge.beta[i], ols.beta[i]);
  }
}

TEST(RidgeRegressionTest, ShrinksCoefficients) {
  const SufStats stats =
      MakeSparseRegressionStats(3, 500, {0, 1, 2}, {4, -3, 2}, 1.0, 97);
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel ols,
                           FitLinearRegression(stats));
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel heavy,
                           FitRidgeRegression(stats, 1e6));
  double ols_norm = 0, heavy_norm = 0;
  for (size_t i = 1; i < ols.beta.size(); ++i) {  // slopes only
    ols_norm += ols.beta[i] * ols.beta[i];
    heavy_norm += heavy.beta[i] * heavy.beta[i];
  }
  EXPECT_LT(heavy_norm, ols_norm * 0.01);
}

TEST(RidgeRegressionTest, StabilizesCollinearPredictors) {
  // Exact collinearity: OLS is singular/ill-posed but a small ridge
  // penalty must produce a finite, predictive model.
  Random rng(101);
  SufStats stats(3, MatrixKind::kLowerTriangular);
  std::vector<double> z(3);
  for (int i = 0; i < 1000; ++i) {
    z[0] = rng.NextUniform(-5, 5);
    z[1] = z[0];
    z[2] = 3.0 * z[0] + rng.NextGaussian(0, 0.1);
    stats.Update(z);
  }
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel ridge,
                           FitRidgeRegression(stats, 1.0));
  // The two identical predictors split the coefficient.
  EXPECT_NEAR(ridge.beta[1] + ridge.beta[2], 3.0, 0.1);
  EXPECT_GT(ridge.r2, 0.99);
}

TEST(RidgeRegressionTest, RejectsNegativeLambda) {
  const SufStats stats =
      MakeSparseRegressionStats(2, 100, {0}, {1}, 0.1, 103);
  EXPECT_FALSE(FitRidgeRegression(stats, -1.0).ok());
}

}  // namespace
}  // namespace nlq::stats
