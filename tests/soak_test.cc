// The soak harness's own test layer (ISSUE 10): a miniature mixed-
// workload soak — real server, real wire protocol, all six classes,
// chaos on where the build allows — must come out healthy (zero
// oracle mismatches, zero wrong retryable flags, zero unexplained
// errors) with every class exercised; plus direct checks that the
// oracle actually detects corruption (a harness whose oracle cannot
// fail proves nothing) and that the deterministic batch generator
// round-trips bit-exactly through SQL text.

#include "bench/soak/soak.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "engine/database.h"
#include "stats/scoring.h"
#include "stats/sqlgen.h"
#include "stats/sufstats.h"

namespace nlq::soak {
namespace {

SoakOptions MiniOptions() {
  SoakOptions options;
  options.clients = 4;
  options.duration_ms = 4'000;
  options.tables = 2;
  options.dims = 2;
  options.seed_batches = 4;
  options.batch_rows = 16;
  options.iterations = 2;
  options.scoring_burst = 2;
  options.scoring_limit = 64;
  options.max_concurrent_statements = 2;
  options.max_queue_depth = 8;
  options.max_queue_wait_ms = 1'000;
  options.chaos = failpoint::BuiltWithFailpoints();
  options.chaos_phase_ms = 500;
  return options;
}

std::unique_ptr<engine::Database> ReplayDb(const SoakOptions& options,
                                           const std::string& table) {
  engine::DatabaseOptions dbopts;
  dbopts.num_partitions = options.num_partitions;
  dbopts.morsel_rows = options.morsel_rows;
  dbopts.num_threads = 1;
  auto db = std::make_unique<engine::Database>(dbopts);
  EXPECT_TRUE(stats::RegisterAllStatsUdfs(&db->udfs()).ok());
  EXPECT_TRUE(
      db->ExecuteCommand(BuildOracle::CreateTableSql(options, table)).ok());
  return db;
}

TEST(SoakTest, MiniSoakIsHealthyAndExercisesEveryClass) {
  SoakOptions options = MiniOptions();
  SoakDriver driver(options);
  ASSERT_TRUE(driver.Run().ok());

  const SoakReport& report = driver.report();
  for (const std::string& e : driver.errors()) {
    ADD_FAILURE() << "soak error: " << e;
  }
  EXPECT_EQ(report.oracle_mismatches, 0u);
  EXPECT_EQ(report.retryable_flag_violations, 0u);
  EXPECT_EQ(report.internal_errors, 0u);
  EXPECT_TRUE(report.Healthy());

  EXPECT_GT(report.total_completed, 0u);
  EXPECT_GT(report.oracle_checks, 0u);
  ASSERT_EQ(report.classes.size(), kNumClasses);
  for (const ClassReport& c : report.classes) {
    EXPECT_GT(c.attempts, 0u) << "class " << c.name << " never ran";
  }
  if (failpoint::BuiltWithFailpoints()) {
    EXPECT_TRUE(report.chaos_enabled);
    EXPECT_GT(report.chaos_phases, 0u);
  }

  // The JSON report must carry the scoreboard fields CI greps for.
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"oracle_mismatches\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"retryable_flag_violations\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"internal_errors\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"stmts_per_sec_at_slo\""), std::string::npos);
}

TEST(SoakTest, OracleAcceptsCorrectBuildResult) {
  SoakOptions options = MiniOptions();
  const std::string table = BuildOracle::TableName(0);
  auto db = ReplayDb(options, table);
  for (uint64_t b = 0; b < 3; ++b) {
    ASSERT_TRUE(
        db->ExecuteCommand(BuildOracle::BatchInsertSql(options, 0, b)).ok());
  }
  const std::string sql =
      stats::NlqUdfQuery(table, stats::DimensionColumns(options.dims),
                         stats::MatrixKind::kLowerTriangular,
                         stats::ParamStyle::kList);
  auto result = db->Execute(sql);
  ASSERT_TRUE(result.ok());

  BuildOracle oracle(options);
  EXPECT_TRUE(
      oracle.VerifyBuild(0, 3 * options.batch_rows, sql, *result).ok());
}

TEST(SoakTest, OracleRejectsTamperedBuildResult) {
  SoakOptions options = MiniOptions();
  const std::string table = BuildOracle::TableName(0);
  auto db = ReplayDb(options, table);
  for (uint64_t b = 0; b < 3; ++b) {
    ASSERT_TRUE(
        db->ExecuteCommand(BuildOracle::BatchInsertSql(options, 0, b)).ok());
  }
  const std::string sql =
      stats::NlqUdfQuery(table, stats::DimensionColumns(options.dims),
                         stats::MatrixKind::kLowerTriangular,
                         stats::ParamStyle::kList);

  BuildOracle oracle(options);

  // Same statement against a table missing one batch: any lost or
  // extra row must flip some sufficient statistic, and the oracle
  // must notice.
  auto stale_db = ReplayDb(options, table);
  for (uint64_t b = 0; b < 2; ++b) {
    ASSERT_TRUE(
        stale_db->ExecuteCommand(BuildOracle::BatchInsertSql(options, 0, b))
            .ok());
  }
  auto stale = stale_db->Execute(sql);
  ASSERT_TRUE(stale.ok());
  EXPECT_FALSE(
      oracle.VerifyBuild(0, 3 * options.batch_rows, sql, *stale).ok());

  // A row count that is not a batch boundary is a torn append by
  // definition — rejected before any replay happens.
  auto fresh = db->Execute(sql);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(
      oracle.VerifyBuild(0, 3 * options.batch_rows + 1, sql, *fresh).ok());
}

TEST(SoakTest, ExpectBitIdenticalDistinguishesUlps) {
  SoakOptions options = MiniOptions();
  const std::string table = BuildOracle::TableName(1);
  auto db = ReplayDb(options, table);
  ASSERT_TRUE(
      db->ExecuteCommand(BuildOracle::BatchInsertSql(options, 1, 0)).ok());

  const std::string sum = "SELECT SUM(X1), SUM(X2) FROM " + table;
  auto a = db->Execute(sum);
  auto b = db->Execute(sum);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(ExpectBitIdentical(*a, *b).ok());

  // Same shape, different aggregate: must not compare equal.
  auto c = db->Execute("SELECT SUM(X1), SUM(X2 + 0.0000001) FROM " + table);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(ExpectBitIdentical(*a, *c).ok());
}

TEST(SoakTest, BatchInsertSqlIsDeterministic) {
  SoakOptions options = MiniOptions();
  EXPECT_EQ(BuildOracle::BatchInsertSql(options, 0, 7),
            BuildOracle::BatchInsertSql(options, 0, 7));
  EXPECT_NE(BuildOracle::BatchInsertSql(options, 0, 7),
            BuildOracle::BatchInsertSql(options, 0, 8));
  EXPECT_NE(BuildOracle::BatchInsertSql(options, 0, 7),
            BuildOracle::BatchInsertSql(options, 1, 7));
}

}  // namespace
}  // namespace nlq::soak
