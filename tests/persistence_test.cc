#include <gtest/gtest.h>

#include <cstdio>

#include "engine/persistence.h"
#include "gen/datagen.h"
#include "stats/describe.h"
#include "stats/miner.h"
#include "tests/test_util.h"

namespace nlq::engine {
namespace {

std::string SnapshotDir(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SchemaSerializationTest, RoundTrips) {
  const storage::Schema schema = storage::Schema::DataSet(3, true);
  NLQ_ASSERT_OK_AND_ASSIGN(storage::Schema back,
                           DeserializeSchema(SerializeSchema(schema)));
  EXPECT_TRUE(schema == back);
}

TEST(SchemaSerializationTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeSchema("").ok());
  EXPECT_FALSE(DeserializeSchema("noseparator").ok());
  EXPECT_FALSE(DeserializeSchema("a:FLOATY").ok());
  EXPECT_FALSE(DeserializeSchema(":DOUBLE").ok());
}

TEST(PersistenceTest, SaveLoadRoundTripPreservesData) {
  const std::string dir = SnapshotDir("snapshot_roundtrip");
  auto db = nlq::testing::MakeTestDatabase(/*num_partitions=*/3);
  gen::MixtureOptions options;
  options.n = 2000;
  options.d = 4;
  options.seed = 1234;
  NLQ_ASSERT_OK(gen::GenerateDataSetTable(db.get(), "X", options).status());
  NLQ_ASSERT_OK(db->ExecuteCommand(
      "CREATE TABLE META (k VARCHAR(16), v DOUBLE)"));
  NLQ_ASSERT_OK(db->ExecuteCommand(
      "INSERT INTO META VALUES ('version', 1), ('rows', 2000)"));

  NLQ_ASSERT_OK(SaveDatabase(*db, dir));

  // Reload into a fresh database with a DIFFERENT default partition
  // count; the manifest must win.
  auto db2 = nlq::testing::MakeTestDatabase(/*num_partitions=*/8);
  NLQ_ASSERT_OK(LoadDatabase(db2.get(), dir));

  NLQ_ASSERT_OK_AND_ASSIGN(double rows,
                           db2->QueryDouble("SELECT count(*) FROM X"));
  EXPECT_DOUBLE_EQ(rows, 2000.0);
  NLQ_ASSERT_OK_AND_ASSIGN(
      double version,
      db2->QueryDouble("SELECT v FROM META WHERE k = 'version'"));
  EXPECT_DOUBLE_EQ(version, 1.0);

  auto table = db2->catalog().GetTable("X");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_partitions(), 3u);

  // Statistics recomputed after reload match the original exactly
  // (same partitioning, same per-partition row order).
  stats::WarehouseMiner m1(db.get());
  stats::WarehouseMiner m2(db2.get());
  NLQ_ASSERT_OK_AND_ASSIGN(
      stats::SufStats s1,
      m1.ComputeSufStats("X", stats::DimensionColumns(4),
                         stats::MatrixKind::kFull,
                         stats::ComputeVia::kUdfList));
  NLQ_ASSERT_OK_AND_ASSIGN(
      stats::SufStats s2,
      m2.ComputeSufStats("X", stats::DimensionColumns(4),
                         stats::MatrixKind::kFull,
                         stats::ComputeVia::kUdfList));
  EXPECT_EQ(s1.MaxAbsDiff(s2), 0.0);
}

TEST(PersistenceTest, LoadReplacesExistingTable) {
  const std::string dir = SnapshotDir("snapshot_replace");
  auto db = nlq::testing::MakeTestDatabase();
  NLQ_ASSERT_OK(db->ExecuteCommand("CREATE TABLE T (v DOUBLE)"));
  NLQ_ASSERT_OK(db->ExecuteCommand("INSERT INTO T VALUES (1), (2)"));
  NLQ_ASSERT_OK(SaveDatabase(*db, dir));

  NLQ_ASSERT_OK(db->ExecuteCommand("INSERT INTO T VALUES (3)"));
  NLQ_ASSERT_OK_AND_ASSIGN(double before,
                           db->QueryDouble("SELECT count(*) FROM T"));
  EXPECT_DOUBLE_EQ(before, 3.0);

  NLQ_ASSERT_OK(LoadDatabase(db.get(), dir));
  NLQ_ASSERT_OK_AND_ASSIGN(double after,
                           db->QueryDouble("SELECT count(*) FROM T"));
  EXPECT_DOUBLE_EQ(after, 2.0);
}

TEST(PersistenceTest, MissingDirectoryFails) {
  auto db = nlq::testing::MakeTestDatabase();
  EXPECT_FALSE(LoadDatabase(db.get(), "/no/such/snapshot/dir").ok());
}

TEST(PersistenceTest, EmptyDatabaseRoundTrips) {
  const std::string dir = SnapshotDir("snapshot_empty");
  auto db = nlq::testing::MakeTestDatabase();
  NLQ_ASSERT_OK(SaveDatabase(*db, dir));
  auto db2 = nlq::testing::MakeTestDatabase();
  NLQ_ASSERT_OK(LoadDatabase(db2.get(), dir));
  EXPECT_TRUE(db2->catalog().TableNames().empty());
}

}  // namespace
}  // namespace nlq::engine

namespace nlq::stats {
namespace {

TEST(DescribeTest, MatchesHandComputation) {
  SufStats stats(2, MatrixKind::kDiagonal);
  stats.Update(std::vector<double>{1.0, 10.0});
  stats.Update(std::vector<double>{3.0, 20.0});
  NLQ_ASSERT_OK_AND_ASSIGN(std::vector<DimensionSummary> summary,
                           Describe(stats));
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_DOUBLE_EQ(summary[0].mean, 2.0);
  EXPECT_DOUBLE_EQ(summary[0].variance, 1.0);
  EXPECT_DOUBLE_EQ(summary[0].stddev, 1.0);
  EXPECT_DOUBLE_EQ(summary[0].min, 1.0);
  EXPECT_DOUBLE_EQ(summary[0].max, 3.0);
  EXPECT_DOUBLE_EQ(summary[1].mean, 15.0);
}

TEST(DescribeTest, RejectsEmptyStats) {
  SufStats stats(2, MatrixKind::kFull);
  EXPECT_FALSE(Describe(stats).ok());
  EXPECT_FALSE(DescribeTable(stats).ok());
}

TEST(DescribeTest, TableFormatting) {
  SufStats stats(1, MatrixKind::kDiagonal);
  stats.Update(std::vector<double>{5.0});
  NLQ_ASSERT_OK_AND_ASSIGN(std::string table,
                           DescribeTable(stats, {"spend"}));
  EXPECT_NE(table.find("spend"), std::string::npos);
  EXPECT_NE(table.find("n = 1"), std::string::npos);
  EXPECT_FALSE(DescribeTable(stats, {"a", "b"}).ok());
}

}  // namespace
}  // namespace nlq::stats
