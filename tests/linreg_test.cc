#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "stats/linreg.h"
#include "stats/sufstats.h"
#include "tests/test_util.h"

namespace nlq::stats {
namespace {

/// Builds SufStats over (x, y) points with y = b0 + b^T x + noise.
SufStats MakeRegressionStats(const linalg::Vector& beta, size_t n,
                             double noise, uint64_t seed,
                             linalg::Vector* out_x_sample = nullptr) {
  const size_t d = beta.size() - 1;
  Random rng(seed);
  SufStats stats(d + 1, MatrixKind::kLowerTriangular);
  std::vector<double> z(d + 1);
  for (size_t i = 0; i < n; ++i) {
    double y = beta[0];
    for (size_t a = 0; a < d; ++a) {
      z[a] = rng.NextUniform(-10, 10);
      y += beta[a + 1] * z[a];
    }
    z[d] = y + (noise > 0 ? rng.NextGaussian(0, noise) : 0.0);
    stats.Update(z);
    if (out_x_sample != nullptr && i == 0) {
      out_x_sample->assign(z.begin(), z.end() - 1);
    }
  }
  return stats;
}

TEST(LinRegTest, RecoversExactCoefficientsWithoutNoise) {
  const linalg::Vector truth{2.0, -1.5, 0.5, 3.0};
  const SufStats stats = MakeRegressionStats(truth, 500, 0.0, 7);
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel model,
                           FitLinearRegression(stats));
  ASSERT_EQ(model.beta.size(), 4u);
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(model.beta[i], truth[i], 1e-8);
  }
  EXPECT_NEAR(model.sse, 0.0, 1e-6);
  EXPECT_NEAR(model.r2, 1.0, 1e-9);
}

TEST(LinRegTest, ApproximatesUnderNoise) {
  const linalg::Vector truth{-1.0, 4.0, 2.0};
  const SufStats stats = MakeRegressionStats(truth, 20000, 1.0, 11);
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel model,
                           FitLinearRegression(stats));
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(model.beta[i], truth[i], 0.05);
  }
  EXPECT_GT(model.r2, 0.99);  // signal dominates sigma=1 noise
  EXPECT_LT(model.r2, 1.0);
}

TEST(LinRegTest, PredictMatchesEquation) {
  const linalg::Vector truth{1.0, 2.0, -3.0};
  const SufStats stats = MakeRegressionStats(truth, 200, 0.0, 13);
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel model,
                           FitLinearRegression(stats));
  const linalg::Vector x{0.5, -1.5};
  EXPECT_NEAR(model.Predict(x), 1.0 + 2.0 * 0.5 - 3.0 * -1.5, 1e-8);
}

TEST(LinRegTest, SseMatchesDirectResidualSum) {
  // Cross-check the algebraic SSE = Q_yy − βᵀb against an explicit
  // residual scan (the paper computes the latter with a second pass).
  const size_t d = 3, n = 1000;
  Random rng(17);
  std::vector<std::vector<double>> rows;
  SufStats stats(d + 1, MatrixKind::kLowerTriangular);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> z(d + 1);
    for (size_t a = 0; a < d; ++a) z[a] = rng.NextUniform(0, 5);
    z[d] = 2.0 + z[0] - 0.5 * z[1] + rng.NextGaussian(0, 2.0);
    stats.Update(z);
    rows.push_back(std::move(z));
  }
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel model,
                           FitLinearRegression(stats));
  double direct_sse = 0;
  for (const auto& z : rows) {
    const double yhat = model.Predict(z.data());
    direct_sse += (z[d] - yhat) * (z[d] - yhat);
  }
  EXPECT_NEAR(model.sse, direct_sse, 1e-6 * direct_sse);
}

TEST(LinRegTest, VarBetaShrinksWithN) {
  const linalg::Vector truth{0.0, 1.0};
  const SufStats small = MakeRegressionStats(truth, 100, 2.0, 19);
  const SufStats large = MakeRegressionStats(truth, 10000, 2.0, 19);
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel m_small,
                           FitLinearRegression(small));
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel m_large,
                           FitLinearRegression(large));
  EXPECT_GT(m_small.var_beta(1, 1), m_large.var_beta(1, 1));
  EXPECT_GT(m_small.var_beta(1, 1), 0.0);
}

TEST(LinRegTest, VarBetaIsSymmetric) {
  const SufStats stats =
      MakeRegressionStats(linalg::Vector{1, 2, 3}, 500, 1.0, 23);
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel model,
                           FitLinearRegression(stats));
  EXPECT_TRUE(model.var_beta.IsSymmetric(1e-9));
}

TEST(LinRegTest, RejectsDiagonalKind) {
  SufStats stats(3, MatrixKind::kDiagonal);
  EXPECT_FALSE(FitLinearRegression(stats).ok());
}

TEST(LinRegTest, RejectsTooFewRows) {
  SufStats stats(3, MatrixKind::kLowerTriangular);  // d=2 predictors + y
  stats.Update(std::vector<double>{1, 2, 3});
  stats.Update(std::vector<double>{2, 3, 4});
  EXPECT_FALSE(FitLinearRegression(stats).ok());
}

TEST(LinRegTest, RejectsSingleColumn) {
  SufStats stats(1, MatrixKind::kFull);
  EXPECT_FALSE(FitLinearRegression(stats).ok());
}

TEST(LinRegTest, CollinearPredictorsHandled) {
  // X2 = 2 * X1 makes the normal equations singular: either the fit
  // is rejected, or (if floating-point round-off leaves a tiny pivot)
  // the returned solution must still reproduce y = x1 + 1 on the data,
  // since every solution of a consistent singular system predicts
  // identically on the training span.
  SufStats stats(3, MatrixKind::kLowerTriangular);
  Random rng(29);
  std::vector<double> sample{0.4, 0.8, 1.4};
  for (int i = 0; i < 100; ++i) {
    const double x = rng.NextUniform(0, 1);
    stats.Update(std::vector<double>{x, 2 * x, x + 1});
  }
  auto model = FitLinearRegression(stats);
  if (model.ok()) {
    EXPECT_NEAR(model->Predict(sample.data()), 1.4, 1e-4);
  }
}

class LinRegDimsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LinRegDimsTest, RecoversAcrossDimensionalities) {
  const size_t d = GetParam();
  Random rng(100 + d);
  linalg::Vector truth(d + 1);
  for (auto& b : truth) b = rng.NextUniform(-3, 3);
  const SufStats stats = MakeRegressionStats(truth, 50 * d + 200, 0.0, 31 + d);
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel model,
                           FitLinearRegression(stats));
  for (size_t i = 0; i <= d; ++i) {
    EXPECT_NEAR(model.beta[i], truth[i], 1e-6) << "coef " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, LinRegDimsTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));


TEST(LinRegTest, TStatisticsFlagInformativePredictors) {
  // Y = 1 + 5*X1 + 0*X2 + noise: X1 highly significant, X2 not.
  Random rng(71);
  SufStats stats(3, MatrixKind::kLowerTriangular);
  std::vector<double> z(3);
  for (int i = 0; i < 5000; ++i) {
    z[0] = rng.NextUniform(-5, 5);
    z[1] = rng.NextUniform(-5, 5);
    z[2] = 1.0 + 5.0 * z[0] + rng.NextGaussian(0, 1.0);
    stats.Update(z);
  }
  NLQ_ASSERT_OK_AND_ASSIGN(LinearRegressionModel model,
                           FitLinearRegression(stats));
  EXPECT_GT(std::fabs(model.TStatistic(1)), 50.0);   // X1 coefficient
  EXPECT_LT(std::fabs(model.TStatistic(2)), 4.0);    // X2 coefficient
  EXPECT_GT(model.StdError(1), 0.0);
}

}  // namespace
}  // namespace nlq::stats
