// Property test for the batched operator pipeline: the paper's three
// ways of computing the sufficient statistics n, L, Q — the long SQL
// query of Section 3.4, the aggregate UDF, and the external C++
// reference — must agree on the same data set at every partition
// count (partitioning changes the batch/merge structure but never the
// sums).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/database.h"
#include "stats/sqlgen.h"
#include "stats/sufstats.h"
#include "tests/test_util.h"

namespace nlq::stats {
namespace {

constexpr size_t kDims = 3;
constexpr size_t kRows = 1100;  // crosses the 1024-row batch boundary

/// Deterministic but irregular points (no RNG in tests).
std::vector<std::vector<double>> MakePoints() {
  std::vector<std::vector<double>> points(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    auto& p = points[i];
    p.resize(kDims);
    const double x = static_cast<double>(i);
    p[0] = std::sin(x * 0.7) * 10.0;
    p[1] = std::fmod(x * 1.3, 17.0) - 8.0;
    p[2] = (i % 5 == 0 ? -1.0 : 1.0) * (x * 0.01 + 2.0);
  }
  return points;
}

class ExecEquivalenceTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    db_ = nlq::testing::MakeTestDatabase(/*num_partitions=*/GetParam());
    NLQ_ASSERT_OK(db_->ExecuteCommand(
        "CREATE TABLE X (X1 DOUBLE, X2 DOUBLE, X3 DOUBLE)"));
    points_ = MakePoints();
    auto table = db_->catalog().GetTable("X");
    NLQ_ASSERT_OK(table.status());
    for (const auto& p : points_) {
      NLQ_ASSERT_OK(table.value()->AppendRow({storage::Datum::Double(p[0]),
                                              storage::Datum::Double(p[1]),
                                              storage::Datum::Double(p[2])}));
    }
  }

  SufStats SqlStats(MatrixKind kind) {
    const std::string sql = NlqSqlQuery("X", DimensionColumns(kDims), kind);
    auto result = db_->Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    auto stats = SufStatsFromWideRow(*result, 0, kDims, kind);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return stats.ok() ? std::move(stats.value()) : SufStats();
  }

  SufStats UdfStats(MatrixKind kind, ParamStyle style) {
    const std::string sql =
        NlqUdfQuery("X", DimensionColumns(kDims), kind, style);
    auto result = db_->Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    auto stats = SufStatsFromUdfResult(*result);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return stats.ok() ? std::move(stats.value()) : SufStats();
  }

  std::unique_ptr<engine::Database> db_;
  std::vector<std::vector<double>> points_;
};

TEST_P(ExecEquivalenceTest, SqlUdfAndExternalAgreeOnNLQ) {
  for (const MatrixKind kind :
       {MatrixKind::kDiagonal, MatrixKind::kLowerTriangular,
        MatrixKind::kFull}) {
    const SufStats reference = nlq::testing::ReferenceStats(points_, kind);
    const SufStats sql = SqlStats(kind);
    const SufStats udf_list = UdfStats(kind, ParamStyle::kList);
    const SufStats udf_string = UdfStats(kind, ParamStyle::kString);

    EXPECT_EQ(sql.n(), reference.n());
    // Partitioned + batched summation reorders floating-point adds;
    // allow a tiny relative slack against the sequential reference.
    EXPECT_LT(sql.MaxAbsDiff(reference), 1e-6) << MatrixKindName(kind);
    EXPECT_LT(udf_list.MaxAbsDiff(reference), 1e-6) << MatrixKindName(kind);
    EXPECT_LT(udf_string.MaxAbsDiff(reference), 1e-6) << MatrixKindName(kind);
    EXPECT_LT(sql.MaxAbsDiff(udf_list), 1e-6) << MatrixKindName(kind);
  }
}

TEST_P(ExecEquivalenceTest, GroupedSqlAndUdfAgreePerGroup) {
  const MatrixKind kind = MatrixKind::kLowerTriangular;
  const std::string group_expr = "CASE WHEN X3 > 0 THEN 1 ELSE 0 END";
  // Both generators already append ORDER BY 1 on the group key.
  auto sql_result = db_->Execute(
      NlqSqlQueryGrouped("X", DimensionColumns(kDims), kind, group_expr));
  NLQ_ASSERT_OK(sql_result.status());
  auto udf_result = db_->Execute(NlqUdfQueryGrouped(
      "X", DimensionColumns(kDims), kind, ParamStyle::kList, group_expr));
  NLQ_ASSERT_OK(udf_result.status());
  ASSERT_EQ(sql_result->num_rows(), 2u);
  ASSERT_EQ(udf_result->num_rows(), 2u);

  for (size_t g = 0; g < 2; ++g) {
    auto sql_stats =
        SufStatsFromWideRow(*sql_result, g, kDims, kind, /*first_col=*/1);
    NLQ_ASSERT_OK(sql_stats.status());
    auto udf_stats = SufStatsFromUdfResult(*udf_result, g, /*col=*/1);
    NLQ_ASSERT_OK(udf_stats.status());

    // External reference for this group.
    std::vector<std::vector<double>> group_points;
    for (const auto& p : points_) {
      if ((p[2] > 0 ? 1 : 0) == static_cast<int>(g)) {
        group_points.push_back(p);
      }
    }
    const SufStats reference =
        nlq::testing::ReferenceStats(group_points, kind);
    EXPECT_LT(sql_stats->MaxAbsDiff(reference), 1e-6) << "group " << g;
    EXPECT_LT(udf_stats->MaxAbsDiff(reference), 1e-6) << "group " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, ExecEquivalenceTest,
                         ::testing::Values(1, 2, 4, 7),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "p" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace nlq::stats
