// Robustness: the server must survive arbitrary garbage on the wire —
// random truncation, lying length fields, unknown opcodes, malformed
// bodies, interleaved cancels — always replying with a clean error or
// closing the connection, never crashing or hanging, and the server
// must stay fully functional for well-behaved clients afterwards.
// Mirrors parser_fuzz_test.cc one layer down the stack.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "tests/test_util.h"

namespace nlq::server {
namespace {

using ::nlq::testing::MakeTestDatabase;

class ServerFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase();
    NLQ_ASSERT_OK(db_->ExecuteCommand("CREATE TABLE t (i BIGINT, x DOUBLE)"));
  NLQ_ASSERT_OK(db_->ExecuteCommand(
      "INSERT INTO t VALUES (1, 1.5), (2, 2.5)"));
    ServerOptions options;
    options.port = 0;
    // Tight I/O timeouts keep truncation trials fast: a half-sent
    // frame must fail the read within this bound, not hang.
    options.io_timeout_ms = 200;
    options.idle_timeout_ms = 500;
    options.max_frame_bytes = 1 << 20;
    server_ = std::make_unique<Server>(db_.get(), options);
    NLQ_ASSERT_OK(server_->Start());
  }

  int RawConnect() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return fd;
  }

  /// Drains whatever the server sends until it closes or stops
  /// talking; the assertion is only that this returns (no hang).
  void DrainUntilClosed(int fd) {
    char buf[4096];
    for (int i = 0; i < 100; ++i) {
      struct pollfd pfd = {fd, POLLIN, 0};
      int rc = ::poll(&pfd, 1, 2000);
      if (rc <= 0) break;  // silent server: it chose to wait us out
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) break;  // closed — the expected outcome
    }
    ::close(fd);
  }

  /// The liveness oracle: a well-behaved client still gets served.
  void ExpectServerHealthy() {
    NlqClient client;
    NLQ_ASSERT_OK(client.Connect("127.0.0.1", server_->port()));
    NLQ_ASSERT_OK_AND_ASSIGN(engine::ResultSet rs,
                             client.Query("SELECT COUNT(*) FROM t"));
    EXPECT_EQ(rs.GetDouble(0, 0), 2.0);
    client.Goodbye();
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<Server> server_;
};

void SendAll(int fd, const std::vector<uint8_t>& bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + done, bytes.size() - done,
                       MSG_NOSIGNAL);
    if (n <= 0) return;  // server already closed on us — fine
    done += static_cast<size_t>(n);
  }
}

std::vector<uint8_t> Frame(uint8_t opcode,
                           const std::vector<uint8_t>& body) {
  std::vector<uint8_t> frame;
  const uint32_t len = static_cast<uint32_t>(body.size() + 1);
  frame.push_back(static_cast<uint8_t>(len));
  frame.push_back(static_cast<uint8_t>(len >> 8));
  frame.push_back(static_cast<uint8_t>(len >> 16));
  frame.push_back(static_cast<uint8_t>(len >> 24));
  frame.push_back(opcode);
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

std::vector<uint8_t> HelloFrame() {
  WireWriter hello;
  hello.PutU32(kProtocolVersion);
  return Frame(0x01, hello.buffer());
}

TEST_F(ServerFuzzTest, RandomGarbageBytesNeverCrash) {
  Random rng(20260809);
  for (int trial = 0; trial < 60; ++trial) {
    int fd = RawConnect();
    std::vector<uint8_t> garbage(rng.NextUint64(256));
    for (auto& b : garbage) {
      b = static_cast<uint8_t>(rng.NextUint64(256));
    }
    SendAll(fd, garbage);
    DrainUntilClosed(fd);
  }
  ExpectServerHealthy();
}

TEST_F(ServerFuzzTest, LyingLengthFieldsAreRejected) {
  Random rng(99);
  // Oversized announcements, zero-length frames, and maximal lengths
  // with tiny bodies.
  const uint32_t lengths[] = {0, 0xffffffffu, (1u << 20) + 1, 0x80000000u};
  for (uint32_t len : lengths) {
    int fd = RawConnect();
    std::vector<uint8_t> frame = {
        static_cast<uint8_t>(len), static_cast<uint8_t>(len >> 8),
        static_cast<uint8_t>(len >> 16), static_cast<uint8_t>(len >> 24)};
    // A few garbage bytes that are far fewer than announced.
    for (int i = 0; i < 8; ++i) {
      frame.push_back(static_cast<uint8_t>(rng.NextUint64(256)));
    }
    SendAll(fd, frame);
    DrainUntilClosed(fd);
  }
  ExpectServerHealthy();
}

TEST_F(ServerFuzzTest, TruncatedFramesTimeOutCleanly) {
  Random rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    int fd = RawConnect();
    // A legitimate hello followed by a query frame cut off mid-body.
    SendAll(fd, HelloFrame());
    WireWriter q;
    q.PutString("SELECT COUNT(*) FROM t");
    std::vector<uint8_t> frame = Frame(0x02, q.buffer());
    const size_t keep = 5 + rng.NextUint64(frame.size() - 5);
    frame.resize(keep);
    SendAll(fd, frame);
    // Half a frame then silence: the server's io timeout must close
    // us, not leak the session thread.
    DrainUntilClosed(fd);
  }
  ExpectServerHealthy();
}

TEST_F(ServerFuzzTest, GarbageOpcodesGetErrorReply) {
  Random rng(1234);
  for (int trial = 0; trial < 40; ++trial) {
    int fd = RawConnect();
    SendAll(fd, HelloFrame());
    const uint8_t opcode = static_cast<uint8_t>(rng.NextUint64(256));
    std::vector<uint8_t> body(rng.NextUint64(32));
    for (auto& b : body) b = static_cast<uint8_t>(rng.NextUint64(256));
    SendAll(fd, Frame(opcode, body));
    DrainUntilClosed(fd);
  }
  ExpectServerHealthy();
}

TEST_F(ServerFuzzTest, MalformedBodiesOnValidOpcodes) {
  Random rng(5555);
  // Valid opcodes, bodies of random bytes — string lengths lie, ids
  // truncate, trailing garbage appears.
  const uint8_t opcodes[] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07};
  for (int trial = 0; trial < 80; ++trial) {
    int fd = RawConnect();
    SendAll(fd, HelloFrame());
    const uint8_t opcode =
        opcodes[rng.NextUint64(std::size(opcodes))];
    std::vector<uint8_t> body(rng.NextUint64(40));
    for (auto& b : body) b = static_cast<uint8_t>(rng.NextUint64(256));
    SendAll(fd, Frame(opcode, body));
    DrainUntilClosed(fd);
  }
  ExpectServerHealthy();
}

TEST_F(ServerFuzzTest, InterleavedCancelsAndQueriesSurvive) {
  Random rng(31337);
  // A storm of sessions firing queries and cancels at each other —
  // including cancels aimed at random session ids — must leave the
  // server consistent.
  std::vector<std::unique_ptr<NlqClient>> clients;
  for (int i = 0; i < 6; ++i) {
    auto client = std::make_unique<NlqClient>();
    NLQ_ASSERT_OK(client->Connect("127.0.0.1", server_->port()));
    clients.push_back(std::move(client));
  }
  for (int round = 0; round < 60; ++round) {
    NlqClient& actor = *clients[rng.NextUint64(clients.size())];
    if (!actor.connected()) continue;
    switch (rng.NextUint64(4)) {
      case 0: {
        auto ignored = actor.Query("SELECT SUM(x) FROM t");
        break;
      }
      case 1: {
        // Cancel a random peer (or a bogus id — NotFound is fine).
        const uint64_t target =
            rng.NextUint64(2) == 0
                ? clients[rng.NextUint64(clients.size())]->session_id()
                : 1000000 + rng.NextUint64(100);
        auto ignored = actor.Cancel(target);
        break;
      }
      case 2: {
        auto ignored = actor.Query("SELECT COUNT(*) FROM t");
        break;
      }
      case 3: {
        auto ignored = actor.Ping();
        break;
      }
    }
  }
  // Cancels may have poisoned some sessions' next statements
  // (pending_cancel) — that is contract, not damage. A fresh client
  // must be fully served.
  ExpectServerHealthy();
}

}  // namespace
}  // namespace nlq::server
