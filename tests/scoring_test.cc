#include <gtest/gtest.h>

#include <cmath>

#include "engine/database.h"
#include "gen/datagen.h"
#include "stats/miner.h"
#include "stats/model_tables.h"
#include "stats/scoring.h"
#include "tests/test_util.h"

namespace nlq::stats {
namespace {

using storage::DataType;
using storage::Datum;

// ---------------------------------------------------------------------------
// Direct scalar-UDF invocation
// ---------------------------------------------------------------------------

class ScalarUdfDirectTest : public ::testing::Test {
 protected:
  void SetUp() override { NLQ_ASSERT_OK(RegisterScoringUdfs(&registry_)); }

  StatusOr<Datum> Call(const std::string& name, std::vector<double> args) {
    const udf::ScalarUdf* fn = registry_.FindScalar(name);
    EXPECT_NE(fn, nullptr);
    std::vector<Datum> datums;
    for (double v : args) datums.push_back(Datum::Double(v));
    NLQ_RETURN_IF_ERROR(fn->CheckArity(datums.size()));
    return fn->Invoke(datums);
  }

  udf::UdfRegistry registry_;
};

TEST_F(ScalarUdfDirectTest, LinearRegScoreDotProduct) {
  // d=2: x = (3, 4), b0 = 1, b = (2, -1) -> 1 + 6 - 4 = 3.
  NLQ_ASSERT_OK_AND_ASSIGN(Datum v,
                           Call("linearregscore", {3, 4, 1, 2, -1}));
  EXPECT_DOUBLE_EQ(v.double_value(), 3.0);
}

TEST_F(ScalarUdfDirectTest, LinearRegScoreArity) {
  EXPECT_FALSE(Call("linearregscore", {1, 2}).ok());
  EXPECT_FALSE(Call("linearregscore", {1, 2, 3, 4}).ok());
}

TEST_F(ScalarUdfDirectTest, FaScoreCentersAndProjects) {
  // d=2: x=(5, 7), mu=(1, 2), lambda=(0.5, -1) -> 4*0.5 + 5*(-1) = -3.
  NLQ_ASSERT_OK_AND_ASSIGN(Datum v, Call("fascore", {5, 7, 1, 2, 0.5, -1}));
  EXPECT_DOUBLE_EQ(v.double_value(), -3.0);
}

TEST_F(ScalarUdfDirectTest, FaScoreArity) {
  EXPECT_FALSE(Call("fascore", {1, 2, 3, 4}).ok());
}

TEST_F(ScalarUdfDirectTest, KMeansDistanceSquaredEuclidean) {
  NLQ_ASSERT_OK_AND_ASSIGN(Datum v, Call("kmeansdistance", {0, 0, 3, 4}));
  EXPECT_DOUBLE_EQ(v.double_value(), 25.0);
}

TEST_F(ScalarUdfDirectTest, ClusterScorePicksMinimumOneBased) {
  NLQ_ASSERT_OK_AND_ASSIGN(Datum v, Call("clusterscore", {9, 2, 5}));
  EXPECT_EQ(v.int_value(), 2);
  NLQ_ASSERT_OK_AND_ASSIGN(Datum first, Call("clusterscore", {1, 1, 1}));
  EXPECT_EQ(first.int_value(), 1);  // ties break to the lowest j
}

TEST_F(ScalarUdfDirectTest, ClusterScoreAllNullGivesNull) {
  const udf::ScalarUdf* fn = registry_.FindScalar("clusterscore");
  std::vector<Datum> args{Datum::Null(DataType::kDouble),
                          Datum::Null(DataType::kDouble)};
  NLQ_ASSERT_OK_AND_ASSIGN(Datum v, fn->Invoke(args));
  EXPECT_TRUE(v.is_null());
}

TEST_F(ScalarUdfDirectTest, PackPointFormat) {
  NLQ_ASSERT_OK_AND_ASSIGN(Datum v, Call("pack_point", {1.5, -2, 3}));
  EXPECT_EQ(v.string_value(), "1.5;-2;3");
}

// ---------------------------------------------------------------------------
// End-to-end scoring through the engine (SQL vs UDF vs direct model)
// ---------------------------------------------------------------------------

class ScoringPipelineTest : public ::testing::Test {
 protected:
  static constexpr size_t kD = 4;
  static constexpr size_t kK = 3;

  void SetUp() override {
    db_ = nlq::testing::MakeTestDatabase();
    miner_ = std::make_unique<WarehouseMiner>(db_.get());
    gen::MixtureOptions options;
    options.n = 500;
    options.d = kD;
    options.num_clusters = kK;
    options.noise_fraction = 0.05;
    options.seed = 321;
    options.with_y = true;
    NLQ_ASSERT_OK(gen::GenerateDataSetTable(db_.get(), "X", options).status());
  }

  /// Reads a scored table into id -> value maps for comparison.
  std::map<int64_t, std::vector<double>> ReadScores(const std::string& table) {
    auto result = db_->Execute("SELECT * FROM " + table + " ORDER BY i");
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::map<int64_t, std::vector<double>> scores;
    for (size_t r = 0; r < result->num_rows(); ++r) {
      std::vector<double> values;
      for (size_t c = 1; c < result->num_columns(); ++c) {
        values.push_back(result->GetDouble(r, c));
      }
      scores[static_cast<int64_t>(result->GetDouble(r, 0))] =
          std::move(values);
    }
    return scores;
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<WarehouseMiner> miner_;
};

TEST_F(ScoringPipelineTest, LinRegSqlAndUdfAgreeWithModel) {
  NLQ_ASSERT_OK_AND_ASSIGN(
      LinearRegressionModel model,
      miner_->BuildLinearRegression("X", DimensionColumns(kD), "Y",
                                    ComputeVia::kUdfList));
  NLQ_ASSERT_OK(
      miner_->ScoreLinearRegression("X", model, "SC_UDF", /*use_udf=*/true));
  NLQ_ASSERT_OK(
      miner_->ScoreLinearRegression("X", model, "SC_SQL", /*use_udf=*/false));
  auto udf_scores = ReadScores("SC_UDF");
  auto sql_scores = ReadScores("SC_SQL");
  ASSERT_EQ(udf_scores.size(), 500u);
  ASSERT_EQ(sql_scores.size(), 500u);

  // Both agree with each other and with direct model prediction.
  auto x_rows = db_->Execute("SELECT * FROM X ORDER BY i");
  ASSERT_TRUE(x_rows.ok());
  for (size_t r = 0; r < x_rows->num_rows(); ++r) {
    const int64_t id = x_rows->At(r, 0).int_value();
    std::vector<double> x(kD);
    for (size_t a = 0; a < kD; ++a) x[a] = x_rows->GetDouble(r, a + 1);
    const double expect = model.Predict(x.data());
    EXPECT_NEAR(udf_scores[id][0], expect, 1e-9);
    EXPECT_NEAR(sql_scores[id][0], expect, 1e-9);
  }
}

TEST_F(ScoringPipelineTest, PcaSqlAndUdfAgreeWithModel) {
  NLQ_ASSERT_OK_AND_ASSIGN(
      PcaModel model, miner_->BuildPca("X", kD, 2, ComputeVia::kUdfList));
  NLQ_ASSERT_OK(miner_->ScorePca("X", model, "PC_UDF", /*use_udf=*/true));
  NLQ_ASSERT_OK(miner_->ScorePca("X", model, "PC_SQL", /*use_udf=*/false));
  auto udf_scores = ReadScores("PC_UDF");
  auto sql_scores = ReadScores("PC_SQL");
  ASSERT_EQ(udf_scores.size(), 500u);

  auto x_rows = db_->Execute("SELECT * FROM X ORDER BY i");
  ASSERT_TRUE(x_rows.ok());
  for (size_t r = 0; r < x_rows->num_rows(); ++r) {
    const int64_t id = x_rows->At(r, 0).int_value();
    std::vector<double> x(kD);
    for (size_t a = 0; a < kD; ++a) x[a] = x_rows->GetDouble(r, a + 1);
    const linalg::Vector expect = model.Score(x.data());
    ASSERT_EQ(udf_scores[id].size(), 2u);
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(udf_scores[id][j], expect[j], 1e-6);
      EXPECT_NEAR(sql_scores[id][j], expect[j], 1e-6);
    }
  }
}

TEST_F(ScoringPipelineTest, KMeansSqlAndUdfAgreeWithModel) {
  KMeansOptions options;
  options.k = kK;
  options.max_iterations = 5;
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel model,
                           miner_->BuildKMeansInDbms("X", kD, options));
  NLQ_ASSERT_OK(miner_->ScoreKMeans("X", model, "KM_UDF", /*use_udf=*/true));
  NLQ_ASSERT_OK(miner_->ScoreKMeans("X", model, "KM_SQL", /*use_udf=*/false));
  auto udf_scores = ReadScores("KM_UDF");
  auto sql_scores = ReadScores("KM_SQL");
  ASSERT_EQ(udf_scores.size(), 500u);
  ASSERT_EQ(sql_scores.size(), 500u);

  auto x_rows = db_->Execute("SELECT * FROM X ORDER BY i");
  ASSERT_TRUE(x_rows.ok());
  for (size_t r = 0; r < x_rows->num_rows(); ++r) {
    const int64_t id = x_rows->At(r, 0).int_value();
    std::vector<double> x(kD);
    for (size_t a = 0; a < kD; ++a) x[a] = x_rows->GetDouble(r, a + 1);
    const int64_t expect =
        static_cast<int64_t>(model.NearestCentroid(x.data())) + 1;
    EXPECT_EQ(static_cast<int64_t>(udf_scores[id][0]), expect);
    EXPECT_EQ(static_cast<int64_t>(sql_scores[id][0]), expect);
  }
}

// ---------------------------------------------------------------------------
// Model tables
// ---------------------------------------------------------------------------

TEST_F(ScoringPipelineTest, BetaTableRoundTrip) {
  NLQ_ASSERT_OK_AND_ASSIGN(
      LinearRegressionModel model,
      miner_->BuildLinearRegression("X", DimensionColumns(kD), "Y",
                                    ComputeVia::kSql));
  NLQ_ASSERT_OK(StoreBetaTable(db_.get(), "B", model));
  NLQ_ASSERT_OK_AND_ASSIGN(linalg::Vector beta, LoadBetaTable(db_.get(), "B"));
  ASSERT_EQ(beta.size(), model.beta.size());
  for (size_t i = 0; i < beta.size(); ++i) {
    EXPECT_EQ(beta[i], model.beta[i]);  // exact text round trip
  }
  // Re-storing replaces the table.
  NLQ_ASSERT_OK(StoreBetaTable(db_.get(), "B", model));
}

TEST_F(ScoringPipelineTest, ClusterTablesRoundTrip) {
  KMeansOptions options;
  options.k = kK;
  options.max_iterations = 3;
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel model,
                           miner_->BuildKMeansInDbms("X", kD, options));
  NLQ_ASSERT_OK(StoreClusterTables(db_.get(), "TC", "TR", "TW", model));
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel loaded,
                           LoadClusterTables(db_.get(), "TC", "TR", "TW"));
  EXPECT_EQ(loaded.k, model.k);
  EXPECT_EQ(loaded.d, model.d);
  EXPECT_EQ(loaded.centroids.MaxAbsDiff(model.centroids), 0.0);
  EXPECT_EQ(loaded.radii.MaxAbsDiff(model.radii), 0.0);
}

TEST_F(ScoringPipelineTest, GeneratedSqlTextLooksRight) {
  const std::string sql = LinRegScoreSqlQuery("X", "BETA", 2);
  EXPECT_NE(sql.find("b0 + b1 * X1 + b2 * X2"), std::string::npos);
  const std::string udf = KMeansScoreUdfQuery("X", "C", 2, 2);
  EXPECT_NE(udf.find("clusterscore("), std::string::npos);
  EXPECT_NE(udf.find("C1.j = 1 AND C2.j = 2"), std::string::npos);
  const std::string assign = KMeansAssignSqlQuery("D", 3);
  EXPECT_NE(assign.find("CASE"), std::string::npos);
  EXPECT_NE(assign.find("ELSE 3 END"), std::string::npos);
}

}  // namespace
}  // namespace nlq::stats
