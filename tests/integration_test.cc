#include <gtest/gtest.h>

#include <cstdio>

#include "connect/extern_analyzer.h"
#include "connect/odbc_sim.h"
#include "engine/database.h"
#include "gen/datagen.h"
#include "stats/miner.h"
#include "stats/model_tables.h"
#include "tests/test_util.h"

namespace nlq {
namespace {

using stats::ComputeVia;
using stats::DimensionColumns;
using stats::MatrixKind;

/// Full reproduction of the paper's workflow on one synthetic data
/// set: compute summary matrices via every implementation alternative
/// (SQL, UDF list, UDF string, external C++ over an ODBC export),
/// build all four statistical models from the summary matrices alone,
/// score the data set inside the DBMS, and cross-check everything.
class PipelineIntegrationTest : public ::testing::Test {
 protected:
  static constexpr size_t kD = 8;
  static constexpr size_t kK = 4;
  static constexpr uint64_t kN = 4000;

  void SetUp() override {
    db_ = testing::MakeTestDatabase(/*num_partitions=*/8);
    miner_ = std::make_unique<stats::WarehouseMiner>(db_.get());
    gen::MixtureOptions options;
    options.n = kN;
    options.d = kD;
    options.num_clusters = kK;
    options.noise_fraction = 0.10;
    options.with_y = true;
    options.seed = 20070611;  // SIGMOD 2007
    NLQ_ASSERT_OK(gen::GenerateDataSetTable(db_.get(), "X", options).status());
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<stats::WarehouseMiner> miner_;
};

TEST_F(PipelineIntegrationTest, AllFourImplementationsProduceSameResults) {
  NLQ_ASSERT_OK_AND_ASSIGN(
      stats::SufStats sql,
      miner_->ComputeSufStats("X", DimensionColumns(kD), MatrixKind::kFull,
                              ComputeVia::kSql));
  NLQ_ASSERT_OK_AND_ASSIGN(
      stats::SufStats udf,
      miner_->ComputeSufStats("X", DimensionColumns(kD), MatrixKind::kFull,
                              ComputeVia::kUdfList));

  // External path: export over simulated ODBC, analyze the flat file
  // with the single-threaded workstation program.
  const std::string path = ::testing::TempDir() + "/integration_export.csv";
  connect::OdbcExporter exporter;
  auto table = db_->catalog().GetTable("X");
  ASSERT_TRUE(table.ok());
  NLQ_ASSERT_OK_AND_ASSIGN(connect::OdbcExportResult export_result,
                           exporter.ExportTable(**table, path));
  EXPECT_EQ(export_result.rows, kN);
  connect::ExternalAnalyzerOptions ext_options;
  ext_options.kind = MatrixKind::kFull;
  NLQ_ASSERT_OK_AND_ASSIGN(stats::SufStats external,
                           connect::AnalyzeFlatFile(path, kD, ext_options));
  std::remove(path.c_str());

  EXPECT_EQ(sql.n(), static_cast<double>(kN));
  EXPECT_LT(sql.MaxAbsDiff(udf), 1e-4);
  // Values round-trip through text exactly; only summation order
  // differs between the parallel scan and the sequential file scan.
  EXPECT_LT(udf.MaxAbsDiff(external), 1e-4);
}

TEST_F(PipelineIntegrationTest, ModelsFromSummaryMatricesOnly) {
  // One UDF scan; then every model is built without touching X again.
  NLQ_ASSERT_OK_AND_ASSIGN(
      stats::SufStats stats,
      miner_->ComputeSufStats("X", DimensionColumns(kD),
                              MatrixKind::kLowerTriangular,
                              ComputeVia::kUdfList));

  NLQ_ASSERT_OK_AND_ASSIGN(linalg::Matrix rho, stats.CorrelationMatrix());
  EXPECT_TRUE(rho.IsSymmetric(1e-9));

  NLQ_ASSERT_OK_AND_ASSIGN(stats::PcaModel pca, stats::FitPca(stats, 3));
  EXPECT_GT(pca.ExplainedVarianceRatio(), 0.2);

  NLQ_ASSERT_OK_AND_ASSIGN(stats::FactorAnalysisModel fa,
                           stats::FitFactorAnalysis(stats, 3));
  for (double u : fa.uniquenesses) EXPECT_GE(u, 0.0);

  // Regression needs (x, y) statistics.
  std::vector<std::string> cols = DimensionColumns(kD);
  cols.push_back("Y");
  NLQ_ASSERT_OK_AND_ASSIGN(
      stats::SufStats reg_stats,
      miner_->ComputeSufStats("X", cols, MatrixKind::kLowerTriangular,
                              ComputeVia::kUdfList));
  NLQ_ASSERT_OK_AND_ASSIGN(stats::LinearRegressionModel reg,
                           stats::FitLinearRegression(reg_stats));
  EXPECT_GT(reg.r2, 0.9);
}

TEST_F(PipelineIntegrationTest, TrainScoreEvaluateRegression) {
  // Train on X, score a fresh test set generated with the same
  // distribution but a different seed (the paper's train/test usage).
  gen::MixtureOptions test_options;
  test_options.n = 1000;
  test_options.d = kD;
  test_options.num_clusters = kK;
  test_options.with_y = true;
  test_options.structure_seed = 20070611;  // same ground-truth beta
  test_options.seed = 20070612;            // fresh point stream
  NLQ_ASSERT_OK(
      gen::GenerateDataSetTable(db_.get(), "XTEST", test_options).status());

  NLQ_ASSERT_OK_AND_ASSIGN(
      stats::LinearRegressionModel model,
      miner_->BuildLinearRegression("X", DimensionColumns(kD), "Y",
                                    ComputeVia::kUdfList));
  NLQ_ASSERT_OK(miner_->ScoreLinearRegression("XTEST", model, "XTEST_SCORED",
                                              /*use_udf=*/true));

  // Compute out-of-sample R^2 inside the DBMS with plain SQL over the
  // joined actual/predicted values.
  NLQ_ASSERT_OK(db_->ExecuteCommand(
      "CREATE TABLE EVAL AS SELECT XTEST.i AS i, Y, yhat "
      "FROM XTEST, XTEST_SCORED WHERE XTEST.i = XTEST_SCORED.i"));
  NLQ_ASSERT_OK_AND_ASSIGN(double n_eval,
                           db_->QueryDouble("SELECT count(*) FROM EVAL"));
  EXPECT_DOUBLE_EQ(n_eval, 1000.0);
  NLQ_ASSERT_OK_AND_ASSIGN(
      double sse,
      db_->QueryDouble("SELECT sum((Y - yhat) * (Y - yhat)) FROM EVAL"));
  NLQ_ASSERT_OK_AND_ASSIGN(
      double sst, db_->QueryDouble(
                      "SELECT sum(Y * Y) - sum(Y) * sum(Y) / count(*) "
                      "FROM EVAL"));
  const double r2 = 1.0 - sse / sst;
  EXPECT_GT(r2, 0.9);
}

TEST_F(PipelineIntegrationTest, ClusteringPipelineEndToEnd) {
  stats::KMeansOptions options;
  options.k = kK;
  options.max_iterations = 8;
  NLQ_ASSERT_OK_AND_ASSIGN(stats::KMeansModel model,
                           miner_->BuildKMeansInDbms("X", kD, options));
  NLQ_ASSERT_OK(miner_->ScoreKMeans("X", model, "XC", /*use_udf=*/true));

  // Scored assignments cover 1..k and every row.
  NLQ_ASSERT_OK_AND_ASSIGN(double scored,
                           db_->QueryDouble("SELECT count(*) FROM XC"));
  EXPECT_DOUBLE_EQ(scored, static_cast<double>(kN));
  NLQ_ASSERT_OK_AND_ASSIGN(
      double min_j, db_->QueryDouble("SELECT min(j) FROM XC"));
  NLQ_ASSERT_OK_AND_ASSIGN(
      double max_j, db_->QueryDouble("SELECT max(j) FROM XC"));
  EXPECT_GE(min_j, 1.0);
  EXPECT_LE(max_j, static_cast<double>(kK));

  // Per-cluster sub-models via GROUP BY on the scored assignment —
  // the paper's "several sub-models from the same data set" usage.
  NLQ_ASSERT_OK(db_->ExecuteCommand(
      "CREATE TABLE XJ AS SELECT X.i AS i, j"
      ", X1, X2, X3, X4, X5, X6, X7, X8 FROM X, XC WHERE X.i = XC.i"));
  NLQ_ASSERT_OK_AND_ASSIGN(
      auto groups,
      miner_->ComputeGroupedSufStats("XJ", DimensionColumns(kD),
                                     MatrixKind::kDiagonal,
                                     ComputeVia::kUdfList, "j"));
  EXPECT_LE(groups.size(), kK);
  double total = 0;
  for (const auto& [j, stats] : groups) total += stats.n();
  EXPECT_DOUBLE_EQ(total, static_cast<double>(kN));
}

TEST_F(PipelineIntegrationTest, PcaReducesDimensionalityInOneScan) {
  NLQ_ASSERT_OK_AND_ASSIGN(stats::PcaModel model,
                           miner_->BuildPca("X", kD, 2, ComputeVia::kUdfList));
  NLQ_ASSERT_OK(miner_->ScorePca("X", model, "XP", /*use_udf=*/true));
  auto reduced = db_->Execute("SELECT * FROM XP");
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced->num_rows(), kN);
  EXPECT_EQ(reduced->num_columns(), 3u);  // i, f1, f2
}

// Cross-check that the WHERE i = i join above works: the engine only
// supports cross joins plus predicates, so equality joins come out of
// pushdown + residual filtering. Sanity-check the row count is n not
// n^2 after filtering.
TEST_F(PipelineIntegrationTest, EquiJoinViaResidualPredicate) {
  NLQ_ASSERT_OK(db_->ExecuteCommand(
      "CREATE TABLE SMALL AS SELECT i, X1 FROM X WHERE i <= 20"));
  auto result = db_->Execute(
      "SELECT count(*) FROM SMALL s1, SMALL s2 WHERE s1.i = s2.i");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->At(0, 0).int_value(), 20);
}

}  // namespace
}  // namespace nlq
