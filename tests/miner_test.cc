#include <gtest/gtest.h>

#include <cmath>

#include "engine/database.h"
#include "gen/datagen.h"
#include "stats/miner.h"
#include "tests/test_util.h"

namespace nlq::stats {
namespace {

class MinerTest : public ::testing::Test {
 protected:
  static constexpr size_t kD = 6;

  void SetUp() override {
    db_ = nlq::testing::MakeTestDatabase();
    miner_ = std::make_unique<WarehouseMiner>(db_.get());
    gen::MixtureOptions options;
    options.n = 3000;
    options.d = kD;
    options.num_clusters = 4;
    options.seed = 2024;
    options.with_y = true;
    NLQ_ASSERT_OK(gen::GenerateDataSetTable(db_.get(), "X", options).status());
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<WarehouseMiner> miner_;
};

// The paper's central claim: "the three implementations produce the
// same results". All in-DBMS paths must agree bit-for-bit-ish.
TEST_F(MinerTest, AllComputePathsAgree) {
  NLQ_ASSERT_OK_AND_ASSIGN(
      SufStats sql, miner_->ComputeSufStats("X", DimensionColumns(kD),
                                            MatrixKind::kFull,
                                            ComputeVia::kSql));
  NLQ_ASSERT_OK_AND_ASSIGN(
      SufStats udf_list, miner_->ComputeSufStats("X", DimensionColumns(kD),
                                                 MatrixKind::kFull,
                                                 ComputeVia::kUdfList));
  NLQ_ASSERT_OK_AND_ASSIGN(
      SufStats udf_string, miner_->ComputeSufStats("X", DimensionColumns(kD),
                                                   MatrixKind::kFull,
                                                   ComputeVia::kUdfString));
  NLQ_ASSERT_OK_AND_ASSIGN(
      SufStats blocks, miner_->ComputeSufStats("X", DimensionColumns(kD),
                                               MatrixKind::kFull,
                                               ComputeVia::kBlocks));
  EXPECT_EQ(sql.n(), 3000.0);
  EXPECT_LT(sql.MaxAbsDiff(udf_list), 1e-5);
  EXPECT_EQ(udf_list.MaxAbsDiff(udf_string), 0.0);
  EXPECT_LT(udf_list.MaxAbsDiff(blocks), 1e-5);
}

TEST_F(MinerTest, BlocksRequireFullKind) {
  EXPECT_FALSE(miner_->ComputeSufStats("X", DimensionColumns(kD),
                                       MatrixKind::kDiagonal,
                                       ComputeVia::kBlocks)
                   .ok());
}

TEST_F(MinerTest, GroupedStatsPartitionTheData) {
  NLQ_ASSERT_OK_AND_ASSIGN(
      auto groups, miner_->ComputeGroupedSufStats(
                       "X", DimensionColumns(kD), MatrixKind::kDiagonal,
                       ComputeVia::kUdfList, "i % 5"));
  ASSERT_EQ(groups.size(), 5u);
  double total = 0;
  for (const auto& [key, stats] : groups) {
    EXPECT_GE(key, 0);
    EXPECT_LT(key, 5);
    total += stats.n();
  }
  EXPECT_DOUBLE_EQ(total, 3000.0);

  // SQL grouped path agrees.
  NLQ_ASSERT_OK_AND_ASSIGN(
      auto sql_groups, miner_->ComputeGroupedSufStats(
                           "X", DimensionColumns(kD), MatrixKind::kDiagonal,
                           ComputeVia::kSql, "i % 5"));
  ASSERT_EQ(sql_groups.size(), 5u);
  for (const auto& [key, stats] : groups) {
    EXPECT_LT(stats.MaxAbsDiff(sql_groups.at(key)), 1e-5);
  }
}

TEST_F(MinerTest, BuildCorrelationViaBothPaths) {
  NLQ_ASSERT_OK_AND_ASSIGN(linalg::Matrix rho_sql,
                           miner_->BuildCorrelation("X", kD, ComputeVia::kSql));
  NLQ_ASSERT_OK_AND_ASSIGN(
      linalg::Matrix rho_udf,
      miner_->BuildCorrelation("X", kD, ComputeVia::kUdfList));
  EXPECT_LT(rho_sql.MaxAbsDiff(rho_udf), 1e-9);
  for (size_t a = 0; a < kD; ++a) EXPECT_DOUBLE_EQ(rho_sql(a, a), 1.0);
}

TEST_F(MinerTest, BuildLinearRegressionPredictsY) {
  NLQ_ASSERT_OK_AND_ASSIGN(
      LinearRegressionModel model,
      miner_->BuildLinearRegression("X", DimensionColumns(kD), "Y",
                                    ComputeVia::kUdfList));
  // The generator's Y is linear plus sigma=5 noise over a wide range;
  // the fit should be strong.
  EXPECT_GT(model.r2, 0.95);
  EXPECT_EQ(model.d, kD);
}

TEST_F(MinerTest, BuildPcaReturnsRequestedComponents) {
  NLQ_ASSERT_OK_AND_ASSIGN(PcaModel model,
                           miner_->BuildPca("X", kD, 3, ComputeVia::kSql));
  EXPECT_EQ(model.k, 3u);
  EXPECT_EQ(model.lambda.rows(), kD);
  EXPECT_EQ(model.lambda.cols(), 3u);
  EXPECT_GT(model.ExplainedVarianceRatio(), 0.0);
  EXPECT_LE(model.ExplainedVarianceRatio(), 1.0 + 1e-12);
}

TEST_F(MinerTest, DbmsKMeansMatchesInMemoryQuality) {
  // Build with the DBMS loop and in memory on the same data; SSE
  // should be in the same ballpark (both are local optima).
  KMeansOptions options;
  options.k = 4;
  options.max_iterations = 10;
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel db_model,
                           miner_->BuildKMeansInDbms("X", kD, options));

  auto table = db_->catalog().GetTable("X");
  ASSERT_TRUE(table.ok());
  auto rows = (*table)->ReadAllRows();
  ASSERT_TRUE(rows.ok());
  std::vector<linalg::Vector> points;
  for (const auto& row : *rows) {
    linalg::Vector x(kD);
    for (size_t a = 0; a < kD; ++a) x[a] = row[1 + a].AsDouble();
    points.push_back(std::move(x));
  }
  NLQ_ASSERT_OK_AND_ASSIGN(KMeansModel mem_model, FitKMeans(points, options));

  const double db_sse = db_model.SumSquaredError(points);
  const double mem_sse = mem_model.SumSquaredError(points);
  EXPECT_LT(db_sse, 3.0 * mem_sse);
  EXPECT_LT(mem_sse, 3.0 * db_sse);

  // Weights normalized.
  double weight_sum = 0;
  for (double w : db_model.weights) weight_sum += w;
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);

  // The loop's final model tables are left in the catalog.
  EXPECT_TRUE(db_->catalog().HasTable("X_KMC"));
  EXPECT_TRUE(db_->catalog().HasTable("X_KMR"));
  EXPECT_TRUE(db_->catalog().HasTable("X_KMW"));
}

TEST_F(MinerTest, KMeansRejectsBadInputs) {
  KMeansOptions options;
  options.k = 0;
  EXPECT_FALSE(miner_->BuildKMeansInDbms("X", kD, options).ok());
  options.k = 5000;  // more clusters than rows
  EXPECT_FALSE(miner_->BuildKMeansInDbms("X", kD, options).ok());
}

TEST_F(MinerTest, MissingTableSurfacesError) {
  EXPECT_FALSE(miner_->ComputeSufStats("NOPE", DimensionColumns(2),
                                       MatrixKind::kFull, ComputeVia::kSql)
                   .ok());
}

}  // namespace
}  // namespace nlq::stats
