#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/failpoint.h"
#include "connect/odbc_sim.h"
#include "engine/database.h"
#include "engine/exec/view_registry.h"
#include "gen/datagen.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace nlq {
namespace {

using storage::Datum;
using storage::Row;
using storage::Schema;
using storage::Table;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Failpoint registry mechanics — Check() is compiled in every build
// configuration, so these run even without -DNLQ_FAILPOINTS.
// ---------------------------------------------------------------------------

class FailpointMechanicsTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DeactivateAll(); }
};

TEST_F(FailpointMechanicsTest, UnarmedPointIsOk) {
  NLQ_EXPECT_OK(failpoint::Check("never_armed"));
  EXPECT_EQ(failpoint::HitCount("never_armed"), 0);
}

TEST_F(FailpointMechanicsTest, SkipThenFireThenExhaust) {
  failpoint::Activate("fp", Status::Internal("injected"), /*skip=*/1,
                      /*fire_count=*/2);
  NLQ_EXPECT_OK(failpoint::Check("fp"));  // skipped
  EXPECT_EQ(failpoint::Check("fp").code(), StatusCode::kInternal);
  EXPECT_EQ(failpoint::Check("fp").code(), StatusCode::kInternal);
  NLQ_EXPECT_OK(failpoint::Check("fp"));  // exhausted
  EXPECT_EQ(failpoint::HitCount("fp"), 4);
}

TEST_F(FailpointMechanicsTest, DeactivateDisarms) {
  failpoint::Activate("fp", Status::IOError("injected"));
  EXPECT_EQ(failpoint::Check("fp").code(), StatusCode::kIOError);
  failpoint::Deactivate("fp");
  NLQ_EXPECT_OK(failpoint::Check("fp"));
}

TEST_F(FailpointMechanicsTest, RearmingResetsState) {
  failpoint::Activate("fp", Status::Internal("a"), 0, 1);
  EXPECT_FALSE(failpoint::Check("fp").ok());
  failpoint::Activate("fp", Status::NotFound("b"));
  EXPECT_EQ(failpoint::HitCount("fp"), 0);  // re-arm resets the counter
  EXPECT_EQ(failpoint::Check("fp").code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Injected faults through the engine — need the check sites compiled
// in (cmake -DNLQ_FAILPOINTS=ON); skip everywhere else.
// ---------------------------------------------------------------------------

constexpr uint64_t kRows = 1500;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::BuiltWithFailpoints()) {
      GTEST_SKIP() << "build lacks NLQ_FAILPOINTS; fault sites compiled out";
    }
    failpoint::DeactivateAll();
    db_ = nlq::testing::MakeTestDatabase(/*num_partitions=*/4);
    gen::MixtureOptions options;
    options.n = kRows;
    options.d = 2;
    options.seed = 77;
    NLQ_ASSERT_OK(gen::GenerateDataSetTable(db_.get(), "X", options).status());
  }

  void TearDown() override { failpoint::DeactivateAll(); }

  /// The post-fault invariant every test re-checks: the engine accepts
  /// and correctly answers the next statement.
  void ExpectEngineRecovered() {
    auto after = db_->Execute("SELECT X1 FROM X");
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(after.value().num_rows(), kRows);
  }

  std::unique_ptr<engine::Database> db_;
};

TEST_F(FaultInjectionTest, PageDecodeFaultFailsQuery) {
  failpoint::Activate("page_decode", Status::IOError("injected decode fault"));
  auto result = db_->Execute("SELECT X1 FROM X");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().message().find("injected decode fault"),
            std::string::npos);
  EXPECT_GE(failpoint::HitCount("page_decode"), 1);

  failpoint::Deactivate("page_decode");
  ExpectEngineRecovered();
}

TEST_F(FaultInjectionTest, PartitionScanFaultFailsQuery) {
  failpoint::Activate("partition_scan",
                      Status::Internal("injected scan fault"));
  auto result = db_->Execute("SELECT X1, X2 FROM X");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_GE(failpoint::HitCount("partition_scan"), 1);

  failpoint::Deactivate("partition_scan");
  ExpectEngineRecovered();
}

TEST_F(FaultInjectionTest, UdfAccumulateFaultFailsAggregate) {
  failpoint::Activate("udf_accumulate",
                      Status::Internal("injected ROW-phase fault"));
  auto result = db_->Execute("SELECT nlq_list('triang', X1, X2) FROM X");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("ROW-phase"), std::string::npos);
  EXPECT_GE(failpoint::HitCount("udf_accumulate"), 1);

  failpoint::Deactivate("udf_accumulate");
  auto ok = db_->Execute("SELECT nlq_list('triang', X1, X2) FROM X");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ExpectEngineRecovered();
}

TEST_F(FaultInjectionTest, UdfMergeFaultFailsAggregate) {
  // 4 partitions → at least 4 partial states, so the MERGE phase
  // always runs.
  failpoint::Activate("udf_merge",
                      Status::Internal("injected MERGE-phase fault"));
  auto result = db_->Execute("SELECT nlq_list('triang', X1, X2) FROM X");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("MERGE-phase"), std::string::npos);
  EXPECT_GE(failpoint::HitCount("udf_merge"), 1);

  failpoint::Deactivate("udf_merge");
  ExpectEngineRecovered();
}

TEST_F(FaultInjectionTest, PartialAggregatesDiscardedCleanlyUnderAsan) {
  // The real assertion is ASan/LSan: a fault mid-aggregation must not
  // leak the partial UDF heap segments or group states. Fire the
  // accumulate fault late (skip most hits) so plenty of partial state
  // exists when the query unwinds.
  failpoint::Activate("udf_accumulate", Status::Internal("late fault"),
                      /*skip=*/3);
  auto result = db_->Execute("SELECT nlq_list('full', X1, X2) FROM X");
  ASSERT_FALSE(result.ok());
  failpoint::DeactivateAll();

  auto ok = db_->Execute("SELECT nlq_list('full', X1, X2) FROM X");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(FaultInjectionTest, ExprCompileFaultForcesInterpretedFallback) {
  // Unlike every other site, an armed expr_compile fault never fails
  // the statement: compilation failure IS the interpreted fallback.
  const char* kSql = "SELECT X1 * 2.0 + X2 FROM X WHERE X1 + X2 > -1000";
  auto compiled = db_->Execute(kSql);
  NLQ_ASSERT_OK(compiled.status());

  failpoint::Activate("expr_compile",
                      Status::Internal("injected compile fault"));
  auto plan = db_->Explain(kSql);
  NLQ_ASSERT_OK(plan.status());
  EXPECT_EQ(plan->find("compiled"), std::string::npos) << *plan;
  EXPECT_EQ(plan->find("Vector"), std::string::npos) << *plan;
  auto fallback = db_->Execute(kSql);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_GE(failpoint::HitCount("expr_compile"), 1);

  // The interpreted result is bit-identical to the compiled one.
  ASSERT_EQ(fallback->num_rows(), compiled->num_rows());
  for (size_t r = 0; r < compiled->num_rows(); ++r) {
    const double a = compiled->At(r, 0).double_value();
    const double b = fallback->At(r, 0).double_value();
    uint64_t abits = 0, bbits = 0;
    std::memcpy(&abits, &a, sizeof(abits));
    std::memcpy(&bbits, &b, sizeof(bbits));
    ASSERT_EQ(abits, bbits) << "row " << r;
  }

  // Disarmed, the planner compiles again.
  failpoint::Deactivate("expr_compile");
  auto plan_after = db_->Explain(kSql);
  NLQ_ASSERT_OK(plan_after.status());
  EXPECT_NE(plan_after->find("VectorProject"), std::string::npos)
      << *plan_after;
  ExpectEngineRecovered();
}

TEST_F(FaultInjectionTest, DiskIoFaultFailsSaveAndLoad) {
  const std::string path = TempPath("fault_disk_io.pages");
  Table table(Schema::DataSet(1));
  for (int i = 0; i < 100; ++i) {
    table.AppendRowUnchecked({Datum::Int64(i), Datum::Double(i * 0.5)});
  }

  failpoint::Activate("disk_io", Status::IOError("injected disk fault"));
  EXPECT_EQ(table.SaveToFile(path).code(), StatusCode::kIOError);
  failpoint::Deactivate("disk_io");
  NLQ_ASSERT_OK(table.SaveToFile(path));

  Table loaded(Schema::DataSet(1));
  failpoint::Activate("disk_io", Status::IOError("injected disk fault"));
  EXPECT_EQ(loaded.LoadFromFile(path).code(), StatusCode::kIOError);
  failpoint::Deactivate("disk_io");
  NLQ_ASSERT_OK(loaded.LoadFromFile(path));
  EXPECT_EQ(loaded.num_rows(), 100u);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, OdbcExportRetriesTransientFaultAndSucceeds) {
  const std::string path = TempPath("fault_odbc_retry.csv");
  auto table = db_->catalog().GetTable("X");
  ASSERT_TRUE(table.ok());

  // Two transient faults, then the link holds: the default policy
  // (3 attempts) rides them out.
  failpoint::Activate("odbc_export", Status::IOError("injected link drop"),
                      /*skip=*/0, /*fire_count=*/2);
  connect::OdbcExporter exporter;
  auto result = exporter.ExportTable(**table, path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().attempts, 3);
  EXPECT_EQ(result.value().rows, kRows);
  EXPECT_EQ(failpoint::HitCount("odbc_export"), 3);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, OdbcExportGivesUpAfterMaxAttempts) {
  const std::string path = TempPath("fault_odbc_dead.csv");
  auto table = db_->catalog().GetTable("X");
  ASSERT_TRUE(table.ok());

  failpoint::Activate("odbc_export", Status::IOError("injected dead link"));
  connect::OdbcExporter exporter;
  auto result = exporter.ExportTable(**table, path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_EQ(failpoint::HitCount("odbc_export"), 3);  // attempts are bounded
  failpoint::Deactivate("odbc_export");

  auto retry = exporter.ExportTable(**table, path);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry.value().attempts, 1);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, NonIoErrorsAreNotRetried) {
  const std::string path = TempPath("fault_odbc_hard.csv");
  auto table = db_->catalog().GetTable("X");
  ASSERT_TRUE(table.ok());

  failpoint::Activate("odbc_export", Status::Internal("injected hard fault"));
  connect::OdbcExporter exporter;
  auto result = exporter.ExportTable(**table, path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(failpoint::HitCount("odbc_export"), 1);  // no second attempt
}

TEST_F(FaultInjectionTest, PageDecompressFaultFailsSpilledScanCleanly) {
  // Spill X, then poison the codec decode path: the query must unwind
  // with the injected error (no crash, no partial result) and succeed
  // once disarmed — the buffer pool and segment stay usable.
  NLQ_ASSERT_OK(db_->SpillTable("X"));
  failpoint::Activate("page_decompress",
                      Status::Corruption("injected decompress fault"));
  auto result = db_->Execute("SELECT X1 FROM X");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find("injected decompress fault"),
            std::string::npos);
  EXPECT_GE(failpoint::HitCount("page_decompress"), 1);

  failpoint::Deactivate("page_decompress");
  ExpectEngineRecovered();
}

TEST_F(FaultInjectionTest, TransientDecompressFaultFailsOneStatementOnly) {
  // Fire exactly once: the hit statement fails, the very next one
  // re-reads the same chunk successfully (failed chunk loads must not
  // poison the pool or the scan state).
  NLQ_ASSERT_OK(db_->SpillTable("X"));
  failpoint::Activate("page_decompress", Status::IOError("transient"),
                      /*skip=*/0, /*fire_count=*/1);
  auto result = db_->Execute("SELECT nlq_list('triang', X1, X2) FROM X");
  ASSERT_FALSE(result.ok());
  ExpectEngineRecovered();
}

TEST_F(FaultInjectionTest, DiskIoFaultFailsSpilledScanCleanly) {
  // The same contract one layer down: a read fault under the buffer
  // pool surfaces as the statement's error and leaves no poisoned
  // frame behind.
  NLQ_ASSERT_OK(db_->SpillTable("X"));
  failpoint::Activate("disk_io", Status::IOError("injected spill read fault"));
  auto result = db_->Execute("SELECT X1 FROM X");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);

  failpoint::Deactivate("disk_io");
  ExpectEngineRecovered();
}

TEST_F(FaultInjectionTest, ViewMaintenanceFaultDegradesToRescanNotWrongResults) {
  // A fault in the view's delta/seed accumulation must never fail the
  // statement or change a bit of its result: the registry drops the
  // poisoned entry and the statement degrades to a plain full rescan.
  const char* kSql = "SELECT nlq_list('triang', X1, X2) FROM X";
  auto baseline = db_->Execute(kSql);  // db_ has no view maintenance
  NLQ_ASSERT_OK(baseline.status());

  engine::DatabaseOptions options;
  options.num_partitions = 4;
  options.enable_view_maintenance = true;
  engine::Database vdb(options);
  NLQ_ASSERT_OK(stats::RegisterAllStatsUdfs(&vdb.udfs()));
  gen::MixtureOptions gen_options;
  gen_options.n = kRows;
  gen_options.d = 2;
  gen_options.seed = 77;  // same rows as db_'s X
  NLQ_ASSERT_OK(gen::GenerateDataSetTable(&vdb, "X", gen_options).status());

  failpoint::Activate("view_maintenance",
                      Status::Internal("injected view fault"));
  auto degraded = vdb.Execute(kSql);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_GE(failpoint::HitCount("view_maintenance"), 1);
  EXPECT_EQ(degraded->At(0, 0).string_value(),
            baseline->At(0, 0).string_value());
  // The half-seeded entry was dropped, not kept.
  ASSERT_NE(vdb.view_registry(), nullptr);
  EXPECT_EQ(vdb.view_registry()->num_views(), 0u);
  ASSERT_TRUE(vdb.last_query_stats().has_value());
  EXPECT_EQ(vdb.last_query_stats()->view_rebuilds, 1u);

  // Disarmed, the same statement seeds the view and still matches.
  failpoint::Deactivate("view_maintenance");
  auto seeded = vdb.Execute(kSql);
  ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
  EXPECT_EQ(seeded->At(0, 0).string_value(),
            baseline->At(0, 0).string_value());
  EXPECT_EQ(vdb.view_registry()->num_views(), 1u);
}

TEST_F(FaultInjectionTest, ColumnCacheFillFaultSurfaces) {
  // Columnar aggregates warm the decoded-column cache through
  // EnsureDecodedColumns — the page_decode site covers that path too.
  failpoint::Activate("page_decode", Status::IOError("injected cache fault"));
  auto result = db_->Execute("SELECT SUM(X1) FROM X");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);

  failpoint::Deactivate("page_decode");
  auto ok = db_->Execute("SELECT SUM(X1) FROM X");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(FaultInjectionTest, CancelBeforeFirstScanPollNeverReachesTheScan) {
  // Uses partition_scan purely as a HIT COUNTER: armed with a huge
  // skip it never fires, but HitCount() reports how many scan batches
  // ran. Both scan paths poll CheckAlive() immediately BEFORE the
  // partition_scan site, so a statement whose token was flipped
  // before execution (the server's queued-cancel case: registered,
  // never yet polling) must die at its very first poll — the scan
  // site is never reached and the counter stays at zero.
  failpoint::Activate("partition_scan", Status::Internal("counter only"),
                      /*skip=*/1 << 30, /*fire_count=*/0);
  engine::QueryOptions q;
  q.cancel_token = std::make_shared<std::atomic<bool>>(true);
  auto result = db_->Execute("SELECT X1, X2 FROM X", q);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(failpoint::HitCount("partition_scan"), 0)
      << "a scan batch ran after the statement was already cancelled";

  failpoint::Deactivate("partition_scan");
  ExpectEngineRecovered();
}

}  // namespace
}  // namespace nlq
