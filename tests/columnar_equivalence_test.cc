// Columnar-vs-row equivalence: the columnar fast path (ColumnarScan →
// ColumnarAggregate with the fused N,L,Q span kernel) must produce
// results *byte-identical* to the row path it replaces — the row path
// stays in the tree as the correctness oracle. The same query is
// planned both ways via QueryOptions::force_interpreted (which turns
// off expression compilation and every columnar plan shape for that
// statement), and results are compared on exact bit patterns.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/strings.h"
#include "engine/database.h"
#include "stats/sufstats.h"
#include "tests/test_util.h"

namespace nlq::engine {
namespace {

using nlq::testing::MakeTestDatabase;
using storage::DataType;
using storage::Datum;

/// Per-statement override that plans the pure interpreted row path —
/// no fused fast path, no vector pipeline, no compiled programs.
QueryOptions Interpreted() {
  QueryOptions options;
  options.force_interpreted = true;
  return options;
}

/// Renders a result set as an exact signature: doubles by bit
/// pattern, so "equal" means byte-identical, not approximately close.
std::string ExactSignature(const ResultSet& result) {
  std::string out;
  for (const auto& row : result.rows()) {
    for (const Datum& v : row) {
      if (v.is_null()) {
        out += "NULL,";
        continue;
      }
      switch (v.type()) {
        case DataType::kDouble: {
          uint64_t bits = 0;
          const double d = v.double_value();
          std::memcpy(&bits, &d, sizeof(bits));
          out += StringPrintf("d:%016llx,",
                              static_cast<unsigned long long>(bits));
          break;
        }
        case DataType::kInt64:
          out += StringPrintf("i:%lld,",
                              static_cast<long long>(v.int_value()));
          break;
        case DataType::kVarchar:
          out += "s:" + v.string_value() + ",";
          break;
      }
    }
    out += "\n";
  }
  return out;
}

/// Deterministic cell values that round-trip exactly through SQL text:
/// k + m/128 is a dyadic rational with at most 7 decimal digits.
double ValueAt(size_t row, size_t col) {
  const int64_t k = static_cast<int64_t>((row * 37 + col * 11) % 41) - 20;
  const int64_t m = static_cast<int64_t>((row * 13 + col * 7) % 128);
  return static_cast<double>(k) + static_cast<double>(m) / 128.0;
}

void FillTable(Database* db, size_t n, size_t d) {
  NLQ_ASSERT_OK(db->ExecuteCommand(
      "CREATE TABLE X (i BIGINT, x1 DOUBLE, x2 DOUBLE, x3 DOUBLE, "
      "x4 DOUBLE)"));
  ASSERT_EQ(d, 4u);
  std::string insert;
  for (size_t r = 0; r < n; ++r) {
    if (insert.empty()) insert = "INSERT INTO X VALUES ";
    insert += StringPrintf("(%zu", r);
    for (size_t c = 0; c < d; ++c) {
      insert += StringPrintf(", %.7f", ValueAt(r, c));
    }
    insert += ")";
    if ((r + 1) % 128 == 0 || r + 1 == n) {
      NLQ_ASSERT_OK(db->ExecuteCommand(insert));
      insert.clear();
    } else {
      insert += ", ";
    }
  }
}

/// Runs `sql` on the columnar path and again with the row-path pin,
/// asserting bit-identical results; returns the shared signature.
std::string AssertPathsAgree(Database* db, const std::string& sql) {
  auto columnar = db->Execute(sql);
  EXPECT_TRUE(columnar.ok()) << columnar.status().ToString();
  auto rowpath = db->Execute(sql, Interpreted());
  EXPECT_TRUE(rowpath.ok()) << rowpath.status().ToString();
  if (!columnar.ok() || !rowpath.ok()) return "";
  // Sanity: the two executions really take different paths.
  auto col_plan = db->Explain(sql);
  auto row_plan = db->Explain(sql, Interpreted());
  EXPECT_TRUE(col_plan.ok() && row_plan.ok());
  if (col_plan.ok() && row_plan.ok()) {
    EXPECT_NE(col_plan->find("ColumnarAggregate"), std::string::npos)
        << sql << "\n" << *col_plan;
    EXPECT_EQ(row_plan->find("Columnar"), std::string::npos)
        << sql << "\n" << *row_plan;
    EXPECT_EQ(row_plan->find("compiled"), std::string::npos)
        << sql << "\n" << *row_plan;
  }
  const std::string col_sig = ExactSignature(*columnar);
  const std::string row_sig = ExactSignature(*rowpath);
  EXPECT_EQ(col_sig, row_sig) << sql;
  return col_sig;
}

TEST(ColumnarEquivalenceTest, BitIdenticalAcrossPartitionsSizesAndKinds) {
  // Row counts straddle the decode batch capacity (1024) so partial
  // batches, exactly-full batches and multi-batch streams all run.
  const size_t kPartitions[] = {1, 2, 4, 7};
  const size_t kRows[] = {0, 1, 1023, 1024, 1025};
  const char* kKinds[] = {"diag", "triang", "full"};
  for (const size_t parts : kPartitions) {
    for (const size_t n : kRows) {
      auto db = MakeTestDatabase(parts);
      FillTable(db.get(), n, 4);
      for (const char* kind : kKinds) {
        const std::string sql = StringPrintf(
            "SELECT nlq_list('%s', x1, x2, x3, x4) FROM X", kind);
        const std::string first = AssertPathsAgree(db.get(), sql);
        // Second columnar run serves spans from the decoded-column
        // cache; it must not change a single bit.
        auto again = db->Execute(sql);
        NLQ_ASSERT_OK(again.status());
        EXPECT_EQ(ExactSignature(*again), first)
            << "cached rescan diverged: " << sql << " (partitions=" << parts
            << ", n=" << n << ")";
      }
    }
  }
}

TEST(ColumnarEquivalenceTest, BuiltinAggregatesMatchIncludingNullsAndInts) {
  auto db = MakeTestDatabase(4);
  NLQ_ASSERT_OK(
      db->ExecuteCommand("CREATE TABLE T (i BIGINT, a DOUBLE, b BIGINT)"));
  NLQ_ASSERT_OK(db->ExecuteCommand(
      "INSERT INTO T VALUES (1, 0.5, 7), (2, NULL, -3), (3, 2.25, NULL), "
      "(4, -1.75, 12), (5, NULL, NULL), (6, 4.5, 0)"));
  AssertPathsAgree(
      db.get(),
      "SELECT count(*), count(a), sum(a), avg(a), min(a), max(a), "
      "count(b), sum(b), min(b), max(b), avg(b) FROM T");
}

TEST(ColumnarEquivalenceTest, NullRowsAreSkippedByNlqUdfs) {
  auto db = MakeTestDatabase(2);
  NLQ_ASSERT_OK(db->ExecuteCommand(
      "CREATE TABLE P (i BIGINT, x1 DOUBLE, x2 DOUBLE)"));
  NLQ_ASSERT_OK(db->ExecuteCommand(
      "INSERT INTO P VALUES (1, 1, 2), (2, NULL, 5), (3, 3, NULL), "
      "(4, 2, 4)"));
  // Both paths agree...
  AssertPathsAgree(db.get(), "SELECT nlq_list('triang', x1, x2) FROM P");
  // ...and on the documented skip-row policy: a NULL in any dimension
  // removes the whole row (complete-data assumption), it is NOT
  // coerced to 0. Only rows 1 and 4 survive.
  auto result = db->Execute("SELECT nlq_list('triang', x1, x2) FROM P");
  NLQ_ASSERT_OK(result.status());
  NLQ_ASSERT_OK_AND_ASSIGN(
      stats::SufStats stats,
      stats::SufStats::FromPackedString(result->At(0, 0).string_value()));
  EXPECT_EQ(stats.n(), 2.0);
  EXPECT_EQ(stats.L(0), 3.0);   // 1 + 2
  EXPECT_EQ(stats.L(1), 6.0);   // 2 + 4
  EXPECT_EQ(stats.Q(0, 0), 5.0);   // 1 + 4
  EXPECT_EQ(stats.Q(1, 0), 10.0);  // 1*2 + 2*4
  EXPECT_EQ(stats.Q(1, 1), 20.0);  // 4 + 16
  EXPECT_EQ(stats.Min(0), 1.0);
  EXPECT_EQ(stats.Max(1), 4.0);
  // count(*) still counts every row; count(x1) skips only x1's NULL.
  auto counts = db->Execute("SELECT count(*), count(x1) FROM P");
  NLQ_ASSERT_OK(counts.status());
  EXPECT_EQ(counts->At(0, 0).int_value(), 4);
  EXPECT_EQ(counts->At(0, 1).int_value(), 3);
}

TEST(ColumnarEquivalenceTest, SimpleWherePushdownMatchesRowPath) {
  auto db = MakeTestDatabase(4);
  FillTable(db.get(), 777, 4);
  // NULL comparison semantics included: inject NULLs, which fail every
  // pushed comparison (UNKNOWN drops the row) on both paths.
  NLQ_ASSERT_OK(db->ExecuteCommand(
      "INSERT INTO X VALUES (9001, NULL, 1, 1, 1), (9002, 5, NULL, 5, 5)"));
  for (const char* where :
       {" WHERE x1 > 0.5", " WHERE x1 >= -2 AND x2 < 3.25",
        " WHERE 1.5 <= x3", " WHERE i <= 400 AND x4 <> 0"}) {
    AssertPathsAgree(
        db.get(),
        std::string("SELECT nlq_list('triang', x1, x2, x3), count(*), "
                    "sum(x4) FROM X") +
            where);
  }
}

TEST(ColumnarEquivalenceTest, ColumnCacheInvalidatedByAppend) {
  auto db = MakeTestDatabase(4);
  FillTable(db.get(), 100, 4);
  const std::string sql = "SELECT nlq_list('full', x1, x2) FROM X";
  const std::string before = AssertPathsAgree(db.get(), sql);
  // Append after the cache is warm; the rescan must see the new row.
  NLQ_ASSERT_OK(
      db->ExecuteCommand("INSERT INTO X VALUES (500, 9.5, -3.25, 0, 0)"));
  const std::string after = AssertPathsAgree(db.get(), sql);
  EXPECT_NE(before, after);
}

TEST(ColumnarEquivalenceTest, PlannerChoosesColumnarOnlyWhenEligible) {
  auto db = MakeTestDatabase(4);
  FillTable(db.get(), 10, 4);
  NLQ_ASSERT_OK(db->ExecuteCommand("CREATE TABLE M (j BIGINT, c DOUBLE)"));
  NLQ_ASSERT_OK(db->ExecuteCommand("INSERT INTO M VALUES (1, 10)"));

  // Eligible: global aggregate, bare columns, simple comparisons.
  for (const char* sql :
       {"SELECT nlq_list('triang', x1, x2) FROM X",
        "SELECT sum(x1), count(*), avg(x2) FROM X",
        "SELECT min(i), max(x3) FROM X WHERE x1 > 0 AND 2 >= x2",
        "SELECT nlq_list('diag', x1) FROM X ORDER BY 1 LIMIT 3"}) {
    NLQ_ASSERT_OK_AND_ASSIGN(std::string plan, db->Explain(sql));
    EXPECT_NE(plan.find("ColumnarAggregate"), std::string::npos)
        << sql << "\n" << plan;
    EXPECT_NE(plan.find("ColumnarScan"), std::string::npos)
        << sql << "\n" << plan;
  }
  // The pushed-down comparison is shown on the scan node.
  NLQ_ASSERT_OK_AND_ASSIGN(
      std::string filtered,
      db->Explain("SELECT sum(x1) FROM X WHERE x2 <= 1.5"));
  EXPECT_NE(filtered.find("filter: (x2 <= 1.5)"), std::string::npos)
      << filtered;

  // Shapes the fused kernel rejects get a second chance on the general
  // compiled pipeline (VectorHashAggregate over ColumnarScan).
  for (const char* sql :
       {"SELECT sum(x1) FROM X GROUP BY i",         // group keys
        "SELECT sum(x1 + 1) FROM X",                // expression arg
        "SELECT sum(x1) FROM X WHERE x1 + x2 > 0",  // complex where
        "SELECT count(*) FROM X GROUP BY i HAVING count(*) > 1"}) {  // having
    NLQ_ASSERT_OK_AND_ASSIGN(std::string plan, db->Explain(sql));
    EXPECT_EQ(plan.find("ColumnarAggregate"), std::string::npos)
        << sql << "\n" << plan;
    EXPECT_NE(plan.find("VectorHashAggregate"), std::string::npos)
        << sql << "\n" << plan;
  }

  // Genuinely ineligible shapes fall back to the row path.
  for (const char* sql :
       {"SELECT sum(x1) FROM X, M",                          // cross join
        "SELECT count(*) FROM X",                            // no columns
        "SELECT nlq_string('diag', pack_point(x1)) FROM X"}) {  // scalar UDF
    NLQ_ASSERT_OK_AND_ASSIGN(std::string plan, db->Explain(sql));
    EXPECT_EQ(plan.find("Columnar"), std::string::npos) << sql << "\n" << plan;
    EXPECT_EQ(plan.find("Vector"), std::string::npos) << sql << "\n" << plan;
  }
}

TEST(ColumnarEquivalenceTest, CacheDisabledStillMatches) {
  engine::DatabaseOptions options;
  options.num_partitions = 3;
  options.enable_column_cache = false;
  auto db = std::make_unique<engine::Database>(options);
  NLQ_ASSERT_OK(stats::RegisterAllStatsUdfs(&db->udfs()));
  FillTable(db.get(), 300, 4);
  const std::string sql = "SELECT nlq_list('triang', x1, x2, x3, x4) FROM X";
  NLQ_ASSERT_OK_AND_ASSIGN(std::string plan, db->Explain(sql));
  EXPECT_NE(plan.find("cache off"), std::string::npos) << plan;
  AssertPathsAgree(db.get(), sql);
}

}  // namespace
}  // namespace nlq::engine
