// Maintained sufficient-statistic views (DESIGN.md §13): an eligible
// global n,L,Q aggregate keeps per-morsel partials registered across
// statements, so a model rebuild after appending k rows accumulates
// only those k rows (O(delta)) instead of rescanning all n. These
// tests pin the three contracts the feature stands on:
//   1. bit-identity — the view-backed result equals the plain
//      columnar rescan exactly, across worker-thread counts {1,2,4}
//      and partition layouts {1,2,4,7}, through repeated append +
//      refresh rounds that extend tail morsels mid-stream;
//   2. O(delta) work — a refresh after k appended rows accumulates k
//      rows (view_delta_rows) and decodes a small suffix of pages,
//      not the whole table;
//   3. safe degradation — staleness (Clear/spill/DROP), memory
//      pressure, and eviction all fall back to a full rescan with the
//      registry state dropped, never a wrong or missing result.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "engine/database.h"
#include "engine/exec/view_registry.h"
#include "stats/sqlgen.h"
#include "storage/partitioned_table.h"
#include "tests/test_util.h"

namespace nlq::engine {
namespace {

using storage::Datum;
using storage::Row;

std::string Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return StringPrintf("%016llx", static_cast<unsigned long long>(bits));
}

/// Renders a result set so "equal" means byte-identical, not close.
std::string ResultSignature(const ResultSet& result) {
  std::string out;
  for (const auto& row : result.rows()) {
    for (const Datum& v : row) {
      if (v.is_null()) {
        out += "NULL,";
        continue;
      }
      switch (v.type()) {
        case storage::DataType::kDouble:
          out += "d:" + Bits(v.double_value()) + ",";
          break;
        case storage::DataType::kInt64:
          out += StringPrintf("i:%lld,", static_cast<long long>(v.int_value()));
          break;
        case storage::DataType::kVarchar:
          out += "s:" + v.string_value() + ",";
          break;
      }
    }
    out += "\n";
  }
  return out;
}

std::unique_ptr<Database> MakeViewDb(size_t partitions, size_t threads,
                                     bool views, uint64_t morsel_rows = 256) {
  DatabaseOptions options;
  options.num_partitions = partitions;
  options.num_threads = threads;
  options.morsel_rows = morsel_rows;
  options.enable_view_maintenance = views;
  auto db = std::make_unique<Database>(options);
  EXPECT_TRUE(stats::RegisterAllStatsUdfs(&db->udfs()).ok());
  return db;
}

/// Deterministic dyadic cell: a pure function of (row, column), so
/// paired databases filled over different statement sequences still
/// hold identical rows.
double CellValue(size_t r, size_t c) {
  const int64_t k = static_cast<int64_t>((r * 37 + c * 131 + 7) % 4096) - 2048;
  return static_cast<double>(k) / 256.0;
}

/// Appends rows [begin, end) of the deterministic stream to T(i, X1, X2).
void AppendRows(Database* db, size_t begin, size_t end) {
  std::string insert;
  for (size_t r = begin; r < end; ++r) {
    if (insert.empty()) insert = "INSERT INTO T VALUES ";
    insert += StringPrintf("(%zu, %.8f, %.8f)", r, CellValue(r, 1),
                           CellValue(r, 2));
    if ((r + 1 - begin) % 128 == 0 || r + 1 == end) {
      NLQ_ASSERT_OK(db->ExecuteCommand(insert));
      insert.clear();
    } else {
      insert += ", ";
    }
  }
}

void CreateT(Database* db) {
  NLQ_ASSERT_OK(
      db->ExecuteCommand("CREATE TABLE T (i BIGINT, X1 DOUBLE, X2 DOUBLE)"));
}

const char* kQueries[] = {
    "SELECT nlq_list('triang', X1, X2) FROM T",
    "SELECT nlq_list('full', X1, X2) FROM T WHERE X1 > -4.0",
    "SELECT nlq_list('diag', X2) FROM T WHERE i < 700",
    "SELECT count(*), sum(X1), min(X1), max(X2) FROM T",
};

// ---------------------------------------------------------------------------
// 1. Bit-identity across threads and partitions, through append rounds
// ---------------------------------------------------------------------------

TEST(ViewMaintenanceTest, BitIdenticalToRescanAcrossThreadsAndPartitions) {
  const size_t kPartitions[] = {1, 2, 4, 7};
  const size_t kThreads[] = {1, 2, 4};
  // Append bursts chosen to extend tail morsels mid-stream (morsel
  // size 256, initial fill not a multiple of it) and to cross morsel
  // boundaries on the second round.
  const size_t kInitial = 777;
  const size_t kBurst1 = 123;
  const size_t kBurst2 = 300;
  for (const size_t parts : kPartitions) {
    // Per-query signatures of the first thread count; later thread
    // counts must reproduce them bit for bit.
    std::vector<std::vector<std::string>> baseline;
    for (const size_t threads : kThreads) {
      SCOPED_TRACE(StringPrintf("partitions=%zu threads=%zu", parts, threads));
      auto vdb = MakeViewDb(parts, threads, /*views=*/true);
      auto pdb = MakeViewDb(parts, threads, /*views=*/false);
      CreateT(vdb.get());
      CreateT(pdb.get());
      AppendRows(vdb.get(), 0, kInitial);
      AppendRows(pdb.get(), 0, kInitial);

      std::vector<std::vector<std::string>> sigs;
      const size_t bounds[] = {kInitial, kInitial + kBurst1,
                               kInitial + kBurst1 + kBurst2};
      size_t filled = kInitial;
      for (const size_t bound : bounds) {
        AppendRows(vdb.get(), filled, bound);
        AppendRows(pdb.get(), filled, bound);
        filled = bound;
        std::vector<std::string> round;
        for (const char* sql : kQueries) {
          auto viewed = vdb->Execute(sql);
          auto rescan = pdb->Execute(sql);
          NLQ_ASSERT_OK(viewed.status());
          NLQ_ASSERT_OK(rescan.status());
          EXPECT_EQ(ResultSignature(*viewed), ResultSignature(*rescan))
              << sql;
          round.push_back(ResultSignature(*viewed));
        }
        sigs.push_back(std::move(round));
      }

      // The statements really served the registry: every query shape
      // is registered and the refresh rounds were hits.
      ASSERT_NE(vdb->view_registry(), nullptr);
      EXPECT_EQ(vdb->view_registry()->num_views(),
                sizeof(kQueries) / sizeof(kQueries[0]));
      ASSERT_TRUE(vdb->last_query_stats().has_value());
      EXPECT_EQ(vdb->last_query_stats()->view_hits, 1u);

      if (baseline.empty()) {
        baseline = sigs;
      } else {
        // Thread count must not change one bit of any round.
        EXPECT_EQ(sigs, baseline);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 2. O(delta) refresh work
// ---------------------------------------------------------------------------

TEST(ViewMaintenanceTest, RefreshAfterAppendDoesDeltaWorkOnly) {
  auto db = MakeViewDb(/*partitions=*/4, /*threads=*/4, /*views=*/true,
                       /*morsel_rows=*/1024);
  CreateT(db.get());
  const size_t kN = 20000;
  const size_t kDelta = 64;
  AppendRows(db.get(), 0, kN);
  const char* kSql = "SELECT nlq_list('triang', X1, X2) FROM T";

  // Seeding statement: a full accumulate, counted as a miss/rebuild.
  NLQ_ASSERT_OK(db->Execute(kSql).status());
  ASSERT_TRUE(db->last_query_stats().has_value());
  const auto seed_stats = *db->last_query_stats();
  EXPECT_EQ(seed_stats.view_misses, 1u);
  EXPECT_EQ(seed_stats.view_rebuilds, 1u);
  EXPECT_EQ(seed_stats.view_hits, 0u);
  ASSERT_GT(seed_stats.pages_decoded, 0u);
  EXPECT_GT(db->view_registry()->state_bytes(), 0u);

  // Refresh after k appended rows: the accumulate visits exactly the
  // k new rows and decodes a small page suffix, not the table.
  AppendRows(db.get(), kN, kN + kDelta);
  NLQ_ASSERT_OK(db->Execute(kSql).status());
  const auto delta_stats = *db->last_query_stats();
  EXPECT_EQ(delta_stats.view_hits, 1u);
  EXPECT_EQ(delta_stats.view_misses, 0u);
  EXPECT_EQ(delta_stats.view_rebuilds, 0u);
  EXPECT_EQ(delta_stats.view_delta_rows, kDelta);
  EXPECT_LT(delta_stats.pages_decoded, seed_stats.pages_decoded / 4)
      << "refresh decoded " << delta_stats.pages_decoded << " of "
      << seed_stats.pages_decoded << " pages";

  // A second refresh with nothing appended is pure merge: zero rows,
  // zero pages.
  NLQ_ASSERT_OK(db->Execute(kSql).status());
  const auto idle_stats = *db->last_query_stats();
  EXPECT_EQ(idle_stats.view_hits, 1u);
  EXPECT_EQ(idle_stats.view_delta_rows, 0u);
  EXPECT_EQ(idle_stats.pages_decoded, 0u);
}

// ---------------------------------------------------------------------------
// 3. EXPLAIN annotations and staleness transitions
// ---------------------------------------------------------------------------

TEST(ViewMaintenanceTest, ExplainTracksFreshStaleIneligible) {
  auto db = MakeViewDb(/*partitions=*/2, /*threads=*/2, /*views=*/true);
  CreateT(db.get());
  AppendRows(db.get(), 0, 500);
  const char* kSql = "SELECT nlq_list('triang', X1, X2) FROM T";

  // Unregistered: the plan seeds.
  NLQ_ASSERT_OK_AND_ASSIGN(std::string plan, db->Explain(kSql));
  EXPECT_NE(plan.find("MaintainedViewScan"), std::string::npos) << plan;
  EXPECT_NE(plan.find("view=stale (seeding 500 row(s))"), std::string::npos)
      << plan;

  // Seeded: fresh with zero delta, then with the appended delta.
  NLQ_ASSERT_OK(db->Execute(kSql).status());
  NLQ_ASSERT_OK_AND_ASSIGN(plan, db->Explain(kSql));
  EXPECT_NE(plan.find("view=fresh delta=0 of 500 row(s)"), std::string::npos)
      << plan;
  AppendRows(db.get(), 500, 505);
  NLQ_ASSERT_OK_AND_ASSIGN(plan, db->Explain(kSql));
  EXPECT_NE(plan.find("view=fresh delta=5 of 505 row(s)"), std::string::npos)
      << plan;

  // A destructive mutation (Clear bumps the partition's epoch): the
  // first probe observes staleness, drops the entry and plans the
  // normal pipeline; the next statement reseeds.
  NLQ_ASSERT_OK_AND_ASSIGN(storage::PartitionedTable * table,
                           db->catalog().GetTable("T"));
  table->partition(0).Clear();
  NLQ_ASSERT_OK_AND_ASSIGN(plan, db->Explain(kSql));
  EXPECT_NE(plan.find("ColumnarAggregate"), std::string::npos) << plan;
  EXPECT_NE(plan.find("view=stale"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("MaintainedViewScan"), std::string::npos) << plan;
  NLQ_ASSERT_OK_AND_ASSIGN(plan, db->Explain(kSql));
  EXPECT_NE(plan.find("view=stale (seeding"), std::string::npos) << plan;

  // Spilled tables are ineligible (their scans stream through the
  // buffer pool; there is no append path to maintain).
  NLQ_ASSERT_OK(db->SpillTable("T"));
  NLQ_ASSERT_OK_AND_ASSIGN(plan, db->Explain(kSql));
  EXPECT_NE(plan.find("view=ineligible (spilled)"), std::string::npos) << plan;
  EXPECT_EQ(db->view_registry()->num_views(), 0u);

  // Grouped n,L,Q aggregates are recognized but not maintained.
  const std::string grouped = stats::NlqUdfQueryGrouped(
      "T", {"X1", "X2"}, stats::MatrixKind::kLowerTriangular,
      stats::ParamStyle::kList, "i % 3");
  NLQ_ASSERT_OK_AND_ASSIGN(plan, db->Explain(grouped));
  EXPECT_NE(plan.find("view=ineligible (group-by)"), std::string::npos)
      << plan;
}

TEST(ViewMaintenanceTest, DropTableInvalidatesEagerly) {
  auto db = MakeViewDb(/*partitions=*/4, /*threads=*/2, /*views=*/true);
  CreateT(db.get());
  AppendRows(db.get(), 0, 300);
  const char* kSql = "SELECT nlq_list('diag', X1) FROM T";
  NLQ_ASSERT_OK(db->Execute(kSql).status());
  EXPECT_EQ(db->view_registry()->num_views(), 1u);

  // DROP must drop the view too: a recreated table with different
  // rows can never alias the old entry.
  NLQ_ASSERT_OK(db->ExecuteCommand("DROP TABLE T"));
  EXPECT_EQ(db->view_registry()->num_views(), 0u);
  CreateT(db.get());
  AppendRows(db.get(), 1000, 1200);  // different rows under the same name

  auto pdb = MakeViewDb(/*partitions=*/4, /*threads=*/2, /*views=*/false);
  CreateT(pdb.get());
  AppendRows(pdb.get(), 1000, 1200);
  auto viewed = db->Execute(kSql);
  auto rescan = pdb->Execute(kSql);
  NLQ_ASSERT_OK(viewed.status());
  NLQ_ASSERT_OK(rescan.status());
  EXPECT_EQ(ResultSignature(*viewed), ResultSignature(*rescan));
}

// ---------------------------------------------------------------------------
// 4. Degradation under memory pressure, and the view cap
// ---------------------------------------------------------------------------

TEST(ViewMaintenanceTest, TinyViewMemoryBudgetDegradesToRescan) {
  DatabaseOptions options;
  options.num_partitions = 4;
  options.num_threads = 2;
  options.enable_view_maintenance = true;
  options.view_memory_limit = 1024;  // far below one UDF heap segment
  auto db = std::make_unique<Database>(options);
  NLQ_ASSERT_OK(stats::RegisterAllStatsUdfs(&db->udfs()));
  CreateT(db.get());
  AppendRows(db.get(), 0, 400);

  auto pdb = MakeViewDb(/*partitions=*/4, /*threads=*/2, /*views=*/false);
  CreateT(pdb.get());
  AppendRows(pdb.get(), 0, 400);

  // Seeding cannot fit the budget: the statement must still succeed —
  // degraded to a plain rescan — with the poisoned entry dropped.
  const char* kSql = "SELECT nlq_list('full', X1, X2) FROM T";
  auto viewed = db->Execute(kSql);
  auto rescan = pdb->Execute(kSql);
  NLQ_ASSERT_OK(viewed.status());
  NLQ_ASSERT_OK(rescan.status());
  EXPECT_EQ(ResultSignature(*viewed), ResultSignature(*rescan));
  EXPECT_EQ(db->view_registry()->num_views(), 0u);
  EXPECT_EQ(db->view_registry()->state_bytes(), 0u);
  ASSERT_TRUE(db->last_query_stats().has_value());
  EXPECT_EQ(db->last_query_stats()->view_rebuilds, 1u);
}

TEST(ViewMaintenanceTest, ViewCapEvictsLeastRecentlyServed) {
  DatabaseOptions options;
  options.num_partitions = 2;
  options.num_threads = 2;
  options.enable_view_maintenance = true;
  options.max_maintained_views = 2;
  auto db = std::make_unique<Database>(options);
  NLQ_ASSERT_OK(stats::RegisterAllStatsUdfs(&db->udfs()));
  CreateT(db.get());
  AppendRows(db.get(), 0, 200);

  NLQ_ASSERT_OK(db->Execute("SELECT nlq_list('diag', X1) FROM T").status());
  NLQ_ASSERT_OK(db->Execute("SELECT nlq_list('diag', X2) FROM T").status());
  NLQ_ASSERT_OK(
      db->Execute("SELECT nlq_list('triang', X1, X2) FROM T").status());
  EXPECT_EQ(db->view_registry()->num_views(), 2u);

  // The survivor entries still serve fresh hits.
  NLQ_ASSERT_OK(
      db->Execute("SELECT nlq_list('triang', X1, X2) FROM T").status());
  EXPECT_EQ(db->last_query_stats()->view_hits, 1u);
}

// ---------------------------------------------------------------------------
// 5. Views off by default
// ---------------------------------------------------------------------------

TEST(ViewMaintenanceTest, DisabledByDefault) {
  auto db = nlq::testing::MakeTestDatabase(2);
  EXPECT_EQ(db->view_registry(), nullptr);
  NLQ_ASSERT_OK(
      db->ExecuteCommand("CREATE TABLE T (i BIGINT, X1 DOUBLE, X2 DOUBLE)"));
  NLQ_ASSERT_OK(db->ExecuteCommand("INSERT INTO T VALUES (1, 1.0, 2.0)"));
  NLQ_ASSERT_OK_AND_ASSIGN(
      std::string plan, db->Explain("SELECT nlq_list('diag', X1) FROM T"));
  EXPECT_EQ(plan.find("view="), std::string::npos) << plan;
  EXPECT_EQ(plan.find("MaintainedViewScan"), std::string::npos) << plan;
}

}  // namespace
}  // namespace nlq::engine
