// Tests for morsel-driven parallel execution: the fixed morsel grid,
// the range scanners that realize it, the work-claiming scheduler, and
// the headline determinism guarantee — query results are bit-identical
// across thread counts and runs, because per-morsel partial states are
// folded in morsel-index order (a function of the data layout only,
// never of scheduling).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "common/threadpool.h"
#include "engine/database.h"
#include "engine/exec/morsel.h"
#include "stats/scoring.h"
#include "storage/partitioned_table.h"
#include "tests/test_util.h"

namespace nlq::engine {
namespace {

using exec::BuildMorselGrid;
using exec::Morsel;
using storage::DataType;
using storage::Datum;
using storage::PartitionedTable;
using storage::Row;
using storage::Schema;

// ---------------------------------------------------------------------------
// Morsel grid
// ---------------------------------------------------------------------------

std::unique_ptr<PartitionedTable> MakePartitions(
    const std::vector<uint64_t>& rows_per_partition) {
  auto table = std::make_unique<PartitionedTable>(
      Schema{{{"i", DataType::kInt64}}}, rows_per_partition.size());
  for (size_t p = 0; p < rows_per_partition.size(); ++p) {
    for (uint64_t r = 0; r < rows_per_partition[p]; ++r) {
      EXPECT_TRUE(
          table->AppendRowToPartition(p, {Datum::Int64(static_cast<int64_t>(r))})
              .ok());
    }
  }
  return table;
}

TEST(MorselGridTest, EmptyTableYieldsOneEmptyMorsel) {
  auto table = MakePartitions({0, 0, 0});
  const std::vector<Morsel> grid = BuildMorselGrid(*table, 1024);
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid[0].rows(), 0u);
}

TEST(MorselGridTest, SplitsByOffsetOnly) {
  auto table = MakePartitions({2500, 0, 1024, 1});
  const std::vector<Morsel> grid = BuildMorselGrid(*table, 1024);
  // Partition 0: [0,1024) [1024,2048) [2048,2500); partition 1 empty
  // (no morsel); partition 2: one exact morsel; partition 3: one row.
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_EQ(grid[0].partition, 0u);
  EXPECT_EQ(grid[0].begin, 0u);
  EXPECT_EQ(grid[0].end, 1024u);
  EXPECT_EQ(grid[2].begin, 2048u);
  EXPECT_EQ(grid[2].end, 2500u);
  EXPECT_EQ(grid[3].partition, 2u);
  EXPECT_EQ(grid[3].rows(), 1024u);
  EXPECT_EQ(grid[4].partition, 3u);
  EXPECT_EQ(grid[4].rows(), 1u);
}

TEST(MorselGridTest, ZeroMorselRowsIsPartitionGranular) {
  auto table = MakePartitions({100000, 5, 0});
  const std::vector<Morsel> grid = BuildMorselGrid(*table, 0);
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid[0].rows(), 100000u);
  EXPECT_EQ(grid[1].rows(), 5u);
}

// ---------------------------------------------------------------------------
// Range scanners: morsels partition the row space exactly
// ---------------------------------------------------------------------------

TEST(MorselRangeScanTest, RowAndColumnRangesTileTheTable) {
  // A VARCHAR column forces the seek to size-step variable-width rows.
  storage::Table table(Schema{{{"i", DataType::kInt64},
                               {"s", DataType::kVarchar},
                               {"x", DataType::kDouble}}});
  const size_t kRows = 3000;  // spans multiple pages
  for (size_t r = 0; r < kRows; ++r) {
    NLQ_ASSERT_OK(table.AppendRow(
        {Datum::Int64(static_cast<int64_t>(r)),
         Datum::Varchar(std::string(r % 17, 'x')),
         Datum::Double(static_cast<double>(r) * 0.25)}));
  }
  // Odd-sized, misaligned morsels exercise mid-page seeks.
  for (const uint64_t morsel : {1ull, 7ull, 64ull, 1000ull, 5000ull}) {
    int64_t sum_i = 0;
    double sum_x = 0.0;
    uint64_t seen = 0;
    for (uint64_t begin = 0; begin < kRows; begin += morsel) {
      const uint64_t end = std::min<uint64_t>(begin + morsel, kRows);
      // Row path.
      storage::BatchScanner scanner = table.ScanBatchRange(begin, end);
      storage::RowBatch batch(256);
      uint64_t expect_i = begin;
      while (scanner.Next(&batch)) {
        for (size_t i = 0; i < batch.size(); ++i) {
          ASSERT_EQ(batch.row(i)[0].int_value(),
                    static_cast<int64_t>(expect_i++));
          sum_i += batch.row(i)[0].int_value();
          ++seen;
        }
      }
      NLQ_ASSERT_OK(scanner.status());
      ASSERT_EQ(expect_i, end) << "begin=" << begin << " morsel=" << morsel;
      // Columnar path over the same range.
      storage::ColumnBatchScanner cscan =
          table.ScanColumnBatchRange({0, 2}, begin, end, 256);
      storage::ColumnBatch cbatch;
      uint64_t crows = 0;
      while (cscan.Next(&cbatch)) {
        for (size_t i = 0; i < cbatch.size(); ++i) {
          sum_x += cbatch.column(1).double_data()[i];
        }
        crows += cbatch.size();
      }
      NLQ_ASSERT_OK(cscan.status());
      ASSERT_EQ(crows, end - begin);
    }
    EXPECT_EQ(seen, kRows);
    EXPECT_EQ(sum_i, static_cast<int64_t>(kRows * (kRows - 1) / 2));
    EXPECT_EQ(sum_x, 0.25 * static_cast<double>(kRows) *
                         static_cast<double>(kRows - 1) / 2.0);
  }
  // Past-the-end and empty ranges are empty, not errors.
  storage::RowBatch batch(16);
  storage::BatchScanner past = table.ScanBatchRange(kRows + 5, kRows + 9);
  EXPECT_FALSE(past.Next(&batch));
  NLQ_ASSERT_OK(past.status());
  storage::BatchScanner empty = table.ScanBatchRange(10, 10);
  EXPECT_FALSE(empty.Next(&batch));
  NLQ_ASSERT_OK(empty.status());
}

// ---------------------------------------------------------------------------
// Scheduler: ParallelForMorsels
// ---------------------------------------------------------------------------

TEST(ParallelForMorselsTest, RunsEveryIndexOnceWithValidWorkerIds) {
  ThreadPool pool(3);
  ASSERT_EQ(pool.num_workers(), 4u);
  std::vector<std::atomic<int>> hits(257);
  std::atomic<bool> bad_worker{false};
  NLQ_ASSERT_OK(pool.ParallelForMorsels(257, [&](size_t worker, size_t i) {
    if (worker >= pool.num_workers()) bad_worker = true;
    hits[i]++;
    return Status::OK();
  }));
  EXPECT_FALSE(bad_worker);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForMorselsTest, SingleIndexRunsInlineOnCaller) {
  ThreadPool pool(3);
  const std::thread::id caller = std::this_thread::get_id();
  size_t seen_worker = 99;
  std::thread::id seen_thread;
  NLQ_ASSERT_OK(pool.ParallelForMorsels(1, [&](size_t worker, size_t i) {
    seen_worker = worker;
    seen_thread = std::this_thread::get_id();
    EXPECT_EQ(i, 0u);
    return Status::OK();
  }));
  EXPECT_EQ(seen_worker, 0u);
  EXPECT_EQ(seen_thread, caller);
}

TEST(ParallelForMorselsTest, AllWorkersContributeUnderSkew) {
  // Each morsel sleeps, so even on a single-core machine every worker
  // thread gets scheduled and claims work from the shared queue — the
  // property that lets morsel parallelism beat partition parallelism
  // on skewed layouts.
  ThreadPool pool(3);
  std::mutex mu;
  std::set<size_t> workers;
  NLQ_ASSERT_OK(pool.ParallelForMorsels(64, [&](size_t worker, size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::lock_guard<std::mutex> lock(mu);
    workers.insert(worker);
    return Status::OK();
  }));
  EXPECT_EQ(workers.size(), pool.num_workers())
      << "a worker never claimed a morsel";
}

TEST(ParallelForMorselsTest, SequentialBatchesReuseThePool) {
  ThreadPool pool(2);
  std::atomic<size_t> counter{0};
  for (int round = 0; round < 50; ++round) {
    NLQ_ASSERT_OK(pool.ParallelForMorsels(20, [&](size_t, size_t) {
      counter++;
      return Status::OK();
    }));
  }
  EXPECT_EQ(counter.load(), 1000u);
}

// ---------------------------------------------------------------------------
// End-to-end determinism: bit-identical n,L,Q across thread counts,
// morsel sizes, partition counts and row counts
// ---------------------------------------------------------------------------

/// Exact result signature: doubles by bit pattern (see
/// columnar_equivalence_test.cc for the rationale).
std::string ExactSignature(const ResultSet& result) {
  std::string out;
  for (const auto& row : result.rows()) {
    for (const Datum& v : row) {
      if (v.is_null()) {
        out += "NULL,";
        continue;
      }
      switch (v.type()) {
        case DataType::kDouble: {
          uint64_t bits = 0;
          const double d = v.double_value();
          std::memcpy(&bits, &d, sizeof(bits));
          out +=
              StringPrintf("d:%016llx,", static_cast<unsigned long long>(bits));
          break;
        }
        case DataType::kInt64:
          out += StringPrintf("i:%lld,", static_cast<long long>(v.int_value()));
          break;
        case DataType::kVarchar:
          out += "s:" + v.string_value() + ",";
          break;
      }
    }
    out += "\n";
  }
  return out;
}

/// Deterministic dyadic-rational cells (exact in double).
double ValueAt(size_t row, size_t col) {
  const int64_t k = static_cast<int64_t>((row * 37 + col * 11) % 41) - 20;
  const int64_t m = static_cast<int64_t>((row * 13 + col * 7) % 128);
  return static_cast<double>(k) + static_cast<double>(m) / 128.0;
}

std::unique_ptr<Database> MakeDb(size_t partitions, size_t threads,
                                 uint64_t morsel_rows) {
  DatabaseOptions options;
  options.num_partitions = partitions;
  options.num_threads = threads;
  options.morsel_rows = morsel_rows;
  auto db = std::make_unique<Database>(options);
  EXPECT_TRUE(stats::RegisterAllStatsUdfs(&db->udfs()).ok());
  return db;
}

/// Bulk-fills X(i, x1..x3) through the catalog (no SQL round trip).
void FillPoints(Database* db, size_t n) {
  auto table = db->catalog().CreateTable(
      "X", Schema{{{"i", DataType::kInt64},
                   {"x1", DataType::kDouble},
                   {"x2", DataType::kDouble},
                   {"x3", DataType::kDouble}}});
  NLQ_ASSERT_OK(table.status());
  for (size_t r = 0; r < n; ++r) {
    NLQ_ASSERT_OK(table.value()->AppendRow({Datum::Int64(static_cast<int64_t>(r)),
                                            Datum::Double(ValueAt(r, 0)),
                                            Datum::Double(ValueAt(r, 1)),
                                            Datum::Double(ValueAt(r, 2))}));
  }
}

/// All three matrix kinds plus SQL builtins, columnar path and forced
/// interpreted row path, in one signature.
std::string QuerySignature(Database* db) {
  std::string sig;
  for (const char* kind : {"diag", "triang", "full"}) {
    for (const bool interpreted : {false, true}) {
      QueryOptions options;
      options.force_interpreted = interpreted;
      auto result = db->Execute(
          StringPrintf("SELECT nlq_list('%s', x1, x2, x3), count(*), "
                       "sum(x1), avg(x2) FROM X",
                       kind),
          options);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (result.ok()) sig += ExactSignature(*result);
    }
  }
  return sig;
}

TEST(MorselDeterminismTest, BitIdenticalAcrossThreadCounts) {
  const size_t kPartitions[] = {1, 2, 7};
  const size_t kRows[] = {0, 1, 1023, 1024, 1025};
  const uint64_t kMorselRows[] = {1, 1024, 16384};
  const size_t kThreads[] = {1, 2, 3, 8};
  for (const size_t parts : kPartitions) {
    for (const size_t n : kRows) {
      for (const uint64_t morsel : kMorselRows) {
        // Morsel 1 with the full matrix is quadratic in n; the small
        // row counts cover it, the page-boundary ones use larger
        // morsels.
        if (morsel == 1 && n > 64) continue;
        std::string reference;
        for (const size_t threads : kThreads) {
          auto db = MakeDb(parts, threads, morsel);
          FillPoints(db.get(), n);
          const std::string sig = QuerySignature(db.get());
          if (reference.empty()) {
            reference = sig;
          } else {
            EXPECT_EQ(sig, reference)
                << "partitions=" << parts << " n=" << n << " morsel=" << morsel
                << " threads=" << threads;
          }
          // A rescan (cache-warm) must also not move a bit.
          EXPECT_EQ(QuerySignature(db.get()), reference);
        }
      }
    }
  }
}

TEST(MorselDeterminismTest, LargeTableManyMorselsStaysBitIdentical) {
  const size_t kN = 100000;
  std::string reference;
  for (const size_t threads : {1, 8}) {
    auto db = MakeDb(/*partitions=*/4, threads, /*morsel_rows=*/1024);
    FillPoints(db.get(), kN);
    auto result =
        db->Execute("SELECT nlq_list('triang', x1, x2, x3), sum(x1) FROM X");
    NLQ_ASSERT_OK(result.status());
    const std::string sig = ExactSignature(*result);
    if (reference.empty()) {
      reference = sig;
    } else {
      EXPECT_EQ(sig, reference) << "threads=" << threads;
    }
  }
}

TEST(MorselDeterminismTest, SkewedPartitioningFansOutAndStaysDeterministic) {
  // One partition holds 90% of the rows; under partition-granular
  // parallelism a single worker would own it. The morsel grid must
  // split it into many claimable units, and results must stay
  // bit-identical across thread counts.
  const size_t kN = 20000;
  const uint64_t kMorsel = 1024;
  std::string reference;
  for (const size_t threads : {1, 2, 8}) {
    auto db = MakeDb(/*partitions=*/4, threads, kMorsel);
    auto created = db->catalog().CreateTable(
        "X", Schema{{{"i", DataType::kInt64},
                     {"x1", DataType::kDouble},
                     {"x2", DataType::kDouble},
                     {"x3", DataType::kDouble}}});
    NLQ_ASSERT_OK(created.status());
    PartitionedTable* table = created.value();
    for (size_t r = 0; r < kN; ++r) {
      // 90% of rows to partition 0, the rest round-robin over 1..3.
      const size_t p = (r % 10 != 0) ? 0 : 1 + (r / 10) % 3;
      NLQ_ASSERT_OK(table->AppendRowToPartition(
          p, {Datum::Int64(static_cast<int64_t>(r)),
              Datum::Double(ValueAt(r, 0)), Datum::Double(ValueAt(r, 1)),
              Datum::Double(ValueAt(r, 2))}));
    }
    // The skewed partition fans out: far more morsels than partitions.
    const std::vector<Morsel> grid = BuildMorselGrid(*table, kMorsel);
    EXPECT_GE(grid.size(), 18u);
    size_t p0_morsels = 0;
    for (const Morsel& m : grid) p0_morsels += m.partition == 0 ? 1 : 0;
    EXPECT_GE(p0_morsels, 17u);  // 18000 rows / 1024
    const std::string sig = QuerySignature(db.get());
    if (reference.empty()) {
      reference = sig;
    } else {
      EXPECT_EQ(sig, reference) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace nlq::engine
