// EXPLAIN ANALYZE and the per-query stats tree (DESIGN.md #10). The
// rendered plan is golden-tested byte-for-byte after timing redaction
// (row/batch/page counts are deterministic for a fixed table layout;
// wall times are not, so RedactTimings replaces them with <T>), and
// the operator actuals are asserted exactly: WHERE selectivity shows
// up as a row-count drop at the Filter/ColumnarScan, LIMIT early-exit
// as an under-count at the Limit node. Instrumentation must also be
// inert: disabling collect_query_stats changes no result bit and no
// status code.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/strings.h"
#include "engine/database.h"
#include "engine/exec/plan.h"
#include "gen/datagen.h"
#include "tests/test_util.h"
#include "udf/udf.h"

namespace nlq::engine {
namespace {

using nlq::testing::MakeTestDatabase;
using storage::DataType;
using storage::Datum;

uint64_t CounterOf(const MetricsSnapshot& s, const std::string& name) {
  auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

const OperatorStatsSnapshot* FindOp(const QueryStatsSnapshot& s,
                                    const std::string& name) {
  for (const OperatorStatsSnapshot& op : s.operators) {
    if (op.name == name) return &op;
  }
  return nullptr;
}

/// Bit-exact result rendering (same scheme as the equivalence tests).
std::string ExactSignature(const ResultSet& result) {
  std::string out;
  for (const auto& row : result.rows()) {
    for (const Datum& v : row) {
      if (v.is_null()) {
        out += "NULL,";
        continue;
      }
      switch (v.type()) {
        case DataType::kDouble: {
          uint64_t bits = 0;
          const double d = v.double_value();
          std::memcpy(&bits, &d, sizeof(bits));
          out += StringPrintf("d:%016llx,",
                              static_cast<unsigned long long>(bits));
          break;
        }
        case DataType::kInt64:
          out += StringPrintf("i:%lld,",
                              static_cast<long long>(v.int_value()));
          break;
        case DataType::kVarchar:
          out += "s:" + v.string_value() + ",";
          break;
      }
    }
    out += "\n";
  }
  return out;
}

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase(/*num_partitions=*/4, /*num_threads=*/3);
    NLQ_ASSERT_OK(db_->ExecuteCommand(
        "CREATE TABLE X (i BIGINT, X1 DOUBLE, X2 DOUBLE)"));
    // Single-row inserts: the partition layout (and with it every
    // deterministic count in the golden below) is fixed by insertion
    // order, so keep it explicit.
    for (int i = 0; i < 50; ++i) {
      NLQ_ASSERT_OK(db_->ExecuteCommand(
          StringPrintf("INSERT INTO X VALUES (%d, 1, 2)", i)));
    }
    // S has a selective column: X1 = i % 10, so "X1 > 6.5" keeps
    // exactly the 15 rows with i % 10 in {7, 8, 9}.
    NLQ_ASSERT_OK(db_->ExecuteCommand(
        "CREATE TABLE S (i BIGINT, X1 DOUBLE)"));
    for (int i = 0; i < 50; ++i) {
      NLQ_ASSERT_OK(db_->ExecuteCommand(
          StringPrintf("INSERT INTO S VALUES (%d, %d)", i, i % 10)));
    }
  }

  std::unique_ptr<Database> db_;
};

// ---------------------------------------------------------------------------
// Golden rendering
// ---------------------------------------------------------------------------

// Every count below is deterministic: 50 rows over 4 partitions give
// one decode batch (and one page) per morsel stream; the Gather
// pipeline-breaker drains its inputs fully before Limit cuts the
// output to 5, so the under-count appears at the Limit node only. The
// statement runs the compiled columnar pipeline: the simple comparison
// is pushed into the scan and the projection is one bytecode program.
constexpr const char* kGolden =
    "Limit (5 rows) [rows=5 batches=1 time=<T> self=<T>]\n"
    "└─ Gather (4 stream(s), 4 worker(s)) [rows=50 batches=1 time=<T> "
    "self=<T>]\n"
    "   └─ VectorProject (1 column(s); compiled, 1 op(s)) [rows=50 batches=4 "
    "time=<T> self=<T>]\n"
    "      └─ ColumnarScan (X: 50 rows, 4 partitions, 1 of 3 column(s), "
    "batch 1024, morsel 16384 (4 morsel(s)), cache off, filter: (X1 > 0)) "
    "[rows=50 batches=4 time=<T> self=<T>]\n"
    "Totals: rows=5 pages_decoded=4 cache(hits=0 misses=0 fallbacks=0) "
    "time=<T>\n";

constexpr const char* kAnalyzedQuery =
    "SELECT X1 FROM X WHERE X1 > 0 LIMIT 5";

TEST_F(ExplainAnalyzeTest, GoldenRedactedPlan) {
  NLQ_ASSERT_OK_AND_ASSIGN(std::string rendered,
                           db_->ExplainAnalyze(kAnalyzedQuery));
  EXPECT_EQ(exec::RedactTimings(rendered), kGolden);
}

TEST_F(ExplainAnalyzeTest, RedactedRenderingIsByteStable) {
  NLQ_ASSERT_OK_AND_ASSIGN(std::string first,
                           db_->ExplainAnalyze(kAnalyzedQuery));
  NLQ_ASSERT_OK_AND_ASSIGN(std::string second,
                           db_->ExplainAnalyze(kAnalyzedQuery));
  // Raw timings differ run to run; redacted output may not.
  EXPECT_EQ(exec::RedactTimings(first), exec::RedactTimings(second));
  // And the redaction really removed every volatile token.
  EXPECT_EQ(exec::RedactTimings(first).find("time=0"), std::string::npos);
  EXPECT_NE(first, exec::RedactTimings(first));
}

TEST_F(ExplainAnalyzeTest, StatementFormReturnsPlanColumn) {
  // EXPLAIN ANALYZE through plain Execute: one VARCHAR column named
  // "plan", one row per rendered line.
  NLQ_ASSERT_OK_AND_ASSIGN(
      ResultSet result,
      db_->Execute(std::string("EXPLAIN ANALYZE ") + kAnalyzedQuery));
  ASSERT_EQ(result.num_columns(), 1u);
  std::string joined;
  for (const auto& row : result.rows()) {
    joined += row[0].string_value();
    joined += "\n";
  }
  EXPECT_EQ(exec::RedactTimings(joined), kGolden);
}

// ---------------------------------------------------------------------------
// Exact actuals in the stats tree
// ---------------------------------------------------------------------------

TEST_F(ExplainAnalyzeTest, ScanActualsAreExact) {
  // Row-path actuals: force the interpreted plan (ParallelScan), the
  // shape this test pins down.
  QueryOptions interpreted;
  interpreted.force_interpreted = true;
  NLQ_ASSERT_OK(db_->Execute("SELECT X1 FROM X", interpreted).status());
  ASSERT_TRUE(db_->last_query_stats().has_value());
  const QueryStatsSnapshot& stats = *db_->last_query_stats();
  const OperatorStatsSnapshot* scan = FindOp(stats, "ParallelScan");
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->rows_out, 50u);
  EXPECT_EQ(scan->batches_out, 4u);  // one per morsel stream
  const OperatorStatsSnapshot* gather = FindOp(stats, "Gather");
  ASSERT_NE(gather, nullptr);
  EXPECT_EQ(gather->rows_out, 50u);
  EXPECT_EQ(stats.rows_returned, 50u);
  EXPECT_EQ(stats.pages_decoded, 4u);  // one page per partition
  // Every morsel was claimed by exactly one worker.
  uint64_t claims = 0;
  for (const uint64_t c : stats.worker_morsel_claims) claims += c;
  EXPECT_EQ(claims, 4u);
  EXPECT_GT(stats.wall_time_ns, 0u);
  EXPECT_NE(stats.query_id, 0u);
  // The interpreted plan vectorizes nothing.
  EXPECT_EQ(stats.rows_vectorized, 0u);
}

TEST_F(ExplainAnalyzeTest, VectorizedActualsAreExact) {
  // The default plan for the same statement is the compiled pipeline;
  // every scanned row passes through a vectorized operator exactly
  // once per pipeline stage (here: VectorProject).
  NLQ_ASSERT_OK(db_->Execute("SELECT X1 FROM X").status());
  ASSERT_TRUE(db_->last_query_stats().has_value());
  const QueryStatsSnapshot& stats = *db_->last_query_stats();
  const OperatorStatsSnapshot* scan = FindOp(stats, "ColumnarScan");
  const OperatorStatsSnapshot* project = FindOp(stats, "VectorProject");
  ASSERT_NE(scan, nullptr);
  ASSERT_NE(project, nullptr);
  EXPECT_EQ(scan->rows_out, 50u);
  EXPECT_EQ(project->rows_out, 50u);
  EXPECT_EQ(stats.rows_returned, 50u);
  EXPECT_EQ(stats.rows_vectorized, 50u);
}

TEST_F(ExplainAnalyzeTest, WhereSelectivityShowsAtTheFilter) {
  // Row-path shape: interpreted Filter above ParallelScan.
  QueryOptions interpreted;
  interpreted.force_interpreted = true;
  NLQ_ASSERT_OK(
      db_->Execute("SELECT X1 FROM S WHERE X1 > 6.5", interpreted).status());
  ASSERT_TRUE(db_->last_query_stats().has_value());
  const QueryStatsSnapshot& stats = *db_->last_query_stats();
  const OperatorStatsSnapshot* scan = FindOp(stats, "ParallelScan");
  const OperatorStatsSnapshot* filter = FindOp(stats, "Filter");
  ASSERT_NE(scan, nullptr);
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(scan->rows_out, 50u);    // pre-filter
  EXPECT_EQ(filter->rows_out, 15u);  // i % 10 in {7, 8, 9}
  EXPECT_EQ(stats.rows_returned, 15u);
}

TEST_F(ExplainAnalyzeTest, ColumnarPushdownSelectivityShowsAtTheScan) {
  NLQ_ASSERT_OK_AND_ASSIGN(
      ResultSet result, db_->Execute("SELECT count(*) FROM S WHERE X1 > 6.5"));
  EXPECT_EQ(result.At(0, 0).int_value(), 15);
  ASSERT_TRUE(db_->last_query_stats().has_value());
  const QueryStatsSnapshot& stats = *db_->last_query_stats();
  // The pushed-down comparison filters inside the columnar scan, so
  // the scan itself reports post-filter rows.
  const OperatorStatsSnapshot* scan = FindOp(stats, "ColumnarScan");
  const OperatorStatsSnapshot* agg = FindOp(stats, "ColumnarAggregate");
  ASSERT_NE(scan, nullptr);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(scan->rows_out, 15u);
  EXPECT_EQ(agg->rows_out, 1u);
}

TEST_F(ExplainAnalyzeTest, LimitEarlyExitUnderCounts) {
  NLQ_ASSERT_OK(db_->Execute("SELECT X1 FROM X LIMIT 5").status());
  ASSERT_TRUE(db_->last_query_stats().has_value());
  const QueryStatsSnapshot& stats = *db_->last_query_stats();
  const OperatorStatsSnapshot* limit = FindOp(stats, "Limit");
  const OperatorStatsSnapshot* gather = FindOp(stats, "Gather");
  ASSERT_NE(limit, nullptr);
  ASSERT_NE(gather, nullptr);
  EXPECT_EQ(limit->rows_out, 5u);
  // Gather is a pipeline breaker: it drained the full input before
  // Limit stopped pulling, so the under-count is visible as a drop
  // between adjacent operators.
  EXPECT_EQ(gather->rows_out, 50u);
  EXPECT_LT(limit->rows_out, gather->rows_out);
}

TEST_F(ExplainAnalyzeTest, ColumnarCacheCountersTrackWarmth) {
  const char* kSql = "SELECT nlq_list('triang', X1, X2) FROM X";
  NLQ_ASSERT_OK(db_->Execute(kSql).status());
  ASSERT_TRUE(db_->last_query_stats().has_value());
  const QueryStatsSnapshot cold = *db_->last_query_stats();
  EXPECT_GT(cold.pages_decoded, 0u);
  EXPECT_GT(cold.column_cache_misses, 0u);
  EXPECT_EQ(cold.column_cache_hits, 0u);

  NLQ_ASSERT_OK(db_->Execute(kSql).status());
  const QueryStatsSnapshot warm = *db_->last_query_stats();
  EXPECT_EQ(warm.column_cache_hits, cold.column_cache_misses);
  EXPECT_EQ(warm.column_cache_misses, 0u);
  EXPECT_EQ(warm.pages_decoded, 0u);  // served entirely from the cache

  // The analyzed rendering of the columnar plan carries the actuals.
  NLQ_ASSERT_OK_AND_ASSIGN(std::string rendered, db_->ExplainAnalyze(kSql));
  EXPECT_NE(rendered.find("ColumnarAggregate"), std::string::npos);
  EXPECT_NE(rendered.find("rows=1 "), std::string::npos);
}

// ---------------------------------------------------------------------------
// Grammar edges
// ---------------------------------------------------------------------------

TEST_F(ExplainAnalyzeTest, PlainExplainPlansWithoutExecuting) {
  NLQ_ASSERT_OK_AND_ASSIGN(ResultSet result,
                           db_->Execute("EXPLAIN SELECT X1 FROM X"));
  ASSERT_EQ(result.num_columns(), 1u);
  std::string joined;
  for (const auto& row : result.rows()) {
    joined += row[0].string_value();
    joined += "\n";
  }
  NLQ_ASSERT_OK_AND_ASSIGN(std::string direct,
                           db_->Explain("SELECT X1 FROM X"));
  EXPECT_EQ(joined, direct);
  // Plain EXPLAIN never executes: no actuals appear.
  EXPECT_EQ(joined.find("rows="), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, ExplainRejectsNonSelect) {
  auto create = db_->Execute("EXPLAIN CREATE TABLE Z (a DOUBLE)");
  ASSERT_FALSE(create.ok());
  EXPECT_NE(create.status().message().find("SELECT"), std::string::npos);
  auto analyze = db_->Execute("EXPLAIN ANALYZE INSERT INTO X VALUES (1, 1, 1)");
  ASSERT_FALSE(analyze.ok());
  auto bare = db_->Execute("EXPLAIN");
  ASSERT_FALSE(bare.ok());
}

// ---------------------------------------------------------------------------
// Inert instrumentation
// ---------------------------------------------------------------------------

std::unique_ptr<Database> MakeDatabaseWithStats(bool collect) {
  DatabaseOptions options;
  options.num_partitions = 4;
  options.num_threads = 3;
  options.collect_query_stats = collect;
  auto db = std::make_unique<Database>(options);
  EXPECT_TRUE(stats::RegisterAllStatsUdfs(&db->udfs()).ok());
  return db;
}

void FillDyadic(Database* db, size_t n) {
  NLQ_ASSERT_OK(db->ExecuteCommand(
      "CREATE TABLE D (i BIGINT, X1 DOUBLE, X2 DOUBLE)"));
  for (size_t r = 0; r < n; ++r) {
    const double x1 =
        static_cast<double>(static_cast<int64_t>((r * 37) % 41) - 20) +
        static_cast<double>((r * 13) % 128) / 128.0;
    const double x2 =
        static_cast<double>(static_cast<int64_t>((r * 29) % 43) - 21) +
        static_cast<double>((r * 17) % 128) / 128.0;
    NLQ_ASSERT_OK(db->ExecuteCommand(
        StringPrintf("INSERT INTO D VALUES (%zu, %.7f, %.7f)", r, x1, x2)));
  }
}

TEST(InertInstrumentationTest, StatsDoNotChangeAnyResultBit) {
  auto with = MakeDatabaseWithStats(true);
  auto without = MakeDatabaseWithStats(false);
  FillDyadic(with.get(), 300);
  FillDyadic(without.get(), 300);
  const char* kQueries[] = {
      "SELECT nlq_list('triang', X1, X2) FROM D",
      "SELECT nlq_list('full', X1, X2) FROM D WHERE 0 = 0",
      "SELECT count(*), sum(X1), avg(X2), min(X1), max(X2) FROM D",
      "SELECT X1 FROM D WHERE X1 > 0 LIMIT 7",
  };
  for (const char* sql : kQueries) {
    NLQ_ASSERT_OK_AND_ASSIGN(ResultSet instrumented, with->Execute(sql));
    NLQ_ASSERT_OK_AND_ASSIGN(ResultSet bare, without->Execute(sql));
    EXPECT_EQ(ExactSignature(instrumented), ExactSignature(bare)) << sql;
    EXPECT_TRUE(with->last_query_stats().has_value());
    EXPECT_FALSE(without->last_query_stats().has_value());
  }
}

/// Scalar UDF that sleeps per row — slow enough to time out
/// deterministically (same device as cancellation_test).
class SlowPassUdf : public udf::ScalarUdf {
 public:
  const std::string& name() const override {
    static const std::string kName = "slow_pass";
    return kName;
  }
  DataType return_type() const override { return DataType::kDouble; }
  Status CheckArity(size_t num_args) const override {
    if (num_args != 1) {
      return Status::InvalidArgument("slow_pass takes 1 argument");
    }
    return Status::OK();
  }
  StatusOr<Datum> Invoke(const std::vector<Datum>& args) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    return args[0];
  }
};

TEST(InertInstrumentationTest, StatsDoNotChangeStatusCodes) {
  const MetricsSnapshot before = Database::GetMetricsSnapshot();
  for (const bool collect : {true, false}) {
    auto db = MakeDatabaseWithStats(collect);
    NLQ_ASSERT_OK(db->udfs().RegisterScalar(std::make_unique<SlowPassUdf>()));
    gen::MixtureOptions options;
    options.n = 4000;
    options.d = 2;
    options.seed = 99;
    NLQ_ASSERT_OK(gen::GenerateDataSetTable(db.get(), "X", options).status());
    QueryOptions q;
    q.timeout_ms = 20;
    auto result = db->Execute("SELECT slow_pass(X1) FROM X", q);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << "collect_query_stats=" << collect;
  }
  // Outcome counters in the global registry tick regardless of
  // per-query stats collection.
  const MetricsSnapshot after = Database::GetMetricsSnapshot();
  EXPECT_GE(CounterOf(after, "queries.deadline_exceeded"),
            CounterOf(before, "queries.deadline_exceeded") + 2);
  EXPECT_GT(CounterOf(after, "queries.started"),
            CounterOf(before, "queries.started"));
}

TEST(InertInstrumentationTest, RegistryAccountsOutcomesAndLatency) {
  const MetricsSnapshot before = Database::GetMetricsSnapshot();
  auto db = MakeDatabaseWithStats(true);
  FillDyadic(db.get(), 50);
  NLQ_ASSERT_OK(db->Execute("SELECT X1 FROM D").status());
  const MetricsSnapshot after = Database::GetMetricsSnapshot();
  EXPECT_GE(CounterOf(after, "queries.ok"),
            CounterOf(before, "queries.ok") + 1);
  EXPECT_GE(CounterOf(after, "query.rows_returned"),
            CounterOf(before, "query.rows_returned") + 50);
  auto it = after.histograms.find("query.latency");
  ASSERT_NE(it, after.histograms.end());
  EXPECT_GT(it->second.count, 0u);
  EXPECT_GT(it->second.sum_nanos, 0u);
  // The snapshot serializes without crashing and mentions the metric.
  const std::string json = after.ToJson();
  EXPECT_NE(json.find("\"query.latency\""), std::string::npos);
  EXPECT_NE(json.find("\"queries.ok\""), std::string::npos);
}

}  // namespace
}  // namespace nlq::engine
