// Larger-than-RAM storage: a spilled table must be indistinguishable
// from the resident one to every query — bit-identical results across
// row/columnar paths, thread counts and kernel variants — while the
// buffer pool's MemoryTracker proves the storage layer stayed inside
// its frame budget. This is the acceptance suite for the compressed
// spill + buffer pool + readahead stack (DESIGN.md §12).

#include <gtest/gtest.h>

#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "engine/database.h"
#include "gen/datagen.h"
#include "stats/nlq_kernel.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "tests/test_util.h"

namespace nlq::engine {
namespace {

using storage::DataType;
using storage::Datum;

/// Bit-exact rendering of a result set (doubles as bit patterns).
std::string ExactSignature(const ResultSet& result) {
  std::string out;
  for (const auto& row : result.rows()) {
    for (const Datum& v : row) {
      if (v.is_null()) {
        out += "NULL,";
        continue;
      }
      switch (v.type()) {
        case DataType::kDouble: {
          uint64_t bits = 0;
          const double d = v.double_value();
          std::memcpy(&bits, &d, sizeof(bits));
          char buf[32];
          std::snprintf(buf, sizeof buf, "d:%016llx,",
                        static_cast<unsigned long long>(bits));
          out += buf;
          break;
        }
        case DataType::kInt64:
          out += "i:" + std::to_string(v.int_value()) + ",";
          break;
        case DataType::kVarchar:
          out += "s:" + v.string_value() + ",";
          break;
      }
    }
    out += "\n";
  }
  return out;
}

std::unique_ptr<Database> MakeDb(size_t partitions, size_t threads,
                                 uint64_t pool_bytes, uint64_t rows,
                                 size_t d, uint64_t seed = 4242) {
  DatabaseOptions options;
  options.num_partitions = partitions;
  options.num_threads = threads;
  options.buffer_pool_bytes = pool_bytes;
  auto db = std::make_unique<Database>(options);
  EXPECT_TRUE(stats::RegisterAllStatsUdfs(&db->udfs()).ok());
  gen::MixtureOptions gen_options;
  gen_options.n = rows;
  gen_options.d = d;
  gen_options.seed = seed;
  EXPECT_TRUE(gen::GenerateDataSetTable(db.get(), "X", gen_options).ok());
  return db;
}

std::string RunSignature(Database* db, const char* sql,
                         bool interpreted = false) {
  QueryOptions q;
  q.force_interpreted = interpreted;
  auto result = db->Execute(sql, q);
  EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
  if (!result.ok()) return "<error>";
  return ExactSignature(*result);
}

// The query mix covers every scanner the spill path rewired: the
// columnar aggregate fast path (nlq_list), plain columnar builtins,
// the compiled projection pipeline, and (forced) the interpreted row
// path.
const char* kQueries[] = {
    "SELECT nlq_list('full', X1, X2, X3) FROM X",
    "SELECT count(*), sum(X1), avg(X2), min(X3), max(X1) FROM X",
    "SELECT X1, X2 FROM X WHERE X1 > 0 LIMIT 20",
    "SELECT nlq_list('triang', X1, X2) FROM X WHERE X2 > -1000",
};

TEST(SpillEquivalenceTest, SpilledMatchesResidentBitExactEveryPath) {
  auto db = MakeDb(/*partitions=*/4, /*threads=*/3,
                   /*pool_bytes=*/storage::kPageSize * 16,
                   /*rows=*/20000, /*d=*/3);
  std::vector<std::string> resident, resident_row;
  for (const char* sql : kQueries) {
    resident.push_back(RunSignature(db.get(), sql));
    resident_row.push_back(RunSignature(db.get(), sql, /*interpreted=*/true));
  }

  NLQ_ASSERT_OK(db->SpillTable("X"));
  for (size_t i = 0; i < std::size(kQueries); ++i) {
    EXPECT_EQ(RunSignature(db.get(), kQueries[i]), resident[i])
        << kQueries[i];
    EXPECT_EQ(RunSignature(db.get(), kQueries[i], /*interpreted=*/true),
              resident_row[i])
        << kQueries[i] << " (interpreted)";
  }
  // The pool actually served the spilled scans.
  ASSERT_NE(db->buffer_pool(), nullptr);
  const storage::BufferPoolStats stats = db->buffer_pool()->GetStats();
  EXPECT_GT(stats.hits + stats.misses + stats.readahead_pages, 0u);
}

TEST(SpillEquivalenceTest, ThreadCountDoesNotChangeSpilledResults) {
  // Same data, same spill, 1 vs 3 workers: morsel boundaries depend
  // only on (partition, offset), so results must match bit for bit.
  auto db1 = MakeDb(4, 1, storage::kPageSize * 16, 20000, 3);
  auto db3 = MakeDb(4, 3, storage::kPageSize * 16, 20000, 3);
  NLQ_ASSERT_OK(db1->SpillTable("X"));
  NLQ_ASSERT_OK(db3->SpillTable("X"));
  for (const char* sql : kQueries) {
    EXPECT_EQ(RunSignature(db1.get(), sql), RunSignature(db3.get(), sql))
        << sql;
  }
}

TEST(SpillEquivalenceTest, KernelVariantsAreBitIdenticalOnSpilledScans) {
  auto db = MakeDb(4, 3, storage::kPageSize * 16, 20000, 4);
  NLQ_ASSERT_OK(db->SpillTable("X"));
  const char* kSql = "SELECT nlq_list('full', X1, X2, X3, X4) FROM X";

  stats::SetNlqKernelMode(stats::NlqKernelMode::kScalar);
  EXPECT_STREQ(stats::NlqKernelVariant(), "scalar");
  const std::string scalar = RunSignature(db.get(), kSql);

  stats::SetNlqKernelMode(stats::NlqKernelMode::kSimd);
  const std::string simd = RunSignature(db.get(), kSql);

  stats::SetNlqKernelMode(stats::NlqKernelMode::kAuto);
  EXPECT_EQ(scalar, simd);
}

TEST(SpillEquivalenceTest, SpilledTableIsReadOnlyAndSpillIsIdempotent) {
  auto db = MakeDb(4, 2, storage::kPageSize * 16, 5000, 2);
  NLQ_ASSERT_OK(db->SpillTable("X"));

  auto insert = db->Execute("INSERT INTO X VALUES (1, 2.0, 3.0)");
  ASSERT_FALSE(insert.ok());
  EXPECT_EQ(insert.status().code(), StatusCode::kNotSupported);
  // The error names the table and points at the resident path, not a
  // bare "not supported".
  const std::string message(insert.status().message());
  EXPECT_NE(message.find("INSERT into 'X'"), std::string::npos) << message;
  EXPECT_NE(message.find("spilled"), std::string::npos) << message;
  EXPECT_NE(message.find("DROP TABLE X"), std::string::npos) << message;

  // Re-spilling is a no-op, not an error; the data stays intact.
  NLQ_ASSERT_OK(db->SpillTable("X"));
  auto count = db->Execute("SELECT count(*) FROM X");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count->At(0, 0).int_value(), 5000);

  // Unknown tables still say NotFound.
  EXPECT_EQ(db->SpillTable("NOPE").code(), StatusCode::kNotFound);

  // DROP + CREATE resurrects a writable table under the same name.
  NLQ_ASSERT_OK(db->ExecuteCommand("DROP TABLE X"));
  NLQ_ASSERT_OK(db->ExecuteCommand("CREATE TABLE X (i BIGINT, X1 DOUBLE)"));
  NLQ_ASSERT_OK(db->ExecuteCommand("INSERT INTO X VALUES (1, 2.0)"));
}

TEST(SpillEquivalenceTest, ExplainAnalyzeAnnotatesSpilledCacheFallback) {
  auto db = MakeDb(4, 2, storage::kPageSize * 16, 5000, 2);
  NLQ_ASSERT_OK(db->SpillTable("X"));
  NLQ_ASSERT_OK_AND_ASSIGN(
      std::string rendered,
      db->ExplainAnalyze("SELECT nlq_list('triang', X1, X2) FROM X"));
  EXPECT_NE(rendered.find("cache=fallback"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("spilled"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("table X"), std::string::npos) << rendered;

  // The machine-readable side carries the same note.
  ASSERT_TRUE(db->last_query_stats().has_value());
  EXPECT_GE(db->last_query_stats()->column_cache_fallbacks, 1u);
  EXPECT_NE(db->last_query_stats()->column_cache_note.find("spilled"),
            std::string::npos);
  EXPECT_NE(db->last_query_stats()->ToJson().find("column_cache_note"),
            std::string::npos);
}

TEST(SpillEquivalenceTest, BudgetFallbackNoteNamesTheConsumer) {
  // Resident table, tiny memory budget: the cache fill (~480 KB for
  // two columns of 20k rows × 4 partitions) cannot fit in 100 KB, so
  // the scan must fall back AND say which consumer hit the budget.
  auto db = MakeDb(4, 2, storage::kPageSize * 16, 20000, 2);
  QueryOptions q;
  q.memory_limit = 100 * 1024;
  auto result = db->Execute("SELECT sum(X1) FROM X", q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(db->last_query_stats().has_value());
  const QueryStatsSnapshot& stats = *db->last_query_stats();
  EXPECT_GE(stats.column_cache_fallbacks, 1u);
  EXPECT_NE(stats.column_cache_note.find("decoded-column cache"),
            std::string::npos)
      << stats.column_cache_note;
  EXPECT_NE(stats.column_cache_note.find("table X"), std::string::npos)
      << stats.column_cache_note;
  EXPECT_NE(stats.column_cache_note.find("budget"), std::string::npos)
      << stats.column_cache_note;
}

TEST(SpillEquivalenceTest, TenTimesPoolBudgetScansWithBoundedMemory) {
  // The tentpole claim: a table ≥ 10× the pool budget streams through
  // a fixed frame set, answers bit-identically to the resident run,
  // and the pool's MemoryTracker peak proves the bound.
  const uint64_t kPool = storage::kPageSize * storage::BufferPool::kMinFrames;
  auto db = MakeDb(/*partitions=*/4, /*threads=*/3, kPool,
                   /*rows=*/350000, /*d=*/4);
  const char* kSql = "SELECT nlq_list('full', X1, X2, X3, X4) FROM X";
  const std::string resident = RunSignature(db.get(), kSql);

  NLQ_ASSERT_OK(db->SpillTable("X"));
  ASSERT_NE(db->buffer_pool(), nullptr);

  // The spilled image really is ≥ 10× the pool budget (mixture doubles
  // are incompressible, so plain blocks dominate).
  NLQ_ASSERT_OK_AND_ASSIGN(storage::PartitionedTable * table,
                           db->catalog().GetTable("X"));
  uint64_t spilled_bytes = 0;
  for (size_t p = 0; p < table->num_partitions(); ++p) {
    ASSERT_TRUE(table->partition(p).is_spilled());
    spilled_bytes += table->partition(p).spill()->compressed_bytes();
  }
  EXPECT_GE(spilled_bytes, 10 * db->buffer_pool()->budget_bytes())
      << "table too small to prove the larger-than-pool claim";

  EXPECT_EQ(RunSignature(db.get(), kSql), resident);

  // Frame memory never exceeded the budget (whole frames only).
  EXPECT_LE(db->buffer_pool()->tracker().peak(),
            db->buffer_pool()->budget_bytes());
  const storage::BufferPoolStats stats = db->buffer_pool()->GetStats();
  EXPECT_GT(stats.evictions, 0u);  // the working set had to turn over
  EXPECT_GT(stats.hits + stats.readahead_hits, 0u);
}

}  // namespace
}  // namespace nlq::engine
