// The online scenario maintained views exist for (ISSUE 8): concurrent
// writers streaming appends into disjoint partitions, a periodic model
// refresh served from the maintained view (O(delta) per refresh), and
// scoring readers consuming the latest model snapshot — all while the
// final model stays bit-identical to a from-scratch rescan of the same
// rows on a views-free database.
//
// Synchronization contract (the Database itself is NOT thread-safe):
// writers append through PartitionedTable::AppendRowToPartition, each
// owning one partition, under a shared lock — concurrent with each
// other (different Table objects), excluded from statements; the
// refresher takes the lock exclusively around each Database::Execute.
// Scoring readers never touch the database: they decode the latest
// published model snapshot under its own mutex. Run under TSan, this
// is the race check for the whole append + view-refresh + scoring
// stack; run anywhere, the bit-exactness assertions hold.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "engine/database.h"
#include "engine/exec/view_registry.h"
#include "stats/sufstats.h"
#include "storage/partitioned_table.h"
#include "tests/test_util.h"

namespace nlq::engine {
namespace {

using storage::Datum;
using storage::Row;

constexpr size_t kPartitions = 4;
constexpr size_t kInitialPerPartition = 300;
constexpr size_t kStreamPerPartition = 900;  // appended by the writers
constexpr const char* kModelSql = "SELECT nlq_list('triang', X1, X2) FROM T";

/// Deterministic dyadic cell, a pure function of (partition, row,
/// column): the writer streams and the oracle replay generate the
/// exact same rows without any shared state.
double CellValue(size_t p, size_t r, size_t c) {
  const int64_t k =
      static_cast<int64_t>((p * 7919 + r * 37 + c * 131 + 3) % 4096) - 2048;
  return static_cast<double>(k) / 256.0;
}

Row MakeRow(size_t p, size_t r) {
  return {Datum::Int64(static_cast<int64_t>(p * 1000000 + r)),
          Datum::Double(CellValue(p, r, 1)), Datum::Double(CellValue(p, r, 2))};
}

std::unique_ptr<Database> MakeDb(size_t threads, bool views) {
  DatabaseOptions options;
  options.num_partitions = kPartitions;
  options.num_threads = threads;
  options.morsel_rows = 256;
  options.enable_view_maintenance = views;
  auto db = std::make_unique<Database>(options);
  EXPECT_TRUE(stats::RegisterAllStatsUdfs(&db->udfs()).ok());
  return db;
}

void CreateT(Database* db) {
  NLQ_ASSERT_OK(
      db->ExecuteCommand("CREATE TABLE T (i BIGINT, X1 DOUBLE, X2 DOUBLE)"));
}

/// Appends rows [begin, end) of partition `p`'s stream.
void AppendStream(storage::PartitionedTable* table, size_t p, size_t begin,
                  size_t end) {
  for (size_t r = begin; r < end; ++r) {
    NLQ_ASSERT_OK(table->AppendRowToPartition(p, MakeRow(p, r)));
  }
}

TEST(ViewOnlineTest, ConcurrentAppendRefreshScoreStaysBitExact) {
  const size_t kThreads[] = {1, 2, 4};
  std::string baseline;
  for (const size_t threads : kThreads) {
    SCOPED_TRACE(StringPrintf("threads=%zu", threads));
    auto db = MakeDb(threads, /*views=*/true);
    CreateT(db.get());
    NLQ_ASSERT_OK_AND_ASSIGN(storage::PartitionedTable * table,
                             db->catalog().GetTable("T"));
    for (size_t p = 0; p < kPartitions; ++p) {
      AppendStream(table, p, 0, kInitialPerPartition);
    }

    std::shared_mutex db_mu;       // writers shared, statements exclusive
    std::mutex model_mu;           // guards the published snapshot
    std::string latest_model;      // packed SufStats of the last refresh
    std::atomic<bool> writers_done{false};
    std::atomic<uint64_t> refreshes{0};
    std::atomic<uint64_t> view_hits{0};
    std::atomic<uint64_t> models_scored{0};

    // One writer per partition, appending its stream in chunks.
    std::vector<std::thread> workers;
    for (size_t p = 0; p < kPartitions; ++p) {
      workers.emplace_back([&, p] {
        constexpr size_t kChunk = 64;
        for (size_t r = kInitialPerPartition; r < kStreamPerPartition;
             r += kChunk) {
          const size_t end = std::min(r + kChunk, kStreamPerPartition);
          std::shared_lock<std::shared_mutex> lock(db_mu);
          AppendStream(table, p, r, end);
        }
      });
    }

    // Periodic model refresh: every statement runs exclusively; the
    // maintained view turns each one into an O(delta) accumulate. At
    // least one refresh always runs (the seeding one), however fast
    // the writers drain.
    auto refresh_once = [&] {
      std::unique_lock<std::shared_mutex> lock(db_mu);
      auto result = db->Execute(kModelSql);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_TRUE(db->last_query_stats().has_value());
      view_hits.fetch_add(db->last_query_stats()->view_hits,
                          std::memory_order_relaxed);
      std::lock_guard<std::mutex> model_lock(model_mu);
      latest_model = result->At(0, 0).string_value();
    };
    workers.emplace_back([&] {
      do {
        refresh_once();
        refreshes.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      } while (!writers_done.load(std::memory_order_acquire));
    });

    // Scoring readers: consume whatever model is current. They touch
    // only the published snapshot, never the database. The stop flag
    // is raised only after a final model is published, so every reader
    // scores at least once before exiting.
    std::atomic<bool> stop_readers{false};
    std::vector<std::thread> readers;
    for (size_t i = 0; i < 2; ++i) {
      readers.emplace_back([&] {
        while (true) {
          const bool stopping = stop_readers.load(std::memory_order_acquire);
          std::string model;
          {
            std::lock_guard<std::mutex> lock(model_mu);
            model = latest_model;
          }
          if (!model.empty()) {
            auto decoded = stats::SufStats::FromPackedString(model);
            ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
            ASSERT_GT(decoded->n(), 0.0);
            models_scored.fetch_add(1, std::memory_order_relaxed);
          }
          if (stopping) break;
          std::this_thread::yield();
        }
      });
    }

    for (size_t p = 0; p < kPartitions; ++p) workers[p].join();
    writers_done.store(true, std::memory_order_release);
    workers.back().join();

    // The authoritative final refresh: a guaranteed view hit (the
    // refresher seeded the entry and nothing invalidated it since).
    refresh_once();
    stop_readers.store(true, std::memory_order_release);
    for (auto& t : readers) t.join();

    EXPECT_GE(refreshes.load(), 1u);
    EXPECT_GE(view_hits.load(), 1u);
    EXPECT_GE(models_scored.load(), 2u);

    // The final refresh saw every appended row.
    std::string final_model;
    {
      std::lock_guard<std::mutex> lock(model_mu);
      final_model = latest_model;
    }
    NLQ_ASSERT_OK_AND_ASSIGN(stats::SufStats final_stats,
                             stats::SufStats::FromPackedString(final_model));
    EXPECT_EQ(final_stats.n(),
              static_cast<double>(kPartitions * kStreamPerPartition));

    // Bit-exact against a from-scratch, views-free replay of the same
    // per-partition streams.
    auto oracle_db = MakeDb(threads, /*views=*/false);
    CreateT(oracle_db.get());
    NLQ_ASSERT_OK_AND_ASSIGN(storage::PartitionedTable * oracle_table,
                             oracle_db->catalog().GetTable("T"));
    for (size_t p = 0; p < kPartitions; ++p) {
      AppendStream(oracle_table, p, 0, kStreamPerPartition);
    }
    auto oracle = oracle_db->Execute(kModelSql);
    NLQ_ASSERT_OK(oracle.status());
    EXPECT_EQ(final_model, oracle->At(0, 0).string_value());

    // And across worker-thread counts: the same bytes every time.
    if (baseline.empty()) {
      baseline = final_model;
    } else {
      EXPECT_EQ(final_model, baseline);
    }
  }
}

// A spill landing in the middle of the online scenario (ISSUE 10):
// writers stream appends, a refresher serves the model from the
// maintained view, and then the table is spilled out from under both.
// From that point every refresh must either carry the explicit
// `view=ineligible (spilled)` plan note or be a correct full rescan —
// a stale pre-spill view answer is never acceptable. Run under TSan
// this interleaves append + view refresh + spill; run anywhere the
// bit-exactness assertions hold.
TEST(ViewOnlineTest, SpillMidStreamDegradesViewToRescanNeverStale) {
  auto db = MakeDb(/*threads=*/4, /*views=*/true);
  CreateT(db.get());
  NLQ_ASSERT_OK_AND_ASSIGN(storage::PartitionedTable * table,
                           db->catalog().GetTable("T"));
  for (size_t p = 0; p < kPartitions; ++p) {
    AppendStream(table, p, 0, kInitialPerPartition);
  }

  std::shared_mutex db_mu;  // writers shared, statements + spill exclusive
  std::atomic<bool> spilled{false};
  std::atomic<size_t> applied[kPartitions];
  for (auto& a : applied) a.store(kInitialPerPartition);

  // Writers stop at the first chunk boundary where they observe the
  // spill (checked under the shared lock, so a chunk can never be
  // mid-append while SpillTable holds the lock exclusively).
  std::vector<std::thread> writers;
  for (size_t p = 0; p < kPartitions; ++p) {
    writers.emplace_back([&, p] {
      constexpr size_t kChunk = 64;
      for (size_t r = kInitialPerPartition; r < kStreamPerPartition;
           r += kChunk) {
        const size_t end = std::min(r + kChunk, kStreamPerPartition);
        std::shared_lock<std::shared_mutex> lock(db_mu);
        if (spilled.load(std::memory_order_acquire)) return;
        AppendStream(table, p, r, end);
        applied[p].store(end, std::memory_order_release);
      }
    });
  }

  // Refresher: keeps serving the model across the spill. Post-spill
  // results are collected for the never-stale check; post-spill plans
  // must carry the ineligibility note.
  std::atomic<uint64_t> pre_spill_refreshes{0};
  std::vector<std::string> post_spill_models;
  std::thread refresher([&] {
    while (true) {
      bool was_spilled;
      std::string model;
      {
        std::unique_lock<std::shared_mutex> lock(db_mu);
        was_spilled = spilled.load(std::memory_order_acquire);
        auto result = db->Execute(kModelSql);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        model = result->At(0, 0).string_value();
        if (was_spilled) {
          auto plan = db->Explain(kModelSql);
          ASSERT_TRUE(plan.ok()) << plan.status().ToString();
          EXPECT_NE(plan->find("view=ineligible (spilled)"),
                    std::string::npos)
              << *plan;
        }
      }
      if (was_spilled) {
        post_spill_models.push_back(std::move(model));
        if (post_spill_models.size() >= 3) return;
      } else {
        pre_spill_refreshes.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });

  // The spiller strikes mid-stream (or, on a fast machine, after the
  // writers drained — the post-spill assertions hold either way).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::unique_lock<std::shared_mutex> lock(db_mu);
    NLQ_ASSERT_OK(db->SpillTable("T"));
    spilled.store(true, std::memory_order_release);
  }

  for (auto& w : writers) w.join();
  refresher.join();

  // Frozen table: all post-spill refreshes returned identical bytes.
  ASSERT_GE(post_spill_models.size(), 3u);
  for (const std::string& m : post_spill_models) {
    EXPECT_EQ(m, post_spill_models.front());
  }

  // Never stale: the post-spill model is bit-exact against a resident
  // views-free replay of exactly the rows that landed before the
  // spill (spilled == resident, PR-7's guarantee, carried through the
  // view layer's degrade path).
  auto oracle_db = MakeDb(/*threads=*/1, /*views=*/false);
  CreateT(oracle_db.get());
  NLQ_ASSERT_OK_AND_ASSIGN(storage::PartitionedTable * oracle_table,
                           oracle_db->catalog().GetTable("T"));
  size_t total_rows = 0;
  for (size_t p = 0; p < kPartitions; ++p) {
    const size_t rows = applied[p].load(std::memory_order_acquire);
    AppendStream(oracle_table, p, 0, rows);
    total_rows += rows;
  }
  auto oracle = oracle_db->Execute(kModelSql);
  NLQ_ASSERT_OK(oracle.status());
  EXPECT_EQ(post_spill_models.front(), oracle->At(0, 0).string_value());

  NLQ_ASSERT_OK_AND_ASSIGN(
      stats::SufStats frozen,
      stats::SufStats::FromPackedString(post_spill_models.front()));
  EXPECT_EQ(frozen.n(), static_cast<double>(total_rows));
}

}  // namespace
}  // namespace nlq::engine
