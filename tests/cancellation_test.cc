#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "engine/database.h"
#include "gen/datagen.h"
#include "tests/test_util.h"
#include "udf/udf.h"

namespace nlq::engine {
namespace {

using storage::DataType;
using storage::Datum;

/// Rows the slow UDF has processed across all queries — how tests
/// observe that a cancelled/timed-out query did NOT run to completion.
std::atomic<uint64_t> g_slow_rows{0};

/// Scalar UDF that sleeps per row: turns any scan into a query slow
/// enough to cancel or time out deterministically.
class SlowPassUdf : public udf::ScalarUdf {
 public:
  const std::string& name() const override {
    static const std::string kName = "slow_pass";
    return kName;
  }
  DataType return_type() const override { return DataType::kDouble; }
  Status CheckArity(size_t num_args) const override {
    if (num_args != 1) {
      return Status::InvalidArgument("slow_pass takes 1 argument");
    }
    return Status::OK();
  }
  StatusOr<Datum> Invoke(const std::vector<Datum>& args) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    g_slow_rows.fetch_add(1, std::memory_order_relaxed);
    return args[0];
  }
};

constexpr uint64_t kRows = 4000;

class CancellationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = nlq::testing::MakeTestDatabase(/*num_partitions=*/4);
    NLQ_ASSERT_OK(db_->udfs().RegisterScalar(std::make_unique<SlowPassUdf>()));
    gen::MixtureOptions options;
    options.n = kRows;
    options.d = 2;
    options.seed = 99;
    NLQ_ASSERT_OK(gen::GenerateDataSetTable(db_.get(), "X", options).status());
    g_slow_rows = 0;
  }

  std::unique_ptr<Database> db_;
};

// kRows * 50us of sleep ≈ 200 ms of work (divided by the worker
// count); a deadline tens of milliseconds out always fires first.
constexpr const char* kSlowQuery = "SELECT slow_pass(X1) FROM X";

TEST_F(CancellationTest, DeadlineExceededWithoutCompleting) {
  QueryOptions q;
  q.timeout_ms = 20;
  auto result = db_->Execute(kSlowQuery, q);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(g_slow_rows.load(), kRows) << "query ran to completion anyway";

  // The engine stays usable: the next statement starts clean.
  auto after = db_->Execute("SELECT X1 FROM X");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().num_rows(), kRows);
}

TEST_F(CancellationTest, DatabaseDefaultTimeoutApplies) {
  DatabaseOptions options;
  options.num_partitions = 4;
  options.default_timeout_ms = 20;
  Database db(options);
  NLQ_ASSERT_OK(db.udfs().RegisterScalar(std::make_unique<SlowPassUdf>()));
  gen::MixtureOptions gen_options;
  gen_options.n = kRows;
  gen_options.d = 2;
  gen_options.seed = 99;
  NLQ_ASSERT_OK(gen::GenerateDataSetTable(&db, "X", gen_options).status());

  auto result = db.Execute(kSlowQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  // timeout_ms = 0 overrides the database default to "no deadline".
  QueryOptions no_deadline;
  no_deadline.timeout_ms = 0;
  auto full = db.Execute(kSlowQuery, no_deadline);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full.value().num_rows(), kRows);
}

TEST_F(CancellationTest, CancelFromAnotherThread) {
  // The canceller watches for the statement to start (last_query_id
  // becomes nonzero), then cancels it mid-flight.
  Status cancel_status;
  std::thread canceller([&] {
    while (db_->last_query_id() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    cancel_status = db_->Cancel(db_->last_query_id());
  });
  auto result = db_->Execute(kSlowQuery);
  canceller.join();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  NLQ_EXPECT_OK(cancel_status);
  EXPECT_LT(g_slow_rows.load(), kRows);

  auto after = db_->Execute("SELECT X1 FROM X");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().num_rows(), kRows);
}

TEST_F(CancellationTest, CancelUnknownIdReturnsNotFound) {
  EXPECT_EQ(db_->Cancel(424242).code(), StatusCode::kNotFound);
  // A finished query is no longer cancellable either.
  NLQ_ASSERT_OK(db_->Execute("SELECT X1 FROM X").status());
  EXPECT_EQ(db_->Cancel(db_->last_query_id()).code(), StatusCode::kNotFound);
}

TEST_F(CancellationTest, MemoryBudgetStopsRunawayQuery) {
  QueryOptions q;
  q.memory_limit = 4096;  // far below kRows of materialized rows
  auto result = db_->Execute("SELECT X1, X2 FROM X", q);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);

  // Unlimited (the default) succeeds, and the engine is clean.
  auto full = db_->Execute("SELECT X1, X2 FROM X");
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full.value().num_rows(), kRows);
}

TEST_F(CancellationTest, UdafHeapChargedAgainstBudget) {
  // Each aggregate-UDF partial allocates a 64 KB heap segment; a
  // 16 KB budget cannot admit even one.
  QueryOptions q;
  q.memory_limit = 16 * 1024;
  auto result = db_->Execute("SELECT nlq_list('triang', X1, X2) FROM X", q);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);

  QueryOptions roomy;
  roomy.memory_limit = 64 * 1024 * 1024;
  auto ok = db_->Execute("SELECT nlq_list('triang', X1, X2) FROM X", roomy);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().num_rows(), 1u);
}

TEST_F(CancellationTest, ColumnCacheFallsBackToStreamingUnderBudget) {
  // kRows doubles are ~32 KB of decoded column per dimension: a 16 KB
  // budget cannot admit the cache fill, but the scan falls back to
  // streaming decode instead of failing — and the answer matches the
  // unlimited run exactly.
  auto unlimited = db_->QueryDouble("SELECT SUM(X1) FROM X");
  ASSERT_TRUE(unlimited.ok()) << unlimited.status().ToString();

  QueryOptions q;
  q.memory_limit = 16 * 1024;
  auto budgeted = db_->Execute("SELECT SUM(X1) FROM X", q);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status().ToString();
  ASSERT_EQ(budgeted.value().num_rows(), 1u);
  EXPECT_EQ(budgeted.value().GetDouble(0, 0),
            unlimited.value());  // bitwise: same scan order
}

TEST_F(CancellationTest, LifecycleOptionsDoNotPerturbResults) {
  // A generous deadline and budget must leave successful results
  // bit-identical to an unconstrained run, across thread counts.
  std::string baseline;
  for (const size_t threads : {1u, 2u, 4u}) {
    auto db = nlq::testing::MakeTestDatabase(4, threads);
    gen::MixtureOptions options;
    options.n = kRows;
    options.d = 2;
    options.seed = 99;
    NLQ_ASSERT_OK(gen::GenerateDataSetTable(db.get(), "X", options).status());
    QueryOptions q;
    q.timeout_ms = 60'000;
    q.memory_limit = 256 * 1024 * 1024;
    auto result = db->Execute("SELECT nlq_list('triang', X1, X2) FROM X", q);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result.value().num_rows(), 1u);
    const std::string got = result.value().rows()[0][0].string_value();
    if (baseline.empty()) {
      baseline = got;
    } else {
      EXPECT_EQ(got, baseline) << "results diverged at " << threads
                               << " threads";
    }
  }
}

// ---------------------------------------------------------------------------
// The registration-ordering guarantee (see Database::Cancel): a
// statement's cancel token is registered BEFORE its id is published
// through last_query_id(). These tests race the canceller into the
// narrow window right after publication, where the statement may not
// have reached its first cancellation poll yet.
// ---------------------------------------------------------------------------

TEST_F(CancellationTest, CancelRightAfterIdPublishedNeverNotFound) {
  // Repeat to stress the startup window: the canceller fires the
  // instant it sees a fresh id, often before the first morsel runs.
  // Before the ordering fix, this intermittently hit NotFound (id
  // published, token not yet registered) and the statement ran to
  // completion despite the "successful" cancel attempt.
  for (int round = 0; round < 12; ++round) {
    const uint64_t prev_id = db_->last_query_id();
    Status cancel_status = Status::Internal("canceller never fired");
    std::thread canceller([&] {
      while (db_->last_query_id() == prev_id) {
        std::this_thread::yield();
      }
      cancel_status = db_->Cancel(db_->last_query_id());
    });
    auto result = db_->Execute(kSlowQuery);
    canceller.join();

    NLQ_EXPECT_OK(cancel_status);
    ASSERT_FALSE(result.ok()) << "round " << round;
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
        << "round " << round;
  }

  auto after = db_->Execute("SELECT X1 FROM X");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().num_rows(), kRows);
}

TEST_F(CancellationTest, PreFlippedTokenCancelsAtFirstPoll) {
  // A token flipped before Execute even starts models the server's
  // pending_cancel (cancel arrives while the statement is queued in
  // admission): the statement must die at its first poll, not run.
  QueryOptions q;
  q.cancel_token = std::make_shared<std::atomic<bool>>(true);
  auto result = db_->Execute(kSlowQuery, q);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_LT(g_slow_rows.load(), kRows) << "statement ran to completion";

  // The token is externally owned and one statement's cancellation
  // must not leak: a fresh statement with its own (unflipped) token
  // runs normally.
  QueryOptions clean;
  clean.cancel_token = std::make_shared<std::atomic<bool>>(false);
  auto after = db_->Execute("SELECT X1 FROM X", clean);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().num_rows(), kRows);
}

}  // namespace
}  // namespace nlq::engine
