// Chaos tests for the server front end: inject faults at the three
// server failpoints (server_accept, server_read, server_write) and
// prove that sessions degrade INDEPENDENTLY — a fault on one
// connection never takes down the listener, other established
// sessions, or a later graceful shutdown.
//
// Caveat baked into every test here: client and server live in one
// process and share the frame I/O code in server/protocol.cc, so an
// armed server_read/server_write fault can fire on either side of the
// victim connection. The tests therefore keep bystander sessions IDLE
// while a fault is armed, drive all traffic through the victim until
// the fault exhausts, then disarm and check the bystanders. Whichever
// side the fault hit, the contract is the same: only the victim
// degrades.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "server/client.h"
#include "server/server.h"
#include "tests/test_util.h"

namespace nlq::server {
namespace {

using ::nlq::testing::MakeTestDatabase;

class ServerChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::BuiltWithFailpoints()) {
      GTEST_SKIP() << "build lacks NLQ_FAILPOINTS; fault sites compiled out";
    }
    failpoint::DeactivateAll();
    db_ = MakeTestDatabase();
    NLQ_ASSERT_OK(db_->ExecuteCommand("CREATE TABLE t (i BIGINT, x DOUBLE)"));
  NLQ_ASSERT_OK(db_->ExecuteCommand(
      "INSERT INTO t VALUES (1, 1.5), (2, 2.5), (3, 3.5)"));
    ServerOptions options;
    options.port = 0;
    options.io_timeout_ms = 2'000;
    server_ = std::make_unique<Server>(db_.get(), options);
    NLQ_ASSERT_OK(server_->Start());
  }

  void TearDown() override {
    failpoint::DeactivateAll();
    if (server_ != nullptr) {
      // Graceful shutdown must still work after any injected chaos.
      server_->Shutdown();
    }
  }

  Status ConnectClient(NlqClient* client) {
    return client->Connect("127.0.0.1", server_->port(), /*timeout_ms=*/2'000);
  }

  /// Runs one statement and checks the answer — the per-session
  /// health probe.
  void ExpectSessionServed(NlqClient* client) {
    NLQ_ASSERT_OK_AND_ASSIGN(engine::ResultSet rs,
                             client->Query("SELECT SUM(x) FROM t"));
    ASSERT_EQ(rs.num_rows(), 1u);
    EXPECT_EQ(rs.GetDouble(0, 0), 7.5);
  }

  /// A brand-new connection still gets served — the listener is alive.
  void ExpectServerHealthy() {
    NlqClient fresh;
    NLQ_ASSERT_OK(ConnectClient(&fresh));
    ExpectSessionServed(&fresh);
    fresh.Goodbye();
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<Server> server_;
};

// ---------------------------------------------------------------------------
// server_accept: a fault while accepting drops that one connection;
// the listener and established sessions survive.
// ---------------------------------------------------------------------------

TEST_F(ServerChaosTest, AcceptFaultDropsOnlyTheNewConnection) {
  NlqClient established;
  NLQ_ASSERT_OK(ConnectClient(&established));

  failpoint::Activate("server_accept", Status::IOError("injected accept"),
                      /*skip=*/0, /*fire_count=*/3);
  // Each victim connects at TCP level (the kernel completes the
  // handshake from the backlog) but the server drops the connection
  // before the HELLO reply, so Connect fails cleanly.
  int dropped = 0;
  for (int i = 0; i < 3; ++i) {
    NlqClient victim;
    if (!ConnectClient(&victim).ok()) ++dropped;
  }
  EXPECT_EQ(dropped, 3);
  EXPECT_GE(failpoint::HitCount("server_accept"), 3);
  failpoint::Deactivate("server_accept");

  // The established session never noticed, and new connections work
  // again once the fault clears.
  ExpectSessionServed(&established);
  established.Goodbye();
  ExpectServerHealthy();
}

// ---------------------------------------------------------------------------
// server_read: a fault on the victim's request stream kills at most
// that session; bystanders opened beforehand keep working after the
// fault exhausts.
// ---------------------------------------------------------------------------

TEST_F(ServerChaosTest, ReadFaultDegradesOnlyTheVictimSession) {
  NlqClient bystander_a;
  NlqClient bystander_b;
  NLQ_ASSERT_OK(ConnectClient(&bystander_a));
  NLQ_ASSERT_OK(ConnectClient(&bystander_b));

  NlqClient victim;
  NLQ_ASSERT_OK(ConnectClient(&victim));

  failpoint::Activate("server_read", Status::IOError("injected read"),
                      /*skip=*/0, /*fire_count=*/1);
  // Only the victim does I/O while the fault is armed, so the single
  // fire lands on the victim connection — on the server's read of the
  // request or the client's read of the reply; either way the victim
  // observes a failure or a dead stream, nobody else does.
  auto result = victim.Query("SELECT COUNT(*) FROM t");
  EXPECT_TRUE(!result.ok() || !victim.connected() ||
              failpoint::HitCount("server_read") >= 1);
  // Drive until the fault has definitely fired, then disarm.
  for (int i = 0; i < 5 && failpoint::HitCount("server_read") < 1; ++i) {
    auto ignored = victim.Query("SELECT COUNT(*) FROM t");
  }
  EXPECT_GE(failpoint::HitCount("server_read"), 1);
  failpoint::Deactivate("server_read");

  // Both bystanders' sessions are intact and the listener is healthy.
  ExpectSessionServed(&bystander_a);
  ExpectSessionServed(&bystander_b);
  bystander_a.Goodbye();
  bystander_b.Goodbye();
  ExpectServerHealthy();
}

// ---------------------------------------------------------------------------
// server_write: a fault writing the victim's reply closes that
// session cleanly; its admission ticket is still released, so nothing
// leaks into shutdown accounting.
// ---------------------------------------------------------------------------

TEST_F(ServerChaosTest, WriteFaultClosesVictimAndReleasesItsSlot) {
  AdmissionOptions tight;
  tight.max_concurrent_statements = 1;
  ServerOptions options;
  options.port = 0;
  options.io_timeout_ms = 2'000;
  options.admission = tight;
  auto tight_server = std::make_unique<Server>(db_.get(), options);
  NLQ_ASSERT_OK(tight_server->Start());

  NlqClient bystander;
  NLQ_ASSERT_OK(
      bystander.Connect("127.0.0.1", tight_server->port(), 2'000));

  NlqClient victim;
  NLQ_ASSERT_OK(victim.Connect("127.0.0.1", tight_server->port(), 2'000));

  failpoint::Activate("server_write", Status::IOError("injected write"),
                      /*skip=*/0, /*fire_count=*/1);
  // The fire lands on the victim's request write or its reply write;
  // in both cases the victim's stream dies and the statement's ticket
  // (if admitted) is released afterwards.
  auto result = victim.Query("SELECT SUM(x) FROM t");
  for (int i = 0; i < 5 && failpoint::HitCount("server_write") < 1; ++i) {
    auto ignored = victim.Query("SELECT SUM(x) FROM t");
  }
  EXPECT_GE(failpoint::HitCount("server_write"), 1);
  failpoint::Deactivate("server_write");

  // With max_concurrent_statements=1, the bystander can only run if
  // the victim's slot was released — a leaked ticket would wedge this
  // query in the admission queue until its wait deadline.
  NLQ_ASSERT_OK_AND_ASSIGN(engine::ResultSet rs,
                           bystander.Query("SELECT SUM(x) FROM t"));
  EXPECT_EQ(rs.GetDouble(0, 0), 7.5);
  bystander.Goodbye();

  EXPECT_EQ(tight_server->admission().in_flight(), 0u);
  tight_server->Shutdown();
}

// ---------------------------------------------------------------------------
// Sustained chaos: a burst of transient read faults across many
// short-lived sessions, then the server is fully healthy and drains
// cleanly (TearDown's Shutdown).
// ---------------------------------------------------------------------------

TEST_F(ServerChaosTest, TransientFaultBurstLeavesServerServable) {
  failpoint::Activate("server_read", Status::IOError("injected burst"),
                      /*skip=*/2, /*fire_count=*/6);
  int served = 0;
  for (int i = 0; i < 12; ++i) {
    NlqClient client;
    if (!ConnectClient(&client).ok()) continue;
    auto result = client.Query("SELECT COUNT(*) FROM t");
    if (result.ok() && result->GetDouble(0, 0) == 3.0) ++served;
    client.Goodbye();
  }
  failpoint::Deactivate("server_read");
  // The faults were bounded, so most sessions got through; and the
  // exact survivors aside, the server must be fully healthy now.
  EXPECT_GT(served, 0);
  ExpectServerHealthy();
  EXPECT_EQ(server_->admission().in_flight(), 0u);
}

}  // namespace
}  // namespace nlq::server
