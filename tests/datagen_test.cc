#include <gtest/gtest.h>

#include <cmath>

#include "gen/datagen.h"
#include "stats/miner.h"
#include "tests/test_util.h"

namespace nlq::gen {
namespace {

TEST(DataGenTest, GeneratesRequestedRowCount) {
  auto db = nlq::testing::MakeTestDatabase();
  MixtureOptions options;
  options.n = 1234;
  options.d = 3;
  NLQ_ASSERT_OK_AND_ASSIGN(uint64_t rows,
                           GenerateDataSetTable(db.get(), "X", options));
  EXPECT_EQ(rows, 1234u);
  NLQ_ASSERT_OK_AND_ASSIGN(double count,
                           db->QueryDouble("SELECT count(*) FROM X"));
  EXPECT_DOUBLE_EQ(count, 1234.0);
}

TEST(DataGenTest, SchemaMatchesOptions) {
  auto db = nlq::testing::MakeTestDatabase();
  MixtureOptions options;
  options.n = 10;
  options.d = 2;
  options.with_y = true;
  NLQ_ASSERT_OK(GenerateDataSetTable(db.get(), "XY", options).status());
  auto table = db->catalog().GetTable("XY");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->schema().num_columns(), 4u);  // i, X1, X2, Y
  EXPECT_TRUE((*table)->schema().HasColumn("Y"));
}

TEST(DataGenTest, ReplacesExistingTable) {
  auto db = nlq::testing::MakeTestDatabase();
  MixtureOptions options;
  options.n = 50;
  options.d = 2;
  NLQ_ASSERT_OK(GenerateDataSetTable(db.get(), "X", options).status());
  options.n = 70;
  NLQ_ASSERT_OK(GenerateDataSetTable(db.get(), "X", options).status());
  NLQ_ASSERT_OK_AND_ASSIGN(double count,
                           db->QueryDouble("SELECT count(*) FROM X"));
  EXPECT_DOUBLE_EQ(count, 70.0);
}

TEST(DataGenTest, DeterministicForSeed) {
  MixtureOptions options;
  options.n = 100;
  options.d = 4;
  options.seed = 77;
  const auto a = GeneratePoints(options);
  const auto b = GeneratePoints(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < 4; ++j) EXPECT_EQ(a[i][j], b[i][j]);
  }
  options.seed = 78;
  const auto c = GeneratePoints(options);
  EXPECT_NE(a[0][0], c[0][0]);
}

TEST(DataGenTest, MixtureStatisticsPlausible) {
  // Means in [0,100], sigma=10, 15% noise: the overall per-dimension
  // mean should land well inside [20, 80] and stddev should be large
  // (cluster spread dominates sigma).
  MixtureOptions options;
  options.n = 20000;
  options.d = 3;
  options.seed = 99;
  const auto points = GeneratePoints(options);
  for (size_t a = 0; a < 3; ++a) {
    double sum = 0, sum2 = 0;
    for (const auto& p : points) {
      sum += p[a];
      sum2 += p[a] * p[a];
    }
    const double mean = sum / points.size();
    const double var = sum2 / points.size() - mean * mean;
    EXPECT_GT(mean, 10.0);
    EXPECT_LT(mean, 90.0);
    EXPECT_GT(std::sqrt(var), 10.0);  // more spread than one component
  }
}

TEST(DataGenTest, NoiseFractionRoughlyRespected) {
  MixtureOptions options;
  options.n = 20000;
  options.d = 2;
  options.noise_fraction = 0.15;
  MixtureGenerator generator(options);
  std::vector<double> x(2);
  size_t noise = 0;
  for (uint64_t i = 0; i < options.n; ++i) {
    if (generator.NextPoint(x.data(), nullptr) < 0) ++noise;
  }
  const double fraction = static_cast<double>(noise) / options.n;
  EXPECT_NEAR(fraction, 0.15, 0.01);
}

TEST(DataGenTest, YFollowsLinearModel) {
  MixtureOptions options;
  options.n = 5000;
  options.d = 3;
  options.with_y = true;
  options.y_noise_stddev = 0.0;  // exact linear target
  MixtureGenerator generator(options);
  const linalg::Vector beta = generator.true_beta();
  std::vector<double> x(3);
  double y = 0;
  for (int i = 0; i < 100; ++i) {
    generator.NextPoint(x.data(), &y);
    double expect = beta[0];
    for (size_t a = 0; a < 3; ++a) expect += beta[a + 1] * x[a];
    EXPECT_NEAR(y, expect, 1e-9);
  }
}

TEST(DataGenTest, RegressionOnGeneratedDataRecoversBeta) {
  auto db = nlq::testing::MakeTestDatabase();
  MixtureOptions options;
  options.n = 8000;
  options.d = 3;
  options.with_y = true;
  options.y_noise_stddev = 1.0;
  options.seed = 123;
  NLQ_ASSERT_OK(GenerateDataSetTable(db.get(), "X", options).status());
  MixtureGenerator generator(options);  // same seed -> same beta

  stats::WarehouseMiner miner(db.get());
  NLQ_ASSERT_OK_AND_ASSIGN(
      stats::LinearRegressionModel model,
      miner.BuildLinearRegression("X", stats::DimensionColumns(3), "Y",
                                  stats::ComputeVia::kUdfList));
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(model.beta[i], generator.true_beta()[i], 0.05) << i;
  }
}

TEST(DataGenTest, ClusterMeansInRange) {
  MixtureOptions options;
  options.d = 5;
  MixtureGenerator generator(options);
  const auto& means = generator.cluster_means();
  EXPECT_EQ(means.rows(), options.num_clusters);
  for (size_t j = 0; j < means.rows(); ++j) {
    for (size_t a = 0; a < 5; ++a) {
      EXPECT_GE(means(j, a), 0.0);
      EXPECT_LT(means(j, a), 100.0);
    }
  }
}


TEST(SplitDataSetTest, PartitionsByIdRule) {
  auto db = nlq::testing::MakeTestDatabase();
  MixtureOptions options;
  options.n = 1000;
  options.d = 2;
  NLQ_ASSERT_OK(GenerateDataSetTable(db.get(), "X", options).status());
  NLQ_ASSERT_OK_AND_ASSIGN(
      auto counts, SplitDataSetTable(db.get(), "X", "TR", "TE", 5, 0));
  EXPECT_EQ(counts.first, 800u);
  EXPECT_EQ(counts.second, 200u);
  // Disjoint and exhaustive.
  NLQ_ASSERT_OK_AND_ASSIGN(double overlap,
                           db->QueryDouble(
                               "SELECT count(*) FROM TR WHERE i % 5 = 0"));
  EXPECT_DOUBLE_EQ(overlap, 0.0);
  NLQ_ASSERT_OK_AND_ASSIGN(double test_rule,
                           db->QueryDouble(
                               "SELECT count(*) FROM TE WHERE i % 5 <> 0"));
  EXPECT_DOUBLE_EQ(test_rule, 0.0);
}

TEST(SplitDataSetTest, ReplacesAndValidates) {
  auto db = nlq::testing::MakeTestDatabase();
  MixtureOptions options;
  options.n = 100;
  options.d = 1;
  NLQ_ASSERT_OK(GenerateDataSetTable(db.get(), "X", options).status());
  NLQ_ASSERT_OK(SplitDataSetTable(db.get(), "X", "TR", "TE").status());
  NLQ_ASSERT_OK(SplitDataSetTable(db.get(), "X", "TR", "TE").status());
  EXPECT_FALSE(SplitDataSetTable(db.get(), "X", "A", "B", 1, 0).ok());
  EXPECT_FALSE(SplitDataSetTable(db.get(), "X", "A", "B", 5, 9).ok());
  EXPECT_FALSE(SplitDataSetTable(db.get(), "MISSING", "A", "B").ok());
}

}  // namespace
}  // namespace nlq::gen
