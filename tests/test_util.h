#ifndef NLQ_TESTS_TEST_UTIL_H_
#define NLQ_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "stats/scoring.h"
#include "stats/sufstats.h"

namespace nlq::testing {

/// Creates a Database with all stats UDFs registered.
inline std::unique_ptr<engine::Database> MakeTestDatabase(
    size_t num_partitions = 4, size_t num_threads = 0) {
  engine::DatabaseOptions options;
  options.num_partitions = num_partitions;
  options.num_threads = num_threads;
  auto db = std::make_unique<engine::Database>(options);
  const Status s = stats::RegisterAllStatsUdfs(&db->udfs());
  EXPECT_TRUE(s.ok()) << s.ToString();
  return db;
}

/// Computes SufStats directly from in-memory points (the reference
/// implementation tests compare everything against).
inline stats::SufStats ReferenceStats(
    const std::vector<std::vector<double>>& points, stats::MatrixKind kind) {
  if (points.empty()) return stats::SufStats(0, kind);
  stats::SufStats stats(points[0].size(), kind);
  for (const auto& p : points) stats.Update(p.data());
  return stats;
}

/// gtest-friendly Status assertions.
#define NLQ_ASSERT_OK(expr)                                 \
  do {                                                      \
    const ::nlq::Status _s = (expr);                        \
    ASSERT_TRUE(_s.ok()) << "status: " << _s.ToString();    \
  } while (0)

#define NLQ_EXPECT_OK(expr)                                 \
  do {                                                      \
    const ::nlq::Status _s = (expr);                        \
    EXPECT_TRUE(_s.ok()) << "status: " << _s.ToString();    \
  } while (0)

/// Asserts a StatusOr is OK and moves its value into `lhs`.
#define NLQ_ASSERT_OK_AND_ASSIGN(lhs, expr)                        \
  auto NLQ_STATUS_CONCAT_(_assert_statusor, __LINE__) = (expr);    \
  ASSERT_TRUE(NLQ_STATUS_CONCAT_(_assert_statusor, __LINE__).ok()) \
      << NLQ_STATUS_CONCAT_(_assert_statusor, __LINE__).status().ToString(); \
  lhs = std::move(NLQ_STATUS_CONCAT_(_assert_statusor, __LINE__)).value()

}  // namespace nlq::testing

#endif  // NLQ_TESTS_TEST_UTIL_H_
