#ifndef NLQ_COMMON_MEMORY_TRACKER_H_
#define NLQ_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace nlq {

/// Per-query memory accountant. Execution-time consumers of unbounded
/// memory — UDF heap segments, hash-aggregate tables, sort/gather row
/// buffers, the decoded-column cache — charge their allocations here;
/// a charge that would push the total past the budget fails with
/// kResourceExhausted and the query unwinds cleanly instead of growing
/// without bound (the in-DBMS safety argument of the paper: user code
/// on server threads must degrade into a query error, never an
/// engine crash).
///
/// Charges are approximate (container headers and allocator slack are
/// estimated, not measured) and deliberately conservative. All methods
/// are thread-safe: parallel morsel drains charge concurrently.
class MemoryTracker {
 public:
  /// `limit_bytes` == 0 means unlimited (usage is still tracked).
  explicit MemoryTracker(uint64_t limit_bytes = 0) : limit_(limit_bytes) {}

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  uint64_t limit() const { return limit_; }
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// Charges `bytes` against the budget. On overflow the charge is
  /// rolled back and kResourceExhausted names `what` (e.g. "aggregate
  /// UDF heap segment") plus the would-be total vs the limit.
  Status Charge(uint64_t bytes, const char* what);

  /// Non-failing variant for callers with a fallback path (the
  /// decoded-column cache): returns false and charges nothing when the
  /// budget would overflow.
  bool TryCharge(uint64_t bytes);

  /// Returns previously charged bytes to the budget.
  void Release(uint64_t bytes);

 private:
  const uint64_t limit_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
};

}  // namespace nlq

#endif  // NLQ_COMMON_MEMORY_TRACKER_H_
