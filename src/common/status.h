#ifndef NLQ_COMMON_STATUS_H_
#define NLQ_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace nlq {

/// Error categories used across the library. Modeled after the
/// RocksDB/Abseil convention: fallible operations return a `Status`
/// (or `StatusOr<T>`) instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kInternal,
  kNotSupported,
  kIOError,
  kParseError,
  kCancelled,
  kDeadlineExceeded,
  kCorruption,
  /// The service is refusing work it would normally accept — a
  /// draining server, a closed listener. Distinct from
  /// kResourceExhausted (try again shortly) in that retrying against
  /// the same endpoint will not help until it comes back.
  kUnavailable,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A cheap value type carrying success or an error code plus message.
///
/// The success path stores no allocation: `Status::OK()` is trivially
/// copyable in practice (empty message string).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers for each error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`.
///
/// Accessing `value()` on an error StatusOr is a programming error and
/// asserts in debug builds.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (success).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from an error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace nlq

/// Propagates an error status from an expression returning Status.
#define NLQ_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::nlq::Status _nlq_status = (expr);        \
    if (!_nlq_status.ok()) return _nlq_status; \
  } while (0)

/// Evaluates an expression returning StatusOr<T>; on success assigns the
/// value to `lhs`, otherwise propagates the error status.
#define NLQ_ASSIGN_OR_RETURN(lhs, expr)            \
  NLQ_ASSIGN_OR_RETURN_IMPL_(                      \
      NLQ_STATUS_CONCAT_(_nlq_statusor, __LINE__), lhs, expr)

#define NLQ_STATUS_CONCAT_INNER_(a, b) a##b
#define NLQ_STATUS_CONCAT_(a, b) NLQ_STATUS_CONCAT_INNER_(a, b)
#define NLQ_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#endif  // NLQ_COMMON_STATUS_H_
