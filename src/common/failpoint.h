#ifndef NLQ_COMMON_FAILPOINT_H_
#define NLQ_COMMON_FAILPOINT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace nlq::failpoint {

/// Compile-time-gated fault injection. A failpoint is a named site in
/// production code (`NLQ_FAILPOINT("page_decode")`) that tests can arm
/// by name to return an injected error Status, optionally skipping the
/// first `skip` hits and firing a bounded number of times — enough to
/// drive transient-fault retry paths as well as hard failures.
///
/// The check sites compile to NOTHING unless the build defines
/// NLQ_FAILPOINTS (cmake -DNLQ_FAILPOINTS=ON): in a release binary no
/// failpoint symbol is referenced and the hot paths are untouched (CI
/// asserts this with `nm`). The management functions below always
/// exist so fault-injection tests build in every configuration; in an
/// ungated build arming a failpoint simply has no effect and tests
/// skip themselves via NLQ_FAILPOINTS.
///
/// Registered site catalog (see DESIGN.md section 9):
///   page_decode     — storage row/column page decode (scanners, cache
///                     fill)
///   partition_scan  — exec-layer scan streams (row + columnar)
///   udf_accumulate  — aggregate-UDF ROW phase (row + span paths)
///   udf_merge       — aggregate-UDF MERGE phase
///   expr_compile    — expression bytecode compilation (planner); an
///                     armed fault forces the interpreted fallback
///                     path, it never fails the statement
///   disk_io         — DiskManager page read/write
///   page_decompress — column-codec block decode (spilled-chunk reads,
///                     the buffer-pool read path)
///   odbc_export     — odbc_sim export (retried as a transient link
///                     fault)
///   view_maintenance — maintained-view delta/seed accumulation
///                     (engine/exec/view_registry.cc); an armed fault
///                     drops the view and degrades the statement to a
///                     plain full rescan — results stay correct
///   server_accept   — server accept path (server/server.cc); an armed
///                     fault drops that one accepted connection, the
///                     listener survives
///   server_read     — server/client frame reads (server/protocol.cc);
///                     fails that connection's request, others keep
///                     working
///   server_write    — server/client frame writes; the session closes
///                     cleanly, in-flight statements elsewhere are
///                     unaffected
///
/// All functions are thread-safe; parallel workers hit the same
/// failpoint concurrently.

/// Arms `name`: after ignoring the first `skip` hits, the next
/// `fire_count` hits (-1 = every hit until disarmed) return `error`.
/// Re-arming an armed failpoint replaces its state.
void Activate(const std::string& name, Status error, int skip = 0,
              int fire_count = -1);

/// Disarms `name` (no-op when not armed).
void Deactivate(const std::string& name);

/// Disarms everything — call from test teardown so a failed test
/// cannot leak faults into the next one.
void DeactivateAll();

/// Times an armed `name` was hit (whether or not it fired). Resets
/// when the failpoint is (re-)armed; 0 when never armed.
int HitCount(const std::string& name);

/// True when the build compiled the check sites in (NLQ_FAILPOINTS).
bool BuiltWithFailpoints();

/// The check the NLQ_FAILPOINT macro expands to. OK when `name` is
/// not armed, skipping, or exhausted.
Status Check(const char* name);

}  // namespace nlq::failpoint

#if defined(NLQ_FAILPOINTS)

/// Returns the injected Status from the enclosing function when the
/// named failpoint fires. The enclosing function must return Status
/// or StatusOr<T>.
#define NLQ_FAILPOINT(name)                                  \
  do {                                                       \
    ::nlq::Status _nlq_fp = ::nlq::failpoint::Check(name);   \
    if (!_nlq_fp.ok()) return _nlq_fp;                       \
  } while (0)

/// Variant for scanner-style `bool Next()` methods that report errors
/// through a side Status: stores the injected error and returns false.
#define NLQ_FAILPOINT_BOOL(name, status_ptr)                 \
  do {                                                       \
    ::nlq::Status _nlq_fp = ::nlq::failpoint::Check(name);   \
    if (!_nlq_fp.ok()) {                                     \
      *(status_ptr) = std::move(_nlq_fp);                    \
      return false;                                          \
    }                                                        \
  } while (0)

#else

#define NLQ_FAILPOINT(name) \
  do {                      \
  } while (0)
#define NLQ_FAILPOINT_BOOL(name, status_ptr) \
  do {                                       \
  } while (0)

#endif  // NLQ_FAILPOINTS

#endif  // NLQ_COMMON_FAILPOINT_H_
