#ifndef NLQ_COMMON_LOGGING_H_
#define NLQ_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace nlq {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
/// Default is kWarning so library users are not spammed.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits the accumulated message on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace nlq

#define NLQ_LOG(level)                                                      \
  ::nlq::internal_logging::LogMessage(::nlq::LogLevel::k##level, __FILE__, \
                                      __LINE__)                             \
      .stream()

#endif  // NLQ_COMMON_LOGGING_H_
