#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/strings.h"

namespace nlq {
namespace {

/// Stable per-thread shard slot: threads get consecutive slots on
/// first use, so up to kShards concurrent writers never collide.
size_t ThreadShardSlot() {
  static std::atomic<size_t> next_slot{0};
  thread_local const size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StringPrintf("\\u%04x", c));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void ShardedCounter::Add(uint64_t n) {
  shards_[ThreadShardSlot() % kShards].value.fetch_add(
      n, std::memory_order_relaxed);
}

uint64_t ShardedCounter::Value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Observe(uint64_t nanos) {
  // Bucket b holds observations in [2^(b-1), 2^b) microseconds; the
  // index is just the bit width of the value in whole microseconds.
  const uint64_t micros = nanos / 1000;
  size_t b = static_cast<size_t>(std::bit_width(micros));
  if (b >= kNumBuckets) b = kNumBuckets - 1;
  buckets_[b].Increment();
  count_.Increment();
  sum_nanos_.Add(nanos);
}

uint64_t Histogram::BucketUpperNanos(size_t b) {
  if (b + 1 >= kNumBuckets) return UINT64_MAX;
  return (uint64_t{1} << b) * 1000;
}

namespace {

/// Shared quantile walk over (upper_nanos, count) pairs in bucket
/// order. `total` is the observation count the rank is taken against.
uint64_t PercentileFromBuckets(
    const std::vector<std::pair<uint64_t, uint64_t>>& buckets,
    uint64_t total, double q) {
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based: ceil(q * total), clamped
  // into [1, total] so q == 0 still selects the first observation.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t cumulative = 0;
  for (const auto& [upper, count] : buckets) {
    cumulative += count;
    if (cumulative >= rank) return upper;
  }
  // Writers may race a concurrent snapshot so the bucket sum can trail
  // `total`; answer with the largest populated bucket.
  return buckets.empty() ? 0 : buckets.back().first;
}

}  // namespace

uint64_t Histogram::Percentile(double q) const {
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
  buckets.reserve(kNumBuckets);
  for (size_t b = 0; b < kNumBuckets; ++b) {
    const uint64_t count = buckets_[b].Value();
    if (count > 0) buckets.emplace_back(BucketUpperNanos(b), count);
  }
  return PercentileFromBuckets(buckets, Count(), q);
}

uint64_t MetricsSnapshot::HistogramData::PercentileNanos(double q) const {
  return PercentileFromBuckets(buckets, count, q);
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    out += StringPrintf(": %llu", static_cast<unsigned long long>(value));
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    out += StringPrintf(": %lld", static_cast<long long>(value));
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    out += StringPrintf(": {\"count\": %llu, \"sum_nanos\": %llu, \"buckets\": [",
                     static_cast<unsigned long long>(h.count),
                     static_cast<unsigned long long>(h.sum_nanos));
    bool first_bucket = true;
    for (const auto& [upper, count] : h.buckets) {
      if (!first_bucket) out += ", ";
      first_bucket = false;
      if (upper == UINT64_MAX) {
        out += StringPrintf("{\"le_nanos\": null, \"count\": %llu}",
                         static_cast<unsigned long long>(count));
      } else {
        out += StringPrintf("{\"le_nanos\": %llu, \"count\": %llu}",
                         static_cast<unsigned long long>(upper),
                         static_cast<unsigned long long>(count));
      }
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

ShardedCounter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<ShardedCounter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters[name] = c->Value();
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = g->Value();
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.count = h->Count();
    data.sum_nanos = h->SumNanos();
    for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
      const uint64_t count = h->BucketCount(b);
      if (count > 0) {
        data.buckets.emplace_back(Histogram::BucketUpperNanos(b), count);
      }
    }
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

OperatorStats* QueryStats::AddOperator(std::string name,
                                       std::string annotation, size_t depth) {
  return &operators_.emplace_back(std::move(name), std::move(annotation),
                                  depth);
}

void QueryStats::SetWorkerCount(size_t n) {
  while (workers_.size() < n) workers_.emplace_back();
}

void QueryStats::CountMorselClaim(size_t worker_id) {
  if (worker_id < workers_.size()) {
    workers_[worker_id].claims.fetch_add(1, std::memory_order_relaxed);
  }
}

void QueryStats::AddCacheNote(const std::string& note) {
  std::lock_guard<std::mutex> lock(note_mu_);
  if (!column_cache_note_.empty()) column_cache_note_ += "; ";
  column_cache_note_ += note;
}

std::string QueryStats::CacheNote() const {
  std::lock_guard<std::mutex> lock(note_mu_);
  return column_cache_note_;
}

std::vector<uint64_t> QueryStats::WorkerMorselClaims() const {
  std::vector<uint64_t> claims;
  claims.reserve(workers_.size());
  for (const WorkerCounter& w : workers_) {
    claims.push_back(w.claims.load(std::memory_order_relaxed));
  }
  return claims;
}

std::string QueryStatsSnapshot::ToJson() const {
  std::string out = StringPrintf(
      "{\"query_id\": %llu, \"wall_time_ns\": %llu, "
      "\"memory_peak_bytes\": %llu, \"rows_returned\": %llu, "
      "\"pages_decoded\": %llu, \"column_cache_hits\": %llu, "
      "\"column_cache_misses\": %llu, \"column_cache_fallbacks\": %llu, "
      "\"rows_vectorized\": %llu, \"view_hits\": %llu, "
      "\"view_misses\": %llu, \"view_delta_rows\": %llu, "
      "\"view_rebuilds\": %llu, ",
      static_cast<unsigned long long>(query_id),
      static_cast<unsigned long long>(wall_time_ns),
      static_cast<unsigned long long>(memory_peak_bytes),
      static_cast<unsigned long long>(rows_returned),
      static_cast<unsigned long long>(pages_decoded),
      static_cast<unsigned long long>(column_cache_hits),
      static_cast<unsigned long long>(column_cache_misses),
      static_cast<unsigned long long>(column_cache_fallbacks),
      static_cast<unsigned long long>(rows_vectorized),
      static_cast<unsigned long long>(view_hits),
      static_cast<unsigned long long>(view_misses),
      static_cast<unsigned long long>(view_delta_rows),
      static_cast<unsigned long long>(view_rebuilds));
  out += "\"column_cache_note\": ";
  AppendJsonString(column_cache_note, &out);
  out += ", \"operators\": [";
  bool first = true;
  for (const OperatorStatsSnapshot& op : operators) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": ";
    AppendJsonString(op.name, &out);
    out += ", \"annotation\": ";
    AppendJsonString(op.annotation, &out);
    out += StringPrintf(
        ", \"depth\": %zu, \"rows_out\": %llu, \"batches_out\": %llu, "
        "\"time_ns\": %llu}",
        op.depth, static_cast<unsigned long long>(op.rows_out),
        static_cast<unsigned long long>(op.batches_out),
        static_cast<unsigned long long>(op.time_ns));
  }
  out += "], \"worker_morsel_claims\": [";
  first = true;
  for (const uint64_t claims : worker_morsel_claims) {
    if (!first) out += ", ";
    first = false;
    out += StringPrintf("%llu", static_cast<unsigned long long>(claims));
  }
  out += "]}";
  return out;
}

QueryStatsSnapshot SnapshotQueryStats(const QueryStats& stats) {
  QueryStatsSnapshot snap;
  snap.query_id = stats.query_id;
  snap.wall_time_ns = stats.wall_time_ns;
  snap.memory_peak_bytes = stats.memory_peak_bytes;
  snap.rows_returned = stats.rows_returned.load(std::memory_order_relaxed);
  snap.pages_decoded = stats.pages_decoded.load(std::memory_order_relaxed);
  snap.column_cache_hits =
      stats.column_cache_hits.load(std::memory_order_relaxed);
  snap.column_cache_misses =
      stats.column_cache_misses.load(std::memory_order_relaxed);
  snap.column_cache_fallbacks =
      stats.column_cache_fallbacks.load(std::memory_order_relaxed);
  snap.rows_vectorized =
      stats.rows_vectorized.load(std::memory_order_relaxed);
  snap.view_hits = stats.view_hits.load(std::memory_order_relaxed);
  snap.view_misses = stats.view_misses.load(std::memory_order_relaxed);
  snap.view_delta_rows =
      stats.view_delta_rows.load(std::memory_order_relaxed);
  snap.view_rebuilds = stats.view_rebuilds.load(std::memory_order_relaxed);
  snap.column_cache_note = stats.CacheNote();
  for (const OperatorStats& op : stats.operators()) {
    OperatorStatsSnapshot s;
    s.name = op.name;
    s.annotation = op.annotation;
    s.depth = op.depth;
    s.rows_out = op.rows_out.load(std::memory_order_relaxed);
    s.batches_out = op.batches_out.load(std::memory_order_relaxed);
    s.time_ns = op.time_ns.load(std::memory_order_relaxed);
    snap.operators.push_back(std::move(s));
  }
  snap.worker_morsel_claims = stats.WorkerMorselClaims();
  return snap;
}

}  // namespace nlq
