#include "common/status.h"

namespace nlq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace nlq
