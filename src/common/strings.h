#ifndef NLQ_COMMON_STRINGS_H_
#define NLQ_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace nlq {

/// Splits `input` on `sep`, keeping empty fields.
std::vector<std::string_view> SplitString(std::string_view input, char sep);

/// Lower-cases ASCII characters.
std::string AsciiToLower(std::string_view s);

/// Case-insensitive ASCII equality (used by the SQL keyword matcher).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Trims ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

/// Parses a double; rejects trailing garbage.
StatusOr<double> ParseDouble(std::string_view s);

/// Parses a signed 64-bit integer; rejects trailing garbage.
StatusOr<int64_t> ParseInt64(std::string_view s);

/// Appends a shortest-round-trip representation of `v` to `out`.
/// This is the hot path for the string-parameter UDF style and the
/// ODBC exporter, so it avoids ostream formatting.
void AppendDouble(std::string* out, double v);

/// Convenience wrapper around AppendDouble.
std::string DoubleToString(double v);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace nlq

#endif  // NLQ_COMMON_STRINGS_H_
