#ifndef NLQ_COMMON_RANDOM_H_
#define NLQ_COMMON_RANDOM_H_

#include <cstdint>

namespace nlq {

/// Deterministic pseudo-random generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component in the library takes an
/// explicit seed so experiments are exactly reproducible run-to-run.
class Random {
 public:
  /// Seeds the generator; equal seeds produce identical streams.
  explicit Random(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second variate).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace nlq

#endif  // NLQ_COMMON_RANDOM_H_
