#ifndef NLQ_COMMON_QUERY_CONTEXT_H_
#define NLQ_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/memory_tracker.h"
#include "common/status.h"

namespace nlq {

class QueryStats;

/// Per-query lifecycle state threaded through the engine: a shared
/// cancellation token, an optional wall-clock deadline, and an
/// optional memory budget. One QueryContext is created per statement
/// (engine::Database::Execute) and every execution layer — the
/// thread pool's morsel claims, the exec nodes' batch loops, the
/// executor's result drain — polls CheckAlive() so a cancelled or
/// timed-out query unwinds within one batch/morsel of latency.
///
/// The cancel token is a shared_ptr so Database::Cancel (called from
/// another thread, after the query registered itself) can flip it
/// without racing the query's teardown. Everything else is set up
/// before execution starts and read-only afterwards.
class QueryContext {
 public:
  QueryContext() : cancel_(std::make_shared<std::atomic<bool>>(false)) {}

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  uint64_t query_id() const { return query_id_; }
  void set_query_id(uint64_t id) { query_id_ = id; }

  /// The shared token Database::Cancel flips; safe to hold past the
  /// context's lifetime.
  std::shared_ptr<std::atomic<bool>> cancel_token() const { return cancel_; }

  /// Replaces the context's token with an externally owned one (the
  /// server hands each session statement a token it can flip during
  /// the admission wait as well as mid-execution). Call before
  /// execution starts; a token already flipped cancels the statement
  /// at its first CheckAlive.
  void set_cancel_token(std::shared_ptr<std::atomic<bool>> token) {
    if (token != nullptr) cancel_ = std::move(token);
  }

  void RequestCancel() { cancel_->store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return cancel_->load(std::memory_order_acquire);
  }

  /// Arms the deadline `timeout_ms` milliseconds from now.
  void SetTimeout(int64_t timeout_ms) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(timeout_ms);
    has_deadline_ = true;
  }
  bool has_deadline() const { return has_deadline_; }

  MemoryTracker* memory() const { return memory_; }
  void set_memory(MemoryTracker* tracker) { memory_ = tracker; }

  /// Per-query observability sink (common/metrics.h), or nullptr when
  /// stats collection is off. Writers must tolerate nullptr: stats are
  /// an overlay, never a dependency of execution.
  QueryStats* stats() const { return stats_; }
  void set_stats(QueryStats* stats) { stats_ = stats; }

  /// The cancellation point: kCancelled once RequestCancel was called,
  /// kDeadlineExceeded once the deadline passed, OK otherwise.
  /// Cancellation wins over an expired deadline (the explicit request
  /// is the stronger signal).
  Status CheckAlive() const;

 private:
  uint64_t query_id_ = 0;
  std::shared_ptr<std::atomic<bool>> cancel_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  MemoryTracker* memory_ = nullptr;
  QueryStats* stats_ = nullptr;
};

}  // namespace nlq

#endif  // NLQ_COMMON_QUERY_CONTEXT_H_
