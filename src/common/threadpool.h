#ifndef NLQ_COMMON_THREADPOOL_H_
#define NLQ_COMMON_THREADPOOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace nlq {

/// Fixed-size worker pool running the engine's parallel sections.
///
/// Both entry points are *morsel-driven*: the indices of a batch form
/// a shared work queue that workers (the pool threads plus the calling
/// thread) drain by atomically claiming the next unclaimed index.
/// Nothing is pre-assigned, so a worker stuck on a slow index never
/// strands the indices behind it — the others keep pulling. This is
/// what decouples the engine's degree of parallelism from the number
/// of work items (partitions, morsels): 8 workers saturate on 2 huge
/// morsels + 100 small ones just as well as on 102 equal ones.
///
/// Batches are serialized: one ParallelFor/ParallelForMorsels runs at
/// a time per pool, issued from one external thread at a time.
/// Nesting is a deadlock-shaped error — a task must never call back
/// into ParallelFor* on any pool (the inner call would claim the
/// outer batch's worker while holding one of its indices). Debug
/// builds assert on it; see ParallelForMorsels.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  size_t num_threads() const { return threads_.size(); }

  /// Workers participating in a parallel section: the pool threads
  /// plus the calling thread, which drains indices too instead of
  /// blocking idle.
  size_t num_workers() const { return threads_.size() + 1; }

  /// Runs fn(i) for i in [0, count) and waits for completion. Indices
  /// are claimed dynamically (work-stealing from the shared counter),
  /// in increasing order, with no per-index heap allocation.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  /// Morsel-driven variant: runs fn(worker, i) for i in [0, count),
  /// where `worker` in [0, num_workers()) identifies the claiming
  /// worker (stable within the batch — use it to index per-worker
  /// scratch). Which worker runs which index is scheduling-dependent;
  /// callers needing deterministic results must make fn(w, i)'s
  /// observable effect independent of `w` (per-index partial states
  /// folded in index order — see engine/exec).
  void ParallelForMorsels(
      size_t count, const std::function<void(size_t, size_t)>& fn);

 private:
  /// One parallel section: the shared claim counter and completion
  /// count. Held by shared_ptr so workers that wake late (after the
  /// caller returned) can still safely observe an exhausted batch.
  struct Batch {
    explicit Batch(size_t n, const std::function<void(size_t, size_t)>* f)
        : count(n), fn(f) {}
    const size_t count;
    const std::function<void(size_t, size_t)>* fn;  // valid until completed
    std::atomic<size_t> next_index{0};
    std::atomic<size_t> completed{0};
  };

  void WorkerLoop(size_t worker_id);

  /// Claims and runs indices of `batch` until exhausted; returns true
  /// if this call completed the batch's last index.
  bool DrainBatch(Batch* batch, size_t worker_id);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  std::shared_ptr<Batch> current_batch_;  // non-null while a batch runs
  uint64_t batch_seq_ = 0;                // bumped per published batch
  bool shutting_down_ = false;
};

}  // namespace nlq

#endif  // NLQ_COMMON_THREADPOOL_H_
