#ifndef NLQ_COMMON_THREADPOOL_H_
#define NLQ_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace nlq {

/// Fixed-size worker pool used by the engine to run one task per table
/// partition ("AMP" in Teradata terms). Tasks are plain callables;
/// `ParallelFor` blocks until every task in the batch finished.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for i in [0, count), distributed over the pool, and
  /// waits for completion. Safe to call concurrently from one thread
  /// at a time per pool.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  std::queue<std::function<void()>> queue_;
  size_t outstanding_ = 0;
  bool shutting_down_ = false;
};

}  // namespace nlq

#endif  // NLQ_COMMON_THREADPOOL_H_
