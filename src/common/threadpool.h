#ifndef NLQ_COMMON_THREADPOOL_H_
#define NLQ_COMMON_THREADPOOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"

namespace nlq {

/// Fixed-size worker pool running the engine's parallel sections.
///
/// Both entry points are *morsel-driven*: the indices of a batch form
/// a shared work queue that workers (the pool threads plus the calling
/// thread) drain by atomically claiming the next unclaimed index.
/// Nothing is pre-assigned, so a worker stuck on a slow index never
/// strands the indices behind it — the others keep pulling. This is
/// what decouples the engine's degree of parallelism from the number
/// of work items (partitions, morsels): 8 workers saturate on 2 huge
/// morsels + 100 small ones just as well as on 102 equal ones.
///
/// Error / cancellation contract (both entry points):
///
///  - Tasks return Status. The section's return value is the failure
///    with the LOWEST index among the tasks that ran — deterministic
///    first-error-wins: indices are claimed in increasing order and,
///    once an error at index k is recorded, indices below k still run
///    to completion while indices above k are claimed-and-skipped.
///    A data-dependent error therefore surfaces as the same Status
///    whatever the thread count or scheduling, and sibling work past
///    the failure is abandoned early instead of draining the whole
///    batch.
///  - When `ctx` is non-null, ctx->CheckAlive() is polled at EVERY
///    index claim; a cancelled or expired context stops new work
///    immediately (in-flight tasks finish their current index — tasks
///    that poll the context at batch boundaries bound that latency
///    too) and the section returns kCancelled / kDeadlineExceeded.
///  - Skipped indices never invoke the task function; every claimed
///    index is accounted for, so the section still joins cleanly and
///    the pool is reusable for the next batch afterwards.
///
/// Batches are serialized: one ParallelFor/ParallelForMorsels runs at
/// a time per pool. Concurrent external callers (the server runs many
/// sessions over one engine pool) are safe — a section mutex queues
/// their batches, so a second statement's parallel section simply
/// waits for the running one to drain before it is published. The
/// wait is bounded by one section, not one statement: statements
/// interleave at section granularity. Nesting is still a
/// deadlock-shaped error — a task must never call back into
/// ParallelFor* on any pool (the inner call would claim the outer
/// batch's worker while holding one of its indices). Debug builds
/// assert on it; see ParallelForMorsels.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  size_t num_threads() const { return threads_.size(); }

  /// Workers participating in a parallel section: the pool threads
  /// plus the calling thread, which drains indices too instead of
  /// blocking idle.
  size_t num_workers() const { return threads_.size() + 1; }

  /// Runs fn(i) for i in [0, count), waits for completion, and
  /// returns the first (lowest-index) non-OK Status — see the
  /// error/cancellation contract above. Indices are claimed
  /// dynamically (work-stealing from the shared counter), in
  /// increasing order, with no per-index heap allocation.
  Status ParallelFor(size_t count, const std::function<Status(size_t)>& fn,
                     const QueryContext* ctx = nullptr);

  /// Morsel-driven variant: runs fn(worker, i) for i in [0, count),
  /// where `worker` in [0, num_workers()) identifies the claiming
  /// worker (stable within the batch — use it to index per-worker
  /// scratch). Which worker runs which index is scheduling-dependent;
  /// callers needing deterministic results must make fn(w, i)'s
  /// observable effect independent of `w` (per-index partial states
  /// folded in index order — see engine/exec).
  Status ParallelForMorsels(
      size_t count, const std::function<Status(size_t, size_t)>& fn,
      const QueryContext* ctx = nullptr);

 private:
  /// One parallel section: the shared claim counter, completion
  /// count, and first-error slot. Held by shared_ptr so workers that
  /// wake late (after the caller returned) can still safely observe
  /// an exhausted batch.
  struct Batch {
    Batch(size_t n, const std::function<Status(size_t, size_t)>* f,
          const QueryContext* c)
        : count(n), fn(f), ctx(c) {}
    const size_t count;
    const std::function<Status(size_t, size_t)>* fn;  // valid until completed
    const QueryContext* ctx;  // may be null; polled at every claim
    std::atomic<size_t> next_index{0};
    std::atomic<size_t> completed{0};
    /// Lowest index with a recorded error; indices above it are
    /// claimed-and-skipped. SIZE_MAX while no error. Mirrors
    /// first_error_index for lock-free reads on the claim path.
    std::atomic<size_t> error_limit{SIZE_MAX};
    std::mutex error_mu;
    size_t first_error_index = SIZE_MAX;  // guarded by error_mu
    Status first_error;                   // guarded by error_mu
  };

  void WorkerLoop(size_t worker_id);

  /// Claims and runs indices of `batch` until exhausted; returns true
  /// if this call completed the batch's last index.
  bool DrainBatch(Batch* batch, size_t worker_id);

  /// Records a task failure at `index`, keeping the lowest-index one.
  static void RecordError(Batch* batch, size_t index, Status status);

  std::vector<std::thread> threads_;
  /// Serializes whole parallel sections across concurrent external
  /// callers: held from batch publication to batch teardown, so two
  /// statements issuing sections against one pool queue FIFO-ish
  /// instead of corrupting current_batch_. Ordered before mu_ (a
  /// section-holder takes mu_; never the reverse).
  std::mutex section_mu_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  std::shared_ptr<Batch> current_batch_;  // non-null while a batch runs
  uint64_t batch_seq_ = 0;                // bumped per published batch
  bool shutting_down_ = false;
};

}  // namespace nlq

#endif  // NLQ_COMMON_THREADPOOL_H_
