#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace nlq {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_output_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < GetLogLevel()) return;
  std::lock_guard<std::mutex> lock(g_output_mu);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal_logging
}  // namespace nlq
