#ifndef NLQ_COMMON_METRICS_H_
#define NLQ_COMMON_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nlq {

/// A monotonically increasing counter sharded across cache lines so
/// concurrent writers (pool workers incrementing per-batch) never
/// contend on one atomic. Writes pick a shard by the calling thread's
/// registration slot and add with relaxed ordering; reads sum every
/// shard — cheap enough per increment that the engine can afford one
/// on every batch boundary, which is what makes per-operator
/// instrumentation affordable at morsel granularity.
class ShardedCounter {
 public:
  ShardedCounter() = default;
  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  void Add(uint64_t n);
  void Increment() { Add(1); }

  /// Sum of every shard. Concurrent with writers: the result is some
  /// valid point-in-time-ish total (each shard read atomically), never
  /// torn.
  uint64_t Value() const;

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kShards];
};

/// A last-write-wins instantaneous value (queue depths, live-query
/// counts). Plain atomic: gauges are set rarely.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram over nanosecond observations. Bucket
/// b counts observations with value < 2^b microseconds (the last
/// bucket is unbounded), so the bucket layout is identical for every
/// histogram and needs no per-instance configuration. Counts, like the
/// running count/sum, live in sharded counters so many workers can
/// observe concurrently.
class Histogram {
 public:
  /// Buckets cover [1us, ~134s) in powers of two plus an overflow
  /// bucket.
  static constexpr size_t kNumBuckets = 28;

  void Observe(uint64_t nanos);

  uint64_t Count() const { return count_.Value(); }
  uint64_t SumNanos() const { return sum_nanos_.Value(); }
  uint64_t BucketCount(size_t b) const { return buckets_[b].Value(); }

  /// Exclusive upper bound of bucket `b` in nanoseconds
  /// (UINT64_MAX for the overflow bucket).
  static uint64_t BucketUpperNanos(size_t b);

  /// Upper-bound estimate of the q-quantile (q in [0, 1]) in
  /// nanoseconds: the exclusive upper bound of the bucket holding the
  /// ceil(q * count)-th observation. Returns 0 for an empty histogram
  /// and UINT64_MAX when the quantile lands in the overflow bucket.
  /// Safe to call concurrently with writers; the result is then a
  /// point-in-time-ish estimate, never a crash.
  uint64_t Percentile(double q) const;

 private:
  ShardedCounter buckets_[kNumBuckets];
  ShardedCounter count_;
  ShardedCounter sum_nanos_;
};

/// Point-in-time copy of every registered metric, serializable to
/// JSON. Histogram buckets with zero counts are omitted from the JSON
/// to keep snapshots small.
struct MetricsSnapshot {
  struct HistogramData {
    uint64_t count = 0;
    uint64_t sum_nanos = 0;
    /// (exclusive upper bound in nanos, count), zero buckets omitted.
    std::vector<std::pair<uint64_t, uint64_t>> buckets;

    /// Same quantile estimate as Histogram::Percentile, computed from
    /// the snapshot's sparse bucket list (so wire/JSON consumers share
    /// one audited implementation instead of re-deriving it).
    uint64_t PercentileNanos(double q) const;
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  std::string ToJson() const;
};

/// Process-wide registry of named metrics. Lookup takes a mutex and
/// returns a stable reference — callers on hot paths look up once and
/// keep the pointer; the increments themselves are lock-free. The
/// engine accounts statement outcomes, latency, storage counters and
/// fault events here (names in DESIGN.md section 10).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  ShardedCounter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot GetSnapshot() const;

  /// Drops every registered metric. Tests only: invalidates references
  /// handed out earlier, so never call while queries run.
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ShardedCounter>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Per-operator actuals recorded while a plan executes: rows/batches
/// the operator produced and the cumulative wall time spent inside its
/// Next() calls, summed across every parallel stream of the operator
/// (so under parallel execution an operator's time can exceed the
/// statement's wall clock; self-time is derived and clamped at render
/// time). Name/annotation/depth are captured from the plan node when
/// the stats tree is attached — the plan itself does not outlive the
/// statement, the stats do.
struct OperatorStats {
  OperatorStats(std::string name_in, std::string annotation_in,
                size_t depth_in)
      : name(std::move(name_in)),
        annotation(std::move(annotation_in)),
        depth(depth_in) {}

  std::string name;
  std::string annotation;
  size_t depth = 0;
  std::atomic<uint64_t> rows_out{0};
  std::atomic<uint64_t> batches_out{0};
  std::atomic<uint64_t> time_ns{0};
};

/// The per-query stats tree hung off QueryContext: one OperatorStats
/// per plan node (root first — plans are linear chains) plus
/// statement-level storage and scheduling counters. Writers are the
/// exec streams and pool workers; everything mutable concurrently is
/// atomic. Snapshot after the statement with SnapshotQueryStats.
class QueryStats {
 public:
  QueryStats() = default;
  QueryStats(const QueryStats&) = delete;
  QueryStats& operator=(const QueryStats&) = delete;

  /// Registers the operator at `depth` (0 = root) and returns its
  /// stats sink; pointers stay valid for the QueryStats lifetime.
  OperatorStats* AddOperator(std::string name, std::string annotation,
                             size_t depth);
  const std::deque<OperatorStats>& operators() const { return operators_; }

  /// Sizes the per-worker morsel-claim counters (worker 0 is the
  /// thread calling ParallelFor*). Claims from unknown worker ids are
  /// dropped rather than crashing.
  void SetWorkerCount(size_t n);
  void CountMorselClaim(size_t worker_id);
  std::vector<uint64_t> WorkerMorselClaims() const;

  // Storage-layer counters (see DESIGN.md section 10).
  std::atomic<uint64_t> pages_decoded{0};
  std::atomic<uint64_t> column_cache_hits{0};
  std::atomic<uint64_t> column_cache_misses{0};
  std::atomic<uint64_t> column_cache_fallbacks{0};
  std::atomic<uint64_t> rows_returned{0};
  /// Rows whose expressions ran through the compiled bytecode path
  /// (engine/exec/bytecode.h) rather than the interpreter; each
  /// vectorized operator counts its input batch once per batch.
  std::atomic<uint64_t> rows_vectorized{0};

  // Maintained-view counters (engine/exec/view_registry.h). A hit is a
  // statement served from registered partials (delta_rows = appended
  // rows it accumulated, possibly 0); a miss had to seed the view from
  // a full accumulate; rebuilds counts those full accumulations
  // (seeding and degrade-to-rescan fallbacks alike).
  std::atomic<uint64_t> view_hits{0};
  std::atomic<uint64_t> view_misses{0};
  std::atomic<uint64_t> view_delta_rows{0};
  std::atomic<uint64_t> view_rebuilds{0};

  // Statement-level values written once, after execution.
  uint64_t query_id = 0;
  uint64_t wall_time_ns = 0;
  uint64_t memory_peak_bytes = 0;

  /// Appends a note naming which consumer forced a decoded-column
  /// cache fallback and why (budget exhausted, spilled table, ...).
  /// Multiple notes join with "; ". Mutex-guarded so concurrent scan
  /// warm-ups cannot tear the string.
  void AddCacheNote(const std::string& note);
  std::string CacheNote() const;

 private:
  std::deque<OperatorStats> operators_;
  mutable std::mutex note_mu_;
  std::string column_cache_note_;
  struct alignas(64) WorkerCounter {
    std::atomic<uint64_t> claims{0};
  };
  std::deque<WorkerCounter> workers_;
};

/// Plain-data copy of a QueryStats tree, safe to keep after the query
/// (Database::last_query_stats) and to serialize for the bench
/// harness.
struct OperatorStatsSnapshot {
  std::string name;
  std::string annotation;
  size_t depth = 0;
  uint64_t rows_out = 0;
  uint64_t batches_out = 0;
  uint64_t time_ns = 0;
};

struct QueryStatsSnapshot {
  uint64_t query_id = 0;
  uint64_t wall_time_ns = 0;
  uint64_t memory_peak_bytes = 0;
  uint64_t rows_returned = 0;
  uint64_t pages_decoded = 0;
  uint64_t column_cache_hits = 0;
  uint64_t column_cache_misses = 0;
  uint64_t column_cache_fallbacks = 0;
  uint64_t rows_vectorized = 0;
  uint64_t view_hits = 0;
  uint64_t view_misses = 0;
  uint64_t view_delta_rows = 0;
  uint64_t view_rebuilds = 0;
  /// Why the decoded-column cache fell back (empty when it did not):
  /// names the consumer and the budget arithmetic that rejected it.
  std::string column_cache_note;
  std::vector<OperatorStatsSnapshot> operators;
  std::vector<uint64_t> worker_morsel_claims;

  std::string ToJson() const;
};

QueryStatsSnapshot SnapshotQueryStats(const QueryStats& stats);

}  // namespace nlq

#endif  // NLQ_COMMON_METRICS_H_
