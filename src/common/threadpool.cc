#include "common/threadpool.h"

namespace nlq {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --outstanding_;
      if (outstanding_ == 0) batch_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    outstanding_ += count;
    for (size_t i = 0; i < count; ++i) {
      queue_.push([&fn, i] { fn(i); });
    }
  }
  work_available_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  batch_done_.wait(lock, [this] { return outstanding_ == 0; });
}

}  // namespace nlq
