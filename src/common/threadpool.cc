#include "common/threadpool.h"

#include <cassert>
#include <utility>

#include "common/metrics.h"

namespace nlq {
namespace {

/// Set while the current thread is executing a batch index; used to
/// assert the "no nested ParallelFor" contract (a nested call would
/// deadlock-by-starvation: the inner batch competes for the workers
/// the outer batch is still counting on).
thread_local bool tls_inside_parallel_section = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    // Worker id 0 is reserved for the thread calling ParallelFor*.
    threads_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::RecordError(Batch* batch, size_t index, Status status) {
  std::lock_guard<std::mutex> lock(batch->error_mu);
  if (index < batch->first_error_index) {
    batch->first_error_index = index;
    batch->first_error = std::move(status);
    batch->error_limit.store(index, std::memory_order_release);
  }
}

bool ThreadPool::DrainBatch(Batch* batch, size_t worker_id) {
  tls_inside_parallel_section = true;
  bool completed_last = false;
  for (;;) {
    const size_t i = batch->next_index.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->count) break;
    // Indices past a recorded error (or past a dead query context) are
    // claimed-and-skipped: they still count toward completion so the
    // caller's join is unchanged, but the task never runs. Indices
    // BELOW the first recorded error still run — that is what makes
    // "first error" deterministic: whichever error ends up at the
    // lowest index always gets the chance to report itself.
    bool skip = i > batch->error_limit.load(std::memory_order_acquire);
    if (!skip && batch->ctx != nullptr) {
      Status alive = batch->ctx->CheckAlive();
      if (!alive.ok()) {
        // A dead context out-ranks any later data error but must not
        // mask an earlier one, so record it at this index like any
        // other failure.
        RecordError(batch, i, std::move(alive));
        skip = true;
      }
    }
    if (!skip) {
      // Only indices that actually run count as claims: the skew/steal
      // picture in the stats should show real work, not skip churn.
      if (batch->ctx != nullptr && batch->ctx->stats() != nullptr) {
        batch->ctx->stats()->CountMorselClaim(worker_id);
      }
      Status s = (*batch->fn)(worker_id, i);
      if (!s.ok()) RecordError(batch, i, std::move(s));
    }
    if (batch->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch->count) {
      completed_last = true;
    }
  }
  tls_inside_parallel_section = false;
  return completed_last;
}

void ThreadPool::WorkerLoop(size_t worker_id) {
  uint64_t seen_seq = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this, seen_seq] {
        return shutting_down_ || batch_seq_ != seen_seq;
      });
      if (shutting_down_) return;
      seen_seq = batch_seq_;
      batch = current_batch_;  // may be null if the batch already ended
    }
    if (batch != nullptr && DrainBatch(batch.get(), worker_id)) {
      // This worker ran the batch's last index; wake the caller (which
      // re-checks the completion count under the lock).
      std::lock_guard<std::mutex> lock(mu_);
      batch_done_.notify_all();
    }
  }
}

Status ThreadPool::ParallelForMorsels(
    size_t count, const std::function<Status(size_t, size_t)>& fn,
    const QueryContext* ctx) {
  if (count == 0) return Status::OK();
  // Nested parallel sections are a programming error (see header).
  assert(!tls_inside_parallel_section &&
         "nested ThreadPool::ParallelFor* call from inside a pool task");
  if (count == 1) {
    if (ctx != nullptr) {
      Status alive = ctx->CheckAlive();
      if (!alive.ok()) return alive;
    }
    tls_inside_parallel_section = true;
    if (ctx != nullptr && ctx->stats() != nullptr) {
      ctx->stats()->CountMorselClaim(0);
    }
    Status s = fn(0, 0);
    tls_inside_parallel_section = false;
    return s;
  }
  // One section at a time: a concurrent statement's section waits
  // here until the running one has fully torn down (current_batch_
  // reset), keeping the publish/join protocol single-writer.
  std::lock_guard<std::mutex> section_lock(section_mu_);
  auto batch = std::make_shared<Batch>(count, &fn, ctx);
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_batch_ = batch;
    ++batch_seq_;
  }
  work_available_.notify_all();
  // The caller is worker 0: it pulls from the same queue rather than
  // blocking while the pool works.
  DrainBatch(batch.get(), 0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    batch_done_.wait(lock, [&batch] {
      return batch->completed.load(std::memory_order_acquire) == batch->count;
    });
    current_batch_.reset();
  }
  // All workers have left the batch; first_error is stable now.
  std::lock_guard<std::mutex> lock(batch->error_mu);
  return batch->first_error_index == SIZE_MAX ? Status::OK()
                                              : std::move(batch->first_error);
}

Status ThreadPool::ParallelFor(size_t count,
                               const std::function<Status(size_t)>& fn,
                               const QueryContext* ctx) {
  return ParallelForMorsels(
      count, [&fn](size_t, size_t i) { return fn(i); }, ctx);
}

}  // namespace nlq
