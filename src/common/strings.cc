#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace nlq {

std::vector<std::string_view> SplitString(std::string_view input, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      parts.push_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

StatusOr<double> ParseDouble(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::ParseError("empty string is not a double");
  double value = 0.0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    return Status::ParseError("invalid double: '" + std::string(s) + "'");
  }
  return value;
}

StatusOr<int64_t> ParseInt64(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::ParseError("empty string is not an integer");
  int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    return Status::ParseError("invalid integer: '" + std::string(s) + "'");
  }
  return value;
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out->append(buf, ptr);
}

std::string DoubleToString(double v) {
  std::string out;
  AppendDouble(&out, v);
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace nlq
