#include "common/memory_tracker.h"

#include "common/strings.h"

namespace nlq {
namespace {

void RaisePeak(std::atomic<uint64_t>* peak, uint64_t candidate) {
  uint64_t seen = peak->load(std::memory_order_relaxed);
  while (candidate > seen &&
         !peak->compare_exchange_weak(seen, candidate,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

Status MemoryTracker::Charge(uint64_t bytes, const char* what) {
  const uint64_t total =
      used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limit_ != 0 && total > limit_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::ResourceExhausted(StringPrintf(
        "query memory limit exceeded charging %llu bytes for %s "
        "(%llu used of %llu budget)",
        static_cast<unsigned long long>(bytes), what,
        static_cast<unsigned long long>(total - bytes),
        static_cast<unsigned long long>(limit_)));
  }
  RaisePeak(&peak_, total);
  return Status::OK();
}

bool MemoryTracker::TryCharge(uint64_t bytes) {
  const uint64_t total =
      used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limit_ != 0 && total > limit_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return false;
  }
  RaisePeak(&peak_, total);
  return true;
}

void MemoryTracker::Release(uint64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace nlq
