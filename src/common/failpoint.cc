#include "common/failpoint.h"

#include <mutex>
#include <unordered_map>

#include "common/metrics.h"

namespace nlq::failpoint {
namespace {

struct ArmedPoint {
  Status error;
  int skip = 0;        // hits still to ignore before firing
  int remaining = -1;  // fires left; -1 = unbounded
  int hits = 0;        // total hits while armed
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, ArmedPoint> points;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives workers
  return *registry;
}

}  // namespace

void Activate(const std::string& name, Status error, int skip,
              int fire_count) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.points[name] = ArmedPoint{std::move(error), skip, fire_count, 0};
}

void Deactivate(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.points.erase(name);
}

void DeactivateAll() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.points.clear();
}

int HitCount(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(name);
  return it == reg.points.end() ? 0 : it->second.hits;
}

bool BuiltWithFailpoints() {
#if defined(NLQ_FAILPOINTS)
  return true;
#else
  return false;
#endif
}

Status Check(const char* name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(name);
  if (it == reg.points.end()) return Status::OK();
  ArmedPoint& point = it->second;
  ++point.hits;
  if (point.skip > 0) {
    --point.skip;
    return Status::OK();
  }
  if (point.remaining == 0) return Status::OK();
  if (point.remaining > 0) --point.remaining;
  // Injected faults surface in the process-wide metrics like real
  // ones would, so fault-injection runs can assert on the counter.
  MetricsRegistry::Global().counter("failpoints.fired").Increment();
  return point.error;
}

}  // namespace nlq::failpoint
