#include "common/query_context.h"

#include "common/strings.h"

namespace nlq {

Status QueryContext::CheckAlive() const {
  if (cancel_->load(std::memory_order_acquire)) {
    return Status::Cancelled(
        StringPrintf("query %llu cancelled",
                     static_cast<unsigned long long>(query_id_)));
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return Status::DeadlineExceeded(
        StringPrintf("query %llu exceeded its deadline",
                     static_cast<unsigned long long>(query_id_)));
  }
  return Status::OK();
}

}  // namespace nlq
