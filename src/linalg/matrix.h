#ifndef NLQ_LINALG_MATRIX_H_
#define NLQ_LINALG_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace nlq::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
///
/// This is the workhorse for the "outside the DBMS" model math the
/// paper leaves to a client-side library: correlation/covariance
/// assembly, normal-equation solves, eigendecomposition input, etc.
/// Matrices here are tiny (d x d with d <= ~1024) so the implementation
/// favours clarity over blocking/vectorization tricks.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from nested initializer-style data; all inner
  /// vectors must have equal length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// n x n identity.
  static Matrix Identity(size_t n);

  /// Column vector (n x 1) from `v`.
  static Matrix ColumnVector(const Vector& v);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  /// Extracts row `r` as a vector.
  Vector Row(size_t r) const;
  /// Extracts column `c` as a vector.
  Vector Column(size_t c) const;

  Matrix Transpose() const;

  /// Submatrix [r0, r0+nr) x [c0, c0+nc).
  Matrix Block(size_t r0, size_t c0, size_t nr, size_t nc) const;

  /// Element-wise operations; shapes must match.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Max |a_ij - b_ij|; shapes must match.
  double MaxAbsDiff(const Matrix& other) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// True if |a_ij - a_ji| <= tol for all i, j (square only).
  bool IsSymmetric(double tol = 1e-9) const;

  /// Multi-line debug representation.
  std::string ToString() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double s);
Matrix operator*(double s, Matrix a);

/// Dense matrix product; a.cols() must equal b.rows().
Matrix operator*(const Matrix& a, const Matrix& b);

/// Matrix * vector; `v.size()` must equal `a.cols()`.
Vector MatVec(const Matrix& a, const Vector& v);

/// Dot product; sizes must match.
double Dot(const Vector& a, const Vector& b);

/// Squared Euclidean distance; sizes must match.
double SquaredDistance(const Vector& a, const Vector& b);

/// Euclidean (L2) norm.
double Norm(const Vector& v);

/// Outer product a * b^T as an |a| x |b| matrix.
Matrix Outer(const Vector& a, const Vector& b);

}  // namespace nlq::linalg

#endif  // NLQ_LINALG_MATRIX_H_
