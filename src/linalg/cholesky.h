#ifndef NLQ_LINALG_CHOLESKY_H_
#define NLQ_LINALG_CHOLESKY_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace nlq::linalg {

/// Cholesky factorization A = L L^T for symmetric positive-definite
/// matrices. Preferred over LU for the normal-equation solves since
/// Q = X X^T (plus a ridge term if needed) is SPD whenever X has full
/// row rank.
class CholeskyDecomposition {
 public:
  /// Factors `a`. Fails with InvalidArgument for non-square or
  /// asymmetric input and Internal if `a` is not positive definite.
  static StatusOr<CholeskyDecomposition> Compute(const Matrix& a);

  /// Solves A x = b.
  StatusOr<Vector> Solve(const Vector& b) const;

  /// A^{-1}.
  StatusOr<Matrix> Inverse() const;

  /// The lower-triangular factor L.
  const Matrix& L() const { return l_; }

  /// log(det(A)) — numerically stable via the factor diagonal.
  double LogDeterminant() const;

  size_t size() const { return l_.rows(); }

 private:
  explicit CholeskyDecomposition(Matrix l) : l_(std::move(l)) {}

  Matrix l_;
};

}  // namespace nlq::linalg

#endif  // NLQ_LINALG_CHOLESKY_H_
