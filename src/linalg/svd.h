#ifndef NLQ_LINALG_SVD_H_
#define NLQ_LINALG_SVD_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace nlq::linalg {

/// Thin singular value decomposition A = U diag(s) V^T for an m x n
/// matrix with m >= n: U is m x n with orthonormal columns, V is n x n
/// orthogonal, singular values are non-negative and descending.
struct SvdDecomposition {
  Matrix u;
  Vector singular_values;
  Matrix v;
};

/// Computes the thin SVD via the symmetric eigendecomposition of
/// A^T A (one-sided Gram approach). Adequate for the small, well-
/// conditioned d x d statistical matrices this library handles; tiny
/// singular values below `rank_tol * s_max` are clamped to zero and
/// their U columns completed by Gram-Schmidt.
StatusOr<SvdDecomposition> ComputeSvd(const Matrix& a,
                                      double rank_tol = 1e-12);

}  // namespace nlq::linalg

#endif  // NLQ_LINALG_SVD_H_
