#ifndef NLQ_LINALG_EIGEN_H_
#define NLQ_LINALG_EIGEN_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace nlq::linalg {

/// Result of a symmetric eigendecomposition A = V diag(w) V^T with
/// eigenvalues sorted in descending order and orthonormal columns in V.
struct EigenDecomposition {
  Vector eigenvalues;   // descending
  Matrix eigenvectors;  // column j pairs with eigenvalues[j]
};

/// Cyclic Jacobi eigensolver for symmetric matrices.
///
/// PCA decomposes the d x d correlation (or covariance) matrix; Jacobi
/// is exact up to rotation round-off, unconditionally stable, and more
/// than fast enough for the d <= 1024 regime of the paper.
StatusOr<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                            int max_sweeps = 64,
                                            double tol = 1e-12);

}  // namespace nlq::linalg

#endif  // NLQ_LINALG_EIGEN_H_
