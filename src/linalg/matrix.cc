#include "linalg/matrix.h"

#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace nlq::linalg {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols());
    for (size_t c = 0; c < m.cols(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::ColumnVector(const Vector& v) {
  Matrix m(v.size(), 1);
  for (size_t i = 0; i < v.size(); ++i) m(i, 0) = v[i];
  return m;
}

Vector Matrix::Row(size_t r) const {
  assert(r < rows_);
  return Vector(data_.begin() + static_cast<ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<ptrdiff_t>((r + 1) * cols_));
}

Vector Matrix::Column(size_t c) const {
  assert(c < cols_);
  Vector out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::Block(size_t r0, size_t c0, size_t nr, size_t nc) const {
  assert(r0 + nr <= rows_ && c0 + nc <= cols_);
  Matrix b(nr, nc);
  for (size_t r = 0; r < nr; ++r) {
    for (size_t c = 0; c < nc; ++c) b(r, c) = (*this)(r0 + r, c0 + c);
  }
  return b;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  assert(SameShape(other));
  double max = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    max = std::max(max, std::fabs(data_[i] - other.data_[i]));
  }
  return max;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = r + 1; c < cols_; ++c) {
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

std::string Matrix::ToString() const {
  std::string out = StringPrintf("Matrix %zux%zu\n", rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    out += "  [";
    for (size_t c = 0; c < cols_; ++c) {
      out += StringPrintf("%s%.6g", c == 0 ? "" : ", ", (*this)(r, c));
    }
    out += "]\n";
  }
  return out;
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}

Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}

Matrix operator*(Matrix a, double s) {
  a *= s;
  return a;
}

Matrix operator*(double s, Matrix a) {
  a *= s;
  return a;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

Vector MatVec(const Matrix& a, const Vector& v) {
  assert(v.size() == a.cols());
  Vector out(a.rows(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) sum += a(i, j) * v[j];
    out[i] = sum;
  }
  return out;
}

double Dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double SquaredDistance(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

double Norm(const Vector& v) { return std::sqrt(Dot(v, v)); }

Matrix Outer(const Vector& a, const Vector& b) {
  Matrix m(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) m(i, j) = a[i] * b[j];
  }
  return m;
}

}  // namespace nlq::linalg
