#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace nlq::linalg {

StatusOr<EigenDecomposition> SymmetricEigen(const Matrix& a, int max_sweeps,
                                            double tol) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("eigendecomposition requires square input");
  }
  if (!a.IsSymmetric(1e-8 * (1.0 + a.FrobeniusNorm()))) {
    return Status::InvalidArgument(
        "eigendecomposition requires symmetric input");
  }
  const size_t n = a.rows();
  Matrix m = a;
  Matrix v = Matrix::Identity(n);

  auto off_diagonal_norm = [&m, n] {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) sum += m(i, j) * m(i, j);
    }
    return std::sqrt(2.0 * sum);
  };

  const double scale = std::max(1.0, m.FrobeniusNorm());
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tol * scale) break;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable tangent of the rotation angle.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&m](size_t i, size_t j) { return m(i, i) > m(j, j); });

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = m(order[j], order[j]);
    for (size_t i = 0; i < n; ++i) {
      out.eigenvectors(i, j) = v(i, order[j]);
    }
  }
  return out;
}

}  // namespace nlq::linalg
