#include "linalg/lu.h"

#include <cmath>

namespace nlq::linalg {

StatusOr<LuDecomposition> LuDecomposition::Compute(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("LU requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix lu = a;
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  int sign = 1;

  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest |entry| in this column.
    size_t pivot = col;
    double best = std::fabs(lu(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(lu(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) {
      return Status::Internal("matrix is singular to working precision");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(lu(col, c), lu(pivot, c));
      std::swap(perm[col], perm[pivot]);
      sign = -sign;
    }
    const double diag = lu(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = lu(r, col) / diag;
      lu(r, col) = factor;
      for (size_t c = col + 1; c < n; ++c) {
        lu(r, c) -= factor * lu(col, c);
      }
    }
  }
  return LuDecomposition(std::move(lu), std::move(perm), sign);
}

StatusOr<Vector> LuDecomposition::Solve(const Vector& b) const {
  const size_t n = size();
  if (b.size() != n) {
    return Status::InvalidArgument("rhs size does not match matrix");
  }
  Vector x(n);
  // Forward substitution with permuted rhs (L has unit diagonal).
  for (size_t i = 0; i < n; ++i) {
    double sum = b[perm_[i]];
    for (size_t j = 0; j < i; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum;
  }
  // Back substitution on U.
  for (size_t ii = n; ii-- > 0;) {
    double sum = x[ii];
    for (size_t j = ii + 1; j < n; ++j) sum -= lu_(ii, j) * x[j];
    x[ii] = sum / lu_(ii, ii);
  }
  return x;
}

StatusOr<Matrix> LuDecomposition::Solve(const Matrix& b) const {
  if (b.rows() != size()) {
    return Status::InvalidArgument("rhs rows do not match matrix");
  }
  Matrix x(size(), b.cols());
  for (size_t c = 0; c < b.cols(); ++c) {
    NLQ_ASSIGN_OR_RETURN(Vector col, Solve(b.Column(c)));
    for (size_t r = 0; r < size(); ++r) x(r, c) = col[r];
  }
  return x;
}

StatusOr<Matrix> LuDecomposition::Inverse() const {
  return Solve(Matrix::Identity(size()));
}

double LuDecomposition::Determinant() const {
  double det = sign_;
  for (size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

StatusOr<Matrix> Invert(const Matrix& a) {
  NLQ_ASSIGN_OR_RETURN(LuDecomposition lu, LuDecomposition::Compute(a));
  return lu.Inverse();
}

StatusOr<Vector> SolveLinearSystem(const Matrix& a, const Vector& b) {
  NLQ_ASSIGN_OR_RETURN(LuDecomposition lu, LuDecomposition::Compute(a));
  return lu.Solve(b);
}

}  // namespace nlq::linalg
