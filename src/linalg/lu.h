#ifndef NLQ_LINALG_LU_H_
#define NLQ_LINALG_LU_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace nlq::linalg {

/// LU decomposition with partial pivoting of a square matrix.
///
/// Used by linear regression to invert Q = X X^T (the paper's
/// beta = Q^{-1} (X Y^T) step, performed "outside the DBMS").
class LuDecomposition {
 public:
  /// Factors `a`. Fails with InvalidArgument for non-square input and
  /// Internal for (numerically) singular matrices.
  static StatusOr<LuDecomposition> Compute(const Matrix& a);

  /// Solves A x = b for one right-hand side.
  StatusOr<Vector> Solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  StatusOr<Matrix> Solve(const Matrix& b) const;

  /// A^{-1}.
  StatusOr<Matrix> Inverse() const;

  /// det(A), including the pivot sign.
  double Determinant() const;

  size_t size() const { return lu_.rows(); }

 private:
  LuDecomposition(Matrix lu, std::vector<size_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), sign_(sign) {}

  Matrix lu_;                 // packed L (unit diagonal) and U
  std::vector<size_t> perm_;  // row permutation
  int sign_;                  // permutation parity for the determinant
};

/// Convenience: inverts a square matrix via LU.
StatusOr<Matrix> Invert(const Matrix& a);

/// Convenience: solves A x = b via LU.
StatusOr<Vector> SolveLinearSystem(const Matrix& a, const Vector& b);

}  // namespace nlq::linalg

#endif  // NLQ_LINALG_LU_H_
