#include "linalg/svd.h"

#include <cmath>

#include "linalg/eigen.h"

namespace nlq::linalg {

StatusOr<SvdDecomposition> ComputeSvd(const Matrix& a, double rank_tol) {
  if (a.rows() < a.cols()) {
    return Status::InvalidArgument("ComputeSvd requires rows >= cols");
  }
  const size_t m = a.rows();
  const size_t n = a.cols();

  // Gram matrix G = A^T A; eigenvalues are squared singular values.
  Matrix g(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double sum = 0.0;
      for (size_t k = 0; k < m; ++k) sum += a(k, i) * a(k, j);
      g(i, j) = sum;
      g(j, i) = sum;
    }
  }
  NLQ_ASSIGN_OR_RETURN(EigenDecomposition eig, SymmetricEigen(g));

  SvdDecomposition out;
  out.v = eig.eigenvectors;
  out.singular_values.resize(n);
  double s_max = 0.0;
  for (size_t j = 0; j < n; ++j) {
    const double ev = std::max(0.0, eig.eigenvalues[j]);
    out.singular_values[j] = std::sqrt(ev);
    s_max = std::max(s_max, out.singular_values[j]);
  }

  // U column j = A v_j / s_j for significant singular values.
  out.u = Matrix(m, n);
  const double cutoff = rank_tol * std::max(1.0, s_max);
  for (size_t j = 0; j < n; ++j) {
    if (out.singular_values[j] <= cutoff) {
      out.singular_values[j] = 0.0;
      continue;
    }
    const Vector vj = out.v.Column(j);
    const Vector uj = MatVec(a, vj);
    for (size_t i = 0; i < m; ++i) out.u(i, j) = uj[i] / out.singular_values[j];
  }

  // Complete null-space U columns by Gram-Schmidt against existing ones
  // so U always has orthonormal columns.
  for (size_t j = 0; j < n; ++j) {
    if (out.singular_values[j] > 0.0) continue;
    Vector candidate(m, 0.0);
    for (size_t attempt = 0; attempt < m; ++attempt) {
      for (size_t i = 0; i < m; ++i) candidate[i] = (i == (j + attempt) % m);
      for (size_t k = 0; k < n; ++k) {
        if (k == j) continue;
        const Vector uk = out.u.Column(k);
        const double proj = Dot(candidate, uk);
        for (size_t i = 0; i < m; ++i) candidate[i] -= proj * uk[i];
      }
      const double norm = Norm(candidate);
      if (norm > 1e-6) {
        for (size_t i = 0; i < m; ++i) out.u(i, j) = candidate[i] / norm;
        break;
      }
    }
  }
  return out;
}

}  // namespace nlq::linalg
