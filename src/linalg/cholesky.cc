#include "linalg/cholesky.h"

#include <cmath>

namespace nlq::linalg {

StatusOr<CholeskyDecomposition> CholeskyDecomposition::Compute(
    const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  if (!a.IsSymmetric(1e-8 * (1.0 + a.FrobeniusNorm()))) {
    return Status::InvalidArgument("Cholesky requires a symmetric matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0) {
      return Status::Internal("matrix is not positive definite");
    }
    l(j, j) = std::sqrt(diag);
    for (size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / l(j, j);
    }
  }
  return CholeskyDecomposition(std::move(l));
}

StatusOr<Vector> CholeskyDecomposition::Solve(const Vector& b) const {
  const size_t n = size();
  if (b.size() != n) {
    return Status::InvalidArgument("rhs size does not match matrix");
  }
  // L y = b.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t j = 0; j < i; ++j) sum -= l_(i, j) * y[j];
    y[i] = sum / l_(i, i);
  }
  // L^T x = y.
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t j = ii + 1; j < n; ++j) sum -= l_(j, ii) * x[j];
    x[ii] = sum / l_(ii, ii);
  }
  return x;
}

StatusOr<Matrix> CholeskyDecomposition::Inverse() const {
  const size_t n = size();
  Matrix inv(n, n);
  Vector e(n, 0.0);
  for (size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    NLQ_ASSIGN_OR_RETURN(Vector col, Solve(e));
    for (size_t r = 0; r < n; ++r) inv(r, c) = col[r];
    e[c] = 0.0;
  }
  return inv;
}

double CholeskyDecomposition::LogDeterminant() const {
  double sum = 0.0;
  for (size_t i = 0; i < size(); ++i) sum += std::log(l_(i, i));
  return 2.0 * sum;
}

}  // namespace nlq::linalg
