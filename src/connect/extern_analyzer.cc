#include "connect/extern_analyzer.h"

#include <charconv>
#include <cstdio>
#include <vector>

#include "common/strings.h"

namespace nlq::connect {

StatusOr<stats::SufStats> AnalyzeFlatFile(
    const std::string& path, size_t d,
    const ExternalAnalyzerOptions& options) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }

  stats::SufStats stats(d, options.kind);
  std::vector<double> x(d);
  std::string line;
  char buffer[64 * 1024];
  std::string pending;

  auto process_line = [&](std::string_view text) -> Status {
    if (text.empty()) return Status::OK();
    size_t field = 0;
    size_t value_index = 0;
    const char* cursor = text.data();
    const char* end = text.data() + text.size();
    while (cursor <= end) {
      const char* comma = cursor;
      while (comma < end && *comma != ',') ++comma;
      const bool is_id = options.skip_id_column && field == 0;
      if (!is_id) {
        if (value_index >= d) break;  // extra columns (e.g. Y) ignored
        double value = 0.0;
        auto [ptr, ec] = std::from_chars(cursor, comma, value);
        if (ec != std::errc() || ptr != comma) {
          return Status::ParseError("bad numeric field in flat file");
        }
        x[value_index++] = value;
      }
      ++field;
      if (comma == end) break;
      cursor = comma + 1;
    }
    if (value_index != d) {
      return Status::ParseError(StringPrintf(
          "expected %zu value columns, found %zu", d, value_index));
    }
    stats.Update(x.data());
    return Status::OK();
  };

  // Buffered line reader (the workstation program is a plain
  // single-threaded scan).
  for (;;) {
    const size_t got = std::fread(buffer, 1, sizeof(buffer), file);
    if (got == 0) break;
    size_t start = 0;
    for (size_t i = 0; i < got; ++i) {
      if (buffer[i] != '\n') continue;
      if (pending.empty()) {
        const Status s = process_line(std::string_view(buffer + start, i - start));
        if (!s.ok()) {
          std::fclose(file);
          return s;
        }
      } else {
        pending.append(buffer + start, i - start);
        const Status s = process_line(pending);
        if (!s.ok()) {
          std::fclose(file);
          return s;
        }
        pending.clear();
      }
      start = i + 1;
    }
    pending.append(buffer + start, got - start);
  }
  std::fclose(file);
  if (!pending.empty()) {
    NLQ_RETURN_IF_ERROR(process_line(pending));
  }
  return stats;
}

}  // namespace nlq::connect
