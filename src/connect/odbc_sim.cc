#include "connect/odbc_sim.h"

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace nlq::connect {

int64_t JitteredBackoffUs(const RetryPolicy& policy, int retry_index,
                          int64_t backoff_us) {
  if (backoff_us <= 0) return 0;
  if (!policy.jitter) return backoff_us;
  // One generator per (seed, retry_index): the draw for retry k does
  // not depend on how earlier draws consumed the stream, so a test
  // can predict any retry's sleep in isolation.
  Random rng(policy.jitter_seed * 0x9e3779b97f4a7c15ull +
             static_cast<uint64_t>(retry_index));
  return static_cast<int64_t>(
      rng.NextUint64(static_cast<uint64_t>(backoff_us) + 1));
}

double LinkModel::TransferSeconds(uint64_t rows, size_t values_per_row,
                                  uint64_t bytes) const {
  const double overhead_us =
      static_cast<double>(rows) *
      (per_row_overhead_us +
       per_value_overhead_us * static_cast<double>(values_per_row));
  const double wire_seconds =
      static_cast<double>(bytes) / (bandwidth_mbps * 125000.0);
  return overhead_us / 1e6 + wire_seconds;
}

double OdbcExportResult::TotalSeconds() const {
  return std::max(serialize_seconds, modeled_link_seconds);
}

StatusOr<OdbcExportResult> OdbcExporter::ExportTable(
    const storage::PartitionedTable& table, const std::string& path) const {
  int64_t backoff_us = retry_.initial_backoff_us;
  const int max_attempts = retry_.max_attempts > 0 ? retry_.max_attempts : 1;
  for (int attempt = 1;; ++attempt) {
    StatusOr<OdbcExportResult> result = ExportTableOnce(table, path);
    if (result.ok()) {
      result.value().attempts = attempt;
      return result;
    }
    // Only transient link/disk faults are retryable; anything else
    // (bad table state, cancellation) surfaces immediately.
    if (result.status().code() != StatusCode::kIOError ||
        attempt >= max_attempts) {
      return result.status();
    }
    MetricsRegistry::Global().counter("odbc.retries").Increment();
    const int64_t sleep_us =
        JitteredBackoffUs(retry_, /*retry_index=*/attempt - 1, backoff_us);
    if (sleep_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    }
    // The growth schedule stays on the un-jittered bound, so a lucky
    // short sleep does not also shrink every later bound.
    backoff_us = static_cast<int64_t>(static_cast<double>(backoff_us) *
                                      retry_.multiplier);
  }
}

StatusOr<OdbcExportResult> OdbcExporter::ExportTableOnce(
    const storage::PartitionedTable& table, const std::string& path) const {
  NLQ_FAILPOINT("odbc_export");
  Stopwatch watch;
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }

  OdbcExportResult result;
  std::string line;
  for (size_t p = 0; p < table.num_partitions(); ++p) {
    storage::TableScanner scanner = table.partition(p).Scan();
    while (scanner.Next()) {
      const storage::Row& row = scanner.row();
      line.clear();
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) line.push_back(',');
        const storage::Datum& v = row[c];
        if (v.is_null()) continue;  // empty field
        switch (v.type()) {
          case storage::DataType::kDouble:
            AppendDouble(&line, v.double_value());
            break;
          case storage::DataType::kInt64:
            line += std::to_string(v.int_value());
            break;
          case storage::DataType::kVarchar:
            line += v.string_value();
            break;
        }
      }
      line.push_back('\n');
      if (std::fwrite(line.data(), 1, line.size(), file) != line.size()) {
        std::fclose(file);
        return Status::IOError("short write exporting to '" + path + "'");
      }
      result.bytes += line.size();
      ++result.rows;
    }
    if (!scanner.status().ok()) {
      std::fclose(file);
      return scanner.status();
    }
  }
  if (std::fclose(file) != 0) {
    return Status::IOError("close failed for '" + path + "'");
  }
  result.serialize_seconds = watch.ElapsedSeconds();
  result.modeled_link_seconds = link_.TransferSeconds(
      result.rows, table.schema().num_columns(), result.bytes);
  return result;
}

}  // namespace nlq::connect
