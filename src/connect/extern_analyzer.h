#ifndef NLQ_CONNECT_EXTERN_ANALYZER_H_
#define NLQ_CONNECT_EXTERN_ANALYZER_H_

#include <string>

#include "common/status.h"
#include "stats/sufstats.h"

namespace nlq::connect {

/// The paper's external comparator: "a workstation ... with a C++
/// implementation computing n, L, Q" over "data sets stored in text
/// files exported out from the DBMS". Single-threaded (the
/// workstation has one CPU vs. the server's 20 parallel threads),
/// scans the flat file once, keeps L and Q in main memory at all
/// times.
struct ExternalAnalyzerOptions {
  stats::MatrixKind kind = stats::MatrixKind::kLowerTriangular;
  /// The exported file's first column is the point id `i`, which is
  /// "not used for statistical purposes" — skip it.
  bool skip_id_column = true;
};

/// Computes (n, L, Q) over the d value columns of the CSV at `path`.
/// Rows with a different field count fail with ParseError.
StatusOr<stats::SufStats> AnalyzeFlatFile(
    const std::string& path, size_t d,
    const ExternalAnalyzerOptions& options = {});

}  // namespace nlq::connect

#endif  // NLQ_CONNECT_EXTERN_ANALYZER_H_
