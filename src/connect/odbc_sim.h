#ifndef NLQ_CONNECT_ODBC_SIM_H_
#define NLQ_CONNECT_ODBC_SIM_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/partitioned_table.h"

namespace nlq::connect {

/// Cost model for exporting a data set over an ODBC connection on the
/// paper's 100 Mbps LAN. Defaults are calibrated against the paper's
/// Table 2 ODBC column (e.g. n=100k, d=8 → 168 s; d=64 → 1204 s):
/// ODBC row-at-a-time fetch dominates with a per-value bind/convert
/// cost, plus the wire time of the text form.
struct LinkModel {
  double bandwidth_mbps = 100.0;
  double per_row_overhead_us = 100.0;
  double per_value_overhead_us = 190.0;

  /// Modeled wall-clock seconds to ship `rows` rows of
  /// `values_per_row` values totaling `bytes` of text.
  double TransferSeconds(uint64_t rows, size_t values_per_row,
                         uint64_t bytes) const;
};

/// Retry behavior for transient export failures. Real ODBC links
/// drop: the exporter retries an attempt that fails with kIOError,
/// backing off exponentially between attempts. Non-IO errors (bad
/// table state, cancellation) are never retried.
///
/// Backoff uses full jitter (AWS-style): each sleep is uniform in
/// [0, backoff] where backoff itself grows by `multiplier` per retry.
/// Un-jittered exponential backoff synchronizes a fleet of clients
/// that failed together into retrying together; the jitter spreads
/// the retry storm out. `jitter_seed` makes the draw deterministic
/// for tests; 0 seeds from the policy defaults (still deterministic
/// per-exporter, varying per attempt sequence).
struct RetryPolicy {
  int max_attempts = 3;            // total attempts, including the first
  int64_t initial_backoff_us = 100;  // backoff bound before the first retry
  double multiplier = 2.0;           // backoff growth per retry
  bool jitter = true;                // sleep uniform in [0, backoff]
  uint64_t jitter_seed = 0x0dbcu;    // deterministic jitter stream
};

/// The jittered sleep for retry `retry_index` (0 = first retry) given
/// `backoff_us`, the un-jittered bound for that retry. Exposed for
/// tests: the exporter sleeps exactly this with the same policy/seed.
int64_t JitteredBackoffUs(const RetryPolicy& policy, int retry_index,
                          int64_t backoff_us);

/// Result of one export.
struct OdbcExportResult {
  uint64_t rows = 0;
  uint64_t bytes = 0;           // text bytes written
  double serialize_seconds = 0; // measured CPU time to produce the file
  double modeled_link_seconds = 0;  // LinkModel estimate for the wire
  int attempts = 1;             // attempts taken (> 1 means retries fired)

  /// Total export time a client would observe (serialization overlaps
  /// the wire in practice, so the max of the two plus a small setup).
  double TotalSeconds() const;
};

/// Simulated ODBC exporter: actually serializes every row of a table
/// to comma-separated text at `path` (real CPU + disk cost) and
/// reports the modeled link time for shipping that text to the
/// workstation. The paper's conclusion — "export times can become a
/// reason not to analyze a data set outside the database" — is about
/// exactly this cost.
class OdbcExporter {
 public:
  explicit OdbcExporter(LinkModel link = LinkModel(),
                        RetryPolicy retry = RetryPolicy())
      : link_(link), retry_(retry) {}

  const LinkModel& link() const { return link_; }
  const RetryPolicy& retry() const { return retry_; }

  /// Exports all rows (partition order) as CSV. NULLs export as empty
  /// fields. An attempt that fails with kIOError is retried per the
  /// RetryPolicy (the file is rewritten from scratch); the result's
  /// `attempts` records how many were taken.
  StatusOr<OdbcExportResult> ExportTable(
      const storage::PartitionedTable& table, const std::string& path) const;

 private:
  /// One serialization attempt, no retries.
  StatusOr<OdbcExportResult> ExportTableOnce(
      const storage::PartitionedTable& table, const std::string& path) const;

  LinkModel link_;
  RetryPolicy retry_;
};

}  // namespace nlq::connect

#endif  // NLQ_CONNECT_ODBC_SIM_H_
