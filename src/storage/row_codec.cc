#include "storage/row_codec.h"

#include <cstring>

namespace nlq::storage {
namespace {

void AppendRaw(std::string* out, const void* src, size_t len) {
  out->append(static_cast<const char*>(src), len);
}

}  // namespace

void RowCodec::Encode(const Row& row, std::string* out) const {
  const auto& cols = schema_->columns();
  for (size_t c = 0; c < cols.size(); ++c) {
    const Datum& d = row[c];
    const char null_byte = d.is_null() ? 1 : 0;
    out->push_back(null_byte);
    if (d.is_null()) continue;
    switch (cols[c].type) {
      case DataType::kDouble: {
        const double v = d.AsDouble();
        AppendRaw(out, &v, sizeof(v));
        break;
      }
      case DataType::kInt64: {
        const int64_t v = d.type() == DataType::kInt64
                              ? d.int_value()
                              : static_cast<int64_t>(d.AsDouble());
        AppendRaw(out, &v, sizeof(v));
        break;
      }
      case DataType::kVarchar: {
        const std::string& s = d.string_value();
        const uint32_t len = static_cast<uint32_t>(s.size());
        AppendRaw(out, &len, sizeof(len));
        AppendRaw(out, s.data(), s.size());
        break;
      }
    }
  }
}

size_t RowCodec::EncodedSize(const Row& row) const {
  const auto& cols = schema_->columns();
  size_t size = cols.size();  // null bytes
  for (size_t c = 0; c < cols.size(); ++c) {
    if (row[c].is_null()) continue;
    switch (cols[c].type) {
      case DataType::kDouble:
      case DataType::kInt64:
        size += 8;
        break;
      case DataType::kVarchar:
        size += 4 + row[c].string_value().size();
        break;
    }
  }
  return size;
}

Status RowCodec::Decode(const char* data, size_t size, size_t* offset,
                        Row* row) const {
  const auto& cols = schema_->columns();
  row->resize(cols.size());
  size_t pos = *offset;
  for (size_t c = 0; c < cols.size(); ++c) {
    if (pos + 1 > size) return Status::Internal("truncated row (null byte)");
    const bool is_null = data[pos] != 0;
    ++pos;
    if (is_null) {
      (*row)[c] = Datum::Null(cols[c].type);
      continue;
    }
    switch (cols[c].type) {
      case DataType::kDouble: {
        if (pos + 8 > size) return Status::Internal("truncated row (double)");
        double v;
        std::memcpy(&v, data + pos, 8);
        pos += 8;
        (*row)[c] = Datum::Double(v);
        break;
      }
      case DataType::kInt64: {
        if (pos + 8 > size) return Status::Internal("truncated row (int64)");
        int64_t v;
        std::memcpy(&v, data + pos, 8);
        pos += 8;
        (*row)[c] = Datum::Int64(v);
        break;
      }
      case DataType::kVarchar: {
        if (pos + 4 > size) return Status::Internal("truncated row (vlen)");
        uint32_t len;
        std::memcpy(&len, data + pos, 4);
        pos += 4;
        if (pos + len > size) return Status::Internal("truncated row (vchar)");
        (*row)[c] = Datum::Varchar(std::string(data + pos, len));
        pos += len;
        break;
      }
    }
  }
  *offset = pos;
  return Status::OK();
}

}  // namespace nlq::storage
