#ifndef NLQ_STORAGE_PARTITIONED_TABLE_H_
#define NLQ_STORAGE_PARTITIONED_TABLE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace nlq::storage {

/// Horizontally hash-partitioned table — the shared-nothing layout the
/// paper's Teradata deployment uses ("data sets were horizontally
/// partitioned evenly among threads"). Rows are routed by the hash of
/// the first column (the point id `i`), which spreads a sequential id
/// space evenly across partitions.
class PartitionedTable {
 public:
  PartitionedTable(Schema schema, size_t num_partitions);

  const Schema& schema() const { return schema_; }
  size_t num_partitions() const { return partitions_.size(); }

  uint64_t num_rows() const;
  uint64_t data_bytes() const;

  /// Validates and appends, routing by hash of column 0.
  Status AppendRow(const Row& row);

  /// Trusted bulk-load path (no validation).
  void AppendRowUnchecked(const Row& row);

  /// Partition accessors for per-AMP parallel scans.
  const Table& partition(size_t p) const { return *partitions_[p]; }
  Table& partition(size_t p) { return *partitions_[p]; }

  /// Opens a batched cursor over partition `p`.
  BatchScanner ScanPartitionBatches(size_t p) const {
    return partitions_[p]->ScanBatch();
  }

  /// Opens a batched cursor over rows [begin_row, end_row) of
  /// partition `p` — one morsel of the engine's parallel scans.
  BatchScanner ScanPartitionBatches(size_t p, uint64_t begin_row,
                                    uint64_t end_row) const {
    return partitions_[p]->ScanBatchRange(begin_row, end_row);
  }

  /// Opens a columnar cursor over partition `p` restricted to
  /// `columns` (schema slot indices of DOUBLE/BIGINT columns).
  ColumnBatchScanner ScanPartitionColumnBatches(
      size_t p, std::vector<size_t> columns,
      size_t batch_capacity = ColumnBatch::kDefaultCapacity) const {
    return partitions_[p]->ScanColumnBatch(std::move(columns), batch_capacity);
  }

  /// Columnar counterpart of the morsel-range row cursor.
  ColumnBatchScanner ScanPartitionColumnBatches(
      size_t p, std::vector<size_t> columns, uint64_t begin_row,
      uint64_t end_row,
      size_t batch_capacity = ColumnBatch::kDefaultCapacity) const {
    return partitions_[p]->ScanColumnBatchRange(std::move(columns), begin_row,
                                                end_row, batch_capacity);
  }

  /// Appends to an explicit partition, bypassing hash routing — for
  /// tests and benchmarks that need a controlled (e.g. skewed) layout.
  Status AppendRowToPartition(size_t p, const Row& row) {
    NLQ_RETURN_IF_ERROR(schema_.ValidateRow(row));
    if (partitions_[p]->is_spilled()) {
      return Status::NotSupported(
          "cannot append: partition is spilled to disk and read-only");
    }
    partitions_[p]->AppendRowUnchecked(row);
    return Status::OK();
  }

  /// Materializes all rows across partitions (partition order, then
  /// insertion order within a partition).
  StatusOr<std::vector<Row>> ReadAllRows() const;

  /// Spills every partition to compressed on-disk segments under
  /// `path_prefix` (one scratch file per partition, suffixed ".pN"),
  /// read back through `pool`. See Table::SpillToDisk for semantics;
  /// fails partway leaves already-spilled partitions spilled — scans
  /// stay correct either way.
  Status SpillToDisk(const std::string& path_prefix, BufferPool* pool,
                     size_t chunk_rows = SpillSegment::kDefaultChunkRows);

  /// True if every partition is spilled (false for an empty table with
  /// no spill call yet).
  bool is_spilled() const;

  /// Removes all rows from all partitions.
  void Clear();

 private:
  size_t RouteRow(const Row& row) const;

  Schema schema_;
  std::vector<std::unique_ptr<Table>> partitions_;
};

}  // namespace nlq::storage

#endif  // NLQ_STORAGE_PARTITIONED_TABLE_H_
