#include "storage/partitioned_table.h"

namespace nlq::storage {

PartitionedTable::PartitionedTable(Schema schema, size_t num_partitions)
    : schema_(std::move(schema)) {
  if (num_partitions == 0) num_partitions = 1;
  partitions_.reserve(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    partitions_.push_back(std::make_unique<Table>(schema_));
  }
}

uint64_t PartitionedTable::num_rows() const {
  uint64_t total = 0;
  for (const auto& p : partitions_) total += p->num_rows();
  return total;
}

uint64_t PartitionedTable::data_bytes() const {
  uint64_t total = 0;
  for (const auto& p : partitions_) total += p->data_bytes();
  return total;
}

size_t PartitionedTable::RouteRow(const Row& row) const {
  if (row.empty() || partitions_.size() == 1) return 0;
  // Fibonacci hashing of the key hash spreads sequential ids evenly.
  const size_t h = row[0].KeyHash() * 0x9e3779b97f4a7c15ULL;
  return h % partitions_.size();
}

Status PartitionedTable::AppendRow(const Row& row) {
  NLQ_RETURN_IF_ERROR(schema_.ValidateRow(row));
  Table* part = partitions_[RouteRow(row)].get();
  if (part->is_spilled()) {
    return Status::NotSupported("table is spilled and read-only");
  }
  part->AppendRowUnchecked(row);
  return Status::OK();
}

void PartitionedTable::AppendRowUnchecked(const Row& row) {
  partitions_[RouteRow(row)]->AppendRowUnchecked(row);
}

StatusOr<std::vector<Row>> PartitionedTable::ReadAllRows() const {
  std::vector<Row> rows;
  rows.reserve(num_rows());
  for (const auto& p : partitions_) {
    NLQ_ASSIGN_OR_RETURN(std::vector<Row> part_rows, p->ReadAllRows());
    for (auto& r : part_rows) rows.push_back(std::move(r));
  }
  return rows;
}

Status PartitionedTable::SpillToDisk(const std::string& path_prefix,
                                     BufferPool* pool, size_t chunk_rows) {
  for (size_t p = 0; p < partitions_.size(); ++p) {
    if (partitions_[p]->is_spilled()) continue;
    NLQ_RETURN_IF_ERROR(partitions_[p]->SpillToDisk(
        path_prefix + ".p" + std::to_string(p), pool, chunk_rows));
  }
  return Status::OK();
}

bool PartitionedTable::is_spilled() const {
  for (const auto& p : partitions_) {
    if (!p->is_spilled()) return false;
  }
  return true;
}

void PartitionedTable::Clear() {
  for (auto& p : partitions_) p->Clear();
}

}  // namespace nlq::storage
