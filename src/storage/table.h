#ifndef NLQ_STORAGE_TABLE_H_
#define NLQ_STORAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column_batch.h"
#include "storage/page.h"
#include "storage/row_batch.h"
#include "storage/row_codec.h"
#include "storage/schema.h"
#include "storage/spill_segment.h"
#include "storage/value.h"

namespace nlq::storage {

class Table;

/// Cursor state shared by the scanners when the partition is spilled:
/// the decoded image of the current chunk plus the absolute row window
/// still to produce. Lives behind a unique_ptr so the resident scan
/// path pays nothing for it.
struct SpilledScanState {
  const SpillSegment* seg = nullptr;
  std::vector<size_t> columns;          // schema slots decoded per chunk
  std::vector<ColumnVector> cols;       // parallel to columns
  std::vector<ColumnVector*> col_ptrs;  // parallel to cols
  std::string scratch;                  // chunk reassembly buffer
  uint64_t next_row = 0;                // absolute next row to produce
  uint64_t end_row = 0;
  size_t loaded_chunk = SIZE_MAX;
  size_t pages_decoded = 0;  // spill pages read for loaded chunks

  /// Decodes the chunk holding `row` unless already loaded, and queues
  /// background readahead for the next chunk of the scan window.
  Status EnsureChunkFor(uint64_t row);
};

/// Sequential cursor over one table partition. Decodes rows page by
/// page; `Next` returns false at end of data.
class TableScanner {
 public:
  explicit TableScanner(const Table* table);

  /// Advances to the next row; returns false at end. On success the
  /// decoded row is available via `row()` (valid until the next call).
  bool Next();

  const Row& row() const { return row_; }

  /// Error observed during the scan, if any.
  const Status& status() const { return status_; }

 private:
  const Table* table_;
  RowCodec codec_;
  size_t page_index_ = 0;
  size_t page_offset_ = 0;
  size_t rows_left_in_page_ = 0;
  Row row_;
  Status status_;
  std::unique_ptr<SpilledScanState> spill_;  // set iff the table is spilled
};

/// Batched cursor over one table partition: decodes up to a batch's
/// capacity of rows per call (a page's worth or more), amortizing
/// cursor bookkeeping over the batch instead of paying it per row.
///
/// The range form scans rows [begin_row, end_row) in insertion order —
/// the morsel-granular unit of the engine's parallel scans. Seeking
/// skips whole pages by their row counts and size-steps the encoded
/// bytes inside the first page, so no skipped row is materialized.
class BatchScanner {
 public:
  explicit BatchScanner(const Table* table);
  BatchScanner(const Table* table, uint64_t begin_row, uint64_t end_row);

  /// Clears `out` and fills it with up to `out->capacity()` decoded
  /// rows. Returns false when the scan is exhausted (out left empty)
  /// or a decode error occurred (see `status()`).
  bool Next(RowBatch* out);

  /// Error observed during the scan, if any.
  const Status& status() const { return status_; }

  /// Distinct pages this cursor decoded rows from so far. Seeked-over
  /// pages don't count (their rows were never materialized); a page
  /// split across two ranges is counted once by each range's cursor.
  size_t pages_decoded() const { return pages_decoded_; }

 private:
  const Table* table_;
  RowCodec codec_;
  size_t page_index_ = 0;
  size_t page_offset_ = 0;
  size_t rows_left_in_page_ = 0;
  uint64_t rows_wanted_ = 0;  // rows still to produce before end_row
  size_t pages_decoded_ = 0;
  size_t counted_page_ = SIZE_MAX;  // last page charged to pages_decoded_
  Status status_;
  std::unique_ptr<SpilledScanState> spill_;  // set iff the table is spilled
};

/// Columnar cursor over one table partition: decodes the projected
/// columns of up to a batch's capacity of rows per call straight into
/// typed arrays (no Datum construction). Non-projected columns are
/// size-stepped in the encoded bytes.
class ColumnBatchScanner {
 public:
  /// `columns` are schema slot indices to materialize; each must be a
  /// DOUBLE or BIGINT column (VARCHAR stays on the row path).
  ColumnBatchScanner(const Table* table, std::vector<size_t> columns,
                     size_t batch_capacity = ColumnBatch::kDefaultCapacity);

  /// Range form: decodes rows [begin_row, end_row) only (the columnar
  /// morsel scan; see BatchScanner for the seek mechanics).
  ColumnBatchScanner(const Table* table, std::vector<size_t> columns,
                     uint64_t begin_row, uint64_t end_row,
                     size_t batch_capacity = ColumnBatch::kDefaultCapacity);

  /// Re-configures `out` for this scan's projection and fills it with
  /// up to `batch_capacity` decoded rows. Returns false when the scan
  /// is exhausted (out left empty) or on a decode error (see
  /// `status()`).
  bool Next(ColumnBatch* out);

  /// Error observed during the scan, if any.
  const Status& status() const { return status_; }

  /// Distinct pages this cursor decoded rows from (see
  /// BatchScanner::pages_decoded).
  size_t pages_decoded() const { return pages_decoded_; }

 private:
  /// Rejects VARCHAR projections; sets status_ and returns false.
  bool CheckColumnTypes();

  const Table* table_;
  std::vector<size_t> columns_;
  size_t batch_capacity_;
  ColumnDecoder decoder_;
  size_t page_index_ = 0;
  size_t page_offset_ = 0;
  size_t rows_left_in_page_ = 0;
  uint64_t rows_wanted_ = 0;  // rows still to produce before end_row
  size_t pages_decoded_ = 0;
  size_t counted_page_ = SIZE_MAX;  // last page charged to pages_decoded_
  Status status_;
  std::unique_ptr<SpilledScanState> spill_;  // set iff the table is spilled
};

/// Append-only heap table: a schema plus a run of 64 KB pages.
///
/// A Table is one *partition* in engine terms; PartitionedTable
/// aggregates several into the shared-nothing layout the paper's
/// Teradata system uses.
class Table {
 public:
  explicit Table(Schema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }
  size_t num_pages() const { return pages_.size(); }

  /// Counts destructive mutations: Clear(), SpillToDisk() and
  /// LoadFromFile() (which Clears first) bump it; appends do NOT —
  /// appends only grow the row space, so incremental consumers (the
  /// maintained-view registry) can tell "rows were added past my
  /// watermark" (epoch unchanged, num_rows grew: accumulate the delta)
  /// from "history I already consumed was rewritten" (epoch changed:
  /// discard and rebuild).
  uint64_t mutation_epoch() const { return mutation_epoch_; }

  /// Total payload bytes across pages (row data only).
  uint64_t data_bytes() const { return data_bytes_; }

  /// Validates against the schema and appends. Fails with
  /// kNotSupported once the table is spilled.
  Status AppendRow(const Row& row);

  /// Appends without schema validation (trusted bulk-load path).
  /// Must not be called on a spilled table.
  void AppendRowUnchecked(const Row& row);

  /// Converts this partition's row pages into a compressed columnar
  /// SpillSegment at `path`, read back through `pool`, and frees the
  /// in-memory pages — the larger-than-RAM mode of the engine. Every
  /// scanner transparently serves the same rows in the same order
  /// afterwards; appends and SaveToFile become kNotSupported. VARCHAR
  /// schemas cannot spill.
  Status SpillToDisk(const std::string& path, BufferPool* pool,
                     size_t chunk_rows = SpillSegment::kDefaultChunkRows);

  bool is_spilled() const { return spill_ != nullptr; }

  /// The on-disk segment backing a spilled table (nullptr otherwise).
  const SpillSegment* spill() const { return spill_.get(); }

  /// Opens a scan cursor.
  TableScanner Scan() const { return TableScanner(this); }

  /// Opens a batched scan cursor (one decode call per RowBatch).
  BatchScanner ScanBatch() const { return BatchScanner(this); }

  /// Opens a batched scan cursor over rows [begin_row, end_row) — one
  /// morsel of this partition. Ranges from the same fixed grid
  /// partition the row space exactly, whatever thread drains them.
  BatchScanner ScanBatchRange(uint64_t begin_row, uint64_t end_row) const {
    return BatchScanner(this, begin_row, end_row);
  }

  /// Opens a columnar scan cursor over `columns` (schema slot indices
  /// of DOUBLE/BIGINT columns).
  ColumnBatchScanner ScanColumnBatch(
      std::vector<size_t> columns,
      size_t batch_capacity = ColumnBatch::kDefaultCapacity) const {
    return ColumnBatchScanner(this, std::move(columns), batch_capacity);
  }

  /// Columnar counterpart of ScanBatchRange.
  ColumnBatchScanner ScanColumnBatchRange(
      std::vector<size_t> columns, uint64_t begin_row, uint64_t end_row,
      size_t batch_capacity = ColumnBatch::kDefaultCapacity) const {
    return ColumnBatchScanner(this, std::move(columns), begin_row, end_row,
                              batch_capacity);
  }

  /// Decoded-column cache: decodes every not-yet-cached column of
  /// `columns` in one pass over the pages and keeps the full-partition
  /// ColumnVectors for reuse (the paper's workload scans the same X
  /// for the model build and again for scoring). Invalidated by any
  /// append, Clear(), or LoadFromFile(). Concurrent fills from
  /// different statements serialize on an internal mutex; fills may
  /// run concurrently with readers of already-cached slots (the server
  /// executes many SELECTs against one table at once). Mutations are
  /// NOT safe against concurrent fills or reads — the engine excludes
  /// them with its statement gate (DESIGN.md §14).
  Status EnsureDecodedColumns(const std::vector<size_t>& columns) const;

  /// Cached decoded column `col`, or nullptr if not (or no longer)
  /// cached. Pointers stay valid until the next mutation of the table.
  /// Safe to call concurrently with fills of other statements; a
  /// non-null result is fully decoded (release/acquire pairing with
  /// the filling thread).
  const ColumnVector* decoded_column(size_t col) const {
    return col < cache_->slots.size()
               ? cache_->slots[col].load(std::memory_order_acquire)
               : nullptr;
  }

  /// Materializes every row (tests / small model tables only).
  StatusOr<std::vector<Row>> ReadAllRows() const;

  /// Removes all rows, keeping the schema. A spilled table reverts to
  /// an empty in-memory one (the spill file is dropped).
  void Clear();

  /// Persists pages to `path` (page images preceded by no catalog
  /// metadata; the caller re-creates the schema). kNotSupported on a
  /// spilled table.
  Status SaveToFile(const std::string& path) const;

  /// Replaces this table's pages with the content of `path`. The file
  /// must have been produced by SaveToFile with the same schema.
  Status LoadFromFile(const std::string& path);

  const Page& page(size_t idx) const { return *pages_[idx]; }

 private:
  friend class TableScanner;
  friend class BatchScanner;
  friend class ColumnBatchScanner;

  Schema schema_;
  RowCodec codec_;
  std::vector<std::unique_ptr<Page>> pages_;
  uint64_t num_rows_ = 0;
  uint64_t data_bytes_ = 0;
  uint64_t mutation_epoch_ = 0;
  std::string encode_buffer_;

  /// Lazily filled by EnsureDecodedColumns; one owning slot per schema
  /// column, nullptr = not cached. The slot array is sized once at
  /// construction and never resized, so readers need no lock: they
  /// acquire-load their slot while another statement's fill
  /// release-stores a different one. fill_mu serializes fills; any
  /// mutation (which the engine runs exclusively) clears every slot.
  /// Held behind unique_ptr so Table stays movable despite the mutex.
  struct ColumnCache {
    explicit ColumnCache(size_t num_slots) : slots(num_slots) {}
    ~ColumnCache() { Invalidate(); }
    void Invalidate() {
      for (auto& slot : slots) {
        delete slot.exchange(nullptr, std::memory_order_acq_rel);
      }
    }
    std::mutex fill_mu;
    std::vector<std::atomic<ColumnVector*>> slots;
  };
  std::unique_ptr<ColumnCache> cache_;

  /// Non-null once SpillToDisk succeeded; pages_ is empty then and
  /// every scan goes through the segment + buffer pool.
  std::unique_ptr<SpillSegment> spill_;
};

}  // namespace nlq::storage

#endif  // NLQ_STORAGE_TABLE_H_
