#ifndef NLQ_STORAGE_DISK_MANAGER_H_
#define NLQ_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace nlq::storage {

/// Page-granular file I/O (pread/pwrite on a single backing file).
/// Tables use it to persist and reload page runs, the buffer pool
/// fronts it for spilled segments, and the tests use it to verify that
/// page images round-trip through disk.
///
/// Reads and writes tick the process metrics registry
/// (`disk.pages_read` / `disk.read_bytes` / `disk.pages_written` /
/// `disk.write_bytes`), so scan-path I/O is visible next to the buffer
/// pool's hit/miss counters.
class DiskManager {
 public:
  DiskManager() = default;
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens (creating if needed) the backing file. `truncate` discards
  /// existing content.
  Status Open(const std::string& path, bool truncate);

  /// Closes the backing file (no-op if not open).
  void Close();

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Number of whole pages currently in the file.
  StatusOr<uint64_t> PageCount() const;

  /// Writes a full page image at index `page_id`.
  Status WritePage(uint64_t page_id, const Page& page);

  /// Reads the page at index `page_id` into `*page`.
  Status ReadPage(uint64_t page_id, Page* page) const;

  /// Vectored read of `bufs.size()` consecutive pages starting at
  /// `first_page`, scattering page i into bufs[i] (each a kPageSize
  /// buffer). One preadv covers up to IOV_MAX pages per syscall, so
  /// readahead issues one syscall per run instead of one per page.
  Status ReadPages(uint64_t first_page,
                   const std::vector<char*>& bufs) const;

  /// Flushes file data to stable storage.
  Status Sync();

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace nlq::storage

#endif  // NLQ_STORAGE_DISK_MANAGER_H_
