#include "storage/buffer_pool.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"

namespace nlq::storage {
namespace {

constexpr size_t kInvalidFrame = static_cast<size_t>(-1);
constexpr size_t kMaxReadaheadQueue = 64;

/// Mirrors a pool event into the process metrics registry. Looked up
/// per call: ResetForTest invalidates cached references, and the cost
/// amortizes over 64 KB of page I/O.
void CountPool(const char* name, uint64_t n) {
  MetricsRegistry::Global().counter(name).Add(n);
}

}  // namespace

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Reset();
    pool_ = other.pool_;
    frame_ = other.frame_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

void PageHandle::Reset() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(uint64_t budget_bytes) : budget_bytes_(budget_bytes) {
  const size_t budget_frames = static_cast<size_t>(budget_bytes / kPageSize);
  frames_.resize(std::max(kMinFrames, budget_frames));
  ra_thread_ = std::thread([this] { ReadaheadLoop(); });
}

BufferPool::~BufferPool() {
  {
    std::lock_guard<std::mutex> lock(ra_mu_);
    shutting_down_ = true;
  }
  ra_cv_.notify_all();
  ra_thread_.join();
  tracker_.Release(static_cast<uint64_t>(allocated_frames_) * kPageSize);
}

uint32_t BufferPool::RegisterFile(const DiskManager* disk) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t id = next_file_id_++;
  files_[id] = disk;
  return id;
}

void BufferPool::UnregisterFile(uint32_t file_id) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(file_id);
  for (auto it = page_map_.begin(); it != page_map_.end();) {
    if ((it->first >> 40) == file_id) {
      Frame& f = frames_[it->second];
      f.valid = false;
      f.referenced = false;
      f.from_readahead = false;
      it = page_map_.erase(it);
    } else {
      ++it;
    }
  }
}

StatusOr<PageHandle> BufferPool::Pin(uint32_t file_id, uint64_t page_id) {
  const uint64_t key = Key(file_id, page_id);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = page_map_.find(key);
    if (it != page_map_.end()) {
      Frame& f = frames_[it->second];
      if (f.loading) {
        // Another thread is reading this page; when it publishes (or
        // abandons) the frame we re-check the map from scratch.
        loaded_cv_.wait(lock);
        continue;
      }
      f.pins++;
      f.referenced = true;
      stats_.hits++;
      if (f.from_readahead) {
        stats_.readahead_hits++;
        f.from_readahead = false;
        CountPool("pool.readahead_hits", 1);
      }
      CountPool("pool.hits", 1);
      return PageHandle(this, it->second, f.data.get());
    }

    auto fit = files_.find(file_id);
    if (fit == files_.end()) {
      return Status::InvalidArgument("buffer pool: unknown file id " +
                                     std::to_string(file_id));
    }
    const DiskManager* disk = fit->second;
    const size_t frame = ClaimFrameLocked(key);
    if (frame == kInvalidFrame) {
      return Status::ResourceExhausted(
          "buffer pool: every frame pinned (budget " +
          std::to_string(budget_bytes_) + " bytes, " +
          std::to_string(frames_.size()) + " frames)");
    }
    stats_.misses++;
    CountPool("pool.misses", 1);
    char* buf = frames_[frame].data.get();

    lock.unlock();
    std::vector<char*> one{buf};
    Status s = disk->ReadPages(page_id, one);
    lock.lock();

    Frame& f = frames_[frame];
    f.loading = false;
    if (!s.ok()) {
      page_map_.erase(key);
      loaded_cv_.notify_all();
      return s;
    }
    f.valid = true;
    f.pins = 1;
    f.referenced = true;
    loaded_cv_.notify_all();
    return PageHandle(this, frame, f.data.get());
  }
}

Status BufferPool::FetchRange(uint32_t file_id, uint64_t first, size_t count) {
  return LoadRun(file_id, first, count, /*readahead=*/false);
}

void BufferPool::ScheduleReadahead(uint32_t file_id, uint64_t first,
                                   size_t count) {
  if (count == 0) return;
  {
    std::lock_guard<std::mutex> lock(ra_mu_);
    if (shutting_down_ || ra_queue_.size() >= kMaxReadaheadQueue) return;
    ra_queue_.push_back({file_id, first, count});
  }
  ra_cv_.notify_one();
}

void BufferPool::DrainReadaheadForTest() {
  std::unique_lock<std::mutex> lock(ra_mu_);
  ra_idle_cv_.wait(lock, [this] { return ra_queue_.empty() && !ra_busy_; });
}

BufferPoolStats BufferPool::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& f = frames_[frame];
  if (f.pins > 0) f.pins--;
}

size_t BufferPool::EvictLocked() {
  const size_t n = allocated_frames_;
  if (n == 0) return kInvalidFrame;
  // Two sweeps: the first clears reference bits, the second takes the
  // first unreferenced unpinned frame. If nothing is evictable after
  // that, every frame is pinned or mid-load.
  for (size_t step = 0; step < 2 * n; ++step) {
    const size_t idx = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    Frame& f = frames_[idx];
    if (f.pins > 0 || f.loading) continue;
    if (f.referenced) {
      f.referenced = false;
      continue;
    }
    return idx;
  }
  return kInvalidFrame;
}

size_t BufferPool::ClaimFrameLocked(uint64_t key) {
  size_t frame = kInvalidFrame;
  if (allocated_frames_ < frames_.size()) {
    frame = allocated_frames_++;
    frames_[frame].data = std::make_unique<char[]>(kPageSize);
    // The tracker has no limit of its own — the frame count is the
    // structural bound — so the charge only records usage/peak.
    Status charge = tracker_.Charge(kPageSize, "buffer pool frame");
    (void)charge;
    stats_.bytes_cached += kPageSize;
  } else {
    frame = EvictLocked();
    if (frame == kInvalidFrame) return kInvalidFrame;
    Frame& victim = frames_[frame];
    // Drop the victim's mapping only if it still points at this frame
    // (a frame freed by a failed load carries a stale key).
    auto it = page_map_.find(victim.key);
    if (it != page_map_.end() && it->second == frame) {
      page_map_.erase(it);
      stats_.evictions++;
      CountPool("pool.evictions", 1);
    }
  }
  Frame& f = frames_[frame];
  f.key = key;
  f.valid = false;
  f.loading = true;
  f.referenced = false;
  f.from_readahead = false;
  f.pins = 0;
  page_map_[key] = frame;
  return frame;
}

void BufferPool::FinishLoad(size_t frame, bool ok, bool readahead) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& f = frames_[frame];
  f.loading = false;
  if (ok) {
    f.valid = true;
    f.from_readahead = readahead;
  } else {
    auto it = page_map_.find(f.key);
    if (it != page_map_.end() && it->second == frame) page_map_.erase(it);
  }
  loaded_cv_.notify_all();
}

Status BufferPool::LoadRun(uint32_t file_id, uint64_t first, size_t count,
                           bool readahead) {
  struct Claimed {
    uint64_t page;
    size_t frame;
  };
  std::vector<Claimed> claimed;
  const DiskManager* disk = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto fit = files_.find(file_id);
    if (fit == files_.end()) {
      return Status::InvalidArgument("buffer pool: unknown file id " +
                                     std::to_string(file_id));
    }
    disk = fit->second;
    for (size_t i = 0; i < count; ++i) {
      const uint64_t page = first + i;
      if (page_map_.count(Key(file_id, page)) != 0) continue;  // resident
      const size_t frame = ClaimFrameLocked(Key(file_id, page));
      if (frame == kInvalidFrame) break;  // pool saturated; best effort
      claimed.push_back({page, frame});
    }
  }
  if (claimed.empty()) return Status::OK();

  // Read each consecutive run with one vectored call, scattering
  // straight into the claimed frames (safe outside mu_: frames_ never
  // resizes and a loading frame's buffer belongs to its loader).
  Status status = Status::OK();
  uint64_t loaded = 0;
  size_t i = 0;
  while (i < claimed.size()) {
    size_t j = i + 1;
    while (j < claimed.size() && claimed[j].page == claimed[j - 1].page + 1) {
      ++j;
    }
    std::vector<char*> bufs;
    bufs.reserve(j - i);
    for (size_t k = i; k < j; ++k) {
      bufs.push_back(frames_[claimed[k].frame].data.get());
    }
    Status s = disk->ReadPages(claimed[i].page, bufs);
    for (size_t k = i; k < j; ++k) FinishLoad(claimed[k].frame, s.ok(), readahead);
    if (s.ok()) {
      loaded += j - i;
    } else if (status.ok()) {
      status = s;
    }
    i = j;
  }
  if (loaded > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (readahead) {
        stats_.readahead_pages += loaded;
      } else {
        stats_.misses += loaded;
      }
    }
    CountPool(readahead ? "pool.readahead_pages" : "pool.misses", loaded);
  }
  return status;
}

void BufferPool::ReadaheadLoop() {
  for (;;) {
    ReadaheadRequest req;
    {
      std::unique_lock<std::mutex> lock(ra_mu_);
      ra_cv_.wait(lock, [this] { return shutting_down_ || !ra_queue_.empty(); });
      if (shutting_down_) return;
      req = ra_queue_.front();
      ra_queue_.pop_front();
      ra_busy_ = true;
    }
    // Best effort: a failed readahead read just leaves the pages cold
    // and the scan's own Pin reports the real error.
    (void)LoadRun(req.file_id, req.first, req.count, /*readahead=*/true);
    {
      std::lock_guard<std::mutex> lock(ra_mu_);
      ra_busy_ = false;
      if (ra_queue_.empty()) ra_idle_cv_.notify_all();
    }
  }
}

}  // namespace nlq::storage
