#include "storage/table.h"

#include "common/strings.h"
#include "storage/disk_manager.h"

namespace nlq::storage {

TableScanner::TableScanner(const Table* table)
    : table_(table), codec_(&table->schema()) {
  if (table_->num_pages() > 0) {
    rows_left_in_page_ = table_->page(0).row_count();
  }
}

bool TableScanner::Next() {
  while (page_index_ < table_->num_pages() && rows_left_in_page_ == 0) {
    ++page_index_;
    page_offset_ = 0;
    if (page_index_ < table_->num_pages()) {
      rows_left_in_page_ = table_->page(page_index_).row_count();
    }
  }
  if (page_index_ >= table_->num_pages()) return false;
  const Page& page = table_->page(page_index_);
  status_ =
      codec_.Decode(page.payload(), page.payload_size(), &page_offset_, &row_);
  if (!status_.ok()) return false;
  --rows_left_in_page_;
  return true;
}

BatchScanner::BatchScanner(const Table* table)
    : table_(table), codec_(&table->schema()) {
  if (table_->num_pages() > 0) {
    rows_left_in_page_ = table_->page(0).row_count();
  }
}

bool BatchScanner::Next(RowBatch* out) {
  out->Clear();
  if (!status_.ok()) return false;
  while (!out->full()) {
    while (page_index_ < table_->num_pages() && rows_left_in_page_ == 0) {
      ++page_index_;
      page_offset_ = 0;
      if (page_index_ < table_->num_pages()) {
        rows_left_in_page_ = table_->page(page_index_).row_count();
      }
    }
    if (page_index_ >= table_->num_pages()) break;
    // Decode the rest of the current page (or as much as fits) in one
    // tight loop over the page payload.
    const Page& page = table_->page(page_index_);
    size_t take = rows_left_in_page_;
    const size_t space = out->capacity() - out->size();
    if (take > space) take = space;
    for (size_t i = 0; i < take; ++i) {
      status_ = codec_.Decode(page.payload(), page.payload_size(),
                              &page_offset_, &out->AppendRow());
      if (!status_.ok()) {
        out->Truncate(out->size() - 1);
        return false;
      }
    }
    rows_left_in_page_ -= take;
  }
  return !out->empty();
}

ColumnBatchScanner::ColumnBatchScanner(const Table* table,
                                       std::vector<size_t> columns,
                                       size_t batch_capacity)
    : table_(table),
      columns_(std::move(columns)),
      batch_capacity_(batch_capacity),
      decoder_(&table->schema(), columns_) {
  for (const size_t slot : columns_) {
    if (table_->schema().column(slot).type == DataType::kVarchar) {
      status_ = Status::InvalidArgument(
          "columnar scan supports only DOUBLE/BIGINT columns");
      return;
    }
  }
  if (table_->num_pages() > 0) {
    rows_left_in_page_ = table_->page(0).row_count();
  }
}

bool ColumnBatchScanner::Next(ColumnBatch* out) {
  out->Configure(table_->schema(), columns_, batch_capacity_);
  if (!status_.ok()) return false;
  std::vector<ColumnVector*> dests(out->columns_.size());
  for (size_t i = 0; i < dests.size(); ++i) dests[i] = &out->columns_[i];
  size_t filled = 0;
  while (filled < batch_capacity_) {
    while (page_index_ < table_->num_pages() && rows_left_in_page_ == 0) {
      ++page_index_;
      page_offset_ = 0;
      if (page_index_ < table_->num_pages()) {
        rows_left_in_page_ = table_->page(page_index_).row_count();
      }
    }
    if (page_index_ >= table_->num_pages()) break;
    const Page& page = table_->page(page_index_);
    size_t take = rows_left_in_page_;
    const size_t space = batch_capacity_ - filled;
    if (take > space) take = space;
    for (size_t i = 0; i < take; ++i) {
      status_ = decoder_.DecodeRow(page.payload(), page.payload_size(),
                                   &page_offset_, dests.data(), filled + i);
      if (!status_.ok()) return false;
    }
    filled += take;
    rows_left_in_page_ -= take;
  }
  out->size_ = filled;
  return filled > 0;
}

Table::Table(Schema schema) : schema_(std::move(schema)), codec_(&schema_) {}

Status Table::AppendRow(const Row& row) {
  NLQ_RETURN_IF_ERROR(schema_.ValidateRow(row));
  AppendRowUnchecked(row);
  return Status::OK();
}

void Table::AppendRowUnchecked(const Row& row) {
  if (!column_cache_.empty()) column_cache_.clear();
  encode_buffer_.clear();
  codec_.Encode(row, &encode_buffer_);
  if (pages_.empty() || !pages_.back()->Fits(encode_buffer_.size())) {
    pages_.push_back(std::make_unique<Page>());
  }
  pages_.back()->AppendEncodedRow(encode_buffer_.data(),
                                  encode_buffer_.size());
  ++num_rows_;
  data_bytes_ += encode_buffer_.size();
}

StatusOr<std::vector<Row>> Table::ReadAllRows() const {
  std::vector<Row> rows;
  rows.reserve(num_rows_);
  TableScanner scanner = Scan();
  while (scanner.Next()) rows.push_back(scanner.row());
  if (!scanner.status().ok()) return scanner.status();
  return rows;
}

void Table::Clear() {
  pages_.clear();
  num_rows_ = 0;
  data_bytes_ = 0;
  column_cache_.clear();
}

Status Table::EnsureDecodedColumns(const std::vector<size_t>& columns) const {
  if (column_cache_.size() < schema_.num_columns()) {
    column_cache_.resize(schema_.num_columns());
  }
  std::vector<size_t> missing;
  for (const size_t slot : columns) {
    if (schema_.column(slot).type == DataType::kVarchar) {
      return Status::InvalidArgument(
          "column cache supports only DOUBLE/BIGINT columns");
    }
    if (column_cache_[slot] == nullptr) missing.push_back(slot);
  }
  if (missing.empty()) return Status::OK();

  std::vector<std::unique_ptr<ColumnVector>> fresh(missing.size());
  std::vector<ColumnVector*> dests(missing.size());
  for (size_t i = 0; i < missing.size(); ++i) {
    fresh[i] = std::make_unique<ColumnVector>();
    fresh[i]->Reset(schema_.column(missing[i]).type, num_rows_);
    dests[i] = fresh[i].get();
  }
  const ColumnDecoder decoder(&schema_, missing);
  size_t r = 0;
  for (const auto& page : pages_) {
    size_t offset = 0;
    const uint32_t rows = page->row_count();
    for (uint32_t i = 0; i < rows; ++i) {
      NLQ_RETURN_IF_ERROR(decoder.DecodeRow(
          page->payload(), page->payload_size(), &offset, dests.data(), r++));
    }
  }
  for (size_t i = 0; i < missing.size(); ++i) {
    column_cache_[missing[i]] = std::move(fresh[i]);
  }
  return Status::OK();
}

Status Table::SaveToFile(const std::string& path) const {
  DiskManager disk;
  NLQ_RETURN_IF_ERROR(disk.Open(path, /*truncate=*/true));
  for (size_t i = 0; i < pages_.size(); ++i) {
    NLQ_RETURN_IF_ERROR(disk.WritePage(i, *pages_[i]));
  }
  return disk.Sync();
}

Status Table::LoadFromFile(const std::string& path) {
  DiskManager disk;
  NLQ_RETURN_IF_ERROR(disk.Open(path, /*truncate=*/false));
  NLQ_ASSIGN_OR_RETURN(uint64_t page_count, disk.PageCount());
  Clear();
  for (uint64_t i = 0; i < page_count; ++i) {
    auto page = std::make_unique<Page>();
    NLQ_RETURN_IF_ERROR(disk.ReadPage(i, page.get()));
    num_rows_ += page->row_count();
    data_bytes_ += page->used_bytes() - Page::kHeaderSize;
    pages_.push_back(std::move(page));
  }
  return Status::OK();
}

}  // namespace nlq::storage
