#include "storage/table.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/failpoint.h"
#include "common/strings.h"
#include "storage/disk_manager.h"

namespace nlq::storage {
namespace {

/// Every schema slot index, for spilled full-row scans.
std::vector<size_t> AllSlots(const Schema& schema) {
  std::vector<size_t> slots(schema.num_columns());
  for (size_t i = 0; i < slots.size(); ++i) slots[i] = i;
  return slots;
}

/// Builds the spilled-scan cursor for rows [begin, end) over the
/// projected `columns` of `table`'s segment.
std::unique_ptr<SpilledScanState> MakeSpilledState(const Table* table,
                                                   std::vector<size_t> columns,
                                                   uint64_t begin,
                                                   uint64_t end) {
  auto st = std::make_unique<SpilledScanState>();
  st->seg = table->spill();
  st->columns = std::move(columns);
  st->cols.resize(st->columns.size());
  st->col_ptrs.resize(st->columns.size());
  for (size_t i = 0; i < st->cols.size(); ++i) st->col_ptrs[i] = &st->cols[i];
  st->next_row = std::min(begin, table->num_rows());
  st->end_row = std::min(end, table->num_rows());
  return st;
}

/// Copies `take` rows starting at `src_off` of `src` into `dst` at
/// `dst_off` — values via memcpy (NULL slots already hold canonical
/// 0), null bits per row since the offsets rarely share word
/// alignment.
void CopyColumnSlice(const ColumnVector& src, size_t src_off, size_t take,
                     ColumnVector* dst, size_t dst_off) {
  if (src.type == DataType::kDouble) {
    std::memcpy(dst->doubles.data() + dst_off, src.doubles.data() + src_off,
                take * sizeof(double));
  } else {
    std::memcpy(dst->ints.data() + dst_off, src.ints.data() + src_off,
                take * sizeof(int64_t));
  }
  if (src.has_nulls()) {
    for (size_t r = 0; r < take; ++r) {
      if (NullBitGet(src.null_bits.data(), src_off + r)) {
        NullBitSet(dst->null_bits.data(), dst_off + r);
        dst->null_count++;
      }
    }
  }
}

/// Materializes row `r` of the decoded chunk columns as Datums.
void SynthesizeRow(const SpilledScanState& st, size_t r, Row* row) {
  row->resize(st.cols.size());
  for (size_t i = 0; i < st.cols.size(); ++i) {
    const ColumnVector& cv = st.cols[i];
    if (cv.has_nulls() && NullBitGet(cv.null_bits.data(), r)) {
      (*row)[i] = Datum::Null(cv.type);
    } else if (cv.type == DataType::kDouble) {
      (*row)[i] = Datum::Double(cv.doubles[r]);
    } else {
      (*row)[i] = Datum::Int64(cv.ints[r]);
    }
  }
}

}  // namespace

Status SpilledScanState::EnsureChunkFor(uint64_t row) {
  const size_t ci = seg->ChunkOfRow(row);
  if (ci == loaded_chunk) return Status::OK();
  NLQ_RETURN_IF_ERROR(seg->ReadChunk(ci, columns, col_ptrs, &scratch));
  loaded_chunk = ci;
  pages_decoded += seg->chunk(ci).pages;
  // Warm the next chunk of this scan window while we drain this one.
  if (ci + 1 < seg->num_chunks() && seg->chunk(ci + 1).first_row < end_row) {
    seg->ScheduleChunkReadahead(ci + 1);
  }
  return Status::OK();
}

namespace {

/// Positions a scan cursor at absolute row `begin` of `table`: skips
/// whole pages by their row counts, then size-steps the encoded bytes
/// of the first partially-skipped page (an empty-projection
/// ColumnDecoder steps every column without materializing anything).
/// On return *page_index/*page_offset address row `begin` and
/// *rows_left is the row count remaining in that page; past-the-end
/// begins land on page_index == num_pages with rows_left == 0.
Status SeekToRow(const Table& table, uint64_t begin, size_t* page_index,
                 size_t* page_offset, size_t* rows_left) {
  uint64_t remaining = begin;
  size_t pi = 0;
  while (pi < table.num_pages() && remaining >= table.page(pi).row_count()) {
    remaining -= table.page(pi).row_count();
    ++pi;
  }
  *page_index = pi;
  *page_offset = 0;
  if (pi >= table.num_pages()) {
    *rows_left = 0;
    return Status::OK();
  }
  *rows_left = table.page(pi).row_count();
  if (remaining > 0) {
    const ColumnDecoder skipper(&table.schema(), {});
    const Page& page = table.page(pi);
    for (uint64_t i = 0; i < remaining; ++i) {
      NLQ_RETURN_IF_ERROR(skipper.DecodeRow(page.payload(),
                                            page.payload_size(), page_offset,
                                            nullptr, 0));
    }
    *rows_left -= static_cast<size_t>(remaining);
  }
  return Status::OK();
}

}  // namespace

TableScanner::TableScanner(const Table* table)
    : table_(table), codec_(&table->schema()) {
  if (table_->is_spilled()) {
    spill_ = MakeSpilledState(table_, AllSlots(table_->schema()), 0,
                              table_->num_rows());
    return;
  }
  if (table_->num_pages() > 0) {
    rows_left_in_page_ = table_->page(0).row_count();
  }
}

bool TableScanner::Next() {
  if (spill_ != nullptr) {
    if (!status_.ok() || spill_->next_row >= spill_->end_row) return false;
    NLQ_FAILPOINT_BOOL("page_decode", &status_);
    status_ = spill_->EnsureChunkFor(spill_->next_row);
    if (!status_.ok()) return false;
    const SpillChunkInfo& ck = spill_->seg->chunk(spill_->loaded_chunk);
    SynthesizeRow(*spill_, static_cast<size_t>(spill_->next_row - ck.first_row),
                  &row_);
    ++spill_->next_row;
    return true;
  }
  while (page_index_ < table_->num_pages() && rows_left_in_page_ == 0) {
    ++page_index_;
    page_offset_ = 0;
    if (page_index_ < table_->num_pages()) {
      rows_left_in_page_ = table_->page(page_index_).row_count();
    }
  }
  if (page_index_ >= table_->num_pages()) return false;
  NLQ_FAILPOINT_BOOL("page_decode", &status_);
  const Page& page = table_->page(page_index_);
  status_ =
      codec_.Decode(page.payload(), page.payload_size(), &page_offset_, &row_);
  if (!status_.ok()) return false;
  --rows_left_in_page_;
  return true;
}

BatchScanner::BatchScanner(const Table* table)
    : table_(table), codec_(&table->schema()), rows_wanted_(table->num_rows()) {
  if (table_->is_spilled()) {
    spill_ = MakeSpilledState(table_, AllSlots(table_->schema()), 0,
                              table_->num_rows());
    return;
  }
  if (table_->num_pages() > 0) {
    rows_left_in_page_ = table_->page(0).row_count();
  }
}

BatchScanner::BatchScanner(const Table* table, uint64_t begin_row,
                           uint64_t end_row)
    : table_(table),
      codec_(&table->schema()),
      rows_wanted_(end_row > begin_row ? end_row - begin_row : 0) {
  if (table_->is_spilled()) {
    spill_ = MakeSpilledState(table_, AllSlots(table_->schema()), begin_row,
                              end_row);
    return;
  }
  status_ = SeekToRow(*table, begin_row, &page_index_, &page_offset_,
                      &rows_left_in_page_);
}

bool BatchScanner::Next(RowBatch* out) {
  out->Clear();
  if (!status_.ok()) return false;
  NLQ_FAILPOINT_BOOL("page_decode", &status_);
  if (spill_ != nullptr) {
    SpilledScanState& st = *spill_;
    while (!out->full() && st.next_row < st.end_row) {
      status_ = st.EnsureChunkFor(st.next_row);
      if (!status_.ok()) return false;
      const SpillChunkInfo& ck = st.seg->chunk(st.loaded_chunk);
      const size_t in_chunk = static_cast<size_t>(st.next_row - ck.first_row);
      size_t take = std::min<size_t>(ck.rows - in_chunk,
                                     out->capacity() - out->size());
      take = std::min<size_t>(take,
                              static_cast<size_t>(st.end_row - st.next_row));
      for (size_t i = 0; i < take; ++i) {
        SynthesizeRow(st, in_chunk + i, &out->AppendRow());
      }
      st.next_row += take;
    }
    pages_decoded_ = st.pages_decoded;
    return !out->empty();
  }
  while (!out->full() && rows_wanted_ > 0) {
    while (page_index_ < table_->num_pages() && rows_left_in_page_ == 0) {
      ++page_index_;
      page_offset_ = 0;
      if (page_index_ < table_->num_pages()) {
        rows_left_in_page_ = table_->page(page_index_).row_count();
      }
    }
    if (page_index_ >= table_->num_pages()) break;
    if (page_index_ != counted_page_) {
      counted_page_ = page_index_;
      ++pages_decoded_;
    }
    // Decode the rest of the current page (or as much as fits) in one
    // tight loop over the page payload.
    const Page& page = table_->page(page_index_);
    size_t take = rows_left_in_page_;
    const size_t space = out->capacity() - out->size();
    if (take > space) take = space;
    if (take > rows_wanted_) take = static_cast<size_t>(rows_wanted_);
    for (size_t i = 0; i < take; ++i) {
      status_ = codec_.Decode(page.payload(), page.payload_size(),
                              &page_offset_, &out->AppendRow());
      if (!status_.ok()) {
        out->Truncate(out->size() - 1);
        return false;
      }
    }
    rows_left_in_page_ -= take;
    rows_wanted_ -= take;
  }
  return !out->empty();
}

ColumnBatchScanner::ColumnBatchScanner(const Table* table,
                                       std::vector<size_t> columns,
                                       size_t batch_capacity)
    : table_(table),
      columns_(std::move(columns)),
      batch_capacity_(batch_capacity),
      decoder_(&table->schema(), columns_),
      rows_wanted_(table->num_rows()) {
  if (!CheckColumnTypes()) return;
  if (table_->is_spilled()) {
    spill_ = MakeSpilledState(table_, columns_, 0, table_->num_rows());
    return;
  }
  if (table_->num_pages() > 0) {
    rows_left_in_page_ = table_->page(0).row_count();
  }
}

ColumnBatchScanner::ColumnBatchScanner(const Table* table,
                                       std::vector<size_t> columns,
                                       uint64_t begin_row, uint64_t end_row,
                                       size_t batch_capacity)
    : table_(table),
      columns_(std::move(columns)),
      batch_capacity_(batch_capacity),
      decoder_(&table->schema(), columns_),
      rows_wanted_(end_row > begin_row ? end_row - begin_row : 0) {
  if (!CheckColumnTypes()) return;
  if (table_->is_spilled()) {
    spill_ = MakeSpilledState(table_, columns_, begin_row, end_row);
    return;
  }
  status_ = SeekToRow(*table, begin_row, &page_index_, &page_offset_,
                      &rows_left_in_page_);
}

bool ColumnBatchScanner::CheckColumnTypes() {
  for (const size_t slot : columns_) {
    if (table_->schema().column(slot).type == DataType::kVarchar) {
      status_ = Status::InvalidArgument(
          "columnar scan supports only DOUBLE/BIGINT columns");
      return false;
    }
  }
  return true;
}

bool ColumnBatchScanner::Next(ColumnBatch* out) {
  out->Configure(table_->schema(), columns_, batch_capacity_);
  if (!status_.ok()) return false;
  NLQ_FAILPOINT_BOOL("page_decode", &status_);
  if (spill_ != nullptr) {
    SpilledScanState& st = *spill_;
    size_t filled = 0;
    while (filled < batch_capacity_ && st.next_row < st.end_row) {
      status_ = st.EnsureChunkFor(st.next_row);
      if (!status_.ok()) return false;
      const SpillChunkInfo& ck = st.seg->chunk(st.loaded_chunk);
      const size_t in_chunk = static_cast<size_t>(st.next_row - ck.first_row);
      size_t take = std::min<size_t>(ck.rows - in_chunk,
                                     batch_capacity_ - filled);
      take = std::min<size_t>(take,
                              static_cast<size_t>(st.end_row - st.next_row));
      for (size_t i = 0; i < st.cols.size(); ++i) {
        CopyColumnSlice(st.cols[i], in_chunk, take, &out->columns_[i], filled);
      }
      st.next_row += take;
      filled += take;
    }
    out->size_ = filled;
    pages_decoded_ = st.pages_decoded;
    return filled > 0;
  }
  std::vector<ColumnVector*> dests(out->columns_.size());
  for (size_t i = 0; i < dests.size(); ++i) dests[i] = &out->columns_[i];
  size_t filled = 0;
  while (filled < batch_capacity_ && rows_wanted_ > 0) {
    while (page_index_ < table_->num_pages() && rows_left_in_page_ == 0) {
      ++page_index_;
      page_offset_ = 0;
      if (page_index_ < table_->num_pages()) {
        rows_left_in_page_ = table_->page(page_index_).row_count();
      }
    }
    if (page_index_ >= table_->num_pages()) break;
    if (page_index_ != counted_page_) {
      counted_page_ = page_index_;
      ++pages_decoded_;
    }
    const Page& page = table_->page(page_index_);
    size_t take = rows_left_in_page_;
    const size_t space = batch_capacity_ - filled;
    if (take > space) take = space;
    if (take > rows_wanted_) take = static_cast<size_t>(rows_wanted_);
    for (size_t i = 0; i < take; ++i) {
      status_ = decoder_.DecodeRow(page.payload(), page.payload_size(),
                                   &page_offset_, dests.data(), filled + i);
      if (!status_.ok()) return false;
    }
    filled += take;
    rows_left_in_page_ -= take;
    rows_wanted_ -= take;
  }
  out->size_ = filled;
  return filled > 0;
}

Table::Table(Schema schema)
    : schema_(std::move(schema)),
      codec_(&schema_),
      cache_(std::make_unique<ColumnCache>(schema_.num_columns())) {}

Status Table::AppendRow(const Row& row) {
  if (is_spilled()) {
    return Status::NotSupported(
        "cannot append to a spilled table: spilled partitions are "
        "read-only");
  }
  NLQ_RETURN_IF_ERROR(schema_.ValidateRow(row));
  AppendRowUnchecked(row);
  return Status::OK();
}

void Table::AppendRowUnchecked(const Row& row) {
  assert(!is_spilled() && "cannot append to a spilled table");
  cache_->Invalidate();
  encode_buffer_.clear();
  codec_.Encode(row, &encode_buffer_);
  if (pages_.empty() || !pages_.back()->Fits(encode_buffer_.size())) {
    pages_.push_back(std::make_unique<Page>());
  }
  pages_.back()->AppendEncodedRow(encode_buffer_.data(),
                                  encode_buffer_.size());
  ++num_rows_;
  data_bytes_ += encode_buffer_.size();
}

StatusOr<std::vector<Row>> Table::ReadAllRows() const {
  std::vector<Row> rows;
  rows.reserve(num_rows_);
  TableScanner scanner = Scan();
  while (scanner.Next()) rows.push_back(scanner.row());
  if (!scanner.status().ok()) return scanner.status();
  return rows;
}

void Table::Clear() {
  pages_.clear();
  num_rows_ = 0;
  data_bytes_ = 0;
  cache_->Invalidate();
  spill_.reset();
  ++mutation_epoch_;
}

Status Table::SpillToDisk(const std::string& path, BufferPool* pool,
                          size_t chunk_rows) {
  if (is_spilled()) return Status::NotSupported("table is already spilled");
  NLQ_ASSIGN_OR_RETURN(std::unique_ptr<SpillSegment> seg,
                       SpillSegment::Create(*this, path, pool, chunk_rows));
  spill_ = std::move(seg);
  pages_.clear();
  cache_->Invalidate();
  ++mutation_epoch_;
  return Status::OK();
}

Status Table::EnsureDecodedColumns(const std::vector<size_t>& columns) const {
  // Fills serialize: a concurrent statement asking for the same slots
  // waits here and then sees them already cached. Readers never take
  // this lock — they acquire-load their slot pointers.
  std::lock_guard<std::mutex> fill_lock(cache_->fill_mu);
  std::vector<size_t> missing;
  for (const size_t slot : columns) {
    if (schema_.column(slot).type == DataType::kVarchar) {
      return Status::InvalidArgument(
          "column cache supports only DOUBLE/BIGINT columns");
    }
    if (cache_->slots[slot].load(std::memory_order_relaxed) == nullptr) {
      missing.push_back(slot);
    }
  }
  if (missing.empty()) return Status::OK();
  NLQ_FAILPOINT("page_decode");

  std::vector<std::unique_ptr<ColumnVector>> fresh(missing.size());
  std::vector<ColumnVector*> dests(missing.size());
  for (size_t i = 0; i < missing.size(); ++i) {
    fresh[i] = std::make_unique<ColumnVector>();
    fresh[i]->Reset(schema_.column(missing[i]).type, num_rows_);
    dests[i] = fresh[i].get();
  }
  if (is_spilled()) {
    // Chunk-at-a-time decode, gathered into the full-partition vectors.
    std::vector<ColumnVector> chunk_cols(missing.size());
    std::vector<ColumnVector*> chunk_ptrs(missing.size());
    for (size_t i = 0; i < missing.size(); ++i) chunk_ptrs[i] = &chunk_cols[i];
    std::string scratch;
    for (size_t ci = 0; ci < spill_->num_chunks(); ++ci) {
      NLQ_RETURN_IF_ERROR(
          spill_->ReadChunk(ci, missing, chunk_ptrs, &scratch));
      const SpillChunkInfo& ck = spill_->chunk(ci);
      for (size_t i = 0; i < missing.size(); ++i) {
        CopyColumnSlice(chunk_cols[i], 0, ck.rows, dests[i],
                        static_cast<size_t>(ck.first_row));
      }
    }
  } else {
    const ColumnDecoder decoder(&schema_, missing);
    size_t r = 0;
    for (const auto& page : pages_) {
      size_t offset = 0;
      const uint32_t rows = page->row_count();
      for (uint32_t i = 0; i < rows; ++i) {
        NLQ_RETURN_IF_ERROR(decoder.DecodeRow(
            page->payload(), page->payload_size(), &offset, dests.data(),
            r++));
      }
    }
  }
  for (size_t i = 0; i < missing.size(); ++i) {
    cache_->slots[missing[i]].store(fresh[i].release(),
                                    std::memory_order_release);
  }
  return Status::OK();
}

Status Table::SaveToFile(const std::string& path) const {
  if (is_spilled()) {
    return Status::NotSupported("cannot save a spilled table");
  }
  DiskManager disk;
  NLQ_RETURN_IF_ERROR(disk.Open(path, /*truncate=*/true));
  for (size_t i = 0; i < pages_.size(); ++i) {
    NLQ_RETURN_IF_ERROR(disk.WritePage(i, *pages_[i]));
  }
  return disk.Sync();
}

Status Table::LoadFromFile(const std::string& path) {
  DiskManager disk;
  NLQ_RETURN_IF_ERROR(disk.Open(path, /*truncate=*/false));
  NLQ_ASSIGN_OR_RETURN(uint64_t page_count, disk.PageCount());
  Clear();
  for (uint64_t i = 0; i < page_count; ++i) {
    auto page = std::make_unique<Page>();
    NLQ_RETURN_IF_ERROR(disk.ReadPage(i, page.get()));
    num_rows_ += page->row_count();
    data_bytes_ += page->used_bytes() - Page::kHeaderSize;
    pages_.push_back(std::move(page));
  }
  return Status::OK();
}

}  // namespace nlq::storage
