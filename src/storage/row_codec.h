#ifndef NLQ_STORAGE_ROW_CODEC_H_
#define NLQ_STORAGE_ROW_CODEC_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace nlq::storage {

/// Binary row format (schema-directed, no per-row schema info):
///   per column: 1 null byte (0/1); if non-null:
///     DOUBLE / BIGINT: 8 bytes little-endian
///     VARCHAR: u32 length + bytes
/// Rows are decoded sequentially inside a page, so no offset table is
/// required.
class RowCodec {
 public:
  explicit RowCodec(const Schema* schema) : schema_(schema) {}

  /// Appends the encoded row to `out`. The row must match the schema.
  void Encode(const Row& row, std::string* out) const;

  /// Encoded size in bytes of `row`.
  size_t EncodedSize(const Row& row) const;

  /// Decodes one row starting at data[*offset]; advances *offset.
  /// Fails on truncated input.
  Status Decode(const char* data, size_t size, size_t* offset, Row* row) const;

  const Schema& schema() const { return *schema_; }

 private:
  const Schema* schema_;
};

}  // namespace nlq::storage

#endif  // NLQ_STORAGE_ROW_CODEC_H_
