#ifndef NLQ_STORAGE_COLUMN_CODEC_H_
#define NLQ_STORAGE_COLUMN_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column_batch.h"
#include "storage/value.h"

namespace nlq::storage {

/// Per-column lightweight compression for spilled column chunks.
///
/// A *column block* is the encoded image of one column over one chunk
/// of rows: a fixed header, a codec-specific payload, and (when the
/// column has NULLs in the chunk) the raw null-bitmap words. Values
/// travel as their 8-byte little-endian bit patterns — doubles are
/// never re-parsed or re-rounded — so encode→decode is bit-exact for
/// every input including NaN, ±0.0 and denormals. NULL positions hold
/// the decoder's canonical 0/0.0 in the value array (the same
/// convention ColumnDecoder uses), so a round-trip through a codec
/// reproduces the exact ColumnVector a page decode would have built.
///
/// Codec is chosen per block at encode time by sampling the values
/// (EncodeColumnBlock); kPlain is the always-correct escape hatch and
/// the size ceiling — no block is ever written larger than plain + the
/// fixed header.
enum class ColumnCodec : uint8_t {
  kPlain = 0,  // raw 8-byte values
  kRle = 1,    // (u32 run length, 8-byte value) runs over bit patterns
  kDict = 2,   // u32 dict size, dict values, bit-packed indices
  kFor = 3,    // BIGINT only: u64 reference + bit-packed deltas
};

/// Returns "plain", "rle", "dict" or "for".
const char* ColumnCodecName(ColumnCodec codec);

/// Fixed little-endian block header. `version` guards the on-disk
/// layout: a decoder that sees a newer version fails with kCorruption
/// instead of misreading the payload.
struct ColumnBlockHeader {
  static constexpr uint16_t kMagic = 0x4C43;  // "CL"
  static constexpr uint16_t kVersion = 1;
  static constexpr size_t kEncodedSize = 20;

  uint16_t magic = kMagic;
  uint16_t version = kVersion;
  uint8_t codec = 0;          // ColumnCodec
  uint8_t type = 0;           // DataType (kDouble / kInt64)
  uint16_t reserved = 0;
  uint32_t rows = 0;          // values in the block
  uint32_t payload_bytes = 0; // codec payload size
  uint32_t null_bytes = 0;    // raw bitmap bytes (0 = no NULLs)
};

/// Encodes column `col` (its first `rows` values) as one block
/// appended to `*out`. The codec is picked per block: the values are
/// sampled for run structure, distinct count and (BIGINT) value range,
/// candidate codecs are tried best-estimate-first, and any candidate
/// that encodes larger than plain is discarded — plain is the escape
/// hatch, so compression never loses. Returns the number of bytes
/// appended.
size_t EncodeColumnBlock(const ColumnVector& col, size_t rows,
                         std::string* out);

/// Decodes one block starting at data[*pos] into `*col` (Reset to the
/// block's type/rows), advancing *pos past the block. Truncated input,
/// bad magic/version, unknown codecs and payload/row-count mismatches
/// all fail with kCorruption — never UB — before any value is
/// published.
Status DecodeColumnBlock(const char* data, size_t size, size_t* pos,
                         ColumnVector* col);

/// Reads a block's header without decoding the payload; used to skip
/// non-projected columns. On success advances *pos to the start of the
/// payload and returns the header.
StatusOr<ColumnBlockHeader> PeekColumnBlockHeader(const char* data,
                                                  size_t size, size_t* pos);

/// Total encoded size of the block whose header is `h` (header +
/// payload + null bitmap).
inline size_t ColumnBlockBytes(const ColumnBlockHeader& h) {
  return ColumnBlockHeader::kEncodedSize + h.payload_bytes + h.null_bytes;
}

}  // namespace nlq::storage

#endif  // NLQ_STORAGE_COLUMN_CODEC_H_
