#ifndef NLQ_STORAGE_COLUMN_BATCH_H_
#define NLQ_STORAGE_COLUMN_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace nlq::storage {

/// Null-bitmap helpers: bit `r` set means row `r` is NULL. The bitmap
/// is an array of 64-bit words, LSB-first within a word.
inline size_t NullBitmapWords(size_t rows) { return (rows + 63) / 64; }
inline bool NullBitGet(const uint64_t* bits, size_t r) {
  return (bits[r >> 6] >> (r & 63)) & 1;
}
inline void NullBitSet(uint64_t* bits, size_t r) {
  bits[r >> 6] |= uint64_t{1} << (r & 63);
}

/// One decoded column in SoA form: a typed contiguous value array plus
/// a null bitmap. NULL rows hold 0/0.0 in the value array (a defined
/// value; consumers must consult the bitmap — see `null_count` for the
/// common fast path where no bitmap checks are needed at all).
///
/// Only fixed-width types (DOUBLE, BIGINT) are decoded columnar;
/// VARCHAR columns stay on the row path.
struct ColumnVector {
  DataType type = DataType::kDouble;
  std::vector<double> doubles;      // values when type == kDouble
  std::vector<int64_t> ints;        // values when type == kInt64
  std::vector<uint64_t> null_bits;  // bit r set = row r NULL
  uint64_t null_count = 0;

  /// Resizes the value array and zeroes the null bitmap for `rows`
  /// rows of type `t`. Existing heap capacity is reused.
  void Reset(DataType t, size_t rows);

  bool has_nulls() const { return null_count > 0; }
  const double* double_data() const { return doubles.data(); }
  const int64_t* int_data() const { return ints.data(); }
};

/// A fixed-capacity batch of decoded columns — the SoA sibling of
/// RowBatch. Holds only the *projected* columns of the table schema
/// (`slots()`), in projection order; rows are dense within the batch.
/// Storage is owned by the batch and reused across scanner calls so
/// steady-state scanning performs no per-batch allocations.
class ColumnBatch {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  /// Schema slot indices of the projected columns, in column order.
  const std::vector<size_t>& slots() const { return slots_; }
  size_t num_columns() const { return columns_.size(); }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  /// The `i`-th projected column (i indexes `slots()`, not the schema).
  const ColumnVector& column(size_t i) const { return columns_[i]; }

 private:
  friend class ColumnBatchScanner;

  /// Re-types the batch for `slots` of `schema` and zeroes its bitmaps;
  /// called by the scanner before each fill.
  void Configure(const Schema& schema, const std::vector<size_t>& slots,
                 size_t capacity);

  std::vector<size_t> slots_;
  std::vector<ColumnVector> columns_;  // parallel to slots_
  size_t size_ = 0;
  size_t capacity_ = kDefaultCapacity;
};

/// Schema-directed decoder from the RowCodec byte format straight into
/// ColumnVectors, skipping Datum construction entirely. Non-projected
/// columns are skipped by size-stepping the encoded bytes (VARCHAR
/// costs one length read).
class ColumnDecoder {
 public:
  /// `slots` are the schema columns to materialize; they must be
  /// DOUBLE or BIGINT.
  ColumnDecoder(const Schema* schema, const std::vector<size_t>& slots);

  /// Decodes one encoded row starting at data[*pos], advancing *pos,
  /// writing projected column `i`'s value into dests[i] at row index
  /// `r` (dests parallel to the constructor's `slots`). Fails on
  /// truncated input.
  Status DecodeRow(const char* data, size_t size, size_t* pos,
                   ColumnVector* const* dests, size_t r) const;

 private:
  struct ColPlan {
    DataType type;
    int dest;  // projection index, or -1 to skip
  };
  std::vector<ColPlan> plan_;
};

}  // namespace nlq::storage

#endif  // NLQ_STORAGE_COLUMN_BATCH_H_
