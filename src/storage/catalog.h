#ifndef NLQ_STORAGE_CATALOG_H_
#define NLQ_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/partitioned_table.h"

namespace nlq::storage {

/// Name → table registry (case-insensitive names).
class Catalog {
 public:
  explicit Catalog(size_t default_partitions = 1)
      : default_partitions_(default_partitions) {}

  /// Creates a table; AlreadyExists if the name is taken.
  StatusOr<PartitionedTable*> CreateTable(const std::string& name,
                                          Schema schema);

  /// Creates with an explicit partition count.
  StatusOr<PartitionedTable*> CreateTable(const std::string& name,
                                          Schema schema,
                                          size_t num_partitions);

  /// Looks up a table; NotFound if missing.
  StatusOr<PartitionedTable*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Drops a table; NotFound if missing.
  Status DropTable(const std::string& name);

  /// All table names, sorted.
  std::vector<std::string> TableNames() const;

  size_t default_partitions() const { return default_partitions_; }

 private:
  size_t default_partitions_;
  std::map<std::string, std::unique_ptr<PartitionedTable>> tables_;
};

}  // namespace nlq::storage

#endif  // NLQ_STORAGE_CATALOG_H_
