#include "storage/page.h"

#include <cassert>

namespace nlq::storage {

void Page::AppendEncodedRow(const char* data, size_t size) {
  assert(Fits(size));
  const uint32_t used = used_bytes();
  std::memcpy(data_.data() + used, data, size);
  WriteU32(0, used + static_cast<uint32_t>(size));
  WriteU32(4, row_count() + 1);
}

}  // namespace nlq::storage
