#include "storage/column_codec.h"

#include <algorithm>
#include <cstring>

#include "common/failpoint.h"
#include "common/strings.h"

namespace nlq::storage {
namespace {

/// Dictionary blocks cap the distinct count: past this a dictionary
/// stops paying for itself against plain 8-byte values anyway.
constexpr size_t kMaxDictSize = 256;

/// Values sampled (evenly strided) when estimating codec sizes.
constexpr size_t kSampleValues = 1024;

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}
void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}

/// The column's values as raw 8-byte patterns (doubles bit-cast), so
/// every codec compares and stores exact bit patterns — NaN payloads
/// and -0.0 survive, and run/dict equality is memcmp equality.
const uint64_t* ValueBits(const ColumnVector& col) {
  if (col.type == DataType::kDouble) {
    return reinterpret_cast<const uint64_t*>(col.doubles.data());
  }
  return reinterpret_cast<const uint64_t*>(col.ints.data());
}

uint64_t* MutableValueBits(ColumnVector* col) {
  if (col->type == DataType::kDouble) {
    return reinterpret_cast<uint64_t*>(col->doubles.data());
  }
  return reinterpret_cast<uint64_t*>(col->ints.data());
}

size_t BitWidthFor(uint64_t max_value) {
  size_t w = 0;
  while (max_value != 0) {
    ++w;
    max_value >>= 1;
  }
  return w;
}

/// Appends `rows` values bit-packed at `width` bits each, LSB-first
/// within little-endian u64 words. width == 0 appends nothing.
void BitPack(const uint64_t* values, size_t rows, size_t width,
             std::string* out) {
  if (width == 0) return;
  const size_t words = (rows * width + 63) / 64;
  std::vector<uint64_t> packed(words, 0);
  size_t bit = 0;
  for (size_t r = 0; r < rows; ++r) {
    const uint64_t v = values[r];
    const size_t word = bit >> 6;
    const size_t off = bit & 63;
    packed[word] |= v << off;
    if (off + width > 64) packed[word + 1] |= v >> (64 - off);
    bit += width;
  }
  out->append(reinterpret_cast<const char*>(packed.data()), words * 8);
}

/// Reads the bit-packed value at index `r`.
uint64_t BitUnpack(const uint64_t* packed, size_t r, size_t width) {
  const size_t bit = r * width;
  const size_t word = bit >> 6;
  const size_t off = bit & 63;
  uint64_t v = packed[word] >> off;
  if (off + width > 64) v |= packed[word + 1] << (64 - off);
  if (width < 64) v &= (uint64_t{1} << width) - 1;
  return v;
}

// ---------------------------------------------------------------------------
// Encoders. Each Try* appends its payload to `out` and returns true,
// or leaves `out` untouched and returns false when the codec does not
// apply / would not beat `budget` bytes (the plain size).

void EncodePlain(const uint64_t* bits, size_t rows, std::string* out) {
  out->append(reinterpret_cast<const char*>(bits), rows * 8);
}

bool TryEncodeRle(const uint64_t* bits, size_t rows, size_t budget,
                  std::string* out) {
  const size_t start = out->size();
  size_t r = 0;
  while (r < rows) {
    size_t run = 1;
    while (r + run < rows && bits[r + run] == bits[r]) ++run;
    // Runs are u32-capped; longer runs split losslessly.
    size_t left = run;
    while (left > 0) {
      const uint32_t take =
          static_cast<uint32_t>(std::min<size_t>(left, UINT32_MAX));
      AppendU32(out, take);
      AppendU64(out, bits[r]);
      left -= take;
    }
    r += run;
    if (out->size() - start >= budget) {
      out->resize(start);
      return false;
    }
  }
  return true;
}

bool TryEncodeDict(const uint64_t* bits, size_t rows, size_t budget,
                   std::string* out) {
  // First-appearance-order dictionary; linear probe is fine at 256.
  std::vector<uint64_t> dict;
  std::vector<uint32_t> indices(rows);
  for (size_t r = 0; r < rows; ++r) {
    const uint64_t v = bits[r];
    size_t idx = dict.size();
    for (size_t i = 0; i < dict.size(); ++i) {
      if (dict[i] == v) {
        idx = i;
        break;
      }
    }
    if (idx == dict.size()) {
      if (dict.size() >= kMaxDictSize) return false;
      dict.push_back(v);
    }
    indices[r] = static_cast<uint32_t>(idx);
  }
  const size_t width = std::max<size_t>(1, BitWidthFor(dict.size() - 1));
  const size_t bytes = 4 + dict.size() * 8 + (rows * width + 63) / 64 * 8;
  if (bytes >= budget) return false;
  AppendU32(out, static_cast<uint32_t>(dict.size()));
  for (const uint64_t v : dict) AppendU64(out, v);
  std::vector<uint64_t> wide(indices.begin(), indices.end());
  BitPack(wide.data(), rows, width, out);
  return true;
}

bool TryEncodeFor(const uint64_t* bits, size_t rows, DataType type,
                  size_t budget, std::string* out) {
  if (type != DataType::kInt64 || rows == 0) return false;
  const int64_t* vals = reinterpret_cast<const int64_t*>(bits);
  int64_t mn = vals[0], mx = vals[0];
  for (size_t r = 1; r < rows; ++r) {
    mn = std::min(mn, vals[r]);
    mx = std::max(mx, vals[r]);
  }
  // Delta range as u64; a full-width range can't beat plain.
  const uint64_t range =
      static_cast<uint64_t>(mx) - static_cast<uint64_t>(mn);
  const size_t width = BitWidthFor(range);
  if (width >= 60) return false;
  const size_t bytes = 8 + 1 + (rows * width + 63) / 64 * 8;
  if (bytes >= budget) return false;
  AppendU64(out, static_cast<uint64_t>(mn));
  out->push_back(static_cast<char>(width));
  std::vector<uint64_t> deltas(rows);
  for (size_t r = 0; r < rows; ++r) {
    deltas[r] = static_cast<uint64_t>(vals[r]) - static_cast<uint64_t>(mn);
  }
  BitPack(deltas.data(), rows, width, out);
  return true;
}

// ---------------------------------------------------------------------------
// Sampling-based codec selection.

struct SampleStats {
  size_t runs = 0;      // run boundaries in the sample
  size_t distinct = 0;  // distinct values (capped at kMaxDictSize + 1)
  size_t for_width = 64;
};

SampleStats SampleColumn(const uint64_t* bits, size_t rows, DataType type) {
  SampleStats s;
  if (rows == 0) return s;
  const size_t stride = std::max<size_t>(1, rows / kSampleValues);
  std::vector<uint64_t> seen;
  int64_t mn = 0, mx = 0;
  bool have_minmax = false;
  uint64_t prev = 0;
  bool have_prev = false;
  for (size_t r = 0; r < rows; r += stride) {
    const uint64_t v = bits[r];
    if (!have_prev || v != prev) ++s.runs;
    prev = v;
    have_prev = true;
    if (seen.size() <= kMaxDictSize &&
        std::find(seen.begin(), seen.end(), v) == seen.end()) {
      seen.push_back(v);
    }
    if (type == DataType::kInt64) {
      const int64_t iv = static_cast<int64_t>(v);
      if (!have_minmax) {
        mn = mx = iv;
        have_minmax = true;
      } else {
        mn = std::min(mn, iv);
        mx = std::max(mx, iv);
      }
    }
  }
  s.distinct = seen.size();
  if (type == DataType::kInt64 && have_minmax) {
    s.for_width = BitWidthFor(static_cast<uint64_t>(mx) -
                              static_cast<uint64_t>(mn));
  }
  return s;
}

void WriteHeader(const ColumnBlockHeader& h, std::string* out,
                 size_t at_offset) {
  char buf[ColumnBlockHeader::kEncodedSize];
  std::memcpy(buf + 0, &h.magic, 2);
  std::memcpy(buf + 2, &h.version, 2);
  buf[4] = static_cast<char>(h.codec);
  buf[5] = static_cast<char>(h.type);
  std::memcpy(buf + 6, &h.reserved, 2);
  std::memcpy(buf + 8, &h.rows, 4);
  std::memcpy(buf + 12, &h.payload_bytes, 4);
  std::memcpy(buf + 16, &h.null_bytes, 4);
  out->replace(at_offset, sizeof buf, buf, sizeof buf);
}

Status CorruptionAt(const char* what) {
  return Status::Corruption(
      StringPrintf("column block: %s", what));
}

}  // namespace

const char* ColumnCodecName(ColumnCodec codec) {
  switch (codec) {
    case ColumnCodec::kPlain: return "plain";
    case ColumnCodec::kRle: return "rle";
    case ColumnCodec::kDict: return "dict";
    case ColumnCodec::kFor: return "for";
  }
  return "unknown";
}

size_t EncodeColumnBlock(const ColumnVector& col, size_t rows,
                         std::string* out) {
  const size_t start = out->size();
  out->append(ColumnBlockHeader::kEncodedSize, '\0');  // patched below

  const uint64_t* bits = ValueBits(col);
  const size_t plain_bytes = rows * 8;
  ColumnCodec codec = ColumnCodec::kPlain;
  const size_t payload_start = out->size();

  if (rows > 0) {
    const SampleStats s = SampleColumn(bits, rows, col.type);
    // Candidate order by estimated size; every candidate self-rejects
    // against the plain budget, so a bad estimate only costs time.
    const size_t stride = std::max<size_t>(1, rows / kSampleValues);
    const size_t sampled = (rows + stride - 1) / stride;
    const double run_frac =
        static_cast<double>(s.runs) / static_cast<double>(sampled);
    // Run-heavy blocks favor RLE, but a low-cardinality block with
    // short runs (e.g. a 5-value label column) packs far tighter as a
    // dictionary: compare the size estimates, not just run_frac. Both
    // estimates are per-row costs; constants cancel out at block size.
    const size_t rle_est_bytes =
        static_cast<size_t>(run_frac * static_cast<double>(rows)) * 12 + 12;
    size_t dict_est_bytes = plain_bytes;  // "not applicable"
    if (s.distinct >= 1 && s.distinct <= kMaxDictSize) {
      const size_t width =
          std::max<size_t>(1, BitWidthFor(s.distinct - 1));
      dict_est_bytes = 4 + s.distinct * 8 + (rows * width + 7) / 8;
    }
    const bool try_rle_first = run_frac < 0.2 && rle_est_bytes <= dict_est_bytes;
    bool encoded = false;
    if (try_rle_first) {
      encoded = TryEncodeRle(bits, rows, plain_bytes, out);
      if (encoded) codec = ColumnCodec::kRle;
    }
    if (!encoded && s.distinct <= kMaxDictSize) {
      encoded = TryEncodeDict(bits, rows, plain_bytes, out);
      if (encoded) codec = ColumnCodec::kDict;
    }
    if (!encoded && s.for_width < 60) {
      encoded = TryEncodeFor(bits, rows, col.type, plain_bytes, out);
      if (encoded) codec = ColumnCodec::kFor;
    }
    if (!encoded && !try_rle_first && run_frac < 0.6) {
      encoded = TryEncodeRle(bits, rows, plain_bytes, out);
      if (encoded) codec = ColumnCodec::kRle;
    }
    if (!encoded) EncodePlain(bits, rows, out);
  }
  const size_t payload_bytes = out->size() - payload_start;

  ColumnBlockHeader h;
  h.codec = static_cast<uint8_t>(codec);
  h.type = static_cast<uint8_t>(col.type);
  h.rows = static_cast<uint32_t>(rows);
  h.payload_bytes = static_cast<uint32_t>(payload_bytes);
  if (col.has_nulls()) {
    const size_t words = NullBitmapWords(rows);
    h.null_bytes = static_cast<uint32_t>(words * 8);
    out->append(reinterpret_cast<const char*>(col.null_bits.data()),
                words * 8);
  }
  WriteHeader(h, out, start);
  return out->size() - start;
}

StatusOr<ColumnBlockHeader> PeekColumnBlockHeader(const char* data,
                                                  size_t size, size_t* pos) {
  if (*pos + ColumnBlockHeader::kEncodedSize > size) {
    return CorruptionAt("truncated header");
  }
  const char* p = data + *pos;
  ColumnBlockHeader h;
  std::memcpy(&h.magic, p + 0, 2);
  std::memcpy(&h.version, p + 2, 2);
  h.codec = static_cast<uint8_t>(p[4]);
  h.type = static_cast<uint8_t>(p[5]);
  std::memcpy(&h.reserved, p + 6, 2);
  std::memcpy(&h.rows, p + 8, 4);
  std::memcpy(&h.payload_bytes, p + 12, 4);
  std::memcpy(&h.null_bytes, p + 16, 4);
  if (h.magic != ColumnBlockHeader::kMagic) return CorruptionAt("bad magic");
  if (h.version == 0 || h.version > ColumnBlockHeader::kVersion) {
    return CorruptionAt("unsupported version");
  }
  if (h.codec > static_cast<uint8_t>(ColumnCodec::kFor)) {
    return CorruptionAt("unknown codec");
  }
  if (h.type != static_cast<uint8_t>(DataType::kDouble) &&
      h.type != static_cast<uint8_t>(DataType::kInt64)) {
    return CorruptionAt("bad column type");
  }
  if (h.null_bytes != 0 &&
      h.null_bytes != NullBitmapWords(h.rows) * 8) {
    return CorruptionAt("null bitmap size mismatch");
  }
  *pos += ColumnBlockHeader::kEncodedSize;
  if (*pos + h.payload_bytes + h.null_bytes > size) {
    return CorruptionAt("truncated payload");
  }
  return h;
}

Status DecodeColumnBlock(const char* data, size_t size, size_t* pos,
                         ColumnVector* col) {
  NLQ_FAILPOINT("page_decompress");
  size_t p = *pos;
  NLQ_ASSIGN_OR_RETURN(const ColumnBlockHeader h,
                       PeekColumnBlockHeader(data, size, &p));
  const size_t rows = h.rows;
  col->Reset(static_cast<DataType>(h.type), rows);
  uint64_t* dst = MutableValueBits(col);
  const char* payload = data + p;
  const size_t payload_bytes = h.payload_bytes;

  switch (static_cast<ColumnCodec>(h.codec)) {
    case ColumnCodec::kPlain: {
      if (payload_bytes != rows * 8) {
        return CorruptionAt("plain payload size mismatch");
      }
      std::memcpy(dst, payload, payload_bytes);
      break;
    }
    case ColumnCodec::kRle: {
      size_t q = 0, r = 0;
      while (r < rows) {
        if (q + 12 > payload_bytes) return CorruptionAt("truncated RLE run");
        uint32_t len;
        uint64_t v;
        std::memcpy(&len, payload + q, 4);
        std::memcpy(&v, payload + q + 4, 8);
        q += 12;
        if (len == 0 || r + len > rows) {
          return CorruptionAt("RLE run overflows block");
        }
        for (uint32_t i = 0; i < len; ++i) dst[r + i] = v;
        r += len;
      }
      if (q != payload_bytes) return CorruptionAt("trailing RLE bytes");
      break;
    }
    case ColumnCodec::kDict: {
      if (payload_bytes < 4) return CorruptionAt("truncated dict size");
      uint32_t dict_size;
      std::memcpy(&dict_size, payload, 4);
      if (dict_size == 0 || dict_size > kMaxDictSize) {
        return CorruptionAt("dict size out of range");
      }
      const size_t width =
          std::max<size_t>(1, BitWidthFor(dict_size - 1));
      const size_t packed_bytes = (rows * width + 63) / 64 * 8;
      if (payload_bytes != 4 + dict_size * 8 + packed_bytes) {
        return CorruptionAt("dict payload size mismatch");
      }
      std::vector<uint64_t> dict(dict_size);
      std::memcpy(dict.data(), payload + 4, dict_size * 8);
      std::vector<uint64_t> packed(packed_bytes / 8 + 1, 0);
      std::memcpy(packed.data(), payload + 4 + dict_size * 8, packed_bytes);
      for (size_t r = 0; r < rows; ++r) {
        const uint64_t idx = BitUnpack(packed.data(), r, width);
        if (idx >= dict_size) return CorruptionAt("dict index out of range");
        dst[r] = dict[idx];
      }
      break;
    }
    case ColumnCodec::kFor: {
      if (static_cast<DataType>(h.type) != DataType::kInt64) {
        return CorruptionAt("FoR on non-BIGINT column");
      }
      if (payload_bytes < 9) return CorruptionAt("truncated FoR header");
      uint64_t ref;
      std::memcpy(&ref, payload, 8);
      const size_t width = static_cast<uint8_t>(payload[8]);
      if (width >= 60) return CorruptionAt("FoR width out of range");
      const size_t packed_bytes = (rows * width + 63) / 64 * 8;
      if (payload_bytes != 9 + packed_bytes) {
        return CorruptionAt("FoR payload size mismatch");
      }
      std::vector<uint64_t> packed(packed_bytes / 8 + 1, 0);
      std::memcpy(packed.data(), payload + 9, packed_bytes);
      for (size_t r = 0; r < rows; ++r) {
        dst[r] = ref + BitUnpack(packed.data(), r, width);
      }
      break;
    }
  }
  p += payload_bytes;

  if (h.null_bytes > 0) {
    std::memcpy(col->null_bits.data(), data + p, h.null_bytes);
    p += h.null_bytes;
    uint64_t nulls = 0;
    for (const uint64_t w : col->null_bits) nulls += __builtin_popcountll(w);
    col->null_count = nulls;
    // NULL slots must hold the canonical 0 the row decoder writes;
    // any other pattern means the writer and bitmap disagree.
    for (size_t r = 0; r < rows; ++r) {
      if (NullBitGet(col->null_bits.data(), r)) dst[r] = 0;
    }
  }
  *pos = p;
  return Status::OK();
}

}  // namespace nlq::storage
