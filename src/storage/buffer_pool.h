#ifndef NLQ_STORAGE_BUFFER_POOL_H_
#define NLQ_STORAGE_BUFFER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace nlq::storage {

class BufferPool;

/// RAII pin on one pool frame. While live, the frame cannot be
/// evicted and `data()` stays valid. Movable, not copyable.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  ~PageHandle() { Reset(); }

  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }
  const char* data() const { return data_; }

  /// Unpins early (idempotent).
  void Reset();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, size_t frame, const char* data)
      : pool_(pool), frame_(frame), data_(data) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  const char* data_ = nullptr;
};

/// Point-in-time pool counters (also mirrored into the process metrics
/// registry as pool.hits / pool.misses / pool.evictions /
/// pool.readahead_pages / pool.readahead_hits).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t readahead_pages = 0;  // pages loaded by the readahead worker
  uint64_t readahead_hits = 0;   // pins served by a readahead-loaded frame
  uint64_t bytes_cached = 0;     // frames allocated * kPageSize
};

/// Bounded cache of read-only page images fronting one or more
/// DiskManagers — the memory ceiling for larger-than-RAM scans.
///
/// Frames hold immutable 64 KB page images of registered files
/// (spilled segments never change once written, so there is no dirty
/// state and eviction is free). Lookup pins the frame (clock-swept,
/// pin-counted); misses read through the DiskManager, bulk misses with
/// one vectored ReadPages per consecutive run. A background readahead
/// worker loads announced page runs into unpinned frames so scans find
/// them warm — the morsel grid is the natural announcement unit.
///
/// Frame memory is charged to the pool's MemoryTracker on allocation,
/// so `tracker().peak()` is the provable RSS bound of the storage
/// layer: it never exceeds budget_bytes rounded up to whole frames.
///
/// Thread-safe: workers pin/unpin concurrently with the readahead
/// worker. When every frame is pinned simultaneously a pin fails with
/// kResourceExhausted rather than growing past the budget.
class BufferPool {
 public:
  /// `budget_bytes` bounds frame memory; at least kMinFrames frames
  /// are always available so tiny budgets cannot deadlock a scan.
  explicit BufferPool(uint64_t budget_bytes);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  static constexpr size_t kMinFrames = 16;

  /// Registers an open file; pages are keyed by the returned id. The
  /// DiskManager must outlive its registration.
  uint32_t RegisterFile(const DiskManager* disk);

  /// Drops every cached page of `file_id` (must have no pins on them)
  /// and forgets the file.
  void UnregisterFile(uint32_t file_id);

  /// Pins the frame holding page (file_id, page_id), reading it from
  /// disk on a miss. The handle unpins on destruction.
  StatusOr<PageHandle> Pin(uint32_t file_id, uint64_t page_id);

  /// Ensures pages [first, first+count) are resident (unpinned),
  /// reading every missing run with one vectored ReadPages. Pages that
  /// cannot get a frame (all pinned) are skipped silently — FetchRange
  /// is an optimization, Pin is the correctness path.
  Status FetchRange(uint32_t file_id, uint64_t first, size_t count);

  /// Queues pages [first, first+count) for the background readahead
  /// worker. Drops the request when the queue is saturated; readahead
  /// is best-effort by design.
  void ScheduleReadahead(uint32_t file_id, uint64_t first, size_t count);

  /// Blocks until the readahead queue is empty (tests).
  void DrainReadaheadForTest();

  size_t num_frames() const { return frames_.size(); }
  uint64_t budget_bytes() const { return budget_bytes_; }
  const MemoryTracker& tracker() const { return tracker_; }
  BufferPoolStats GetStats() const;

 private:
  friend class PageHandle;

  struct Frame {
    std::unique_ptr<char[]> data;  // kPageSize, allocated on first use
    uint64_t key = 0;              // (file_id << 40) | page_id when valid
    bool valid = false;
    bool loading = false;     // I/O in flight; waiters on loaded_cv_
    bool referenced = false;  // clock bit
    bool from_readahead = false;
    uint32_t pins = 0;
  };

  static uint64_t Key(uint32_t file_id, uint64_t page_id) {
    return (static_cast<uint64_t>(file_id) << 40) | page_id;
  }

  void Unpin(size_t frame);

  /// Picks a victim frame with the clock hand (mu_ held). Returns
  /// SIZE_MAX when every frame is pinned or loading.
  size_t EvictLocked();

  /// Claims a frame for `key`, marking it loading (mu_ held). Returns
  /// SIZE_MAX when no frame is available.
  size_t ClaimFrameLocked(uint64_t key);

  /// Publishes or abandons a claimed frame after I/O (locks mu_).
  /// A failed load drops the mapping so a later Pin retries the read.
  void FinishLoad(size_t frame, bool ok, bool readahead);

  void ReadaheadLoop();
  Status LoadRun(uint32_t file_id, uint64_t first, size_t count,
                 bool readahead);

  const uint64_t budget_bytes_;
  MemoryTracker tracker_;

  mutable std::mutex mu_;
  std::condition_variable loaded_cv_;
  // Sized to the budget at construction and never resized, so frame
  // buffers can be filled outside mu_ while other threads claim.
  std::vector<Frame> frames_;
  size_t allocated_frames_ = 0;  // frames whose data is allocated
  std::unordered_map<uint64_t, size_t> page_map_;  // key -> frame
  std::unordered_map<uint32_t, const DiskManager*> files_;
  uint32_t next_file_id_ = 1;
  size_t clock_hand_ = 0;

  // Counters (mu_ held; reads copy under the lock).
  BufferPoolStats stats_;

  // Readahead worker.
  struct ReadaheadRequest {
    uint32_t file_id;
    uint64_t first;
    size_t count;
  };
  std::mutex ra_mu_;
  std::condition_variable ra_cv_;
  std::condition_variable ra_idle_cv_;
  std::deque<ReadaheadRequest> ra_queue_;
  bool ra_busy_ = false;
  bool shutting_down_ = false;
  std::thread ra_thread_;
};

}  // namespace nlq::storage

#endif  // NLQ_STORAGE_BUFFER_POOL_H_
