#include "storage/spill_segment.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "storage/column_codec.h"
#include "storage/table.h"

namespace nlq::storage {
namespace {

/// Chunk blob header: [u32 magic][u32 rows][u32 cols][u32 reserved],
/// followed by one column block per schema column, in schema order.
constexpr uint32_t kChunkMagic = 0x6B68634E;  // "Nchk"
constexpr size_t kChunkHeaderSize = 16;

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}

uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

StatusOr<std::unique_ptr<SpillSegment>> SpillSegment::Create(
    const Table& table, const std::string& path, BufferPool* pool,
    size_t chunk_rows) {
  if (pool == nullptr) {
    return Status::InvalidArgument("SpillSegment requires a buffer pool");
  }
  if (chunk_rows == 0) {
    return Status::InvalidArgument("spill chunk_rows must be positive");
  }
  const Schema& schema = table.schema();
  std::vector<size_t> all_columns;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.column(c).type == DataType::kVarchar) {
      return Status::NotSupported(
          "cannot spill table with VARCHAR column '" + schema.column(c).name +
          "': columnar codecs cover fixed-width types only");
    }
    all_columns.push_back(c);
  }
  if (all_columns.empty()) {
    return Status::NotSupported("cannot spill table with no columns");
  }

  std::unique_ptr<SpillSegment> seg(new SpillSegment());
  seg->disk_ = std::make_unique<DiskManager>();
  NLQ_RETURN_IF_ERROR(seg->disk_->Open(path, /*truncate=*/true));
  // Unlink immediately: the open fd keeps the scratch file alive, and
  // a crash can never leave a stale spill file behind.
  ::unlink(path.c_str());

  seg->num_rows_ = table.num_rows();
  seg->num_columns_ = all_columns.size();
  seg->chunk_rows_ = chunk_rows;

  // Per-chunk accumulators: a range scan may split a chunk across
  // several batches, so values are gathered here before encoding.
  std::vector<ColumnVector> acc(all_columns.size());
  std::string blob;
  Page io_page;
  uint64_t next_page = 0;

  for (uint64_t first = 0; first < seg->num_rows_; first += chunk_rows) {
    const size_t rows = static_cast<size_t>(
        std::min<uint64_t>(chunk_rows, seg->num_rows_ - first));
    for (size_t c = 0; c < acc.size(); ++c) {
      acc[c].Reset(schema.column(all_columns[c]).type, rows);
    }

    ColumnBatchScanner scanner = table.ScanColumnBatchRange(
        all_columns, first, first + rows,
        std::min<size_t>(rows, ColumnBatch::kDefaultCapacity));
    ColumnBatch batch;
    size_t filled = 0;
    while (filled < rows && scanner.Next(&batch)) {
      for (size_t c = 0; c < acc.size(); ++c) {
        const ColumnVector& src = batch.column(c);
        ColumnVector& dst = acc[c];
        if (src.type == DataType::kDouble) {
          std::memcpy(dst.doubles.data() + filled, src.doubles.data(),
                      batch.size() * sizeof(double));
        } else {
          std::memcpy(dst.ints.data() + filled, src.ints.data(),
                      batch.size() * sizeof(int64_t));
        }
        if (src.has_nulls()) {
          for (size_t r = 0; r < batch.size(); ++r) {
            if (NullBitGet(src.null_bits.data(), r)) {
              NullBitSet(dst.null_bits.data(), filled + r);
              dst.null_count++;
            }
          }
        }
      }
      filled += batch.size();
    }
    NLQ_RETURN_IF_ERROR(scanner.status());
    if (filled != rows) {
      return Status::Internal("spill scan produced " + std::to_string(filled) +
                              " rows, expected " + std::to_string(rows));
    }

    blob.clear();
    AppendU32(&blob, kChunkMagic);
    AppendU32(&blob, static_cast<uint32_t>(rows));
    AppendU32(&blob, static_cast<uint32_t>(acc.size()));
    AppendU32(&blob, 0);
    for (ColumnVector& col : acc) EncodeColumnBlock(col, rows, &blob);

    SpillChunkInfo info;
    info.first_row = first;
    info.rows = static_cast<uint32_t>(rows);
    info.first_page = next_page;
    info.pages = static_cast<uint32_t>((blob.size() + kPageSize - 1) / kPageSize);
    info.bytes = blob.size();
    for (uint32_t p = 0; p < info.pages; ++p) {
      const size_t off = static_cast<size_t>(p) * kPageSize;
      const size_t n = std::min(kPageSize, blob.size() - off);
      std::memcpy(io_page.raw(), blob.data() + off, n);
      NLQ_RETURN_IF_ERROR(seg->disk_->WritePage(next_page + p, io_page));
    }
    next_page += info.pages;
    seg->compressed_bytes_ += info.bytes;
    seg->chunks_.push_back(info);
  }

  seg->pool_ = pool;
  seg->file_id_ = pool->RegisterFile(seg->disk_.get());
  return seg;
}

SpillSegment::~SpillSegment() {
  if (pool_ != nullptr) pool_->UnregisterFile(file_id_);
  // DiskManager closes the fd; the file was unlinked at creation.
}

Status SpillSegment::ReadChunk(size_t chunk_idx,
                               const std::vector<size_t>& columns,
                               const std::vector<ColumnVector*>& dests,
                               std::string* scratch) const {
  if (chunk_idx >= chunks_.size()) {
    return Status::OutOfRange("spill chunk index out of range");
  }
  if (columns.size() != dests.size()) {
    return Status::InvalidArgument("ReadChunk columns/dests size mismatch");
  }
  const SpillChunkInfo& ck = chunks_[chunk_idx];

  // Reassemble the blob one pinned page at a time: peak pool usage per
  // reader is a single frame regardless of chunk size, so a pool at
  // its minimum frame floor still serves a full worker complement.
  scratch->resize(ck.bytes);
  for (uint32_t p = 0; p < ck.pages; ++p) {
    auto pin = pool_->Pin(file_id_, ck.first_page + p);
    if (!pin.ok()) return pin.status();
    const size_t off = static_cast<size_t>(p) * kPageSize;
    const size_t n = std::min(kPageSize, static_cast<size_t>(ck.bytes) - off);
    std::memcpy(scratch->data() + off, pin->data(), n);
  }

  const char* data = scratch->data();
  const size_t size = scratch->size();
  if (size < kChunkHeaderSize) {
    return Status::Corruption("spill chunk truncated before header");
  }
  if (ReadU32(data) != kChunkMagic) {
    return Status::Corruption("spill chunk bad magic");
  }
  const uint32_t rows = ReadU32(data + 4);
  const uint32_t cols = ReadU32(data + 8);
  if (rows != ck.rows || cols != num_columns_) {
    return Status::Corruption("spill chunk header mismatch");
  }

  std::vector<ColumnVector*> by_slot(num_columns_, nullptr);
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] >= num_columns_) {
      return Status::InvalidArgument("ReadChunk column slot out of range");
    }
    by_slot[columns[i]] = dests[i];
  }

  size_t pos = kChunkHeaderSize;
  for (size_t c = 0; c < num_columns_; ++c) {
    if (by_slot[c] != nullptr) {
      NLQ_RETURN_IF_ERROR(DecodeColumnBlock(data, size, &pos, by_slot[c]));
    } else {
      size_t peek = pos;
      NLQ_ASSIGN_OR_RETURN(ColumnBlockHeader h,
                           PeekColumnBlockHeader(data, size, &peek));
      pos += ColumnBlockBytes(h);
      if (pos > size) {
        return Status::Corruption("spill chunk column block overruns chunk");
      }
    }
  }
  return Status::OK();
}

void SpillSegment::ScheduleChunkReadahead(size_t chunk_idx) const {
  if (chunk_idx >= chunks_.size()) return;
  const SpillChunkInfo& ck = chunks_[chunk_idx];
  pool_->ScheduleReadahead(file_id_, ck.first_page, ck.pages);
}

}  // namespace nlq::storage
