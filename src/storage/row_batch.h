#ifndef NLQ_STORAGE_ROW_BATCH_H_
#define NLQ_STORAGE_ROW_BATCH_H_

#include <cstddef>
#include <vector>

#include "storage/value.h"

namespace nlq::storage {

/// A fixed-capacity batch of decoded rows — the unit of data flow
/// between execution operators (morsel-style batching) and the unit
/// the storage layer decodes per `BatchScanner::Next` call.
///
/// Row storage is owned by the batch and reused across `Clear()`
/// cycles so that steady-state scanning performs no per-row vector
/// allocations: `AppendRow()` hands back the next pre-existing Row
/// slot for the producer to overwrite.
class RowBatch {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit RowBatch(size_t capacity = kDefaultCapacity)
      : rows_(capacity), capacity_(capacity) {}

  size_t capacity() const { return capacity_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  /// Logically empties the batch; row storage is kept for reuse.
  void Clear() { size_ = 0; }

  /// Claims the next row slot. The returned Row may hold stale data
  /// from a previous cycle; the producer must overwrite or resize it.
  Row& AppendRow() { return rows_[size_++]; }

  /// Drops rows [new_size, size()).
  void Truncate(size_t new_size) {
    if (new_size < size_) size_ = new_size;
  }

  Row& row(size_t i) { return rows_[i]; }
  const Row& row(size_t i) const { return rows_[i]; }

  /// Contiguous row array for batch expression evaluation.
  const Row* rows() const { return rows_.data(); }
  Row* mutable_rows() { return rows_.data(); }

 private:
  std::vector<Row> rows_;  // size() == capacity_; first size_ are live
  size_t capacity_;
  size_t size_ = 0;
};

}  // namespace nlq::storage

#endif  // NLQ_STORAGE_ROW_BATCH_H_
