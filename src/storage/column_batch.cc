#include "storage/column_batch.h"

#include <cstring>

namespace nlq::storage {

void ColumnVector::Reset(DataType t, size_t rows) {
  type = t;
  // Value slots may keep stale data from the previous cycle (a steady-
  // state resize to the same size is a no-op); the decoder overwrites
  // every live slot, writing 0/0.0 at NULL positions.
  if (t == DataType::kDouble) {
    ints.clear();
    doubles.resize(rows);
  } else {
    doubles.clear();
    ints.resize(rows);
  }
  null_bits.assign(NullBitmapWords(rows), 0);
  null_count = 0;
}

void ColumnBatch::Configure(const Schema& schema,
                            const std::vector<size_t>& slots,
                            size_t capacity) {
  slots_ = slots;
  capacity_ = capacity;
  size_ = 0;
  columns_.resize(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    columns_[i].Reset(schema.column(slots[i]).type, capacity);
  }
}

ColumnDecoder::ColumnDecoder(const Schema* schema,
                             const std::vector<size_t>& slots) {
  plan_.resize(schema->num_columns());
  for (size_t c = 0; c < plan_.size(); ++c) {
    plan_[c] = {schema->column(c).type, -1};
  }
  for (size_t i = 0; i < slots.size(); ++i) {
    plan_[slots[i]].dest = static_cast<int>(i);
  }
}

Status ColumnDecoder::DecodeRow(const char* data, size_t size, size_t* pos,
                                ColumnVector* const* dests, size_t r) const {
  size_t p = *pos;
  for (size_t c = 0; c < plan_.size(); ++c) {
    if (p + 1 > size) return Status::Internal("truncated row (null byte)");
    const bool is_null = data[p] != 0;
    ++p;
    const int dest = plan_[c].dest;
    switch (plan_[c].type) {
      case DataType::kDouble: {
        if (is_null) {
          if (dest >= 0) {
            dests[dest]->doubles[r] = 0.0;
            NullBitSet(dests[dest]->null_bits.data(), r);
            ++dests[dest]->null_count;
          }
          break;
        }
        if (p + 8 > size) return Status::Internal("truncated row (double)");
        if (dest >= 0) std::memcpy(&dests[dest]->doubles[r], data + p, 8);
        p += 8;
        break;
      }
      case DataType::kInt64: {
        if (is_null) {
          if (dest >= 0) {
            dests[dest]->ints[r] = 0;
            NullBitSet(dests[dest]->null_bits.data(), r);
            ++dests[dest]->null_count;
          }
          break;
        }
        if (p + 8 > size) return Status::Internal("truncated row (int64)");
        if (dest >= 0) std::memcpy(&dests[dest]->ints[r], data + p, 8);
        p += 8;
        break;
      }
      case DataType::kVarchar: {
        if (is_null) break;
        if (p + 4 > size) return Status::Internal("truncated row (vlen)");
        uint32_t len;
        std::memcpy(&len, data + p, 4);
        p += 4;
        if (p + len > size) return Status::Internal("truncated row (vchar)");
        p += len;
        break;
      }
    }
  }
  *pos = p;
  return Status::OK();
}

}  // namespace nlq::storage
