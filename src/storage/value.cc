#include "storage/value.h"

#include <functional>

#include "common/strings.h"

namespace nlq::storage {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kInt64:
      return "BIGINT";
    case DataType::kVarchar:
      return "VARCHAR";
  }
  return "?";
}

bool Datum::KeyEquals(const Datum& other) const {
  if (is_null_ || other.is_null_) return is_null_ && other.is_null_;
  if (type_ != other.type_) {
    // Numeric cross-type comparison.
    if (type_ != DataType::kVarchar && other.type_ != DataType::kVarchar) {
      return AsDouble() == other.AsDouble();
    }
    return false;
  }
  switch (type_) {
    case DataType::kDouble:
      return double_ == other.double_;
    case DataType::kInt64:
      return int_ == other.int_;
    case DataType::kVarchar:
      return string_ == other.string_;
  }
  return false;
}

size_t Datum::KeyHash() const {
  if (is_null_) return 0x9e3779b97f4a7c15ULL;
  switch (type_) {
    case DataType::kDouble:
      return std::hash<double>()(double_);
    case DataType::kInt64:
      // Hash ints through double so 1 and 1.0 group together.
      return std::hash<double>()(static_cast<double>(int_));
    case DataType::kVarchar:
      return std::hash<std::string>()(string_);
  }
  return 0;
}

std::string Datum::ToString() const {
  if (is_null_) return "NULL";
  switch (type_) {
    case DataType::kDouble:
      return DoubleToString(double_);
    case DataType::kInt64:
      return std::to_string(int_);
    case DataType::kVarchar:
      return string_;
  }
  return "?";
}

}  // namespace nlq::storage
