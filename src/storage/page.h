#ifndef NLQ_STORAGE_PAGE_H_
#define NLQ_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace nlq::storage {

/// Fixed page size. 64 KB mirrors the Teradata segment granularity the
/// paper mentions and keeps page headers cheap relative to payload.
inline constexpr size_t kPageSize = 64 * 1024;

/// A fixed-size slotted page holding a run of encoded rows.
///
/// Layout: [u32 used_bytes][u32 row_count][payload...]. Rows are
/// decoded sequentially with RowCodec, so no slot directory is needed.
class Page {
 public:
  Page() : data_(kPageSize, 0) { SetUsed(kHeaderSize); }

  static constexpr size_t kHeaderSize = 8;

  uint32_t used_bytes() const { return ReadU32(0); }
  uint32_t row_count() const { return ReadU32(4); }
  size_t free_bytes() const { return kPageSize - used_bytes(); }

  /// True if an encoded row of `encoded_size` bytes fits.
  bool Fits(size_t encoded_size) const { return encoded_size <= free_bytes(); }

  /// Appends pre-encoded row bytes; caller must have checked Fits().
  void AppendEncodedRow(const char* data, size_t size);

  /// Payload pointer/extent for sequential decoding.
  const char* payload() const { return data_.data() + kHeaderSize; }
  size_t payload_size() const { return used_bytes() - kHeaderSize; }

  /// Raw page bytes (for DiskManager I/O).
  const char* raw() const { return data_.data(); }
  char* raw() { return data_.data(); }

 private:
  uint32_t ReadU32(size_t off) const {
    uint32_t v;
    std::memcpy(&v, data_.data() + off, 4);
    return v;
  }
  void WriteU32(size_t off, uint32_t v) {
    std::memcpy(data_.data() + off, &v, 4);
  }
  void SetUsed(uint32_t used) { WriteU32(0, used); }

  std::vector<char> data_;
};

}  // namespace nlq::storage

#endif  // NLQ_STORAGE_PAGE_H_
