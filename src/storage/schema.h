#ifndef NLQ_STORAGE_SCHEMA_H_
#define NLQ_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace nlq::storage {

/// One column definition.
struct Column {
  std::string name;
  DataType type;
};

/// Ordered list of columns with case-insensitive name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  /// Convenience: X(i BIGINT, X1..Xd DOUBLE [, Y DOUBLE]) — the layout
  /// the paper uses for the input data set (Section 2.1).
  static Schema DataSet(size_t d, bool with_y = false);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t idx) const { return columns_[idx]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Case-insensitive lookup; NotFound if missing.
  StatusOr<size_t> ColumnIndex(std::string_view name) const;

  /// True if a column with this name exists.
  bool HasColumn(std::string_view name) const;

  /// Validates that `row` matches arity and column types (NULLs pass).
  Status ValidateRow(const Row& row) const;

  /// "name TYPE, name TYPE, ..." for error messages and CREATE TABLE.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace nlq::storage

#endif  // NLQ_STORAGE_SCHEMA_H_
