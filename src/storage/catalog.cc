#include "storage/catalog.h"

#include "common/strings.h"

namespace nlq::storage {

StatusOr<PartitionedTable*> Catalog::CreateTable(const std::string& name,
                                                 Schema schema) {
  return CreateTable(name, std::move(schema), default_partitions_);
}

StatusOr<PartitionedTable*> Catalog::CreateTable(const std::string& name,
                                                 Schema schema,
                                                 size_t num_partitions) {
  const std::string key = AsciiToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table =
      std::make_unique<PartitionedTable>(std::move(schema), num_partitions);
  PartitionedTable* raw = table.get();
  tables_[key] = std::move(table);
  return raw;
}

StatusOr<PartitionedTable*> Catalog::GetTable(const std::string& name) const {
  const auto it = tables_.find(AsciiToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return it->second.get();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(AsciiToLower(name)) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  const auto it = tables_.find(AsciiToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace nlq::storage
