#ifndef NLQ_STORAGE_SPILL_SEGMENT_H_
#define NLQ_STORAGE_SPILL_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/column_batch.h"
#include "storage/disk_manager.h"
#include "storage/schema.h"

namespace nlq::storage {

class Table;

/// Directory entry for one spilled chunk. A chunk is `rows`
/// consecutive table rows encoded column-at-a-time (column_codec
/// blocks behind a small chunk header) into one blob that occupies
/// whole pages [first_page, first_page + pages) of the scratch file —
/// page alignment is what lets the buffer pool cache and the readahead
/// worker operate on chunks as plain page runs.
struct SpillChunkInfo {
  uint64_t first_row = 0;
  uint32_t rows = 0;
  uint64_t first_page = 0;
  uint32_t pages = 0;
  uint64_t bytes = 0;  // blob bytes (before page padding)
};

/// On-disk columnar image of one table partition, read back through a
/// BufferPool — the larger-than-RAM half of the storage engine.
///
/// Created by Table::SpillToDisk: the row pages are scanned chunk by
/// chunk (kDefaultChunkRows rows each), every column of a chunk is
/// compressed into a column block, and the blobs land page-aligned in
/// a scratch file that is unlinked as soon as it is open (the fd keeps
/// it alive, so crashes never leak spill files). The chunk directory
/// stays in memory — it is a few dozen bytes per chunk.
///
/// Reading is chunk-granular and thread-safe: each worker pins the
/// chunk's pages one at a time, reassembles the blob in its own
/// scratch buffer, and decodes only the projected columns (others are
/// header-skipped without touching their payload). Peak pool usage per
/// worker is therefore one frame, whatever the chunk size.
///
/// VARCHAR schemas are not spillable (columnar codecs cover
/// fixed-width types only); Table::SpillToDisk rejects them upfront.
class SpillSegment {
 public:
  static constexpr size_t kDefaultChunkRows = 4096;

  /// Encodes every column of `table` into `path` and registers the
  /// file with `pool`. The table must be row-resident (not yet
  /// spilled) and hold only DOUBLE/BIGINT columns.
  static StatusOr<std::unique_ptr<SpillSegment>> Create(
      const Table& table, const std::string& path, BufferPool* pool,
      size_t chunk_rows = kDefaultChunkRows);

  ~SpillSegment();

  SpillSegment(const SpillSegment&) = delete;
  SpillSegment& operator=(const SpillSegment&) = delete;

  uint64_t num_rows() const { return num_rows_; }
  size_t num_chunks() const { return chunks_.size(); }
  size_t chunk_rows() const { return chunk_rows_; }
  const SpillChunkInfo& chunk(size_t i) const { return chunks_[i]; }
  size_t num_columns() const { return num_columns_; }

  /// Chunk index holding table row `row`.
  size_t ChunkOfRow(uint64_t row) const { return row / chunk_rows_; }

  /// Encoded blob bytes across all chunks (before page padding).
  uint64_t compressed_bytes() const { return compressed_bytes_; }
  /// Plain fixed-width footprint of the same data (rows * columns * 8);
  /// compressed_bytes / raw_bytes is the segment's compression ratio.
  uint64_t raw_bytes() const { return num_rows_ * num_columns_ * 8; }

  /// Decodes chunk `chunk_idx`'s projected columns into `dests`
  /// (parallel to `columns`, which are schema slot indices).
  /// `scratch` is caller-owned reassembly space — pass a per-worker
  /// buffer to make concurrent reads allocation-free and thread-safe.
  Status ReadChunk(size_t chunk_idx, const std::vector<size_t>& columns,
                   const std::vector<ColumnVector*>& dests,
                   std::string* scratch) const;

  /// Queues chunk `chunk_idx`'s page run with the pool's background
  /// readahead worker (no-op past the last chunk).
  void ScheduleChunkReadahead(size_t chunk_idx) const;

 private:
  SpillSegment() = default;

  std::unique_ptr<DiskManager> disk_;
  BufferPool* pool_ = nullptr;
  uint32_t file_id_ = 0;
  uint64_t num_rows_ = 0;
  size_t num_columns_ = 0;
  size_t chunk_rows_ = kDefaultChunkRows;
  uint64_t compressed_bytes_ = 0;
  std::vector<SpillChunkInfo> chunks_;
};

}  // namespace nlq::storage

#endif  // NLQ_STORAGE_SPILL_SEGMENT_H_
