#include "storage/schema.h"

#include "common/strings.h"

namespace nlq::storage {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

Schema Schema::DataSet(size_t d, bool with_y) {
  std::vector<Column> cols;
  cols.reserve(d + 2);
  cols.push_back({"i", DataType::kInt64});
  for (size_t a = 1; a <= d; ++a) {
    cols.push_back({"X" + std::to_string(a), DataType::kDouble});
  }
  if (with_y) cols.push_back({"Y", DataType::kDouble});
  return Schema(std::move(cols));
}

StatusOr<size_t> Schema::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return Status::NotFound("no column named '" + std::string(name) + "'");
}

bool Schema::HasColumn(std::string_view name) const {
  return ColumnIndex(name).ok();
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(StringPrintf(
        "row has %zu values but schema has %zu columns", row.size(),
        columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    const DataType expect = columns_[i].type;
    const DataType got = row[i].type();
    const bool numeric_ok =
        expect != DataType::kVarchar && got != DataType::kVarchar;
    if (got != expect && !numeric_ok) {
      return Status::InvalidArgument(StringPrintf(
          "column '%s' expects %s but row has %s", columns_[i].name.c_str(),
          DataTypeName(expect), DataTypeName(got)));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += DataTypeName(columns_[i].type);
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].type != other.columns_[i].type) return false;
    if (!EqualsIgnoreCase(columns_[i].name, other.columns_[i].name)) {
      return false;
    }
  }
  return true;
}

}  // namespace nlq::storage
