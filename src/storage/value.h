#ifndef NLQ_STORAGE_VALUE_H_
#define NLQ_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace nlq::storage {

/// Column types supported by the engine. DOUBLE covers the statistical
/// dimensions X1..Xd; INT64 covers point ids / group keys; VARCHAR is
/// used for packed-vector UDF parameters and model metadata.
enum class DataType : uint8_t {
  kDouble = 0,
  kInt64 = 1,
  kVarchar = 2,
};

/// Returns "DOUBLE", "BIGINT" or "VARCHAR".
const char* DataTypeName(DataType type);

/// A single (nullable) SQL value.
///
/// Deliberately a simple tagged struct rather than std::variant: the
/// engine's interpreted expression evaluator touches Datums on every
/// row, and predictable layout keeps that hot path measurable and
/// fair against the compiled UDF path.
class Datum {
 public:
  /// SQL NULL of type DOUBLE (type is refined by context).
  Datum() : type_(DataType::kDouble), is_null_(true) {}

  static Datum Null(DataType type) {
    Datum d;
    d.type_ = type;
    d.is_null_ = true;
    return d;
  }
  static Datum Double(double v) {
    Datum d;
    d.type_ = DataType::kDouble;
    d.is_null_ = false;
    d.double_ = v;
    return d;
  }
  static Datum Int64(int64_t v) {
    Datum d;
    d.type_ = DataType::kInt64;
    d.is_null_ = false;
    d.int_ = v;
    return d;
  }
  static Datum Varchar(std::string v) {
    Datum d;
    d.type_ = DataType::kVarchar;
    d.is_null_ = false;
    d.string_ = std::move(v);
    return d;
  }

  DataType type() const { return type_; }
  bool is_null() const { return is_null_; }

  /// Typed accessors; callers must check the type first.
  double double_value() const { return double_; }
  int64_t int_value() const { return int_; }
  const std::string& string_value() const { return string_; }

  /// Numeric coercion: DOUBLE as-is, INT64 widened; NULL/VARCHAR -> 0.
  double AsDouble() const {
    if (is_null_) return 0.0;
    if (type_ == DataType::kDouble) return double_;
    if (type_ == DataType::kInt64) return static_cast<double>(int_);
    return 0.0;
  }

  /// SQL-style equality for GROUP BY keys (NULLs compare equal).
  bool KeyEquals(const Datum& other) const;

  /// Hash for GROUP BY / partitioning.
  size_t KeyHash() const;

  /// Display form ("NULL", number, or raw string).
  std::string ToString() const;

 private:
  DataType type_;
  bool is_null_;
  double double_ = 0.0;
  int64_t int_ = 0;
  std::string string_;
};

using Row = std::vector<Datum>;

}  // namespace nlq::storage

#endif  // NLQ_STORAGE_VALUE_H_
