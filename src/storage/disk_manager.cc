#include "storage/disk_manager.h"

#include <fcntl.h>

#include "common/failpoint.h"
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace nlq::storage {
namespace {

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::IOError(std::string(op) + " failed for '" + path +
                         "': " + std::strerror(errno));
}

}  // namespace

DiskManager::~DiskManager() { Close(); }

Status DiskManager::Open(const std::string& path, bool truncate) {
  Close();
  int flags = O_RDWR | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) return ErrnoStatus("open", path);
  path_ = path;
  return Status::OK();
}

void DiskManager::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<uint64_t> DiskManager::PageCount() const {
  if (fd_ < 0) return Status::Internal("DiskManager not open");
  struct stat st;
  if (::fstat(fd_, &st) != 0) return ErrnoStatus("fstat", path_);
  return static_cast<uint64_t>(st.st_size) / kPageSize;
}

Status DiskManager::WritePage(uint64_t page_id, const Page& page) {
  if (fd_ < 0) return Status::Internal("DiskManager not open");
  NLQ_FAILPOINT("disk_io");
  const off_t offset = static_cast<off_t>(page_id * kPageSize);
  size_t written = 0;
  while (written < kPageSize) {
    const ssize_t n = ::pwrite(fd_, page.raw() + written, kPageSize - written,
                               offset + static_cast<off_t>(written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite", path_);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status DiskManager::ReadPage(uint64_t page_id, Page* page) const {
  if (fd_ < 0) return Status::Internal("DiskManager not open");
  NLQ_FAILPOINT("disk_io");
  const off_t offset = static_cast<off_t>(page_id * kPageSize);
  size_t read = 0;
  while (read < kPageSize) {
    const ssize_t n = ::pread(fd_, page->raw() + read, kPageSize - read,
                              offset + static_cast<off_t>(read));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread", path_);
    }
    if (n == 0) return Status::IOError("short read: page beyond end of file");
    read += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status DiskManager::Sync() {
  if (fd_ < 0) return Status::Internal("DiskManager not open");
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
  return Status::OK();
}

}  // namespace nlq::storage
