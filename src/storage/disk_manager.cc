#include "storage/disk_manager.h"

#include <fcntl.h>

#include "common/failpoint.h"
#include "common/metrics.h"
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstring>

namespace nlq::storage {
namespace {

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::IOError(std::string(op) + " failed for '" + path +
                         "': " + std::strerror(errno));
}

/// Ticks the process-wide I/O counters. Looked up per call (amortized
/// over a 64 KB page, and ResetForTest invalidates cached references).
void CountIo(const char* pages_name, const char* bytes_name, size_t pages) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.counter(pages_name).Add(pages);
  metrics.counter(bytes_name).Add(pages * kPageSize);
}

}  // namespace

DiskManager::~DiskManager() { Close(); }

Status DiskManager::Open(const std::string& path, bool truncate) {
  Close();
  int flags = O_RDWR | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) return ErrnoStatus("open", path);
  path_ = path;
  return Status::OK();
}

void DiskManager::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<uint64_t> DiskManager::PageCount() const {
  if (fd_ < 0) return Status::Internal("DiskManager not open");
  struct stat st;
  if (::fstat(fd_, &st) != 0) return ErrnoStatus("fstat", path_);
  return static_cast<uint64_t>(st.st_size) / kPageSize;
}

Status DiskManager::WritePage(uint64_t page_id, const Page& page) {
  if (fd_ < 0) return Status::Internal("DiskManager not open");
  NLQ_FAILPOINT("disk_io");
  const off_t offset = static_cast<off_t>(page_id * kPageSize);
  size_t written = 0;
  while (written < kPageSize) {
    const ssize_t n = ::pwrite(fd_, page.raw() + written, kPageSize - written,
                               offset + static_cast<off_t>(written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite", path_);
    }
    written += static_cast<size_t>(n);
  }
  CountIo("disk.pages_written", "disk.write_bytes", 1);
  return Status::OK();
}

Status DiskManager::ReadPage(uint64_t page_id, Page* page) const {
  if (fd_ < 0) return Status::Internal("DiskManager not open");
  NLQ_FAILPOINT("disk_io");
  const off_t offset = static_cast<off_t>(page_id * kPageSize);
  size_t read = 0;
  while (read < kPageSize) {
    const ssize_t n = ::pread(fd_, page->raw() + read, kPageSize - read,
                              offset + static_cast<off_t>(read));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread", path_);
    }
    if (n == 0) return Status::IOError("short read: page beyond end of file");
    read += static_cast<size_t>(n);
  }
  CountIo("disk.pages_read", "disk.read_bytes", 1);
  return Status::OK();
}

Status DiskManager::ReadPages(uint64_t first_page,
                              const std::vector<char*>& bufs) const {
  if (fd_ < 0) return Status::Internal("DiskManager not open");
  if (bufs.empty()) return Status::OK();
  NLQ_FAILPOINT("disk_io");
  size_t done = 0;  // pages fully read
  while (done < bufs.size()) {
    const size_t batch = std::min<size_t>(bufs.size() - done, IOV_MAX);
    std::vector<struct iovec> iov(batch);
    for (size_t i = 0; i < batch; ++i) {
      iov[i].iov_base = bufs[done + i];
      iov[i].iov_len = kPageSize;
    }
    size_t batch_read = 0;  // bytes read within this batch
    const size_t batch_bytes = batch * kPageSize;
    while (batch_read < batch_bytes) {
      // Re-point the iovec at the resume position after a short read.
      const size_t skip_pages = batch_read / kPageSize;
      const size_t skip_into = batch_read % kPageSize;
      std::vector<struct iovec> rest(iov.begin() + skip_pages, iov.end());
      rest[0].iov_base = static_cast<char*>(rest[0].iov_base) + skip_into;
      rest[0].iov_len -= skip_into;
      const off_t offset =
          static_cast<off_t>((first_page + done) * kPageSize + batch_read);
      const ssize_t n =
          ::preadv(fd_, rest.data(), static_cast<int>(rest.size()), offset);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("preadv", path_);
      }
      if (n == 0) {
        return Status::IOError("short read: page run beyond end of file");
      }
      batch_read += static_cast<size_t>(n);
    }
    done += batch;
  }
  CountIo("disk.pages_read", "disk.read_bytes", bufs.size());
  return Status::OK();
}

Status DiskManager::Sync() {
  if (fd_ < 0) return Status::Internal("DiskManager not open");
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
  return Status::OK();
}

}  // namespace nlq::storage
