#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace nlq::server {

namespace {

/// The accept-path fault site, wrapped so the NLQ_FAILPOINT macro's
/// early return has a Status-returning function to return from. An
/// armed fault makes one accepted connection fail server-side — the
/// listener and every other session keep working.
Status AcceptCheck() {
  NLQ_FAILPOINT("server_accept");
  return Status::OK();
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

/// True when an admission rejection is worth retrying against this
/// same server: the overload is transient (queue full, queue-wait
/// deadline). Cancelled and draining are not.
bool AdmissionRetryable(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted ||
         status.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace

Server::Server(engine::Database* db, ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      admission_(options_.admission),
      registry_(options_.max_sessions) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + ::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(&listen_fd_);
    return Status::InvalidArgument("bad listen address '" + options_.host +
                                   "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status s = Status::IOError(std::string("bind: ") + ::strerror(errno));
    CloseFd(&listen_fd_);
    return s;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status s = Status::IOError(std::string("listen: ") + ::strerror(errno));
    CloseFd(&listen_fd_);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    Status s = Status::IOError(std::string("getsockname: ") +
                               ::strerror(errno));
    CloseFd(&listen_fd_);
    return s;
  }
  bound_port_ = ntohs(addr.sin_port);

  if (::pipe(wake_pipe_) != 0) {
    Status s = Status::IOError(std::string("pipe: ") + ::strerror(errno));
    CloseFd(&listen_fd_);
    return s;
  }

  started_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  MetricsRegistry& reg = MetricsRegistry::Global();
  for (;;) {
    struct pollfd pfds[2];
    pfds[0] = {listen_fd_, POLLIN, 0};
    pfds[1] = {wake_pipe_[0], POLLIN, 0};
    int rc = ::poll(pfds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((pfds[1].revents & POLLIN) != 0 ||
        draining_.load(std::memory_order_acquire)) {
      break;  // Shutdown woke us
    }
    if ((pfds[0].revents & POLLIN) == 0) continue;

    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      reg.counter("server.accept_failures").Increment();
      continue;  // transient (EMFILE etc.): keep the listener alive
    }
    if (Status accepted = AcceptCheck(); !accepted.ok()) {
      // Injected accept fault: this connection dies, the server does
      // not. The peer sees a clean close before any handshake.
      reg.counter("server.accept_failures").Increment();
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    reg.counter("server.connections_accepted").Increment();

    ReapConnections();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { SessionLoop(raw); });
  }
}

void Server::ReapConnections() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      CloseFd(&(*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::SessionLoop(Connection* conn) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const int fd = conn->fd;

  // Handshake: the first frame must be kHello, within the I/O timeout.
  Opcode opcode;
  std::vector<uint8_t> body;
  std::shared_ptr<SessionState> session;
  Status read = ReadFrame(fd, options_.io_timeout_ms, options_.io_timeout_ms,
                          options_.max_frame_bytes, &opcode, &body);
  bool ok = false;
  if (read.ok() && opcode == Opcode::kHello) {
    WireReader in(body);
    StatusOr<uint32_t> version = in.GetU32();
    if (version.ok() && in.ExpectEnd().ok() &&
        *version == kProtocolVersion) {
      if (draining_.load(std::memory_order_acquire)) {
        WriteError(fd, Status::Unavailable("server is shutting down"),
                   /*retryable=*/false, options_.io_timeout_ms);
      } else if (StatusOr<std::shared_ptr<SessionState>> opened =
                     registry_.Open();
                 !opened.ok()) {
        WriteError(fd, opened.status(), /*retryable=*/true,
                   options_.io_timeout_ms);
      } else {
        session = std::move(opened).value();
        WireWriter out;
        out.PutU64(session->id);
        out.PutU32(kProtocolVersion);
        ok = WriteFrame(fd, Opcode::kHelloOk, out.buffer(),
                        options_.io_timeout_ms)
                 .ok();
      }
    } else {
      WriteError(fd,
                 Status::InvalidArgument("malformed hello or bad protocol "
                                         "version"),
                 /*retryable=*/false, options_.io_timeout_ms);
      reg.counter("server.frames_malformed").Increment();
    }
  } else if (read.ok()) {
    WriteError(fd, Status::InvalidArgument("first frame must be HELLO"),
               /*retryable=*/false, options_.io_timeout_ms);
    reg.counter("server.frames_malformed").Increment();
  } else if (read.code() == StatusCode::kInvalidArgument) {
    // Oversized / zero-length frame: reply, then drop the connection —
    // the stream position is unrecoverable.
    WriteError(fd, read, /*retryable=*/false, options_.io_timeout_ms);
    reg.counter("server.frames_malformed").Increment();
  }

  // Request/reply loop.
  while (ok) {
    const int64_t first_timeout =
        options_.idle_timeout_ms > 0 ? options_.idle_timeout_ms : -1;
    read = ReadFrame(fd, first_timeout, options_.io_timeout_ms,
                     options_.max_frame_bytes, &opcode, &body);
    if (!read.ok()) {
      if (read.code() == StatusCode::kDeadlineExceeded) {
        WriteError(fd, Status::DeadlineExceeded("session idle timeout"),
                   /*retryable=*/false, options_.io_timeout_ms);
        reg.counter("server.idle_timeouts").Increment();
      } else if (read.code() == StatusCode::kInvalidArgument) {
        WriteError(fd, read, /*retryable=*/false, options_.io_timeout_ms);
        reg.counter("server.frames_malformed").Increment();
      }
      // kUnavailable = clean goodbye; kIOError = truncated/refused —
      // either way the stream is done.
      break;
    }
    ok = HandleFrame(conn, session.get(), opcode, body);
  }

  if (session != nullptr) registry_.Close(session->id);
  ::shutdown(fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

bool Server::HandleFrame(Connection* conn, SessionState* session,
                         Opcode opcode, const std::vector<uint8_t>& body) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const int fd = conn->fd;
  WireReader in(body);
  switch (opcode) {
    case Opcode::kQuery:
      return HandleQuery(conn, session, body);

    case Opcode::kCancel: {
      StatusOr<uint64_t> target = in.GetU64();
      if (!target.ok() || !in.ExpectEnd().ok()) break;
      Status cancelled = registry_.CancelSession(*target);
      if (cancelled.ok()) {
        // The target may be waiting in admission: wake it to notice
        // its flipped token.
        admission_.Kick();
        return WriteFrame(fd, Opcode::kOk, {}, options_.io_timeout_ms).ok();
      }
      return WriteError(fd, cancelled, /*retryable=*/false,
                        options_.io_timeout_ms)
          .ok();
    }

    case Opcode::kMetrics: {
      if (!in.ExpectEnd().ok()) break;
      WireWriter out;
      out.PutString(MetricsRegistry::Global().GetSnapshot().ToJson());
      return WriteFrame(fd, Opcode::kMetricsText, out.buffer(),
                        options_.io_timeout_ms)
          .ok();
    }

    case Opcode::kMetricsHistogram: {
      StatusOr<std::string> name = in.GetString();
      if (!name.ok() || !in.ExpectEnd().ok()) break;
      const MetricsSnapshot snap = MetricsRegistry::Global().GetSnapshot();
      auto it = snap.histograms.find(*name);
      if (it == snap.histograms.end()) {
        return WriteError(fd,
                          Status::NotFound("no histogram named '" + *name +
                                           "'"),
                          /*retryable=*/false, options_.io_timeout_ms)
            .ok();
      }
      HistogramSummary summary;
      summary.count = it->second.count;
      summary.sum_nanos = it->second.sum_nanos;
      summary.p50_nanos = it->second.PercentileNanos(0.50);
      summary.p95_nanos = it->second.PercentileNanos(0.95);
      summary.p99_nanos = it->second.PercentileNanos(0.99);
      WireWriter out;
      EncodeHistogramSummary(summary, &out);
      return WriteFrame(fd, Opcode::kHistogramSummary, out.buffer(),
                        options_.io_timeout_ms)
          .ok();
    }

    case Opcode::kPing:
      if (!in.ExpectEnd().ok()) break;
      return WriteFrame(fd, Opcode::kPong, {}, options_.io_timeout_ms).ok();

    case Opcode::kGoodbye:
      WriteFrame(fd, Opcode::kOk, {}, options_.io_timeout_ms);
      return false;

    case Opcode::kSetOptions: {
      StatusOr<int64_t> timeout_ms = in.GetI64();
      StatusOr<int64_t> memory_limit = in.GetI64();
      StatusOr<uint8_t> force_interpreted = in.GetU8();
      if (!timeout_ms.ok() || !memory_limit.ok() ||
          !force_interpreted.ok() || !in.ExpectEnd().ok() ||
          *force_interpreted > 1) {
        break;
      }
      // Only this session's connection thread reads these; no lock.
      session->default_options.timeout_ms = *timeout_ms;
      session->default_options.memory_limit = *memory_limit;
      session->default_options.force_interpreted = *force_interpreted != 0;
      return WriteFrame(fd, Opcode::kOk, {}, options_.io_timeout_ms).ok();
    }

    case Opcode::kHello:
      WriteError(fd, Status::InvalidArgument("duplicate HELLO"),
                 /*retryable=*/false, options_.io_timeout_ms);
      reg.counter("server.frames_malformed").Increment();
      return false;

    default:
      WriteError(fd,
                 Status::InvalidArgument(
                     "unknown opcode " +
                     std::to_string(static_cast<unsigned>(opcode))),
                 /*retryable=*/false, options_.io_timeout_ms);
      reg.counter("server.frames_malformed").Increment();
      return false;
  }
  // Fell out of a case: the body was malformed for that opcode.
  WriteError(fd, Status::ParseError("malformed request body"),
             /*retryable=*/false, options_.io_timeout_ms);
  reg.counter("server.frames_malformed").Increment();
  return false;
}

bool Server::HandleQuery(Connection* conn, SessionState* session,
                         const std::vector<uint8_t>& body) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const int fd = conn->fd;
  WireReader in(body);
  StatusOr<std::string> sql = in.GetString();
  if (!sql.ok() || !in.ExpectEnd().ok()) {
    WriteError(fd, Status::ParseError("malformed QUERY body"),
               /*retryable=*/false, options_.io_timeout_ms);
    reg.counter("server.frames_malformed").Increment();
    return false;
  }
  if (draining_.load(std::memory_order_acquire)) {
    return WriteError(fd, Status::Unavailable("server is shutting down"),
                      /*retryable=*/false, options_.io_timeout_ms)
        .ok();
  }

  // The statement's cancel token exists from before admission until
  // after the reply: cancel-by-session reaches it anywhere in that
  // window (see SessionState::current_cancel).
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  registry_.BeginStatement(session, cancel);

  StatusOr<AdmissionController::Ticket> ticket =
      admission_.Admit(session->id, cancel);
  if (!ticket.ok()) {
    registry_.EndStatement(session);
    return WriteError(fd, ticket.status(),
                      AdmissionRetryable(ticket.status()),
                      options_.io_timeout_ms)
        .ok();
  }

  engine::QueryOptions query_options = session->default_options;
  query_options.cancel_token = cancel;
  StatusOr<engine::ResultSet> result = db_->Execute(*sql, query_options);
  registry_.EndStatement(session);

  // Write the reply BEFORE releasing the ticket: graceful drain
  // (Shutdown's WaitIdle) then covers reply delivery, not just
  // execution.
  bool write_ok;
  if (result.ok()) {
    reg.counter("server.statements_ok").Increment();
    WireWriter out;
    EncodeResultSet(*result, &out);
    write_ok = WriteFrame(fd, Opcode::kResultSet, out.buffer(),
                          options_.io_timeout_ms)
                   .ok();
  } else {
    reg.counter("server.statements_error").Increment();
    // Engine errors are not admission rejections: a per-query budget
    // or timeout failure would hit the same wall on a bare retry.
    write_ok = WriteError(fd, result.status(), /*retryable=*/false,
                          options_.io_timeout_ms)
                   .ok();
  }
  ticket.value().Release();
  return write_ok;
}

void Server::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (!started_.load(std::memory_order_acquire) || shutdown_done_) return;
  shutdown_done_ = true;
  draining_.store(true, std::memory_order_release);

  // 1. Stop accepting: wake the accept loop and join it.
  if (wake_pipe_[1] >= 0) {
    char byte = 1;
    ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
    (void)ignored;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  CloseFd(&listen_fd_);

  // 2. Abort queued waiters; in-flight statements keep running.
  admission_.BeginShutdown();

  // 3. Drain: every admitted statement finishes and its reply is
  // written (tickets release after the write).
  admission_.WaitIdle();

  // 4. Unblock idle session threads out of ReadFrame and join them.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& conn : connections_) {
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (;;) {
    std::unique_ptr<Connection> victim;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (connections_.empty()) break;
      victim = std::move(connections_.back());
      connections_.pop_back();
    }
    if (victim->thread.joinable()) victim->thread.join();
    CloseFd(&victim->fd);
  }

  CloseFd(&wake_pipe_[0]);
  CloseFd(&wake_pipe_[1]);
}

}  // namespace nlq::server
