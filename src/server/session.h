#ifndef NLQ_SERVER_SESSION_H_
#define NLQ_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/database.h"

namespace nlq::server {

/// One connected client's server-side state. The connection thread
/// owns everything except the cancel plumbing, which CancelSession
/// touches from other connections' threads under the registry mutex.
struct SessionState {
  uint64_t id = 0;

  /// Per-session default QueryOptions (kSetOptions overwrites them);
  /// each statement starts from a copy.
  engine::QueryOptions default_options;

  /// Cancel token of the statement this session currently has queued
  /// in admission or executing; null between statements. This is the
  /// layer over the engine's live-query registry: the same token the
  /// session injects via QueryOptions::cancel_token is what
  /// Database::Execute registers in its live-query map, so flipping it
  /// here reaches the statement wherever it is — waiting for
  /// admission, registered but not yet polling, or mid-execution.
  std::shared_ptr<std::atomic<bool>> current_cancel;

  /// A cancel that arrived while no statement was in flight. The
  /// session's next statement consumes it and starts pre-cancelled:
  /// cancel-by-session is "stop what this session is doing or is
  /// about to do", and losing the race to the statement boundary must
  /// not turn the cancel into a no-op.
  bool pending_cancel = false;
};

/// Process-wide table of open sessions: assigns ids, routes
/// cancel-by-session, and enforces the connection cap. Thread-safe;
/// connection threads and the accept loop call concurrently.
class SessionRegistry {
 public:
  explicit SessionRegistry(size_t max_sessions)
      : max_sessions_(max_sessions) {}

  /// Opens a session; kResourceExhausted (retryable) at the cap.
  StatusOr<std::shared_ptr<SessionState>> Open();

  /// Closes `id` (no-op when already closed).
  void Close(uint64_t id);

  /// Cancels session `id`'s current statement, or arms its
  /// pending-cancel flag when none is in flight. NotFound for unknown
  /// ids.
  Status CancelSession(uint64_t id);

  /// Installs `token` as `session`'s current statement token,
  /// consuming a pending cancel by returning it pre-flipped. Call at
  /// statement start, before Admit.
  void BeginStatement(SessionState* session,
                      std::shared_ptr<std::atomic<bool>> token);

  /// Clears the current token at statement end.
  void EndStatement(SessionState* session);

  size_t active_count() const;

 private:
  const size_t max_sessions_;
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, std::shared_ptr<SessionState>> sessions_;
};

}  // namespace nlq::server

#endif  // NLQ_SERVER_SESSION_H_
