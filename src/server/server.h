#ifndef NLQ_SERVER_SERVER_H_
#define NLQ_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "server/admission.h"
#include "server/protocol.h"
#include "server/session.h"

namespace nlq::server {

/// Server configuration.
struct ServerOptions {
  /// Listen address. Tests bind 127.0.0.1 port 0 (ephemeral) and read
  /// the bound port back via Server::port().
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  AdmissionOptions admission;

  /// Concurrent sessions (== connection threads); connections past the
  /// cap are greeted with kResourceExhausted and closed.
  size_t max_sessions = 64;

  /// How long a session may sit idle between requests before the
  /// server closes it (0 = forever).
  int64_t idle_timeout_ms = 60'000;

  /// Bound on every mid-frame read and on each write poll: a peer
  /// that stalls mid-frame or stops draining its receive buffer costs
  /// one session thread for at most this long.
  int64_t io_timeout_ms = 10'000;

  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// The nlq_server front end: a TCP listener speaking the
/// protocol.h frame format, one thread per connection, every statement
/// gated through the AdmissionController before it reaches the shared
/// embedded Database. See DESIGN.md section 14.
///
/// Lifecycle: construct → Start() → ... → Shutdown() (or destruction,
/// which calls Shutdown). Shutdown is graceful:
///   1. stop accepting connections and refuse new statements
///      (kUnavailable),
///   2. abort queued admission waiters (kUnavailable),
///   3. wait until every in-flight statement's reply is fully written
///      (tickets release after the reply),
///   4. shut down session sockets and join connection threads.
/// A SIGTERM handler calling Shutdown gives the acceptance property:
/// drain, then exit 0.
class Server {
 public:
  Server(engine::Database* db, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept thread.
  Status Start();

  /// The bound port (useful with port 0). Valid after Start.
  uint16_t port() const { return bound_port_; }

  /// Graceful drain; idempotent, safe from a signal-handling thread
  /// (not from a signal handler itself — it blocks).
  void Shutdown();

  AdmissionController& admission() { return admission_; }
  SessionRegistry& sessions() { return registry_; }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void SessionLoop(Connection* conn);

  /// Handles one request frame; false = close the connection. Owns
  /// the reply for every outcome.
  bool HandleFrame(Connection* conn, SessionState* session, Opcode opcode,
                   const std::vector<uint8_t>& body);
  bool HandleQuery(Connection* conn, SessionState* session,
                   const std::vector<uint8_t>& body);

  /// Joins and erases finished connection threads.
  void ReapConnections();

  engine::Database* const db_;
  const ServerOptions options_;
  AdmissionController admission_;
  SessionRegistry registry_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t bound_port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};

  /// Serializes Shutdown callers (destructor vs signal thread).
  std::mutex shutdown_mu_;
  bool shutdown_done_ = false;

  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace nlq::server

#endif  // NLQ_SERVER_SERVER_H_
