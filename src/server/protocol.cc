#include "server/protocol.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/failpoint.h"

namespace nlq::server {

void WireWriter::PutU32(uint32_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
  buf_.push_back(static_cast<uint8_t>(v >> 16));
  buf_.push_back(static_cast<uint8_t>(v >> 24));
}

void WireWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void WireWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

StatusOr<uint8_t> WireReader::GetU8() {
  if (pos_ + 1 > size_) return Status::ParseError("frame body truncated (u8)");
  return data_[pos_++];
}

StatusOr<uint32_t> WireReader::GetU32() {
  if (pos_ + 4 > size_) return Status::ParseError("frame body truncated (u32)");
  uint32_t v = static_cast<uint32_t>(data_[pos_]) |
               static_cast<uint32_t>(data_[pos_ + 1]) << 8 |
               static_cast<uint32_t>(data_[pos_ + 2]) << 16 |
               static_cast<uint32_t>(data_[pos_ + 3]) << 24;
  pos_ += 4;
  return v;
}

StatusOr<uint64_t> WireReader::GetU64() {
  NLQ_ASSIGN_OR_RETURN(uint32_t lo, GetU32());
  NLQ_ASSIGN_OR_RETURN(uint32_t hi, GetU32());
  return static_cast<uint64_t>(lo) | static_cast<uint64_t>(hi) << 32;
}

StatusOr<int64_t> WireReader::GetI64() {
  NLQ_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

StatusOr<double> WireReader::GetDouble() {
  NLQ_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

StatusOr<std::string> WireReader::GetString() {
  NLQ_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (len > remaining()) {
    return Status::ParseError("string length exceeds frame body");
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

Status WireReader::ExpectEnd() const {
  if (pos_ != size_) {
    return Status::ParseError("trailing bytes after frame body");
  }
  return Status::OK();
}

void EncodeResultSet(const engine::ResultSet& rs, WireWriter* out) {
  const storage::Schema& schema = rs.schema();
  out->PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (const storage::Column& col : schema.columns()) {
    out->PutString(col.name);
    out->PutU8(static_cast<uint8_t>(col.type));
  }
  out->PutU64(rs.num_rows());
  for (const storage::Row& row : rs.rows()) {
    for (const storage::Datum& v : row) {
      out->PutU8(static_cast<uint8_t>(v.type()));
      out->PutU8(v.is_null() ? 1 : 0);
      if (v.is_null()) continue;
      switch (v.type()) {
        case storage::DataType::kDouble:
          out->PutDouble(v.double_value());
          break;
        case storage::DataType::kInt64:
          out->PutI64(v.int_value());
          break;
        case storage::DataType::kVarchar:
          out->PutString(v.string_value());
          break;
      }
    }
  }
}

namespace {

StatusOr<storage::DataType> DecodeType(uint8_t raw) {
  switch (raw) {
    case 0:
      return storage::DataType::kDouble;
    case 1:
      return storage::DataType::kInt64;
    case 2:
      return storage::DataType::kVarchar;
    default:
      return Status::ParseError("unknown data type tag");
  }
}

}  // namespace

StatusOr<engine::ResultSet> DecodeResultSet(WireReader* in) {
  NLQ_ASSIGN_OR_RETURN(uint32_t num_cols, in->GetU32());
  // Each column costs at least 5 bytes (empty name + type tag): a
  // count the remaining body cannot hold is a length lie.
  if (static_cast<uint64_t>(num_cols) * 5 > in->remaining()) {
    return Status::ParseError("column count exceeds frame body");
  }
  std::vector<storage::Column> cols;
  cols.reserve(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    NLQ_ASSIGN_OR_RETURN(std::string name, in->GetString());
    NLQ_ASSIGN_OR_RETURN(uint8_t raw_type, in->GetU8());
    NLQ_ASSIGN_OR_RETURN(storage::DataType type, DecodeType(raw_type));
    cols.push_back({std::move(name), type});
  }
  NLQ_ASSIGN_OR_RETURN(uint64_t num_rows, in->GetU64());
  // Each datum costs at least 2 bytes (type + null flag).
  if (num_cols > 0 && num_rows * num_cols * 2 > in->remaining()) {
    return Status::ParseError("row count exceeds frame body");
  }
  if (num_cols == 0 && num_rows > 0) {
    return Status::ParseError("rows without columns");
  }
  std::vector<storage::Row> rows;
  rows.reserve(num_rows);
  for (uint64_t r = 0; r < num_rows; ++r) {
    storage::Row row;
    row.reserve(num_cols);
    for (uint32_t c = 0; c < num_cols; ++c) {
      NLQ_ASSIGN_OR_RETURN(uint8_t raw_type, in->GetU8());
      NLQ_ASSIGN_OR_RETURN(storage::DataType type, DecodeType(raw_type));
      NLQ_ASSIGN_OR_RETURN(uint8_t is_null, in->GetU8());
      if (is_null > 1) return Status::ParseError("bad null flag");
      if (is_null != 0) {
        row.push_back(storage::Datum::Null(type));
        continue;
      }
      switch (type) {
        case storage::DataType::kDouble: {
          NLQ_ASSIGN_OR_RETURN(double v, in->GetDouble());
          row.push_back(storage::Datum::Double(v));
          break;
        }
        case storage::DataType::kInt64: {
          NLQ_ASSIGN_OR_RETURN(int64_t v, in->GetI64());
          row.push_back(storage::Datum::Int64(v));
          break;
        }
        case storage::DataType::kVarchar: {
          NLQ_ASSIGN_OR_RETURN(std::string v, in->GetString());
          row.push_back(storage::Datum::Varchar(std::move(v)));
          break;
        }
      }
    }
    rows.push_back(std::move(row));
  }
  NLQ_RETURN_IF_ERROR(in->ExpectEnd());
  return engine::ResultSet(storage::Schema(std::move(cols)), std::move(rows));
}

void EncodeError(const Status& status, bool retryable, WireWriter* out) {
  out->PutU8(static_cast<uint8_t>(status.code()));
  out->PutU8(retryable ? 1 : 0);
  out->PutString(status.message());
}

StatusOr<WireError> DecodeError(WireReader* in) {
  NLQ_ASSIGN_OR_RETURN(uint8_t raw_code, in->GetU8());
  if (raw_code == 0 || raw_code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::ParseError("unknown status code in error frame");
  }
  NLQ_ASSIGN_OR_RETURN(uint8_t retryable, in->GetU8());
  NLQ_ASSIGN_OR_RETURN(std::string msg, in->GetString());
  NLQ_RETURN_IF_ERROR(in->ExpectEnd());
  WireError err;
  err.status = Status(static_cast<StatusCode>(raw_code), std::move(msg));
  err.retryable = retryable != 0;
  return err;
}

void EncodeHistogramSummary(const HistogramSummary& summary, WireWriter* out) {
  out->PutU64(summary.count);
  out->PutU64(summary.sum_nanos);
  out->PutU64(summary.p50_nanos);
  out->PutU64(summary.p95_nanos);
  out->PutU64(summary.p99_nanos);
}

StatusOr<HistogramSummary> DecodeHistogramSummary(WireReader* in) {
  HistogramSummary summary;
  NLQ_ASSIGN_OR_RETURN(summary.count, in->GetU64());
  NLQ_ASSIGN_OR_RETURN(summary.sum_nanos, in->GetU64());
  NLQ_ASSIGN_OR_RETURN(summary.p50_nanos, in->GetU64());
  NLQ_ASSIGN_OR_RETURN(summary.p95_nanos, in->GetU64());
  NLQ_ASSIGN_OR_RETURN(summary.p99_nanos, in->GetU64());
  NLQ_RETURN_IF_ERROR(in->ExpectEnd());
  return summary;
}

namespace {

/// Polls `fd` for `events` up to `timeout_ms` (-1 = forever). OK when
/// ready, kDeadlineExceeded on timeout, kIOError on poll failure.
Status PollFor(int fd, short events, int64_t timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  int timeout = timeout_ms < 0 ? -1
                               : static_cast<int>(timeout_ms > INT32_MAX
                                                      ? INT32_MAX
                                                      : timeout_ms);
  for (;;) {
    int rc = ::poll(&pfd, 1, timeout);
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::DeadlineExceeded("socket poll timed out");
    if (errno == EINTR) continue;
    return Status::IOError(std::string("poll: ") + ::strerror(errno));
  }
}

/// Reads exactly `len` bytes. `first_timeout_ms` bounds the wait for
/// the first byte; `io_timeout_ms` bounds every subsequent wait.
/// kUnavailable = clean EOF before the first byte (only when
/// `eof_ok`); kIOError = EOF/error mid-read.
Status ReadExact(int fd, uint8_t* dst, size_t len, int64_t first_timeout_ms,
                 int64_t io_timeout_ms, bool eof_ok) {
  size_t done = 0;
  while (done < len) {
    NLQ_RETURN_IF_ERROR(
        PollFor(fd, POLLIN, done == 0 ? first_timeout_ms : io_timeout_ms));
    ssize_t n = ::read(fd, dst + done, len - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      if (done == 0 && eof_ok) {
        return Status::Unavailable("connection closed");
      }
      return Status::IOError("connection closed mid-frame");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::IOError(std::string("read: ") + ::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Status ReadFrame(int fd, int64_t timeout_ms, int64_t io_timeout_ms,
                 uint32_t max_frame_bytes, Opcode* opcode,
                 std::vector<uint8_t>* body) {
  NLQ_FAILPOINT("server_read");
  uint8_t header[4];
  NLQ_RETURN_IF_ERROR(ReadExact(fd, header, sizeof(header), timeout_ms,
                                io_timeout_ms, /*eof_ok=*/true));
  uint32_t frame_len = static_cast<uint32_t>(header[0]) |
                       static_cast<uint32_t>(header[1]) << 8 |
                       static_cast<uint32_t>(header[2]) << 16 |
                       static_cast<uint32_t>(header[3]) << 24;
  if (frame_len == 0) {
    return Status::InvalidArgument("zero-length frame");
  }
  if (frame_len > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame of " + std::to_string(frame_len) + " bytes exceeds limit of " +
        std::to_string(max_frame_bytes));
  }
  uint8_t op;
  NLQ_RETURN_IF_ERROR(ReadExact(fd, &op, 1, io_timeout_ms, io_timeout_ms,
                                /*eof_ok=*/false));
  *opcode = static_cast<Opcode>(op);
  body->resize(frame_len - 1);
  if (!body->empty()) {
    NLQ_RETURN_IF_ERROR(ReadExact(fd, body->data(), body->size(),
                                  io_timeout_ms, io_timeout_ms,
                                  /*eof_ok=*/false));
  }
  return Status::OK();
}

Status WriteFrame(int fd, Opcode opcode, const std::vector<uint8_t>& body,
                  int64_t timeout_ms) {
  NLQ_FAILPOINT("server_write");
  if (body.size() + 1 > UINT32_MAX) {
    return Status::InvalidArgument("frame body too large");
  }
  const uint32_t frame_len = static_cast<uint32_t>(body.size() + 1);
  std::vector<uint8_t> frame;
  frame.reserve(4 + frame_len);
  frame.push_back(static_cast<uint8_t>(frame_len));
  frame.push_back(static_cast<uint8_t>(frame_len >> 8));
  frame.push_back(static_cast<uint8_t>(frame_len >> 16));
  frame.push_back(static_cast<uint8_t>(frame_len >> 24));
  frame.push_back(static_cast<uint8_t>(opcode));
  frame.insert(frame.end(), body.begin(), body.end());

  size_t done = 0;
  while (done < frame.size()) {
    NLQ_RETURN_IF_ERROR(PollFor(fd, POLLOUT, timeout_ms));
    // MSG_NOSIGNAL: a peer that closed mid-write yields EPIPE, not a
    // process-killing SIGPIPE — neither the server nor client library
    // requires the embedding process to install a SIGPIPE handler.
    ssize_t n = ::send(fd, frame.data() + done, frame.size() - done,
                       MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 &&
        (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    return Status::IOError(std::string("write: ") +
                           (n < 0 ? ::strerror(errno) : "zero-byte write"));
  }
  return Status::OK();
}

Status WriteError(int fd, const Status& status, bool retryable,
                  int64_t timeout_ms) {
  WireWriter body;
  EncodeError(status, retryable, &body);
  return WriteFrame(fd, Opcode::kError, body.buffer(), timeout_ms);
}

}  // namespace nlq::server
