#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace nlq::server {

Status NlqClient::Connect(const std::string& host, uint16_t port,
                          int64_t timeout_ms) {
  if (fd_ >= 0) return Status::AlreadyExists("client already connected");
  timeout_ms_ = timeout_ms;

  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IOError(std::string("socket: ") + ::strerror(errno));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad server address '" + host + "'");
  }
  // Bounded connect: non-blocking + poll, then back to blocking.
  int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    struct pollfd pfd = {fd_, POLLOUT, 0};
    int ready = ::poll(&pfd, 1,
                       timeout_ms < 0 ? -1 : static_cast<int>(timeout_ms));
    if (ready <= 0) {
      Close();
      return ready == 0
                 ? Status::DeadlineExceeded("connect timed out")
                 : Status::IOError(std::string("poll: ") + ::strerror(errno));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      Close();
      return Status::IOError(std::string("connect: ") + ::strerror(err));
    }
  } else if (rc != 0) {
    Status s = Status::IOError(std::string("connect: ") + ::strerror(errno));
    Close();
    return s;
  }
  ::fcntl(fd_, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  WireWriter hello;
  hello.PutU32(kProtocolVersion);
  Opcode reply_opcode;
  std::vector<uint8_t> reply_body;
  Status handshake =
      RoundTrip(Opcode::kHello, hello.buffer(), &reply_opcode, &reply_body);
  if (!handshake.ok()) {
    Close();
    return handshake;
  }
  if (reply_opcode != Opcode::kHelloOk) {
    Close();
    return Status::ParseError("unexpected handshake reply opcode");
  }
  WireReader in(reply_body);
  NLQ_ASSIGN_OR_RETURN(session_id_, in.GetU64());
  NLQ_ASSIGN_OR_RETURN(uint32_t version, in.GetU32());
  NLQ_RETURN_IF_ERROR(in.ExpectEnd());
  if (version != kProtocolVersion) {
    Close();
    return Status::NotSupported("server speaks protocol version " +
                                std::to_string(version));
  }
  return Status::OK();
}

Status NlqClient::RoundTrip(Opcode opcode, const std::vector<uint8_t>& body,
                            Opcode* reply_opcode,
                            std::vector<uint8_t>* reply_body) {
  if (fd_ < 0) return Status::IOError("client is not connected");
  last_error_retryable_ = false;
  NLQ_RETURN_IF_ERROR(WriteFrame(fd_, opcode, body, timeout_ms_));
  Status read = ReadFrame(fd_, timeout_ms_, timeout_ms_,
                          kDefaultMaxFrameBytes, reply_opcode, reply_body);
  if (!read.ok()) {
    // A dead server mid-reply poisons the stream; drop the socket so
    // the caller cannot misread a later frame as this reply.
    Close();
    return read;
  }
  if (*reply_opcode == Opcode::kError) {
    WireReader in(*reply_body);
    NLQ_ASSIGN_OR_RETURN(WireError err, DecodeError(&in));
    last_error_retryable_ = err.retryable;
    return err.status;
  }
  return Status::OK();
}

StatusOr<engine::ResultSet> NlqClient::Query(const std::string& sql) {
  WireWriter out;
  out.PutString(sql);
  Opcode reply_opcode;
  std::vector<uint8_t> reply_body;
  NLQ_RETURN_IF_ERROR(
      RoundTrip(Opcode::kQuery, out.buffer(), &reply_opcode, &reply_body));
  if (reply_opcode != Opcode::kResultSet) {
    return Status::ParseError("unexpected reply opcode to QUERY");
  }
  WireReader in(reply_body);
  return DecodeResultSet(&in);
}

Status NlqClient::Cancel(uint64_t target_session) {
  WireWriter out;
  out.PutU64(target_session);
  Opcode reply_opcode;
  std::vector<uint8_t> reply_body;
  NLQ_RETURN_IF_ERROR(
      RoundTrip(Opcode::kCancel, out.buffer(), &reply_opcode, &reply_body));
  if (reply_opcode != Opcode::kOk) {
    return Status::ParseError("unexpected reply opcode to CANCEL");
  }
  return Status::OK();
}

StatusOr<std::string> NlqClient::Metrics() {
  Opcode reply_opcode;
  std::vector<uint8_t> reply_body;
  NLQ_RETURN_IF_ERROR(
      RoundTrip(Opcode::kMetrics, {}, &reply_opcode, &reply_body));
  if (reply_opcode != Opcode::kMetricsText) {
    return Status::ParseError("unexpected reply opcode to METRICS");
  }
  WireReader in(reply_body);
  NLQ_ASSIGN_OR_RETURN(std::string json, in.GetString());
  NLQ_RETURN_IF_ERROR(in.ExpectEnd());
  return json;
}

StatusOr<HistogramSummary> NlqClient::MetricsHistogram(
    const std::string& name) {
  WireWriter out;
  out.PutString(name);
  Opcode reply_opcode;
  std::vector<uint8_t> reply_body;
  NLQ_RETURN_IF_ERROR(RoundTrip(Opcode::kMetricsHistogram, out.buffer(),
                                &reply_opcode, &reply_body));
  if (reply_opcode != Opcode::kHistogramSummary) {
    return Status::ParseError("unexpected reply opcode to METRICS_HISTOGRAM");
  }
  WireReader in(reply_body);
  return DecodeHistogramSummary(&in);
}

Status NlqClient::Ping() {
  Opcode reply_opcode;
  std::vector<uint8_t> reply_body;
  NLQ_RETURN_IF_ERROR(
      RoundTrip(Opcode::kPing, {}, &reply_opcode, &reply_body));
  if (reply_opcode != Opcode::kPong) {
    return Status::ParseError("unexpected reply opcode to PING");
  }
  return Status::OK();
}

Status NlqClient::SetOptions(int64_t timeout_ms, int64_t memory_limit,
                             bool force_interpreted) {
  WireWriter out;
  out.PutI64(timeout_ms);
  out.PutI64(memory_limit);
  out.PutU8(force_interpreted ? 1 : 0);
  Opcode reply_opcode;
  std::vector<uint8_t> reply_body;
  NLQ_RETURN_IF_ERROR(RoundTrip(Opcode::kSetOptions, out.buffer(),
                                &reply_opcode, &reply_body));
  if (reply_opcode != Opcode::kOk) {
    return Status::ParseError("unexpected reply opcode to SET_OPTIONS");
  }
  return Status::OK();
}

Status NlqClient::Goodbye() {
  Opcode reply_opcode;
  std::vector<uint8_t> reply_body;
  Status s = RoundTrip(Opcode::kGoodbye, {}, &reply_opcode, &reply_body);
  Close();
  return s;
}

void NlqClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  session_id_ = 0;
}

}  // namespace nlq::server
