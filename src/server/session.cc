#include "server/session.h"

#include "common/metrics.h"

namespace nlq::server {

StatusOr<std::shared_ptr<SessionState>> SessionRegistry::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.size() >= max_sessions_) {
    return Status::ResourceExhausted(
        "session limit of " + std::to_string(max_sessions_) + " reached");
  }
  auto session = std::make_shared<SessionState>();
  session->id = next_id_++;
  sessions_[session->id] = session;
  MetricsRegistry::Global().gauge("server.sessions").Set(
      static_cast<int64_t>(sessions_.size()));
  MetricsRegistry::Global().counter("server.sessions_opened").Increment();
  return session;
}

void SessionRegistry::Close(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(id);
  MetricsRegistry::Global().gauge("server.sessions").Set(
      static_cast<int64_t>(sessions_.size()));
}

Status SessionRegistry::CancelSession(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session with id " + std::to_string(id));
  }
  SessionState& session = *it->second;
  if (session.current_cancel != nullptr) {
    session.current_cancel->store(true, std::memory_order_release);
  } else {
    session.pending_cancel = true;
  }
  MetricsRegistry::Global().counter("server.cancels").Increment();
  return Status::OK();
}

void SessionRegistry::BeginStatement(
    SessionState* session, std::shared_ptr<std::atomic<bool>> token) {
  std::lock_guard<std::mutex> lock(mu_);
  if (session->pending_cancel) {
    session->pending_cancel = false;
    token->store(true, std::memory_order_release);
  }
  session->current_cancel = std::move(token);
}

void SessionRegistry::EndStatement(SessionState* session) {
  std::lock_guard<std::mutex> lock(mu_);
  session->current_cancel = nullptr;
}

size_t SessionRegistry::active_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace nlq::server
