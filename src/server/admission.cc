#include "server/admission.h"

#include <chrono>

#include "common/metrics.h"

namespace nlq::server {

namespace {

struct AdmissionMetrics {
  ShardedCounter& admitted;
  ShardedCounter& rejected_queue;
  ShardedCounter& rejected_timeout;
  ShardedCounter& rejected_cancelled;
  ShardedCounter& rejected_shutdown;
  Gauge& in_flight;
  Gauge& queue_depth;
  Histogram& queue_wait;

  static AdmissionMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static AdmissionMetrics m{
        reg.counter("server.admission.admitted"),
        reg.counter("server.admission.rejected_queue"),
        reg.counter("server.admission.rejected_timeout"),
        reg.counter("server.admission.rejected_cancelled"),
        reg.counter("server.admission.rejected_shutdown"),
        reg.gauge("server.statements_in_flight"),
        reg.gauge("server.queue_depth"),
        reg.histogram("server.queue_wait"),
    };
    return m;
  }
};

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options), global_memory_(options.global_memory_limit) {}

AdmissionController::~AdmissionController() {
  BeginShutdown();
  WaitIdle();
}

AdmissionController::Ticket& AdmissionController::Ticket::operator=(
    Ticket&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = other.controller_;
    session_id_ = other.session_id_;
    other.controller_ = nullptr;
  }
  return *this;
}

void AdmissionController::Ticket::Release() {
  if (controller_ == nullptr) return;
  controller_->ReleaseTicket(session_id_);
  controller_ = nullptr;
}

StatusOr<AdmissionController::Ticket> AdmissionController::Admit(
    uint64_t session_id, std::shared_ptr<std::atomic<bool>> cancel) {
  AdmissionMetrics& metrics = AdmissionMetrics::Get();
  const auto enqueued_at = std::chrono::steady_clock::now();
  auto observe_wait = [&metrics, enqueued_at] {
    metrics.queue_wait.Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - enqueued_at)
            .count()));
  };

  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    metrics.rejected_shutdown.Increment();
    return Status::Unavailable("server is shutting down");
  }
  if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
    metrics.rejected_cancelled.Increment();
    return Status::Cancelled("statement cancelled before admission");
  }

  // Fast path: nobody queued ahead and a free slot whose reservation
  // fits — anything else would let this statement overtake the FIFO.
  if (queue_.empty() && in_flight_ < options_.max_concurrent_statements &&
      (options_.per_statement_reserve_bytes == 0 ||
       global_memory_.TryCharge(options_.per_statement_reserve_bytes))) {
    ++in_flight_;
    metrics.in_flight.Set(static_cast<int64_t>(in_flight_));
    metrics.admitted.Increment();
    observe_wait();
    return Ticket(this, session_id);
  }

  // Queue caps reject instantly: an overloaded server answers "try
  // again" in microseconds rather than making the client discover the
  // overload by timeout.
  if (queue_.size() >= options_.max_queue_depth) {
    metrics.rejected_queue.Increment();
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(options_.max_queue_depth) +
        " waiting)");
  }
  {
    auto it = queued_per_session_.find(session_id);
    if (it != queued_per_session_.end() &&
        it->second >= options_.max_queued_per_session) {
      metrics.rejected_queue.Increment();
      return Status::ResourceExhausted(
          "session has " + std::to_string(it->second) +
          " statements queued (per-session cap)");
    }
  }

  Waiter waiter;
  waiter.session_id = session_id;
  queue_.push_back(&waiter);
  ++queued_per_session_[session_id];
  metrics.queue_depth.Set(static_cast<int64_t>(queue_.size()));
  GrantLocked();  // a slot may already be free (queue was just empty
                  // of eligible heads, or memory just fit)

  // Removes a still-queued waiter on every non-granted exit. Granted
  // waiters were already removed by GrantLocked.
  auto unqueue = [this, &waiter] {
    queue_.remove(&waiter);
    auto it = queued_per_session_.find(waiter.session_id);
    if (it != queued_per_session_.end() && --it->second == 0) {
      queued_per_session_.erase(it);
    }
    AdmissionMetrics::Get().queue_depth.Set(
        static_cast<int64_t>(queue_.size()));
    cv_.notify_all();  // WaitIdle watches queue_.empty()
  };

  const bool bounded_wait = options_.max_queue_wait_ms > 0;
  const auto deadline =
      enqueued_at + std::chrono::milliseconds(options_.max_queue_wait_ms);
  for (;;) {
    if (waiter.granted) {
      metrics.admitted.Increment();
      observe_wait();
      return Ticket(this, session_id);
    }
    if (waiter.aborted) {
      unqueue();
      metrics.rejected_shutdown.Increment();
      return Status::Unavailable("server is shutting down");
    }
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
      unqueue();
      GrantLocked();  // the vacated head may unblock the next waiter
      metrics.rejected_cancelled.Increment();
      return Status::Cancelled("statement cancelled while queued");
    }
    if (bounded_wait && std::chrono::steady_clock::now() >= deadline) {
      unqueue();
      GrantLocked();
      metrics.rejected_timeout.Increment();
      return Status::DeadlineExceeded(
          "statement waited " + std::to_string(options_.max_queue_wait_ms) +
          " ms for an execution slot");
    }
    if (bounded_wait) {
      cv_.wait_until(lock, deadline);
    } else {
      cv_.wait(lock);
    }
  }
}

void AdmissionController::GrantLocked() {
  // Strict FIFO: only the head is eligible. If its memory reservation
  // does not fit, later waiters wait too — that is the fairness
  // guarantee (no small statement overtakes a big one forever).
  bool granted_any = false;
  while (!queue_.empty() && in_flight_ < options_.max_concurrent_statements) {
    Waiter* head = queue_.front();
    if (options_.per_statement_reserve_bytes != 0 &&
        !global_memory_.TryCharge(options_.per_statement_reserve_bytes)) {
      break;
    }
    ++in_flight_;
    head->granted = true;
    queue_.pop_front();
    auto it = queued_per_session_.find(head->session_id);
    if (it != queued_per_session_.end() && --it->second == 0) {
      queued_per_session_.erase(it);
    }
    granted_any = true;
  }
  AdmissionMetrics& metrics = AdmissionMetrics::Get();
  metrics.in_flight.Set(static_cast<int64_t>(in_flight_));
  metrics.queue_depth.Set(static_cast<int64_t>(queue_.size()));
  if (granted_any) cv_.notify_all();
}

void AdmissionController::ReleaseTicket(uint64_t /*session_id*/) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.per_statement_reserve_bytes != 0) {
    global_memory_.Release(options_.per_statement_reserve_bytes);
  }
  --in_flight_;
  AdmissionMetrics::Get().in_flight.Set(static_cast<int64_t>(in_flight_));
  GrantLocked();
  cv_.notify_all();  // WaitIdle watches in_flight_
}

void AdmissionController::Kick() {
  std::lock_guard<std::mutex> lock(mu_);
  cv_.notify_all();
}

void AdmissionController::BeginShutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  for (Waiter* w : queue_) w->aborted = true;
  cv_.notify_all();
}

void AdmissionController::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return in_flight_ == 0 && queue_.empty(); });
}

size_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

size_t AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace nlq::server
