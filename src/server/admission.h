#ifndef NLQ_SERVER_ADMISSION_H_
#define NLQ_SERVER_ADMISSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/memory_tracker.h"
#include "common/status.h"

namespace nlq::server {

/// Knobs bounding concurrent statement execution across all sessions.
struct AdmissionOptions {
  /// Statements executing at once; queued beyond this.
  size_t max_concurrent_statements = 4;

  /// Waiters queued across all sessions; overflow rejects immediately
  /// with kResourceExhausted (retryable).
  size_t max_queue_depth = 64;

  /// Waiters one session may have queued — with request/reply framing
  /// this is at most 1 per connection, but the cap keeps a burst of
  /// connections from one client from monopolizing the queue.
  size_t max_queued_per_session = 8;

  /// Longest a statement waits for a slot before rejecting with
  /// kDeadlineExceeded (retryable); 0 = wait forever.
  int64_t max_queue_wait_ms = 30'000;

  /// Global execution-memory cap shared by every admitted statement;
  /// 0 = unlimited. Composes with the per-query budget: admission
  /// reserves `per_statement_reserve_bytes` here at grant time, and
  /// the statement's own MemoryTracker bounds what it actually uses.
  uint64_t global_memory_limit = 0;

  /// Bytes reserved against the global cap per admitted statement
  /// (the per-query budget it will run under). A reservation that
  /// does not fit keeps the statement queued until memory frees.
  uint64_t per_statement_reserve_bytes = 64ull << 20;
};

/// Gates statement execution: at most `max_concurrent_statements` run
/// at once, overflow waits in a fair FIFO queue (strict arrival order
/// — the head waiter blocks on memory too, so no later statement can
/// starve it), and each admitted statement holds a reservation against
/// the global memory cap until its Ticket is released.
///
/// Rejections are always clean Status errors, never blocking forever:
///   kResourceExhausted  queue full / session queue cap (retryable)
///   kDeadlineExceeded   queue-wait deadline expired (retryable)
///   kCancelled          the statement's cancel token flipped while
///                       queued
///   kUnavailable        the server is draining
///
/// Shutdown protocol: BeginShutdown() rejects new Admit calls and
/// aborts queued waiters with kUnavailable while in-flight statements
/// keep their slots; WaitIdle() then blocks until every Ticket is
/// released — callers release tickets only after writing the reply, so
/// a drained server has delivered every admitted statement's result.
///
/// Thread-safe. Metrics: server.admission.{admitted,rejected_queue,
/// rejected_timeout,rejected_cancelled,rejected_shutdown} counters,
/// server.statements_in_flight / server.queue_depth gauges, and the
/// server.queue_wait latency histogram.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// An admitted statement's slot + memory reservation; RAII release.
  /// Movable so Admit can return it through StatusOr.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    /// Frees the slot and memory reservation (idempotent). Call after
    /// the statement's reply is fully written so WaitIdle covers reply
    /// delivery.
    void Release();
    bool valid() const { return controller_ != nullptr; }

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* controller, uint64_t session_id)
        : controller_(controller), session_id_(session_id) {}
    AdmissionController* controller_ = nullptr;
    uint64_t session_id_ = 0;
  };

  /// Blocks until a slot and memory reservation are granted, then
  /// returns the Ticket. `cancel` (may be null) aborts the wait with
  /// kCancelled when flipped — flip it and call Kick() from another
  /// thread.
  StatusOr<Ticket> Admit(uint64_t session_id,
                         std::shared_ptr<std::atomic<bool>> cancel);

  /// Wakes every queued waiter to re-check its cancel token; call
  /// after flipping one.
  void Kick();

  /// Rejects new admissions and aborts queued waiters (kUnavailable);
  /// in-flight statements are unaffected.
  void BeginShutdown();

  /// Blocks until no statement holds a ticket. Meaningful after
  /// BeginShutdown (otherwise new statements may keep arriving).
  void WaitIdle();

  const AdmissionOptions& options() const { return options_; }
  /// The global execution-memory accountant statements reserve from.
  MemoryTracker& global_memory() { return global_memory_; }

  size_t in_flight() const;
  size_t queue_depth() const;

 private:
  struct Waiter {
    uint64_t session_id = 0;
    bool granted = false;
    bool aborted = false;  // shutdown
  };

  /// Grants queue-head waiters while slots and memory allow. Caller
  /// holds mu_.
  void GrantLocked();
  void ReleaseTicket(uint64_t session_id);

  const AdmissionOptions options_;
  MemoryTracker global_memory_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::list<Waiter*> queue_;
  std::unordered_map<uint64_t, size_t> queued_per_session_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace nlq::server

#endif  // NLQ_SERVER_ADMISSION_H_
