#ifndef NLQ_SERVER_CLIENT_H_
#define NLQ_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "engine/result_set.h"
#include "server/protocol.h"

namespace nlq::server {

/// Client-side connection to an nlq_server: one TCP socket, strict
/// request/reply. NOT thread-safe — one NlqClient per thread (the
/// multi-threaded driver opens one per worker).
///
/// Error statuses from Query are exactly what the server sent: an
/// admission rejection arrives as kResourceExhausted or
/// kDeadlineExceeded with last_error_retryable() true — back off and
/// retry; an engine error (including per-query budget exhaustion,
/// which is also kResourceExhausted) arrives with the flag false.
class NlqClient {
 public:
  NlqClient() = default;
  ~NlqClient() { Close(); }

  NlqClient(const NlqClient&) = delete;
  NlqClient& operator=(const NlqClient&) = delete;

  /// Connects and performs the HELLO handshake. `timeout_ms` bounds
  /// the connect and every subsequent per-frame wait.
  Status Connect(const std::string& host, uint16_t port,
                 int64_t timeout_ms = 10'000);

  /// Session id assigned by the server (valid after Connect); another
  /// client's Cancel can target it.
  uint64_t session_id() const { return session_id_; }
  bool connected() const { return fd_ >= 0; }

  /// Executes one statement and returns its rows. Results are
  /// bit-identical to embedded execution (doubles travel as raw bit
  /// patterns).
  StatusOr<engine::ResultSet> Query(const std::string& sql);

  /// Whether the most recent error reply was flagged retryable.
  bool last_error_retryable() const { return last_error_retryable_; }

  /// Cancels `target_session`'s current (or next) statement.
  Status Cancel(uint64_t target_session);

  /// Fetches the server's metrics snapshot JSON.
  StatusOr<std::string> Metrics();

  /// Fetches one named server histogram summarized server-side:
  /// count, sum and p50/p95/p99 computed by the registry's percentile
  /// extraction (kNotFound if no such histogram is registered yet).
  StatusOr<HistogramSummary> MetricsHistogram(const std::string& name);

  Status Ping();

  /// Sets this session's default QueryOptions (see
  /// engine::QueryOptions for the -1/0 conventions).
  Status SetOptions(int64_t timeout_ms, int64_t memory_limit,
                    bool force_interpreted);

  /// Polite goodbye + close; Close() alone just drops the socket.
  Status Goodbye();
  void Close();

 private:
  /// Sends `body` under `opcode`, reads one reply frame, decodes
  /// kError replies into their carried Status.
  Status RoundTrip(Opcode opcode, const std::vector<uint8_t>& body,
                   Opcode* reply_opcode, std::vector<uint8_t>* reply_body);

  int fd_ = -1;
  uint64_t session_id_ = 0;
  int64_t timeout_ms_ = 10'000;
  bool last_error_retryable_ = false;
};

}  // namespace nlq::server

#endif  // NLQ_SERVER_CLIENT_H_
