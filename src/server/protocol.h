#ifndef NLQ_SERVER_PROTOCOL_H_
#define NLQ_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/result_set.h"

namespace nlq::server {

/// The nlq wire protocol: length-prefixed binary frames over a byte
/// stream (TCP). Every frame is
///
///   [u32 LE frame_len][u8 opcode][frame_len - 1 bytes of body]
///
/// where frame_len counts the opcode byte plus the body, so the
/// smallest legal frame is frame_len == 1 (opcode, empty body). All
/// integers are little-endian; doubles travel as their IEEE-754 bit
/// pattern in a u64, so query results are bit-identical to embedded
/// execution. Strings are u32 length + raw bytes.
///
/// A connection speaks strictly request/reply: the client sends one
/// request frame and reads exactly one reply frame (kCancel targets
/// another session precisely so no connection ever needs to interleave
/// frames on its own stream). The first request on a connection must
/// be kHello; the kHelloOk reply carries the session id other
/// connections can aim kCancel at.
///
/// Robustness contract (tests/server_fuzz_test.cc): a frame that is
/// oversized, truncated, or semantically malformed gets a clean
/// kError reply where one can still be written, and the connection is
/// closed — never a crash, never a hang past the read timeout.

/// Request opcodes (client -> server).
enum class Opcode : uint8_t {
  kHello = 0x01,       // body: u32 protocol version
  kQuery = 0x02,       // body: string sql
  kCancel = 0x03,      // body: u64 target session id
  kMetrics = 0x04,     // body: empty
  kPing = 0x05,        // body: empty
  kGoodbye = 0x06,     // body: empty
  kSetOptions = 0x07,  // body: i64 timeout_ms, i64 memory_limit,
                       //       u8 force_interpreted
  kMetricsHistogram = 0x08,  // body: string histogram name

  // Reply opcodes (server -> client).
  kHelloOk = 0x81,      // body: u64 session id, u32 protocol version
  kResultSet = 0x82,    // body: encoded ResultSet
  kError = 0x83,        // body: u8 status code, u8 retryable, string msg
  kMetricsText = 0x84,  // body: string (metrics snapshot JSON)
  kPong = 0x85,         // body: empty
  kOk = 0x86,           // body: empty
  kHistogramSummary = 0x87,  // body: u64 count, u64 sum_nanos,
                             //       u64 p50/p95/p99 upper-bound nanos
};

/// Protocol version carried in kHello/kHelloOk.
inline constexpr uint32_t kProtocolVersion = 1;

/// Default ceiling on frame_len. A frame announcing more is rejected
/// before any allocation — a length-field lie cannot make the server
/// reserve gigabytes.
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u << 20;

/// Append-only body builder. Writers never fail; the frame length is
/// prepended at send time.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// IEEE-754 bit pattern, bit-exact round trip.
  void PutDouble(double v);
  void PutString(std::string_view s);

  const std::vector<uint8_t>& buffer() const { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked body reader: every getter fails with kParseError
/// instead of reading past the frame, so a lying length field or
/// truncated body surfaces as a clean error reply.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<uint8_t>& body)
      : WireReader(body.data(), body.size()) {}

  StatusOr<uint8_t> GetU8();
  StatusOr<uint32_t> GetU32();
  StatusOr<uint64_t> GetU64();
  StatusOr<int64_t> GetI64();
  StatusOr<double> GetDouble();
  StatusOr<std::string> GetString();

  size_t remaining() const { return size_ - pos_; }
  /// Frames must be fully consumed; trailing garbage is malformed.
  Status ExpectEnd() const;

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Encodes `rs` into `out` (schema then rows; doubles bit-exact).
void EncodeResultSet(const engine::ResultSet& rs, WireWriter* out);

/// Decodes a kResultSet body. Fails with kParseError on any malformed
/// or oversized field (row/column counts are validated against the
/// remaining bytes before reserving).
StatusOr<engine::ResultSet> DecodeResultSet(WireReader* in);

/// Encodes a kError body. `retryable` is an explicit wire flag, not
/// derived from the code: an admission rejection is kResourceExhausted
/// AND retryable, while a per-query memory budget overflow is
/// kResourceExhausted and NOT retryable (retrying the same statement
/// meets the same budget).
void EncodeError(const Status& status, bool retryable, WireWriter* out);

/// Decoded kError body.
struct WireError {
  Status status;
  bool retryable = false;
};
StatusOr<WireError> DecodeError(WireReader* in);

/// One named histogram summarized server-side (kHistogramSummary):
/// count, sum and the p50/p95/p99 quantile estimates from
/// MetricsSnapshot::HistogramData::PercentileNanos — bucket upper
/// bounds in nanoseconds, 0 for an empty histogram, UINT64_MAX when a
/// quantile lands in the overflow bucket. Consumers read percentiles
/// off the wire instead of re-parsing METRICS JSON text.
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t sum_nanos = 0;
  uint64_t p50_nanos = 0;
  uint64_t p95_nanos = 0;
  uint64_t p99_nanos = 0;
};

/// Encodes a kHistogramSummary body.
void EncodeHistogramSummary(const HistogramSummary& summary, WireWriter* out);

/// Decodes a kHistogramSummary body.
StatusOr<HistogramSummary> DecodeHistogramSummary(WireReader* in);

/// Reads one frame from `fd`. Blocks up to `timeout_ms` for the first
/// byte (-1 = forever) and up to `io_timeout_ms` between subsequent
/// reads — a peer that stalls mid-frame cannot pin the session thread.
/// Returns:
///   kUnavailable       clean EOF before any byte of a frame (peer
///                      closed between requests — the normal goodbye)
///   kDeadlineExceeded  timeout expired
///   kIOError           socket error or EOF mid-frame (truncated)
///   kInvalidArgument   frame_len == 0 or > max_frame_bytes
Status ReadFrame(int fd, int64_t timeout_ms, int64_t io_timeout_ms,
                 uint32_t max_frame_bytes, Opcode* opcode,
                 std::vector<uint8_t>* body);

/// Writes one frame, bounding each poll-for-writable by
/// `timeout_ms` — a dead or slow reader fails the write with
/// kDeadlineExceeded instead of blocking the session forever.
Status WriteFrame(int fd, Opcode opcode, const std::vector<uint8_t>& body,
                  int64_t timeout_ms);

/// Convenience: WriteFrame(kError) for `status`.
Status WriteError(int fd, const Status& status, bool retryable,
                  int64_t timeout_ms);

}  // namespace nlq::server

#endif  // NLQ_SERVER_PROTOCOL_H_
