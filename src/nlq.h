#ifndef NLQ_NLQ_H_
#define NLQ_NLQ_H_

/// Umbrella header for the nlq library — an in-DBMS statistical
/// modeling system reproducing Ordonez, "Building Statistical Models
/// and Scoring with UDFs" (SIGMOD 2007).
///
/// Typical flow (see examples/quickstart.cc):
///   engine::Database db;                       // the DBMS substrate
///   stats::RegisterAllStatsUdfs(&db.udfs());   // install the UDFs
///   gen::GenerateDataSetTable(&db, "X", ...);  // or load your data
///   stats::WarehouseMiner miner(&db);
///   auto stats = miner.ComputeSufStats("X", cols, kind, via);
///   auto model = stats::FitLinearRegression(*stats);
///   miner.ScoreLinearRegression("X", model, "X_SCORED", /*udf=*/true);

#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "connect/extern_analyzer.h"
#include "connect/odbc_sim.h"
#include "engine/database.h"
#include "engine/parser.h"
#include "engine/persistence.h"
#include "engine/result_set.h"
#include "gen/csv_loader.h"
#include "gen/datagen.h"
#include "linalg/cholesky.h"
#include "linalg/eigen.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "linalg/svd.h"
#include "stats/describe.h"
#include "stats/em.h"
#include "stats/histogram.h"
#include "stats/kmeans.h"
#include "stats/linreg.h"
#include "stats/miner.h"
#include "stats/model_tables.h"
#include "stats/naive_bayes.h"
#include "stats/nlq_udaf.h"
#include "stats/pca.h"
#include "stats/scoring.h"
#include "stats/sqlgen.h"
#include "stats/stepwise.h"
#include "stats/sufstats.h"
#include "storage/catalog.h"
#include "udf/packing.h"
#include "udf/udf.h"

#endif  // NLQ_NLQ_H_
